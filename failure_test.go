// Failure-injection tests: when a rank dies mid-algorithm — error return,
// panic, or silent early exit — every driver must surface a clean error
// instead of hanging or returning corrupt results.
package perfscale_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"perfscale/internal/lu"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// fastDog shortens the watchdog so deadlock tests finish quickly.
var fastDog = sim.Cost{WatchdogTimeout: 200 * time.Millisecond}

// TestCollectiveSurvivesRankError: a rank failing before a collective turns
// into an error for the peers that depended on it.
func TestCollectiveSurvivesRankError(t *testing.T) {
	_, err := sim.Run(8, sim.Cost{}, func(r *sim.Rank) error {
		if r.ID() == 3 {
			return errInjected
		}
		r.World().AllReduce([]float64{1}, sim.OpSum)
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Errorf("error should identify a rank: %v", err)
	}
}

// TestCollectiveSurvivesRankPanic: same with a panic mid-broadcast.
func TestCollectiveSurvivesRankPanic(t *testing.T) {
	_, err := sim.Run(8, sim.Cost{}, func(r *sim.Rank) error {
		w := r.World()
		var data []float64
		if r.ID() == 0 {
			data = []float64{1, 2, 3}
		}
		w.Bcast(0, data)
		if r.ID() == 5 {
			panic("injected failure")
		}
		w.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("expected the injected panic to surface, got %v", err)
	}
}

// TestShiftPartnerDies: a ring algorithm whose upstream partner exits early
// gets a descriptive error.
func TestShiftPartnerDies(t *testing.T) {
	_, err := sim.Run(4, sim.Cost{}, func(r *sim.Rank) error {
		if r.ID() == 2 {
			return errInjected // exits before its sends
		}
		w := r.World()
		d := []float64{1}
		for s := 0; s < 3; s++ {
			d = w.Shift(d, 1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
}

// TestMismatchedCollectiveDetected: one rank calling a different collective
// (a classic SPMD programming error) must error out, not hang.
func TestMismatchedCollectiveDetected(t *testing.T) {
	_, err := sim.Run(4, sim.Cost{}, func(r *sim.Rank) error {
		w := r.World()
		if r.ID() == 1 {
			// Skips the reduce entirely.
			return nil
		}
		w.Reduce(0, []float64{1}, sim.OpSum)
		return nil
	})
	if err == nil {
		t.Fatal("mismatched collective should error")
	}
}

// TestLengthMismatchedReduce: payload disagreement inside a reduce panics
// with a clear message and is surfaced.
func TestLengthMismatchedReduce(t *testing.T) {
	_, err := sim.Run(2, sim.Cost{}, func(r *sim.Rank) error {
		w := r.World()
		data := make([]float64, 1+r.ID()) // lengths differ across ranks
		w.Reduce(0, data, sim.OpSum)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Errorf("expected a length-mismatch error, got %v", err)
	}
}

// TestAlgorithmDriverPropagatesFailure: the high-level drivers wrap rank
// errors rather than returning partial results.
func TestAlgorithmDriverPropagatesFailure(t *testing.T) {
	// A singular (all-zero) matrix makes the LU panel fail on the diagonal
	// rank; the driver must return that error.
	zero := matrix.New(16, 16)
	if _, err := lu.TwoD(sim.Cost{}, 4, zero); err == nil {
		t.Error("singular LU should propagate the pivot failure")
	}
}

// TestWatchdogNamesMutuallyBlockedRanks: two live ranks each waiting in Recv
// on the other is the canonical deadlock; the watchdog must return a
// diagnostic that names the blocked pair instead of hanging forever.
func TestWatchdogNamesMutuallyBlockedRanks(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := sim.Run(2, fastDog, func(r *sim.Rank) error {
			r.Recv(1 - r.ID()) // both receive first: nobody ever sends
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mutual Recv deadlock must error")
		}
		var de *sim.DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("expected a DeadlockError, got %v", err)
		}
		for _, want := range []string{"rank 0 waiting on rank 1", "rank 1 waiting on rank 0"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("diagnostic should contain %q: %v", want, err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire within its timeout")
	}
}

// TestWatchdogDetectsMismatchedBcastRoot: one rank naming a different Bcast
// root is a classic SPMD bug. The pattern wedges mid-collective; the
// watchdog must convert the hang into a diagnostic error.
func TestWatchdogDetectsMismatchedBcastRoot(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := sim.Run(4, fastDog, func(r *sim.Rank) error {
			w := r.World()
			root := 0
			if r.ID() == 2 {
				root = 1 // disagrees with everyone else
			}
			data := make([]float64, 3)
			if r.ID() == root {
				data = []float64{1, 2, 3}
			}
			w.Bcast(root, data)
			w.Barrier()
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mismatched Bcast root must error")
		}
		var de *sim.DeadlockError
		if !errors.As(err, &de) && !strings.Contains(err.Error(), "rank") {
			t.Errorf("expected a diagnostic naming ranks, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire within its timeout")
	}
}

type injected struct{}

func (injected) Error() string { return "injected failure" }

var errInjected = injected{}
