package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The event-driven runtime (Cost.Runtime = RuntimeEvent).
//
// The default runtime keeps every rank live on its own goroutine and lets
// the Go scheduler multiplex them: a blocked receive is a 4-way select, a
// hang is detected by a real-time watchdog polling atomic state words, and
// every block/unblock pays scheduler fairness machinery that knows nothing
// about the simulation. That tops out around p≈16k ranks.
//
// The event engine replaces the scheduler with a cooperative run-to-block
// core of its own. Ranks still execute on goroutines — an SPMD function is
// an opaque closure whose stack must live somewhere — but a goroutine only
// runs while the engine has explicitly handed it one of a bounded number of
// worker slots. When a rank would block (empty receive queue, full send
// buffer, a collective rendezvous), it parks: it registers what it waits
// for, hands its slot to the next runnable rank, and sleeps on a one-token
// resume channel until the engine wakes it with a reason. Runnable ranks
// wait in per-shard min-heaps ordered by virtual clock (ties by rank id) —
// the sharded virtual-time event queue — so execution tends to proceed in
// causal waves and a wake is delivered exactly when the awaited condition
// holds, never as a poll.
//
// This buys three things over the goroutine backend:
//
//   - blocking costs one mutex + one channel token instead of a multi-way
//     select registered on four wait queues;
//   - quiescence is exact: the engine knows the instant the run queue is
//     empty and every live rank is parked, so deadlock detection and
//     virtual-timer firing (timer.go) are immediate and deterministic
//     instead of a real-time watchdog window (Cost.WatchdogTimeout is
//     ignored under the event runtime);
//   - collectives can be fast-forwarded: when no fault plan, observer or
//     cancel context can touch a run (see ffEligible), a collective's whole
//     message schedule is conducted centrally by its last-arriving member
//     in one pass (comm_ff.go), eliminating the per-round park/resume
//     cycles entirely.
//
// Results are bit-identical to the goroutine backend by construction:
// virtual clocks and counters are pure functions of the program's per-pair
// FIFO message order and the arrival stamps carried in messages, never of
// which rank happened to run when, and fault decisions are keyed on
// (seed, src, dst, seq, clock) alone. The conformance sweep pins this
// identity across all seven algorithms (internal/conformance, backend
// family).

// Runtime selects the execution backend for a run. Like Wiring, the choice
// is invisible to the simulation's semantics: clocks, counters, fault
// decisions and per-rank observer streams are identical under either
// backend (pinned by the conformance backend family); only wall-clock cost
// and the diagnostics' real-time behavior differ.
type Runtime int

const (
	// RuntimeGoroutine runs one live goroutine per rank under the Go
	// scheduler with a real-time deadlock watchdog (the default).
	RuntimeGoroutine Runtime = iota
	// RuntimeEvent runs ranks as cooperatively scheduled continuations on
	// a sharded virtual-time run queue with exact quiescence detection,
	// feasible to p ≥ 10⁶ ranks. Cost.WatchdogTimeout is ignored (hangs
	// are detected exactly, not by timeout); Cost.Workers bounds the
	// concurrently running ranks.
	RuntimeEvent
)

// String names the runtime for benchmark labels and reports.
func (rt Runtime) String() string {
	if rt == RuntimeEvent {
		return "event"
	}
	return "goroutine"
}

// evKind is the reason a parked rank was resumed.
type evKind uint8

const (
	// evWake: re-examine your wait — a message arrived, buffer space
	// opened, or the awaited peer exited. The resumed operation re-checks
	// its conditions in the same fixed priority order as the goroutine
	// backend (message, peer exit, expiry), so the outcome depends only on
	// virtual state.
	evWake evKind = iota
	// evTimerFire: the rank's virtual deadline was the earliest armed
	// timer at quiescence (timer.go rules).
	evTimerFire
	// evAbort: the engine filled abortErr[id] (deadlock, send to exited
	// peer); the rank unwinds with abortPanic.
	evAbort
	// evCancel: the run context was cancelled; the rank unwinds with
	// cancelPanic.
	evCancel
	// evConducted: the rank's collective was conducted by its last
	// arriver; the result is ready (comm_ff.go).
	evConducted
)

// evRank is the engine's per-rank scheduling record. All fields are
// guarded by eventEngine.mu except resume, which carries at most one
// token from the dispatching engine to the parked carrier.
type evRank struct {
	resume chan evKind
	// op/peer/deadline form the wait record while parked (op values from
	// watchdog.go; opRunning while executing or runnable, opExited after
	// the carrier returns). deadline is the armed virtual deadline of a
	// timed operation, 0 otherwise.
	op       uint64
	peer     int32
	runnable bool
	started  bool
	kind     evKind
	deadline float64
	// clock is the rank's virtual clock at its last park, the heap key.
	clock float64
	// seg/hasSeg snapshot the rank's last timeline segment at park, so
	// deadlock snapshots can report what it last did (the engine's
	// equivalent of Cluster.lastSegs).
	seg    Segment
	hasSeg bool
	// watch is the lock-free mirror of the (op, peer) wait record for the
	// notifyEnqueue/notifyDequeue prechecks: peer<<2 | watchRecv/watchSend
	// while this rank is parked on a pair operation, 0 otherwise. park
	// publishes it (sequentially consistent) BEFORE its final queue
	// re-check; a sender reads it AFTER its enqueue. One of the two
	// therefore always observes the other — the classic store/load
	// protocol — so a miss on both sides is impossible and senders skip
	// the engine lock entirely on the overwhelmingly common case of an
	// unwatched pair.
	watch atomic.Uint64
}

// watch classes (low two bits of evRank.watch).
const (
	watchRecv uint64 = 1
	watchSend uint64 = 2
)

// watchWord encodes a park's wait record for the lock-free precheck.
func watchWord(op uint64, peer int) uint64 {
	class := watchRecv
	if op == opBlockedSend || op == opBlockedSendTimer {
		class = watchSend
	}
	return uint64(peer)<<2 | class
}

// evEntry is one runnable rank in a shard heap, ordered by (clock, id).
type evEntry struct {
	clock float64
	id    int32
}

// evHeap is a binary min-heap of runnable ranks.
type evHeap []evEntry

func (h *evHeap) push(e evEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *evHeap) pop() evEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && evLess(old[l], old[small]) {
			small = l
		}
		if r < n && evLess(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

func evLess(a, b evEntry) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	// Ties break toward the HIGHER rank id. Results are schedule-invariant
	// (the conformance backend family pins this), so the tiebreak is purely
	// a throughput decision: the ring and tree collectives receive from
	// higher-indexed peers (Shift(-1) pulls from me+1, reduce trees pull
	// from the high half), so running high ids first means a rank's sources
	// have usually stashed their sends by the time it asks — turning most
	// would-be parks into immediate dequeues.
	return a.id > b.id
}

// eventEngine is the cooperative scheduler behind RuntimeEvent. One engine
// drives one run.
type eventEngine struct {
	c       *Cluster
	fn      func(*Rank) error
	res     *Result
	errs    []error
	workers int

	// ffOK marks the run eligible for fast-forwarded collectives: no
	// fault plan, no observers (including the tracer), no cancel context.
	// Any of those must see the run event by event — faults key decisions
	// on individual sends, observers are owed per-operation callbacks on
	// the owning rank's goroutine, and cancellation must be able to abort
	// inside a collective — so they force the slow path. The predicate is
	// cluster-static: eligibility never changes mid-run, which keeps
	// conducted and event-by-event collectives from deadlocking each
	// other.
	ffOK bool

	mu      sync.Mutex
	ranks   []evRank
	shards  []evHeap
	running int // ranks currently executing on a worker slot
	live    int // ranks that have not exited
	nrun    int // total runnable entries across shards
	rend    map[ffKey]*ffRendezvous
	done    chan struct{}
}

func newEventEngine(c *Cluster, fn func(*Rank) error, res *Result) *eventEngine {
	workers := c.cost.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &eventEngine{
		c:       c,
		fn:      fn,
		res:     res,
		errs:    make([]error, c.p),
		workers: workers,
		ffOK:    c.cost.Faults == nil && len(c.obs) == 0 && c.cost.Context == nil,
		ranks:   make([]evRank, c.p),
		shards:  make([]evHeap, workers),
		live:    c.p,
		rend:    make(map[ffKey]*ffRendezvous),
		done:    make(chan struct{}),
	}
	for i := range e.ranks {
		e.ranks[i].resume = make(chan evKind, 1)
		e.ranks[i].peer = -1
	}
	return e
}

// runEvent executes fn on every rank under the event engine. It is the
// RuntimeEvent half of Cluster.Run and produces the same Result and the
// same joined error.
func (c *Cluster) runEvent(fn func(r *Rank) error) (*Result, error) {
	res := &Result{PerRank: make([]Stats, c.p)}
	if c.tracer != nil {
		res.Trace = &Trace{Segments: c.tracer.segments, Phases: c.tracer.phases}
	}
	e := newEventEngine(c, fn, res)
	c.eng = e
	if ctx := c.cost.Context; ctx != nil {
		watchDone := make(chan struct{})
		go c.watchContext(ctx, watchDone)
		defer close(watchDone)
		go e.watchCancel()
	}
	e.mu.Lock()
	for id := 0; id < c.p; id++ {
		e.pushRunnable(id, 0)
	}
	e.dispatch()
	e.mu.Unlock()
	<-e.done
	res.ActivePairs = c.ActivePairs()
	return res, joinRunErrors(c, e.errs)
}

// pushRunnable marks rank id runnable at the given virtual clock. mu held.
func (e *eventEngine) pushRunnable(id int, clock float64) {
	rk := &e.ranks[id]
	rk.runnable = true
	e.shards[id%e.workers].push(evEntry{clock: clock, id: int32(id)})
	e.nrun++
}

// popNext removes and returns the runnable rank with the smallest
// (clock, id) across shards. mu held.
func (e *eventEngine) popNext() (int, bool) {
	best := -1
	for s := range e.shards {
		if len(e.shards[s]) == 0 {
			continue
		}
		if best < 0 || evLess(e.shards[s][0], e.shards[best][0]) {
			best = s
		}
	}
	if best < 0 {
		return 0, false
	}
	e.nrun--
	return int(e.shards[best].pop().id), true
}

// dispatch fills free worker slots from the run queue, and — when the
// whole cluster has gone quiescent with ranks still live — resolves the
// quiescence exactly like the watchdog would (peer-exit releases first,
// then the earliest armed timer, then deadlock). mu held.
func (e *eventEngine) dispatch() {
	for {
		for e.running < e.workers && e.nrun > 0 {
			id, ok := e.popNext()
			if !ok {
				break
			}
			rk := &e.ranks[id]
			rk.runnable = false
			rk.op = opRunning
			rk.peer = -1
			e.running++
			if !rk.started {
				rk.started = true
				go e.carrier(id)
			} else {
				rk.resume <- rk.kind
			}
		}
		if e.running > 0 || e.live == 0 || e.nrun > 0 {
			return
		}
		// Quiescent: every live rank is parked and nothing is runnable.
		e.quiesce()
		if e.nrun == 0 {
			// quiesce wakes at least one rank whenever live ranks remain;
			// defensive: avoid spinning if it could not.
			return
		}
	}
}

// carrier is the goroutine that hosts rank id. It mirrors the per-rank
// body of the goroutine backend's Run exactly (same recover
// classification, same exit publication order) and returns its worker
// slot on exit.
func (e *eventEngine) carrier(id int) {
	c := e.c
	r := &Rank{cluster: c, id: id}
	defer func() {
		status, err := c.classifyRankExit(recover(), id, e.errs[id])
		e.errs[id] = err
		e.res.PerRank[id] = r.Stats()
		// Publish the exit record before the exit notification, exactly
		// like the goroutine backend: a peer that observes the close (or
		// the engine's opExited under mu) may read exits[id].
		c.exits[id] = exitInfo{status: status, err: err}
		close(c.exitCh[id])
		e.mu.Lock()
		rk := &e.ranks[id]
		rk.op = opExited
		rk.hasSeg = false
		e.live--
		e.running--
		if e.live == 0 {
			defer close(e.done)
		}
		e.dispatch()
		e.mu.Unlock()
	}()
	e.errs[id] = e.fn(r)
}

// yieldIfBehind reparks the calling rank onto the run queue when another
// runnable rank sits at an earlier virtual clock. A compute-only loop
// never parks on its own, so on a small worker pool it would starve
// earlier ranks indefinitely — including ranks whose real-time side
// effects the program is waiting on (an external cancel, a test
// synchronization). Results are schedule-invariant, so the repark only
// affects wall-clock fairness, never the virtual outcome.
func (e *eventEngine) yieldIfBehind(r *Rank) {
	e.mu.Lock()
	behind := false
	for s := range e.shards {
		if h := e.shards[s]; len(h) > 0 && h[0].clock < r.clock {
			behind = true
			break
		}
	}
	if !behind {
		e.mu.Unlock()
		return
	}
	rk := &e.ranks[r.id]
	// The rank stays opRunning: it is runnable, not blocked, so the
	// quiescence scans and cancel sweep must keep ignoring it — it will
	// observe cancellation itself at its next instrumented op.
	rk.kind = evWake
	rk.seg, rk.hasSeg = r.lastSeg, r.hasSeg
	e.pushRunnable(r.id, r.clock)
	e.running--
	e.dispatch()
	e.mu.Unlock()
	<-rk.resume
}

// park blocks the calling rank with the given wait record until the
// engine resumes it. avail, checked under mu, lets the caller detect a
// condition that raced with its unlocked pre-check (a message enqueued,
// space opened, the peer exited) — if it reports true the rank never
// parks and evWake is returned immediately.
func (e *eventEngine) park(r *Rank, op uint64, peer int, deadline float64, avail func() bool) evKind {
	rk := &e.ranks[r.id]
	rk.watch.Store(watchWord(op, peer))
	e.mu.Lock()
	if avail != nil && avail() {
		rk.watch.Store(0)
		e.mu.Unlock()
		return evWake
	}
	return e.parkLocked(r, op, peer, deadline)
}

// parkLocked is park's core: record the wait, release the worker slot,
// hand it to the next runnable rank, and sleep. Enters with mu held,
// returns with mu released.
func (e *eventEngine) parkLocked(r *Rank, op uint64, peer int, deadline float64) evKind {
	rk := &e.ranks[r.id]
	rk.op = op
	rk.peer = int32(peer)
	rk.deadline = deadline
	rk.clock = r.clock
	rk.seg = r.lastSeg
	rk.hasSeg = r.hasSeg
	e.running--
	e.dispatch()
	e.mu.Unlock()
	kind := <-rk.resume
	rk.watch.Store(0)
	return kind
}

// wake marks a parked rank runnable with the given resume reason. A rank
// already runnable keeps its pending reason only when the new one is a
// plain evWake: the specific reasons (conducted result ready, timer
// fired, abort, cancel) always replace it, so a racing message enqueue
// can never mask them — the resumed operation re-checks its queues
// anyway. mu held.
func (e *eventEngine) wake(id int, kind evKind) {
	rk := &e.ranks[id]
	if rk.runnable {
		if kind != evWake {
			rk.kind = kind
		}
		return
	}
	if !blockedOp(rk.op) {
		return
	}
	rk.kind = kind
	e.pushRunnable(id, rk.clock)
}

// notifyEnqueue wakes dst if it is parked receiving from src. The
// unlocked watch precheck rejects the common case — dst running, or
// parked on some other pair — without touching the engine lock; the
// locked wait record stays authoritative for the actual wake.
func (e *eventEngine) notifyEnqueue(src, dst int) {
	if w := e.ranks[dst].watch.Load(); w&3 != watchRecv || int(w>>2) != src {
		return
	}
	e.mu.Lock()
	rk := &e.ranks[dst]
	if (rk.op == opBlockedRecv || rk.op == opBlockedRecvTimer) && int(rk.peer) == src {
		e.wake(dst, evWake)
		e.dispatch()
	}
	e.mu.Unlock()
}

// notifyDequeue wakes src if it is parked sending to dst (its pair's
// buffer was full; the caller just drained one slot). Prechecked like
// notifyEnqueue.
func (e *eventEngine) notifyDequeue(src, dst int) {
	if w := e.ranks[src].watch.Load(); w&3 != watchSend || int(w>>2) != dst {
		return
	}
	e.mu.Lock()
	rk := &e.ranks[src]
	if (rk.op == opBlockedSend || rk.op == opBlockedSendTimer) && int(rk.peer) == dst {
		e.wake(src, evWake)
		e.dispatch()
	}
	e.mu.Unlock()
}

// watchCancel wakes every parked rank with evCancel once the run context
// is cancelled (running ranks abort at their next instrumented op via
// cancelCheck, exactly like the goroutine backend).
func (e *eventEngine) watchCancel() {
	select {
	case <-e.c.cancelCh:
	case <-e.done:
		return
	}
	e.mu.Lock()
	for id := range e.ranks {
		if blockedOp(e.ranks[id].op) {
			e.wake(id, evCancel)
		}
	}
	e.dispatch()
	e.mu.Unlock()
}

// exitedLocked reports whether rank id has exited. mu held; the mutex
// ordering makes the exit record exits[id] safe to read afterwards.
func (e *eventEngine) exitedLocked(id int) bool { return e.ranks[id].op == opExited }

// chanClosed reports whether a notification channel has been closed. The
// close happens-before the observing receive, so reads guarded by it are
// race-free (same mechanism the goroutine backend's selects rely on).
func chanClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// quiesce resolves an exact quiescence: no rank running, none runnable,
// some still live. The resolution order mirrors the goroutine backend's
// real-time behavior — releases that the goroutine backend performs
// immediately (peer-exit notifications, aborts of senders to exited
// peers) are applied before any timer fires, and the single earliest
// armed timer fires before deadlock is declared. mu held.
func (e *eventEngine) quiesce() {
	// (1) Ranks parked on a peer that exited: the goroutine backend's
	// selects wake on the exit channel the moment it closes; release them
	// all, and let each re-check (message first, then exit) on resume.
	woke := false
	for id := range e.ranks {
		rk := &e.ranks[id]
		if rk.runnable {
			continue
		}
		switch rk.op {
		case opBlockedRecv, opBlockedRecvTimer, opBlockedSendTimer:
			if e.ranks[rk.peer].op == opExited {
				e.wake(id, evWake)
				woke = true
			}
		}
	}
	if woke {
		return
	}
	// (2) A plain send to an exited peer whose buffer stayed full can
	// never complete — the watchdog's per-rank case 1. Abort those
	// senders with the same diagnostic.
	var snap *ClusterSnapshot
	for id := range e.ranks {
		rk := &e.ranks[id]
		if rk.runnable || rk.op != opBlockedSend {
			continue
		}
		peer := int(rk.peer)
		if e.ranks[peer].op != opExited {
			continue
		}
		if e.c.pairOf(id, peer).rg.length() < e.c.bufCap {
			continue // space opened; the send completes by itself
		}
		if snap == nil {
			snap = e.snapshotLocked()
		}
		err := &DeadlockError{Rank: id, Op: "send", Peer: peer, PeerExited: true, Snapshot: snap}
		e.c.emitDeadlock(DeadlockEvent{Err: err})
		e.c.abortErr[id] = err
		e.wake(id, evAbort)
		woke = true
	}
	if woke {
		return
	}
	// (3) Fire the single earliest armed virtual timer (ties to the
	// lowest rank id) — one per quiescence round, the timer.go rule that
	// keeps timeout-driven runs deterministic.
	best, bestD := -1, 0.0
	for id := range e.ranks {
		rk := &e.ranks[id]
		if rk.runnable || (rk.op != opBlockedRecvTimer && rk.op != opBlockedSendTimer) {
			continue
		}
		if best < 0 || rk.deadline < bestD {
			best, bestD = id, rk.deadline
		}
	}
	if best >= 0 {
		e.wake(best, evTimerFire)
		return
	}
	// (4) Deadlock: zero armed timers, nothing deliverable. Abort every
	// blocked rank with the shared wait graph and snapshot.
	states := e.packedStatesLocked()
	graph := waitGraph(states)
	if snap == nil {
		snap = e.snapshotLocked()
	}
	for id := range e.ranks {
		rk := &e.ranks[id]
		if rk.runnable || !blockedOp(rk.op) {
			continue
		}
		err := &DeadlockError{Rank: id, Op: opName(rk.op), Peer: int(rk.peer), Graph: graph, Snapshot: snap}
		e.c.emitDeadlock(DeadlockEvent{Err: err})
		e.c.abortErr[id] = err
		e.wake(id, evAbort)
	}
}

// packedStatesLocked renders the engine's wait records in the watchdog's
// packed format so waitGraph is shared between backends. mu held.
func (e *eventEngine) packedStatesLocked() []uint64 {
	states := make([]uint64, len(e.ranks))
	for id := range e.ranks {
		rk := &e.ranks[id]
		peer := int(rk.peer)
		if peer < 0 {
			peer = 0
		}
		states[id] = packState(0, rk.op, peer)
	}
	return states
}

// snapshotLocked builds the cluster snapshot from the engine's exact wait
// records (the engine's equivalent of Cluster.snapshot). mu held.
func (e *eventEngine) snapshotLocked() *ClusterSnapshot {
	snap := &ClusterSnapshot{Ranks: make([]RankSnapshot, e.c.p)}
	for id := range e.ranks {
		rk := &e.ranks[id]
		rs := RankSnapshot{Rank: id, Peer: -1}
		switch rk.op {
		case opBlockedRecv:
			rs.State, rs.Peer = "blocked-recv", int(rk.peer)
		case opBlockedSend:
			rs.State, rs.Peer = "blocked-send", int(rk.peer)
		case opBlockedRecvTimer:
			rs.State, rs.Peer = "blocked-recv-timer", int(rk.peer)
		case opBlockedSendTimer:
			rs.State, rs.Peer = "blocked-send-timer", int(rk.peer)
		case opExited:
			rs.State = "exited"
		default:
			rs.State = "running"
		}
		if rk.hasSeg && blockedOp(rk.op) {
			seg := rk.seg
			rs.LastSeg = &seg
		}
		snap.Ranks[id] = rs
	}
	snap.Queued = e.c.queuedPairs()
	return snap
}

// deliverEvent is deliver's engine path: enqueue without blocking the
// thread, parking the rank when the pair's buffer is full.
func (e *eventEngine) deliverEvent(r *Rank, dst int, m message) {
	q := &r.queueTo(dst).rg
	for {
		if q.push(m) {
			e.notifyEnqueue(r.id, dst)
			return
		}
		kind := e.park(r, opBlockedSend, dst, 0, func() bool { return q.length() < int(q.sem) })
		switch kind {
		case evCancel:
			panic(cancelPanic{})
		case evAbort:
			panic(abortPanic{err: e.c.abortErr[r.id]})
		}
	}
}

// recvEvent is Recv's engine path: dequeue the next message from src,
// parking until one arrives. ok=false reports that src exited with
// nothing further queued (the caller names the root cause, shared with
// the goroutine path).
func (e *eventEngine) recvEvent(r *Rank, src int) (message, bool) {
	q := &r.queueFrom(src).rg
	exitCh := e.c.exitCh[src]
	for {
		if msg, ok := q.pop(); ok {
			if q.length() >= int(q.sem)-1 {
				e.notifyDequeue(src, r.id)
			}
			return msg, true
		}
		if chanClosed(exitCh) {
			// Everything the peer ever sent was enqueued before its exit
			// notification; drain once more before failing.
			return q.pop()
		}
		kind := e.park(r, opBlockedRecv, src, 0, func() bool {
			return q.length() > 0 || e.exitedLocked(src)
		})
		switch kind {
		case evCancel:
			panic(cancelPanic{})
		case evAbort:
			panic(abortPanic{err: e.c.abortErr[r.id]})
		}
	}
}

// recvTimeoutEvent is RecvTimeout's engine path after the unlocked fast
// checks failed: park with the armed deadline and resolve with the same
// fixed priority order as the goroutine backend (message, peer exit,
// expiry).
func (e *eventEngine) recvTimeoutEvent(r *Rank, src int, deadline float64) (msg message, got, exited, fired bool) {
	q := &r.queueFrom(src).rg
	exitCh := e.c.exitCh[src]
	// Fast path before parking (RecvTimeout's unlocked pre-check lives
	// here under the engine): a buffered message resolves immediately.
	if msg, got = q.pop(); got {
		if q.length() >= int(q.sem)-1 {
			e.notifyDequeue(src, r.id)
		}
		return
	}
	for {
		kind := e.park(r, opBlockedRecvTimer, src, deadline, func() bool {
			return q.length() > 0 || e.exitedLocked(src)
		})
		switch kind {
		case evCancel:
			panic(cancelPanic{})
		case evAbort:
			panic(abortPanic{err: e.c.abortErr[r.id]})
		case evTimerFire:
			fired = true
		}
		if msg, got = q.pop(); got {
			if q.length() >= int(q.sem)-1 {
				e.notifyDequeue(src, r.id)
			}
			return
		}
		if chanClosed(exitCh) {
			exited = true
			return
		}
		if fired {
			return
		}
	}
}

// sendDeadlineEvent is deliverDeadline's engine path: enqueue with a
// virtual deadline bounding the park. Resolution priority mirrors the
// goroutine backend: enqueue if space opened, then peer exit, then
// expiry.
func (e *eventEngine) sendDeadlineEvent(r *Rank, dst int, m message, deadline float64) (sent, exited, fired bool) {
	q := &r.queueTo(dst).rg
	exitCh := e.c.exitCh[dst]
	for {
		if q.push(m) {
			sent = true
			e.notifyEnqueue(r.id, dst)
			return
		}
		if chanClosed(exitCh) {
			exited = true
			return
		}
		kind := e.park(r, opBlockedSendTimer, dst, deadline, func() bool {
			return q.length() < int(q.sem) || e.exitedLocked(dst)
		})
		switch kind {
		case evCancel:
			panic(cancelPanic{})
		case evAbort:
			panic(abortPanic{err: e.c.abortErr[r.id]})
		case evTimerFire:
			fired = true
		}
		if q.push(m) {
			sent = true
			e.notifyEnqueue(r.id, dst)
			return
		}
		if chanClosed(exitCh) {
			exited = true
			return
		}
		if fired {
			return
		}
	}
}
