package sim

import (
	"testing"
)

func TestTwoLevelLinksClassification(t *testing.T) {
	l := TwoLevelLinks{CoresPerNode: 4, IntraAlpha: 1, IntraBeta: 2, InterAlpha: 10, InterBeta: 20}
	if err := l.Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(6); err == nil {
		t.Error("6 ranks on 4-core nodes should be rejected")
	}
	if l.Node(3) != 0 || l.Node(4) != 1 {
		t.Error("node mapping wrong")
	}
	// Intra-node pair.
	if l.Latency(0, 3) != 1 || l.TimePerWord(0, 3) != 2 {
		t.Error("intra-node link parameters wrong")
	}
	// Inter-node pair.
	if l.Latency(0, 4) != 10 || l.TimePerWord(3, 4) != 20 {
		t.Error("inter-node link parameters wrong")
	}
}

func TestTwoLevelLinksAffectClock(t *testing.T) {
	l := TwoLevelLinks{CoresPerNode: 2, IntraAlpha: 1, IntraBeta: 0, InterAlpha: 100, InterBeta: 0}
	res, err := Run(4, Cost{Links: l}, func(r *Rank) error {
		switch r.ID() {
		case 0:
			r.Send(1, []float64{1}) // intra: 1
			r.Send(2, []float64{1}) // inter: +100
		case 1:
			r.Recv(0)
		case 2:
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].Time; got != 101 {
		t.Errorf("sender clock: got %g want 101", got)
	}
	if got := res.PerRank[1].Time; got != 1 {
		t.Errorf("intra receiver clock: got %g want 1", got)
	}
	if got := res.PerRank[2].Time; got != 101 {
		t.Errorf("inter receiver clock: got %g want 101", got)
	}
}

func TestTorusCoordsRoundTrip(t *testing.T) {
	tor := Torus3DLinks{X: 2, Y: 3, Z: 4}
	if err := tor.Validate(24); err != nil {
		t.Fatal(err)
	}
	if err := tor.Validate(23); err == nil {
		t.Error("wrong rank count should be rejected")
	}
	for rank := 0; rank < 24; rank++ {
		x, y, z := tor.Coords(rank)
		if x+tor.X*(y+tor.Y*z) != rank {
			t.Fatalf("coords round trip failed for %d", rank)
		}
	}
}

func TestTorusHops(t *testing.T) {
	tor := Torus3DLinks{X: 4, Y: 4, Z: 4, AlphaPerHop: 1}
	// Neighbors: 1 hop.
	if got := tor.Hops(0, 1); got != 1 {
		t.Errorf("neighbor hops: got %d", got)
	}
	// Wraparound: 0 -> 3 in a ring of 4 is 1 hop.
	if got := tor.Hops(0, 3); got != 1 {
		t.Errorf("wraparound hops: got %d", got)
	}
	// Opposite corner: 2+2+2 = 6 hops.
	opposite := 2 + 4*(2+4*2)
	if got := tor.Hops(0, opposite); got != 6 {
		t.Errorf("diagonal hops: got %d want 6", got)
	}
	// Self-message still costs one hop.
	if got := tor.Hops(5, 5); got != 1 {
		t.Errorf("self hops: got %d want 1", got)
	}
	if tor.Latency(0, opposite) != 6 {
		t.Error("latency should scale with hops")
	}
	if tor.TimePerWord(0, opposite) != 0 {
		t.Error("torus beta should be uniform (zero here)")
	}
}

func TestRingDist(t *testing.T) {
	cases := []struct{ a, b, n, want int }{
		{0, 0, 8, 0}, {0, 1, 8, 1}, {0, 7, 8, 1}, {0, 4, 8, 4}, {1, 6, 8, 3},
	}
	for _, c := range cases {
		if got := ringDist(c.a, c.b, c.n); got != c.want {
			t.Errorf("ringDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

func TestChargeReceiverDoublesExchange(t *testing.T) {
	// A pairwise exchange costs one step under the default accounting and
	// two under ChargeReceiver.
	base := Cost{AlphaT: 100, BetaT: 1}
	charged := base
	charged.ChargeReceiver = true
	run := func(c Cost) float64 {
		res, err := Run(2, c, func(r *Rank) error {
			other := 1 - r.ID()
			r.SendRecv(other, []float64{1}, other)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time()
	}
	t1, t2 := run(base), run(charged)
	if t1 != 101 {
		t.Errorf("default exchange: got %g want 101", t1)
	}
	if t2 != 202 {
		t.Errorf("charged exchange: got %g want 202", t2)
	}
}

func TestChargeReceiverPreservesScalingShape(t *testing.T) {
	// The DESIGN.md ablation claim: charging both sides changes constants,
	// not shapes. A ring shift pipeline under both accountings must scale
	// identically with message count.
	shiftTime := func(c Cost, steps int) float64 {
		res, err := Run(4, c, func(r *Rank) error {
			w := r.World()
			data := []float64{1, 2}
			for s := 0; s < steps; s++ {
				data = w.Shift(data, 1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time()
	}
	base := Cost{AlphaT: 5, BetaT: 1}
	charged := base
	charged.ChargeReceiver = true
	r1 := shiftTime(base, 8) / shiftTime(base, 4)
	r2 := shiftTime(charged, 8) / shiftTime(charged, 4)
	if r1 != r2 {
		t.Errorf("scaling ratios differ: %g vs %g", r1, r2)
	}
	if got := shiftTime(charged, 4) / shiftTime(base, 4); got != 2 {
		t.Errorf("constant factor should be exactly 2, got %g", got)
	}
}

func TestTorusLinksInSimulation(t *testing.T) {
	// A message across the torus diameter takes longer than to a neighbor.
	tor := Torus3DLinks{X: 4, Y: 4, Z: 1, AlphaPerHop: 10, BetaPerWord: 0}
	res, err := Run(16, Cost{Links: tor}, func(r *Rank) error {
		switch r.ID() {
		case 0:
			r.Send(1, []float64{1})  // 1 hop: 10
			r.Send(10, []float64{1}) // (2,2,0): 2+2 hops: +40
		case 1:
			r.Recv(0)
		case 10:
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[1].Time; got != 10 {
		t.Errorf("neighbor arrival: got %g want 10", got)
	}
	if got := res.PerRank[10].Time; got != 50 {
		t.Errorf("diagonal arrival: got %g want 50", got)
	}
}

func TestPlacedLinksCompose(t *testing.T) {
	tor := Torus3DLinks{X: 2, Y: 2, Z: 1, AlphaPerHop: 10, BetaPerWord: 1}
	// Swap ranks 0 and 3: logical 0<->1 becomes physical 3<->1.
	place := []int{3, 1, 2, 0}
	pl := PlacedLinks{Base: tor, Place: place}
	if got, want := pl.Latency(0, 1), tor.Latency(3, 1); got != want {
		t.Errorf("placed latency %g want %g", got, want)
	}
	if got, want := pl.TimePerWord(2, 3), tor.TimePerWord(2, 0); got != want {
		t.Errorf("placed beta %g want %g", got, want)
	}
}

func TestIdentityPlacement(t *testing.T) {
	p := IdentityPlacement(4)
	for i, v := range p {
		if v != i {
			t.Fatalf("identity placement broken at %d", i)
		}
	}
}

func TestGridToTorusPlacement(t *testing.T) {
	g, err := NewGrid3D(4, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	tor := Torus3DLinks{X: 4, Y: 4, Z: 2, AlphaPerHop: 1}
	place, err := GridToTorusPlacement(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	// Every physical node is used at most once.
	seen := map[int]bool{}
	for _, node := range place {
		if seen[node] {
			t.Fatal("placement collides")
		}
		seen[node] = true
	}
	// Grid row neighbors are torus neighbors.
	a := g.RankAt(1, 0, 0)
	b := g.RankAt(1, 1, 0)
	if tor.Hops(place[a], place[b]) != 1 {
		t.Error("row neighbors should be 1 torus hop apart")
	}
	// Fiber neighbors too.
	c := g.RankAt(2, 3, 0)
	d := g.RankAt(2, 3, 1)
	if tor.Hops(place[c], place[d]) != 1 {
		t.Error("fiber neighbors should be 1 torus hop apart")
	}
	// Too-small torus rejected.
	if _, err := GridToTorusPlacement(g, Torus3DLinks{X: 2, Y: 4, Z: 2}); err == nil {
		t.Error("non-embedding grid should be rejected")
	}
}
