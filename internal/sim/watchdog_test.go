package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWatchdogDetectsMutualRecvDeadlock(t *testing.T) {
	start := time.Now()
	_, err := Run(2, shortDog(zeroCost), func(r *Rank) error {
		// Classic mismatched point-to-point program: both ranks receive
		// first. Without the watchdog this hangs forever.
		data := r.Recv(1 - r.ID())
		r.Send(1-r.ID(), data)
		return nil
	})
	if err == nil {
		t.Fatal("mutual Recv must be detected as deadlock")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	for _, want := range []string{"rank 0 waiting on rank 1", "rank 1 waiting on rank 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic must contain %q, got %v", want, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog took %v, should fire within its timeout", elapsed)
	}
}

func TestWatchdogDetectsSendToExitedRank(t *testing.T) {
	cost := shortDog(zeroCost)
	cost.ChanCap = 2
	_, err := Run(3, cost, func(r *Rank) error {
		switch r.ID() {
		case 0:
			// Rank 1 exits immediately; once the 2-slot buffer fills, the
			// third send can never complete.
			for i := 0; i < 3; i++ {
				r.Send(1, []float64{float64(i)})
			}
		case 2:
			// A live, running bystander: the cluster is not globally
			// deadlocked, so the per-rank detection path is exercised.
			time.Sleep(500 * time.Millisecond)
		}
		return nil
	})
	if err == nil {
		t.Fatal("send to exited rank must error, not hang")
	}
	var de *DeadlockError
	if !errors.As(err, &de) || !de.PeerExited {
		t.Fatalf("expected a send-to-exited DeadlockError, got %v", err)
	}
	if de.Rank != 0 || de.Peer != 1 {
		t.Errorf("diagnostic should blame rank 0's send to rank 1, got %+v", de)
	}
	if !strings.Contains(err.Error(), "exited rank 1") {
		t.Errorf("error should name the exited rank: %v", err)
	}
}

func TestWatchdogConfigurableChanCap(t *testing.T) {
	// With a 1-slot buffer, a 2-message burst needs the receiver to drain;
	// here the receiver drains late but does drain, so the run completes.
	cost := zeroCost
	cost.ChanCap = 1
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < 8; i++ {
				r.Send(1, []float64{float64(i)})
			}
			return nil
		}
		time.Sleep(50 * time.Millisecond) // force the sender to block on the tiny buffer
		for i := 0; i < 8; i++ {
			if got := r.Recv(0); got[0] != float64(i) {
				t.Errorf("message %d arrived out of order: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRank[1].MsgsRecv != 8 {
		t.Errorf("all 8 messages must arrive, got %g", res.PerRank[1].MsgsRecv)
	}
}

func TestWatchdogNoFalsePositiveDuringRealTimeWork(t *testing.T) {
	// Rank 0 does real wall-clock work longer than the watchdog timeout
	// while rank 1 waits in Recv. One rank is live and running, so the
	// watchdog must not fire.
	_, err := Run(2, shortDog(zeroCost), func(r *Rank) error {
		if r.ID() == 0 {
			time.Sleep(400 * time.Millisecond) // > 2x the watchdog timeout
			r.Send(1, []float64{1})
			return nil
		}
		r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("watchdog false positive: %v", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	// A negative timeout disables the watchdog; verify a normal run still
	// works (we obviously cannot verify a hang stays a hang).
	cost := zeroCost
	cost.WatchdogTimeout = -1
	if _, err := Run(4, cost, func(r *Rank) error {
		r.World().Barrier()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
