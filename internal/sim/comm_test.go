package sim

import (
	"math"
	"math/rand"
	"testing"
)

// runP runs fn on p ranks with zero costs and fails the test on error.
func runP(t *testing.T, p int, fn func(r *Rank) error) *Result {
	t.Helper()
	res, err := Run(p, zeroCost, fn)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var collectiveSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestNewCommValidation(t *testing.T) {
	_, err := Run(4, zeroCost, func(r *Rank) error {
		if r.ID() != 0 {
			return nil
		}
		if _, err := r.NewComm([]int{0, 9}); err == nil {
			t.Error("out-of-range member accepted")
		}
		if _, err := r.NewComm([]int{0, 1, 1}); err == nil {
			t.Error("duplicate member accepted")
		}
		if _, err := r.NewComm([]int{1, 2}); err == nil {
			t.Error("communicator without caller accepted")
		}
		c, err := r.NewComm([]int{2, 0, 3})
		if err != nil {
			t.Errorf("valid communicator rejected: %v", err)
			return nil
		}
		if c.Size() != 3 || c.Me() != 1 || c.Member(0) != 2 {
			t.Errorf("comm layout wrong: size=%d me=%d member0=%d", c.Size(), c.Me(), c.Member(0))
		}
		if c.Rank() != r {
			t.Error("Rank() should return the constructing rank")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		for root := 0; root < p; root += max(1, p/3) {
			runP(t, p, func(r *Rank) error {
				w := r.World()
				var data []float64
				if w.Me() == root {
					data = []float64{3.5, -1, float64(root)}
				}
				got := w.Bcast(root, data)
				if len(got) != 3 || got[0] != 3.5 || got[2] != float64(root) {
					t.Errorf("p=%d root=%d rank=%d: bcast got %v", p, root, r.ID(), got)
				}
				return nil
			})
		}
	}
}

func TestBcastLogarithmicLatency(t *testing.T) {
	const p = 16
	res, err := Run(p, Cost{AlphaT: 1}, func(r *Rank) error {
		w := r.World()
		var data []float64
		if w.Me() == 0 {
			data = []float64{1}
		}
		w.Bcast(0, data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial broadcast on 16 ranks: depth log2(16)=4, but the root sends
	// to its children sequentially, so the critical path is at most
	// log2(p) sequential sends along any root-to-leaf path plus the queuing
	// at the root: total <= log2(p) * alpha ... allow [4, 8] alphas.
	tt := res.Time()
	if tt < 4 || tt > 8 {
		t.Errorf("binomial bcast latency on p=16: got %g alphas, want within [4,8]", tt)
	}
}

func TestReduceAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		root := p / 2
		runP(t, p, func(r *Rank) error {
			w := r.World()
			data := []float64{float64(w.Me()), 1}
			got := w.Reduce(root, data, OpSum)
			if w.Me() == root {
				wantSum := float64(p*(p-1)) / 2
				if got == nil || got[0] != wantSum || got[1] != float64(p) {
					t.Errorf("p=%d: reduce got %v want [%g %g]", p, got, wantSum, float64(p))
				}
			} else if got != nil {
				t.Errorf("p=%d rank=%d: non-root got non-nil %v", p, r.ID(), got)
			}
			return nil
		})
	}
}

func TestReduceDoesNotMutateInput(t *testing.T) {
	runP(t, 4, func(r *Rank) error {
		w := r.World()
		data := []float64{float64(w.Me())}
		w.Reduce(0, data, OpSum)
		if data[0] != float64(w.Me()) {
			t.Errorf("rank %d: Reduce mutated caller data: %v", r.ID(), data)
		}
		return nil
	})
}

func TestReduceMax(t *testing.T) {
	runP(t, 8, func(r *Rank) error {
		w := r.World()
		got := w.Reduce(0, []float64{float64(w.Me() * w.Me())}, OpMax)
		if w.Me() == 0 && got[0] != 49 {
			t.Errorf("max reduce: got %v want 49", got)
		}
		return nil
	})
}

func TestAllReduceAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		runP(t, p, func(r *Rank) error {
			w := r.World()
			got := w.AllReduce([]float64{1, float64(w.Me())}, OpSum)
			wantSum := float64(p*(p-1)) / 2
			if got[0] != float64(p) || got[1] != wantSum {
				t.Errorf("p=%d rank=%d: allreduce got %v", p, r.ID(), got)
			}
			return nil
		})
	}
}

func TestAllGatherAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		runP(t, p, func(r *Rank) error {
			w := r.World()
			block := []float64{float64(w.Me()), float64(w.Me()) * 10}
			got := w.AllGather(block)
			if len(got) != 2*p {
				t.Errorf("p=%d: allgather length %d", p, len(got))
				return nil
			}
			for i := 0; i < p; i++ {
				if got[2*i] != float64(i) || got[2*i+1] != float64(i)*10 {
					t.Errorf("p=%d rank=%d: block %d = %v", p, r.ID(), i, got[2*i:2*i+2])
				}
			}
			return nil
		})
	}
}

func TestReduceScatterAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		runP(t, p, func(r *Rank) error {
			w := r.World()
			// data[j*2:(j+1)*2] is this member's contribution to block j:
			// value me + 1000*j; the reduced block j = sum_me = p(p-1)/2 + 1000*j*p.
			data := make([]float64, 2*p)
			for j := 0; j < p; j++ {
				data[2*j] = float64(w.Me()) + 1000*float64(j)
				data[2*j+1] = 1
			}
			got := w.ReduceScatter(data, OpSum)
			want := float64(p*(p-1))/2 + 1000*float64(w.Me())*float64(p)
			if len(got) != 2 || got[0] != want || got[1] != float64(p) {
				t.Errorf("p=%d rank=%d: reducescatter got %v want [%g %g]", p, r.ID(), got, want, float64(p))
			}
			return nil
		})
	}
}

func TestAllToAllAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		runP(t, p, func(r *Rank) error {
			w := r.World()
			// Block for member j encodes (sender, receiver).
			data := make([]float64, p)
			for j := 0; j < p; j++ {
				data[j] = float64(w.Me()*1000 + j)
			}
			got := w.AllToAll(data)
			for i := 0; i < p; i++ {
				want := float64(i*1000 + w.Me())
				if got[i] != want {
					t.Errorf("p=%d rank=%d: block %d = %g want %g", p, r.ID(), i, got[i], want)
				}
			}
			return nil
		})
	}
}

func TestAllToAllTreeMatchesNaive(t *testing.T) {
	for _, p := range collectiveSizes {
		const k = 3
		rng := rand.New(rand.NewSource(42))
		inputs := make([][]float64, p)
		for i := range inputs {
			inputs[i] = make([]float64, p*k)
			for j := range inputs[i] {
				inputs[i][j] = rng.Float64()
			}
		}
		naive := make([][]float64, p)
		tree := make([][]float64, p)
		runP(t, p, func(r *Rank) error {
			naive[r.ID()] = r.World().AllToAll(inputs[r.ID()])
			return nil
		})
		runP(t, p, func(r *Rank) error {
			tree[r.ID()] = r.World().AllToAllTree(inputs[r.ID()])
			return nil
		})
		for i := 0; i < p; i++ {
			for j := range naive[i] {
				if naive[i][j] != tree[i][j] {
					t.Fatalf("p=%d: tree all-to-all differs from naive at rank %d elem %d: %g vs %g",
						p, i, j, tree[i][j], naive[i][j])
				}
			}
		}
	}
}

func TestAllToAllMessageCounts(t *testing.T) {
	// Naive: p-1 messages per rank. Tree: ceil(log2 p) messages per rank.
	const p = 16
	const k = 2
	data := make([]float64, p*k)
	resNaive, err := Run(p, zeroCost, func(r *Rank) error {
		r.World().AllToAll(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resTree, err := Run(p, zeroCost, func(r *Rank) error {
		r.World().AllToAllTree(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resNaive.PerRank[0].MsgsSent; got != p-1 {
		t.Errorf("naive all-to-all messages: got %g want %d", got, p-1)
	}
	if got := resTree.PerRank[0].MsgsSent; got != 4 {
		t.Errorf("tree all-to-all messages: got %g want log2(16)=4", got)
	}
	// Tree moves more words: (k*p/2)*log2(p) vs k*(p-1).
	naiveWords := resNaive.PerRank[0].WordsSent
	treeWords := resTree.PerRank[0].WordsSent
	if treeWords <= naiveWords {
		t.Errorf("tree all-to-all should move more words: tree %g naive %g", treeWords, naiveWords)
	}
	if want := float64(k*p/2) * 4; treeWords != want {
		t.Errorf("tree words: got %g want %g", treeWords, want)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	res, err := Run(4, Cost{GammaT: 1, AlphaT: 0.001}, func(r *Rank) error {
		r.Compute(float64(r.ID()) * 100)
		r.World().Barrier()
		if r.Clock() < 300 {
			t.Errorf("rank %d left barrier at %g, before slowest rank reached it", r.ID(), r.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestShiftByArbitraryAmounts(t *testing.T) {
	const p = 6
	for _, by := range []int{0, 1, 2, 5, 6, 7, -1, -3, -13} {
		runP(t, p, func(r *Rank) error {
			w := r.World()
			got := w.Shift([]float64{float64(w.Me())}, by)
			want := float64(((w.Me()-by)%p + p) % p)
			if got[0] != want {
				t.Errorf("shift by %d: rank %d got %g want %g", by, r.ID(), got[0], want)
			}
			return nil
		})
	}
}

func TestShiftSingleMember(t *testing.T) {
	runP(t, 1, func(r *Rank) error {
		got := r.World().Shift([]float64{7}, 3)
		if got[0] != 7 {
			t.Errorf("single-member shift: got %v", got)
		}
		return nil
	})
}

func TestSubCommunicatorCollectives(t *testing.T) {
	// Split 6 ranks into {0,2,4} and {1,3,5}; allreduce within each group.
	runP(t, 6, func(r *Rank) error {
		group := []int{r.ID() % 2, r.ID()%2 + 2, r.ID()%2 + 4}
		c, err := r.NewComm(group)
		if err != nil {
			return err
		}
		got := c.AllReduce([]float64{float64(r.ID())}, OpSum)
		want := float64(group[0] + group[1] + group[2])
		if got[0] != want {
			t.Errorf("rank %d: group allreduce got %g want %g", r.ID(), got[0], want)
		}
		return nil
	})
}

func TestGrid2D(t *testing.T) {
	if _, err := NewGrid2D(2, 3, 5); err == nil {
		t.Error("2x3 grid with 5 ranks accepted")
	}
	g, err := NewGrid2D(2, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := g.Coords(4); r != 1 || c != 1 {
		t.Errorf("Coords(4) = (%d,%d), want (1,1)", r, c)
	}
	if g.RankAt(1, 2) != 5 {
		t.Errorf("RankAt(1,2) = %d, want 5", g.RankAt(1, 2))
	}
	runP(t, 6, func(r *Rank) error {
		row, col := g.Coords(r.ID())
		rc, err := g.RowComm(r)
		if err != nil {
			return err
		}
		cc, err := g.ColComm(r)
		if err != nil {
			return err
		}
		// Row sum = sum of ranks in my row; col sum likewise.
		rowSum := rc.AllReduce([]float64{float64(r.ID())}, OpSum)[0]
		colSum := cc.AllReduce([]float64{float64(r.ID())}, OpSum)[0]
		wantRow := float64(g.RankAt(row, 0) + g.RankAt(row, 1) + g.RankAt(row, 2))
		wantCol := float64(g.RankAt(0, col) + g.RankAt(1, col))
		if rowSum != wantRow || colSum != wantCol {
			t.Errorf("rank %d: rowSum=%g (want %g) colSum=%g (want %g)", r.ID(), rowSum, wantRow, colSum, wantCol)
		}
		return nil
	})
}

func TestGrid3D(t *testing.T) {
	if _, err := NewGrid3D(2, 3, 11); err == nil {
		t.Error("2x2x3 cuboid with 11 ranks accepted")
	}
	g, err := NewGrid3D(2, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip coords.
	for rank := 0; rank < 12; rank++ {
		row, col, layer := g.Coords(rank)
		if g.RankAt(row, col, layer) != rank {
			t.Errorf("coords round-trip failed for rank %d", rank)
		}
		if row < 0 || row >= 2 || col < 0 || col >= 2 || layer < 0 || layer >= 3 {
			t.Errorf("rank %d: coords (%d,%d,%d) out of range", rank, row, col, layer)
		}
	}
	if lg := g.LayerGrid(); lg.Rows != 2 || lg.Cols != 2 {
		t.Errorf("LayerGrid = %+v", lg)
	}
	runP(t, 12, func(r *Rank) error {
		fc, err := g.FiberComm(r)
		if err != nil {
			return err
		}
		if fc.Size() != 3 {
			t.Errorf("fiber size %d", fc.Size())
		}
		// All fiber members share (row, col).
		row, col, layer := g.Coords(r.ID())
		if fc.Member(layer) != r.ID() {
			t.Errorf("fiber member ordering: member(%d)=%d want %d", layer, fc.Member(layer), r.ID())
		}
		sum := fc.AllReduce([]float64{1}, OpSum)
		if sum[0] != 3 {
			t.Errorf("fiber allreduce got %g", sum[0])
		}
		rc, err := g.RowComm(r)
		if err != nil {
			return err
		}
		cc, err := g.ColComm(r)
		if err != nil {
			return err
		}
		lc, err := g.LayerComm(r)
		if err != nil {
			return err
		}
		if rc.Size() != 2 || cc.Size() != 2 || lc.Size() != 4 {
			t.Errorf("comm sizes: row=%d col=%d layer=%d", rc.Size(), cc.Size(), lc.Size())
		}
		// Every member of my row comm shares my row and layer.
		for i := 0; i < rc.Size(); i++ {
			mr, _, ml := g.Coords(rc.Member(i))
			if mr != row || ml != layer {
				t.Errorf("row comm member %d has coords (%d,_,%d), want row %d layer %d", rc.Member(i), mr, ml, row, layer)
			}
		}
		_, mcol, mlayer := g.Coords(cc.Member(0))
		if mcol != col || mlayer != layer {
			t.Errorf("col comm first member mismatched")
		}
		return nil
	})
}

func TestAllGatherSingle(t *testing.T) {
	runP(t, 1, func(r *Rank) error {
		got := r.World().AllGather([]float64{1, 2})
		if len(got) != 2 || got[0] != 1 {
			t.Errorf("p=1 allgather: %v", got)
		}
		return nil
	})
}

func TestReduceScatterRejectsBadLength(t *testing.T) {
	_, err := Run(3, zeroCost, func(r *Rank) error {
		r.World().ReduceScatter(make([]float64, 4), OpSum) // 4 % 3 != 0
		return nil
	})
	if err == nil {
		t.Error("indivisible ReduceScatter length should error")
	}
}

func TestAllToAllRejectsBadLength(t *testing.T) {
	_, err := Run(3, zeroCost, func(r *Rank) error {
		r.World().AllToAll(make([]float64, 4))
		return nil
	})
	if err == nil {
		t.Error("indivisible AllToAll length should error")
	}
}

// Property: for power-of-two sizes, reduce+bcast (AllReduce) produces the
// same result as gathering everything and summing locally.
func TestAllReduceMatchesGatherSum(t *testing.T) {
	const p = 8
	const k = 5
	rng := rand.New(rand.NewSource(7))
	inputs := make([][]float64, p)
	for i := range inputs {
		inputs[i] = make([]float64, k)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}
	want := make([]float64, k)
	for _, in := range inputs {
		for j, v := range in {
			want[j] += v
		}
	}
	runP(t, p, func(r *Rank) error {
		got := r.World().AllReduce(inputs[r.ID()], OpSum)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Errorf("rank %d elem %d: got %g want %g", r.ID(), j, got[j], want[j])
			}
		}
		return nil
	})
}
