package sim

import (
	"math"
	"testing"
)

// TestClockDecompositionIdentity: ComputeTime + SendTime + RecvTime +
// WaitTime must equal the final clock on every rank, for arbitrary
// programs, under both charging semantics.
func TestClockDecompositionIdentity(t *testing.T) {
	for _, charge := range []bool{false, true} {
		cost := Cost{GammaT: 1e-9, BetaT: 3e-9, AlphaT: 1e-7, ChargeReceiver: charge}
		res, err := Run(6, cost, func(r *Rank) error {
			w := r.World()
			r.Compute(float64(1000 * (r.ID() + 1)))
			data := make([]float64, 64)
			for s := 0; s < 4; s++ {
				data = w.Shift(data, 1)
				r.Compute(500)
			}
			w.AllReduce(data, OpSum)
			w.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for id, s := range res.PerRank {
			sum := s.ComputeTime + s.SendTime + s.RecvTime + s.WaitTime
			if math.Abs(sum-s.Time) > 1e-12*s.Time {
				t.Errorf("charge=%v rank %d: decomposition %g != clock %g", charge, id, sum, s.Time)
			}
		}
	}
}

func TestWaitTimeCapturesImbalance(t *testing.T) {
	// Rank 1 computes 100x longer; rank 0's wait time must absorb the gap.
	res, err := Run(2, Cost{GammaT: 1, AlphaT: 0.5}, func(r *Rank) error {
		if r.ID() == 1 {
			r.Compute(1000)
			r.Send(0, []float64{1})
		} else {
			r.Compute(10)
			r.Recv(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerRank[0]
	// Arrival = 1000.5; rank 0's own clock was 10 => wait 990.5.
	if math.Abs(s.WaitTime-990.5) > 1e-12 {
		t.Errorf("wait time: got %g want 990.5", s.WaitTime)
	}
	if s.ComputeTime != 10 {
		t.Errorf("compute time: got %g", s.ComputeTime)
	}
	if res.PerRank[1].WaitTime != 0 {
		t.Errorf("sender should not wait: %g", res.PerRank[1].WaitTime)
	}
	if res.PerRank[1].SendTime != 0.5 {
		t.Errorf("sender send time: got %g", res.PerRank[1].SendTime)
	}
}

func TestRecvTimeOnlyUnderChargeReceiver(t *testing.T) {
	run := func(charge bool) Stats {
		res, err := Run(2, Cost{AlphaT: 1, BetaT: 0.5, ChargeReceiver: charge}, func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, make([]float64, 4))
			} else {
				r.Recv(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerRank[1]
	}
	if got := run(false).RecvTime; got != 0 {
		t.Errorf("default semantics must not charge receive time: %g", got)
	}
	if got := run(true).RecvTime; got != 3 { // 1 + 4*0.5
		t.Errorf("charged receive time: got %g want 3", got)
	}
}

func TestDecompositionAggregates(t *testing.T) {
	res, err := Run(3, Cost{GammaT: 1}, func(r *Rank) error {
		r.Compute(float64(10 * (r.ID() + 1)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxStats().ComputeTime; got != 30 {
		t.Errorf("max compute time: got %g", got)
	}
	if got := res.TotalStats().ComputeTime; got != 60 {
		t.Errorf("total compute time: got %g", got)
	}
}
