package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Fast-forwarded (conducted) collectives.
//
// Under the event engine, a collective like AllGather costs every member
// p−1 park/resume round trips: each ring step blocks on a receive, hands
// its worker slot away, and is woken one message later. None of that
// scheduling is observable — when no fault plan, observer or cancel
// context touches the run (eventEngine.ffOK), the only things a
// collective changes are per-rank clocks, counters and payload buffers,
// and all of those are pure functions of the collective's message
// schedule.
//
// So the engine fast-forwards: the members of one collective call
// rendezvous, the first s−1 arrivers park once, and the LAST arriver
// conducts the whole collective centrally — a dedicated per-op loop
// executes every member's schedule (send/recv/compute, exactly the ops
// the generic implementation would run, in each member's program order),
// pricing each op with the very same code the slow path uses (sendPriced,
// finishRecv, Compute). Cross-member data movement happens in dependency
// order, so a message is handed straight from the priced send to the
// priced receive — no per-step closures, no channel round trips on idle
// pairs. One park per member per collective, regardless of the number of
// rounds.
//
// Soundness: conducted execution is just one particular valid scheduling
// of the same program.
//
//   - Identical pricing: every conducted send/recv/compute runs the same
//     pricing functions on the same Rank state in the same per-member
//     order, so clocks and counters match the slow path bit for bit.
//   - Identical data flow: every conducted transfer materializes the
//     same pair queue the slow path would use (so ActivePairs agrees)
//     and respects its FIFO. A conducted receive takes the pair's FIFO
//     head whatever it is — if a program left stale point-to-point
//     traffic queued, the conducted message joins the back of the queue
//     and the receive consumes the stale head, exactly like the generic
//     implementation's enqueue+dequeue would. Only when the pair is idle
//     is the message handed over directly, which is indistinguishable
//     from a round trip through an empty FIFO.
//   - Rendezvous identity: members of one communicator call collectives
//     in one program order (the MPI contract the generic implementations
//     already rely on — per-pair FIFO is what keeps THEIR rounds apart),
//     so keying the rendezvous on (membership, per-membership call
//     counter, op code) matches exactly the calls that would have
//     exchanged messages.
//   - Progress: each per-op conductor executes the schedule in
//     dependency order (a receive always runs after the send it is
//     matched with), so conduction cannot stall. The one way members can
//     disagree about the schedule — mismatched call parameters, e.g. two
//     different Bcast roots — is checked up front and fails loudly; the
//     live cluster would have deadlocked inside the collective.
//
// Composite collectives (AllReduce, Barrier, BcastLarge, ReduceLarge,
// Split) are sequences of the conducted primitives and fast-forward
// automatically.

// ffMemb identifies a communicator membership: an FNV-1a hash of the
// member list plus enough structure (size, endpoints) to make an
// accidental collision practically impossible.
type ffMemb struct {
	hash        uint64
	size        int
	first, last int
}

// ffKey identifies one collective call cluster-wide: the membership, the
// per-membership collective counter, and the op code.
type ffKey struct {
	memb ffMemb
	seq  int
	op   uint8
}

// Collective op codes for ffKey; mismatched programs (one member calls
// Bcast where another calls Reduce) land on different keys and fail at
// quiescence instead of conducting garbage.
const (
	ffShift uint8 = iota
	ffBcast
	ffReduce
	ffAllGather
	ffReduceScatter
	ffAllToAll
	ffAllToAllTree
	ffGather
	ffScatter
	// Composite collectives conducted as a single rendezvous: one park per
	// member for the whole scatter+allgather (resp. reducescatter+gather)
	// schedule instead of one per primitive.
	ffBcastLarge
	ffReduceLarge
)

// ffCall is one member's arrival at a rendezvous: its rank handle (safe
// for the conductor to drive — the member is parked), its payload, and
// the op's parameters.
type ffCall struct {
	rank *Rank
	data []float64
	arg  int // by (Shift) or root (Bcast/Reduce/Gather/Scatter)
	rop  ReduceOp
}

// ffRendezvous collects the members of one collective call. Guarded by
// eventEngine.mu until the last arriver removes it from the map; after
// that the conductor owns it exclusively.
type ffRendezvous struct {
	need    int
	got     int
	members []int
	calls   []ffCall
	out     [][]float64
	// done is set (under the engine lock) once the conductor has filled
	// out, so a member woken for any other reason can tell the collective
	// completed.
	done bool
	// left counts members that have not yet read their result; the member
	// that decrements it to zero returns the rendezvous to the pool. A
	// run conducts one rendezvous per collective call — hundreds of
	// thousands on a large 2.5D run — while only a bounded set is ever
	// live, so pooling removes three allocations per call.
	left atomic.Int32
}

var ffRendPool = sync.Pool{New: func() any { return new(ffRendezvous) }}

// getRend returns a cleared rendezvous sized for n members. Callers that
// bypass the member counting (the synthesized rendezvous of the composite
// conductors) release it with putRend directly.
func getRend(n int) *ffRendezvous {
	rv := ffRendPool.Get().(*ffRendezvous)
	rv.need, rv.got, rv.done = n, 0, false
	if cap(rv.calls) < n {
		rv.calls = make([]ffCall, n)
	} else {
		rv.calls = rv.calls[:n]
	}
	if cap(rv.out) < n {
		rv.out = make([][]float64, n)
	} else {
		rv.out = rv.out[:n]
	}
	rv.left.Store(int32(n))
	return rv
}

// putRend zeroes the rendezvous (rank handles and payloads must not leak
// into the pool) and recycles it.
func putRend(rv *ffRendezvous) {
	for i := range rv.calls {
		rv.calls[i] = ffCall{}
	}
	for i := range rv.out {
		rv.out[i] = nil
	}
	rv.members = nil
	ffRendPool.Put(rv)
}

// releaseRend is the counted release for rendezvous that went through
// ffRun: the caller must not touch rv after this call.
func releaseRend(rv *ffRendezvous) {
	if rv.left.Add(-1) == 0 {
		putRend(rv)
	}
}

// membKey returns the communicator's membership identity, memoized.
func (c *Comm) membKey() ffMemb {
	if !c.ffmSet {
		const offset64, prime64 = 14695981039346656037, 1099511628211
		h := uint64(offset64)
		for _, m := range c.members {
			h ^= uint64(m)
			h *= prime64
		}
		c.ffm = ffMemb{hash: h, size: len(c.members), first: c.members[0], last: c.members[len(c.members)-1]}
		c.ffmSet = true
	}
	return c.ffm
}

// ffEngine returns the event engine when this run fast-forwards
// collectives, nil otherwise (goroutine backend, or the engine's slow
// path when faults/observers/cancellation need event-by-event execution).
func (c *Comm) ffEngine() *eventEngine {
	if e := c.rank.cluster.eng; e != nil && e.ffOK {
		return e
	}
	return nil
}

// ffRun rendezvouses one collective call and returns the caller's result.
// The first need−1 arrivers park; the last conducts.
func (e *eventEngine) ffRun(c *Comm, op uint8, data []float64, arg int, rop ReduceOp) []float64 {
	r := c.rank
	memb := c.membKey()
	seq := -1
	for i := range r.ffSeq {
		if r.ffSeq[i].memb == memb {
			seq = r.ffSeq[i].seq
			r.ffSeq[i].seq = seq + 1
			break
		}
	}
	if seq < 0 {
		seq = 0
		r.ffSeq = append(r.ffSeq, ffSeqEntry{memb: memb, seq: 1})
	}
	key := ffKey{memb: memb, seq: seq, op: op}
	e.mu.Lock()
	rv := e.rend[key]
	if rv == nil {
		rv = getRend(len(c.members))
		rv.members = c.members
		e.rend[key] = rv
	}
	rv.calls[c.me] = ffCall{rank: r, data: data, arg: arg, rop: rop}
	rv.got++
	if rv.got < rv.need {
		// Park as a blocked receive on member 0: if the collective can
		// never complete (a member exited out of an erroneous program),
		// quiescence treats us like any blocked receiver.
		for {
			kind := e.parkLocked(r, opBlockedRecv, c.members[0], 0)
			switch kind {
			case evConducted:
				out := rv.out[c.me]
				releaseRend(rv)
				return out
			case evCancel:
				panic(cancelPanic{})
			case evAbort:
				panic(abortPanic{err: e.c.abortErr[r.id]})
			}
			// evWake: either an unrelated point-to-point message landed
			// on the watched pair (we are not receiving it — re-park) or
			// member 0 exited with the rendezvous incomplete.
			e.mu.Lock()
			if rv.done {
				e.mu.Unlock()
				out := rv.out[c.me]
				releaseRend(rv)
				return out
			}
			if e.exitedLocked(c.members[0]) {
				e.mu.Unlock()
				// Orphaned collective: fail like a receive on an exited
				// peer, naming the root cause. (The rendezvous is not
				// recycled on this error path.)
				return r.finishRecvOrFail(c.members[0], message{}, false)
			}
		}
	}
	delete(e.rend, key)
	// Conduct outside the engine lock: the rendezvous is exclusively ours
	// now, the parked members' rank handles are quiescent, and the
	// conductor still holds its worker slot so quiescence cannot trigger.
	e.mu.Unlock()
	conduct(rv, op)
	e.mu.Lock()
	rv.done = true
	for i := range rv.calls {
		if i != c.me {
			e.wake(rv.calls[i].rank.id, evConducted)
		}
	}
	e.dispatch()
	e.mu.Unlock()
	out := rv.out[c.me]
	releaseRend(rv)
	return out
}

// ffWire is one in-flight conducted message: the priced message plus the
// pair queue it would have traversed. Registering the pair (queueTo) is
// what keeps ActivePairs in parity with the slow path; the queue's ring
// buffer itself stays unallocated unless stale traffic forces a real
// enqueue below.
type ffWire struct {
	m message
	q *pairQ
	// shared marks a no-copy send: the payload still belongs to the
	// sender, so it must be copied if the message outlives the conduct
	// (the stale-traffic enqueue in ffRecv).
	shared bool
}

// ffSend prices member rank r's send to global rank dst and returns the
// wire carrying the message toward its matched ffRecv. The receiver owns
// the payload, exactly like the generic path.
func ffSend(r *Rank, dst int, payload []float64) ffWire {
	q := r.queueTo(dst)
	return ffWire{m: r.sendPriced(dst, payload), q: q}
}

// ffSendShared is ffSend without the payload copy, for transfers whose
// receiver consumes the data inside the conduct (combines it, or copies
// its block out) instead of keeping the buffer.
func ffSendShared(r *Rank, dst int, payload []float64) ffWire {
	q := r.queueTo(dst)
	return ffWire{m: r.sendPricedShared(dst, payload), q: q, shared: true}
}

// ffRecv completes dst's receive of the conducted message on w from
// global rank src. When the pair is idle — no pushed-back head, nothing
// queued — the message is handed over directly; enqueuing and immediately
// dequeuing through an empty FIFO would be indistinguishable. Stale
// point-to-point traffic queued ahead of the collective is consumed
// first, with the conducted message joining the back of the queue,
// exactly the order the generic implementation's FIFO would impose.
// (The conductor acts as both endpoints here, which the SPSC ring allows:
// src and dst are parked members whose state the conductor owns.)
func ffRecv(dst *Rank, src int, w ffWire) []float64 {
	head, ok := dst.takePushback(src)
	if !ok {
		head, ok = w.q.rg.pop()
		if !ok {
			// Nothing queued ahead of us: hand the message straight over.
			return dst.finishRecv(src, w.m)
		}
	}
	// Stale traffic exists: our message outlives the conduct, so a shared
	// payload must become a private copy now (the sender reclaims its
	// buffer when the collective returns).
	if w.shared {
		cp := make([]float64, len(w.m.data))
		copy(cp, w.m.data)
		w.m.data = cp
	}
	if !w.q.rg.push(w.m) {
		// Full pair buffer: move the next head into the pushback slot —
		// it is precisely a head-of-FIFO side buffer — to make room.
		next, _ := w.q.rg.pop()
		w.q.rg.push(w.m)
		if dst.pushback == nil {
			dst.pushback = make(map[int]message, 2)
		}
		dst.pushback[src] = next
	}
	return dst.finishRecv(src, head)
}

// conduct executes the collective's whole message schedule directly: a
// dedicated per-op loop prices every member's sends, receives and
// combines in that member's program order (the same order the generic
// implementation executes them), batching cross-member data movement
// into dependency-ordered phases. The members' carriers are parked, so
// the conductor owns their Rank state exclusively.
func conduct(rv *ffRendezvous, op uint8) {
	// Members disagreeing about the call's parameters (two Bcast roots,
	// two Shift strides) could never have completed the collective on the
	// live cluster; fail loudly instead of conducting garbage.
	arg := rv.calls[0].arg
	for i := 1; i < len(rv.calls); i++ {
		if rv.calls[i].arg != arg {
			panic(fmt.Sprintf("sim: conducted collective (op %d) called with mismatched parameters (%d vs %d): communication pattern deadlocks inside the collective", op, arg, rv.calls[i].arg))
		}
	}
	// Conducted pricing drives parked members' Compute from the
	// conductor's goroutine: the cooperative yield must not trigger there
	// (it would park the conductor on a member's scheduling record).
	for i := range rv.calls {
		rv.calls[i].rank.noYield = true
	}
	switch op {
	case ffShift:
		conductShift(rv, arg)
	case ffBcast:
		conductBcast(rv, arg)
	case ffReduce:
		conductReduce(rv, arg)
	case ffAllGather:
		conductAllGather(rv)
	case ffReduceScatter:
		conductReduceScatter(rv)
	case ffAllToAll:
		conductAllToAll(rv)
	case ffAllToAllTree:
		conductAllToAllTree(rv)
	case ffGather:
		conductGather(rv, arg)
	case ffScatter:
		conductScatter(rv, arg)
	case ffBcastLarge:
		conductBcastLarge(rv, arg)
	default:
		conductReduceLarge(rv, arg)
	}
	for i := range rv.calls {
		rv.calls[i].rank.noYield = false
	}
}

// conductShift mirrors Comm.Shift (by already normalized, non-zero):
// every member sends, then every member receives.
func conductShift(rv *ffRendezvous, by int) {
	p := len(rv.members)
	wires := make([]ffWire, p)
	for i := range rv.calls {
		wires[i] = ffSend(rv.calls[i].rank, rv.members[(i+by)%p], rv.calls[i].data)
	}
	for i := range rv.calls {
		src := (i - by + p) % p
		rv.out[i] = ffRecv(rv.calls[i].rank, rv.members[src], wires[src])
	}
}

// conductBcast mirrors Comm.Bcast's binomial tree: processing members in
// virtual-rank order runs every parent before its children, and each
// member's ops stay in program order (receive from parent, then send to
// children, high bit first).
func conductBcast(rv *ffRendezvous, root int) {
	p := len(rv.members)
	pend := make([]ffWire, p) // indexed by receiving child's virtual rank
	for vme := 0; vme < p; vme++ {
		i := (vme + root) % p
		r := rv.calls[i].rank
		var buf []float64
		low := vme & -vme
		if vme == 0 {
			low = nextPow2(p)
			buf = make([]float64, len(rv.calls[i].data))
			copy(buf, rv.calls[i].data)
		} else {
			parent := vme & (vme - 1)
			buf = ffRecv(r, rv.members[(parent+root)%p], pend[vme])
		}
		for bit := low >> 1; bit > 0; bit >>= 1 {
			child := vme | bit
			if child != vme && child < p {
				pend[child] = ffSend(r, rv.members[(child+root)%p], buf)
			}
		}
		rv.out[i] = buf
	}
}

// conductReduce mirrors Comm.Reduce's reverse binomial tree: descending
// virtual-rank order runs every sender before the partner that combines
// its contribution (a member's send is its last op).
func conductReduce(rv *ffRendezvous, root int) {
	p := len(rv.members)
	pend := make([]ffWire, p) // indexed by sending member's virtual rank
	for vme := p - 1; vme >= 0; vme-- {
		i := (vme + root) % p
		r := rv.calls[i].rank
		rop := rv.calls[i].rop
		acc := make([]float64, len(rv.calls[i].data))
		copy(acc, rv.calls[i].data)
		sent := false
		for bit := 1; bit < p; bit <<= 1 {
			if vme&bit != 0 {
				// The send is the member's last op and the partner only
				// combines the contribution — the buffer never escapes.
				pend[vme] = ffSendShared(r, rv.members[((vme&^bit)+root)%p], acc)
				sent = true
				break
			}
			partner := vme | bit
			if partner < p {
				contrib := ffRecv(r, rv.members[(partner+root)%p], pend[partner])
				if len(contrib) != len(acc) {
					panic(fmt.Sprintf("sim: reduce length mismatch: %d vs %d", len(contrib), len(acc)))
				}
				r.Compute(float64(len(acc)))
				rop(acc, contrib)
			}
		}
		if vme == 0 && !sent {
			rv.out[i] = acc
		}
	}
}

// conductAllGather mirrors Comm.AllGather's ring (p ≥ 2 — the wrapper
// handles p == 1 locally): per round, every member sends its current
// block, then every member receives, records and forwards.
func conductAllGather(rv *ffRendezvous) {
	p := len(rv.members)
	cur := make([][]float64, p)
	wires := make([]ffWire, p)
	for i := range rv.calls {
		block := rv.calls[i].data
		k := len(block)
		out := make([]float64, p*k)
		copy(out[i*k:(i+1)*k], block)
		rv.out[i] = out
		cur[i] = block
	}
	for step := 0; step < p-1; step++ {
		for i := range rv.calls {
			// Forwarded buffers are only read: the receiver copies its
			// block into out and passes the buffer on.
			wires[i] = ffSendShared(rv.calls[i].rank, rv.members[(i+1)%p], cur[i])
		}
		for i := range rv.calls {
			prev := (i - 1 + p) % p
			v := ffRecv(rv.calls[i].rank, rv.members[prev], wires[prev])
			cur[i] = v
			k := len(rv.calls[i].data)
			owner := (i - 1 - step + 2*p) % p
			copy(rv.out[i][owner*k:(owner+1)*k], v)
		}
	}
}

// conductReduceScatter mirrors Comm.ReduceScatter's ring (p ≥ 2,
// divisibility checked by the wrapper): per round, every member sends,
// then every member receives and combines.
func conductReduceScatter(rv *ffRendezvous) {
	p := len(rv.members)
	accs := make([][]float64, p)
	wires := make([]ffWire, p)
	for i := range rv.calls {
		data := rv.calls[i].data
		acc := make([]float64, len(data))
		copy(acc, data)
		accs[i] = acc
	}
	for step := 0; step < p-1; step++ {
		for i := range rv.calls {
			k := len(rv.calls[i].data) / p
			sendBlock := (i - 1 - step + 2*p) % p
			// The block is combined into the receiver's accumulator within
			// this step; nobody retains it.
			wires[i] = ffSendShared(rv.calls[i].rank, rv.members[(i+1)%p], accs[i][sendBlock*k:(sendBlock+1)*k])
		}
		for i := range rv.calls {
			k := len(rv.calls[i].data) / p
			prev := (i - 1 + p) % p
			incoming := ffRecv(rv.calls[i].rank, rv.members[prev], wires[prev])
			recvBlock := (i - 2 - step + 3*p) % p
			rv.calls[i].rank.Compute(float64(k))
			rv.calls[i].rop(accs[i][recvBlock*k:(recvBlock+1)*k], incoming)
		}
	}
	for i := range rv.calls {
		k := len(rv.calls[i].data) / p
		out := make([]float64, k)
		copy(out, accs[i][i*k:(i+1)*k])
		rv.out[i] = out
	}
}

// conductAllToAll mirrors Comm.AllToAll's direct exchange: per stride s,
// every member sends block i+s, then every member receives block i−s.
func conductAllToAll(rv *ffRendezvous) {
	p := len(rv.members)
	wires := make([]ffWire, p)
	for i := range rv.calls {
		data := rv.calls[i].data
		k := len(data) / p
		out := make([]float64, len(data))
		copy(out[i*k:(i+1)*k], data[i*k:(i+1)*k])
		rv.out[i] = out
	}
	for s := 1; s < p; s++ {
		for i := range rv.calls {
			data := rv.calls[i].data
			k := len(data) / p
			dst := (i + s) % p
			wires[i] = ffSendShared(rv.calls[i].rank, rv.members[dst], data[dst*k:(dst+1)*k])
		}
		for i := range rv.calls {
			k := len(rv.calls[i].data) / p
			src := (i - s + p) % p
			v := ffRecv(rv.calls[i].rank, rv.members[src], wires[src])
			copy(rv.out[i][src*k:(src+1)*k], v)
		}
	}
}

// conductAllToAllTree mirrors Comm.AllToAllTree's Bruck phases: the
// local rotations are free (no pricing), the log-round exchanges are
// conducted — per bit, every member packs and sends its marked slots,
// then every member receives and unpacks.
func conductAllToAllTree(rv *ffRendezvous) {
	p := len(rv.members)
	bufs := make([][]float64, p)
	wires := make([]ffWire, p)
	for i := range rv.calls {
		data := rv.calls[i].data
		k := len(data) / p
		buf := make([]float64, len(data))
		for j := 0; j < p; j++ {
			srcBlock := (i + j) % p
			copy(buf[j*k:(j+1)*k], data[srcBlock*k:(srcBlock+1)*k])
		}
		bufs[i] = buf
	}
	for bit := 1; bit < p; bit <<= 1 {
		for i := range rv.calls {
			k := len(rv.calls[i].data) / p
			buf := bufs[i]
			var send []float64
			for j := 0; j < p; j++ {
				if j&bit != 0 {
					send = append(send, buf[j*k:(j+1)*k]...)
				}
			}
			wires[i] = ffSendShared(rv.calls[i].rank, rv.members[(i+bit)%p], send)
		}
		for i := range rv.calls {
			k := len(rv.calls[i].data) / p
			src := (i - bit + p) % p
			v := ffRecv(rv.calls[i].rank, rv.members[src], wires[src])
			buf := bufs[i]
			idx := 0
			for j := 0; j < p; j++ {
				if j&bit != 0 {
					copy(buf[j*k:(j+1)*k], v[idx*k:(idx+1)*k])
					idx++
				}
			}
		}
	}
	for i := range rv.calls {
		data := rv.calls[i].data
		k := len(data) / p
		out := make([]float64, len(data))
		for j := 0; j < p; j++ {
			srcMember := (i - j + p) % p
			copy(out[srcMember*k:(srcMember+1)*k], bufs[i][j*k:(j+1)*k])
		}
		rv.out[i] = out
	}
}

// conductGather mirrors Comm.Gather: non-roots send, then the root
// receives in ascending member order.
func conductGather(rv *ffRendezvous, root int) {
	p := len(rv.members)
	wires := make([]ffWire, p)
	for j := 0; j < p; j++ {
		if j != root {
			wires[j] = ffSendShared(rv.calls[j].rank, rv.members[root], rv.calls[j].data)
		}
	}
	rr := rv.calls[root].rank
	chunk := rv.calls[root].data
	out := make([]float64, p*len(chunk))
	copy(out[root*len(chunk):(root+1)*len(chunk)], chunk)
	for j := 0; j < p; j++ {
		if j == root {
			continue
		}
		v := ffRecv(rr, rv.members[j], wires[j])
		copy(out[j*len(v):(j+1)*len(v)], v)
	}
	rv.out[root] = out
}

// conductScatter mirrors Comm.Scatter (divisibility checked by the
// wrapper on the root): the root sends every chunk in ascending member
// order, then every non-root receives.
func conductScatter(rv *ffRendezvous, root int) {
	p := len(rv.members)
	data := rv.calls[root].data
	k := len(data) / p
	wires := make([]ffWire, p)
	rr := rv.calls[root].rank
	for j := 0; j < p; j++ {
		if j != root {
			wires[j] = ffSend(rr, rv.members[j], data[j*k:(j+1)*k])
		}
	}
	for j := 0; j < p; j++ {
		if j == root {
			out := make([]float64, k)
			copy(out, data[root*k:(root+1)*k])
			rv.out[j] = out
		} else {
			rv.out[j] = ffRecv(rv.calls[j].rank, rv.members[root], wires[j])
		}
	}
}

// conductBcastLarge mirrors Comm.BcastLarge's whole schedule — one-word
// chunk-size announcement over a binomial bcast, root's direct scatter,
// ring all-gather — under a single rendezvous, so a member parks once for
// the composite instead of once per primitive plus once per scatter
// receive.
func conductBcastLarge(rv *ffRendezvous, root int) {
	p := len(rv.members)
	k := -1
	if d := rv.calls[root].data; len(d) >= p && len(d)%p == 0 {
		k = len(d)
	}
	// The root announces the chunk size (or the fallback) exactly like the
	// generic path's one-word Bcast.
	ann := getRend(p)
	ann.members = rv.members
	for i := range rv.calls {
		ann.calls[i] = ffCall{rank: rv.calls[i].rank}
	}
	ann.calls[root].data = []float64{float64(k)}
	conductBcast(ann, root)
	putRend(ann)
	if k < 0 {
		// Payload too small to split evenly: binomial bcast of the data.
		conductBcast(rv, root)
		return
	}
	chunk := k / p
	// Scatter: the root sends member i its chunk, in ascending member
	// order (the root's program order), then each member receives.
	data := rv.calls[root].data
	rr := rv.calls[root].rank
	wires := make([]ffWire, p)
	for i := 0; i < p; i++ {
		if i != root {
			wires[i] = ffSend(rr, rv.members[i], data[i*chunk:(i+1)*chunk])
		}
	}
	mine := make([][]float64, p)
	mroot := make([]float64, chunk)
	copy(mroot, data[root*chunk:(root+1)*chunk])
	mine[root] = mroot
	for i := 0; i < p; i++ {
		if i != root {
			mine[i] = ffRecv(rv.calls[i].rank, rv.members[root], wires[i])
		}
	}
	// Ring all-gather of the chunks, reusing the primitive's conductor on
	// a synthesized rendezvous. Its out array is the parent's (that is
	// where members read their results), swapped back before recycling so
	// the pool never zeroes live results.
	ag := getRend(p)
	ownOut := ag.out
	ag.members, ag.out = rv.members, rv.out
	for i := range rv.calls {
		ag.calls[i] = ffCall{rank: rv.calls[i].rank, data: mine[i]}
	}
	conductAllGather(ag)
	ag.out = ownOut
	putRend(ag)
}

// conductReduceLarge mirrors Comm.ReduceLarge — ring reduce-scatter, then
// a direct gather onto the root — under a single rendezvous. Non-root
// members end with nil, like the generic Gather.
func conductReduceLarge(rv *ffRendezvous, root int) {
	p := len(rv.members)
	// rs borrows the parent's calls and g the parent's out; both borrows
	// are swapped back before recycling (putRend zeroes what it holds).
	rs := getRend(p)
	ownCalls := rs.calls
	rs.members, rs.calls = rv.members, rv.calls
	conductReduceScatter(rs)
	g := getRend(p)
	ownOut := g.out
	g.members, g.out = rv.members, rv.out
	for i := range rv.calls {
		g.calls[i] = ffCall{rank: rv.calls[i].rank, data: rs.out[i]}
	}
	conductGather(g, root)
	g.out = ownOut
	putRend(g)
	rs.calls = ownCalls
	putRend(rs)
}
