package sim

import (
	"context"
	"errors"
	"testing"
)

// eventCost returns unitCost switched to the event backend.
func eventCost() Cost {
	cost := unitCost
	cost.Runtime = RuntimeEvent
	return cost
}

// runBothBackends executes the same program under the goroutine and event
// runtimes and requires bitwise-identical Results: per-rank Stats structs
// compare with == (float64 equality, no tolerance) and ActivePairs must
// match. It returns both results for further inspection.
func runBothBackends(t *testing.T, p int, cost Cost, fn func(r *Rank) error) (*Result, *Result) {
	t.Helper()
	gCost := cost
	gCost.Runtime = RuntimeGoroutine
	gRes, gErr := Run(p, gCost, fn)
	eCost := cost
	eCost.Runtime = RuntimeEvent
	eRes, eErr := Run(p, eCost, fn)
	if (gErr == nil) != (eErr == nil) {
		t.Fatalf("error mismatch: goroutine=%v event=%v", gErr, eErr)
	}
	if gErr != nil && gErr.Error() != eErr.Error() {
		t.Fatalf("error text mismatch:\n  goroutine: %v\n  event:     %v", gErr, eErr)
	}
	if gRes == nil || eRes == nil {
		return gRes, eRes
	}
	if gRes.ActivePairs != eRes.ActivePairs {
		t.Errorf("ActivePairs: goroutine=%d event=%d", gRes.ActivePairs, eRes.ActivePairs)
	}
	for i := range gRes.PerRank {
		if gRes.PerRank[i] != eRes.PerRank[i] {
			t.Errorf("rank %d stats differ:\n  goroutine: %+v\n  event:     %+v",
				i, gRes.PerRank[i], eRes.PerRank[i])
		}
	}
	return gRes, eRes
}

func TestRuntimeValidation(t *testing.T) {
	cost := zeroCost
	cost.Runtime = Runtime(99)
	if _, err := NewCluster(2, cost); err == nil {
		t.Error("unknown runtime mode must be rejected")
	}
	cost = zeroCost
	cost.Workers = -1
	if _, err := NewCluster(2, cost); err == nil {
		t.Error("negative worker count must be rejected")
	}
}

func TestRuntimeString(t *testing.T) {
	if RuntimeGoroutine.String() != "goroutine" || RuntimeEvent.String() != "event" {
		t.Errorf("Runtime strings: %q %q", RuntimeGoroutine, RuntimeEvent)
	}
}

func TestEventBackendSendRecv(t *testing.T) {
	res, err := Run(2, eventCost(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{1, 2, 3})
		} else {
			got := r.Recv(0)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("rank 1 received %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRank[0].WordsSent != 3 || res.PerRank[0].MsgsSent != 1 {
		t.Errorf("sender counters: %+v", res.PerRank[0])
	}
	if res.PerRank[1].Time != res.PerRank[0].Time {
		t.Errorf("receiver clock %g != sender clock %g",
			res.PerRank[1].Time, res.PerRank[0].Time)
	}
}

// TestEventBackendBackpressure fills a bounded mailbox so the sender must
// park on a full queue and be woken by the receiver's dequeues.
func TestEventBackendBackpressure(t *testing.T) {
	cost := eventCost()
	cost.ChanCap = 2
	runBothBackends(t, 2, cost, func(r *Rank) error {
		const n = 20
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, []float64{float64(i)})
			}
		} else {
			r.Compute(50) // let the queue fill first
			for i := 0; i < n; i++ {
				got := r.Recv(0)
				if got[0] != float64(i) {
					return errors.New("out-of-order delivery")
				}
			}
		}
		return nil
	})
}

// TestEventBackendCollectivesIdentical drives every collective through both
// backends with an observer attached (forcing the event engine down its
// event-by-event slow path) and demands bitwise-identical Results.
func TestEventBackendCollectivesIdentical(t *testing.T) {
	for _, p := range []int{2, 3, 4, 7, 8} {
		cost := unitCost
		cost.Observers = []Observer{nopObserver{}}
		runBothBackends(t, p, cost, collectiveTour)
	}
}

// TestEventBackendFastForwardIdentical runs the same tour with no observer,
// fault plan, or context, so the event engine takes the fast-forward path.
// The goroutine backend is the reference; Results must still be bitwise
// identical.
func TestEventBackendFastForwardIdentical(t *testing.T) {
	for _, p := range []int{2, 3, 4, 7, 8, 16} {
		runBothBackends(t, p, unitCost, collectiveTour)
	}
}

// nopObserver exists only to disqualify the fast-forward path.
type nopObserver struct{}

func (nopObserver) OnCompute(int, Segment)       {}
func (nopObserver) OnSend(int, Segment)          {}
func (nopObserver) OnRecv(int, Segment)          {}
func (nopObserver) OnPhase(int, string, float64) {}
func (nopObserver) OnFault(FaultEvent)           {}
func (nopObserver) OnCrash(CrashEvent)           {}
func (nopObserver) OnDeadlock(DeadlockEvent)     {}
func (nopObserver) OnTimer(TimerEvent)           {}

// collectiveTour exercises every primitive and composite collective plus
// point-to-point traffic in one program.
func collectiveTour(r *Rank) error {
	w := r.World()
	p := w.Size()
	me := float64(r.ID())
	r.Compute(10 * (me + 1)) // stagger the clocks

	data := []float64{me, me + 1, me + 2}
	data = w.Shift(data, 1)
	_ = w.Bcast(0, []float64{me, 42})
	_ = w.Reduce(p-1, data, OpSum)
	_ = w.AllReduce([]float64{me}, OpSum)
	_ = w.AllGather([]float64{me, -me})
	vec := make([]float64, 2*p)
	for i := range vec {
		vec[i] = me*100 + float64(i)
	}
	_ = w.ReduceScatter(vec, OpSum)
	_ = w.AllToAll(vec)
	_ = w.AllToAllTree(vec)
	w.Barrier()
	_ = w.Gather(0, []float64{me})
	if r.ID() == 0 {
		root := make([]float64, p)
		for i := range root {
			root[i] = float64(i * i)
		}
		_ = w.Scatter(0, root)
	} else {
		_ = w.Scatter(0, nil)
	}
	// Point-to-point after the collectives: ffSeq alignment must survive.
	data = w.Shift(data, p-1)
	return nil
}

// TestEventBackendSplitIdentical runs collectives on subcommunicators so
// fast-forward rendezvous keys must separate memberships.
func TestEventBackendSplitIdentical(t *testing.T) {
	runBothBackends(t, 8, unitCost, func(r *Rank) error {
		w := r.World()
		sub, err := w.Split(r.ID()%2, r.ID())
		if err != nil {
			return err
		}
		me := float64(r.ID())
		_ = sub.AllReduce([]float64{me, me}, OpSum)
		_ = sub.Bcast(0, []float64{me})
		_ = w.AllReduce([]float64{me}, OpMax)
		_ = sub.AllGather([]float64{me})
		w.Barrier()
		return nil
	})
}

// TestEventBackendMixedP2PAndCollectives interleaves point-to-point sends
// with collectives, including a message from the conductor-designate
// (member 0) that must not be mistaken for a rendezvous wake.
func TestEventBackendMixedP2PAndCollectives(t *testing.T) {
	runBothBackends(t, 4, unitCost, func(r *Rank) error {
		w := r.World()
		if r.ID() == 0 {
			r.Compute(5)
			r.Send(3, []float64{7}) // lands while 3 may be parked in Bcast
		}
		got := w.Bcast(0, []float64{float64(r.ID())})
		if got[0] != 0 {
			return errors.New("bad bcast payload")
		}
		if r.ID() == 3 {
			if m := r.Recv(0); m[0] != 7 {
				return errors.New("bad p2p payload")
			}
		}
		w.Barrier()
		return nil
	})
}

func TestEventBackendDeadlockDetection(t *testing.T) {
	cost := eventCost()
	_, err := Run(2, cost, func(r *Rank) error {
		// Both ranks wait on each other; nobody ever sends.
		r.Recv(1 - r.ID())
		return nil
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if de.PeerExited {
		t.Error("plain deadlock misreported as peer exit")
	}
}

func TestEventBackendRecvFromExitedPeer(t *testing.T) {
	gCost := unitCost
	eCost := eventCost()
	fn := func(r *Rank) error {
		if r.ID() == 0 {
			r.Recv(1) // rank 1 exits cleanly without sending
		}
		return nil
	}
	_, gErr := Run(2, gCost, fn)
	_, eErr := Run(2, eCost, fn)
	if gErr == nil || eErr == nil {
		t.Fatalf("expected errors, got goroutine=%v event=%v", gErr, eErr)
	}
	if gErr.Error() != eErr.Error() {
		t.Errorf("exit-cause text differs:\n  goroutine: %v\n  event:     %v", gErr, eErr)
	}
}

func TestEventBackendSendToExitedPeer(t *testing.T) {
	cost := eventCost()
	cost.ChanCap = 1
	_, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{1})
			r.Send(1, []float64{2}) // queue full, peer gone: must not hang
		}
		return nil
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if !de.PeerExited {
		t.Error("send-to-exited not flagged PeerExited")
	}
}

func TestEventBackendRecvTimeout(t *testing.T) {
	runBothBackends(t, 2, unitCost, func(r *Rank) error {
		if r.ID() == 0 {
			// Nothing arrives from 1 until well past the deadline.
			got, out := r.RecvTimeout(1, 500)
			if out != RecvTimedOut || got != nil {
				return errors.New("expected RecvTimedOut")
			}
			if m, out2 := r.RecvTimeout(1, 10000); out2 != RecvOK || m[0] != 9 {
				return errors.New("expected late message to arrive")
			}
		} else {
			r.Compute(2000)
			r.Send(0, []float64{9})
		}
		return nil
	})
}

func TestEventBackendRecvTimeoutPeerExit(t *testing.T) {
	runBothBackends(t, 2, unitCost, func(r *Rank) error {
		if r.ID() == 0 {
			if _, out := r.RecvTimeout(1, 1e9); out != RecvPeerExited {
				return errors.New("expected RecvPeerExited")
			}
		}
		return nil
	})
}

func TestEventBackendSendTimeout(t *testing.T) {
	cost := unitCost
	cost.ChanCap = 1
	runBothBackends(t, 2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			if out := r.SendTimeout(1, []float64{1}, 100); out != SendOK {
				return errors.New("first send must fit")
			}
			// Queue now full; rank 1 drains only after a long compute.
			if out := r.SendTimeout(1, []float64{2}, 100); out != SendTimedOut {
				return errors.New("expected SendTimedOut")
			}
			if out := r.SendTimeout(1, []float64{3}, 1e9); out != SendOK {
				return errors.New("expected eventual SendOK")
			}
		} else {
			r.Compute(50000)
			r.Recv(0)
			r.Recv(0)
		}
		return nil
	})
}

func TestEventBackendCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cost := eventCost()
	cost.Context = ctx
	started := make(chan struct{})
	var once chan struct{} = started
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			if once != nil {
				close(once)
				once = nil
			}
			r.Recv(1) // blocks forever; only cancellation releases it
		} else {
			for {
				r.Compute(1)
			}
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false, err = %v", err)
	}
}

// TestEventBackendFaultIdentity replays a seeded chaos plan — drops, dups,
// corruption, degradation, a respawned crash — through both backends. The
// fault plan is pure virtual-time state machine, so Results must match
// bitwise even on the slow path.
func TestEventBackendFaultIdentity(t *testing.T) {
	plan := &FaultPlan{
		Seed:       7,
		Crashes:    map[int]float64{1: 5000},
		Respawn:    true,
		RebootTime: 3,
		Links:      []LinkFault{{Src: -1, Dst: -1, DupProb: 0.3, CorruptProb: 0.2}},
		Degraded:   []DegradedLink{{Src: -1, Dst: -1, From: 2000, AlphaFactor: 2, BetaFactor: 3}},
	}
	cost := unitCost
	cost.Faults = plan
	runBothBackends(t, 4, cost, func(r *Rank) error {
		w := r.World()
		data := []float64{float64(r.ID()), 1, 2}
		for step := 0; step < 5; step++ {
			r.Compute(500)
			data = w.Shift(data, 1)
			r.TakeCrashed()
		}
		w.Barrier()
		return nil
	})
}

// TestEventBackendWorkers checks that a multi-worker pool still yields the
// same deterministic result.
func TestEventBackendWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		cost := unitCost
		cost.Workers = workers
		runBothBackends(t, 8, cost, collectiveTour)
	}
}

// TestEventBackendDenseWiring runs the tour under dense wiring; the event
// engine must price identically when all p² pairs are pre-wired.
func TestEventBackendDenseWiring(t *testing.T) {
	cost := unitCost
	cost.Wiring = WiringDense
	runBothBackends(t, 4, cost, collectiveTour)
}

// TestEventBackendObserverStream compares the per-rank observer event
// sequences between backends. Cross-rank interleaving is unordered by
// contract, so only the per-rank order is asserted.
func TestEventBackendObserverStream(t *testing.T) {
	record := func(rt Runtime) map[int][]Segment {
		obs := newRecObs()
		cost := unitCost
		cost.Runtime = rt
		cost.Observers = []Observer{obs}
		if _, err := Run(4, cost, collectiveTour); err != nil {
			t.Fatal(err)
		}
		return obs.segs
	}
	gSegs := record(RuntimeGoroutine)
	eSegs := record(RuntimeEvent)
	for rank := 0; rank < 4; rank++ {
		g, e := gSegs[rank], eSegs[rank]
		if len(g) != len(e) {
			t.Fatalf("rank %d: %d goroutine segments vs %d event segments",
				rank, len(g), len(e))
		}
		for i := range g {
			if g[i] != e[i] {
				t.Errorf("rank %d segment %d differs:\n  goroutine: %+v\n  event:     %+v",
					rank, i, g[i], e[i])
			}
		}
	}
}

// TestEventBackendTracer makes sure Cost.Trace works under the engine.
func TestEventBackendTracer(t *testing.T) {
	cost := eventCost()
	cost.Trace = true
	res, err := Run(2, cost, func(r *Rank) error {
		r.Compute(5)
		if r.ID() == 0 {
			r.Send(1, []float64{1})
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Segments) != 2 {
		t.Fatalf("trace missing: %+v", res.Trace)
	}
}

// TestEventBackendLargeRing is a smoke test at a size where the goroutine
// backend would already spend visible time: a 4096-rank ring shift plus an
// AllReduce, fast-forwarded.
func TestEventBackendLargeRing(t *testing.T) {
	if testing.Short() {
		t.Skip("large ring skipped in -short")
	}
	cost := eventCost()
	cost.GammaT = 1
	cost.AlphaT = 1e-6
	cost.BetaT = 1e-9
	res, err := Run(4096, cost, func(r *Rank) error {
		w := r.World()
		data := []float64{float64(r.ID())}
		data = w.Shift(data, 1)
		out := w.AllReduce(data, OpSum)
		want := float64(4096 * 4095 / 2)
		if out[0] != want {
			return errors.New("wrong AllReduce sum")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRank[0].Flops <= 0 {
		t.Errorf("rank 0 flops: %g", res.PerRank[0].Flops)
	}
}
