package sim

import "fmt"

// FaultPlan schedules deterministic failures for a run. Every decision is
// keyed only on (rank, virtual clock, per-rank send count, delivery copy
// index) hashed with Seed, never on wall-clock time or Go scheduling, so a
// plan reproduces the exact same faults — and therefore byte-identical
// Stats — on every run.
//
// Three fault classes are supported:
//
//   - rank crashes at virtual times (Crashes). By default a crash kills the
//     rank: its next instrumented operation panics and Run reports a
//     *CrashError. With Respawn set the rank instead survives as a cold
//     spare — it keeps executing the SPMD program (the protocol state
//     machine is assumed to outlive the failure, as under message logging)
//     but its application data is lost; resilient algorithms poll
//     Rank.TakeCrashed at phase boundaries and run their recovery protocol,
//     paying RebootTime of virtual wait time at the crash instant.
//   - message faults on links (Links): a matching send is dropped,
//     duplicated, or corrupted with the given probabilities. The sender
//     always pays the full send cost; the fate of the message is decided
//     by the deterministic hash.
//   - degraded-link windows (Degraded): while the sender's clock lies in
//     the window, matching sends pay inflated latency and per-word time.
type FaultPlan struct {
	// Seed keys every probabilistic decision of the plan.
	Seed uint64
	// Crashes maps rank id to the virtual time at which it fails. The
	// crash fires at the first instrumented operation (Compute, Send,
	// Recv) the rank enters with clock ≥ the scheduled time.
	Crashes map[int]float64
	// Respawn selects fail-stop-with-cold-spare semantics instead of
	// killing the rank (see type comment). Recovery algorithms require it.
	Respawn bool
	// RebootTime is the virtual wait a respawned rank pays when its crash
	// fires (accounted as WaitTime, keeping the Stats decomposition exact).
	RebootTime float64
	// Links lists message-fault rules; every rule matching a send rolls
	// its own dice.
	Links []LinkFault
	// Degraded lists link-degradation windows; factors of all matching
	// windows multiply together.
	Degraded []DegradedLink
}

// LinkFault injects message faults on matching sends. Src/Dst of -1 match
// any rank; the window [From, Until) is in virtual seconds of the sender's
// clock at the moment the message leaves, with Until = 0 meaning unbounded.
type LinkFault struct {
	Src, Dst    int
	From, Until float64
	// DropProb is the probability the message's primary copy is silently
	// discarded (a receiver the send was its only copy for then hangs
	// until the watchdog converts the hang into a diagnostic error). A
	// simultaneously duplicated message still delivers its duplicate —
	// each copy routes independently.
	DropProb float64
	// DupProb is the probability the message is delivered twice.
	DupProb float64
	// CorruptProb is the probability one payload word (at a hash-chosen
	// index) is perturbed by +1.0.
	CorruptProb float64
}

// DegradedLink inflates a link's parameters inside a virtual-time window:
// matching sends pay AlphaFactor·α and BetaFactor·β. Src/Dst of -1 match
// any rank; Until = 0 means unbounded.
type DegradedLink struct {
	Src, Dst    int
	From, Until float64
	AlphaFactor float64
	BetaFactor  float64
}

// CrashError is the error Run reports for a rank killed by an injected
// crash (FaultPlan without Respawn).
type CrashError struct {
	Rank int
	// Time is the scheduled virtual crash time.
	Time float64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("sim: rank %d crashed at injected fault (t=%g)", e.Rank, e.Time)
}

// crashPanic carries a hard crash out of the SPMD function; Run recovers it
// and converts it into a *CrashError.
type crashPanic struct{ err *CrashError }

// Validate checks the plan's parameters.
func (fp *FaultPlan) Validate(p int) error {
	for rank, t := range fp.Crashes {
		if rank < 0 || rank >= p {
			return fmt.Errorf("sim: fault plan crashes rank %d outside [0,%d)", rank, p)
		}
		if t < 0 {
			return fmt.Errorf("sim: fault plan crash time %g is negative", t)
		}
	}
	if fp.RebootTime < 0 {
		return fmt.Errorf("sim: fault plan reboot time %g is negative", fp.RebootTime)
	}
	for _, l := range fp.Links {
		for _, pr := range []float64{l.DropProb, l.DupProb, l.CorruptProb} {
			if pr < 0 || pr > 1 {
				return fmt.Errorf("sim: fault plan probability %g outside [0,1]", pr)
			}
			// A fractional probability rolls the seeded dice; with Seed 0
			// the plan still replays bitwise (the hash is well defined),
			// but the author almost certainly forgot the seed that makes
			// the scenario an identity rather than an accident. Probs of
			// exactly 0 or 1 are deterministic and need no seed.
			if fp.Seed == 0 && pr > 0 && pr < 1 {
				return fmt.Errorf("sim: fault plan has probabilistic link fault (prob %g) but no Seed; fractional probabilities require an explicit seed", pr)
			}
		}
		if err := validateWindow(l.From, l.Until); err != nil {
			return fmt.Errorf("sim: fault plan link %d->%d: %w", l.Src, l.Dst, err)
		}
	}
	for _, d := range fp.Degraded {
		if d.AlphaFactor < 0 || d.BetaFactor < 0 {
			return fmt.Errorf("sim: degraded-link factors must be non-negative, got %+v", d)
		}
		if err := validateWindow(d.From, d.Until); err != nil {
			return fmt.Errorf("sim: degraded link %d->%d: %w", d.Src, d.Dst, err)
		}
	}
	return nil
}

// validateWindow rejects malformed [From, Until) fault windows. Until = 0
// means unbounded; any other end must lie strictly after the start, or the
// window silently matches nothing and the plan is not the scenario its
// author wrote down.
func validateWindow(from, until float64) error {
	if from < 0 {
		return fmt.Errorf("window start %g is negative", from)
	}
	if until != 0 && until <= from {
		return fmt.Errorf("window end %g not after start %g (Until = 0 means unbounded)", until, from)
	}
	return nil
}

// Clone returns a deep copy of the plan, so campaign-style tooling can
// mutate a candidate (shrinking, probability bisection) without aliasing
// the original's maps and slices.
func (fp *FaultPlan) Clone() *FaultPlan {
	if fp == nil {
		return nil
	}
	cp := &FaultPlan{
		Seed:       fp.Seed,
		Respawn:    fp.Respawn,
		RebootTime: fp.RebootTime,
	}
	if fp.Crashes != nil {
		cp.Crashes = make(map[int]float64, len(fp.Crashes))
		for r, t := range fp.Crashes {
			cp.Crashes[r] = t
		}
	}
	cp.Links = append([]LinkFault(nil), fp.Links...)
	cp.Degraded = append([]DegradedLink(nil), fp.Degraded...)
	return cp
}

// Merge returns a new plan carrying the union of both plans' fault atoms:
// all crashes (on a conflicting rank the earlier crash wins — the rank is
// already dead when the later one would fire), all link rules, and all
// degradation windows. Seed, Respawn and RebootTime come from the receiver;
// a compound chaos scenario is built by merging primitives into a seeded
// base plan.
func (fp *FaultPlan) Merge(o *FaultPlan) *FaultPlan {
	out := fp.Clone()
	if o == nil {
		return out
	}
	for r, t := range o.Crashes {
		if have, ok := out.Crashes[r]; ok && have <= t {
			continue
		}
		if out.Crashes == nil {
			out.Crashes = map[int]float64{}
		}
		out.Crashes[r] = t
	}
	out.Links = append(out.Links, o.Links...)
	out.Degraded = append(out.Degraded, o.Degraded...)
	return out
}

// CoordCount counts the plan's fault atoms — scheduled crashes, link-fault
// rules and degradation windows. It is the coordinate measure minimized by
// reproducer shrinking: a minimal plan is one no atom can be removed from
// without losing the behavior it reproduces.
func (fp *FaultPlan) CoordCount() int {
	if fp == nil {
		return 0
	}
	return len(fp.Crashes) + len(fp.Links) + len(fp.Degraded)
}

// matches reports whether a rule scoped to (rSrc, rDst, [from, until)) covers
// a send from src to dst at virtual time clock.
func faultMatches(rSrc, rDst int, from, until float64, src, dst int, clock float64) bool {
	if rSrc != -1 && rSrc != src {
		return false
	}
	if rDst != -1 && rDst != dst {
		return false
	}
	if clock < from {
		return false
	}
	if until > 0 && clock >= until {
		return false
	}
	return true
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps (seed, src, dst, seq, salt) to a uniform value in [0, 1).
// seq is the sender's running send count, so the value depends only on the
// program's deterministic communication history.
func (fp *FaultPlan) hash01(src, dst, seq int, salt uint64) float64 {
	h := mix64(fp.Seed ^ mix64(salt))
	h = mix64(h ^ uint64(src))
	h = mix64(h ^ uint64(dst))
	h = mix64(h ^ uint64(seq))
	return float64(h>>11) / (1 << 53)
}

// Distinct salts keep the drop/dup/corrupt/index dice independent. The
// corruption dice exist once per delivered copy — a duplicated message's
// extra copy rolls its own corruption fate and index, keyed on the copy
// index via the dup-specific salts, so one send can deliver one clean and
// one corrupted copy. Determinism is preserved: every decision remains a
// pure function of (seed, src, dst, seq, copy).
const (
	saltDrop uint64 = iota + 1
	saltDup
	saltCorrupt
	saltCorruptIndex
	saltDupCorrupt
	saltDupCorruptIndex
)

// Copy indices of the deliveries a single Send can make.
const (
	copyPrimary = 0
	copyDup     = 1
)

// messageFate rolls the deterministic dice for one send. corrupt is the
// primary copy's corruption fate; dupCorrupt is the independent fate of the
// duplicated copy (meaningful only when dup is set).
func (fp *FaultPlan) messageFate(src, dst, seq int, clock float64) (drop, dup, corrupt, dupCorrupt bool) {
	for _, l := range fp.Links {
		if !faultMatches(l.Src, l.Dst, l.From, l.Until, src, dst, clock) {
			continue
		}
		if l.DropProb > 0 && fp.hash01(src, dst, seq, saltDrop) < l.DropProb {
			drop = true
		}
		if l.DupProb > 0 && fp.hash01(src, dst, seq, saltDup) < l.DupProb {
			dup = true
		}
		if l.CorruptProb > 0 {
			if fp.hash01(src, dst, seq, saltCorrupt) < l.CorruptProb {
				corrupt = true
			}
			if fp.hash01(src, dst, seq, saltDupCorrupt) < l.CorruptProb {
				dupCorrupt = true
			}
		}
	}
	return drop, dup, corrupt, dupCorrupt
}

// corruptIndex picks the payload word to perturb for the given copy.
func (fp *FaultPlan) corruptIndex(src, dst, seq, copy, n int) int {
	salt := saltCorruptIndex
	if copy == copyDup {
		salt = saltDupCorruptIndex
	}
	return int(fp.hash01(src, dst, seq, salt) * float64(n))
}

// degradeFactors returns the combined α/β inflation for a send.
func (fp *FaultPlan) degradeFactors(src, dst int, clock float64) (alphaF, betaF float64) {
	alphaF, betaF = 1, 1
	for _, d := range fp.Degraded {
		if faultMatches(d.Src, d.Dst, d.From, d.Until, src, dst, clock) {
			alphaF *= d.AlphaFactor
			betaF *= d.BetaFactor
		}
	}
	return alphaF, betaF
}

// crashCheck fires the rank's scheduled crash once its clock has passed the
// scheduled time. It is called on entry to every instrumented operation, so
// the firing point depends only on the deterministic virtual clock. Being
// the one hook every operation passes through, it also carries the run's
// real-time cancellation check (cancel.go).
func (r *Rank) crashCheck() {
	r.cancelCheck()
	fp := r.cluster.cost.Faults
	if fp == nil || r.crashDone {
		return
	}
	t, ok := fp.Crashes[r.id]
	if !ok {
		r.crashDone = true
		return
	}
	if r.clock < t {
		return
	}
	r.crashDone = true
	r.emitCrash(CrashEvent{Rank: r.id, Scheduled: t, Time: r.clock, Respawn: fp.Respawn})
	if !fp.Respawn {
		panic(crashPanic{err: &CrashError{Rank: r.id, Time: t}})
	}
	r.crashPending = true
	if fp.RebootTime > 0 {
		r.stats.WaitTime += fp.RebootTime
		r.emit(Segment{Kind: SegWait, Start: r.clock, End: r.clock + fp.RebootTime, Peer: -1})
		r.clock += fp.RebootTime
	}
}

// TakeCrashed reports whether an injected crash has fired on this rank since
// the last call, and clears the notification. Resilient algorithms call it
// at phase boundaries (under FaultPlan.Respawn) to learn that their local
// application data is lost and recovery must run.
func (r *Rank) TakeCrashed() bool {
	c := r.crashPending
	r.crashPending = false
	return c
}
