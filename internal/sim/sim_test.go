package sim

import (
	"math"
	"strings"
	"testing"
)

// zeroCost makes clock effects vanish so tests can focus on data movement.
var zeroCost = Cost{}

// unitCost gives every component a distinct magnitude so accounting errors
// show up unambiguously: 1 s/flop, 10 s/word, 1000 s/message.
var unitCost = Cost{GammaT: 1, BetaT: 10, AlphaT: 1000}

func TestNewClusterRejectsBadSizes(t *testing.T) {
	if _, err := NewCluster(0, zeroCost); err == nil {
		t.Error("p=0 must be rejected")
	}
	if _, err := NewCluster(-3, zeroCost); err == nil {
		t.Error("p<0 must be rejected")
	}
	if _, err := NewCluster(2, Cost{GammaT: -1}); err == nil {
		t.Error("negative costs must be rejected")
	}
}

func TestSendRecvDeliversData(t *testing.T) {
	res, err := Run(2, zeroCost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{1, 2, 3})
		} else {
			got := r.Recv(0)
			if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
				t.Errorf("rank 1 received %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRank[0].WordsSent != 3 || res.PerRank[0].MsgsSent != 1 {
		t.Errorf("sender counters: %+v", res.PerRank[0])
	}
	if res.PerRank[1].WordsRecv != 3 || res.PerRank[1].MsgsRecv != 1 {
		t.Errorf("receiver counters: %+v", res.PerRank[1])
	}
}

func TestSendCopiesData(t *testing.T) {
	_, err := Run(2, zeroCost, func(r *Rank) error {
		if r.ID() == 0 {
			buf := []float64{42}
			r.Send(1, buf)
			buf[0] = -1 // mutate after send; receiver must still see 42
			r.Send(1, buf)
		} else {
			first := r.Recv(0)
			if first[0] != 42 {
				t.Errorf("mutation after Send leaked: got %v", first[0])
			}
			second := r.Recv(0)
			if second[0] != -1 {
				t.Errorf("second message wrong: got %v", second[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockSendCost(t *testing.T) {
	res, err := Run(2, unitCost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, make([]float64, 5)) // 1000 + 5*10 = 1050
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].Time; got != 1050 {
		t.Errorf("sender clock: got %g want 1050", got)
	}
	// Receiver waits for arrival: its clock equals the sender's post-send
	// clock (receive itself is not double-charged).
	if got := res.PerRank[1].Time; got != 1050 {
		t.Errorf("receiver clock: got %g want 1050", got)
	}
}

func TestClockComputeCost(t *testing.T) {
	res, err := Run(1, unitCost, func(r *Rank) error {
		r.Compute(7)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRank[0].Time != 7 || res.PerRank[0].Flops != 7 {
		t.Errorf("stats: %+v", res.PerRank[0])
	}
}

func TestClockRecvWaitsForSender(t *testing.T) {
	// Rank 0 computes 100s then sends; rank 1 computes 1s then receives.
	// Rank 1's clock must jump to the arrival time.
	res, err := Run(2, Cost{GammaT: 1}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(100)
			r.Send(1, []float64{1})
		} else {
			r.Compute(1)
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[1].Time; got != 100 {
		t.Errorf("receiver should wait until t=100, got %g", got)
	}
}

func TestClockRecvDoesNotRewind(t *testing.T) {
	// Receiver is already past the arrival time: clock must not go back.
	res, err := Run(2, Cost{GammaT: 1}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{1})
		} else {
			r.Compute(500)
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[1].Time; got != 500 {
		t.Errorf("receiver clock must stay at 500, got %g", got)
	}
}

func TestMaxMessageSplitting(t *testing.T) {
	cost := Cost{AlphaT: 100, BetaT: 1, MaxMsgWords: 10}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, make([]float64, 25)) // 3 messages of <=10 words
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].MsgsSent; got != 3 {
		t.Errorf("25 words with m=10 should cost 3 messages, got %g", got)
	}
	if got := res.PerRank[1].MsgsRecv; got != 3 {
		t.Errorf("receiver must count the same 3 network messages, got %g", got)
	}
	if got := res.PerRank[0].Time; got != 3*100+25 {
		t.Errorf("send time: got %g want 325", got)
	}
}

func TestZeroWordMessageCostsOneLatency(t *testing.T) {
	res, err := Run(2, Cost{AlphaT: 7}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, nil)
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].Time; got != 7 {
		t.Errorf("zero-word send should cost one latency, got %g", got)
	}
}

func TestRingShiftCostsOneStep(t *testing.T) {
	// A full cyclic shift among p ranks costs a single alpha + k*beta in
	// virtual time because sends are posted before receives.
	const p = 8
	const k = 4
	res, err := Run(p, unitCost, func(r *Rank) error {
		w := r.World()
		data := make([]float64, k)
		for i := range data {
			data[i] = float64(r.ID())
		}
		got := w.Shift(data, 1)
		want := float64((r.ID() - 1 + p) % p)
		if got[0] != want {
			t.Errorf("rank %d: shift got %g want %g", r.ID(), got[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := unitCost.AlphaT + unitCost.BetaT*float64(k)
	if got := res.Time(); got != want {
		t.Errorf("shift step time: got %g want %g", got, want)
	}
}

func TestSelfSend(t *testing.T) {
	_, err := Run(1, zeroCost, func(r *Rank) error {
		r.Send(0, []float64{9})
		got := r.Recv(0)
		if got[0] != 9 {
			t.Errorf("self-send got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicClocks(t *testing.T) {
	// The same program must yield bit-identical clocks across runs,
	// regardless of scheduling.
	run := func() []float64 {
		res, err := Run(16, unitCost, func(r *Rank) error {
			w := r.World()
			data := []float64{float64(r.ID())}
			for s := 0; s < 5; s++ {
				data = w.Shift(data, 1+s)
				r.Compute(float64(r.ID()%3) * 10)
			}
			w.AllReduce(data, OpSum)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		times := make([]float64, len(res.PerRank))
		for i, s := range res.PerRank {
			times[i] = s.Time
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d clock not deterministic: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRankErrorPropagates(t *testing.T) {
	_, err := Run(4, zeroCost, func(r *Rank) error {
		if r.ID() == 2 {
			return errTest
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Errorf("expected rank 2 error, got %v", err)
	}
}

type testErr struct{}

func (testErr) Error() string { return "boom" }

var errTest = testErr{}

func TestRankPanicRecovered(t *testing.T) {
	_, err := Run(2, zeroCost, func(r *Rank) error {
		if r.ID() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic should surface as error, got %v", err)
	}
}

func TestRecvFromExitedRankFails(t *testing.T) {
	// Rank 0 exits without sending; rank 1's Recv must turn into an error,
	// not a deadlock.
	_, err := Run(2, zeroCost, func(r *Rank) error {
		if r.ID() == 1 {
			r.Recv(0)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "exited without sending") {
		t.Errorf("expected exited-peer error, got %v", err)
	}
}

func TestMemoryTracking(t *testing.T) {
	res, err := Run(1, zeroCost, func(r *Rank) error {
		r.Alloc(100)
		r.Alloc(50) // peak 150
		r.Free(100) // down to 50
		r.Alloc(60) // 110 < peak
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].PeakMemWords; got != 150 {
		t.Errorf("peak memory: got %g want 150", got)
	}
}

func TestTrackedVec(t *testing.T) {
	res, err := Run(1, zeroCost, func(r *Rank) error {
		v := r.TrackedVec(42)
		if len(v) != 42 {
			t.Errorf("TrackedVec length %d", len(v))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].PeakMemWords; got != 42 {
		t.Errorf("peak: got %g want 42", got)
	}
}

func TestFreeUnderflowPanics(t *testing.T) {
	_, err := Run(1, zeroCost, func(r *Rank) error {
		r.Free(1)
		return nil
	})
	if err == nil {
		t.Error("freeing more than allocated should error")
	}
}

func TestInvalidDestinationPanics(t *testing.T) {
	_, err := Run(1, zeroCost, func(r *Rank) error {
		r.Send(5, nil)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Errorf("expected invalid-rank error, got %v", err)
	}
}

func TestNegativeComputePanics(t *testing.T) {
	_, err := Run(1, zeroCost, func(r *Rank) error {
		r.Compute(-1)
		return nil
	})
	if err == nil {
		t.Error("negative flops should error")
	}
}

func TestResultAggregates(t *testing.T) {
	res, err := Run(3, Cost{GammaT: 1}, func(r *Rank) error {
		r.Compute(float64(r.ID()) * 10)
		r.Alloc(int(r.ID()) * 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	maxS := res.MaxStats()
	if maxS.Flops != 20 || maxS.PeakMemWords != 10 || maxS.Time != 20 {
		t.Errorf("MaxStats: %+v", maxS)
	}
	totS := res.TotalStats()
	if totS.Flops != 30 || totS.PeakMemWords != 15 {
		t.Errorf("TotalStats: %+v", totS)
	}
	if res.Time() != 20 {
		t.Errorf("Time: got %g want 20", res.Time())
	}
}

func TestFIFOOrderingPerPair(t *testing.T) {
	_, err := Run(2, zeroCost, func(r *Rank) error {
		const n = 50
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, []float64{float64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				got := r.Recv(0)
				if got[0] != float64(i) {
					t.Errorf("message %d out of order: got %g", i, got[0])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsSnapshotIncludesTime(t *testing.T) {
	_, err := Run(1, Cost{GammaT: 2}, func(r *Rank) error {
		r.Compute(5)
		s := r.Stats()
		if s.Time != 10 {
			t.Errorf("snapshot time: got %g want 10", s.Time)
		}
		if r.Clock() != 10 {
			t.Errorf("Clock: got %g want 10", r.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadImbalanceShowsInMaxTime(t *testing.T) {
	res, err := Run(4, Cost{GammaT: 1}, func(r *Rank) error {
		if r.ID() == 3 {
			r.Compute(1000)
		} else {
			r.Compute(10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time() != 1000 {
		t.Errorf("runtime must be the slowest rank: got %g", res.Time())
	}
}

func TestSendRecvOverlap(t *testing.T) {
	// Pairwise exchange: both ranks SendRecv simultaneously; total time is
	// one message, not two.
	res, err := Run(2, Cost{AlphaT: 100, BetaT: 1}, func(r *Rank) error {
		other := 1 - r.ID()
		got := r.SendRecv(other, []float64{float64(r.ID())}, other)
		if got[0] != float64(other) {
			t.Errorf("rank %d: got %g", r.ID(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Time(); got != 101 {
		t.Errorf("pairwise exchange should cost one message (101), got %g", got)
	}
}

func TestClockNeverDecreases(t *testing.T) {
	_, err := Run(4, unitCost, func(r *Rank) error {
		w := r.World()
		prev := 0.0
		check := func() {
			if r.Clock() < prev {
				t.Errorf("rank %d clock went backwards: %g -> %g", r.ID(), prev, r.Clock())
			}
			prev = r.Clock()
		}
		for i := 0; i < 3; i++ {
			r.Compute(float64(i))
			check()
			w.Shift([]float64{1}, 1)
			check()
			w.Barrier()
			check()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBigFanInClock(t *testing.T) {
	// All ranks send to rank 0; rank 0's final clock is at least the cost
	// of receiving p-1 messages sequentially under FIFO arrival order is
	// not required — but it must be at least the latest arrival.
	const p = 5
	res, err := Run(p, Cost{AlphaT: 10, GammaT: 1}, func(r *Rank) error {
		if r.ID() == 0 {
			for src := 1; src < p; src++ {
				r.Recv(src)
			}
		} else {
			r.Compute(float64(r.ID()) * 100) // staggered send times
			r.Send(0, []float64{1})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Latest sender: rank 4 computes 400 then sends (+10) => arrival 410.
	if got := res.PerRank[0].Time; got != 410 {
		t.Errorf("fan-in clock: got %g want 410", got)
	}
	_ = math.Inf // keep math imported if unused elsewhere
}
