package sim

import "fmt"

// Observer is the simulation event bus: a subscriber receives every
// timeline segment, phase mark, fault, crash and deadlock as it happens,
// while the run is still in flight. The built-in tracer is one subscriber
// (attached when Cost.Trace is set); internal/obs provides others — a
// bounded ring buffer, a streaming JSONL writer, a full collector feeding
// the Chrome-trace and summary exporters.
//
// Concurrency contract: OnCompute, OnSend, OnRecv, OnPhase, OnFault and
// OnCrash fire on the goroutine of the rank named in the event,
// concurrently across ranks; within one rank they arrive in virtual-time
// order. OnDeadlock fires on the watchdog goroutine, concurrently with
// rank callbacks. An observer that aggregates across ranks must therefore
// synchronize its own state. Every callback delivered during a run
// happens-before Run's return, so reading an observer after Run is
// race-free.
//
// Segments are delivered even when zero-duration (a send under zero α/β
// still moves words, which exporters count); the tracer drops those to
// keep Trace semantics unchanged.
type Observer interface {
	// OnCompute delivers a SegCompute segment (Flops carries γt-free
	// work, so energy can be attributed without dividing by duration).
	OnCompute(rank int, seg Segment)
	// OnSend delivers a SegSend segment. Under a degraded-link window the
	// segment's duration already carries the inflated αt/βt pricing —
	// trace and Stats totals agree by construction.
	OnSend(rank int, seg Segment)
	// OnRecv delivers the receive side: SegWait segments (idle time until
	// the message's arrival stamp) and, under ChargeReceiver, SegRecv
	// segments (the receiver's α/β cost). Discriminate on seg.Kind.
	OnRecv(rank int, seg Segment)
	// OnPhase delivers a Phase(name) annotation at the rank's clock.
	OnPhase(rank int, name string, at float64)
	// OnFault delivers a message-fault or degraded-window decision.
	OnFault(ev FaultEvent)
	// OnTimer delivers a virtual-timer transition (armed / fired /
	// cancelled) of a RecvTimeout or SendTimeout. Fires on the owning
	// rank's goroutine in virtual-time order, like segment callbacks.
	OnTimer(ev TimerEvent)
	// OnCrash delivers an injected rank crash as it fires.
	OnCrash(ev CrashEvent)
	// OnDeadlock delivers one watchdog abort; every aborted rank of one
	// detection emits its own event sharing the same Snapshot.
	OnDeadlock(ev DeadlockEvent)
}

// FaultKind classifies a FaultEvent.
type FaultKind int

// Fault event kinds.
const (
	// FaultDrop marks a message the network silently discarded.
	FaultDrop FaultKind = iota
	// FaultDup marks a message delivered twice.
	FaultDup
	// FaultCorrupt marks a delivered copy with one perturbed word.
	FaultCorrupt
	// FaultDegraded marks a send priced inside a degraded-link window.
	FaultDegraded
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultCorrupt:
		return "corrupt"
	case FaultDegraded:
		return "degraded"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent reports one deterministic fault decision applied to a send.
type FaultEvent struct {
	Kind     FaultKind
	Src, Dst int
	// Seq is the sender's running send count for the affected message —
	// the same key the FaultPlan hashed to decide the fate.
	Seq int
	// Time is the sender's virtual clock when the fate applied: the send's
	// start for FaultDegraded (the window is matched there), its end for
	// message fates (the fate takes effect as the message leaves).
	Time float64
	// Words is the payload size.
	Words int
	// Copy is the delivered copy a FaultCorrupt hit (0 primary, 1 dup).
	Copy int
	// AlphaFactor and BetaFactor are the combined degradation factors
	// (FaultDegraded only).
	AlphaFactor, BetaFactor float64
}

// CrashEvent reports an injected rank crash at the moment it fires.
type CrashEvent struct {
	Rank int
	// Scheduled is the plan's crash time; Time is the virtual clock at
	// which the crash actually fired (the first instrumented operation at
	// or after Scheduled).
	Scheduled, Time float64
	// Respawn tells whether the rank continues as a cold spare (true) or
	// dies with a CrashError (false).
	Respawn bool
}

// DeadlockEvent reports one rank aborted by the watchdog. Err carries the
// full diagnostic including the cluster-wide Snapshot shared by all ranks
// of one detection.
type DeadlockEvent struct {
	Err *DeadlockError
}

// Phase marks a named algorithm-phase boundary on the rank's timeline at
// its current virtual clock. Phases are free: no virtual time passes, no
// counter moves — they only annotate bus events and the trace, so exported
// timelines show algorithm structure (replicate / SUMMA panel / reduce).
func (r *Rank) Phase(name string) {
	for _, o := range r.cluster.obs {
		o.OnPhase(r.id, name, r.clock)
	}
}

// emit publishes a timeline segment to every subscriber and remembers it
// as the rank's most recent segment (published to deadlock snapshots at
// blocking transitions; see setState).
func (r *Rank) emit(seg Segment) {
	r.lastSeg = seg
	r.hasSeg = true
	for _, o := range r.cluster.obs {
		switch seg.Kind {
		case SegCompute:
			o.OnCompute(r.id, seg)
		case SegSend:
			o.OnSend(r.id, seg)
		default:
			o.OnRecv(r.id, seg)
		}
	}
}

// emitFault publishes a fault decision to every subscriber.
func (r *Rank) emitFault(ev FaultEvent) {
	for _, o := range r.cluster.obs {
		o.OnFault(ev)
	}
}

// emitCrash publishes a crash to every subscriber.
func (r *Rank) emitCrash(ev CrashEvent) {
	for _, o := range r.cluster.obs {
		o.OnCrash(ev)
	}
}

// emitDeadlock publishes a watchdog abort to every subscriber. It is
// called from the watchdog goroutine, always before the abort releases
// the blocked rank, so the delivery happens-before Run returns.
func (c *Cluster) emitDeadlock(ev DeadlockEvent) {
	for _, o := range c.obs {
		o.OnDeadlock(ev)
	}
}
