package sim

import (
	"errors"
	"testing"
	"time"
)

// shortDog is a cost with a fast watchdog for tests that provoke hangs.
func shortDog(c Cost) Cost {
	c.WatchdogTimeout = 150 * time.Millisecond
	return c
}

func TestHardCrashSurfacesAsCrashError(t *testing.T) {
	cost := unitCost
	cost.Faults = &FaultPlan{Crashes: map[int]float64{2: 1500}}
	_, err := Run(4, shortDog(cost), func(r *Rank) error {
		r.Compute(1)          // clock 1
		r.Send(3-r.ID(), nil) // pairwise exchange: clock 1001
		r.Recv(3 - r.ID())
		r.Compute(1000) // clock ≥ 2001: rank 2's next op crashes
		r.Send(3-r.ID(), nil)
		r.Recv(3 - r.ID())
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected crash to surface")
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Rank != 2 {
		t.Errorf("expected CrashError for rank 2, got %v", err)
	}
}

func TestRespawnCrashDeliversTakeCrashed(t *testing.T) {
	cost := unitCost
	cost.Faults = &FaultPlan{
		Crashes:    map[int]float64{0: 0.5},
		Respawn:    true,
		RebootTime: 7,
	}
	fired := 0
	res, err := Run(1, cost, func(r *Rank) error {
		r.Compute(1) // clock 1 ≥ 0.5: crash fires on next instrumented op
		r.Compute(1)
		if r.TakeCrashed() {
			fired++
		}
		if r.TakeCrashed() { // notification must be consumed exactly once
			fired++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("TakeCrashed fired %d times, want 1", fired)
	}
	s := res.PerRank[0]
	if s.WaitTime != 7 {
		t.Errorf("reboot must be charged as wait time: got %g, want 7", s.WaitTime)
	}
	if s.Time != s.ComputeTime+s.SendTime+s.RecvTime+s.WaitTime {
		t.Errorf("stats decomposition broken after reboot: %+v", s)
	}
}

func TestDroppedMessageBecomesWatchdogError(t *testing.T) {
	cost := shortDog(zeroCost)
	cost.Faults = &FaultPlan{
		Links: []LinkFault{{Src: 0, Dst: 1, DropProb: 1}},
	}
	_, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{42})
			r.Recv(1) // keep rank 0 alive so the drop, not an exit, is the cause
			return nil
		}
		r.Recv(0) // never arrives: the watchdog must convert this into an error
		r.Send(0, []float64{1})
		return nil
	})
	if err == nil {
		t.Fatal("dropped message must surface as an error, not a hang")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Errorf("expected a DeadlockError, got %v", err)
	}
}

func TestDuplicatedMessageArrivesTwice(t *testing.T) {
	cost := zeroCost
	cost.Faults = &FaultPlan{
		Links: []LinkFault{{Src: 0, Dst: 1, DupProb: 1}},
	}
	_, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{3, 4})
			return nil
		}
		a := r.Recv(0)
		b := r.Recv(0) // the injected duplicate
		if a[0] != 3 || b[0] != 3 || a[1] != 4 || b[1] != 4 {
			t.Errorf("duplicate should carry identical data: %v vs %v", a, b)
		}
		// The two copies must not alias: mutating one is invisible to the other.
		a[0] = -1
		if b[0] == -1 {
			t.Error("duplicate aliases the original payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionIsDeterministic(t *testing.T) {
	run := func() []float64 {
		cost := zeroCost
		cost.Faults = &FaultPlan{
			Seed:  99,
			Links: []LinkFault{{Src: 0, Dst: 1, CorruptProb: 1}},
		}
		var got []float64
		_, err := Run(2, cost, func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, []float64{10, 20, 30, 40})
				return nil
			}
			got = r.Recv(0)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	clean := []float64{10, 20, 30, 40}
	diffs := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corruption not reproducible: %v vs %v", a, b)
		}
		if a[i] != clean[i] {
			diffs++
			if a[i] != clean[i]+1 {
				t.Errorf("corruption must perturb by +1: word %d is %g", i, a[i])
			}
		}
	}
	if diffs != 1 {
		t.Errorf("exactly one word must be corrupted, got %d in %v", diffs, a)
	}
}

// TestDuplicateRollsIndependentCorruptionFate pins the per-copy fault fix:
// a duplicated message's extra copy rolls its own corruption dice and index
// (keyed on the copy index), instead of inheriting the primary's fate.
func TestDuplicateRollsIndependentCorruptionFate(t *testing.T) {
	const k = 64
	// recvPair runs a 1-duplicated send of k zero words and returns the two
	// delivered copies (the injected duplicate arrives first, then the
	// primary) as corruption counts.
	recvPair := func(seed uint64, corruptProb float64) (dupDiffs, primDiffs int) {
		cost := zeroCost
		cost.Faults = &FaultPlan{
			Seed:  seed,
			Links: []LinkFault{{Src: 0, Dst: 1, DupProb: 1, CorruptProb: corruptProb}},
		}
		var dupCopy, primCopy []float64
		_, err := Run(2, cost, func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, make([]float64, k))
				return nil
			}
			dupCopy = r.Recv(0)
			primCopy = r.Recv(0)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		count := func(data []float64) int {
			n := 0
			for i, v := range data {
				if v != 0 {
					n++
					if v != 1 {
						t.Errorf("word %d perturbed by %g, want +1", i, v)
					}
				}
			}
			return n
		}
		return count(dupCopy), count(primCopy)
	}

	// CorruptProb 1: both copies corrupted, each in exactly one word, at
	// independently hashed indices. With k=64 words, scanning a few seeds
	// must find one where the two indices differ.
	sawDistinctIndex := false
	for seed := uint64(0); seed < 8; seed++ {
		cost := zeroCost
		cost.Faults = &FaultPlan{
			Seed:  seed,
			Links: []LinkFault{{Src: 0, Dst: 1, DupProb: 1, CorruptProb: 1}},
		}
		var dupCopy, primCopy []float64
		_, err := Run(2, cost, func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, make([]float64, k))
				return nil
			}
			dupCopy = r.Recv(0)
			primCopy = r.Recv(0)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		dupIdx, primIdx := -1, -1
		for i := range dupCopy {
			if dupCopy[i] != 0 {
				if dupIdx != -1 {
					t.Fatalf("seed %d: duplicate corrupted in more than one word: %v", seed, dupCopy)
				}
				dupIdx = i
			}
			if primCopy[i] != 0 {
				if primIdx != -1 {
					t.Fatalf("seed %d: primary corrupted in more than one word: %v", seed, primCopy)
				}
				primIdx = i
			}
		}
		if dupIdx == -1 || primIdx == -1 {
			t.Fatalf("seed %d: CorruptProb 1 must corrupt both copies (dup word %d, primary word %d)",
				seed, dupIdx, primIdx)
		}
		if dupIdx != primIdx {
			sawDistinctIndex = true
		}
	}
	if !sawDistinctIndex {
		t.Error("duplicate never picked a different corruption index than the primary across 8 seeds")
	}

	// CorruptProb 0.5: the copies' fates are independent coin flips, so a
	// seed scan must find both mixed outcomes — clean duplicate with a
	// corrupted primary, and the reverse.
	// (Seed 0 is skipped: a fractional probability without an explicit
	// seed is a validation error.)
	sawCleanDupCorruptPrim, sawCorruptDupCleanPrim := false, false
	for seed := uint64(1); seed < 201 && !(sawCleanDupCorruptPrim && sawCorruptDupCleanPrim); seed++ {
		dupDiffs, primDiffs := recvPair(seed, 0.5)
		if dupDiffs == 0 && primDiffs == 1 {
			sawCleanDupCorruptPrim = true
		}
		if dupDiffs == 1 && primDiffs == 0 {
			sawCorruptDupCleanPrim = true
		}
	}
	if !sawCleanDupCorruptPrim || !sawCorruptDupCleanPrim {
		t.Errorf("copies' corruption fates are not independent: clean-dup/corrupt-primary seen %v, corrupt-dup/clean-primary seen %v",
			sawCleanDupCorruptPrim, sawCorruptDupCleanPrim)
	}
}

func TestDegradedLinkWindowInflatesSendCost(t *testing.T) {
	cost := Cost{AlphaT: 1, BetaT: 1}
	cost.Faults = &FaultPlan{
		Degraded: []DegradedLink{{
			Src: -1, Dst: -1, From: 10, Until: 100,
			AlphaFactor: 10, BetaFactor: 10,
		}},
	}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{1}) // clock 0 < 10: normal, α+β = 2
			r.Compute(0)
			// Advance into the window with a self-send trick is not
			// possible (no GammaT), so use a second send whose start
			// clock 2 is still outside, then rely on arithmetic below.
			r.Send(1, []float64{1}) // clock 2: still normal → 4
			return nil
		}
		r.Recv(0)
		r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].SendTime; got != 4 {
		t.Errorf("sends outside the window must cost 2 each, got total %g", got)
	}

	// Now a run whose second send starts inside the window.
	cost2 := Cost{GammaT: 1, AlphaT: 1, BetaT: 1, Faults: cost.Faults}
	res, err = Run(2, cost2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{1}) // clock 0: normal → 2
			r.Compute(20)           // clock 22: inside [10, 100)
			r.Send(1, []float64{1}) // degraded → 20
			return nil
		}
		r.Recv(0)
		r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerRank[0].SendTime; got != 22 {
		t.Errorf("degraded window send must cost 20: total %g, want 22", got)
	}
}

// TestFaultPlanStatsByteIdentical pins the determinism guarantee: the same
// seed and plan reproduce the exact same Stats, bit for bit, across runs.
func TestFaultPlanStatsByteIdentical(t *testing.T) {
	plan := &FaultPlan{
		Seed:       7,
		Crashes:    map[int]float64{1: 5000},
		Respawn:    true,
		RebootTime: 3,
		Links:      []LinkFault{{Src: -1, Dst: -1, DupProb: 0.3, CorruptProb: 0.2}},
		Degraded:   []DegradedLink{{Src: -1, Dst: -1, From: 2000, AlphaFactor: 2, BetaFactor: 3}},
	}
	run := func() []Stats {
		cost := unitCost
		cost.Faults = plan
		res, err := Run(4, cost, func(r *Rank) error {
			w := r.World()
			data := []float64{float64(r.ID()), 1, 2}
			for step := 0; step < 5; step++ {
				r.Compute(500)
				data = w.Shift(data, 1)
				r.TakeCrashed() // consume, keep running
			}
			w.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerRank
	}
	a, b := run(), run()
	for id := range a {
		if a[id] != b[id] {
			t.Errorf("rank %d stats differ across identical runs:\n%+v\n%+v", id, a[id], b[id])
		}
	}
}

func TestFaultPlanValidation(t *testing.T) {
	bad := []Cost{
		{Faults: &FaultPlan{Crashes: map[int]float64{9: 1}}},              // rank out of range
		{Faults: &FaultPlan{Crashes: map[int]float64{0: -1}}},             // negative time
		{Faults: &FaultPlan{RebootTime: -1}},                              // negative reboot
		{Faults: &FaultPlan{Links: []LinkFault{{DropProb: 1.5}}}},         // prob > 1
		{Faults: &FaultPlan{Degraded: []DegradedLink{{AlphaFactor: -2}}}}, // negative factor
		{ChanCap: -1}, // negative buffer
		// Link windows with End ≤ Start match nothing: the plan is not the
		// scenario its author wrote down.
		{Faults: &FaultPlan{Seed: 1, Links: []LinkFault{{From: 2, Until: 1, DropProb: 0.5}}}},
		{Faults: &FaultPlan{Seed: 1, Links: []LinkFault{{From: 2, Until: 2, DropProb: 0.5}}}},
		{Faults: &FaultPlan{Links: []LinkFault{{From: -0.5, DropProb: 1}}}}, // negative window start
		{Faults: &FaultPlan{Degraded: []DegradedLink{{From: 3, Until: 1, AlphaFactor: 2, BetaFactor: 2}}}},
		{Faults: &FaultPlan{Degraded: []DegradedLink{{From: -1, AlphaFactor: 2, BetaFactor: 2}}}},
		// Fractional probabilities roll the seeded dice; a Seed-less plan
		// with one is almost certainly missing its seed.
		{Faults: &FaultPlan{Links: []LinkFault{{DropProb: 0.25}}}},
		{Faults: &FaultPlan{Links: []LinkFault{{DupProb: 0.5}}}},
		{Faults: &FaultPlan{Links: []LinkFault{{CorruptProb: 0.01}}}},
	}
	for i, c := range bad {
		if _, err := NewCluster(2, c); err == nil {
			t.Errorf("case %d: invalid configuration %+v must be rejected", i, c)
		}
	}

	// The deterministic edges of the probability range need no seed (the
	// existing drop/dup tests rely on seedless prob-1 plans), and bounded
	// windows that end after they start are well formed.
	good := []Cost{
		{Faults: &FaultPlan{Links: []LinkFault{{DropProb: 1}}}},
		{Faults: &FaultPlan{Links: []LinkFault{{DupProb: 1, CorruptProb: 0}}}},
		{Faults: &FaultPlan{Seed: 3, Links: []LinkFault{{From: 1, Until: 2, DropProb: 0.25}}}},
		{Faults: &FaultPlan{Degraded: []DegradedLink{{From: 1, Until: 0, AlphaFactor: 2, BetaFactor: 2}}}},
	}
	for i, c := range good {
		if _, err := NewCluster(2, c); err != nil {
			t.Errorf("case %d: valid configuration %+v rejected: %v", i, c, err)
		}
	}
}

func TestFaultPlanClone(t *testing.T) {
	orig := &FaultPlan{
		Seed:       7,
		Crashes:    map[int]float64{1: 2.5},
		Respawn:    true,
		RebootTime: 0.5,
		Links:      []LinkFault{{Src: 0, Dst: 1, DropProb: 0.5}},
		Degraded:   []DegradedLink{{Src: -1, Dst: -1, AlphaFactor: 4, BetaFactor: 2}},
	}
	cp := orig.Clone()
	cp.Crashes[3] = 9
	cp.Links[0].DropProb = 0.9
	cp.Degraded[0].AlphaFactor = 16
	if _, ok := orig.Crashes[3]; ok {
		t.Error("Clone aliased the Crashes map")
	}
	if orig.Links[0].DropProb != 0.5 || orig.Degraded[0].AlphaFactor != 4 {
		t.Error("Clone aliased the Links/Degraded slices")
	}
	var nilPlan *FaultPlan
	if nilPlan.Clone() != nil {
		t.Error("Clone of nil must be nil")
	}
}

func TestFaultPlanMergeAndCoordCount(t *testing.T) {
	base := &FaultPlan{
		Seed:    1,
		Crashes: map[int]float64{0: 5, 1: 3},
		Links:   []LinkFault{{Src: 0, Dst: 1, DropProb: 1}},
	}
	other := &FaultPlan{
		Seed:     99, // ignored: the receiver's seed wins
		Crashes:  map[int]float64{0: 2, 2: 7},
		Links:    []LinkFault{{Src: -1, Dst: -1, DupProb: 1}},
		Degraded: []DegradedLink{{Src: 1, Dst: 0, AlphaFactor: 8, BetaFactor: 8}},
	}
	got := base.Merge(other)
	if got.Seed != 1 {
		t.Errorf("Merge seed = %d, want the receiver's 1", got.Seed)
	}
	// Conflicting crash on rank 0: the earlier time wins.
	if got.Crashes[0] != 2 || got.Crashes[1] != 3 || got.Crashes[2] != 7 {
		t.Errorf("Merge crashes = %v, want map[0:2 1:3 2:7]", got.Crashes)
	}
	if len(got.Links) != 2 || len(got.Degraded) != 1 {
		t.Errorf("Merge atoms = %d links, %d degraded, want 2 and 1", len(got.Links), len(got.Degraded))
	}
	if got.CoordCount() != 6 {
		t.Errorf("CoordCount = %d, want 6 (3 crashes + 2 links + 1 window)", got.CoordCount())
	}
	// Merge must not mutate its operands.
	if base.CoordCount() != 3 || other.CoordCount() != 4 {
		t.Errorf("Merge mutated an operand: base %d, other %d coords", base.CoordCount(), other.CoordCount())
	}
	var nilPlan *FaultPlan
	if nilPlan.CoordCount() != 0 {
		t.Error("CoordCount of nil must be 0")
	}
}
