package sim

import "fmt"

// LinkModel optionally refines the network model: per-pair latency and
// reciprocal bandwidth instead of the uniform αt/βt of Cost. The paper's
// base model assumes uniform links whose parameters stay constant as p
// grows; link models let the experiments probe that assumption (a 3D torus
// is "a perfect match" for 2.5D matmul per the paper's Section IV remark,
// and the Figure 2 machine has distinct intra- and inter-node links).
type LinkModel interface {
	// Latency returns the per-message latency between two ranks in seconds.
	Latency(src, dst int) float64
	// TimePerWord returns the per-word transfer time between two ranks.
	TimePerWord(src, dst int) float64
}

// TwoLevelLinks models the Figure 2 machine: ranks are grouped into nodes
// of CoresPerNode consecutive ranks; messages within a node use the intra
// parameters, messages between nodes the inter parameters.
type TwoLevelLinks struct {
	CoresPerNode int
	IntraAlpha   float64
	IntraBeta    float64
	InterAlpha   float64
	InterBeta    float64
}

// Node returns the node index of a rank.
func (l TwoLevelLinks) Node(rank int) int { return rank / l.CoresPerNode }

// Latency implements LinkModel.
func (l TwoLevelLinks) Latency(src, dst int) float64 {
	if l.Node(src) == l.Node(dst) {
		return l.IntraAlpha
	}
	return l.InterAlpha
}

// TimePerWord implements LinkModel.
func (l TwoLevelLinks) TimePerWord(src, dst int) float64 {
	if l.Node(src) == l.Node(dst) {
		return l.IntraBeta
	}
	return l.InterBeta
}

// Validate checks the link model against a cluster size.
func (l TwoLevelLinks) Validate(p int) error {
	if l.CoresPerNode <= 0 || p%l.CoresPerNode != 0 {
		return fmt.Errorf("sim: %d ranks do not fill nodes of %d cores", p, l.CoresPerNode)
	}
	return nil
}

// Torus3DLinks models an X×Y×Z torus: the latency of a message grows with
// the Manhattan hop distance (with wraparound) while bandwidth stays
// constant — the simplest store-and-forward torus abstraction. Rank
// (x, y, z) = x + X·(y + Y·z).
type Torus3DLinks struct {
	X, Y, Z int
	// AlphaPerHop is the latency of one hop; BetaPerWord the uniform
	// per-word time.
	AlphaPerHop float64
	BetaPerWord float64
}

// Coords returns the torus coordinates of a rank.
func (t Torus3DLinks) Coords(rank int) (x, y, z int) {
	x = rank % t.X
	y = (rank / t.X) % t.Y
	z = rank / (t.X * t.Y)
	return
}

// Hops returns the wraparound Manhattan distance between two ranks;
// a self-message counts one hop.
func (t Torus3DLinks) Hops(src, dst int) int {
	sx, sy, sz := t.Coords(src)
	dx, dy, dz := t.Coords(dst)
	h := ringDist(sx, dx, t.X) + ringDist(sy, dy, t.Y) + ringDist(sz, dz, t.Z)
	if h == 0 {
		return 1
	}
	return h
}

func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Latency implements LinkModel.
func (t Torus3DLinks) Latency(src, dst int) float64 {
	return t.AlphaPerHop * float64(t.Hops(src, dst))
}

// TimePerWord implements LinkModel.
func (t Torus3DLinks) TimePerWord(src, dst int) float64 { return t.BetaPerWord }

// Validate checks the torus against a cluster size.
func (t Torus3DLinks) Validate(p int) error {
	if t.X <= 0 || t.Y <= 0 || t.Z <= 0 || t.X*t.Y*t.Z != p {
		return fmt.Errorf("sim: %d ranks do not tile a %dx%dx%d torus", p, t.X, t.Y, t.Z)
	}
	return nil
}

// PlacedLinks composes a link model with a placement: Place[rank] is the
// physical node the logical rank occupies. It lets experiments compare a
// topology-aware placement of a process grid against a scrambled one —
// e.g. the paper's remark that a 3D torus is a perfect match for the 2.5D
// algorithm holds only when fibers and rows land on torus lines.
type PlacedLinks struct {
	Base  LinkModel
	Place []int
}

// Latency implements LinkModel.
func (p PlacedLinks) Latency(src, dst int) float64 {
	return p.Base.Latency(p.Place[src], p.Place[dst])
}

// TimePerWord implements LinkModel.
func (p PlacedLinks) TimePerWord(src, dst int) float64 {
	return p.Base.TimePerWord(p.Place[src], p.Place[dst])
}

// IdentityPlacement returns the natural placement 0..p-1.
func IdentityPlacement(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

// GridToTorusPlacement places a q×q×c process grid onto an X×Y×Z torus so
// that grid rows, columns and fibers map to torus lines: grid (row, col,
// layer) goes to torus (col, row, layer). Requires X ≥ q, Y ≥ q, Z ≥ c.
// With this placement every Cannon shift and every fiber collective of the
// 2.5D algorithm is nearest-neighbor on the torus.
func GridToTorusPlacement(g Grid3D, t Torus3DLinks) ([]int, error) {
	if t.X < g.Q || t.Y < g.Q || t.Z < g.Layers {
		return nil, fmt.Errorf("sim: grid %dx%dx%d does not embed in torus %dx%dx%d",
			g.Q, g.Q, g.Layers, t.X, t.Y, t.Z)
	}
	place := make([]int, g.Q*g.Q*g.Layers)
	for rank := range place {
		row, col, layer := g.Coords(rank)
		place[rank] = col + t.X*(row+t.Y*layer)
	}
	return place, nil
}
