package sim

import "fmt"

// Grid2D maps ranks onto a rows×cols process grid in row-major order:
// rank = row·cols + col. It is the layout of the 2D algorithms (Cannon,
// SUMMA) and of each layer of the 2.5D algorithms.
type Grid2D struct {
	Rows, Cols int
}

// NewGrid2D validates that p ranks tile a rows×cols grid.
func NewGrid2D(rows, cols, p int) (Grid2D, error) {
	if rows <= 0 || cols <= 0 || rows*cols != p {
		return Grid2D{}, fmt.Errorf("sim: %d ranks do not tile a %dx%d grid", p, rows, cols)
	}
	return Grid2D{Rows: rows, Cols: cols}, nil
}

// Coords returns the (row, col) of a global rank.
func (g Grid2D) Coords(rank int) (row, col int) { return rank / g.Cols, rank % g.Cols }

// RankAt returns the global rank at (row, col).
func (g Grid2D) RankAt(row, col int) int { return row*g.Cols + col }

// RowComm returns the communicator of the caller's grid row.
func (g Grid2D) RowComm(r *Rank) (*Comm, error) {
	row, _ := g.Coords(r.ID())
	members := make([]int, g.Cols)
	for c := 0; c < g.Cols; c++ {
		members[c] = g.RankAt(row, c)
	}
	return r.newCommTrusted(members)
}

// ColComm returns the communicator of the caller's grid column.
func (g Grid2D) ColComm(r *Rank) (*Comm, error) {
	_, col := g.Coords(r.ID())
	members := make([]int, g.Rows)
	for row := 0; row < g.Rows; row++ {
		members[row] = g.RankAt(row, col)
	}
	return r.newCommTrusted(members)
}

// Grid3D maps ranks onto a q×q×c processor cuboid: the 2.5D layout with q =
// sqrt(p/c) and replication factor c (c = 1 is 2D, c = p^(1/3) is 3D).
// rank = layer·q² + row·q + col.
type Grid3D struct {
	Q      int // rows = cols of each square layer
	Layers int // replication factor c

	// tab shares one member slice per row/column/fiber across every rank
	// that asks for the communicator (NewGrid3D builds it; a zero-valued
	// Grid3D literal falls back to per-call construction). The q ranks of
	// a row each used to build — and duplicate-scan — an identical q-entry
	// slice, so comm construction was O(p·q) slices and O(p·q²)
	// comparisons per run. The shared slices are read-only by contract:
	// Comm never mutates its member list.
	tab *grid3Tab
}

type grid3Tab struct {
	rows   [][]int // rows[layer*q+row]
	cols   [][]int // cols[layer*q+col]
	fibers [][]int // fibers[row*q+col]
}

// NewGrid3D validates that p ranks tile a q×q×layers cuboid.
func NewGrid3D(q, layers, p int) (Grid3D, error) {
	if q <= 0 || layers <= 0 || q*q*layers != p {
		return Grid3D{}, fmt.Errorf("sim: %d ranks do not tile a %dx%dx%d cuboid", p, q, q, layers)
	}
	g := Grid3D{Q: q, Layers: layers}
	tab := &grid3Tab{
		rows:   make([][]int, q*layers),
		cols:   make([][]int, q*layers),
		fibers: make([][]int, q*q),
	}
	for l := 0; l < layers; l++ {
		for row := 0; row < q; row++ {
			m := make([]int, q)
			for c := 0; c < q; c++ {
				m[c] = g.RankAt(row, c, l)
			}
			tab.rows[l*q+row] = m
		}
		for col := 0; col < q; col++ {
			m := make([]int, q)
			for row := 0; row < q; row++ {
				m[row] = g.RankAt(row, col, l)
			}
			tab.cols[l*q+col] = m
		}
	}
	for row := 0; row < q; row++ {
		for col := 0; col < q; col++ {
			m := make([]int, layers)
			for l := 0; l < layers; l++ {
				m[l] = g.RankAt(row, col, l)
			}
			tab.fibers[row*q+col] = m
		}
	}
	g.tab = tab
	return g, nil
}

// Coords returns the (row, col, layer) of a global rank.
func (g Grid3D) Coords(rank int) (row, col, layer int) {
	layer = rank / (g.Q * g.Q)
	rem := rank % (g.Q * g.Q)
	return rem / g.Q, rem % g.Q, layer
}

// RankAt returns the global rank at (row, col, layer).
func (g Grid3D) RankAt(row, col, layer int) int {
	return layer*g.Q*g.Q + row*g.Q + col
}

// LayerGrid returns the 2D grid describing one layer (for Cannon-style
// shifts within a layer).
func (g Grid3D) LayerGrid() Grid2D { return Grid2D{Rows: g.Q, Cols: g.Q} }

// RowComm returns the caller's intra-layer row communicator.
func (g Grid3D) RowComm(r *Rank) (*Comm, error) {
	row, col, layer := g.Coords(r.ID())
	if g.tab != nil && g.Q*g.Q*g.Layers == r.P() {
		return &Comm{rank: r, members: g.tab.rows[layer*g.Q+row], me: col}, nil
	}
	members := make([]int, g.Q)
	for c := 0; c < g.Q; c++ {
		members[c] = g.RankAt(row, c, layer)
	}
	return r.newCommTrusted(members)
}

// ColComm returns the caller's intra-layer column communicator.
func (g Grid3D) ColComm(r *Rank) (*Comm, error) {
	row, col, layer := g.Coords(r.ID())
	if g.tab != nil && g.Q*g.Q*g.Layers == r.P() {
		return &Comm{rank: r, members: g.tab.cols[layer*g.Q+col], me: row}, nil
	}
	members := make([]int, g.Q)
	for row := 0; row < g.Q; row++ {
		members[row] = g.RankAt(row, col, layer)
	}
	return r.newCommTrusted(members)
}

// FiberComm returns the caller's inter-layer fiber communicator: the c
// ranks sharing (row, col) across layers, ordered by layer. This is the
// communicator over which 2.5D algorithms replicate inputs and reduce
// partial results.
func (g Grid3D) FiberComm(r *Rank) (*Comm, error) {
	row, col, layer := g.Coords(r.ID())
	if g.tab != nil && g.Q*g.Q*g.Layers == r.P() {
		return &Comm{rank: r, members: g.tab.fibers[row*g.Q+col], me: layer}, nil
	}
	members := make([]int, g.Layers)
	for l := 0; l < g.Layers; l++ {
		members[l] = g.RankAt(row, col, l)
	}
	return r.newCommTrusted(members)
}

// LayerComm returns the communicator of every rank in the caller's layer,
// in row-major order.
func (g Grid3D) LayerComm(r *Rank) (*Comm, error) {
	_, _, layer := g.Coords(r.ID())
	members := make([]int, g.Q*g.Q)
	for i := range members {
		members[i] = g.RankAt(i/g.Q, i%g.Q, layer)
	}
	return r.newCommTrusted(members)
}
