package sim

import (
	"math/bits"
	"testing"
)

// Regression pins for two cost constants the conformance sweep surfaced.
// The paper's order-notation forms hide them, and both were initially
// mismodelled in the sweep's expectations; the exact values are load-bearing
// there (see internal/conformance/algorithms.go), so a change here must be a
// reviewed decision, not an accident.

// TestBruckHalfBufferWords pins the Bruck all-to-all's word count: each of
// the ⌈log₂p⌉ rounds exchanges HALF the p-block buffer, so a rank sends
// ⌈log₂p⌉·(p·k)/2 words — exactly half of the textbook (n/p)·log₂p form
// the Section IV FFT model uses (bounds.FFTTree keeps the paper's
// constant; this test keeps the implementation honest about its own).
func TestBruckHalfBufferWords(t *testing.T) {
	const k = 3
	for _, p := range []int{2, 4, 8, 16, 32} {
		data := make([]float64, p*k)
		res, err := Run(p, zeroCost, func(r *Rank) error {
			r.World().AllToAllTree(data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rounds := bits.Len(uint(p - 1))
		want := float64(rounds * p * k / 2)
		for id, s := range res.PerRank {
			if s.WordsSent != want {
				t.Errorf("p=%d rank %d: Bruck sent %g words, want ⌈log₂p⌉·p·k/2 = %g",
					p, id, s.WordsSent, want)
			}
		}
	}
}

// TestReduceScatterCombineFlops pins the ring reduce-scatter's arithmetic:
// reducing p vectors of k elements costs (p−1)·k combine flops in total,
// and the ring spreads them evenly — (p−1)·(k/p) per member. The 2.5D
// matmul's fiber reduction inherits this constant, where it shows up as the
// extra F beyond 2n³/p that the conformance F model accounts for exactly.
func TestReduceScatterCombineFlops(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		k := 8 * p
		data := make([]float64, k)
		res, err := Run(p, zeroCost, func(r *Rank) error {
			r.World().ReduceScatter(data, OpSum)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := float64((p - 1) * (k / p))
		total := 0.0
		for id, s := range res.PerRank {
			if s.Flops != want {
				t.Errorf("p=%d rank %d: reduce-scatter charged %g flops, want (p−1)·k/p = %g",
					p, id, s.Flops, want)
			}
			total += s.Flops
		}
		if wantTotal := float64((p - 1) * k); total != wantTotal {
			t.Errorf("p=%d: total combine flops %g, want (p−1)·k = %g", p, total, wantTotal)
		}
	}
}

// TestReduceLargeCombineFlops pins the same constant through ReduceLarge
// (reduce-scatter + gather): members pay the combine flops, the root pays
// no extra for the gather.
func TestReduceLargeCombineFlops(t *testing.T) {
	const p, k = 4, 32
	data := make([]float64, k)
	res, err := Run(p, zeroCost, func(r *Rank) error {
		r.World().ReduceLarge(0, data, OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64((p - 1) * (k / p))
	for id, s := range res.PerRank {
		if s.Flops != want {
			t.Errorf("rank %d: ReduceLarge charged %g flops, want %g", id, s.Flops, want)
		}
	}
}
