package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// mixedProgram exercises point-to-point sends of several sizes (including
// zero words), waits, collectives, tracked memory and self-sends — every
// code path whose accounting must be wiring-independent.
func mixedProgram(r *Rank) error {
	w := r.World()
	p := r.P()
	data := make([]float64, 37) // deliberately not a multiple of MaxMsgWords
	for i := range data {
		data[i] = float64(r.ID() + i)
	}
	r.Alloc(len(data))
	for step := 0; step < 3; step++ {
		r.Compute(float64(100 * (r.ID() + 1))) // imbalanced: creates waits
		data = w.Shift(data, 1+step)
		r.Send((r.ID()+p/2)%p, nil) // zero-word message across the cluster
		r.Recv((r.ID() + p/2) % p)
	}
	r.Send(r.ID(), []float64{1, 2, 3}) // self-send
	r.Recv(r.ID())
	w.AllReduce(data, OpSum)
	w.Barrier()
	return nil
}

// TestDenseSparseIdenticalResults pins the tentpole guarantee: the wiring
// mode changes how queues are allocated, never what the simulation computes.
// Every per-rank counter and clock must match bit for bit across modes, for
// plain runs, message splitting, ChargeReceiver, per-link costs and a full
// fault plan.
func TestDenseSparseIdenticalResults(t *testing.T) {
	costs := map[string]Cost{
		"base":     {GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6},
		"splitMsg": {GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 7},
		"chargeReceiver": {
			GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 16,
			ChargeReceiver: true,
		},
		"perLink": {
			GammaT: 1e-9,
			Links:  TwoLevelLinks{CoresPerNode: 2, IntraAlpha: 1e-7, IntraBeta: 1e-9, InterAlpha: 1e-5, InterBeta: 1e-8},
		},
		// Stream-preserving faults only: mixedProgram is not fault-tolerant,
		// so drops/dups would (correctly) derail it under either wiring.
		"faulty": {
			GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, ChargeReceiver: true,
			Faults: &FaultPlan{
				Seed:     11,
				Links:    []LinkFault{{Src: -1, Dst: -1, CorruptProb: 0.6}},
				Degraded: []DegradedLink{{Src: -1, Dst: -1, From: 1e-6, AlphaFactor: 3, BetaFactor: 5}},
			},
		},
	}
	for name, cost := range costs {
		runWith := func(w Wiring) []Stats {
			c := cost
			c.Wiring = w
			res, err := Run(8, c, mixedProgram)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, w, err)
			}
			return res.PerRank
		}
		dense, sparse := runWith(WiringDense), runWith(WiringSparse)
		for id := range dense {
			if dense[id] != sparse[id] {
				t.Errorf("%s rank %d: dense and sparse wiring disagree:\ndense:  %+v\nsparse: %+v",
					name, id, dense[id], sparse[id])
			}
		}
	}
}

// TestDenseWiringDiagnostics re-runs the failure-path scenarios under dense
// wiring (the regular tests cover the sparse default): a mismatched
// point-to-point program must still be named a deadlock, and a receive from
// an exited peer must still fail cleanly instead of hanging.
func TestDenseWiringDiagnostics(t *testing.T) {
	dense := shortDog(zeroCost)
	dense.Wiring = WiringDense

	_, err := Run(2, dense, func(r *Rank) error {
		data := r.Recv(1 - r.ID()) // both receive first: classic deadlock
		r.Send(1-r.ID(), data)
		return nil
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Errorf("dense wiring: expected DeadlockError, got %v", err)
	}

	_, err = Run(2, dense, func(r *Rank) error {
		if r.ID() == 1 {
			r.Recv(0)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "exited without sending") {
		t.Errorf("dense wiring: expected exited-peer error, got %v", err)
	}
}

// TestRecvDrainsMessagesSentBeforeExit pins the delivery guarantee the
// sparse exit notification must preserve: messages queued before the sender
// exits are received, in order, before a failed receive is reported.
func TestRecvDrainsMessagesSentBeforeExit(t *testing.T) {
	for _, w := range []Wiring{WiringSparse, WiringDense} {
		cost := shortDog(zeroCost)
		cost.Wiring = w
		_, err := Run(2, cost, func(r *Rank) error {
			const n = 5
			if r.ID() == 0 {
				for i := 0; i < n; i++ {
					r.Send(1, []float64{float64(i)})
				}
				return nil // exit immediately; rank 1 drains afterwards
			}
			time.Sleep(50 * time.Millisecond) // let rank 0 exit first
			for i := 0; i < n; i++ {
				if got := r.Recv(0); got[0] != float64(i) {
					t.Errorf("%v: message %d wrong or out of order: %v", w, i, got)
				}
			}
			r.Recv(0) // nothing left: must fail cleanly, not hang
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "exited without sending") {
			t.Errorf("%v: expected exited-peer error after drain, got %v", w, err)
		}
	}
}

// TestActivePairsScalesWithPattern pins what sparse wiring buys: the wired
// pair count follows the communication pattern, not p².
func TestActivePairsScalesWithPattern(t *testing.T) {
	const p = 64
	c, err := NewCluster(p, Cost{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(func(r *Rank) error {
		next := (r.ID() + 1) % p
		prev := (r.ID() - 1 + p) % p
		for step := 0; step < 4; step++ {
			r.Send(next, []float64{1})
			r.Recv(prev)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A ring wires exactly p directed pairs, however many steps run.
	if got := c.ActivePairs(); got != p {
		t.Errorf("ring should wire exactly %d pairs, got %d", p, got)
	}

	d, err := NewCluster(8, Cost{Wiring: WiringDense})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ActivePairs(); got != 64 {
		t.Errorf("dense wiring reports p² pairs up front, got %d", got)
	}
}

// TestSparseWiring16kRanks is the scale demonstration: a p=16384 cluster —
// whose dense wiring would allocate ~268M queues before the first flop —
// creates in milliseconds, runs a ring + hypercube exchange program, wires
// only pattern-many pairs, and produces the exact symmetric virtual time.
func TestSparseWiring16kRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("16384-goroutine cluster: skipped in -short")
	}
	if raceEnabled {
		t.Skip("race detector caps a process at 8192 goroutines")
	}
	const p = 16384 // 2^14
	const k = 16
	cost := Cost{
		AlphaT: 1e-6, BetaT: 1e-9, ChanCap: 2,
		WatchdogTimeout: 2 * time.Minute, // 16k goroutines on few cores: be patient
	}
	c, err := NewCluster(p, cost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(r *Rank) error {
		data := make([]float64, k)
		next := (r.ID() + 1) % p
		prev := (r.ID() - 1 + p) % p
		data = r.SendRecv(next, data, prev) // one ring step
		for bit := 1; bit < p; bit <<= 1 {  // 14 hypercube rounds
			data = r.SendRecv(r.ID()^bit, data, r.ID()^bit)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank runs the identical fully-overlapped schedule: 15 exchange
	// steps of αt + k·βt each, exactly (summed the way the clock does, so
	// the comparison is bit-exact).
	dt := cost.AlphaT*1 + cost.BetaT*float64(k)
	want := 0.0
	for i := 0; i < 15; i++ {
		want += dt
	}
	if got := res.Time(); got != want {
		t.Errorf("virtual time: got %g want %g", got, want)
	}
	// The ring wires p pairs (i → i+1) and each hypercube round wires p
	// pairs (i → i^bit); the bit=1 round re-uses the ring's pair for every
	// even i (i^1 == i+1), so p/2 of its pairs are already wired.
	if got, want := c.ActivePairs(), 15*p-p/2; got != want {
		t.Errorf("active pairs: got %d want %d (dense would be %d)", got, want, p*p)
	}
}
