package sim

import (
	"fmt"
	"math"
)

// Virtual-time timers.
//
// A plain Recv blocks until a message arrives; when the message was lost
// (a silent drop, a dead peer) it blocks forever and only the watchdog's
// post-mortem abort ends the run. RecvTimeout and SendTimeout instead give
// the blocked operation a deadline in VIRTUAL time — clock + timeout — so
// a resilience protocol can retransmit and keep the run alive.
//
// Making a timeout deterministic is the whole difficulty: the simulator
// has no global virtual clock to compare the deadline against, only the
// per-rank clocks that advance when messages flow. The rules:
//
//   - A message beats the timer iff its arrival stamp is strictly below
//     the deadline. A message that arrives (in real time) but is stamped
//     at or after the deadline is pushed back — it stays the FIFO head
//     for the pair and is returned by the next receive — and the
//     operation times out. The decision is a pure function of virtual
//     stamps, never of real-time interleaving.
//   - A timer with no message to beat it may only fire when the cluster
//     is quiescent: every live rank blocked for a full watchdog window
//     with no deliverable message queued. Quiescence is exactly the
//     condition under which the old watchdog declared deadlock — it is
//     the only point where "no message with a smaller stamp can still
//     arrive" is knowable. The watchdog then fires the single earliest
//     armed timer (ties broken by rank id) and waits for fresh
//     quiescence before firing the next; firing one at a time keeps the
//     run a deterministic function of the program and the fault seed,
//     because the fired rank's resumption can change which stamps every
//     other blocked rank will observe.
//   - On expiry the rank's clock advances to the deadline and the idle
//     span is accounted as WaitTime (a SegWait segment), so timeout-driven
//     recovery is priced through the normal Eq. 1/Eq. 2 terms like any
//     other wait.
//
// Deadlock is still declared — but only at quiescence with zero armed
// timers, so a retransmit/backoff cycle in flight counts as liveness.

// RecvOutcome says how a RecvTimeout resolved.
type RecvOutcome int

// RecvTimeout outcomes.
const (
	// RecvOK: a message with arrival stamp below the deadline was
	// delivered and priced exactly like a plain Recv.
	RecvOK RecvOutcome = iota
	// RecvTimedOut: no message beat the deadline; the clock advanced to
	// the deadline and the span was accounted as WaitTime. If a message
	// stamped at or after the deadline had already arrived it was pushed
	// back and stays the FIFO head for the pair.
	RecvTimedOut
	// RecvPeerExited: the peer left the run (clean exit, crash, failure)
	// with nothing further queued; PeerExit names the root cause. The
	// clock does not advance.
	RecvPeerExited
)

// String names the outcome.
func (o RecvOutcome) String() string {
	switch o {
	case RecvOK:
		return "ok"
	case RecvTimedOut:
		return "timeout"
	case RecvPeerExited:
		return "peer-exited"
	}
	return fmt.Sprintf("RecvOutcome(%d)", int(o))
}

// SendOutcome says how a SendTimeout resolved.
type SendOutcome int

// SendTimeout outcomes.
const (
	// SendOK: every copy was enqueued; identical to a plain Send.
	SendOK SendOutcome = iota
	// SendTimedOut: the pair's buffer stayed full past the deadline; the
	// undelivered copy is lost (the sender has paid, like a drop at the
	// NIC) and the clock advanced to the deadline as WaitTime.
	SendTimedOut
	// SendPeerExited: the receiver exited while the buffer was full, so
	// the send can never complete; the undelivered copy is lost and the
	// clock does not advance.
	SendPeerExited
)

// String names the outcome.
func (o SendOutcome) String() string {
	switch o {
	case SendOK:
		return "ok"
	case SendTimedOut:
		return "timeout"
	case SendPeerExited:
		return "peer-exited"
	}
	return fmt.Sprintf("SendOutcome(%d)", int(o))
}

// TimerKind classifies a TimerEvent.
type TimerKind int

// Timer event kinds.
const (
	// TimerArmed marks the start of a timed operation at the rank's
	// current clock.
	TimerArmed TimerKind = iota
	// TimerFired marks an expiry: the operation timed out at Deadline.
	TimerFired
	// TimerCancelled marks a timer resolved by its operation completing
	// (message delivered, buffer drained, peer exit observed).
	TimerCancelled
)

// String names the timer event kind.
func (k TimerKind) String() string {
	switch k {
	case TimerArmed:
		return "armed"
	case TimerFired:
		return "fired"
	case TimerCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("TimerKind(%d)", int(k))
}

// TimerEvent reports one virtual-timer transition on the Observer bus.
// Every timed operation emits one TimerArmed and resolves it with exactly
// one TimerFired or TimerCancelled; all three fire on the rank's own
// goroutine in virtual-time order, like segment callbacks.
type TimerEvent struct {
	Kind TimerKind
	// Rank owns the timer; Peer is the rank the timed operation targets.
	Rank, Peer int
	// Op is "recv" or "send".
	Op string
	// Deadline is the absolute virtual deadline; Time is the rank's clock
	// when the event fired (equal to Deadline for TimerFired).
	Deadline, Time float64
}

// emitTimer publishes a timer transition to every subscriber.
func (r *Rank) emitTimer(kind TimerKind, peer int, op string, deadline float64) {
	if len(r.cluster.obs) == 0 {
		return
	}
	ev := TimerEvent{Kind: kind, Rank: r.id, Peer: peer, Op: op, Deadline: deadline, Time: r.clock}
	for _, o := range r.cluster.obs {
		o.OnTimer(ev)
	}
}

// armTimer publishes an armed virtual deadline to the watchdog and blocks
// the rank's state word in a timer-aware op. The deadline store happens
// before the state store, so a watchdog that samples the timer op always
// reads a valid deadline.
func (r *Rank) armTimer(op uint64, peer int, deadline float64) {
	// Drain a stale fire token from a previous timer that resolved by
	// message or peer exit after the watchdog had already released it.
	select {
	case <-r.cluster.timerCh[r.id]:
	default:
	}
	r.cluster.timerDeadline[r.id].Store(math.Float64bits(deadline))
	r.setState(op, peer)
}

// disarmTimer returns the rank to the running state and clears the
// published deadline, in that order (the watchdog treats "timer op with
// zero deadline" as a transition in flight, never as a dead rank).
func (r *Rank) disarmTimer() {
	r.setState(opRunning, 0)
	r.cluster.timerDeadline[r.id].Store(0)
}

// takePushback pops the pushed-back head message for a pair, if any.
func (r *Rank) takePushback(src int) (message, bool) {
	msg, ok := r.pushback[src]
	if ok {
		delete(r.pushback, src)
	}
	return msg, ok
}

// timeoutWait accounts an expiry: the span to the deadline is WaitTime,
// the clock lands exactly on the deadline.
func (r *Rank) timeoutWait(peer int, deadline float64) {
	if deadline > r.clock {
		r.stats.WaitTime += deadline - r.clock
		r.emit(Segment{Kind: SegWait, Start: r.clock, End: deadline, Peer: peer})
		r.clock = deadline
	}
}

// RecvTimeout receives the next message from rank src unless the wait
// would pass the virtual deadline clock+timeout. On RecvOK the returned
// slice and all accounting are identical to Recv. See the package-level
// timer rules for how expiry stays deterministic; timeout must be
// positive.
func (r *Rank) RecvTimeout(src int, timeout float64) ([]float64, RecvOutcome) {
	if src < 0 || src >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d receiving from invalid rank %d", r.id, src))
	}
	if !(timeout > 0) {
		panic(fmt.Sprintf("sim: rank %d RecvTimeout with non-positive timeout %g", r.id, timeout))
	}
	r.crashCheck()
	deadline := r.clock + timeout
	r.emitTimer(TimerArmed, src, "recv", deadline)
	// A message pushed back by an earlier expiry is the FIFO head.
	if msg, ok := r.takePushback(src); ok {
		return r.recvDecide(src, msg, deadline)
	}
	var msg message
	var got, exited, fired bool
	if e := r.cluster.eng; e != nil {
		// The engine path owns its own fast dequeue try (and the wake of a
		// sender parked on the reopened buffer).
		msg, got, exited, fired = e.recvTimeoutEvent(r, src, deadline)
		if got {
			return r.recvDecide(src, msg, deadline)
		}
	} else {
		ch := r.queueFrom(src).ch
		select {
		case msg := <-ch:
			return r.recvDecide(src, msg, deadline)
		default:
		}
		r.armTimer(opBlockedRecvTimer, src, deadline)
		select {
		case msg = <-ch:
			got = true
		case <-r.cluster.exitCh[src]:
			exited = true
		case <-r.cluster.timerCh[r.id]:
			fired = true
		case <-r.cluster.cancelCh:
			panic(cancelPanic{})
		case <-r.cluster.aborts[r.id]:
			panic(abortPanic{err: r.cluster.abortErr[r.id]})
		}
		// Whatever woke the select, re-check in fixed priority order —
		// message, peer exit, expiry — so a real-time race between a late
		// enqueue, an exit notification and a fire token cannot change the
		// outcome: the decision depends only on virtual state.
		if !got {
			select {
			case msg = <-ch:
				got = true
			default:
			}
		}
		if !got && !exited {
			select {
			case <-r.cluster.exitCh[src]:
				exited = true
			default:
			}
		}
		r.disarmTimer()
	}
	switch {
	case got:
		return r.recvDecide(src, msg, deadline)
	case exited:
		r.emitTimer(TimerCancelled, src, "recv", deadline)
		return nil, RecvPeerExited
	default:
		_ = fired
		r.emitTimer(TimerFired, src, "recv", deadline)
		r.timeoutWait(src, deadline)
		return nil, RecvTimedOut
	}
}

// recvDecide applies the timer rule to a message in hand: deliver it if
// its stamp beats the deadline, otherwise push it back and expire.
func (r *Rank) recvDecide(src int, msg message, deadline float64) ([]float64, RecvOutcome) {
	if msg.arrival < deadline {
		r.emitTimer(TimerCancelled, src, "recv", deadline)
		return r.finishRecv(src, msg), RecvOK
	}
	if r.pushback == nil {
		r.pushback = make(map[int]message, 2)
	}
	r.pushback[src] = msg
	r.emitTimer(TimerFired, src, "recv", deadline)
	r.timeoutWait(src, deadline)
	return nil, RecvTimedOut
}

// PeerExit reports whether rank id has exited and, if it failed, the
// error it exited with. It is only safe to call after an exit has been
// observed — a RecvTimeout that returned RecvPeerExited, a SendTimeout
// that returned SendPeerExited — because the exit record is published
// before the exit notification those outcomes consumed.
func (r *Rank) PeerExit(id int) (exited bool, clean bool, err error) {
	if id < 0 || id >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d querying invalid rank %d", r.id, id))
	}
	select {
	case <-r.cluster.exitCh[id]:
	default:
		return false, false, nil
	}
	ei := r.cluster.exits[id]
	return true, ei.status == exitClean, ei.err
}

// SendTimeout transmits like Send but bounds the real-time block on a
// full pair buffer by the virtual deadline clock+timeout (the deadline is
// taken after the send's α/β cost, which is always paid). A copy that
// cannot be enqueued by the deadline — or whose receiver exited with the
// buffer full — is lost; under a fault plan that duplicates the message
// the copies share one deadline and delivery stops at the first failed
// copy. Timeout must be positive.
func (r *Rank) SendTimeout(dst int, data []float64, timeout float64) SendOutcome {
	if dst < 0 || dst >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d sending to invalid rank %d", r.id, dst))
	}
	if !(timeout > 0) {
		panic(fmt.Sprintf("sim: rank %d SendTimeout with non-positive timeout %g", r.id, timeout))
	}
	r.crashCheck()
	k := len(data)
	msgs := r.cluster.messagesFor(k)
	r.stats.WordsSent += float64(k)
	r.stats.MsgsSent += msgs
	alpha, beta := r.cluster.cost.linkParams(r.id, dst)
	af, bf := 1.0, 1.0
	fp := r.cluster.cost.Faults
	if fp != nil {
		af, bf = fp.degradeFactors(r.id, dst, r.clock)
		alpha *= af
		beta *= bf
	}
	dt := alpha*msgs + beta*float64(k)
	r.stats.SendTime += dt
	start := r.clock
	r.emit(Segment{Kind: SegSend, Start: start, End: start + dt, Peer: dst, Words: k, Msgs: msgs})
	r.clock += dt
	deadline := r.clock + timeout
	r.emitTimer(TimerArmed, dst, "send", deadline)
	cp := make([]float64, k)
	copy(cp, data)
	seq := r.sendCount
	r.sendCount++
	if fp != nil {
		if (af != 1 || bf != 1) && len(r.cluster.obs) > 0 {
			r.emitFault(FaultEvent{
				Kind: FaultDegraded, Src: r.id, Dst: dst, Seq: seq,
				Time: start, Words: k, AlphaFactor: af, BetaFactor: bf,
			})
		}
		drop, dup, corrupt, dupCorrupt := fp.messageFate(r.id, dst, seq, r.clock)
		if len(r.cluster.obs) > 0 {
			if corrupt && k > 0 {
				r.emitFault(FaultEvent{Kind: FaultCorrupt, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k, Copy: copyPrimary})
			}
			if dup {
				r.emitFault(FaultEvent{Kind: FaultDup, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k})
				if dupCorrupt && k > 0 {
					r.emitFault(FaultEvent{Kind: FaultCorrupt, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k, Copy: copyDup})
				}
			}
			if drop {
				r.emitFault(FaultEvent{Kind: FaultDrop, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k})
			}
		}
		// Same copy semantics as Send: the duplicate rolls its own
		// corruption fate and survives a primary drop.
		if dup {
			extra := make([]float64, k)
			copy(extra, data)
			if dupCorrupt && k > 0 {
				extra[fp.corruptIndex(r.id, dst, seq, copyDup, k)] += 1.0
			}
			if out := r.deliverDeadline(dst, message{data: extra, arrival: r.clock, alphaF: af, betaF: bf}, deadline); out != SendOK {
				return out
			}
		}
		if corrupt && k > 0 {
			cp[fp.corruptIndex(r.id, dst, seq, copyPrimary, k)] += 1.0
		}
		if drop {
			r.emitTimer(TimerCancelled, dst, "send", deadline)
			return SendOK // the sender has paid; the network loses the primary copy
		}
	}
	return r.deliverDeadline(dst, message{data: cp, arrival: r.clock, alphaF: af, betaF: bf}, deadline)
}

// deliverDeadline enqueues one copy with a virtual deadline on the block.
// It resolves the timer event for the whole SendTimeout: SendOK cancels
// it, the failure outcomes fire or cancel it exactly once.
func (r *Rank) deliverDeadline(dst int, m message, deadline float64) SendOutcome {
	var sent, exited, fired bool
	if e := r.cluster.eng; e != nil {
		// The engine path tries the enqueue itself (and notifies a
		// receiver parked on the empty pair).
		sent, exited, fired = e.sendDeadlineEvent(r, dst, m, deadline)
	} else {
		ch := r.queueTo(dst).ch
		select {
		case ch <- m:
			r.emitTimer(TimerCancelled, dst, "send", deadline)
			return SendOK
		default:
		}
		r.armTimer(opBlockedSendTimer, dst, deadline)
		select {
		case ch <- m:
			sent = true
		case <-r.cluster.exitCh[dst]:
			exited = true
		case <-r.cluster.timerCh[r.id]:
			fired = true
		case <-r.cluster.cancelCh:
			panic(cancelPanic{})
		case <-r.cluster.aborts[r.id]:
			panic(abortPanic{err: r.cluster.abortErr[r.id]})
		}
		// Priority re-check, mirroring RecvTimeout: enqueue if space
		// opened, then peer exit, then expiry.
		if !sent {
			select {
			case ch <- m:
				sent = true
			default:
			}
		}
		if !sent && !exited {
			select {
			case <-r.cluster.exitCh[dst]:
				exited = true
			default:
			}
		}
		r.disarmTimer()
	}
	switch {
	case sent:
		r.emitTimer(TimerCancelled, dst, "send", deadline)
		return SendOK
	case exited:
		r.emitTimer(TimerCancelled, dst, "send", deadline)
		return SendPeerExited
	default:
		_ = fired
		r.emitTimer(TimerFired, dst, "send", deadline)
		r.timeoutWait(dst, deadline)
		return SendTimedOut
	}
}
