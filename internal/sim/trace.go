package sim

import (
	"fmt"
	"math"
	"sort"
)

// SegmentKind classifies a traced interval of a rank's virtual timeline.
type SegmentKind int

// Segment kinds.
const (
	// SegCompute is time spent in Compute (γt·flops).
	SegCompute SegmentKind = iota
	// SegSend is the αt+k·βt the sender pays.
	SegSend
	// SegWait is idle time blocked in Recv for a message to arrive.
	SegWait
	// SegRecv is receive-side transfer cost (only under ChargeReceiver).
	SegRecv
)

// String names the kind.
func (k SegmentKind) String() string {
	switch k {
	case SegCompute:
		return "compute"
	case SegSend:
		return "send"
	case SegWait:
		return "wait"
	case SegRecv:
		return "recv"
	}
	return fmt.Sprintf("SegmentKind(%d)", int(k))
}

// Segment is one traced interval on a rank's timeline.
type Segment struct {
	Kind       SegmentKind
	Start, End float64
	// Peer is the other rank for send/wait/recv segments, -1 for compute
	// and for injected stalls (crash reboot waits).
	Peer int
	// Words is the message size for communication segments.
	Words int
	// Msgs is the network-message count of a send/recv segment (⌈Words/m⌉),
	// matching the S counter.
	Msgs float64
	// Flops is the work of a compute segment, so energy attribution does
	// not have to divide the duration by γt.
	Flops float64
}

// Duration returns End − Start.
func (s Segment) Duration() float64 { return s.End - s.Start }

// PhaseMark is a named instant on a rank's timeline, placed by Rank.Phase.
type PhaseMark struct {
	Name string
	Time float64
}

// Trace is the per-rank event record of a traced run.
type Trace struct {
	// Segments[rank] lists that rank's intervals in time order.
	Segments [][]Segment
	// Phases[rank] lists that rank's phase marks in time order; nil when
	// the program declared none (consumers must tolerate a nil slice).
	Phases [][]PhaseMark
}

// tracer is the Observer subscriber attached when Cost.Trace is set. Each
// callback appends to the rank's own slice from the rank's own goroutine,
// so no locking is needed.
type tracer struct {
	segments [][]Segment
	phases   [][]PhaseMark
}

func (t *tracer) add(rank int, seg Segment) {
	if seg.End <= seg.Start {
		return
	}
	t.segments[rank] = append(t.segments[rank], seg)
}

func (t *tracer) OnCompute(rank int, seg Segment) { t.add(rank, seg) }
func (t *tracer) OnSend(rank int, seg Segment)    { t.add(rank, seg) }
func (t *tracer) OnRecv(rank int, seg Segment)    { t.add(rank, seg) }
func (t *tracer) OnPhase(rank int, name string, at float64) {
	t.phases[rank] = append(t.phases[rank], PhaseMark{Name: name, Time: at})
}
func (t *tracer) OnFault(FaultEvent)       {}
func (t *tracer) OnCrash(CrashEvent)       {}
func (t *tracer) OnDeadlock(DeadlockEvent) {}
func (t *tracer) OnTimer(TimerEvent)       {}

// CriticalPath walks the message-dependency graph backwards from the
// last-finishing rank: within a rank, time flows through its segments; a
// wait segment hands off to the sender whose message released it. The
// returned segments are in forward time order and tile [0, T] exactly
// (gaps can only be leading idle time at t = 0, reported as a wait with
// peer -1).
//
// The path's composition answers "what would speed this run up": compute
// segments respond to γt, send segments to αt/βt, and an empty wait share
// means the run is a single dependency chain with no slack.
func (t *Trace) CriticalPath() []Segment {
	// Find the rank finishing last.
	last, lastEnd := -1, -1.0
	for rank, segs := range t.Segments {
		if len(segs) > 0 && segs[len(segs)-1].End > lastEnd {
			last, lastEnd = rank, segs[len(segs)-1].End
		}
	}
	if last < 0 {
		return nil
	}
	var path []Segment
	rank := last
	now := lastEnd
	for now > 0 {
		segs := t.Segments[rank]
		// Find the segment on this rank ending at `now` (binary search on
		// End; segments are in time order).
		i := sort.Search(len(segs), func(i int) bool { return segs[i].End >= now-1e-15 })
		if i >= len(segs) || segs[i].End < now-1e-9 {
			// No activity ends here: leading idle time on this rank.
			path = append(path, Segment{Kind: SegWait, Start: 0, End: now, Peer: -1})
			break
		}
		seg := segs[i]
		if seg.Kind == SegWait && seg.Peer >= 0 {
			// The wait ended when the sender's message arrived: jump to the
			// sender at the same instant (the send segment ends there).
			rank = seg.Peer
			continue
		}
		// Peer-less waits (crash reboot stalls) have no releasing sender:
		// the time passes on this rank, so they stay on the path.
		path = append(path, seg)
		now = seg.Start
	}
	// Reverse into forward time order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// PathBreakdown sums a segment list's duration by kind.
func PathBreakdown(path []Segment) map[SegmentKind]float64 {
	out := map[SegmentKind]float64{}
	for _, s := range path {
		out[s.Kind] += s.Duration()
	}
	return out
}

// Utilization returns each rank's busy fraction: (T − wait − leading idle)
// divided by the run's total time.
func (t *Trace) Utilization(totalTime float64) []float64 {
	out := make([]float64, len(t.Segments))
	if totalTime <= 0 {
		return out
	}
	for rank, segs := range t.Segments {
		busy := 0.0
		for _, s := range segs {
			if s.Kind != SegWait {
				busy += s.Duration()
			}
		}
		out[rank] = math.Min(1, busy/totalTime)
	}
	return out
}

// RenderGantt draws the traced timelines as an ASCII Gantt chart: one row
// per rank, width columns across [0, totalTime]. Cell glyphs: '#' compute,
// '>' send, '~' receive cost, '.' waiting, ' ' idle/finished. When several
// segments share a cell, the busiest kind wins.
func (t *Trace) RenderGantt(totalTime float64, width int) string {
	if width < 10 {
		width = 10
	}
	if totalTime <= 0 {
		return "(empty trace)\n"
	}
	glyph := map[SegmentKind]byte{SegCompute: '#', SegSend: '>', SegRecv: '~', SegWait: '.'}
	// Priority when mixed within one cell: compute > send > recv > wait.
	prio := map[SegmentKind]int{SegCompute: 3, SegSend: 2, SegRecv: 1, SegWait: 0}
	var b []byte
	header := fmt.Sprintf("time 0 .. %.3g s, %d ranks (# compute, > send, ~ recv, . wait)\n", totalTime, len(t.Segments))
	b = append(b, header...)
	for rank, segs := range t.Segments {
		row := make([]byte, width)
		weight := make([]float64, width)
		kinds := make([]int, width)
		for i := range row {
			row[i] = ' '
			kinds[i] = -1
		}
		for _, s := range segs {
			c0 := int(s.Start / totalTime * float64(width))
			c1 := int(s.End / totalTime * float64(width))
			if c1 >= width {
				c1 = width - 1
			}
			for c := c0; c <= c1; c++ {
				lo := math.Max(s.Start, float64(c)/float64(width)*totalTime)
				hi := math.Min(s.End, float64(c+1)/float64(width)*totalTime)
				overlap := hi - lo
				if overlap <= 0 {
					continue
				}
				// Prefer the segment covering more of the cell; break ties
				// by kind priority.
				if overlap > weight[c] || (overlap == weight[c] && prio[s.Kind] > kinds[c]) {
					weight[c] = overlap
					kinds[c] = prio[s.Kind]
					row[c] = glyph[s.Kind]
				}
			}
		}
		b = append(b, fmt.Sprintf("r%02d |", rank)...)
		b = append(b, row...)
		b = append(b, '\n')
	}
	return string(b)
}
