package sim

import (
	"math"
	"strings"
	"testing"
)

func TestTraceRecordsSegments(t *testing.T) {
	cost := Cost{GammaT: 1, AlphaT: 10, BetaT: 1, Trace: true}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(5)
			r.Send(1, []float64{1, 2}) // 10 + 2 = 12
		} else {
			r.Recv(0) // waits until 17
			r.Compute(3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	segs0 := res.Trace.Segments[0]
	if len(segs0) != 2 || segs0[0].Kind != SegCompute || segs0[1].Kind != SegSend {
		t.Fatalf("rank 0 segments: %+v", segs0)
	}
	if segs0[1].Start != 5 || segs0[1].End != 17 || segs0[1].Peer != 1 || segs0[1].Words != 2 {
		t.Errorf("send segment: %+v", segs0[1])
	}
	segs1 := res.Trace.Segments[1]
	if len(segs1) != 2 || segs1[0].Kind != SegWait || segs1[1].Kind != SegCompute {
		t.Fatalf("rank 1 segments: %+v", segs1)
	}
	if segs1[0].Start != 0 || segs1[0].End != 17 || segs1[0].Peer != 0 {
		t.Errorf("wait segment: %+v", segs1[0])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	res, err := Run(1, Cost{GammaT: 1}, func(r *Rank) error {
		r.Compute(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace should be nil when not requested")
	}
}

func TestCriticalPathChain(t *testing.T) {
	// Rank 0 computes 100, sends to 1; rank 1 computes 50 (overlapped),
	// receives, computes 20. Critical path: compute(100)@0 → send@0 →
	// compute(20)@1; rank 1's first 50 is off-path.
	cost := Cost{GammaT: 1, AlphaT: 5, Trace: true}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(100)
			r.Send(1, []float64{1})
		} else {
			r.Compute(50)
			r.Recv(0)
			r.Compute(20)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	path := res.Trace.CriticalPath()
	if len(path) != 3 {
		t.Fatalf("path length %d: %+v", len(path), path)
	}
	if path[0].Kind != SegCompute || path[0].Duration() != 100 {
		t.Errorf("path[0]: %+v", path[0])
	}
	if path[1].Kind != SegSend || path[1].Duration() != 5 {
		t.Errorf("path[1]: %+v", path[1])
	}
	if path[2].Kind != SegCompute || path[2].Duration() != 20 {
		t.Errorf("path[2]: %+v", path[2])
	}
	// The path tiles [0, T].
	bd := PathBreakdown(path)
	total := bd[SegCompute] + bd[SegSend] + bd[SegWait] + bd[SegRecv]
	if math.Abs(total-res.Time()) > 1e-12 {
		t.Errorf("path total %g vs runtime %g", total, res.Time())
	}
}

func TestCriticalPathTilesTime(t *testing.T) {
	// A messier program: the path must still tile [0, T] exactly.
	cost := Cost{GammaT: 1e-3, AlphaT: 0.5, BetaT: 0.01, Trace: true}
	res, err := Run(6, cost, func(r *Rank) error {
		w := r.World()
		r.Compute(float64(100 * (r.ID() + 1)))
		data := make([]float64, 8)
		for s := 0; s < 3; s++ {
			data = w.Shift(data, 1)
			r.Compute(50)
		}
		w.AllReduce(data, OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	path := res.Trace.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	bd := PathBreakdown(path)
	total := 0.0
	for _, v := range bd {
		total += v
	}
	if math.Abs(total-res.Time()) > 1e-9*res.Time() {
		t.Errorf("path covers %g of %g", total, res.Time())
	}
	// Segments are contiguous and ordered.
	for i := 1; i < len(path); i++ {
		if math.Abs(path[i].Start-path[i-1].End) > 1e-9 {
			t.Fatalf("path gap between %+v and %+v", path[i-1], path[i])
		}
	}
	// No wait segments except possibly the leading one: following the
	// sender at each wait removes idle time from the path.
	for i, s := range path {
		if s.Kind == SegWait && i != 0 {
			t.Errorf("interior wait on critical path: %+v", s)
		}
	}
}

func TestUtilization(t *testing.T) {
	cost := Cost{GammaT: 1, AlphaT: 1, Trace: true}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(99)
			r.Send(1, nil) // +1 => T=100
		} else {
			r.Recv(0) // waits 100, does nothing else
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Trace.Utilization(res.Time())
	if u[0] != 1 {
		t.Errorf("rank 0 utilization %g, want 1", u[0])
	}
	if u[1] != 0 {
		t.Errorf("rank 1 utilization %g, want 0", u[1])
	}
	if z := res.Trace.Utilization(0); z[0] != 0 {
		t.Error("zero total time should give zero utilization")
	}
}

func TestSegmentKindString(t *testing.T) {
	names := map[SegmentKind]string{
		SegCompute: "compute", SegSend: "send", SegWait: "wait", SegRecv: "recv",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: got %q", int(k), k.String())
		}
	}
	if SegmentKind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestCriticalPathEmptyTrace(t *testing.T) {
	tr := &Trace{Segments: make([][]Segment, 3)}
	if got := tr.CriticalPath(); got != nil {
		t.Errorf("empty trace path: %+v", got)
	}
}

func TestRenderGantt(t *testing.T) {
	cost := Cost{GammaT: 1, AlphaT: 10, Trace: true}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(80)
			r.Send(1, []float64{1})
		} else {
			r.Recv(0)
			r.Compute(10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Trace.RenderGantt(res.Time(), 40)
	if !strings.Contains(out, "r00 |") || !strings.Contains(out, "r01 |") {
		t.Fatalf("missing rank rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d", len(lines))
	}
	r0, r1 := lines[1], lines[2]
	if !strings.Contains(r0, "#") || !strings.Contains(r0, ">") {
		t.Errorf("rank 0 should show compute then send:\n%s", r0)
	}
	if !strings.Contains(r1, ".") || !strings.Contains(r1, "#") {
		t.Errorf("rank 1 should show wait then compute:\n%s", r1)
	}
	// The wait dots come before the compute on rank 1.
	if strings.Index(r1, ".") > strings.Index(r1, "#") {
		t.Error("rank 1 ordering wrong")
	}
	if got := res.Trace.RenderGantt(0, 40); !strings.Contains(got, "empty") {
		t.Error("zero-length trace should say empty")
	}
}
