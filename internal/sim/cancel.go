package sim

import (
	"context"
	"fmt"
)

// Real-time cancellation.
//
// A simulated run is CPU-bound real work: p goroutines executing the SPMD
// program. When the caller abandons the run — an HTTP client hangs up, a
// deadline expires, a sweep is interrupted — the goroutines must actually
// stop, not keep burning cycles into a result nobody will read. Cost.Context
// threads a context.Context into the rank runtime for exactly that:
//
//   - every instrumented operation (Compute, Send, Recv, SendRecv,
//     RecvTimeout, SendTimeout) checks a cancellation flag on entry, so a
//     rank in a compute loop aborts at its next op;
//   - every blocking select (a full pair buffer, an empty receive queue, a
//     timed operation) also waits on the cluster's cancel channel, so a
//     blocked rank is released immediately rather than at its next op.
//
// Cancellation is a real-time abort path like the watchdog's: it unwinds
// each rank with a panic recovered by Run, never rewrites virtual clocks,
// and leaves the partial per-rank Stats in the Result. Run collapses the
// per-rank aborts into one error wrapping context.Cause(ctx), so
// errors.Is(err, context.Canceled) / context.DeadlineExceeded tells the
// caller why the run ended. A run without a context pays one nil check per
// op and a never-ready nil channel arm per blocking select.

// cancelPanic unwinds a rank whose run context was cancelled; Run recovers
// it and records a *CancelledError for the rank.
type cancelPanic struct{}

// CancelledError reports that one rank was aborted because Cost.Context was
// cancelled. Run collapses these into a single run-level error, so callers
// normally see that error (which wraps the same Cause) rather than this
// type; it is exported for completeness and for tests.
type CancelledError struct {
	// Rank is the aborted rank's id.
	Rank int
	// Cause is context.Cause of the run context at cancellation time.
	Cause error
}

// Error implements error.
func (e *CancelledError) Error() string {
	return fmt.Sprintf("sim: rank %d aborted by run cancellation: %v", e.Rank, e.Cause)
}

// Unwrap exposes the context cause to errors.Is/errors.As.
func (e *CancelledError) Unwrap() error { return e.Cause }

// RunContext is Run with ctx bounding the run in real time; see
// Cost.Context for the semantics. It is a convenience for callers that do
// not otherwise customize the cost.
func RunContext(ctx context.Context, p int, cost Cost, fn func(r *Rank) error) (*Result, error) {
	cost.Context = ctx
	return Run(p, cost, fn)
}

// cancelCheck aborts the rank if the run context has been cancelled. It is
// called (via crashCheck) on entry to every instrumented operation: one
// atomic load on the hot path, nothing when the run has no context.
func (r *Rank) cancelCheck() {
	if r.cluster.cancelCh != nil && r.cluster.cancelled.Load() {
		panic(cancelPanic{})
	}
}

// watchContext propagates ctx's cancellation to the cluster: it writes the
// cause, sets the flag (release-ordered before the channel close) and closes
// cancelCh, waking every blocked rank. The watcher exits when the run ends.
func (c *Cluster) watchContext(ctx context.Context, done <-chan struct{}) {
	select {
	case <-ctx.Done():
		c.cancelCause = context.Cause(ctx)
		c.cancelled.Store(true)
		close(c.cancelCh)
	case <-done:
	}
}
