package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// The runtime blocks in real time in exactly two places: a Recv waiting for
// a message and a Send whose pair buffer is full. Both instrument the wait
// with an atomic per-rank state word so a supervisor goroutine (the
// watchdog) can observe the whole cluster without locks:
//
//	bits 63..32  seq     — bumped on every transition, so "unchanged word"
//	                       means "still in the very same wait"
//	bits 31..29  op      — running / blocked-recv / blocked-send / exited /
//	                       blocked-recv-timer / blocked-send-timer
//	bits 28..0   peer    — the rank waited on (blocked states only)
//
// When every still-live rank has sat in an unchanged blocked state for the
// watchdog timeout and no queued message is deliverable, the cluster is
// quiescent: no message can ever arrive (the simulation has no external
// inputs). What happens next depends on the virtual timers of timer.go.
// If any blocked rank holds an armed timer, the run is retrying, not dead:
// the watchdog fires the earliest deadline — exactly one per quiescence
// round, so the resumption order stays deterministic — and waits for fresh
// quiescence. Only with zero armed timers is the run deadlocked, and each
// blocked rank is aborted with a DeadlockError naming who waits on whom.
// A rank blocked in a plain send to a peer that already exited can never
// be released either — even while the rest of the cluster makes progress —
// so that case is detected per rank (timed sends handle peer exit
// themselves).

// Rank states packed into the atomic word.
const (
	opRunning uint64 = iota
	opBlockedRecv
	opBlockedSend
	opExited
	opBlockedRecvTimer
	opBlockedSendTimer
)

const peerMask = 1<<29 - 1

func packState(seq uint32, op uint64, peer int) uint64 {
	return uint64(seq)<<32 | op<<29 | uint64(peer)&peerMask
}

func unpackState(w uint64) (op uint64, peer int) {
	return w >> 29 & 7, int(w & peerMask)
}

// blockedOp reports whether op is any of the four blocked states.
func blockedOp(op uint64) bool {
	switch op {
	case opBlockedRecv, opBlockedSend, opBlockedRecvTimer, opBlockedSendTimer:
		return true
	}
	return false
}

// setState publishes a rank's blocking state to the watchdog. Blocking
// (and exit) transitions also publish the rank's most recent timeline
// segment, so a deadlock snapshot can say what each rank last did; the
// store stays off the non-blocking fast paths of Send and Recv.
func (r *Rank) setState(op uint64, peer int) {
	if op != opRunning && r.hasSeg {
		seg := r.lastSeg
		r.cluster.lastSegs[r.id].Store(&seg)
	}
	r.stateSeq++
	r.cluster.states[r.id].Store(packState(r.stateSeq, op, peer))
}

// DefaultWatchdogTimeout is the real-time window of cluster-wide inactivity
// after which Run declares deadlock (override with Cost.WatchdogTimeout).
const DefaultWatchdogTimeout = time.Second

// DeadlockError is the diagnostic a rank aborted by the watchdog reports.
type DeadlockError struct {
	// Rank is the aborted rank; Op is "recv" or "send"; Peer is the rank
	// it was blocked on.
	Rank int
	Op   string
	Peer int
	// PeerExited marks the send-to-exited-rank case: the peer can never
	// drain the pair's channel again.
	PeerExited bool
	// Graph is the cluster-wide wait-for description at detection time
	// (empty for the per-rank send-to-exited case).
	Graph string
	// Snapshot is the cluster-wide state at detection time — what every
	// rank was doing and which wired pairs still held undelivered
	// messages — so the deadlock is debuggable without rerunning under
	// trace. All ranks aborted by one detection share one snapshot.
	Snapshot *ClusterSnapshot
}

// ClusterSnapshot captures the whole cluster at a watchdog detection.
type ClusterSnapshot struct {
	// Ranks has one entry per rank, indexed by rank id.
	Ranks []RankSnapshot
	// Queued lists the wired pairs holding sent-but-undelivered messages,
	// sorted by (src, dst). A blocked receiver whose pair is absent here
	// has genuinely never been sent the message it waits for.
	Queued []QueuedPair
}

// RankSnapshot is one rank's state inside a ClusterSnapshot.
type RankSnapshot struct {
	Rank int
	// State is "running", "blocked-recv", "blocked-send" or "exited".
	State string
	// Peer is the rank waited on; -1 unless blocked.
	Peer int
	// LastSeg is the rank's most recent timeline segment as of its last
	// blocking transition (nil when the rank never blocked after emitting
	// a segment). It names the last thing the rank verifiably did.
	LastSeg *Segment
}

// QueuedPair counts undelivered messages buffered on one wired pair.
type QueuedPair struct {
	Src, Dst int
	Count    int
}

// String renders the snapshot compactly, one line per non-idle fact.
func (s *ClusterSnapshot) String() string {
	var b strings.Builder
	b.WriteString("cluster snapshot:")
	for _, r := range s.Ranks {
		if r.State == "running" {
			continue
		}
		fmt.Fprintf(&b, "\n  rank %d: %s", r.Rank, r.State)
		if r.Peer >= 0 {
			fmt.Fprintf(&b, " peer=%d", r.Peer)
		}
		if r.LastSeg != nil {
			fmt.Fprintf(&b, " last=%s[%g,%g]", r.LastSeg.Kind, r.LastSeg.Start, r.LastSeg.End)
		}
	}
	for _, q := range s.Queued {
		fmt.Fprintf(&b, "\n  queued %d->%d: %d msg(s)", q.Src, q.Dst, q.Count)
	}
	return b.String()
}

// snapshot builds a ClusterSnapshot from the watchdog's sampled state
// words. Runs on the watchdog goroutine; channel lengths and the atomic
// last-segment pointers are safe to read concurrently.
func (c *Cluster) snapshot(states []uint64) *ClusterSnapshot {
	snap := &ClusterSnapshot{Ranks: make([]RankSnapshot, c.p)}
	for id := 0; id < c.p; id++ {
		op, peer := unpackState(states[id])
		rs := RankSnapshot{Rank: id, Peer: -1}
		switch op {
		case opBlockedRecv:
			rs.State, rs.Peer = "blocked-recv", peer
		case opBlockedSend:
			rs.State, rs.Peer = "blocked-send", peer
		case opBlockedRecvTimer:
			rs.State, rs.Peer = "blocked-recv-timer", peer
		case opBlockedSendTimer:
			rs.State, rs.Peer = "blocked-send-timer", peer
		case opExited:
			rs.State = "exited"
		default:
			rs.State = "running"
		}
		rs.LastSeg = c.lastSegs[id].Load()
		snap.Ranks[id] = rs
	}
	snap.Queued = c.queuedPairs()
	return snap
}

// queuedPairs counts undelivered messages per wired pair, sorted for
// deterministic reports.
func (c *Cluster) queuedPairs() []QueuedPair {
	var out []QueuedPair
	if c.dense != nil {
		for src := 0; src < c.p; src++ {
			for dst := 0; dst < c.p; dst++ {
				if n := c.dense[src][dst].count(); n > 0 {
					out = append(out, QueuedPair{Src: src, Dst: dst, Count: n})
				}
			}
		}
		return out
	}
	for dst := range c.mail {
		mb := &c.mail[dst]
		mb.mu.Lock()
		for src, q := range mb.queues {
			if n := q.count(); n > 0 {
				out = append(out, QueuedPair{Src: src, Dst: dst, Count: n})
			}
		}
		mb.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

func (e *DeadlockError) Error() string {
	if e.PeerExited {
		return fmt.Sprintf("sim: watchdog: rank %d blocked in send to exited rank %d, which can no longer receive", e.Rank, e.Peer)
	}
	msg := fmt.Sprintf("sim: watchdog: deadlock: rank %d blocked in %s waiting on rank %d", e.Rank, e.Op, e.Peer)
	if e.Graph != "" {
		msg += " (" + e.Graph + ")"
	}
	return msg
}

// abortPanic carries a watchdog abort out of the blocked operation; Run
// recovers it and reports the DeadlockError.
type abortPanic struct{ err *DeadlockError }

// abort releases rank id from its blocked operation with the given
// diagnostic. The error is published before the channel close, which
// happens-before the aborted rank's select observing it.
func (c *Cluster) abort(id int, err *DeadlockError) {
	c.abortErr[id] = err
	close(c.aborts[id])
}

func opName(op uint64) string {
	if op == opBlockedSend || op == opBlockedSendTimer {
		return "send"
	}
	return "recv"
}

// watch is the watchdog loop; Run starts it in a goroutine and closes stop
// when all ranks have finished.
func (c *Cluster) watch(stop <-chan struct{}, timeout time.Duration) {
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	prev := make([]uint64, c.p)
	since := make([]time.Time, c.p)
	fired := make([]bool, c.p)
	now := time.Now()
	for i := range since {
		since[i] = now
	}
	cur := make([]uint64, c.p)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		now = time.Now()
		for id := 0; id < c.p; id++ {
			cur[id] = c.states[id].Load()
			if cur[id] != prev[id] {
				prev[id] = cur[id]
				since[id] = now
			}
		}
		// Case 1: a rank stuck in a plain send to a peer that already
		// exited. The peer will never drain the pair's buffer, so this
		// send can never complete no matter what the rest of the cluster
		// does. (Timed sends observe the exit themselves and resolve with
		// SendPeerExited.)
		for id := 0; id < c.p; id++ {
			op, peer := unpackState(cur[id])
			if op != opBlockedSend || fired[id] {
				continue
			}
			if peerOp, _ := unpackState(cur[peer]); peerOp != opExited {
				continue
			}
			if c.pairOf(id, peer).count() < c.bufCap {
				continue // space opened; the send completes by itself
			}
			if now.Sub(since[id]) >= timeout {
				err := &DeadlockError{Rank: id, Op: "send", Peer: peer, PeerExited: true, Snapshot: c.snapshot(cur)}
				c.emitDeadlock(DeadlockEvent{Err: err})
				c.abort(id, err)
				fired[id] = true
			}
		}
		// Case 2: global quiescence — every live rank blocked, none of
		// them rescheduled for a full timeout, no queued message
		// deliverable. The simulation has no external inputs, so nothing
		// except a virtual timer can ever release them.
		anyLive, allStuck := false, true
		for id := 0; id < c.p; id++ {
			op, _ := unpackState(cur[id])
			if op == opExited {
				continue
			}
			anyLive = true
			if !blockedOp(op) || fired[id] || now.Sub(since[id]) < timeout {
				allStuck = false
				break
			}
		}
		if !anyLive || !allStuck || c.deliverable(cur) {
			continue
		}
		// Quiescent. Fire the single earliest armed timer, if any: the
		// blocked operation with the smallest virtual deadline (ties to
		// the lowest rank id) times out, and the watchdog demands a fresh
		// full window of quiescence before touching the next one — see
		// timer.go for why one at a time is what keeps runs deterministic.
		if id, ok, transient := c.earliestTimer(cur); transient {
			continue // an arm/disarm transition is in flight: activity
		} else if ok {
			since[id] = now
			select {
			case c.timerCh[id] <- struct{}{}:
			default:
			}
			continue
		}
		graph := waitGraph(cur)
		snap := c.snapshot(cur)
		for id := 0; id < c.p; id++ {
			op, peer := unpackState(cur[id])
			if blockedOp(op) {
				err := &DeadlockError{Rank: id, Op: opName(op), Peer: peer, Graph: graph, Snapshot: snap}
				c.emitDeadlock(DeadlockEvent{Err: err})
				c.abort(id, err)
				fired[id] = true
			}
		}
	}
}

// deliverable reports whether any blocked rank could still be released by
// the queues alone: a receiver whose pair holds an undelivered message, or
// a full-buffer sender whose pair has room again. It is a conservative
// guard against declaring quiescence in the real-time gap between an
// enqueue and the blocked peer being rescheduled — without it, a timer
// could in principle fire even though a message with a smaller stamp was
// already in flight. Channel lengths are sampled racily, which only ever
// delays a detection by a tick.
func (c *Cluster) deliverable(states []uint64) bool {
	for id := range states {
		op, peer := unpackState(states[id])
		switch op {
		case opBlockedRecv, opBlockedRecvTimer:
			if c.pairOf(peer, id).count() > 0 {
				return true
			}
		case opBlockedSend, opBlockedSendTimer:
			if c.pairOf(id, peer).count() < c.bufCap {
				return true
			}
		}
	}
	return false
}

// earliestTimer scans the sampled states for armed virtual timers and
// returns the rank with the smallest deadline (ties to the lowest id).
// transient is set when a rank's word says "timer op" but its published
// deadline is zero — the rank is mid-transition, so the cluster was not
// really quiescent and nothing must fire this round.
func (c *Cluster) earliestTimer(states []uint64) (id int, ok, transient bool) {
	best, bestD := -1, 0.0
	for r := range states {
		op, _ := unpackState(states[r])
		if op != opBlockedRecvTimer && op != opBlockedSendTimer {
			continue
		}
		bits := c.timerDeadline[r].Load()
		if bits == 0 {
			return -1, false, true
		}
		if d := math.Float64frombits(bits); best < 0 || d < bestD {
			best, bestD = r, d
		}
	}
	return best, best >= 0, false
}

// waitGraph renders the wait-for relation of the blocked ranks, e.g.
// "rank 3 waiting on rank 5, rank 5 waiting on rank 3".
func waitGraph(states []uint64) string {
	var b strings.Builder
	for id, w := range states {
		op, peer := unpackState(w)
		if !blockedOp(op) {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "rank %d waiting on rank %d", id, peer)
	}
	return "wait-for graph: " + b.String()
}
