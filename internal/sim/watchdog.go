package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// The runtime blocks in real time in exactly two places: a Recv waiting for
// a message and a Send whose pair buffer is full. Both instrument the wait
// with an atomic per-rank state word so a supervisor goroutine (the
// watchdog) can observe the whole cluster without locks:
//
//	bits 63..32  seq     — bumped on every transition, so "unchanged word"
//	                       means "still in the very same wait"
//	bits 31..30  op      — running / blocked-recv / blocked-send / exited
//	bits 29..0   peer    — the rank waited on (blocked states only)
//
// When every still-live rank has sat in an unchanged blocked state for the
// watchdog timeout, no message can ever arrive (the simulation has no
// external inputs), so the run is deadlocked: the watchdog aborts each
// blocked rank with a DeadlockError naming who waits on whom. A rank
// blocked sending to a peer that already exited can never be released
// either — even while the rest of the cluster makes progress — so that
// case is detected per rank.

// Rank states packed into the atomic word.
const (
	opRunning uint64 = iota
	opBlockedRecv
	opBlockedSend
	opExited
)

const peerMask = 1<<30 - 1

func packState(seq uint32, op uint64, peer int) uint64 {
	return uint64(seq)<<32 | op<<30 | uint64(peer)&peerMask
}

func unpackState(w uint64) (op uint64, peer int) {
	return w >> 30 & 3, int(w & peerMask)
}

// setState publishes a rank's blocking state to the watchdog. Blocking
// (and exit) transitions also publish the rank's most recent timeline
// segment, so a deadlock snapshot can say what each rank last did; the
// store stays off the non-blocking fast paths of Send and Recv.
func (r *Rank) setState(op uint64, peer int) {
	if op != opRunning && r.hasSeg {
		seg := r.lastSeg
		r.cluster.lastSegs[r.id].Store(&seg)
	}
	r.stateSeq++
	r.cluster.states[r.id].Store(packState(r.stateSeq, op, peer))
}

// DefaultWatchdogTimeout is the real-time window of cluster-wide inactivity
// after which Run declares deadlock (override with Cost.WatchdogTimeout).
const DefaultWatchdogTimeout = time.Second

// DeadlockError is the diagnostic a rank aborted by the watchdog reports.
type DeadlockError struct {
	// Rank is the aborted rank; Op is "recv" or "send"; Peer is the rank
	// it was blocked on.
	Rank int
	Op   string
	Peer int
	// PeerExited marks the send-to-exited-rank case: the peer can never
	// drain the pair's channel again.
	PeerExited bool
	// Graph is the cluster-wide wait-for description at detection time
	// (empty for the per-rank send-to-exited case).
	Graph string
	// Snapshot is the cluster-wide state at detection time — what every
	// rank was doing and which wired pairs still held undelivered
	// messages — so the deadlock is debuggable without rerunning under
	// trace. All ranks aborted by one detection share one snapshot.
	Snapshot *ClusterSnapshot
}

// ClusterSnapshot captures the whole cluster at a watchdog detection.
type ClusterSnapshot struct {
	// Ranks has one entry per rank, indexed by rank id.
	Ranks []RankSnapshot
	// Queued lists the wired pairs holding sent-but-undelivered messages,
	// sorted by (src, dst). A blocked receiver whose pair is absent here
	// has genuinely never been sent the message it waits for.
	Queued []QueuedPair
}

// RankSnapshot is one rank's state inside a ClusterSnapshot.
type RankSnapshot struct {
	Rank int
	// State is "running", "blocked-recv", "blocked-send" or "exited".
	State string
	// Peer is the rank waited on; -1 unless blocked.
	Peer int
	// LastSeg is the rank's most recent timeline segment as of its last
	// blocking transition (nil when the rank never blocked after emitting
	// a segment). It names the last thing the rank verifiably did.
	LastSeg *Segment
}

// QueuedPair counts undelivered messages buffered on one wired pair.
type QueuedPair struct {
	Src, Dst int
	Count    int
}

// String renders the snapshot compactly, one line per non-idle fact.
func (s *ClusterSnapshot) String() string {
	var b strings.Builder
	b.WriteString("cluster snapshot:")
	for _, r := range s.Ranks {
		if r.State == "running" {
			continue
		}
		fmt.Fprintf(&b, "\n  rank %d: %s", r.Rank, r.State)
		if r.Peer >= 0 {
			fmt.Fprintf(&b, " peer=%d", r.Peer)
		}
		if r.LastSeg != nil {
			fmt.Fprintf(&b, " last=%s[%g,%g]", r.LastSeg.Kind, r.LastSeg.Start, r.LastSeg.End)
		}
	}
	for _, q := range s.Queued {
		fmt.Fprintf(&b, "\n  queued %d->%d: %d msg(s)", q.Src, q.Dst, q.Count)
	}
	return b.String()
}

// snapshot builds a ClusterSnapshot from the watchdog's sampled state
// words. Runs on the watchdog goroutine; channel lengths and the atomic
// last-segment pointers are safe to read concurrently.
func (c *Cluster) snapshot(states []uint64) *ClusterSnapshot {
	snap := &ClusterSnapshot{Ranks: make([]RankSnapshot, c.p)}
	for id := 0; id < c.p; id++ {
		op, peer := unpackState(states[id])
		rs := RankSnapshot{Rank: id, Peer: -1}
		switch op {
		case opBlockedRecv:
			rs.State, rs.Peer = "blocked-recv", peer
		case opBlockedSend:
			rs.State, rs.Peer = "blocked-send", peer
		case opExited:
			rs.State = "exited"
		default:
			rs.State = "running"
		}
		rs.LastSeg = c.lastSegs[id].Load()
		snap.Ranks[id] = rs
	}
	snap.Queued = c.queuedPairs()
	return snap
}

// queuedPairs counts undelivered messages per wired pair, sorted for
// deterministic reports.
func (c *Cluster) queuedPairs() []QueuedPair {
	var out []QueuedPair
	if c.dense != nil {
		for src := 0; src < c.p; src++ {
			for dst := 0; dst < c.p; dst++ {
				if n := len(c.dense[src][dst]); n > 0 {
					out = append(out, QueuedPair{Src: src, Dst: dst, Count: n})
				}
			}
		}
		return out
	}
	for dst := range c.mail {
		mb := &c.mail[dst]
		mb.mu.Lock()
		for src, ch := range mb.queues {
			if n := len(ch); n > 0 {
				out = append(out, QueuedPair{Src: src, Dst: dst, Count: n})
			}
		}
		mb.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

func (e *DeadlockError) Error() string {
	if e.PeerExited {
		return fmt.Sprintf("sim: watchdog: rank %d blocked in send to exited rank %d, which can no longer receive", e.Rank, e.Peer)
	}
	msg := fmt.Sprintf("sim: watchdog: deadlock: rank %d blocked in %s waiting on rank %d", e.Rank, e.Op, e.Peer)
	if e.Graph != "" {
		msg += " (" + e.Graph + ")"
	}
	return msg
}

// abortPanic carries a watchdog abort out of the blocked operation; Run
// recovers it and reports the DeadlockError.
type abortPanic struct{ err *DeadlockError }

// abort releases rank id from its blocked operation with the given
// diagnostic. The error is published before the channel close, which
// happens-before the aborted rank's select observing it.
func (c *Cluster) abort(id int, err *DeadlockError) {
	c.abortErr[id] = err
	close(c.aborts[id])
}

func opName(op uint64) string {
	if op == opBlockedSend {
		return "send"
	}
	return "recv"
}

// watch is the watchdog loop; Run starts it in a goroutine and closes stop
// when all ranks have finished.
func (c *Cluster) watch(stop <-chan struct{}, timeout time.Duration) {
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	prev := make([]uint64, c.p)
	since := make([]time.Time, c.p)
	fired := make([]bool, c.p)
	now := time.Now()
	for i := range since {
		since[i] = now
	}
	cur := make([]uint64, c.p)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		now = time.Now()
		for id := 0; id < c.p; id++ {
			cur[id] = c.states[id].Load()
			if cur[id] != prev[id] {
				prev[id] = cur[id]
				since[id] = now
			}
		}
		// Case 1: a rank stuck sending to a peer that already exited.
		// The peer will never drain the pair's buffer, so this send can
		// never complete no matter what the rest of the cluster does.
		for id := 0; id < c.p; id++ {
			op, peer := unpackState(cur[id])
			if op != opBlockedSend || fired[id] {
				continue
			}
			if peerOp, _ := unpackState(cur[peer]); peerOp != opExited {
				continue
			}
			if now.Sub(since[id]) >= timeout {
				err := &DeadlockError{Rank: id, Op: "send", Peer: peer, PeerExited: true, Snapshot: c.snapshot(cur)}
				c.emitDeadlock(DeadlockEvent{Err: err})
				c.abort(id, err)
				fired[id] = true
			}
		}
		// Case 2: global deadlock — every live rank blocked, none of them
		// rescheduled for a full timeout. The simulation has no external
		// inputs, so nothing can ever release them.
		anyLive, allStuck := false, true
		for id := 0; id < c.p; id++ {
			op, _ := unpackState(cur[id])
			if op == opExited {
				continue
			}
			anyLive = true
			if op == opRunning || fired[id] || now.Sub(since[id]) < timeout {
				allStuck = false
				break
			}
		}
		if !anyLive || !allStuck {
			continue
		}
		graph := waitGraph(cur)
		snap := c.snapshot(cur)
		for id := 0; id < c.p; id++ {
			op, peer := unpackState(cur[id])
			if op == opBlockedRecv || op == opBlockedSend {
				err := &DeadlockError{Rank: id, Op: opName(op), Peer: peer, Graph: graph, Snapshot: snap}
				c.emitDeadlock(DeadlockEvent{Err: err})
				c.abort(id, err)
				fired[id] = true
			}
		}
	}
}

// waitGraph renders the wait-for relation of the blocked ranks, e.g.
// "rank 3 waiting on rank 5, rank 5 waiting on rank 3".
func waitGraph(states []uint64) string {
	var b strings.Builder
	for id, w := range states {
		op, peer := unpackState(w)
		if op != opBlockedRecv && op != opBlockedSend {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "rank %d waiting on rank %d", id, peer)
	}
	return "wait-for graph: " + b.String()
}
