package sim

import (
	"math"
	"testing"
)

func TestMessagesForEdgeCases(t *testing.T) {
	cases := []struct {
		maxMsgWords int
		k           int
		want        float64
	}{
		{0, 0, 1},       // zero-word message, unlimited m: one latency
		{0, 1 << 20, 1}, /* unlimited m: always one message */
		{64, 0, 1},      // zero-word message still costs one latency
		{64, 1, 1},
		{64, 63, 1},
		{64, 64, 1},  // exactly divisible: no extra message
		{64, 65, 2},  // one word over: second message
		{64, 128, 2}, // exactly two messages
		{64, 129, 3},
		{1, 5, 5}, // degenerate m=1: one message per word
	}
	for _, tc := range cases {
		c := &Cluster{cost: Cost{MaxMsgWords: tc.maxMsgWords}}
		if got := c.messagesFor(tc.k); got != tc.want {
			t.Errorf("messagesFor(k=%d, m=%d) = %g, want %g", tc.k, tc.maxMsgWords, got, tc.want)
		}
	}
}

// TestStatsDecompositionInvariant pins ComputeTime + SendTime + RecvTime +
// WaitTime == Time for every rank under the accounting variants that touch
// the decomposition: ChargeReceiver and per-link costs.
func TestStatsDecompositionInvariant(t *testing.T) {
	costs := map[string]Cost{
		"base": {GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 16},
		"chargeReceiver": {
			GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 16,
			ChargeReceiver: true,
		},
		"perLink": {
			GammaT: 1e-9, ChargeReceiver: true,
			Links: TwoLevelLinks{CoresPerNode: 2, IntraAlpha: 1e-7, IntraBeta: 1e-9, InterAlpha: 1e-5, InterBeta: 1e-8},
		},
	}
	for name, cost := range costs {
		res, err := Run(4, cost, func(r *Rank) error {
			w := r.World()
			data := make([]float64, 37) // not a multiple of MaxMsgWords
			for i := range data {
				data[i] = float64(r.ID() + i)
			}
			for step := 0; step < 3; step++ {
				r.Compute(float64(1000 * (r.ID() + 1))) // imbalanced: creates waits
				data = w.Shift(data, 1)
			}
			w.AllReduce(data, OpSum)
			w.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for id, s := range res.PerRank {
			sum := s.ComputeTime + s.SendTime + s.RecvTime + s.WaitTime
			if math.Abs(sum-s.Time) > 1e-12*math.Max(1, math.Abs(s.Time)) {
				t.Errorf("%s rank %d: decomposition %g != Time %g (%+v)", name, id, sum, s.Time, s)
			}
			if !cost.ChargeReceiver && s.RecvTime != 0 {
				t.Errorf("%s rank %d: RecvTime must be zero without ChargeReceiver, got %g", name, id, s.RecvTime)
			}
			if cost.ChargeReceiver && s.RecvTime == 0 {
				t.Errorf("%s rank %d: RecvTime must be positive under ChargeReceiver", name, id)
			}
		}
	}
}
