package sim

import (
	"math"
	"testing"
)

func TestMessagesForEdgeCases(t *testing.T) {
	cases := []struct {
		maxMsgWords int
		k           int
		want        float64
	}{
		{0, 0, 1},       // zero-word message, unlimited m: one latency
		{0, 1 << 20, 1}, /* unlimited m: always one message */
		{64, 0, 1},      // zero-word message still costs one latency
		{64, 1, 1},
		{64, 63, 1},
		{64, 64, 1},  // exactly divisible: no extra message
		{64, 65, 2},  // one word over: second message
		{64, 128, 2}, // exactly two messages
		{64, 129, 3},
		{1, 5, 5}, // degenerate m=1: one message per word
	}
	for _, tc := range cases {
		c := &Cluster{cost: Cost{MaxMsgWords: tc.maxMsgWords}}
		if got := c.messagesFor(tc.k); got != tc.want {
			t.Errorf("messagesFor(k=%d, m=%d) = %g, want %g", tc.k, tc.maxMsgWords, got, tc.want)
		}
	}
}

// TestMessageCountersSymmetricPerPair pins the send/recv accounting fix:
// the receiver counts the same ⌈k/m⌉ network messages per transfer as the
// sender, so for every MaxMsgWords the two ends of a pair agree exactly.
// Before the fix Recv counted one message per call, and any m > 0 with
// k > m made MsgsRecv < MsgsSent for the same traffic.
func TestMessageCountersSymmetricPerPair(t *testing.T) {
	const p = 4
	const k = 23 // odd payload: ⌈23/7⌉ = 4, ⌈23/1⌉ = 23
	wantMsgs := map[int]float64{
		0: 1 + 1,  // unlimited m: one message each for the k-word and 0-word sends
		1: 23 + 1, // m=1: one message per word
		7: 4 + 1,  // ⌈23/7⌉ + the zero-word message
	}
	for m, want := range wantMsgs {
		cost := Cost{AlphaT: 1, BetaT: 1, MaxMsgWords: m}
		res, err := Run(p, cost, func(r *Rank) error {
			next := (r.ID() + 1) % p
			prev := (r.ID() - 1 + p) % p
			r.Send(next, make([]float64, k))
			r.Recv(prev)
			r.Send(next, nil)
			r.Recv(prev)
			return nil
		})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for id, s := range res.PerRank {
			if s.MsgsSent != s.MsgsRecv || s.WordsSent != s.WordsRecv {
				t.Errorf("m=%d rank %d: sent (W=%g, S=%g) != recv (W=%g, S=%g)",
					m, id, s.WordsSent, s.MsgsSent, s.WordsRecv, s.MsgsRecv)
			}
			if s.MsgsSent != want {
				t.Errorf("m=%d rank %d: MsgsSent = %g, want %g", m, id, s.MsgsSent, want)
			}
		}
	}

	// Directed pair: the sender's count must land on the receiver's side.
	res, err := Run(2, Cost{MaxMsgWords: 7}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, make([]float64, k))
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s, rcv := res.PerRank[0], res.PerRank[1]; s.MsgsSent != rcv.MsgsRecv || rcv.MsgsRecv != 4 {
		t.Errorf("directed pair: MsgsSent %g vs MsgsRecv %g (want 4)", s.MsgsSent, rcv.MsgsRecv)
	}
}

// TestChargeReceiverDegradedPricesBothEndsEqually pins the fault-pricing
// fix: under ChargeReceiver, the receive is priced with the same
// degraded-window factors the send paid — even when the receiver's own
// clock has long left the window — so the two ends of one transfer never
// disagree. Before the fix the receiver charged undegraded α/β.
func TestChargeReceiverDegradedPricesBothEndsEqually(t *testing.T) {
	const k = 4
	plan := &FaultPlan{Degraded: []DegradedLink{{
		Src: -1, Dst: -1, From: 0, Until: 10,
		AlphaFactor: 5, BetaFactor: 7,
	}}}
	cost := Cost{GammaT: 1, AlphaT: 2, BetaT: 3, ChargeReceiver: true, Faults: plan}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, make([]float64, k)) // clock 0: inside [0, 10)
		} else {
			r.Compute(50) // the receiver's clock leaves the window first
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0*2*1 + 7.0*3*k // degraded α·1 + degraded β·k = 94
	if got := res.PerRank[0].SendTime; got != want {
		t.Errorf("degraded send: got %g want %g", got, want)
	}
	if got := res.PerRank[1].RecvTime; got != want {
		t.Errorf("degraded receive must match the send price: got %g want %g", got, want)
	}

	// Outside any window the factors are 1 and both ends still agree.
	res, err = Run(2, Cost{AlphaT: 2, BetaT: 3, ChargeReceiver: true, Faults: plan,
		GammaT: 1}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(20) // clock 20 ≥ 10: past the window
			r.Send(1, make([]float64, k))
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := 2.0*1 + 3.0*k
	if got := res.PerRank[1].RecvTime; got != clean {
		t.Errorf("clean receive: got %g want %g", got, clean)
	}
	if res.PerRank[0].SendTime != res.PerRank[1].RecvTime {
		t.Errorf("ends disagree: send %g recv %g", res.PerRank[0].SendTime, res.PerRank[1].RecvTime)
	}
}

// TestStatsDecompositionInvariant pins ComputeTime + SendTime + RecvTime +
// WaitTime == Time for every rank under the accounting variants that touch
// the decomposition: ChargeReceiver and per-link costs.
func TestStatsDecompositionInvariant(t *testing.T) {
	costs := map[string]Cost{
		"base": {GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 16},
		"chargeReceiver": {
			GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 16,
			ChargeReceiver: true,
		},
		"perLink": {
			GammaT: 1e-9, ChargeReceiver: true,
			Links: TwoLevelLinks{CoresPerNode: 2, IntraAlpha: 1e-7, IntraBeta: 1e-9, InterAlpha: 1e-5, InterBeta: 1e-8},
		},
	}
	for name, cost := range costs {
		res, err := Run(4, cost, func(r *Rank) error {
			w := r.World()
			data := make([]float64, 37) // not a multiple of MaxMsgWords
			for i := range data {
				data[i] = float64(r.ID() + i)
			}
			for step := 0; step < 3; step++ {
				r.Compute(float64(1000 * (r.ID() + 1))) // imbalanced: creates waits
				data = w.Shift(data, 1)
			}
			w.AllReduce(data, OpSum)
			w.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for id, s := range res.PerRank {
			sum := s.ComputeTime + s.SendTime + s.RecvTime + s.WaitTime
			if math.Abs(sum-s.Time) > 1e-12*math.Max(1, math.Abs(s.Time)) {
				t.Errorf("%s rank %d: decomposition %g != Time %g (%+v)", name, id, sum, s.Time, s)
			}
			if !cost.ChargeReceiver && s.RecvTime != 0 {
				t.Errorf("%s rank %d: RecvTime must be zero without ChargeReceiver, got %g", name, id, s.RecvTime)
			}
			if cost.ChargeReceiver && s.RecvTime == 0 {
				t.Errorf("%s rank %d: RecvTime must be positive under ChargeReceiver", name, id)
			}
		}
	}
}
