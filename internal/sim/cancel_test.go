package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack, failing the test if it never does: the leak detector for the
// cancellation paths.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after cancellation: %d now vs %d at start", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelStopsComputeLoop cancels a run whose ranks spin in an infinite
// compute loop — no blocking operations at all — and checks that every rank
// goroutine actually stops and the run error names the cause.
func TestCancelStopsComputeLoop(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once chan struct{} = started
	go func() {
		<-started
		cancel()
	}()
	res, err := RunContext(ctx, 4, Cost{GammaT: 1e-9}, func(r *Rank) error {
		for {
			if r.ID() == 0 && once != nil {
				close(once)
				once = nil
			}
			r.Compute(1000)
		}
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false, err = %v", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil result; partial stats expected")
	}
	if res.PerRank[0].Flops == 0 {
		t.Error("rank 0 recorded no flops before cancellation")
	}
	waitGoroutines(t, base)
}

// TestCancelReleasesBlockedRecv cancels a run where every rank is blocked in
// Recv on a message that will never come, with the watchdog DISABLED, so
// only the cancellation path can release them.
func TestCancelReleasesBlockedRecv(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, 2, Cost{WatchdogTimeout: -1}, func(r *Rank) error {
			r.Recv((r.ID() + 1) % r.P()) // mutual recv: a hard deadlock
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errors.Is(err, context.Canceled) = false, err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not release ranks blocked in Recv")
	}
	waitGoroutines(t, base)
}

// TestCancelReleasesBlockedTimedRecv covers the RecvTimeout blocking select:
// a huge virtual timeout with the watchdog disabled blocks forever unless
// cancellation wakes it.
func TestCancelReleasesBlockedTimedRecv(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, 2, Cost{WatchdogTimeout: -1}, func(r *Rank) error {
			r.RecvTimeout((r.ID()+1)%r.P(), 1e12)
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errors.Is(err, context.Canceled) = false, err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not release ranks blocked in RecvTimeout")
	}
	waitGoroutines(t, base)
}

// TestCancelReleasesBlockedSend covers the deliver() blocking select: rank 0
// floods a pair whose 1-message buffer fills while rank 1 never receives.
func TestCancelReleasesBlockedSend(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, 2, Cost{ChanCap: 1, WatchdogTimeout: -1}, func(r *Rank) error {
			if r.ID() == 0 {
				for i := 0; i < 100; i++ {
					r.Send(1, []float64{1})
				}
				return nil
			}
			r.Recv(0) // receive once, then leave rank 0 blocked on the full buffer
			for {
				r.Compute(1000)
			}
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errors.Is(err, context.Canceled) = false, err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not release rank blocked in Send")
	}
	waitGoroutines(t, base)
}

// TestCancelDeadline checks that a context deadline surfaces as
// context.DeadlineExceeded through the run error.
func TestCancelDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, 2, Cost{GammaT: 1e-9}, func(r *Rank) error {
		for {
			r.Compute(1000)
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false, err = %v", err)
	}
}

// TestCancelErrorCollapsed checks that a cancelled run reports ONE run-level
// error, not one per rank, and that CancelledError is reachable for callers
// that care which ranks died.
func TestCancelErrorCollapsed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every rank aborts at its first op
	_, err := RunContext(ctx, 8, Cost{}, func(r *Rank) error {
		r.Compute(1)
		return nil
	})
	if err == nil {
		t.Fatal("pre-cancelled run returned nil error")
	}
	if got := len(errors.Join(err).Error()); got > 200 {
		t.Errorf("cancelled run error looks per-rank, not collapsed (%d bytes): %v", got, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false, err = %v", err)
	}
}

// TestCancelRealErrorTakesPrecedence checks that a rank failing for a real
// reason is not masked when the same run is also cancelled afterwards.
func TestCancelRealErrorTakesPrecedence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sentinel := errors.New("real failure")
	failed := make(chan struct{})
	go func() {
		<-failed
		cancel()
	}()
	var fc chan struct{} = failed
	_, err := RunContext(ctx, 2, Cost{WatchdogTimeout: -1}, func(r *Rank) error {
		if r.ID() == 0 {
			if fc != nil {
				close(fc)
				fc = nil
			}
			return sentinel
		}
		for {
			r.Compute(1000)
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("real rank error masked by cancellation: %v", err)
	}
}

// TestNoContextUnaffected pins the zero-cost path: a run without a context
// has a nil cancel channel and must behave exactly as before.
func TestNoContextUnaffected(t *testing.T) {
	res, err := Run(2, Cost{}, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float64{1, 2, 3})
			return nil
		}
		got := r.Recv(0)
		if len(got) != 3 {
			t.Errorf("recv got %d words, want 3", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("plain run failed: %v", err)
	}
	if res.PerRank[1].WordsRecv != 3 {
		t.Errorf("WordsRecv = %g, want 3", res.PerRank[1].WordsRecv)
	}
}
