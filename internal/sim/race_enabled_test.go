//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in; the very
// large cluster tests skip under it (the detector caps a process at 8192
// simultaneously alive goroutines).
const raceEnabled = true
