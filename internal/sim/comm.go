package sim

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered subgroup of ranks that perform
// collectives together. Collectives must be called by every member of the
// communicator in the same order, exactly like MPI. Distinct collectives on
// the same communicator are kept apart by the per-pair FIFO ordering of the
// underlying channels.
type Comm struct {
	rank    *Rank
	members []int // global rank ids
	me      int   // index of rank in members

	// ffm memoizes the membership identity used to rendezvous conducted
	// collectives under the event engine (see comm_ff.go).
	ffm    ffMemb
	ffmSet bool
}

// World returns the communicator containing every rank of the cluster.
func (r *Rank) World() *Comm {
	members := make([]int, r.P())
	for i := range members {
		members[i] = i
	}
	return &Comm{rank: r, members: members, me: r.id}
}

// NewComm builds a communicator over the given global rank ids. The calling
// rank must appear in members exactly once; every member must construct the
// communicator with an identical members slice.
func (r *Rank) NewComm(members []int) (*Comm, error) {
	c, err := r.newCommOwned(members)
	if err != nil {
		return nil, err
	}
	cp := make([]int, len(members))
	copy(cp, members)
	c.members = cp
	return c, nil
}

// newCommOwned is NewComm without the defensive copy, for constructors
// (grid helpers, Split) that build the member slice themselves and hand
// over ownership. Algorithms build a handful of communicators per rank,
// so at p = 16384 the copies — and NewComm's old per-call validation
// map, ~1.5 KB each — were a measurable slice of a whole run's garbage.
func (r *Rank) newCommOwned(members []int) (*Comm, error) {
	c, err := r.newCommTrusted(members)
	if err != nil {
		return nil, err
	}
	if len(members) <= 128 {
		for i, id := range members {
			for _, other := range members[:i] {
				if other == id {
					return nil, fmt.Errorf("sim: duplicate communicator member %d", id)
				}
			}
		}
	} else {
		seen := make(map[int]bool, len(members))
		for _, id := range members {
			if seen[id] {
				return nil, fmt.Errorf("sim: duplicate communicator member %d", id)
			}
			seen[id] = true
		}
	}
	return c, nil
}

// newCommTrusted is newCommOwned without the duplicate scan, for generated
// member lists whose construction makes duplicates impossible (grid rows,
// columns and fibers). The duplicate scan is quadratic in the member count;
// on a 16384-rank 2.5D run the grid helpers alone were ~100M comparisons.
func (r *Rank) newCommTrusted(members []int) (*Comm, error) {
	me := -1
	for i, id := range members {
		if id < 0 || id >= r.P() {
			return nil, fmt.Errorf("sim: communicator member %d out of range [0,%d)", id, r.P())
		}
		if id == r.id {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("sim: rank %d not a member of communicator %v", r.id, members)
	}
	return &Comm{rank: r, members: members, me: me}, nil
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// Me returns the caller's index within the communicator.
func (c *Comm) Me() int { return c.me }

// Member returns the global rank id of member i.
func (c *Comm) Member(i int) int { return c.members[i] }

// Rank returns the underlying rank handle.
func (c *Comm) Rank() *Rank { return c.rank }

// send/recv by communicator-local index.
func (c *Comm) send(to int, data []float64) { c.rank.Send(c.members[to], data) }
func (c *Comm) recv(from int) []float64     { return c.rank.Recv(c.members[from]) }

// ReduceOp combines src into dst elementwise; len(dst) == len(src).
type ReduceOp func(dst, src []float64)

// OpSum is elementwise addition, the reduction used by every algorithm in
// the paper (matmul partial products, n-body force accumulation).
func OpSum(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// OpMax is elementwise maximum.
func OpMax(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// Shift performs a cyclic shift within the communicator: every member sends
// data to the member `by` positions ahead and receives from the member `by`
// positions behind. Because the send is posted before the receive, a full
// shift costs a single αt + k·βt step of virtual time.
func (c *Comm) Shift(data []float64, by int) []float64 {
	p := len(c.members)
	by = ((by % p) + p) % p
	if by == 0 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	// Unlike the tree collectives, a shift is already pairwise: conducting
	// it through a fast-forward rendezvous would park all s members behind
	// one conductor, where the direct send+recv parks a member only when
	// its source genuinely hasn't run yet. Every member takes this branch
	// or none do (the decision depends only on the op), so the per-pair
	// FIFO streams stay aligned with the conducted collectives around it.
	dst := (c.me + by) % p
	src := (c.me - by + p) % p
	c.send(dst, data)
	return c.recv(src)
}

// ShiftOwned is Shift with ownership transfer: the caller surrenders data
// to the communicator, which may forward the buffer without the defensive
// copy Send otherwise pays. data must not be read or written after the
// call. Virtual time, counters and the received values are identical to
// Shift — the copy was never observable — but the inner loops of the
// Cannon-style algorithms, which shift a buffer they are about to
// overwrite anyway, shed one allocation and copy per step per rank.
func (c *Comm) ShiftOwned(data []float64, by int) []float64 {
	p := len(c.members)
	by = ((by % p) + p) % p
	if by == 0 {
		return data
	}
	dst := (c.me + by) % p
	src := (c.me - by + p) % p
	c.rank.sendOwned(c.members[dst], data)
	return c.recv(src)
}

// Bcast broadcasts root's data to every member over a binomial tree
// (⌈log2 p⌉ rounds). It returns the received buffer on non-roots and a copy
// of data on the root.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	p := len(c.members)
	if e := c.ffEngine(); e != nil && p > 1 {
		return e.ffRun(c, ffBcast, data, root, nil)
	}
	// Rotate indices so the root is virtual index 0.
	vme := (c.me - root + p) % p
	var buf []float64
	if vme == 0 {
		buf = make([]float64, len(data))
		copy(buf, data)
	} else {
		// Receive from parent: clear the lowest set bit of vme.
		parent := vme & (vme - 1)
		buf = c.recv((parent + root) % p)
	}
	// Send to children: set each bit above the lowest set bit of vme while
	// the resulting index is in range. For vme==0 the "lowest set bit"
	// boundary is the full width.
	low := vme & -vme
	if vme == 0 {
		low = nextPow2(p)
	}
	for bit := low >> 1; bit > 0; bit >>= 1 {
		child := vme | bit
		if child != vme && child < p {
			c.send((child+root)%p, buf)
		}
	}
	return buf
}

// nextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func nextPow2(n int) int {
	v := 1
	for v < n {
		v <<= 1
	}
	return v
}

// Reduce combines every member's data with op over a binomial tree and
// returns the full reduction on root (nil elsewhere). All members must pass
// equal-length slices. The caller's data is not modified.
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) []float64 {
	p := len(c.members)
	if e := c.ffEngine(); e != nil && p > 1 {
		return e.ffRun(c, ffReduce, data, root, op)
	}
	vme := (c.me - root + p) % p
	acc := make([]float64, len(data))
	copy(acc, data)
	// Reverse binomial tree: in round k (bit = 1<<k), members with that bit
	// set send their accumulator to vme&^bit and exit.
	for bit := 1; bit < p; bit <<= 1 {
		if vme&bit != 0 {
			c.send(((vme&^bit)+root)%p, acc)
			return nil
		}
		partner := vme | bit
		if partner < p {
			contrib := c.recv((partner + root) % p)
			if len(contrib) != len(acc) {
				panic(fmt.Sprintf("sim: reduce length mismatch: %d vs %d", len(contrib), len(acc)))
			}
			c.rank.Compute(float64(len(acc))) // one op per element to combine
			op(acc, contrib)
		}
	}
	if vme == 0 {
		return acc
	}
	return nil
}

// AllReduce combines every member's data with op and returns the result on
// every member (reduce to member 0, then broadcast).
func (c *Comm) AllReduce(data []float64, op ReduceOp) []float64 {
	red := c.Reduce(0, data, op)
	if c.me == 0 {
		return c.Bcast(0, red)
	}
	return c.Bcast(0, nil)
}

// AllGather concatenates every member's equal-length block in member order
// and returns the concatenation on every member. It uses the ring algorithm:
// p−1 steps, each moving one block, for a total of (p−1)·k words per member.
func (c *Comm) AllGather(block []float64) []float64 {
	p := len(c.members)
	k := len(block)
	out := make([]float64, p*k)
	copy(out[c.me*k:(c.me+1)*k], block)
	if p == 1 {
		return out
	}
	if e := c.ffEngine(); e != nil {
		return e.ffRun(c, ffAllGather, block, 0, nil)
	}
	cur := make([]float64, k)
	copy(cur, block)
	next := (c.me + 1) % p
	prev := (c.me - 1 + p) % p
	for step := 0; step < p-1; step++ {
		c.send(next, cur)
		cur = c.recv(prev)
		owner := (c.me - 1 - step + 2*p) % p
		copy(out[owner*k:(owner+1)*k], cur)
	}
	return out
}

// ReduceScatter reduces p equal blocks elementwise and leaves block i on
// member i. data must have length p·k. It uses the ring algorithm: p−1
// steps of k words each.
func (c *Comm) ReduceScatter(data []float64, op ReduceOp) []float64 {
	p := len(c.members)
	if len(data)%p != 0 {
		panic(fmt.Sprintf("sim: ReduceScatter length %d not divisible by %d", len(data), p))
	}
	k := len(data) / p
	if p == 1 {
		out := make([]float64, k)
		copy(out, data)
		return out
	}
	if e := c.ffEngine(); e != nil {
		return e.ffRun(c, ffReduceScatter, data, 0, op)
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	next := (c.me + 1) % p
	prev := (c.me - 1 + p) % p
	// Block b travels forward around the ring starting at member b+1, so
	// that member b receives it last, fully reduced: at step s, member i
	// sends block i−1−s and accumulates into block i−2−s.
	for step := 0; step < p-1; step++ {
		sendBlock := (c.me - 1 - step + 2*p) % p
		c.send(next, acc[sendBlock*k:(sendBlock+1)*k])
		incoming := c.recv(prev)
		recvBlock := (c.me - 2 - step + 3*p) % p
		c.rank.Compute(float64(k))
		op(acc[recvBlock*k:(recvBlock+1)*k], incoming)
	}
	out := make([]float64, k)
	copy(out, acc[c.me*k:(c.me+1)*k])
	return out
}

// AllToAll performs the naive personalized all-to-all: every member sends
// block j of data directly to member j. data must have length p·k; the
// result holds block i received from member i. Costs p−1 messages and
// (p−1)·k words per member — the paper's "naive implementation" with
// W = n/p, S = p.
func (c *Comm) AllToAll(data []float64) []float64 {
	p := len(c.members)
	if len(data)%p != 0 {
		panic(fmt.Sprintf("sim: AllToAll length %d not divisible by %d", len(data), p))
	}
	if e := c.ffEngine(); e != nil && p > 1 {
		return e.ffRun(c, ffAllToAll, data, 0, nil)
	}
	k := len(data) / p
	out := make([]float64, len(data))
	copy(out[c.me*k:(c.me+1)*k], data[c.me*k:(c.me+1)*k])
	// Exchange with partner me^... for any p: schedule (me+s) pattern.
	for s := 1; s < p; s++ {
		dst := (c.me + s) % p
		src := (c.me - s + p) % p
		c.send(dst, data[dst*k:(dst+1)*k])
		blk := c.recv(src)
		copy(out[src*k:(src+1)*k], blk)
	}
	return out
}

// AllToAllTree performs the Bruck-style logarithmic all-to-all: ⌈log2 p⌉
// rounds, each moving about half the buffer. Costs S = ⌈log2 p⌉ messages and
// W ≈ (k·p/2)·log2 p words per member — the paper's tree-based all-to-all
// with W = (n/p)·log p, S = log p. data must have length p·k.
func (c *Comm) AllToAllTree(data []float64) []float64 {
	p := len(c.members)
	if len(data)%p != 0 {
		panic(fmt.Sprintf("sim: AllToAllTree length %d not divisible by %d", len(data), p))
	}
	if e := c.ffEngine(); e != nil && p > 1 {
		return e.ffRun(c, ffAllToAllTree, data, 0, nil)
	}
	k := len(data) / p
	// Phase 1: local rotation so block for member (me+j)%p sits at slot j.
	buf := make([]float64, len(data))
	for j := 0; j < p; j++ {
		srcBlock := (c.me + j) % p
		copy(buf[j*k:(j+1)*k], data[srcBlock*k:(srcBlock+1)*k])
	}
	// Phase 2: for each bit, send all slots whose index has that bit set to
	// the member 2^bit ahead.
	for bit := 1; bit < p; bit <<= 1 {
		var slots []int
		for j := 0; j < p; j++ {
			if j&bit != 0 {
				slots = append(slots, j)
			}
		}
		send := make([]float64, 0, len(slots)*k)
		for _, j := range slots {
			send = append(send, buf[j*k:(j+1)*k]...)
		}
		dst := (c.me + bit) % p
		src := (c.me - bit + p) % p
		recv := c.rank.SendRecv(c.members[dst], send, c.members[src])
		for i, j := range slots {
			copy(buf[j*k:(j+1)*k], recv[i*k:(i+1)*k])
		}
	}
	// Phase 3: inverse rotation. After phase 2, slot j holds the block sent
	// by member (me-j)%p; place it at block index (me-j)%p.
	out := make([]float64, len(data))
	for j := 0; j < p; j++ {
		srcMember := (c.me - j + p) % p
		copy(out[srcMember*k:(srcMember+1)*k], buf[j*k:(j+1)*k])
	}
	return out
}

// Barrier synchronizes the communicator via a zero-word reduce+broadcast,
// costing 2·⌈log2 p⌉ message latencies — synchronization through messages,
// as the paper's model requires.
func (c *Comm) Barrier() {
	c.AllReduce([]float64{}, OpSum)
}

// Gather collects every member's equal-length chunk on root, in member
// order; returns nil on non-roots. Each non-root sends its chunk directly
// to the root.
func (c *Comm) Gather(root int, chunk []float64) []float64 {
	p := len(c.members)
	if e := c.ffEngine(); e != nil && p > 1 {
		return e.ffRun(c, ffGather, chunk, root, nil)
	}
	if c.me != root {
		c.send(root, chunk)
		return nil
	}
	out := make([]float64, p*len(chunk))
	copy(out[root*len(chunk):(root+1)*len(chunk)], chunk)
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		blk := c.recv(i)
		copy(out[i*len(blk):(i+1)*len(blk)], blk)
	}
	return out
}

// BcastLarge broadcasts root's data with the bandwidth-optimal
// scatter+allgather algorithm: the root scatters p chunks, then a ring
// all-gather reassembles the full buffer everywhere. Every rank (including
// the root) sends ≈ len(data) words total, independent of p — the
// collective the 2.5D algorithm's replication step needs for its
// W = n²/√(cp) bound. Falls back to the binomial Bcast when the payload is
// too small to split evenly.
func (c *Comm) BcastLarge(root int, data []float64) []float64 {
	p := len(c.members)
	if p == 1 {
		return c.Bcast(root, data)
	}
	if e := c.ffEngine(); e != nil {
		// Conducted as one composite rendezvous: announcement, scatter and
		// all-gather cost a member one park instead of three-plus.
		return e.ffRun(c, ffBcastLarge, data, root, nil)
	}
	var k int
	if c.me == root {
		k = len(data)
		if k < p || k%p != 0 {
			k = -1
		}
	}
	// Everyone must agree on the path; the root announces the chunk size.
	kBuf := c.Bcast(root, []float64{float64(k)})
	k = int(kBuf[0])
	if k < 0 {
		return c.Bcast(root, data)
	}
	chunk := k / p
	// Scatter: root sends member i its chunk.
	var mine []float64
	if c.me == root {
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			c.send(i, data[i*chunk:(i+1)*chunk])
		}
		mine = make([]float64, chunk)
		copy(mine, data[root*chunk:(root+1)*chunk])
	} else {
		mine = c.recv(root)
	}
	return c.AllGather(mine)
}

// ReduceLarge reduces every member's data onto root with the
// bandwidth-optimal reduce-scatter + gather algorithm: ≈ 2·len(data) words
// per rank independent of p, versus the binomial tree's log(p)·len(data) at
// the root. Returns the reduction on root, nil elsewhere. Falls back to the
// binomial Reduce when the payload is too small to split evenly.
func (c *Comm) ReduceLarge(root int, data []float64, op ReduceOp) []float64 {
	p := len(c.members)
	if p == 1 || len(data) < p || len(data)%p != 0 {
		return c.Reduce(root, data, op)
	}
	if e := c.ffEngine(); e != nil {
		return e.ffRun(c, ffReduceLarge, data, root, op)
	}
	chunk := c.ReduceScatter(data, op)
	gathered := c.Gather(root, chunk)
	return gathered
}

// Scatter distributes root's data in equal chunks: member i receives chunk
// i. data must have length p·k on the root (ignored elsewhere); every
// member gets its own k-word chunk back.
func (c *Comm) Scatter(root int, data []float64) []float64 {
	p := len(c.members)
	if c.me == root && len(data)%p != 0 {
		panic(fmt.Sprintf("sim: Scatter length %d not divisible by %d", len(data), p))
	}
	if e := c.ffEngine(); e != nil && p > 1 {
		return e.ffRun(c, ffScatter, data, root, nil)
	}
	if c.me == root {
		k := len(data) / p
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			c.send(i, data[i*k:(i+1)*k])
		}
		out := make([]float64, k)
		copy(out, data[root*k:(root+1)*k])
		return out
	}
	return c.recv(root)
}

// Split partitions the communicator by color, MPI_Comm_split-style: members
// sharing a color form a new communicator ordered by key (ties broken by
// current rank order). Every member must call Split with its own color/key;
// the membership exchange costs one all-gather of two words per member.
func (c *Comm) Split(color, key int) (*Comm, error) {
	info := c.AllGather([]float64{float64(color), float64(key)})
	type entry struct{ member, color, key int }
	var mine []entry
	for i := 0; i < len(c.members); i++ {
		col := int(info[2*i])
		if col == color {
			mine = append(mine, entry{member: i, color: col, key: int(info[2*i+1])})
		}
	}
	sort.Slice(mine, func(a, b int) bool {
		if mine[a].key != mine[b].key {
			return mine[a].key < mine[b].key
		}
		return mine[a].member < mine[b].member
	})
	members := make([]int, len(mine))
	for i, e := range mine {
		members[i] = c.members[e.member]
	}
	return c.rank.newCommOwned(members)
}
