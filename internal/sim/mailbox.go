package sim

import (
	"sync"
	"sync/atomic"
)

// Wiring is how the cluster is scaled to its rank count. The runtime used to
// allocate a dense p×p matrix of buffered channels up front, which caps a
// run at modest p: p = 4096 wires ~16.7M channels (tens of GB of buffer
// space) before the first flop, and p = 16384 is out of reach entirely. The
// algorithms in this repository touch only O(log p) distinct peers per rank
// (grid neighbours, tree parents/children, fiber partners), so almost all of
// that matrix is dead weight.
//
// Sparse wiring — the default — creates a pair's queue on first use instead:
// each rank owns a mailbox, a small mutex-protected map from sender id to
// the pair's FIFO queue, and both endpoints get-or-create the queue on their
// first Send/Recv across the pair. Memory then scales with the number of
// *active* communication pairs, O(p·log p) for the 2.5D/CAPS/FFT patterns
// here, instead of p².
//
// Dense wiring is kept selectable for the wiring benchmarks
// (BenchmarkWiring, cmd/bench) that measure exactly this difference.
//
// The wiring mode is invisible to the simulation's semantics: virtual
// clocks, counters and fault decisions depend only on the program's
// communication pattern and the arrival stamps carried inside messages,
// never on how the underlying queues were allocated, so a run's Result is
// bit-identical under either mode (pinned by TestDenseSparseIdentical*).
type Wiring int

const (
	// WiringSparse creates per-pair queues on demand (the default).
	WiringSparse Wiring = iota
	// WiringDense pre-allocates the full p×p queue matrix up front, the
	// historical layout, kept for memory/startup comparisons.
	WiringDense
)

// String names the wiring mode for benchmark labels and reports.
func (w Wiring) String() string {
	if w == WiringDense {
		return "dense"
	}
	return "sparse"
}

// pairQ is one ordered src→dst FIFO. Exactly one of the two carriers is
// active, chosen by the cluster's runtime backend:
//
//   - the goroutine backend blocks real OS threads, so it needs a real
//     channel it can select against cancellation and peer exit;
//   - the event backend never blocks a thread on a pair — a full or empty
//     queue parks the rank in the engine instead — so its fast path is a
//     single-producer single-consumer ring with two atomic cursors and no
//     lock. At p = 16384 the channel's lock/unlock pair on every hot-loop
//     enqueue and dequeue was ~15% of a whole 2.5D run.
//
// The SPSC invariant holds because a pair has exactly one sending and one
// receiving rank, a rank executes on one carrier at a time, and conducted
// collectives (comm_ff.go) touch a member's pairs only while that member is
// parked — every ownership handoff goes through the engine lock.
type pairQ struct {
	ch chan message // goroutine backend; nil under the event engine
	rg evRing       // event backend; zero-valued under goroutines
}

// count reports the number of queued messages, whichever carrier is live.
func (q *pairQ) count() int {
	if q.ch != nil {
		return len(q.ch)
	}
	return q.rg.length()
}

// evRing is the event backend's pair queue: a fixed-capacity SPSC ring.
// The producer owns tail, the consumer owns head; each side reads the
// other's cursor atomically. Go's atomics are sequentially consistent, so
// the buffer write before tail.Store is visible to a consumer that loads
// the new tail (and symmetrically for slot reuse after head.Store). The
// backing array is sized to the next power of two above the semantic
// capacity and allocated lazily by the producer on first enqueue: pairs
// that only ever carry conducted collective traffic (direct handoff, see
// ffRecv) never materialize a buffer at all.
type evRing struct {
	head atomic.Uint32 // consumer cursor
	tail atomic.Uint32 // producer cursor
	sem  uint32        // semantic capacity (Cost.ChanCap)
	mask uint32        // len(buf)-1
	buf  []message
}

func (q *evRing) init(bufCap int) {
	n := 1
	for n < bufCap {
		n <<= 1
	}
	q.sem = uint32(bufCap)
	q.mask = uint32(n - 1)
}

// length is safe to call from either side (and from the quiesced engine).
func (q *evRing) length() int { return int(q.tail.Load() - q.head.Load()) }

// push enqueues m, failing when the semantic capacity is reached.
// Producer side only.
func (q *evRing) push(m message) bool {
	t := q.tail.Load()
	if t-q.head.Load() >= q.sem {
		return false
	}
	if q.buf == nil {
		q.buf = make([]message, q.mask+1)
	}
	q.buf[t&q.mask] = m
	q.tail.Store(t + 1)
	return true
}

// pop dequeues the head message. Consumer side only. The slot is zeroed so
// the ring does not pin delivered payloads for the GC.
func (q *evRing) pop() (message, bool) {
	h := q.head.Load()
	if q.tail.Load() == h {
		return message{}, false
	}
	m := q.buf[h&q.mask]
	q.buf[h&q.mask] = message{}
	q.head.Store(h + 1)
	return m, true
}

// mailbox holds one rank's incoming per-pair queues, keyed by sender id.
// Senders and receivers get-or-create a pair's queue under the mutex on
// first contact; after that, both sides use their rank-local cached handle
// and the lock is never touched again for the pair.
type mailbox struct {
	mu     sync.Mutex
	queues map[int]*pairQ
}

// pairOf returns the FIFO queue for the ordered pair src→dst, creating it
// on first use under sparse wiring. The map entry itself is the unit the
// wiring accounting (ActivePairs) counts.
func (c *Cluster) pairOf(src, dst int) *pairQ {
	if c.dense != nil {
		return &c.dense[src][dst]
	}
	mb := &c.mail[dst]
	mb.mu.Lock()
	q := mb.queues[src]
	if q == nil {
		if mb.queues == nil {
			mb.queues = make(map[int]*pairQ, 8)
		}
		q = c.newPairQ()
		mb.queues[src] = q
	}
	mb.mu.Unlock()
	return q
}

// newPairQ builds a pair queue for the cluster's runtime backend.
func (c *Cluster) newPairQ() *pairQ {
	q := &pairQ{}
	if c.cost.Runtime == RuntimeEvent {
		q.rg.init(c.bufCap)
	} else {
		q.ch = make(chan message, c.bufCap)
	}
	return q
}

// pairCache is a two-slot MRU cache in front of a rank's out/in map. The
// hot loops of the grid algorithms alternate between exactly two peers
// (row neighbour, column neighbour), so the second slot turns nearly every
// map lookup on the steady-state path into two compares. The zero value is
// empty (nil queue pointers mark unused slots).
type pairCache struct {
	k1, k2 int
	q1, q2 *pairQ
}

func (pc *pairCache) get(k int) *pairQ {
	if pc.k1 == k {
		return pc.q1 // nil when the slot is unused: caller falls through
	}
	if pc.k2 == k && pc.q2 != nil {
		pc.k1, pc.k2 = k, pc.k1
		pc.q1, pc.q2 = pc.q2, pc.q1
		return pc.q1
	}
	return nil
}

func (pc *pairCache) put(k int, q *pairQ) {
	pc.k1, pc.k2 = k, pc.k1
	pc.q1, pc.q2 = q, pc.q1
}

// queueTo returns the rank's outgoing queue towards dst, memoizing the
// lookup so the mailbox lock is taken at most once per peer.
func (r *Rank) queueTo(dst int) *pairQ {
	if q := r.outC.get(dst); q != nil {
		return q
	}
	if q, ok := r.out[dst]; ok {
		r.outC.put(dst, q)
		return q
	}
	if r.out == nil {
		r.out = make(map[int]*pairQ, 16)
	}
	q := r.cluster.pairOf(r.id, dst)
	r.out[dst] = q
	r.outC.put(dst, q)
	return q
}

// queueFrom returns the rank's incoming queue from src, memoized like
// queueTo.
func (r *Rank) queueFrom(src int) *pairQ {
	if q := r.inC.get(src); q != nil {
		return q
	}
	if q, ok := r.in[src]; ok {
		r.inC.put(src, q)
		return q
	}
	if r.in == nil {
		r.in = make(map[int]*pairQ, 16)
	}
	q := r.cluster.pairOf(src, r.id)
	r.in[src] = q
	r.inC.put(src, q)
	return q
}

// ActivePairs reports how many ordered communication pairs were actually
// wired during the run — the quantity sparse wiring's memory scales with
// (p² under dense wiring, by construction). Call it after Run returns.
func (c *Cluster) ActivePairs() int {
	if c.dense != nil {
		return c.p * c.p
	}
	n := 0
	for i := range c.mail {
		mb := &c.mail[i]
		mb.mu.Lock()
		n += len(mb.queues)
		mb.mu.Unlock()
	}
	return n
}
