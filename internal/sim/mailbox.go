package sim

import "sync"

// Wiring is how the cluster is scaled to its rank count. The runtime used to
// allocate a dense p×p matrix of buffered channels up front, which caps a
// run at modest p: p = 4096 wires ~16.7M channels (tens of GB of buffer
// space) before the first flop, and p = 16384 is out of reach entirely. The
// algorithms in this repository touch only O(log p) distinct peers per rank
// (grid neighbours, tree parents/children, fiber partners), so almost all of
// that matrix is dead weight.
//
// Sparse wiring — the default — creates a pair's queue on first use instead:
// each rank owns a mailbox, a small mutex-protected map from sender id to
// the pair's FIFO queue, and both endpoints get-or-create the queue on their
// first Send/Recv across the pair. Memory then scales with the number of
// *active* communication pairs, O(p·log p) for the 2.5D/CAPS/FFT patterns
// here, instead of p².
//
// Dense wiring is kept selectable for the wiring benchmarks
// (BenchmarkWiring, cmd/bench) that measure exactly this difference.
//
// The wiring mode is invisible to the simulation's semantics: virtual
// clocks, counters and fault decisions depend only on the program's
// communication pattern and the arrival stamps carried inside messages,
// never on how the underlying queues were allocated, so a run's Result is
// bit-identical under either mode (pinned by TestDenseSparseIdentical*).
type Wiring int

const (
	// WiringSparse creates per-pair queues on demand (the default).
	WiringSparse Wiring = iota
	// WiringDense pre-allocates the full p×p queue matrix up front, the
	// historical layout, kept for memory/startup comparisons.
	WiringDense
)

// String names the wiring mode for benchmark labels and reports.
func (w Wiring) String() string {
	if w == WiringDense {
		return "dense"
	}
	return "sparse"
}

// mailbox holds one rank's incoming per-pair queues, keyed by sender id.
// Senders and receivers get-or-create a pair's queue under the mutex on
// first contact; after that, both sides use their rank-local cached handle
// and the lock is never touched again for the pair.
type mailbox struct {
	mu     sync.Mutex
	queues map[int]chan message
}

// queue returns the FIFO queue for the ordered pair src→dst, creating it on
// first use under sparse wiring.
func (c *Cluster) queue(src, dst int) chan message {
	if c.dense != nil {
		return c.dense[src][dst]
	}
	mb := &c.mail[dst]
	mb.mu.Lock()
	ch, ok := mb.queues[src]
	if !ok {
		if mb.queues == nil {
			mb.queues = make(map[int]chan message, 8)
		}
		ch = make(chan message, c.bufCap)
		mb.queues[src] = ch
	}
	mb.mu.Unlock()
	return ch
}

// queueTo returns the rank's outgoing queue towards dst, memoizing the
// lookup so the mailbox lock is taken at most once per peer.
func (r *Rank) queueTo(dst int) chan message {
	if r.cluster.dense != nil {
		return r.cluster.dense[r.id][dst]
	}
	if ch, ok := r.out[dst]; ok {
		return ch
	}
	if r.out == nil {
		r.out = make(map[int]chan message, 8)
	}
	ch := r.cluster.queue(r.id, dst)
	r.out[dst] = ch
	return ch
}

// queueFrom returns the rank's incoming queue from src, memoized like
// queueTo.
func (r *Rank) queueFrom(src int) chan message {
	if r.cluster.dense != nil {
		return r.cluster.dense[src][r.id]
	}
	if ch, ok := r.in[src]; ok {
		return ch
	}
	if r.in == nil {
		r.in = make(map[int]chan message, 8)
	}
	ch := r.cluster.queue(src, r.id)
	r.in[src] = ch
	return ch
}

// ActivePairs reports how many ordered communication pairs were actually
// wired during the run — the quantity sparse wiring's memory scales with
// (p² under dense wiring, by construction). Call it after Run returns.
func (c *Cluster) ActivePairs() int {
	if c.dense != nil {
		return c.p * c.p
	}
	n := 0
	for i := range c.mail {
		mb := &c.mail[i]
		mb.mu.Lock()
		n += len(mb.queues)
		mb.mu.Unlock()
	}
	return n
}
