package sim

import (
	"fmt"
	"testing"
)

// wiringExchange is the benchmark program: one ring step plus a full
// hypercube exchange, all direct point-to-point (no World(), whose per-rank
// members slice would itself cost O(p²) across the cluster and drown the
// wiring signal).
func wiringExchange(p, k int) func(*Rank) error {
	return func(r *Rank) error {
		data := make([]float64, k)
		next := (r.ID() + 1) % p
		prev := (r.ID() - 1 + p) % p
		data = r.SendRecv(next, data, prev)
		for bit := 1; bit < p; bit <<= 1 {
			data = r.SendRecv(r.ID()^bit, data, r.ID()^bit)
		}
		return nil
	}
}

// BenchmarkWiring compares dense and sparse wiring at increasing p on the
// same exchange pattern. The interesting columns are B/op and the pairs
// metric: dense allocates p² queues up front, sparse only the
// (1+log₂p)·p pairs the pattern touches. CI runs this once per mode in
// short mode as a smoke test (-bench Wiring -benchtime 1x).
func BenchmarkWiring(b *testing.B) {
	for _, wiring := range []Wiring{WiringSparse, WiringDense} {
		for _, p := range []int{256, 1024, 4096} {
			b.Run(fmt.Sprintf("%v/p=%d", wiring, p), func(b *testing.B) {
				if wiring == WiringDense && p >= 4096 && testing.Short() {
					b.Skip("dense 4096² queue matrix: skipped in -short")
				}
				cost := Cost{AlphaT: 1e-6, BetaT: 1e-9, ChanCap: 4, Wiring: wiring}
				b.ReportAllocs()
				var pairs int
				for i := 0; i < b.N; i++ {
					c, err := NewCluster(p, cost)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := c.Run(wiringExchange(p, 16)); err != nil {
						b.Fatal(err)
					}
					pairs = c.ActivePairs()
				}
				b.ReportMetric(float64(pairs), "pairs")
			})
		}
	}
}
