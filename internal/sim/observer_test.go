package sim

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// recObs is a test subscriber that keeps everything under one mutex (the
// bus delivers from many rank goroutines concurrently).
type recObs struct {
	mu        sync.Mutex
	segs      map[int][]Segment // all segments by rank, in arrival order
	phases    map[int][]PhaseMark
	faults    []FaultEvent
	crashes   []CrashEvent
	deadlocks []DeadlockEvent
	timers    []TimerEvent
}

func newRecObs() *recObs {
	return &recObs{segs: map[int][]Segment{}, phases: map[int][]PhaseMark{}}
}

func (o *recObs) add(rank int, seg Segment) {
	o.mu.Lock()
	o.segs[rank] = append(o.segs[rank], seg)
	o.mu.Unlock()
}

func (o *recObs) OnCompute(rank int, seg Segment) { o.add(rank, seg) }
func (o *recObs) OnSend(rank int, seg Segment)    { o.add(rank, seg) }
func (o *recObs) OnRecv(rank int, seg Segment)    { o.add(rank, seg) }
func (o *recObs) OnPhase(rank int, name string, at float64) {
	o.mu.Lock()
	o.phases[rank] = append(o.phases[rank], PhaseMark{Name: name, Time: at})
	o.mu.Unlock()
}
func (o *recObs) OnFault(ev FaultEvent) {
	o.mu.Lock()
	o.faults = append(o.faults, ev)
	o.mu.Unlock()
}
func (o *recObs) OnCrash(ev CrashEvent) {
	o.mu.Lock()
	o.crashes = append(o.crashes, ev)
	o.mu.Unlock()
}
func (o *recObs) OnDeadlock(ev DeadlockEvent) {
	o.mu.Lock()
	o.deadlocks = append(o.deadlocks, ev)
	o.mu.Unlock()
}
func (o *recObs) OnTimer(ev TimerEvent) {
	o.mu.Lock()
	o.timers = append(o.timers, ev)
	o.mu.Unlock()
}

func TestObserverSegmentsMatchStats(t *testing.T) {
	// The bus must deliver every timeline segment: per rank, summing the
	// delivered durations by kind reproduces the Stats decomposition.
	// Equality is up to rounding: Stats adds each dt directly, segments
	// store (clock+dt)−clock endpoints.
	obs := newRecObs()
	cost := Cost{
		GammaT: 1e-3, AlphaT: 0.5, BetaT: 0.01,
		ChargeReceiver: true,
		Observers:      []Observer{obs},
	}
	res, err := Run(4, cost, func(r *Rank) error {
		w := r.World()
		r.Compute(float64(100 * (r.ID() + 1)))
		data := w.Shift(make([]float64, 16), 1)
		r.Compute(25)
		w.AllReduce(data, OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, st := range res.PerRank {
		var compute, send, recv, wait float64
		prevEnd := 0.0
		for _, seg := range obs.segs[rank] {
			if seg.Start < prevEnd-1e-15 {
				t.Fatalf("rank %d: segment %+v starts before previous end %g", rank, seg, prevEnd)
			}
			prevEnd = seg.End
			switch seg.Kind {
			case SegCompute:
				compute += seg.Duration()
			case SegSend:
				send += seg.Duration()
			case SegRecv:
				recv += seg.Duration()
			case SegWait:
				wait += seg.Duration()
			}
		}
		approx := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b)) }
		if !approx(compute, st.ComputeTime) || !approx(send, st.SendTime) || !approx(recv, st.RecvTime) || !approx(wait, st.WaitTime) {
			t.Errorf("rank %d: bus durations (%g,%g,%g,%g) != stats (%g,%g,%g,%g)",
				rank, compute, send, recv, wait,
				st.ComputeTime, st.SendTime, st.RecvTime, st.WaitTime)
		}
	}
}

func TestObserverComputeCarriesFlops(t *testing.T) {
	obs := newRecObs()
	cost := Cost{GammaT: 1e-6, Observers: []Observer{obs}}
	if _, err := Run(1, cost, func(r *Rank) error {
		r.Compute(123)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	segs := obs.segs[0]
	if len(segs) != 1 || segs[0].Kind != SegCompute || segs[0].Flops != 123 {
		t.Fatalf("want one compute segment with Flops=123, got %+v", segs)
	}
}

func TestPhaseMarksReachBusAndTrace(t *testing.T) {
	obs := newRecObs()
	cost := Cost{GammaT: 1e-3, AlphaT: 0.1, BetaT: 0.01, Trace: true, Observers: []Observer{obs}}
	res, err := Run(2, cost, func(r *Rank) error {
		r.Phase("setup")
		r.Compute(100)
		r.Phase("exchange")
		other := 1 - r.ID()
		r.Send(other, make([]float64, 4))
		r.Recv(other)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		want := []PhaseMark{{Name: "setup", Time: 0}, {Name: "exchange", Time: 0.1}}
		for _, got := range [][]PhaseMark{obs.phases[rank], res.Trace.Phases[rank]} {
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Errorf("rank %d: phases %+v, want %+v", rank, got, want)
			}
		}
	}
}

func TestPhaseIsFree(t *testing.T) {
	run := func(phases bool) *Result {
		res, err := Run(2, Cost{GammaT: 1e-3, AlphaT: 0.1, BetaT: 0.01}, func(r *Rank) error {
			if phases {
				r.Phase("a")
			}
			r.Compute(10)
			if phases {
				r.Phase("b")
			}
			r.Send(1-r.ID(), make([]float64, 2))
			r.Recv(1 - r.ID())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(true), run(false)
	for id := range with.PerRank {
		if with.PerRank[id] != without.PerRank[id] {
			t.Errorf("rank %d: Phase changed stats: %+v vs %+v", id, with.PerRank[id], without.PerRank[id])
		}
	}
}

func TestObserverFaultEvents(t *testing.T) {
	obs := newRecObs()
	plan := &FaultPlan{
		Seed: 7,
		Links: []LinkFault{
			{Src: -1, Dst: -1, DropProb: 1}, // every send dropped
		},
		Degraded: []DegradedLink{
			{Src: -1, Dst: -1, AlphaFactor: 4, BetaFactor: 2},
		},
	}
	cost := Cost{AlphaT: 0.5, BetaT: 0.01, Faults: plan, Observers: []Observer{obs}, WatchdogTimeout: -1}
	if _, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, make([]float64, 8))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var sawDrop, sawDegraded bool
	for _, ev := range obs.faults {
		switch ev.Kind {
		case FaultDrop:
			sawDrop = true
			if ev.Src != 0 || ev.Dst != 1 || ev.Words != 8 {
				t.Errorf("drop event wrong: %+v", ev)
			}
		case FaultDegraded:
			sawDegraded = true
			if ev.AlphaFactor != 4 || ev.BetaFactor != 2 {
				t.Errorf("degraded factors wrong: %+v", ev)
			}
			if ev.Time != 0 {
				t.Errorf("degraded event should carry the send start, got t=%g", ev.Time)
			}
		}
	}
	if !sawDrop || !sawDegraded {
		t.Fatalf("missing fault events: drop=%v degraded=%v (%+v)", sawDrop, sawDegraded, obs.faults)
	}
}

func TestObserverCrashEvents(t *testing.T) {
	obs := newRecObs()
	plan := &FaultPlan{Crashes: map[int]float64{0: 0.05}, Respawn: true, RebootTime: 1.5}
	cost := Cost{GammaT: 1e-3, Faults: plan, Observers: []Observer{obs}}
	res, err := Run(1, cost, func(r *Rank) error {
		r.Compute(100) // clock 0.1 ≥ 0.05 → crash fires on the next op
		r.Compute(100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.crashes) != 1 {
		t.Fatalf("want one crash event, got %+v", obs.crashes)
	}
	ev := obs.crashes[0]
	if ev.Rank != 0 || !ev.Respawn || ev.Scheduled != 0.05 || ev.Time != 0.1 {
		t.Errorf("crash event wrong: %+v", ev)
	}
	if want := 0.2 + 1.5; math.Abs(res.Time()-want) > 1e-12 {
		t.Errorf("reboot wait not accounted: T=%g want %g", res.Time(), want)
	}
}

// Satellite: traced SegSend segments inside degraded-bandwidth windows must
// carry the degraded αt/βt-priced duration, so per-rank trace totals agree
// with Stats exactly — under ChargeReceiver the receive side too.
func TestDegradedSendSegmentsMatchStatsTotals(t *testing.T) {
	plan := &FaultPlan{
		Degraded: []DegradedLink{
			{Src: -1, Dst: -1, From: 0, Until: 2, AlphaFactor: 8, BetaFactor: 3},
		},
	}
	cost := Cost{
		AlphaT: 0.25, BetaT: 0.01, GammaT: 1e-3,
		ChargeReceiver: true, Trace: true, Faults: plan,
	}
	res, err := Run(2, cost, func(r *Rank) error {
		other := 1 - r.ID()
		for i := 0; i < 4; i++ {
			r.Send(other, make([]float64, 10))
			r.Recv(other)
			r.Compute(100)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first sends happen inside the window: their traced duration must
	// be the inflated 8·α + 10·3·β, not the base price.
	first := res.Trace.Segments[0][0]
	if first.Kind != SegSend {
		t.Fatalf("first segment is %v, want send", first.Kind)
	}
	if want := 8*0.25 + 3*0.01*10; math.Abs(first.Duration()-want) > 1e-15 {
		t.Errorf("degraded send duration %g, want %g", first.Duration(), want)
	}
	// And every rank's summed segment durations equal its Stats totals
	// exactly — the pin that pricing and trace can never disagree again.
	for rank, segs := range res.Trace.Segments {
		var send, recv float64
		for _, seg := range segs {
			switch seg.Kind {
			case SegSend:
				send += seg.Duration()
			case SegRecv:
				recv += seg.Duration()
			}
		}
		st := res.PerRank[rank]
		if math.Abs(send-st.SendTime) > 1e-12*st.SendTime {
			t.Errorf("rank %d: traced send total %g != Stats.SendTime %g", rank, send, st.SendTime)
		}
		if math.Abs(recv-st.RecvTime) > 1e-12*st.RecvTime {
			t.Errorf("rank %d: traced recv total %g != Stats.RecvTime %g", rank, recv, st.RecvTime)
		}
	}
}

// Satellite: CriticalPath must tile [0, T] exactly under ChargeReceiver
// (receive segments join the path).
func TestCriticalPathChargeReceiverTilesTime(t *testing.T) {
	cost := Cost{GammaT: 1e-3, AlphaT: 0.5, BetaT: 0.01, ChargeReceiver: true, Trace: true}
	res, err := Run(6, cost, func(r *Rank) error {
		w := r.World()
		r.Compute(float64(100 * (r.ID() + 1)))
		data := make([]float64, 8)
		for s := 0; s < 3; s++ {
			data = w.Shift(data, 1)
			r.Compute(50)
		}
		w.AllReduce(data, OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertPathTiles(t, res)
}

// CriticalPath must also survive respawn-crash reboot stalls: the injected
// SegWait has no releasing sender (peer −1) and stays on the path as a
// stall instead of being followed off the end of the rank array.
func TestCriticalPathRespawnRebootStall(t *testing.T) {
	plan := &FaultPlan{Crashes: map[int]float64{1: 0.01}, Respawn: true, RebootTime: 3}
	cost := Cost{GammaT: 1e-3, AlphaT: 0.1, BetaT: 0.01, Trace: true, Faults: plan}
	res, err := Run(2, cost, func(r *Rank) error {
		r.Compute(100)
		other := 1 - r.ID()
		r.Send(other, make([]float64, 4))
		r.Recv(other)
		r.Compute(100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	path := assertPathTiles(t, res)
	stall := false
	for _, seg := range path {
		if seg.Kind == SegWait && seg.Peer == -1 && seg.Duration() == 3 {
			stall = true
		}
	}
	if !stall {
		t.Errorf("reboot stall missing from path: %+v", path)
	}
}

// assertPathTiles checks the critical path covers [0, T] contiguously and
// returns it.
func assertPathTiles(t *testing.T, res *Result) []Segment {
	t.Helper()
	path := res.Trace.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	total := 0.0
	for _, s := range path {
		total += s.Duration()
	}
	if T := res.Time(); math.Abs(total-T) > 1e-9*T {
		t.Errorf("path covers %g of %g", total, T)
	}
	for i := 1; i < len(path); i++ {
		if math.Abs(path[i].Start-path[i-1].End) > 1e-9 {
			t.Fatalf("path gap between %+v and %+v", path[i-1], path[i])
		}
	}
	return path
}

// Satellite: the watchdog's DeadlockError carries a full cluster snapshot
// and is emitted through the event bus.
func TestDeadlockSnapshotAndBusEvent(t *testing.T) {
	obs := newRecObs()
	cost := Cost{
		AlphaT: 0.1, BetaT: 0.01,
		WatchdogTimeout: 200 * time.Millisecond,
		Observers:       []Observer{obs},
	}
	// Rank 0 sends to 1 then waits on 1; rank 1 never sends and waits on
	// 0's second message: a deadlock with one undelivered message queued
	// on 0→1.
	_, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, make([]float64, 4))
			r.Recv(1)
		} else {
			r.Recv(0)
			r.Recv(0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	snap := de.Snapshot
	if snap == nil {
		t.Fatal("DeadlockError.Snapshot missing")
	}
	if len(snap.Ranks) != 2 {
		t.Fatalf("snapshot has %d ranks, want 2", len(snap.Ranks))
	}
	if rs := snap.Ranks[0]; rs.State != "blocked-recv" || rs.Peer != 1 {
		t.Errorf("rank 0 snapshot: %+v, want blocked-recv on 1", rs)
	}
	if rs := snap.Ranks[1]; rs.State != "blocked-recv" || rs.Peer != 0 {
		t.Errorf("rank 1 snapshot: %+v, want blocked-recv on 0", rs)
	}
	// Rank 0's last act before blocking was its send; the snapshot says so.
	if rs := snap.Ranks[0]; rs.LastSeg == nil || rs.LastSeg.Kind != SegSend {
		t.Errorf("rank 0 last segment: %+v, want a send", rs.LastSeg)
	}
	// Rank 1 consumed message one but message two was never sent; no pair
	// holds undelivered traffic. Rank 1's first Recv drained the queue, so
	// Queued must be empty — the diagnostic that tells "never sent" apart
	// from "sent but stuck".
	if len(snap.Queued) != 0 {
		t.Errorf("queued pairs %+v, want none", snap.Queued)
	}
	if len(obs.deadlocks) == 0 {
		t.Fatal("no OnDeadlock events on the bus")
	}
	if obs.deadlocks[0].Err.Snapshot != snap && obs.deadlocks[len(obs.deadlocks)-1].Err.Snapshot != snap {
		t.Error("bus deadlock events do not share the error's snapshot")
	}
	if !strings.Contains(snap.String(), "blocked-recv") {
		t.Errorf("snapshot renders without states: %q", snap.String())
	}
}

func TestDeadlockSnapshotQueuedPairs(t *testing.T) {
	cost := Cost{
		AlphaT: 0.1, BetaT: 0.01,
		WatchdogTimeout: 200 * time.Millisecond,
	}
	// Rank 0 sends twice to 1 but rank 1 waits on rank 2 (who never
	// sends): the two messages stay queued on pair 0→1.
	_, err := Run(3, cost, func(r *Rank) error {
		switch r.ID() {
		case 0:
			r.Send(1, make([]float64, 4))
			r.Send(1, make([]float64, 4))
			r.Recv(1)
		case 1:
			r.Recv(2)
		case 2:
			r.Recv(1)
		}
		return nil
	})
	var de *DeadlockError
	if !errors.As(err, &de) || de.Snapshot == nil {
		t.Fatalf("want DeadlockError with snapshot, got %v", err)
	}
	found := false
	for _, q := range de.Snapshot.Queued {
		if q.Src == 0 && q.Dst == 1 && q.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("queued pair 0->1 count 2 missing: %+v", de.Snapshot.Queued)
	}
}
