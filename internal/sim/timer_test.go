package sim

import (
	"testing"
	"time"
)

// timerDog gives quiescence-driven tests a fast watchdog: every expiry of
// a blocked virtual timer costs one full real-time window of cluster-wide
// inactivity, so the window must be short for tests that expire several.
func timerDog(c Cost) Cost {
	c.WatchdogTimeout = 40 * time.Millisecond
	return c
}

func TestRecvTimeoutDeliversEarlyMessage(t *testing.T) {
	// A message stamped below the deadline must be delivered with
	// accounting identical to a plain Recv.
	runWith := func(timed bool) (*Result, error) {
		return Run(2, unitCost, func(r *Rank) error {
			if r.ID() == 0 {
				r.Compute(1) // clock 1000·1? (unit cost) — just some advance
				r.Send(1, []float64{42})
				return nil
			}
			var data []float64
			if timed {
				var out RecvOutcome
				data, out = r.RecvTimeout(0, 1e12)
				if out != RecvOK {
					t.Errorf("expected RecvOK, got %v", out)
				}
			} else {
				data = r.Recv(0)
			}
			if data[0] != 42 {
				t.Errorf("payload %v, want [42]", data)
			}
			return nil
		})
	}
	timed, err := runWith(true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := runWith(false)
	if err != nil {
		t.Fatal(err)
	}
	if timed.PerRank[1] != plain.PerRank[1] {
		t.Errorf("timed recv stats %+v differ from plain recv %+v", timed.PerRank[1], plain.PerRank[1])
	}
}

func TestRecvTimeoutExpiresAtQuiescence(t *testing.T) {
	// Rank 1's timed receive has no message coming until it times out:
	// rank 0 is itself blocked receiving, so the cluster goes quiescent
	// and the watchdog must fire the timer instead of declaring deadlock.
	const rto = 3.5
	obs := newRecObs()
	cost := timerDog(zeroCost)
	cost.Observers = []Observer{obs}
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Recv(1)
			return nil
		}
		data, out := r.RecvTimeout(0, rto)
		if out != RecvTimedOut {
			t.Errorf("expected RecvTimedOut, got %v (data %v)", out, data)
		}
		r.Send(0, []float64{1})
		return nil
	})
	if err != nil {
		t.Fatalf("run must complete without watchdog intervention: %v", err)
	}
	if got := res.PerRank[1].WaitTime; got != rto {
		t.Errorf("expiry must account the full timeout as WaitTime: got %g, want %g", got, rto)
	}
	if got := res.PerRank[1].Time; got != rto {
		t.Errorf("clock must land exactly on the deadline: got %g, want %g", got, rto)
	}
	// Rank 0 inherits the post-timeout send stamp.
	if got := res.PerRank[0].WaitTime; got != rto {
		t.Errorf("rank 0 waits to the retransmit stamp: got %g, want %g", got, rto)
	}
	if len(obs.deadlocks) != 0 {
		t.Errorf("no deadlock events expected, got %d", len(obs.deadlocks))
	}
	fired, armed := 0, 0
	for _, ev := range obs.timers {
		if ev.Rank != 1 {
			continue
		}
		switch ev.Kind {
		case TimerArmed:
			armed++
		case TimerFired:
			fired++
			if ev.Deadline != rto || ev.Op != "recv" || ev.Peer != 0 {
				t.Errorf("fired event %+v, want deadline %g op recv peer 0", ev, rto)
			}
		}
	}
	if armed != 1 || fired != 1 {
		t.Errorf("want exactly one armed and one fired event for rank 1, got %d/%d", armed, fired)
	}
}

func TestRecvTimeoutLateStampPushesBack(t *testing.T) {
	// The sender's stamp is beyond the deadline, so the timed receive
	// expires — whatever the real-time interleaving — and the message
	// stays the FIFO head for the next plain Recv.
	cost := timerDog(zeroCost)
	cost.GammaT = 1 // 1 s per flop: Compute(5) stamps the send at 5
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(5)
			r.Send(1, []float64{7})
			return nil
		}
		data, out := r.RecvTimeout(0, 2)
		if out != RecvTimedOut {
			t.Errorf("stamp 5 must lose to deadline 2: got %v (data %v)", out, data)
		}
		if got := r.Clock(); got != 2 {
			t.Errorf("clock after expiry %g, want 2", got)
		}
		if got := r.Recv(0); got[0] != 7 {
			t.Errorf("pushed-back message must be the next head, got %v", got)
		}
		if got := r.Clock(); got != 5 {
			t.Errorf("clock after delivery %g, want the arrival stamp 5", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// WaitTime decomposes as 2 (expiry) + 3 (stamp 5 − clock 2).
	if got := res.PerRank[1].WaitTime; got != 5 {
		t.Errorf("rank 1 WaitTime %g, want 5", got)
	}
	if got := res.PerRank[1].WordsRecv; got != 1 {
		t.Errorf("exactly one word received, got %g", got)
	}
}

func TestRecvTimeoutPeerExited(t *testing.T) {
	_, err := Run(2, timerDog(zeroCost), func(r *Rank) error {
		if r.ID() == 0 {
			return nil // exits cleanly without sending
		}
		data, out := r.RecvTimeout(0, 1e6)
		if out != RecvPeerExited {
			t.Errorf("expected RecvPeerExited, got %v (data %v)", out, data)
		}
		exited, clean, perr := r.PeerExit(0)
		if !exited || !clean || perr != nil {
			t.Errorf("PeerExit(0) = %v/%v/%v, want true/true/nil", exited, clean, perr)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("a typed peer-exit outcome must not error the run: %v", err)
	}
}

func TestSendTimeoutExpiresOnFullBuffer(t *testing.T) {
	// Rank 0's second timed send can't enqueue (1-slot buffer, receiver
	// busy elsewhere); the cluster quiesces and the timer must expire the
	// send rather than deadlock the run.
	cost := timerDog(zeroCost)
	cost.ChanCap = 1
	res, err := Run(3, cost, func(r *Rank) error {
		switch r.ID() {
		case 0:
			if out := r.SendTimeout(1, []float64{1}, 2.5); out != SendOK {
				t.Errorf("first send must enqueue: %v", out)
			}
			if out := r.SendTimeout(1, []float64{2}, 2.5); out != SendTimedOut {
				t.Errorf("second send must time out: %v", out)
			}
			if got := r.Clock(); got != 2.5 {
				t.Errorf("clock after send expiry %g, want 2.5", got)
			}
			r.Send(2, []float64{9})
		case 1:
			if got := r.Recv(2); got[0] != 7 {
				t.Errorf("rank 1 first receives from 2, got %v", got)
			}
			if got := r.Recv(0); got[0] != 1 {
				t.Errorf("the enqueued copy is still delivered, got %v", got)
			}
		case 2:
			if got := r.Recv(0); got[0] != 9 {
				t.Errorf("rank 2 expects 9, got %v", got)
			}
			r.Send(1, []float64{7})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The timed-out copy is lost but paid for: two sends' worth of words.
	if got := res.PerRank[0].WordsSent; got != 3 {
		t.Errorf("rank 0 WordsSent %g, want 3 (two timed sends + one plain)", got)
	}
	if got := res.PerRank[1].WordsRecv; got != 2 {
		t.Errorf("rank 1 WordsRecv %g, want 2 (the lost copy never arrives)", got)
	}
}

func TestSendTimeoutPeerExited(t *testing.T) {
	// Buffer full and the receiver already gone: the timed send resolves
	// itself with SendPeerExited instead of waiting for the watchdog's
	// send-to-exited abort.
	cost := timerDog(zeroCost)
	cost.ChanCap = 1
	_, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 1 {
			return nil // exits without receiving
		}
		r.Send(1, []float64{1}) // fills the 1-slot buffer
		// Wait until the peer's exit is observable so the outcome is
		// fixed; PeerExit polls the same notification the send uses.
		for {
			if exited, _, _ := r.PeerExit(1); exited {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if out := r.SendTimeout(1, []float64{2}, 1e6); out != SendPeerExited {
			t.Errorf("expected SendPeerExited, got %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("timed send to an exited peer must not abort the run: %v", err)
	}
}

func TestWatchdogQuietDuringRetransmitBackoff(t *testing.T) {
	// Regression pin: a retransmit/backoff cycle — repeated timed
	// receives, each expiring at quiescence with a growing timeout — is
	// activity, and the watchdog must keep firing timers instead of ever
	// declaring the cluster deadlocked. Before timers, this program was
	// exactly the shape the watchdog killed: every rank blocked, nothing
	// moving, for many windows in a row.
	obs := newRecObs()
	cost := timerDog(zeroCost)
	cost.Observers = []Observer{obs}
	const attempts = 5
	res, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Recv(1) // blocked the whole time: no message until the cycle ends
			return nil
		}
		rto := 1.0
		for i := 0; i < attempts; i++ {
			if _, out := r.RecvTimeout(0, rto); out != RecvTimedOut {
				t.Errorf("attempt %d: expected RecvTimedOut, got %v", i, out)
			}
			rto *= 2 // exponential backoff
		}
		r.Send(0, []float64{1})
		return nil
	})
	if err != nil {
		t.Fatalf("backoff cycle must complete without watchdog intervention: %v", err)
	}
	if len(obs.deadlocks) != 0 {
		t.Fatalf("watchdog fired during a live backoff cycle: %d deadlock events", len(obs.deadlocks))
	}
	fired := 0
	for _, ev := range obs.timers {
		if ev.Kind == TimerFired {
			fired++
		}
	}
	if fired != attempts {
		t.Errorf("want %d fired timers, got %d", attempts, fired)
	}
	// 1+2+4+8+16 virtual seconds of backoff.
	if got := res.PerRank[1].WaitTime; got != 31 {
		t.Errorf("rank 1 WaitTime %g, want 31", got)
	}
}

func TestTimedRunsAreDeterministic(t *testing.T) {
	// A small stop-and-wait retransmit protocol over a lossy link: the
	// receiver nacks on expiry, the sender retransmits. Two runs must be
	// bitwise identical in every counter and in the timer event stream —
	// the property the single-fire-at-quiescence rule exists for.
	run := func() (*Result, []TimerEvent, error) {
		obs := newRecObs()
		cost := timerDog(zeroCost)
		cost.BetaT = 1e-3
		cost.AlphaT = 1e-2
		cost.Observers = []Observer{obs}
		cost.Faults = &FaultPlan{
			Seed:  7,
			Links: []LinkFault{{Src: 0, Dst: 1, DropProb: 0.45}, {Src: 2, Dst: 3, DropProb: 0.45}},
		}
		res, err := Run(4, cost, func(r *Rank) error {
			const rounds = 6
			switch r.ID() {
			case 0, 2:
				dst := r.ID() + 1
				for i := 0; i < rounds; i++ {
					r.Send(dst, []float64{float64(i)})
					for {
						ack := r.Recv(dst)
						if ack[0] == float64(i) {
							break // delivered
						}
						r.Send(dst, []float64{float64(i)}) // nacked: retransmit
					}
				}
			case 1, 3:
				src := r.ID() - 1
				for i := 0; i < rounds; i++ {
					for {
						data, out := r.RecvTimeout(src, 0.5)
						if out == RecvTimedOut {
							r.Send(src, []float64{-1}) // nack
							continue
						}
						if out != RecvOK {
							t.Errorf("rank %d round %d: outcome %v", r.ID(), i, out)
							return nil
						}
						if data[0] < float64(i) {
							continue // duplicate from a crossed retransmit: absorb
						}
						if data[0] != float64(i) {
							t.Errorf("rank %d round %d: payload %v", r.ID(), i, data)
							return nil
						}
						r.Send(src, []float64{float64(i)}) // ack
						break
					}
				}
			}
			return nil
		})
		var timers []TimerEvent
		timers = append(timers, obs.timers...)
		return res, timers, err
	}
	res1, tev1, err1 := run()
	res2, tev2, err2 := run()
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v / %v", err1, err2)
	}
	for id := range res1.PerRank {
		if res1.PerRank[id] != res2.PerRank[id] {
			t.Errorf("rank %d stats differ between runs:\n  %+v\n  %+v", id, res1.PerRank[id], res2.PerRank[id])
		}
	}
	if len(tev1) != len(tev2) {
		t.Fatalf("timer event counts differ: %d vs %d", len(tev1), len(tev2))
	}
	// Per-rank timer streams are ordered; compare them rank by rank (the
	// global interleaving across ranks is scheduler-dependent).
	perRank := func(evs []TimerEvent) map[int][]TimerEvent {
		m := map[int][]TimerEvent{}
		for _, ev := range evs {
			m[ev.Rank] = append(m[ev.Rank], ev)
		}
		return m
	}
	m1, m2 := perRank(tev1), perRank(tev2)
	for rank, evs := range m1 {
		if len(evs) != len(m2[rank]) {
			t.Errorf("rank %d timer event counts differ: %d vs %d", rank, len(evs), len(m2[rank]))
			continue
		}
		for i := range evs {
			if evs[i] != m2[rank][i] {
				t.Errorf("rank %d timer event %d differs: %+v vs %+v", rank, i, evs[i], m2[rank][i])
			}
		}
	}
}
