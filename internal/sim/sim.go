// Package sim provides a deterministic virtual-time distributed-memory
// runtime: the machine substrate on which the paper's algorithms execute.
//
// Each of p ranks runs as a goroutine executing the same SPMD function.
// Ranks exchange []float64 messages over per-pair FIFO channels. Every rank
// carries a virtual clock in seconds:
//
//   - computing f flops advances the clock by γt·f,
//   - sending k words advances the sender's clock by αt·⌈k/m⌉ + βt·k
//     (one latency per maximal message of m words),
//   - receiving waits: the receiver's clock becomes the maximum of its own
//     clock and the sender's clock at the moment the message left.
//
// With these semantics a fully overlapped exchange (every rank sends then
// receives, as in Cannon shifts) costs one αt + k·βt per step, matching the
// paper's timing model (Eq. 1); synchronization is carried by messages, as
// the paper assumes. Clock values depend only on the program's communication
// pattern, never on the Go scheduler, so simulated times are exactly
// reproducible.
//
// Per-rank counters record flops, words/messages sent and received, and the
// peak of an explicitly tracked memory allocation count; the core package
// prices these counters with the paper's energy model.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Cost holds the timing parameters the runtime uses to advance virtual
// clocks. Energy parameters are applied after the run by internal/core.
type Cost struct {
	// GammaT is seconds per flop.
	GammaT float64
	// BetaT is seconds per word.
	BetaT float64
	// AlphaT is seconds per message.
	AlphaT float64
	// MaxMsgWords is m, the largest message the network carries in one
	// latency; longer sends are charged ⌈k/m⌉ latencies. Zero means
	// unlimited.
	MaxMsgWords int
	// Links optionally replaces AlphaT/BetaT with per-pair values (torus
	// hop counts, intra- vs inter-node links). Nil means uniform links.
	Links LinkModel
	// ChargeReceiver switches to the conservative accounting where the
	// receiver also pays αt + k·βt instead of only waiting for the sender —
	// the DESIGN.md clock-semantics ablation. It doubles the communication
	// constant of symmetric exchanges but leaves every scaling shape
	// unchanged.
	ChargeReceiver bool
	// Trace records per-rank timeline segments (compute/send/wait/recv)
	// for critical-path and power-profile analysis; Result.Trace carries
	// them after the run.
	Trace bool
}

// linkParams returns the effective per-message latency and per-word time
// for a pair.
func (c Cost) linkParams(src, dst int) (alpha, beta float64) {
	if c.Links != nil {
		return c.Links.Latency(src, dst), c.Links.TimePerWord(src, dst)
	}
	return c.AlphaT, c.BetaT
}

// Stats are the quantities one rank accumulated during a run.
type Stats struct {
	// Flops is F, the floating-point operations executed.
	Flops float64
	// WordsSent and MsgsSent are W and S of the paper's per-processor model.
	WordsSent float64
	MsgsSent  float64
	// WordsRecv and MsgsRecv count the receiving side (the bounds of
	// Section III count words "sent and received").
	WordsRecv float64
	MsgsRecv  float64
	// PeakMemWords is the high-water mark of tracked allocations, the M of
	// the energy model.
	PeakMemWords float64
	// Time is the rank's final virtual clock in seconds.
	Time float64

	// ComputeTime, SendTime, RecvTime and WaitTime decompose the clock:
	// γt·F, the α/β cost of sends, the α/β cost of receives (only under
	// ChargeReceiver), and the idle time spent waiting for senders.
	// ComputeTime + SendTime + RecvTime + WaitTime == Time.
	ComputeTime float64
	SendTime    float64
	RecvTime    float64
	WaitTime    float64
}

type message struct {
	data    []float64
	arrival float64 // sender's virtual clock when the message left
}

// Cluster is a set of p ranks wired with per-pair FIFO channels.
type Cluster struct {
	p      int
	cost   Cost
	chans  [][]chan message // chans[src][dst]
	tracer *tracer
}

// DefaultChanCap is the per-pair channel buffer. Senders block (in real
// time, not virtual time) when a pair's buffer fills; virtual clocks are
// unaffected. The value is a compromise: large enough that no algorithm in
// this repository queues that many unreceived messages on one pair, small
// enough that a p-rank cluster's p² channels stay cheap to allocate.
const DefaultChanCap = 64

// NewCluster creates a cluster of p ranks with the given timing costs.
func NewCluster(p int, cost Cost) (*Cluster, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sim: cluster size must be positive, got %d", p)
	}
	if cost.GammaT < 0 || cost.BetaT < 0 || cost.AlphaT < 0 || cost.MaxMsgWords < 0 {
		return nil, fmt.Errorf("sim: negative cost parameters: %+v", cost)
	}
	c := &Cluster{p: p, cost: cost}
	if cost.Trace {
		c.tracer = &tracer{segments: make([][]Segment, p)}
	}
	c.chans = make([][]chan message, p)
	for src := 0; src < p; src++ {
		c.chans[src] = make([]chan message, p)
		for dst := 0; dst < p; dst++ {
			c.chans[src][dst] = make(chan message, DefaultChanCap)
		}
	}
	return c, nil
}

// P returns the number of ranks.
func (c *Cluster) P() int { return c.p }

// Rank is the per-goroutine handle an SPMD function uses to communicate,
// account compute, and track memory. A Rank must only be used from the
// goroutine it was handed to.
type Rank struct {
	cluster *Cluster
	id      int
	clock   float64
	stats   Stats
	curMem  float64
}

// ID returns the rank's index in [0, P).
func (r *Rank) ID() int { return r.id }

// P returns the cluster size.
func (r *Rank) P() int { return r.cluster.p }

// Clock returns the rank's current virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Stats returns a snapshot of the rank's counters with Time filled in.
func (r *Rank) Stats() Stats {
	s := r.stats
	s.Time = r.clock
	return s
}

// Compute accounts flops floating-point operations: the clock advances by
// γt·flops. The caller performs the actual arithmetic itself.
func (r *Rank) Compute(flops float64) {
	if flops < 0 {
		panic("sim: negative flop count")
	}
	r.stats.Flops += flops
	dt := r.cluster.cost.GammaT * flops
	r.stats.ComputeTime += dt
	r.record(Segment{Kind: SegCompute, Start: r.clock, End: r.clock + dt, Peer: -1})
	r.clock += dt
}

// messagesFor returns the number of network messages needed for k words.
func (c *Cluster) messagesFor(k int) float64 {
	if k == 0 {
		return 1 // a zero-word message still costs one latency
	}
	if c.cost.MaxMsgWords <= 0 {
		return 1
	}
	return math.Ceil(float64(k) / float64(c.cost.MaxMsgWords))
}

// Send transmits a copy of data to rank dst. The sender's clock advances by
// one latency per maximal message plus βt per word. Send never blocks in
// virtual time; it may block in real time if the pair's channel buffer is
// full. Sending to oneself is allowed and costs the same as any other send.
func (r *Rank) Send(dst int, data []float64) {
	if dst < 0 || dst >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d sending to invalid rank %d", r.id, dst))
	}
	k := len(data)
	msgs := r.cluster.messagesFor(k)
	r.stats.WordsSent += float64(k)
	r.stats.MsgsSent += msgs
	alpha, beta := r.cluster.cost.linkParams(r.id, dst)
	dt := alpha*msgs + beta*float64(k)
	r.stats.SendTime += dt
	r.record(Segment{Kind: SegSend, Start: r.clock, End: r.clock + dt, Peer: dst, Words: k, Msgs: msgs})
	r.clock += dt
	cp := make([]float64, k)
	copy(cp, data)
	r.cluster.chans[r.id][dst] <- message{data: cp, arrival: r.clock}
}

// Recv receives the next message from rank src, blocking until it arrives.
// The receiver's clock becomes max(own clock, sender's post-send clock).
func (r *Rank) Recv(src int) []float64 {
	if src < 0 || src >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d receiving from invalid rank %d", r.id, src))
	}
	msg, ok := <-r.cluster.chans[src][r.id]
	if !ok {
		panic(fmt.Sprintf("sim: rank %d receiving from rank %d, which exited without sending", r.id, src))
	}
	if msg.arrival > r.clock {
		r.stats.WaitTime += msg.arrival - r.clock
		r.record(Segment{Kind: SegWait, Start: r.clock, End: msg.arrival, Peer: src, Words: len(msg.data)})
		r.clock = msg.arrival
	}
	if r.cluster.cost.ChargeReceiver {
		alpha, beta := r.cluster.cost.linkParams(src, r.id)
		dt := alpha*r.cluster.messagesFor(len(msg.data)) + beta*float64(len(msg.data))
		r.stats.RecvTime += dt
		r.record(Segment{Kind: SegRecv, Start: r.clock, End: r.clock + dt, Peer: src, Words: len(msg.data)})
		r.clock += dt
	}
	r.stats.WordsRecv += float64(len(msg.data))
	r.stats.MsgsRecv++
	return msg.data
}

// SendRecv sends sendData to dst and receives from src, overlapping the two
// as the model allows: the send is posted first, so a symmetric exchange
// among all ranks costs a single αt + k·βt step.
func (r *Rank) SendRecv(dst int, sendData []float64, src int) []float64 {
	r.Send(dst, sendData)
	return r.Recv(src)
}

// Alloc records the allocation of words words of tracked memory and updates
// the peak. Algorithms call Alloc/Free around their main buffers so that the
// energy model's M reflects the algorithm's true footprint.
func (r *Rank) Alloc(words int) {
	if words < 0 {
		panic("sim: negative allocation")
	}
	r.curMem += float64(words)
	if r.curMem > r.stats.PeakMemWords {
		r.stats.PeakMemWords = r.curMem
	}
}

// Free records the release of words words of tracked memory.
func (r *Rank) Free(words int) {
	if words < 0 {
		panic("sim: negative free")
	}
	r.curMem -= float64(words)
	if r.curMem < 0 {
		panic(fmt.Sprintf("sim: rank %d freed more memory than allocated", r.id))
	}
}

// TrackedVec allocates a tracked []float64 of length n. The caller should
// Free(n) when the buffer's lifetime ends if it wants non-monotone
// footprints; otherwise the peak simply includes it.
func (r *Rank) TrackedVec(n int) []float64 {
	r.Alloc(n)
	return make([]float64, n)
}

// Result holds the outcome of a cluster run.
type Result struct {
	// PerRank has one Stats per rank, indexed by rank id.
	PerRank []Stats
	// Trace carries the per-rank timelines when Cost.Trace was set.
	Trace *Trace
}

// Time returns the simulated runtime: the maximum final clock over ranks.
func (res *Result) Time() float64 {
	t := 0.0
	for _, s := range res.PerRank {
		if s.Time > t {
			t = s.Time
		}
	}
	return t
}

// MaxStats returns the per-processor maxima of every counter — the
// quantities the paper's per-processor model prices (its F, W, S, M are
// "the counts on the busiest processor", since the machine is homogeneous
// and the algorithms balanced).
func (res *Result) MaxStats() Stats {
	var m Stats
	for _, s := range res.PerRank {
		m.Flops = math.Max(m.Flops, s.Flops)
		m.WordsSent = math.Max(m.WordsSent, s.WordsSent)
		m.MsgsSent = math.Max(m.MsgsSent, s.MsgsSent)
		m.WordsRecv = math.Max(m.WordsRecv, s.WordsRecv)
		m.MsgsRecv = math.Max(m.MsgsRecv, s.MsgsRecv)
		m.PeakMemWords = math.Max(m.PeakMemWords, s.PeakMemWords)
		m.Time = math.Max(m.Time, s.Time)
		m.ComputeTime = math.Max(m.ComputeTime, s.ComputeTime)
		m.SendTime = math.Max(m.SendTime, s.SendTime)
		m.RecvTime = math.Max(m.RecvTime, s.RecvTime)
		m.WaitTime = math.Max(m.WaitTime, s.WaitTime)
	}
	return m
}

// TotalStats returns counters summed over ranks (Time is the max).
func (res *Result) TotalStats() Stats {
	var t Stats
	for _, s := range res.PerRank {
		t.Flops += s.Flops
		t.WordsSent += s.WordsSent
		t.MsgsSent += s.MsgsSent
		t.WordsRecv += s.WordsRecv
		t.MsgsRecv += s.MsgsRecv
		t.PeakMemWords += s.PeakMemWords
		t.Time = math.Max(t.Time, s.Time)
		t.ComputeTime += s.ComputeTime
		t.SendTime += s.SendTime
		t.RecvTime += s.RecvTime
		t.WaitTime += s.WaitTime
	}
	return t
}

// Run executes fn on every rank of a fresh cluster and returns per-rank
// statistics. It returns the first error any rank reported; a panic inside
// fn is recovered and returned as an error naming the rank.
func Run(p int, cost Cost, fn func(r *Rank) error) (*Result, error) {
	c, err := NewCluster(p, cost)
	if err != nil {
		return nil, err
	}
	return c.Run(fn)
}

// Run executes fn on every rank. A Cluster must not be reused after Run:
// leftover messages from a failed run would corrupt a second one.
func (c *Cluster) Run(fn func(r *Rank) error) (*Result, error) {
	res := &Result{PerRank: make([]Stats, c.p)}
	if c.tracer != nil {
		res.Trace = &Trace{Segments: c.tracer.segments}
	}
	errs := make([]error, c.p)
	var wg sync.WaitGroup
	for id := 0; id < c.p; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{cluster: c, id: id}
			defer func() {
				if rec := recover(); rec != nil {
					errs[id] = fmt.Errorf("sim: rank %d panicked: %v", id, rec)
				}
				res.PerRank[id] = r.Stats()
				// Closing this rank's outgoing channels turns a peer's
				// unmatched Recv into a clean error instead of a deadlock;
				// already-buffered messages are still delivered first.
				for dst := 0; dst < c.p; dst++ {
					close(c.chans[id][dst])
				}
			}()
			errs[id] = fn(r)
		}(id)
	}
	wg.Wait()
	// Join every rank's error: a single failure usually cascades into
	// "peer exited" panics on other ranks, and the root cause must not be
	// masked by whichever rank id happens to come first.
	var all []error
	for id, err := range errs {
		if err != nil {
			all = append(all, fmt.Errorf("rank %d: %w", id, err))
		}
	}
	if len(all) > 0 {
		return res, errors.Join(all...)
	}
	return res, nil
}
