// Package sim provides a deterministic virtual-time distributed-memory
// runtime: the machine substrate on which the paper's algorithms execute.
//
// Each of p ranks runs as a goroutine executing the same SPMD function.
// Ranks exchange []float64 messages over per-pair FIFO queues, wired on
// demand as pairs first communicate (see mailbox.go) so clusters of 10k+
// ranks stay cheap to create. Every rank carries a virtual clock in seconds:
//
//   - computing f flops advances the clock by γt·f,
//   - sending k words advances the sender's clock by αt·⌈k/m⌉ + βt·k
//     (one latency per maximal message of m words),
//   - receiving waits: the receiver's clock becomes the maximum of its own
//     clock and the sender's clock at the moment the message left.
//
// With these semantics a fully overlapped exchange (every rank sends then
// receives, as in Cannon shifts) costs one αt + k·βt per step, matching the
// paper's timing model (Eq. 1); synchronization is carried by messages, as
// the paper assumes. Clock values depend only on the program's communication
// pattern, never on the Go scheduler, so simulated times are exactly
// reproducible.
//
// Per-rank counters record flops, words/messages sent and received, and the
// peak of an explicitly tracked memory allocation count; the core package
// prices these counters with the paper's energy model.
//
// The runtime is robust under failure: a seeded FaultPlan injects rank
// crashes, message drops/duplications/corruptions and degraded-link windows
// deterministically (keyed on rank, virtual clock and send count only), and
// a real-time deadlock watchdog converts hangs — mismatched point-to-point
// programs, sends to exited ranks, dropped messages — into diagnostic
// errors naming the blocked ranks. internal/resilience builds recovering
// algorithms on top of these hooks.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Cost holds the timing parameters the runtime uses to advance virtual
// clocks. Energy parameters are applied after the run by internal/core.
type Cost struct {
	// GammaT is seconds per flop.
	GammaT float64
	// BetaT is seconds per word.
	BetaT float64
	// AlphaT is seconds per message.
	AlphaT float64
	// MaxMsgWords is m, the largest message the network carries in one
	// latency; longer sends are charged ⌈k/m⌉ latencies. Zero means
	// unlimited.
	MaxMsgWords int
	// Links optionally replaces AlphaT/BetaT with per-pair values (torus
	// hop counts, intra- vs inter-node links). Nil means uniform links.
	Links LinkModel
	// ChargeReceiver switches to the conservative accounting where the
	// receiver also pays αt + k·βt instead of only waiting for the sender —
	// the DESIGN.md clock-semantics ablation. It doubles the communication
	// constant of symmetric exchanges but leaves every scaling shape
	// unchanged.
	ChargeReceiver bool
	// Trace records per-rank timeline segments (compute/send/wait/recv)
	// for critical-path and power-profile analysis; Result.Trace carries
	// them after the run.
	Trace bool
	// Observers subscribes event-bus listeners to the run: every timeline
	// segment, phase mark, fault, crash and deadlock is delivered as it
	// happens (see Observer for the concurrency contract). The built-in
	// tracer is appended as one more subscriber when Trace is set. An
	// empty list costs nothing on the hot path.
	Observers []Observer
	// ChanCap overrides DefaultChanCap, the per-pair channel buffer in
	// messages. Zero means the default; negative values are rejected.
	ChanCap int
	// Wiring selects how per-pair queues are allocated: sparse on-demand
	// mailboxes (the default, memory ∝ active pairs) or the dense p×p
	// matrix (memory ∝ p², kept for comparison benchmarks). The mode never
	// affects clocks or counters — see mailbox.go.
	Wiring Wiring
	// Runtime selects the execution backend: one live goroutine per rank
	// under the Go scheduler (the default) or the event engine, which
	// schedules ranks as continuations on a sharded virtual-time run queue
	// and reaches p ≥ 10⁶. Like Wiring, the backend never affects clocks,
	// counters, fault decisions or per-rank observer streams — see
	// event.go.
	Runtime Runtime
	// Workers bounds how many ranks the event engine lets run
	// concurrently (RuntimeEvent only). Zero means GOMAXPROCS; negative
	// values are rejected.
	Workers int
	// Faults optionally injects deterministic failures (crashes, message
	// drops/duplications/corruptions, degraded links); nil runs fault-free.
	Faults *FaultPlan
	// WatchdogTimeout is the REAL-time window of cluster-wide inactivity
	// after which the deadlock watchdog aborts blocked ranks with a
	// diagnostic error instead of letting the run hang (mismatched
	// point-to-point programs, drops, sends to exited ranks). Zero means
	// DefaultWatchdogTimeout; negative disables the watchdog.
	WatchdogTimeout time.Duration
	// Context optionally bounds the run in REAL time: when it is cancelled
	// (deadline, explicit cancel, client hang-up) every rank is aborted at
	// its next instrumented operation and blocked ranks are released
	// immediately, so an abandoned run stops consuming CPU. Run collapses
	// the per-rank aborts into one error wrapping context.Cause, so
	// errors.Is(err, context.Canceled) or context.DeadlineExceeded reports
	// why. Nil leaves the run unbounded. See cancel.go.
	Context context.Context
}

// linkParams returns the effective per-message latency and per-word time
// for a pair.
func (c Cost) linkParams(src, dst int) (alpha, beta float64) {
	if c.Links != nil {
		return c.Links.Latency(src, dst), c.Links.TimePerWord(src, dst)
	}
	return c.AlphaT, c.BetaT
}

// Stats are the quantities one rank accumulated during a run.
type Stats struct {
	// Flops is F, the floating-point operations executed.
	Flops float64
	// WordsSent and MsgsSent are W and S of the paper's per-processor model.
	WordsSent float64
	MsgsSent  float64
	// WordsRecv and MsgsRecv count the receiving side (the bounds of
	// Section III count words "sent and received"). MsgsRecv counts the
	// same ⌈k/m⌉ network messages per transfer as MsgsSent, so the two
	// sides of every pair agree for any MaxMsgWords.
	WordsRecv float64
	MsgsRecv  float64
	// PeakMemWords is the high-water mark of tracked allocations, the M of
	// the energy model.
	PeakMemWords float64
	// Time is the rank's final virtual clock in seconds.
	Time float64

	// ComputeTime, SendTime, RecvTime and WaitTime decompose the clock:
	// γt·F, the α/β cost of sends, the α/β cost of receives (only under
	// ChargeReceiver), and the idle time spent waiting for senders.
	// ComputeTime + SendTime + RecvTime + WaitTime == Time.
	ComputeTime float64
	SendTime    float64
	RecvTime    float64
	WaitTime    float64
}

type message struct {
	data    []float64
	arrival float64 // sender's virtual clock when the message left
	// alphaF and betaF are the degraded-link factors the sender applied
	// (1 when no degradation window matched). Carrying them with the
	// message lets a ChargeReceiver receive price the link with exactly
	// the factors the send paid, keeping both ends of one transfer
	// consistent even when the receiver's clock has left the window.
	alphaF, betaF float64
}

// exitStatus records how a rank left the run, so a peer's failed Recv can
// name the root cause instead of a generic "exited without sending".
type exitStatus int

const (
	exitRunning exitStatus = iota
	exitClean              // fn returned nil
	exitFailed             // fn returned an error
	exitPanicked
	exitCrashed // injected hard crash
	exitAborted // watchdog abort
)

type exitInfo struct {
	status exitStatus
	err    error
}

// Cluster is a set of p ranks wired with per-pair FIFO queues, created on
// demand (sparse wiring, the default) or all up front (dense wiring); see
// mailbox.go.
type Cluster struct {
	p      int
	cost   Cost
	bufCap int
	mail   []mailbox // sparse wiring: mail[dst].queues[src]
	dense  [][]pairQ // dense wiring: dense[src][dst]; nil when sparse
	tracer *tracer
	// obs lists the event-bus subscribers (Cost.Observers plus the tracer
	// when tracing); lastSegs publishes each rank's most recent timeline
	// segment at blocking transitions, for deadlock snapshots.
	obs      []Observer
	lastSegs []atomic.Pointer[Segment]

	// states holds the packed per-rank blocking state the watchdog
	// samples (see watchdog.go); aborts/abortErr release blocked ranks
	// with a diagnostic; exits records each rank's exit status, written
	// before its exitCh closes (the close happens-before a peer's failed
	// receive, so reads after the exit notification are race-free).
	states   []atomic.Uint64
	aborts   []chan struct{}
	abortErr []*DeadlockError
	exits    []exitInfo
	// exitCh[id] is closed when rank id exits, releasing peers blocked in
	// Recv on it. Messages the rank sent before exiting are still queued
	// and are drained before a receive is declared failed.
	exitCh []chan struct{}
	// timerDeadline[id] publishes rank id's armed virtual deadline
	// (Float64bits; zero means none) and timerCh[id] carries the
	// watchdog's fire token when the deadline expires at quiescence —
	// the virtual-timer machinery of RecvTimeout/SendTimeout (timer.go).
	timerDeadline []atomic.Uint64
	timerCh       []chan struct{}

	// cancelCh is closed — after cancelCause is written and cancelled set —
	// when Cost.Context is cancelled, waking every blocked rank; nil when
	// the run has no context. See cancel.go.
	cancelCh    chan struct{}
	cancelled   atomic.Bool
	cancelCause error

	// eng is the event engine driving the run under RuntimeEvent; nil
	// under the goroutine backend. Blocking operations branch on it to
	// park cooperatively instead of blocking their goroutine. See
	// event.go.
	eng *eventEngine
}

// DefaultChanCap is the per-pair queue buffer in messages (override per run
// with Cost.ChanCap). Senders block (in real time, not virtual time) when a
// pair's buffer fills; virtual clocks are unaffected, and a send that can
// never complete — the receiver already exited, or the cluster is
// deadlocked — is aborted by the watchdog with a diagnostic error. The
// value is a compromise: large enough that no algorithm in this repository
// queues that many unreceived messages on one pair, small enough that a
// queue (whose buffer a Go channel allocates eagerly) stays cheap to wire —
// large-p runs that create many pairs can lower it further.
const DefaultChanCap = 64

// NewCluster creates a cluster of p ranks with the given timing costs.
func NewCluster(p int, cost Cost) (*Cluster, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sim: cluster size must be positive, got %d", p)
	}
	if cost.GammaT < 0 || cost.BetaT < 0 || cost.AlphaT < 0 || cost.MaxMsgWords < 0 {
		return nil, fmt.Errorf("sim: negative cost parameters: %+v", cost)
	}
	if cost.ChanCap < 0 {
		return nil, fmt.Errorf("sim: negative channel capacity %d", cost.ChanCap)
	}
	if cost.Wiring != WiringSparse && cost.Wiring != WiringDense {
		return nil, fmt.Errorf("sim: unknown wiring mode %d", cost.Wiring)
	}
	if cost.Runtime != RuntimeGoroutine && cost.Runtime != RuntimeEvent {
		return nil, fmt.Errorf("sim: unknown runtime mode %d", cost.Runtime)
	}
	if cost.Workers < 0 {
		return nil, fmt.Errorf("sim: negative worker count %d", cost.Workers)
	}
	if cost.Faults != nil {
		if err := cost.Faults.Validate(p); err != nil {
			return nil, err
		}
	}
	c := &Cluster{p: p, cost: cost}
	c.obs = append(c.obs, cost.Observers...)
	if cost.Trace {
		c.tracer = &tracer{segments: make([][]Segment, p), phases: make([][]PhaseMark, p)}
		c.obs = append(c.obs, c.tracer)
	}
	c.lastSegs = make([]atomic.Pointer[Segment], p)
	c.bufCap = cost.ChanCap
	if c.bufCap == 0 {
		c.bufCap = DefaultChanCap
	}
	if cost.Wiring == WiringDense {
		c.dense = make([][]pairQ, p)
		for src := 0; src < p; src++ {
			c.dense[src] = make([]pairQ, p)
			for dst := 0; dst < p; dst++ {
				q := &c.dense[src][dst]
				if cost.Runtime == RuntimeEvent {
					q.rg.init(c.bufCap)
				} else {
					q.ch = make(chan message, c.bufCap)
				}
			}
		}
	} else {
		c.mail = make([]mailbox, p)
	}
	c.states = make([]atomic.Uint64, p)
	c.aborts = make([]chan struct{}, p)
	c.abortErr = make([]*DeadlockError, p)
	c.exits = make([]exitInfo, p)
	c.exitCh = make([]chan struct{}, p)
	c.timerDeadline = make([]atomic.Uint64, p)
	c.timerCh = make([]chan struct{}, p)
	for i := range c.aborts {
		c.exitCh[i] = make(chan struct{})
		if cost.Runtime == RuntimeEvent {
			// The event engine releases blocked ranks through its own
			// resume channels and never arms the watchdog, so the per-rank
			// abort and timer-fire channels would be dead weight — at
			// p = 10⁶ that is millions of allocations saved.
			continue
		}
		c.aborts[i] = make(chan struct{})
		c.timerCh[i] = make(chan struct{}, 1)
	}
	if cost.Context != nil {
		c.cancelCh = make(chan struct{})
	}
	return c, nil
}

// P returns the number of ranks.
func (c *Cluster) P() int { return c.p }

// Rank is the per-goroutine handle an SPMD function uses to communicate,
// account compute, and track memory. A Rank must only be used from the
// goroutine it was handed to.
type Rank struct {
	cluster *Cluster
	id      int
	clock   float64
	stats   Stats
	curMem  float64

	// out and in memoize this rank's per-peer queue handles under sparse
	// wiring, fronted by two-slot MRU caches for the alternating-peer hot
	// loops (see mailbox.go); only this goroutine touches them.
	out  map[int]*pairQ
	in   map[int]*pairQ
	outC pairCache
	inC  pairCache

	// stateSeq shadows the watchdog state word's sequence counter (only
	// this goroutine writes it); sendCount keys fault-plan decisions;
	// crashDone/crashPending implement the injected-crash lifecycle.
	stateSeq     uint32
	sendCount    int
	crashDone    bool
	crashPending bool

	// computeOps counts Compute calls under the event engine; every 256th
	// call checks whether an earlier-clock rank is waiting for the worker
	// slot (see eventEngine.yieldIfBehind). noYield suppresses the check
	// while a conducted collective drives this rank's pricing from the
	// conductor's goroutine (see comm_ff.go).
	computeOps uint32
	noYield    bool

	// lastSeg is the rank's most recent timeline segment (goroutine-local;
	// published to the cluster's lastSegs at blocking transitions so
	// deadlock snapshots can report what each rank last did).
	lastSeg Segment
	hasSeg  bool

	// pushback holds, per peer, a message whose arrival stamp lost to a
	// RecvTimeout deadline: it stays the FIFO head for the pair and is
	// returned by the next receive (timer.go). At most one per peer.
	pushback map[int]message

	// ffSeq counts this rank's collective calls per communicator
	// membership — the rendezvous sequence number of the event engine's
	// conducted collectives (comm_ff.go). Rank-local: every member counts
	// its own calls, and the MPI ordering contract keeps the counts
	// aligned. A rank belongs to a handful of communicators (row, column,
	// fiber, world), so a linearly-scanned slice beats hashing the
	// membership key on every collective.
	ffSeq []ffSeqEntry
}

// ffSeqEntry is one membership's collective-call counter (see Rank.ffSeq).
type ffSeqEntry struct {
	memb ffMemb
	seq  int
}

// ID returns the rank's index in [0, P).
func (r *Rank) ID() int { return r.id }

// P returns the cluster size.
func (r *Rank) P() int { return r.cluster.p }

// Clock returns the rank's current virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Stats returns a snapshot of the rank's counters with Time filled in.
func (r *Rank) Stats() Stats {
	s := r.stats
	s.Time = r.clock
	return s
}

// Compute accounts flops floating-point operations: the clock advances by
// γt·flops. The caller performs the actual arithmetic itself.
func (r *Rank) Compute(flops float64) {
	if flops < 0 {
		panic("sim: negative flop count")
	}
	r.crashCheck()
	r.stats.Flops += flops
	dt := r.cluster.cost.GammaT * flops
	r.stats.ComputeTime += dt
	r.emit(Segment{Kind: SegCompute, Start: r.clock, End: r.clock + dt, Peer: -1, Flops: flops})
	r.clock += dt
	if e := r.cluster.eng; e != nil && !r.noYield {
		if r.computeOps++; r.computeOps&255 == 0 {
			e.yieldIfBehind(r)
		}
	}
}

// messagesFor returns the number of network messages needed for k words.
func (c *Cluster) messagesFor(k int) float64 {
	if k == 0 {
		return 1 // a zero-word message still costs one latency
	}
	if c.cost.MaxMsgWords <= 0 {
		return 1
	}
	return math.Ceil(float64(k) / float64(c.cost.MaxMsgWords))
}

// Send transmits a copy of data to rank dst. The sender's clock advances by
// one latency per maximal message plus βt per word. Send never blocks in
// virtual time; it may block in real time if the pair's channel buffer is
// full. Sending to oneself is allowed and costs the same as any other send.
func (r *Rank) Send(dst int, data []float64) {
	if dst < 0 || dst >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d sending to invalid rank %d", r.id, dst))
	}
	r.crashCheck()
	if r.cluster.cost.Faults == nil {
		r.deliver(dst, r.sendPriced(dst, data))
		return
	}
	k := len(data)
	msgs := r.cluster.messagesFor(k)
	r.stats.WordsSent += float64(k)
	r.stats.MsgsSent += msgs
	alpha, beta := r.cluster.cost.linkParams(r.id, dst)
	af, bf := 1.0, 1.0
	fp := r.cluster.cost.Faults
	if fp != nil {
		af, bf = fp.degradeFactors(r.id, dst, r.clock)
		alpha *= af
		beta *= bf
	}
	dt := alpha*msgs + beta*float64(k)
	r.stats.SendTime += dt
	start := r.clock
	r.emit(Segment{Kind: SegSend, Start: start, End: start + dt, Peer: dst, Words: k, Msgs: msgs})
	r.clock += dt
	cp := make([]float64, k)
	copy(cp, data)
	seq := r.sendCount
	r.sendCount++
	if fp != nil {
		if (af != 1 || bf != 1) && len(r.cluster.obs) > 0 {
			r.emitFault(FaultEvent{
				Kind: FaultDegraded, Src: r.id, Dst: dst, Seq: seq,
				Time: start, Words: k, AlphaFactor: af, BetaFactor: bf,
			})
		}
		drop, dup, corrupt, dupCorrupt := fp.messageFate(r.id, dst, seq, r.clock)
		if len(r.cluster.obs) > 0 {
			if corrupt && k > 0 {
				r.emitFault(FaultEvent{Kind: FaultCorrupt, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k, Copy: copyPrimary})
			}
			if dup {
				r.emitFault(FaultEvent{Kind: FaultDup, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k})
				if dupCorrupt && k > 0 {
					r.emitFault(FaultEvent{Kind: FaultCorrupt, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k, Copy: copyDup})
				}
			}
			if drop {
				r.emitFault(FaultEvent{Kind: FaultDrop, Src: r.id, Dst: dst, Seq: seq, Time: r.clock, Words: k})
			}
		}
		// The duplicate is its own copy of the clean payload with an
		// independent corruption fate (keyed on the copy index), so a
		// corrupt+dup send can deliver one clean and one corrupted copy.
		// It also takes its own route through the network: a drop loses
		// only the primary, so drop+dup still delivers the duplicate —
		// which is what lets the timer-free resilience protocols survive
		// lossy links that duplicate traffic.
		if dup {
			extra := make([]float64, k)
			copy(extra, data)
			if dupCorrupt && k > 0 {
				extra[fp.corruptIndex(r.id, dst, seq, copyDup, k)] += 1.0
			}
			r.deliver(dst, message{data: extra, arrival: r.clock, alphaF: af, betaF: bf})
		}
		if corrupt && k > 0 {
			cp[fp.corruptIndex(r.id, dst, seq, copyPrimary, k)] += 1.0
		}
		if drop {
			return // the sender has paid; the network loses the primary copy
		}
	}
	r.deliver(dst, message{data: cp, arrival: r.clock, alphaF: af, betaF: bf})
}

// sendPriced prices a fault-free send exactly like Send's body — counters,
// link parameters, SegSend emission, clock advance, payload copy, send
// sequence — and returns the message ready to enqueue. It is Send's
// fault-free core, shared with the event engine's conducted collectives
// (comm_ff.go) so fast-forwarded sends are priced by the very same code.
func (r *Rank) sendPriced(dst int, data []float64) message {
	m := r.sendPricedShared(dst, data)
	cp := make([]float64, len(data))
	copy(cp, data)
	m.data = cp
	return m
}

// sendPricedShared is sendPriced without the defensive payload copy, for
// conducted collectives (comm_ff.go) whose receiver provably does not
// retain the buffer past the conduct: pricing is identical, the copy is
// the only difference, and a copy is invisible to the Result.
func (r *Rank) sendPricedShared(dst int, data []float64) message {
	k := len(data)
	msgs := r.cluster.messagesFor(k)
	r.stats.WordsSent += float64(k)
	r.stats.MsgsSent += msgs
	alpha, beta := r.cluster.cost.linkParams(r.id, dst)
	dt := alpha*msgs + beta*float64(k)
	r.stats.SendTime += dt
	start := r.clock
	r.emit(Segment{Kind: SegSend, Start: start, End: start + dt, Peer: dst, Words: k, Msgs: msgs})
	r.clock += dt
	r.sendCount++
	return message{data: data, arrival: r.clock, alphaF: 1, betaF: 1}
}

// sendOwned is Send for callers that surrender the buffer (ShiftOwned):
// identical checks and pricing, minus the defensive copy. Fault-plan runs
// take the full Send path — degradation rewrites the message anyway, and
// resilience, not throughput, is what those runs measure.
func (r *Rank) sendOwned(dst int, data []float64) {
	if r.cluster.cost.Faults != nil {
		r.Send(dst, data)
		return
	}
	if dst < 0 || dst >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d sending to invalid rank %d", r.id, dst))
	}
	r.crashCheck()
	r.deliver(dst, r.sendPricedShared(dst, data))
}

// deliver enqueues a message on the pair's queue. The fast path never
// blocks; when the buffer is full the wait is published to the watchdog,
// which aborts the send if it can never complete (deadlock or exited peer).
// Under the event engine the rank parks instead of blocking its goroutine.
func (r *Rank) deliver(dst int, m message) {
	if e := r.cluster.eng; e != nil {
		e.deliverEvent(r, dst, m)
		return
	}
	ch := r.queueTo(dst).ch
	select {
	case ch <- m:
		return
	default:
	}
	r.setState(opBlockedSend, dst)
	select {
	case ch <- m:
		r.setState(opRunning, 0)
	case <-r.cluster.cancelCh:
		panic(cancelPanic{})
	case <-r.cluster.aborts[r.id]:
		panic(abortPanic{err: r.cluster.abortErr[r.id]})
	}
}

// Recv receives the next message from rank src, blocking until it arrives.
// The receiver's clock becomes max(own clock, sender's post-send clock).
func (r *Rank) Recv(src int) []float64 {
	if src < 0 || src >= r.cluster.p {
		panic(fmt.Sprintf("sim: rank %d receiving from invalid rank %d", r.id, src))
	}
	r.crashCheck()
	// A message pushed back by an expired RecvTimeout stays the FIFO head.
	if msg, ok := r.takePushback(src); ok {
		return r.finishRecv(src, msg)
	}
	var msg message
	ok := true
	if e := r.cluster.eng; e != nil {
		msg, ok = e.recvEvent(r, src)
		return r.finishRecvOrFail(src, msg, ok)
	}
	ch := r.queueFrom(src).ch
	select {
	case msg = <-ch:
	default:
		// Nothing buffered: publish the wait so the watchdog can see it.
		r.setState(opBlockedRecv, src)
		select {
		case msg = <-ch:
			r.setState(opRunning, 0)
		case <-r.cluster.exitCh[src]:
			// The peer exited. Everything it ever sent was enqueued
			// before its exit notification, so drain the queue once
			// more before declaring the receive failed.
			select {
			case msg = <-ch:
				r.setState(opRunning, 0)
			default:
				ok = false
			}
		case <-r.cluster.cancelCh:
			panic(cancelPanic{})
		case <-r.cluster.aborts[r.id]:
			panic(abortPanic{err: r.cluster.abortErr[r.id]})
		}
	}
	return r.finishRecvOrFail(src, msg, ok)
}

// finishRecvOrFail completes a receive: prices the message in hand, or —
// when the peer exited with nothing further queued (ok false) — panics
// naming the root cause. The exit notification happens-before the failed
// receive observing it, so the peer's exit record is safe to read. Shared
// by both backends' Recv paths.
func (r *Rank) finishRecvOrFail(src int, msg message, ok bool) []float64 {
	if !ok {
		switch ei := r.cluster.exits[src]; ei.status {
		case exitClean:
			panic(fmt.Sprintf("sim: rank %d receiving from rank %d, which exited without sending (clean exit; mismatched communication pattern?)", r.id, src))
		case exitCrashed:
			panic(fmt.Sprintf("sim: rank %d receiving from rank %d, which crashed (root cause: %v)", r.id, src, ei.err))
		default:
			panic(fmt.Sprintf("sim: rank %d receiving from rank %d, which failed (cascade; root cause: %v)", r.id, src, ei.err))
		}
	}
	return r.finishRecv(src, msg)
}

// finishRecv prices and accounts a message in hand: the wait to its
// arrival stamp, the ChargeReceiver α/β cost, and the receive counters.
// Shared by Recv and RecvTimeout so both deliver identically.
func (r *Rank) finishRecv(src int, msg message) []float64 {
	if msg.arrival > r.clock {
		r.stats.WaitTime += msg.arrival - r.clock
		r.emit(Segment{Kind: SegWait, Start: r.clock, End: msg.arrival, Peer: src, Words: len(msg.data)})
		r.clock = msg.arrival
	}
	msgs := r.cluster.messagesFor(len(msg.data))
	if r.cluster.cost.ChargeReceiver {
		// Price the receive with the same per-link parameters and
		// degraded-window factors the send paid (carried in the
		// message), so both ends of one transfer always agree.
		alpha, beta := r.cluster.cost.linkParams(src, r.id)
		alpha *= msg.alphaF
		beta *= msg.betaF
		dt := alpha*msgs + beta*float64(len(msg.data))
		r.stats.RecvTime += dt
		r.emit(Segment{Kind: SegRecv, Start: r.clock, End: r.clock + dt, Peer: src, Words: len(msg.data), Msgs: msgs})
		r.clock += dt
	}
	// The receive side counts the same ⌈k/m⌉ network messages the send
	// side was charged, so the per-pair sent/received counters agree for
	// every MaxMsgWords.
	r.stats.WordsRecv += float64(len(msg.data))
	r.stats.MsgsRecv += msgs
	return msg.data
}

// SendRecv sends sendData to dst and receives from src, overlapping the two
// as the model allows: the send is posted first, so a symmetric exchange
// among all ranks costs a single αt + k·βt step.
func (r *Rank) SendRecv(dst int, sendData []float64, src int) []float64 {
	r.Send(dst, sendData)
	return r.Recv(src)
}

// Alloc records the allocation of words words of tracked memory and updates
// the peak. Algorithms call Alloc/Free around their main buffers so that the
// energy model's M reflects the algorithm's true footprint.
func (r *Rank) Alloc(words int) {
	if words < 0 {
		panic("sim: negative allocation")
	}
	r.curMem += float64(words)
	if r.curMem > r.stats.PeakMemWords {
		r.stats.PeakMemWords = r.curMem
	}
}

// Free records the release of words words of tracked memory.
func (r *Rank) Free(words int) {
	if words < 0 {
		panic("sim: negative free")
	}
	r.curMem -= float64(words)
	if r.curMem < 0 {
		panic(fmt.Sprintf("sim: rank %d freed more memory than allocated", r.id))
	}
}

// TrackedVec allocates a tracked []float64 of length n. The caller should
// Free(n) when the buffer's lifetime ends if it wants non-monotone
// footprints; otherwise the peak simply includes it.
func (r *Rank) TrackedVec(n int) []float64 {
	r.Alloc(n)
	return make([]float64, n)
}

// Result holds the outcome of a cluster run.
type Result struct {
	// PerRank has one Stats per rank, indexed by rank id.
	PerRank []Stats
	// ActivePairs is the number of directed rank pairs that were wired:
	// the pairs actually communicated over under sparse wiring, p² under
	// dense. It is a runtime-footprint metric, not part of the simulated
	// machine model.
	ActivePairs int
	// Trace carries the per-rank timelines when Cost.Trace was set.
	Trace *Trace
}

// Time returns the simulated runtime: the maximum final clock over ranks.
func (res *Result) Time() float64 {
	t := 0.0
	for _, s := range res.PerRank {
		if s.Time > t {
			t = s.Time
		}
	}
	return t
}

// MaxStats returns the per-processor maxima of every counter — the
// quantities the paper's per-processor model prices (its F, W, S, M are
// "the counts on the busiest processor", since the machine is homogeneous
// and the algorithms balanced).
func (res *Result) MaxStats() Stats {
	var m Stats
	for _, s := range res.PerRank {
		m.Flops = math.Max(m.Flops, s.Flops)
		m.WordsSent = math.Max(m.WordsSent, s.WordsSent)
		m.MsgsSent = math.Max(m.MsgsSent, s.MsgsSent)
		m.WordsRecv = math.Max(m.WordsRecv, s.WordsRecv)
		m.MsgsRecv = math.Max(m.MsgsRecv, s.MsgsRecv)
		m.PeakMemWords = math.Max(m.PeakMemWords, s.PeakMemWords)
		m.Time = math.Max(m.Time, s.Time)
		m.ComputeTime = math.Max(m.ComputeTime, s.ComputeTime)
		m.SendTime = math.Max(m.SendTime, s.SendTime)
		m.RecvTime = math.Max(m.RecvTime, s.RecvTime)
		m.WaitTime = math.Max(m.WaitTime, s.WaitTime)
	}
	return m
}

// TotalStats returns counters summed over ranks (Time is the max).
func (res *Result) TotalStats() Stats {
	var t Stats
	for _, s := range res.PerRank {
		t.Flops += s.Flops
		t.WordsSent += s.WordsSent
		t.MsgsSent += s.MsgsSent
		t.WordsRecv += s.WordsRecv
		t.MsgsRecv += s.MsgsRecv
		t.PeakMemWords += s.PeakMemWords
		t.Time = math.Max(t.Time, s.Time)
		t.ComputeTime += s.ComputeTime
		t.SendTime += s.SendTime
		t.RecvTime += s.RecvTime
		t.WaitTime += s.WaitTime
	}
	return t
}

// Run executes fn on every rank of a fresh cluster and returns per-rank
// statistics. It returns the first error any rank reported; a panic inside
// fn is recovered and returned as an error naming the rank.
func Run(p int, cost Cost, fn func(r *Rank) error) (*Result, error) {
	c, err := NewCluster(p, cost)
	if err != nil {
		return nil, err
	}
	return c.Run(fn)
}

// Run executes fn on every rank. A Cluster must not be reused after Run:
// leftover messages from a failed run would corrupt a second one.
func (c *Cluster) Run(fn func(r *Rank) error) (*Result, error) {
	if c.cost.Runtime == RuntimeEvent {
		return c.runEvent(fn)
	}
	res := &Result{PerRank: make([]Stats, c.p)}
	if c.tracer != nil {
		res.Trace = &Trace{Segments: c.tracer.segments, Phases: c.tracer.phases}
	}
	errs := make([]error, c.p)
	stop := make(chan struct{})
	if c.cost.WatchdogTimeout >= 0 {
		timeout := c.cost.WatchdogTimeout
		if timeout == 0 {
			timeout = DefaultWatchdogTimeout
		}
		go c.watch(stop, timeout)
	}
	if ctx := c.cost.Context; ctx != nil {
		watchDone := make(chan struct{})
		go c.watchContext(ctx, watchDone)
		defer close(watchDone)
	}
	var wg sync.WaitGroup
	for id := 0; id < c.p; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{cluster: c, id: id}
			defer func() {
				status, err := c.classifyRankExit(recover(), id, errs[id])
				errs[id] = err
				res.PerRank[id] = r.Stats()
				// Record how this rank left (read by peers after they
				// observe the exit notification) and tell the watchdog
				// it is gone, then close the exit channel: a peer's
				// unmatched Recv becomes a clean error instead of a
				// deadlock; already-queued messages are delivered first.
				c.exits[id] = exitInfo{status: status, err: errs[id]}
				r.setState(opExited, 0)
				close(c.exitCh[id])
			}()
			errs[id] = fn(r)
		}(id)
	}
	wg.Wait()
	close(stop)
	res.ActivePairs = c.ActivePairs()
	return res, joinRunErrors(c, errs)
}

// classifyRankExit maps a recovered panic (or fn's returned error) to the
// rank's exit status and error, shared by both backends' per-rank
// wrappers.
func (c *Cluster) classifyRankExit(rec any, id int, fnErr error) (exitStatus, error) {
	if rec == nil {
		if fnErr != nil {
			return exitFailed, fnErr
		}
		return exitClean, nil
	}
	switch p := rec.(type) {
	case crashPanic:
		return exitCrashed, p.err
	case abortPanic:
		return exitAborted, p.err
	case cancelPanic:
		return exitAborted, &CancelledError{Rank: id, Cause: c.cancelCause}
	default:
		if perr, ok := rec.(error); ok {
			// Keep typed error panics (e.g. a protocol layer's overflow
			// error) reachable via errors.As after the recover.
			return exitPanicked, fmt.Errorf("sim: rank %d panicked: %w", id, perr)
		}
		return exitPanicked, fmt.Errorf("sim: rank %d panicked: %v", id, rec)
	}
}

// joinRunErrors joins every rank's error into the run-level error, shared
// by both backends. A single failure usually cascades into "peer exited"
// panics on other ranks, and the root cause must not be masked by
// whichever rank id happens to come first. Cancellation aborts EVERY rank
// with the same cause, so those are collapsed into one run-level error
// instead of p copies — unless some rank failed for a real reason first,
// which then takes precedence.
func joinRunErrors(c *Cluster, errs []error) error {
	var all []error
	cancelledRanks := 0
	for id, err := range errs {
		if err == nil {
			continue
		}
		var ce *CancelledError
		if errors.As(err, &ce) {
			cancelledRanks++
			continue
		}
		all = append(all, fmt.Errorf("rank %d: %w", id, err))
	}
	if len(all) > 0 {
		return errors.Join(all...)
	}
	if cancelledRanks > 0 {
		return fmt.Errorf("sim: run cancelled (%d of %d ranks aborted): %w", cancelledRanks, c.p, c.cancelCause)
	}
	return nil
}
