package sim

import "testing"

// BenchmarkRingShift measures the runtime's real (wall-clock) overhead per
// simulated message — the metric that bounds how large an experiment the
// simulator can host.
func BenchmarkRingShift(b *testing.B) {
	const p = 16
	const steps = 64
	data := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(p, Cost{AlphaT: 1e-6, BetaT: 1e-9}, func(r *Rank) error {
			w := r.World()
			d := data
			for s := 0; s < steps; s++ {
				d = w.Shift(d, 1)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p*steps), "msgs/op")
}

func BenchmarkAllReduce(b *testing.B) {
	const p = 32
	data := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(p, Cost{AlphaT: 1e-6, BetaT: 1e-9}, func(r *Rank) error {
			r.World().AllReduce(data, OpSum)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(64, Cost{}, func(r *Rank) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}
