package sim_test

import (
	"fmt"

	"perfscale/internal/sim"
)

// ExampleRun shows the SPMD programming model: four ranks all-reduce their
// ids under a latency+bandwidth clock and the runtime reports deterministic
// virtual time and per-rank counters.
func ExampleRun() {
	cost := sim.Cost{GammaT: 1e-9, BetaT: 1e-9, AlphaT: 1e-6}
	res, err := sim.Run(4, cost, func(r *sim.Rank) error {
		sum := r.World().AllReduce([]float64{float64(r.ID())}, sim.OpSum)
		if r.ID() == 0 {
			fmt.Printf("sum of ranks: %g\n", sum[0])
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("messages sent by rank 0: %g\n", res.PerRank[0].MsgsSent)
	// Output:
	// sum of ranks: 6
	// messages sent by rank 0: 2
}

// ExampleComm_Shift demonstrates the ring shift every Cannon-style
// algorithm is built on.
func ExampleComm_Shift() {
	_, err := sim.Run(3, sim.Cost{}, func(r *sim.Rank) error {
		got := r.World().Shift([]float64{float64(r.ID() * 10)}, 1)
		if r.ID() == 0 {
			fmt.Printf("rank 0 received %g from rank 2\n", got[0])
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// rank 0 received 20 from rank 2
}
