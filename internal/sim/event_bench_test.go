package sim_test

import (
	"testing"
	"time"

	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// BenchmarkBackend25D compares the two runtimes on the bench harness's
// big point (2.5D Cannon, p = q²·c = 16384) — the configuration whose
// goroutine-vs-event speedup BENCH_sim.json records.
func BenchmarkBackend25D(b *testing.B) {
	const n, q, c = 256, 64, 4
	a := matrix.Random(n, n, 1)
	bb := matrix.Random(n, n, 2)
	for _, rt := range []sim.Runtime{sim.RuntimeGoroutine, sim.RuntimeEvent} {
		b.Run(rt.String(), func(b *testing.B) {
			cost := sim.Cost{
				GammaT: 1e-11, BetaT: 1e-10, AlphaT: 1e-6,
				ChanCap:         8,
				WatchdogTimeout: 10 * time.Minute,
				Runtime:         rt,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := matmul.TwoPointFiveD(cost, q, c, a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
