package sim

import (
	"math/rand"
	"testing"
)

func TestGatherAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		for root := 0; root < p; root += max(1, p/2) {
			runP(t, p, func(r *Rank) error {
				w := r.World()
				chunk := []float64{float64(w.Me()), float64(w.Me() * 10)}
				got := w.Gather(root, chunk)
				if w.Me() != root {
					if got != nil {
						t.Errorf("p=%d: non-root got non-nil", p)
					}
					return nil
				}
				if len(got) != 2*p {
					t.Errorf("p=%d: gathered length %d", p, len(got))
					return nil
				}
				for i := 0; i < p; i++ {
					if got[2*i] != float64(i) || got[2*i+1] != float64(i*10) {
						t.Errorf("p=%d root=%d: chunk %d = %v", p, root, i, got[2*i:2*i+2])
					}
				}
				return nil
			})
		}
	}
}

func TestBcastLargeMatchesBcast(t *testing.T) {
	for _, p := range collectiveSizes {
		for _, k := range []int{0, 1, p - 1, p, 2 * p, 7 * p} {
			if k < 0 {
				continue
			}
			rng := rand.New(rand.NewSource(int64(p*100 + k)))
			data := make([]float64, k)
			for i := range data {
				data[i] = rng.Float64()
			}
			root := p / 2
			runP(t, p, func(r *Rank) error {
				w := r.World()
				var in []float64
				if w.Me() == root {
					in = data
				}
				got := w.BcastLarge(root, in)
				if len(got) != k {
					t.Errorf("p=%d k=%d: length %d", p, k, len(got))
					return nil
				}
				for i := range got {
					if got[i] != data[i] {
						t.Errorf("p=%d k=%d rank=%d: elem %d = %g want %g", p, k, r.ID(), i, got[i], data[i])
						return nil
					}
				}
				return nil
			})
		}
	}
}

func TestBcastLargeBandwidth(t *testing.T) {
	// The point of scatter+allgather: the root's sent words stay ≈k instead
	// of the binomial tree's ≈k·log2(p).
	const p = 8
	const k = 8000
	data := make([]float64, k)
	resTree, err := Run(p, zeroCost, func(r *Rank) error {
		var in []float64
		if r.ID() == 0 {
			in = data
		}
		r.World().Bcast(0, in)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resLarge, err := Run(p, zeroCost, func(r *Rank) error {
		var in []float64
		if r.ID() == 0 {
			in = data
		}
		r.World().BcastLarge(0, in)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	treeRoot := resTree.PerRank[0].WordsSent
	largeRoot := resLarge.PerRank[0].WordsSent
	if treeRoot != 3*k {
		t.Errorf("binomial root words: got %g want %d", treeRoot, 3*k)
	}
	// Scatter (7/8·k) + allgather (k/8 per step · 7 steps) ≈ 1.75k.
	if largeRoot >= 2*k {
		t.Errorf("scatter+allgather root words: got %g, want < 2k = %d", largeRoot, 2*k)
	}
}

func TestReduceLargeMatchesReduce(t *testing.T) {
	for _, p := range collectiveSizes {
		for _, k := range []int{1, p, 3 * p} {
			root := p - 1
			runP(t, p, func(r *Rank) error {
				w := r.World()
				data := make([]float64, k)
				for i := range data {
					data[i] = float64(w.Me()*k + i)
				}
				got := w.ReduceLarge(root, data, OpSum)
				if w.Me() != root {
					if got != nil {
						t.Errorf("p=%d k=%d: non-root got data", p, k)
					}
					return nil
				}
				for i := 0; i < k; i++ {
					// sum over ranks of (rank*k + i) = k·p(p-1)/2 + p·i
					want := float64(k*p*(p-1)/2 + p*i)
					if got[i] != want {
						t.Errorf("p=%d k=%d: elem %d = %g want %g", p, k, i, got[i], want)
						return nil
					}
				}
				return nil
			})
		}
	}
}

func TestReduceLargeBandwidth(t *testing.T) {
	// Reduce-scatter+gather keeps the root's received words ≈2k rather than
	// log2(p)·k.
	const p = 8
	const k = 8000
	resLarge, err := Run(p, zeroCost, func(r *Rank) error {
		data := make([]float64, k)
		r.World().ReduceLarge(0, data, OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rootRecv := resLarge.PerRank[0].WordsRecv
	if rootRecv >= 2.5*k {
		t.Errorf("root received %g words, want < 2.5k", rootRecv)
	}
}

func TestBcastLargeFallbackSmallPayload(t *testing.T) {
	// Payload smaller than p: must fall back to the binomial tree and still
	// deliver correctly (covered by correctness test); check it doesn't
	// split.
	const p = 8
	res, err := Run(p, zeroCost, func(r *Rank) error {
		var in []float64
		if r.ID() == 0 {
			in = []float64{1, 2, 3} // 3 < p
		}
		got := r.World().BcastLarge(0, in)
		if len(got) != 3 || got[2] != 3 {
			t.Errorf("fallback bcast wrong: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestScatterAllSizes(t *testing.T) {
	for _, p := range collectiveSizes {
		root := p - 1
		runP(t, p, func(r *Rank) error {
			w := r.World()
			var data []float64
			if w.Me() == root {
				data = make([]float64, 2*p)
				for i := range data {
					data[i] = float64(i)
				}
			}
			got := w.Scatter(root, data)
			if len(got) != 2 {
				t.Errorf("p=%d: chunk length %d", p, len(got))
				return nil
			}
			if got[0] != float64(2*w.Me()) || got[1] != float64(2*w.Me()+1) {
				t.Errorf("p=%d rank=%d: chunk %v", p, r.ID(), got)
			}
			return nil
		})
	}
}

func TestScatterBadLength(t *testing.T) {
	_, err := Run(3, zeroCost, func(r *Rank) error {
		var data []float64
		if r.ID() == 0 {
			data = make([]float64, 4) // 4 % 3 != 0
		}
		r.World().Scatter(0, data)
		return nil
	})
	if err == nil {
		t.Error("indivisible scatter should error")
	}
}

func TestSplitByParity(t *testing.T) {
	runP(t, 6, func(r *Rank) error {
		w := r.World()
		sub, err := w.Split(r.ID()%2, -r.ID()) // reverse order within color
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d: subgroup size %d", r.ID(), sub.Size())
		}
		// Key = -id: highest id first.
		wantFirst := 4 + r.ID()%2
		if sub.Member(0) != wantFirst {
			t.Errorf("rank %d: first member %d, want %d", r.ID(), sub.Member(0), wantFirst)
		}
		// The subgroup works as a communicator.
		sum := sub.AllReduce([]float64{float64(r.ID())}, OpSum)
		want := float64(0+2+4) + float64(3*(r.ID()%2))
		if sum[0] != want {
			t.Errorf("rank %d: subgroup sum %g want %g", r.ID(), sum[0], want)
		}
		return nil
	})
}

func TestSplitSingleton(t *testing.T) {
	runP(t, 4, func(r *Rank) error {
		sub, err := r.World().Split(r.ID(), 0) // every rank its own color
		if err != nil {
			return err
		}
		if sub.Size() != 1 || sub.Member(0) != r.ID() {
			t.Errorf("rank %d: singleton wrong: size=%d", r.ID(), sub.Size())
		}
		return nil
	})
}
