package resilience

import (
	"fmt"
	"math"

	"perfscale/internal/sim"
)

// ARQ is the timer-aware second generation of the reliable endpoint: where
// Reliable can only mask faults that leave evidence (a damaged frame, a
// duplicate), ARQ also masks silent drops, because the virtual-time timeout
// primitives let it notice absence. On top of Reliable's frame grammar it
// adds
//
//   - retransmission on timeout: every ack wait is a RecvTimeout with a
//     deterministic RTO; expiry retransmits the outstanding frame and backs
//     the RTO off exponentially (with seeded, per-attempt jitter so
//     concurrent retransmitters do not share deadlines). A sender that
//     exhausts MaxAttempts completes optimistically — the copies already
//     on the in-order channel are re-acknowledged at the pair's next
//     contact — because blocking on an ack whose loss only the peer's
//     future attention can repair deadlocks stalled dependency chains;
//   - failure detection: an observed peer exit (RecvPeerExited or
//     SendPeerExited) converts immediately and accurately into a typed
//     *PeerFailure; DetectorMisses consecutive silent windows on a
//     receive convert a live-but-wedged peer into a suspected one. Ack
//     silence on the send side is deliberately NOT a failure signal;
//   - liveness probing: a receiver that misses a detector window sends a
//     PING; any well-formed frame from the peer — the PONG answer, data,
//     an ack, a BEAT from Heartbeat — resets the miss count.
//
// Retransmissions, probes and timeout waits all travel through the normal
// αt/βt/γe/βe accounting, so recovery is priced by Eq. 1/Eq. 2 like any
// other work, and every decision is a function of virtual state — two runs
// with the same seeds produce bit-identical stats and retransmit counts.
//
// Like Reliable, conversations must be pairwise nested (tree collectives
// are safe, rings are not), and both endpoints of a pair must speak ARQ.
type ARQ struct {
	r        *sim.Rank
	cfg      ARQConfig
	nextSend map[int]int
	nextRecv map[int]int
	pending  map[int][]pendingFrame
	stats    ARQStats
}

// ARQConfig tunes the retransmission and failure-detection timers. All
// durations are virtual seconds.
type ARQConfig struct {
	// RTO is the initial retransmission timeout of an ack wait. Must be
	// positive; ARQDefaults derives it from the cost model.
	RTO float64
	// Backoff multiplies the RTO after every consecutive expiry (default 2).
	Backoff float64
	// MaxRTO caps the backed-off RTO (default 64·RTO).
	MaxRTO float64
	// JitterFrac stretches each armed RTO by up to this fraction,
	// deterministically from (Seed, rank, peer, attempt), so concurrent
	// retransmitters do not collide on one deadline (default 1/8).
	JitterFrac float64
	// MaxAttempts is the per-transfer retransmission budget (default 8).
	// A sender that exhausts it completes the transfer optimistically
	// instead of declaring the peer dead: ack silence is not evidence of
	// failure — a live peer whose ack was dropped re-acknowledges the
	// duplicates only at the pair's next contact, which can sit an entire
	// stalled dependency chain away; blocking for it deadlocks the chain.
	// The budget bounds the residual risk instead: a transfer is truly
	// lost only if all MaxAttempts+1 independently-rolled copies drop.
	MaxAttempts int
	// DetectorInterval is the receive-side heartbeat window: a blocked
	// Recv that sees nothing for this long counts a miss and sends a PING
	// (default 512·RTO). Successive windows back off by Backoff, so the
	// total silence budget before a failure verdict is
	// (Backoff^DetectorMisses − 1)·DetectorInterval — it must exceed any
	// legitimate stall, and virtual clocks skew: a rank blocked on a peer
	// that is itself stalled behind a slow conversation elsewhere sees
	// real silence without a real failure. The default also clears the
	// sender's whole retransmission budget (≈ 191·RTO at the defaults)
	// with room for jitter and skew, so drop-recovery episodes resolve
	// without every blocked rank's detector burning a quiescence round
	// first — the detector is a last-resort wedge alarm, not a pacer.
	DetectorInterval float64
	// DetectorMisses is the number of consecutive silent windows after
	// which the receiver declares the peer failed (default 8, a ~255×
	// DetectorInterval budget at the default backoff).
	DetectorMisses int
	// MaxPending bounds the early-data buffer per peer (default
	// DefaultMaxPending); overflowing it returns a *PendingOverflowError.
	MaxPending int
	// Seed keys the retransmission jitter.
	Seed uint64
}

// withDefaults fills the zero fields.
func (c ARQConfig) withDefaults() ARQConfig {
	if c.Backoff < 1 {
		c.Backoff = 2
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 64 * c.RTO
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	} else if c.JitterFrac == 0 {
		c.JitterFrac = 0.125
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.DetectorInterval <= 0 {
		c.DetectorInterval = 512 * c.RTO
	}
	if c.DetectorMisses <= 0 {
		c.DetectorMisses = 8
	}
	if c.MaxPending <= 0 {
		c.MaxPending = DefaultMaxPending
	}
	return c
}

// ARQDefaults builds a config whose RTO covers one round trip of a
// words-sized frame under the given cost model with a 4× safety margin —
// tight enough that a genuine drop is noticed within a few frame times,
// loose enough that an in-flight ack always beats the timer.
func ARQDefaults(cost sim.Cost, words int) ARQConfig {
	rto := 4 * (cost.AlphaT + cost.BetaT*float64(words))
	if rto <= 0 {
		// Zero-cost models have no virtual timescale; any positive RTO
		// works because timers only fire at quiescence.
		rto = 1
	}
	return ARQConfig{RTO: rto}.withDefaults()
}

// NewARQ wraps a rank with the timer-aware reliable protocol.
func NewARQ(r *sim.Rank, cfg ARQConfig) *ARQ {
	cfg = cfg.withDefaults()
	if cfg.RTO <= 0 {
		panic(fmt.Sprintf("resilience: ARQConfig.RTO must be positive, got %g (use ARQDefaults)", cfg.RTO))
	}
	return &ARQ{
		r:        r,
		cfg:      cfg,
		nextSend: map[int]int{},
		nextRecv: map[int]int{},
		pending:  map[int][]pendingFrame{},
	}
}

// ARQStats counts one endpoint's protocol events; all increments are
// deterministic, so two runs with the same seeds report identical values.
type ARQStats struct {
	// Retransmits counts DATA frames re-sent (on RTO expiry or nack).
	Retransmits int
	// Timeouts counts RTO expiries in ack waits.
	Timeouts int
	// Misses counts silent detector windows in receives.
	Misses int
	// ProbesSent counts PINGs emitted after detector misses.
	ProbesSent int
	// ProbesAnswered counts PONGs sent in reply to a peer's PING.
	ProbesAnswered int
	// DupsAbsorbed counts duplicate DATA frames recognized and re-acked.
	DupsAbsorbed int
	// OptimisticSends counts transfers completed after exhausting the
	// retransmission budget without an ack (reconciled at next contact).
	OptimisticSends int
	// BeatsSent counts Heartbeat frames emitted.
	BeatsSent int
}

// Add accumulates o into s (for aggregating per-rank reports).
func (s *ARQStats) Add(o ARQStats) {
	s.Retransmits += o.Retransmits
	s.Timeouts += o.Timeouts
	s.Misses += o.Misses
	s.ProbesSent += o.ProbesSent
	s.ProbesAnswered += o.ProbesAnswered
	s.DupsAbsorbed += o.DupsAbsorbed
	s.OptimisticSends += o.OptimisticSends
	s.BeatsSent += o.BeatsSent
}

// Stats returns the endpoint's counters.
func (a *ARQ) Stats() ARQStats { return a.stats }

// PeerFailure is the typed verdict of the failure detector: the peer this
// endpoint was talking to is gone. Exited failures are accurate (the
// runtime observed the peer's exit); the rest are suspicions earned by
// Misses consecutive silent timeout windows.
type PeerFailure struct {
	// Rank is the detecting endpoint, Peer the rank it gave up on.
	Rank, Peer int
	// Exited reports an observed exit; Clean and Cause qualify it.
	Exited bool
	Clean  bool
	Cause  error
	// Misses counts the silent windows behind a suspicion (0 when Exited).
	Misses int
	// At is the detection time in virtual seconds.
	At float64
}

// Error implements error.
func (e *PeerFailure) Error() string {
	switch {
	case e.Exited && e.Clean:
		return fmt.Sprintf("resilience: rank %d: peer %d exited cleanly mid-conversation (t=%g)", e.Rank, e.Peer, e.At)
	case e.Exited:
		return fmt.Sprintf("resilience: rank %d: peer %d died mid-conversation (t=%g): %v", e.Rank, e.Peer, e.At, e.Cause)
	default:
		return fmt.Sprintf("resilience: rank %d: peer %d suspected dead after %d silent timeout windows (t=%g)", e.Rank, e.Peer, e.Misses, e.At)
	}
}

// Unwrap exposes the peer's exit error to errors.Is/As chains.
func (e *PeerFailure) Unwrap() error { return e.Cause }

// mix64 is the splitmix64 finalizer (public domain), the same generator the
// fault plan uses; the jitter must not consume the plan's random stream.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// jittered stretches rto by up to JitterFrac, deterministically per
// (seed, rank, peer, attempt).
func (a *ARQ) jittered(rto float64, peer, attempt int) float64 {
	if a.cfg.JitterFrac <= 0 {
		return rto
	}
	h := mix64(a.cfg.Seed ^ uint64(a.r.ID())<<42 ^ uint64(peer)<<21 ^ uint64(attempt))
	u := float64(h>>11) / (1 << 53)
	return rto * (1 + a.cfg.JitterFrac*u)
}

// backoff advances the RTO one exponential step.
func (a *ARQ) backoff(rto float64) float64 {
	return math.Min(rto*a.cfg.Backoff, a.cfg.MaxRTO)
}

// peerExited converts an observed peer exit into an accurate PeerFailure.
func (a *ARQ) peerExited(peer int) error {
	_, clean, cause := a.r.PeerExit(peer)
	return &PeerFailure{Rank: a.r.ID(), Peer: peer, Exited: true, Clean: clean, Cause: cause, At: a.r.Clock()}
}

// xmit emits one frame with a bounded send, so a buffer that stays full
// past the retransmit budget — or a peer that exits while we wait for
// space — becomes a PeerFailure instead of a watchdog abort. The fast path
// (buffer has room) costs exactly what a raw Send costs.
func (a *ARQ) xmit(dst int, frame []float64) error {
	rto := a.cfg.RTO
	for attempt := 0; ; attempt++ {
		switch a.r.SendTimeout(dst, frame, a.jittered(rto, dst, attempt)) {
		case sim.SendOK:
			return nil
		case sim.SendPeerExited:
			return a.peerExited(dst)
		default: // buffer full for a whole window
			if attempt+1 >= a.cfg.MaxAttempts {
				return &PeerFailure{Rank: a.r.ID(), Peer: dst, Misses: attempt + 1, At: a.r.Clock()}
			}
			rto = a.backoff(rto)
		}
	}
}

// Send delivers data to dst, retransmitting on RTO expiry until the
// receiver acknowledges an uncorrupted copy or the failure detector gives
// the peer up.
func (a *ARQ) Send(dst int, data []float64) error {
	seq := a.nextSend[dst]
	a.nextSend[dst]++
	frame := dataFrame(seq, data)
	if err := a.xmit(dst, frame); err != nil {
		return err
	}
	attempt := 0
	rto := a.cfg.RTO
	for {
		f, out := a.r.RecvTimeout(dst, a.jittered(rto, dst, attempt))
		switch out {
		case sim.RecvPeerExited:
			// The dropped-final-ack case: a peer only exits cleanly after
			// consuming and acknowledging everything it owed, so a clean
			// exit during our ack wait means the ack was lost in flight —
			// an implicit acknowledgement. An unclean exit is a failure.
			if _, clean, _ := a.r.PeerExit(dst); clean {
				return nil
			}
			return a.peerExited(dst)
		case sim.RecvTimedOut:
			a.stats.Timeouts++
			attempt++
			if attempt >= a.cfg.MaxAttempts {
				// Optimistic completion, the break for the dropped-ack
				// knowledge deadlock: MaxAttempts+1 copies sit on the
				// in-order channel, so the peer re-acknowledges at the
				// pair's next contact and the stale-ack absorption below
				// reconciles then. Blocking here instead can deadlock:
				// the peer attends this pair next only after progress
				// that may transitively require our own next send.
				a.stats.OptimisticSends++
				return nil
			}
			a.stats.Retransmits++
			if err := a.xmit(dst, frame); err != nil {
				return err
			}
			rto = a.backoff(rto)
			continue
		}
		// Any frame proves the peer alive: the failure budget counts
		// consecutive silent windows, so reception resets it.
		attempt, rto = 0, a.cfg.RTO
		switch classify(f) {
		case frameAck:
			ackSeq, flag := int(f[1]), int(f[2])
			switch {
			case ackSeq == seq && flag == ackOK:
				return nil
			case ackSeq < seq:
				// Stale ack from an earlier exchange: absorb it.
			default:
				// Negative or crossed ack: retransmit (receiver dedups).
				a.stats.Retransmits++
				if err := a.xmit(dst, frame); err != nil {
					return err
				}
			}
		case frameData:
			// The peer moved on to its own transfer before our ack wait
			// ended; park it for a later Recv.
			if err := a.acceptData(dst, f); err != nil {
				return err
			}
		case framePing:
			a.stats.ProbesAnswered++
			if err := a.xmit(dst, ctlFrame(kindPong, int(f[1]))); err != nil {
				return err
			}
		case framePong, frameBeat:
			// Liveness only; the reset above already consumed it.
		default:
			// Damaged beyond classification: cover both possibilities,
			// like Reliable does.
			a.stats.Retransmits++
			if err := a.xmit(dst, frame); err != nil {
				return err
			}
			if err := a.xmit(dst, ackFrame(a.nextRecv[dst], ackBad)); err != nil {
				return err
			}
		}
	}
}

// acceptData is Reliable.acceptData with the error-returning contract and
// the configured pending bound.
func (a *ARQ) acceptData(peer int, f []float64) error {
	seq := int(f[1])
	switch expected := a.nextRecv[peer]; {
	case seq < expected:
		a.stats.DupsAbsorbed++
		return a.xmit(peer, ackFrame(seq, ackOK))
	case seq == expected:
		if len(a.pending[peer]) >= a.cfg.MaxPending {
			return &PendingOverflowError{Rank: a.r.ID(), Peer: peer, Limit: a.cfg.MaxPending}
		}
		payload := make([]float64, len(f)-3)
		copy(payload, f[3:])
		a.pending[peer] = append(a.pending[peer], pendingFrame{seq: seq, data: payload})
		a.nextRecv[peer] = expected + 1
		return nil
	default:
		return fmt.Errorf("resilience: arq rank %d expected seq <= %d from rank %d, got %d (endpoint not using ARQ?)",
			a.r.ID(), expected, peer, seq)
	}
}

// Recv returns the next in-order uncorrupted payload from src, running the
// heartbeat failure detector while it waits: every DetectorInterval of
// silence counts a miss and sends a PING; DetectorMisses consecutive
// misses, or an observed exit, convert src into a *PeerFailure.
func (a *ARQ) Recv(src int) ([]float64, error) {
	if q := a.pending[src]; len(q) > 0 {
		a.pending[src] = q[1:]
		if err := a.xmit(src, ackFrame(q[0].seq, ackOK)); err != nil {
			return nil, err
		}
		return q[0].data, nil
	}
	misses := 0
	window := a.cfg.DetectorInterval
	for {
		f, out := a.r.RecvTimeout(src, window)
		switch out {
		case sim.RecvPeerExited:
			return nil, a.peerExited(src)
		case sim.RecvTimedOut:
			misses++
			a.stats.Misses++
			if misses >= a.cfg.DetectorMisses {
				return nil, &PeerFailure{Rank: a.r.ID(), Peer: src, Misses: misses, At: a.r.Clock()}
			}
			// Probe: a peer parked in an ack wait (or its own detector)
			// answers PONG even though it has no data for us. The window
			// backs off like the RTO, both to widen the silence budget
			// past any virtual-clock skew and to stop a lagging rank's
			// detector from hogging the earliest-deadline slot that the
			// genuinely needed retransmit timer is waiting for.
			window *= a.cfg.Backoff
			a.stats.ProbesSent++
			if err := a.xmit(src, ctlFrame(kindPing, misses)); err != nil {
				return nil, err
			}
			continue
		}
		misses = 0
		window = a.cfg.DetectorInterval
		switch classify(f) {
		case frameData:
			seq := int(f[1])
			expected := a.nextRecv[src]
			switch {
			case seq == expected:
				a.nextRecv[src] = expected + 1
				if err := a.xmit(src, ackFrame(seq, ackOK)); err != nil {
					return nil, err
				}
				out := make([]float64, len(f)-3)
				copy(out, f[3:])
				return out, nil
			case seq < expected:
				a.stats.DupsAbsorbed++
				if err := a.xmit(src, ackFrame(seq, ackOK)); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("resilience: arq rank %d expected seq %d from rank %d, got %d (endpoint not using ARQ?)",
					a.r.ID(), expected, src, seq)
			}
		case frameAck:
			// A stale or crossed ack from a concluded exchange: absorb.
		case framePing:
			a.stats.ProbesAnswered++
			if err := a.xmit(src, ctlFrame(kindPong, int(f[1]))); err != nil {
				return nil, err
			}
		case framePong, frameBeat:
			// Liveness only; misses already reset.
		default:
			if err := a.xmit(src, ackFrame(a.nextRecv[src], ackBad)); err != nil {
				return nil, err
			}
		}
	}
}

// Heartbeat sends one BEAT frame to dst without expecting a reply. A rank
// entering a compute phase longer than the peer's detector budget beats
// first, so the peer's Recv keeps resetting its miss count instead of
// declaring a false failure.
func (a *ARQ) Heartbeat(dst int) error {
	a.stats.BeatsSent++
	return a.xmit(dst, ctlFrame(kindBeat, 0))
}

// Bcast broadcasts root's data to every member over a binomial tree of
// pairwise ARQ transfers. members lists the participating ranks (all of
// which must call Bcast with identical members and root, in the same
// program position); root must be a member. Non-roots pass nil and receive
// the payload; the root's slice is returned as-is.
//
// The tree keeps every conversation pairwise nested — parent-to-child
// transfers complete before the child forwards — which is the structure
// that makes ARQ (and its retransmissions) deadlock-free under drops.
func (a *ARQ) Bcast(members []int, root int, data []float64) ([]float64, error) {
	n := len(members)
	me, rootIdx := -1, -1
	for i, m := range members {
		if m == a.r.ID() {
			me = i
		}
		if m == root {
			rootIdx = i
		}
	}
	if me < 0 || rootIdx < 0 {
		return nil, fmt.Errorf("resilience: arq bcast: rank %d or root %d not in members %v", a.r.ID(), root, members)
	}
	rel := (me - rootIdx + n) % n
	buf := data
	if rel != 0 {
		parent := rel &^ (rel & -rel)
		var err error
		buf, err = a.Recv(members[(parent+rootIdx)%n])
		if err != nil {
			return nil, err
		}
	}
	low := rel & -rel
	if rel == 0 {
		low = 1
		for low < n {
			low <<= 1
		}
	}
	for bit := low >> 1; bit > 0; bit >>= 1 {
		if child := rel | bit; child != rel && child < n {
			if err := a.Send(members[(child+rootIdx)%n], buf); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}
