package resilience_test

import (
	"testing"

	"perfscale/internal/machine"
	"perfscale/internal/resilience"
)

// testMachine is a small explicit parameter set so the controller tests do
// not depend on preset tuning.
func testMachine() machine.Params {
	return machine.Params{
		Name:   "recovery-test",
		GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6,
		GammaE: 1e-9, BetaE: 1e-8, AlphaE: 1e-6,
		DeltaE: 1e-12, EpsilonE: 1e-3,
		MemWords: 1 << 20, MaxMsgWords: 1 << 14,
	}
}

func baseFailure() resilience.FailureContext {
	return resilience.FailureContext{
		N: 256, Q: 4, Replicas: 2,
		Step: 3, Steps: 4,
		CheckpointPeriod: 2, HaveBuddy: true,
		SpareRebootTime: 0.5,
	}
}

func TestRecoveryControllerPrefersABFTWithReplica(t *testing.T) {
	rc := resilience.NewRecoveryController(testMachine())
	got := rc.Choose(baseFailure())
	// ABFT replays one panel step; the checkpoint rollback replays
	// Step % period = 1 step plus the snapshot restore, respawn replays
	// all 3 plus the reboot — ABFT must win.
	if got.Strategy != resilience.StrategyABFT || !got.Feasible {
		t.Errorf("want abft, got %+v", got)
	}
}

func TestRecoveryControllerFallsBackToCheckpoint(t *testing.T) {
	rc := resilience.NewRecoveryController(testMachine())
	fc := baseFailure()
	fc.Replicas = 1
	got := rc.Choose(fc)
	if got.Strategy != resilience.StrategyCheckpoint {
		t.Errorf("want checkpoint without a replica, got %+v", got)
	}
}

func TestRecoveryControllerRespawnIsLastResort(t *testing.T) {
	rc := resilience.NewRecoveryController(testMachine())
	fc := baseFailure()
	fc.Replicas = 1
	fc.HaveBuddy = false
	got := rc.Choose(fc)
	if got.Strategy != resilience.StrategyRespawn || !got.Feasible {
		t.Errorf("want respawn as the only feasible strategy, got %+v", got)
	}
	for _, sc := range rc.Evaluate(fc) {
		if sc.Strategy != resilience.StrategyRespawn && sc.Feasible {
			t.Errorf("strategy %v should be infeasible: %+v", sc.Strategy, sc)
		}
		if !sc.Feasible && sc.Reason == "" {
			t.Errorf("infeasible %v carries no reason", sc.Strategy)
		}
	}
}

func TestRecoveryControllerChooseIsArgmin(t *testing.T) {
	rc := resilience.NewRecoveryController(testMachine())
	for _, fc := range []resilience.FailureContext{
		baseFailure(),
		{N: 512, Q: 8, Replicas: 4, Step: 7, Steps: 8, CheckpointPeriod: 4, HaveBuddy: true, SpareRebootTime: 2},
		{N: 128, Q: 2, Replicas: 1, Step: 0, Steps: 2, CheckpointPeriod: 1, HaveBuddy: true},
	} {
		got := rc.Choose(fc)
		for _, sc := range rc.Evaluate(fc) {
			if sc.Feasible && sc.Energy < got.Energy {
				t.Errorf("Choose(%+v) = %+v, but %v is cheaper (%g J)", fc, got, sc.Strategy, sc.Energy)
			}
		}
	}
}

func TestRecoveryControllerRespawnGrowsWithProgress(t *testing.T) {
	rc := resilience.NewRecoveryController(testMachine())
	fc := baseFailure()
	prev := -1.0
	for step := 0; step < fc.Steps; step++ {
		fc.Step = step
		costs := rc.Evaluate(fc)
		resp := costs[int(resilience.StrategyRespawn)]
		if resp.Energy <= prev {
			t.Errorf("respawn energy should grow with lost progress: step %d gives %g after %g",
				step, resp.Energy, prev)
		}
		prev = resp.Energy
	}
}
