package resilience

import (
	"fmt"
	"math"

	"perfscale/internal/machine"
)

// Strategy names one of the recovery mechanisms this package implements.
type Strategy int

// The three recovery strategies the controller prices against each other.
const (
	// StrategyABFT restores the casualty's resident blocks from a fiber
	// replica and replays only the panel step in flight (ABFT25D).
	StrategyABFT Strategy = iota
	// StrategyCheckpoint restores state from the buddy's last snapshot and
	// re-executes the steps since (RunCheckpointed).
	StrategyCheckpoint
	// StrategyRespawn boots a cold spare and re-runs the casualty's work
	// from the beginning while the survivors idle.
	StrategyRespawn
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyABFT:
		return "abft"
	case StrategyCheckpoint:
		return "checkpoint"
	case StrategyRespawn:
		return "respawn"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// FailureContext describes one detected rank failure in a q×q SUMMA-shaped
// computation, in the units the cost model understands.
type FailureContext struct {
	// N is the global problem size, Q the grid dimension (block size N/Q).
	N, Q int
	// Replicas is the number of live copies of the casualty's resident
	// state (the 2.5D fiber depth c); ABFT needs at least 2.
	Replicas int
	// Step is the panel step in flight when the failure was detected,
	// Steps the total (= Q for square SUMMA).
	Step, Steps int
	// CheckpointPeriod is the snapshot interval in steps; 0 means the run
	// is not checkpointed.
	CheckpointPeriod int
	// HaveBuddy reports whether a live buddy holds the last snapshot.
	HaveBuddy bool
	// SpareRebootTime is the virtual-time cost of booting a cold spare.
	SpareRebootTime float64
}

// StrategyCost is one strategy's predicted recovery bill under Eq. 1 and
// Eq. 2, or the reason it is not applicable.
type StrategyCost struct {
	Strategy Strategy
	Feasible bool
	// Reason explains infeasibility; empty when Feasible.
	Reason string
	// Time is the predicted recovery time (Eq. 1 over the redone flops,
	// refetched words and messages, plus any reboot wait).
	Time float64
	// Energy is the predicted recovery energy: active γe/βe/αe on the
	// recovering rank plus (δe·M + εe)·T leakage across all p survivors
	// that idle while it catches up (Eq. 2 with the survivors at zero
	// active work).
	Energy float64
}

// RecoveryController chooses the cheapest way back from a PeerFailure by
// pricing each strategy with the paper's closed forms instead of a fixed
// policy. The same failure has different cheapest answers on different
// machines: a network with expensive βe favors replaying local flops
// (ABFT), a machine with high leakage εe punishes the long idle wait of a
// cold respawn hardest.
type RecoveryController struct {
	m machine.Params
}

// NewRecoveryController builds a controller for the given machine.
func NewRecoveryController(m machine.Params) *RecoveryController {
	return &RecoveryController{m: m}
}

// price evaluates Eq. 1/Eq. 2 for a recovery doing flops F, moving W words
// in S messages on the recovering rank, with extra non-overlappable wait,
// while p ranks keep M words each powered for the duration.
func (rc *RecoveryController) price(f, w, s, wait float64, p int, mem float64) (time, energy float64) {
	m := rc.m
	time = m.GammaT*f + m.BetaT*w + m.AlphaT*s + wait
	energy = m.GammaE*f + m.BetaE*w + m.AlphaE*s +
		float64(p)*(m.DeltaE*mem+m.EpsilonE)*time
	return time, energy
}

// Evaluate prices every strategy for the failure, feasible or not, in
// Strategy order.
func (rc *RecoveryController) Evaluate(fc FailureContext) []StrategyCost {
	p := fc.Q * fc.Q
	nb := float64(fc.N) / float64(fc.Q)
	blockWords := nb * nb
	stateWords := 3 * blockWords // resident A, B and partial C
	msgWords := rc.m.MaxMsgWords
	if msgWords <= 0 {
		msgWords = stateWords
	}
	msgs := func(words float64) float64 {
		if words <= 0 {
			return 0
		}
		return math.Ceil(words / msgWords)
	}
	stepFlops := 2 * nb * nb * nb
	// One replayed panel step refetches the casualty's A and B panels from
	// their owners (2·nb² words) and redoes the multiply.
	stepWords := 2 * blockWords

	out := make([]StrategyCost, 0, 3)

	// ABFT: fetch the resident blocks from a fiber sibling, replay only
	// the panel step that was in flight.
	abft := StrategyCost{Strategy: StrategyABFT}
	if fc.Replicas < 2 {
		abft.Reason = fmt.Sprintf("needs a live replica (replicas=%d)", fc.Replicas)
	} else {
		abft.Feasible = true
		w := stateWords + stepWords
		abft.Time, abft.Energy = rc.price(stepFlops, w, msgs(stateWords)+msgs(stepWords), 0, p, stateWords)
	}
	out = append(out, abft)

	// Checkpoint: restore the last snapshot from the buddy, re-execute the
	// steps since (each replaying its panel traffic and flops).
	ckpt := StrategyCost{Strategy: StrategyCheckpoint}
	switch {
	case fc.CheckpointPeriod <= 0:
		ckpt.Reason = "run is not checkpointed"
	case !fc.HaveBuddy:
		ckpt.Reason = "buddy holding the snapshot is dead"
	default:
		ckpt.Feasible = true
		redo := float64(fc.Step % fc.CheckpointPeriod)
		w := stateWords + redo*stepWords
		ckpt.Time, ckpt.Energy = rc.price(redo*stepFlops, w, msgs(stateWords)+redo*msgs(stepWords), 0, p, stateWords)
	}
	out = append(out, ckpt)

	// Respawn: boot a cold spare, refetch the inputs, re-run every
	// completed step from the beginning while the survivors idle.
	resp := StrategyCost{Strategy: StrategyRespawn, Feasible: true}
	redo := float64(fc.Step)
	w := stateWords + redo*stepWords
	resp.Time, resp.Energy = rc.price(redo*stepFlops, w, msgs(stateWords)+redo*msgs(stepWords), fc.SpareRebootTime, p, stateWords)
	out = append(out, resp)

	return out
}

// Choose returns the feasible strategy with the lowest predicted energy;
// ties break toward the earlier Strategy value (ABFT before checkpoint
// before respawn). Respawn is always feasible, so Choose always succeeds.
func (rc *RecoveryController) Choose(fc FailureContext) StrategyCost {
	best := StrategyCost{Feasible: false}
	for _, sc := range rc.Evaluate(fc) {
		if !sc.Feasible {
			continue
		}
		if !best.Feasible || sc.Energy < best.Energy {
			best = sc
		}
	}
	return best
}
