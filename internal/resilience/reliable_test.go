package resilience_test

import (
	"testing"
	"time"

	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// testCost gives the runs a virtual clock and a fast watchdog so a protocol
// bug surfaces as a diagnostic instead of a hung test.
func testCost() sim.Cost {
	return sim.Cost{
		GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6,
		WatchdogTimeout: 500 * time.Millisecond,
	}
}

func TestReliableDeliversInOrder(t *testing.T) {
	const msgs = 10
	_, err := sim.Run(2, testCost(), func(r *sim.Rank) error {
		rel := resilience.NewReliable(r)
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				rel.Send(1, []float64{float64(i), float64(2 * i)})
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			got := rel.Recv(0)
			if len(got) != 2 || got[0] != float64(i) || got[1] != float64(2*i) {
				t.Errorf("message %d mangled: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReliableMasksCorruption(t *testing.T) {
	const msgs = 20
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Seed: 11,
		// Corrupt only the data direction; the protocol documents that the
		// ack direction must stay clean.
		Links: []sim.LinkFault{{Src: 0, Dst: 1, CorruptProb: 0.5}},
	}
	res, err := sim.Run(2, cost, func(r *sim.Rank) error {
		rel := resilience.NewReliable(r)
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				rel.Send(1, []float64{float64(i), 100 + float64(i)})
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			got := rel.Recv(0)
			if got[0] != float64(i) || got[1] != 100+float64(i) {
				t.Errorf("corrupted payload leaked through: message %d = %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Retransmissions must show up in the counters: strictly more sender
	// messages than the msgs data packets + msgs·0 acks it sends itself.
	if got := res.PerRank[0].MsgsSent; got <= msgs {
		t.Errorf("expected retransmissions beyond %d packets, counted %g", msgs, got)
	}
}

func TestReliableMasksDuplication(t *testing.T) {
	const msgs = 5
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Seed:  3,
		Links: []sim.LinkFault{{Src: -1, Dst: -1, DupProb: 1}},
	}
	_, err := sim.Run(2, cost, func(r *sim.Rank) error {
		rel := resilience.NewReliable(r)
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				rel.Send(1, []float64{float64(i)})
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if got := rel.Recv(0); got[0] != float64(i) {
				t.Errorf("duplicate reordered the stream: message %d = %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReliableCorruptionIsDeterministic(t *testing.T) {
	run := func() sim.Stats {
		cost := testCost()
		cost.Faults = &sim.FaultPlan{
			Seed:  42,
			Links: []sim.LinkFault{{Src: 0, Dst: 1, CorruptProb: 0.5, DupProb: 0.25}},
		}
		res, err := sim.Run(2, cost, func(r *sim.Rank) error {
			rel := resilience.NewReliable(r)
			if r.ID() == 0 {
				for i := 0; i < 10; i++ {
					rel.Send(1, []float64{float64(i), float64(i * i)})
				}
				return nil
			}
			for i := 0; i < 10; i++ {
				rel.Recv(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerRank[0]
	}
	if a, b := run(), run(); a != b {
		t.Errorf("retry traffic must be byte-identical across runs:\n%+v\n%+v", a, b)
	}
}
