package resilience_test

import (
	"math"
	"testing"

	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// The critical path must tile [0, T] exactly even when the timeline is
// shaped by fault-driven retransmissions: every retransmitted frame is an
// ordinary send/wait pair, so the backward walk must keep working through
// the extra traffic the Reliable protocol generates.
//
// Pair (0,1) drops primaries but duplicates every message (DupProb = 1):
// the surviving copy keeps the timer-free protocol alive — a sole dropped
// copy would deadlock by design. Pair (2,3) corrupts frames, forcing
// genuine retransmission rounds. The two fault classes are deliberately
// NOT combined on one link: a damaged copy makes the protocol emit two
// frames (retransmit + nack) and DupProb = 1 doubles every one of them,
// so corruption on a duplicating link sets off a supercritical nack storm
// that fills the per-pair buffers until both endpoints wedge in raw Send.
// Without duplication the storm's branching factor stays below one for
// CorruptProb ≲ 0.24.
func TestCriticalPathTilesUnderDropsAndRetransmits(t *testing.T) {
	cost := testCost()
	cost.Trace = true
	cost.Faults = &sim.FaultPlan{
		Seed: 11,
		Links: []sim.LinkFault{
			{Src: 0, Dst: 1, DropProb: 0.4, DupProb: 1},
			{Src: 1, Dst: 0, DropProb: 0.4, DupProb: 1},
			{Src: 2, Dst: 3, CorruptProb: 0.15},
			{Src: 3, Dst: 2, CorruptProb: 0.15},
		},
	}
	// Even ranks lead, odd ranks answer: Reliable.Send blocks for its
	// ack, so the conversation must pair up (an all-send-first ring would
	// deadlock by construction, faults or not).
	const msgs = 12
	program := func(r *sim.Rank) error {
		rel := resilience.NewReliable(r)
		partner := r.ID() ^ 1
		for i := 0; i < msgs; i++ {
			if r.ID()%2 == 0 {
				rel.Send(partner, []float64{float64(i)})
				got := rel.Recv(partner)
				if len(got) != 1 || got[0] != float64(2*i) {
					return nil
				}
			} else {
				got := rel.Recv(partner)
				if len(got) != 1 || got[0] != float64(i) {
					return nil
				}
				rel.Send(partner, []float64{float64(2 * i)})
			}
			r.Compute(64)
		}
		rel.AllReduceSum([]float64{1})
		return nil
	}
	res, err := sim.Run(4, cost, program)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must actually have caused retransmissions, or the test
	// pins nothing; compare against a fault-free run of the same program.
	cleanCost := testCost()
	cleanCost.Trace = true
	faultFree, err := sim.Run(4, cleanCost, program)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalStats().MsgsSent <= faultFree.TotalStats().MsgsSent {
		t.Fatalf("fault plan caused no retransmissions (%g msgs vs %g clean)",
			res.TotalStats().MsgsSent, faultFree.TotalStats().MsgsSent)
	}

	path := res.Trace.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	total := 0.0
	for _, s := range path {
		total += s.Duration()
	}
	if T := res.Time(); math.Abs(total-T) > 1e-9*T {
		t.Errorf("path covers %g of %g", total, T)
	}
	for i := 1; i < len(path); i++ {
		if math.Abs(path[i].Start-path[i-1].End) > 1e-9 {
			t.Fatalf("path gap between %+v and %+v", path[i-1], path[i])
		}
	}
}
