package resilience_test

import (
	"strings"
	"testing"

	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

const abftTol = 1e-9

func abftOperands(n int) (*matrix.Dense, *matrix.Dense) {
	return matrix.Random(n, n, 1), matrix.Random(n, n, 2)
}

func TestABFTNoFaultMatchesSerial(t *testing.T) {
	a, b := abftOperands(16)
	res, err := resilience.ABFT25D(testCost(), 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := matmul.Serial(a, b)
	if d := res.C.MaxAbsDiff(want); d > abftTol {
		t.Errorf("fault-free ABFT product off by %g", d)
	}
}

func TestABFTRecoversFromCrash(t *testing.T) {
	a, b := abftOperands(16)
	base, err := resilience.ABFT25D(testCost(), 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Crash a layer-1 rank at 40% of the fault-free runtime, mid-panel-loop.
	crashRank := 4*4 + 5
	crashT := 0.4 * base.Sim.Time()
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Seed:       5,
		Crashes:    map[int]float64{crashRank: crashT},
		Respawn:    true,
		RebootTime: 0.05 * base.Sim.Time(),
	}
	res, err := resilience.ABFT25D(cost, 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := matmul.Serial(a, b)
	if d := res.C.MaxAbsDiff(want); d > abftTol {
		t.Errorf("recovered product off by %g", d)
	}
	// Recovery is real work: the run must be strictly more expensive than
	// the fault-free one in time and in words moved.
	if res.Sim.Time() <= base.Sim.Time() {
		t.Errorf("recovery should cost time: %g <= %g", res.Sim.Time(), base.Sim.Time())
	}
	if res.Sim.TotalStats().WordsSent <= base.Sim.TotalStats().WordsSent {
		t.Errorf("recovery should move words: %g <= %g",
			res.Sim.TotalStats().WordsSent, base.Sim.TotalStats().WordsSent)
	}

	// The determinism guarantee: an identical plan reproduces the product
	// and every per-rank counter bit for bit.
	again, err := resilience.ABFT25D(cost, 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.C.Data {
		if again.C.Data[i] != v {
			t.Fatalf("product not byte-identical across runs at word %d", i)
		}
	}
	for id := range res.Sim.PerRank {
		if res.Sim.PerRank[id] != again.Sim.PerRank[id] {
			t.Errorf("rank %d stats differ across identical faulty runs:\n%+v\n%+v",
				id, res.Sim.PerRank[id], again.Sim.PerRank[id])
		}
	}
}

func TestABFTRecoversFromTwoCrashes(t *testing.T) {
	a, b := abftOperands(16)
	base, err := resilience.ABFT25D(testCost(), 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Two casualties in distinct fibers: (1,1,0) and (2,3,1).
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Crashes: map[int]float64{
			1*4 + 1:      0.3 * base.Sim.Time(),
			16 + 2*4 + 3: 0.6 * base.Sim.Time(),
		},
		Respawn: true,
	}
	res, err := resilience.ABFT25D(cost, 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.C.MaxAbsDiff(matmul.Serial(a, b)); d > abftTol {
		t.Errorf("product off by %g after two recoveries", d)
	}
}

func TestABFTToleratesCorruptReplicationLink(t *testing.T) {
	a, b := abftOperands(16)
	base, err := resilience.ABFT25D(testCost(), 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the fiber-replication link (0,0,0) -> (0,0,1); the Reliable
	// channel must retransmit until a clean copy lands.
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Seed:  8,
		Links: []sim.LinkFault{{Src: 0, Dst: 16, CorruptProb: 0.5}},
	}
	res, err := resilience.ABFT25D(cost, 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.C.MaxAbsDiff(matmul.Serial(a, b)); d > abftTol {
		t.Errorf("product off by %g under replication-link corruption", d)
	}
	if res.Sim.TotalStats().MsgsSent <= base.Sim.TotalStats().MsgsSent {
		t.Error("retransmissions must show up in the message counters")
	}
}

func TestABFTUnrecoverableWithoutRedundancy(t *testing.T) {
	a, b := abftOperands(16)
	base, err := resilience.ABFT25D(testCost(), 4, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Crashes: map[int]float64{3: 0.4 * base.Sim.Time()},
		Respawn: true,
	}
	_, err = resilience.ABFT25D(cost, 4, 1, a, b)
	if err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Errorf("c=1 has no redundancy; expected an unrecoverable error, got %v", err)
	}
}

func TestABFTValidation(t *testing.T) {
	a, b := abftOperands(16)
	hard := testCost()
	hard.Faults = &sim.FaultPlan{Crashes: map[int]float64{0: 1}}
	if _, err := resilience.ABFT25D(hard, 4, 2, a, b); err == nil {
		t.Error("crashes without Respawn must be rejected")
	}
	if _, err := resilience.ABFT25D(testCost(), 3, 2, a, b); err == nil {
		t.Error("c must divide q")
	}
	if _, err := resilience.ABFT25D(testCost(), 5, 1, a, b); err == nil {
		t.Error("q must divide n")
	}
}
