package resilience

// DataFrame exposes the wire encoding to tests that forge raw frames at a
// Reliable or ARQ endpoint from a raw sim.Rank peer.
func DataFrame(seq int, payload []float64) []float64 { return dataFrame(seq, payload) }
