package resilience

import (
	"fmt"

	"perfscale/internal/sim"
)

// Reliable is a per-rank endpoint adding typed frames, sequence numbers,
// checksums and acknowledgements to the raw simulator channels. It masks
// the message corruption and duplication a sim.FaultPlan injects:
//
//   - every payload travels as a DATA frame [kind, seq, checksum, data...];
//     a receiver that sees a bad checksum answers with a negative
//     acknowledgement and the sender retransmits;
//   - acknowledgements are ACK frames [kind, seq, flag, checksum], equally
//     checksummed: a damaged ack triggers a retransmission, which the
//     receiver recognizes as a duplicate and re-acknowledges;
//   - because a retransmission round can overlap the peer's next transfer
//     on the same pair, each endpoint classifies every incoming frame and
//     buffers data that arrives early while it still waits for an ack.
//
// The protocol is timer-free — virtual time has no timeouts — so it cannot
// retransmit a packet the network silently dropped: both ends stay blocked
// and the runtime watchdog reports the hang as a DeadlockError. It
// converges as long as the corruption probability on a link is below one
// (every retransmission rolls fresh deterministic dice).
//
// Each Reliable belongs to one rank; create it inside the SPMD function.
// Both endpoints of a conversation must use Reliable — the framing is not
// compatible with raw Rank.Send/Recv.
type Reliable struct {
	r        *sim.Rank
	nextSend map[int]int
	nextRecv map[int]int
	// pending holds data frames that arrived from a peer while this
	// endpoint was waiting for an ack; Recv drains it before the channel.
	pending map[int][]pendingFrame
}

type pendingFrame struct {
	seq  int
	data []float64
}

// NewReliable wraps a rank with the reliable-channel protocol.
func NewReliable(r *sim.Rank) *Reliable {
	return &Reliable{
		r:        r,
		nextSend: map[int]int{},
		nextRecv: map[int]int{},
		pending:  map[int][]pendingFrame{},
	}
}

// Frame kinds and ack flags. PING/PONG/BEAT are control frames only the
// timer-aware ARQ endpoint emits; classify recognizes them here so the two
// protocol generations share one frame grammar.
const (
	kindData = 1
	kindAck  = 2
	kindPing = 3
	kindPong = 4
	kindBeat = 5
	ackOK    = 1
	ackBad   = 0
)

// frameSum protects a whole frame: any single-word perturbation (the fault
// model's +1.0) shifts the sum.
func frameSum(words []float64) float64 {
	s := 0.0
	for _, v := range words {
		s += v
	}
	return s
}

func dataFrame(seq int, payload []float64) []float64 {
	f := make([]float64, 3+len(payload))
	f[0] = kindData
	f[1] = float64(seq)
	copy(f[3:], payload)
	f[2] = kindData + float64(seq) + frameSum(payload)
	return f
}

func ackFrame(seq, flag int) []float64 {
	return []float64{kindAck, float64(seq), float64(flag), kindAck + float64(seq) + float64(flag)}
}

// Frame classifications.
const (
	frameDamaged = iota
	frameData
	frameAck
	framePing
	framePong
	frameBeat
)

// ctlFrame builds a 4-word control frame (PING/PONG/BEAT) carrying one
// integer argument, checksummed like an ack.
func ctlFrame(kind, arg int) []float64 {
	return []float64{float64(kind), float64(arg), 0, float64(kind) + float64(arg)}
}

// classify validates a frame's checksum and returns its kind. A frame whose
// checksum fails — including one whose kind word was corrupted — is damaged.
func classify(f []float64) int {
	switch {
	case len(f) >= 3 && f[0] == kindData && f[2] == kindData+f[1]+frameSum(f[3:]):
		return frameData
	case len(f) == 4 && f[0] == kindAck && f[3] == kindAck+f[1]+f[2]:
		return frameAck
	case len(f) == 4 && f[3] == f[0]+f[1]+f[2]:
		switch f[0] {
		case kindPing:
			return framePing
		case kindPong:
			return framePong
		case kindBeat:
			return frameBeat
		}
		return frameDamaged
	default:
		return frameDamaged
	}
}

// Send delivers data to dst, retransmitting until the receiver acknowledges
// an uncorrupted copy.
func (rl *Reliable) Send(dst int, data []float64) {
	seq := rl.nextSend[dst]
	rl.nextSend[dst]++
	frame := dataFrame(seq, data)
	rl.r.Send(dst, frame)
	for {
		f := rl.r.Recv(dst)
		switch classify(f) {
		case frameAck:
			ackSeq, flag := int(f[1]), int(f[2])
			switch {
			case ackSeq == seq && flag == ackOK:
				return
			case ackSeq < seq:
				// Stale ack from an earlier exchange: absorb it.
			default:
				// Negative ack, or a crossed nack for a future sequence:
				// retransmitting the outstanding frame is always safe (the
				// receiver de-duplicates).
				rl.r.Send(dst, frame)
			}
		case frameData:
			// The peer concluded the previous transfer and moved on to
			// sending its own data before our ack arrived.
			rl.acceptData(dst, f)
		default:
			// Damaged beyond classification: it may have been our ack or
			// the peer's data. Cover both: retransmit the outstanding
			// frame and ask for a retransmission of whatever the peer may
			// have in flight.
			rl.r.Send(dst, frame)
			rl.r.Send(dst, ackFrame(rl.nextRecv[dst], ackBad))
		}
	}
}

// DefaultMaxPending bounds how many early data frames one peer may park in
// an endpoint's pending buffer. A correct peer alternates data with the
// acks this endpoint is waiting for, so the buffer stays shallow; unbounded
// growth means the peer is streaming without ever consuming — a protocol
// bug that used to manifest as an out-of-memory kill long after the cause.
const DefaultMaxPending = 256

// PendingOverflowError reports a peer that pushed more early data frames
// than the endpoint is willing to buffer. Reliable panics with it (sim.Run
// converts the panic into a per-rank error that errors.As can unwrap); the
// ARQ endpoint returns it.
type PendingOverflowError struct {
	Rank, Peer int
	// Limit is the buffer bound that was exceeded.
	Limit int
}

// Error implements error.
func (e *PendingOverflowError) Error() string {
	return fmt.Sprintf("resilience: rank %d: peer %d overflowed the pending buffer (> %d early data frames; peer streams without consuming)",
		e.Rank, e.Peer, e.Limit)
}

// acceptData handles a valid incoming data frame outside Recv: duplicates
// are re-acknowledged (their ack may have been damaged), in-order data is
// buffered for a later Recv. It does not acknowledge buffered data — the
// matching Recv does, which keeps the peer's ack-wait alive until this
// endpoint has genuinely caught up.
func (rl *Reliable) acceptData(peer int, f []float64) {
	seq := int(f[1])
	switch expected := rl.nextRecv[peer]; {
	case seq < expected:
		rl.r.Send(peer, ackFrame(seq, ackOK))
	case seq == expected:
		if len(rl.pending[peer]) >= DefaultMaxPending {
			panic(&PendingOverflowError{Rank: rl.r.ID(), Peer: peer, Limit: DefaultMaxPending})
		}
		payload := make([]float64, len(f)-3)
		copy(payload, f[3:])
		rl.pending[peer] = append(rl.pending[peer], pendingFrame{seq: seq, data: payload})
		rl.nextRecv[peer] = expected + 1
	default:
		panic(fmt.Sprintf("resilience: rank %d expected seq <= %d from rank %d, got %d (endpoint not using Reliable?)",
			rl.r.ID(), expected, peer, seq))
	}
}

// Recv returns the next in-order uncorrupted payload from src.
func (rl *Reliable) Recv(src int) []float64 {
	if q := rl.pending[src]; len(q) > 0 {
		rl.pending[src] = q[1:]
		rl.r.Send(src, ackFrame(q[0].seq, ackOK))
		return q[0].data
	}
	expected := rl.nextRecv[src]
	for {
		f := rl.r.Recv(src)
		switch classify(f) {
		case frameData:
			seq := int(f[1])
			switch {
			case seq == expected:
				rl.nextRecv[src] = expected + 1
				rl.r.Send(src, ackFrame(seq, ackOK))
				out := make([]float64, len(f)-3)
				copy(out, f[3:])
				return out
			case seq < expected:
				rl.r.Send(src, ackFrame(seq, ackOK))
			default:
				panic(fmt.Sprintf("resilience: rank %d expected seq %d from rank %d, got %d (endpoint not using Reliable?)",
					rl.r.ID(), expected, src, seq))
			}
		case frameAck:
			// A stale or crossed ack from a concluded exchange: absorb.
		default:
			rl.r.Send(src, ackFrame(expected, ackBad))
		}
	}
}

// AllReduceSum combines every rank's equal-length vector elementwise over a
// binomial tree (reduce to rank 0, broadcast back) carried entirely on the
// reliable channel, so a corrupted link cannot silently alter the result —
// the failure detector rides on this, and a detector that can be corrupted
// into seeing phantom crashes would desynchronize the recovery protocol.
// Every rank of the cluster must call it in the same program position.
func (rl *Reliable) AllReduceSum(data []float64) []float64 {
	r := rl.r
	p, me := r.P(), r.ID()
	acc := make([]float64, len(data))
	copy(acc, data)
	parent := -1
	for bit := 1; bit < p; bit <<= 1 {
		if me&bit != 0 {
			parent = me &^ bit
			rl.Send(parent, acc)
			break
		}
		if partner := me | bit; partner < p {
			contrib := rl.Recv(partner)
			r.Compute(float64(len(acc)))
			for i, v := range contrib {
				acc[i] += v
			}
		}
	}
	if parent >= 0 {
		acc = rl.Recv(parent)
	}
	low := me & -me
	if me == 0 {
		low = 1
		for low < p {
			low <<= 1
		}
	}
	for bit := low >> 1; bit > 0; bit >>= 1 {
		if child := me | bit; child != me && child < p {
			rl.Send(child, acc)
		}
	}
	return acc
}
