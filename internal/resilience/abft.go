package resilience

import (
	"fmt"
	"math"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// Result bundles the assembled product and the simulation statistics of a
// fault-tolerant run; the Stats include every detection, recovery and
// replay cost, so core.PriceSim prices resilience like any other work.
type Result struct {
	C   *matrix.Dense
	Sim *sim.Result
}

// ABFT25D computes C = A·B on a q×q×c cuboid of p = q²·c ranks with the
// SUMMA-based 2.5D algorithm, hardened against the rank crashes of a
// sim.FaultPlan (which must set Respawn when it schedules crashes).
//
// The 2.5D replication factor c doubles as the redundancy of the scheme:
// after the fiber-replication step every rank in a fiber holds identical
// resident A and B blocks, and the SUMMA variant never mutates them (unlike
// Cannon's shifts), so a crashed rank can
//
//   - restore its resident blocks from any live fiber sibling (phase A), and
//   - rebuild its partial C by replaying the outer-product panels it has
//     already consumed, re-fetching each panel from its in-layer owner and
//     recomputing the multiply (phase B).
//
// Failure detection is a world-wide all-reduce of a p-word crash bitmap
// after the replication step and after every panel step; its cost, like the
// recovery traffic and the replayed flops, is charged to the normal
// counters. All inter-layer (fiber) traffic — replication, detection and
// the final reduction of partial C blocks — travels over the checksummed
// Reliable channel, so corruption injected on fiber links is masked; the
// intra-layer panel broadcasts stay on raw channels.
//
// A crash is unrecoverable when every rank of a fiber crashes in the same
// round — in particular always when c = 1, where the algorithm degenerates
// to plain SUMMA with detection but no redundancy.
//
// With a fault-free plan the result and per-rank Stats are identical to an
// un-hardened run plus the detection and checksum overhead; with a given
// seeded plan both are byte-identical across runs.
func ABFT25D(cost sim.Cost, q, c int, a, b *matrix.Dense) (*Result, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("resilience: need equal square operands, got %dx%d and %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if q <= 0 || n%q != 0 {
		return nil, fmt.Errorf("resilience: matrix size %d not divisible by grid size %d", n, q)
	}
	if c <= 0 || q%c != 0 {
		return nil, fmt.Errorf("resilience: replication factor %d must divide grid size %d", c, q)
	}
	if fp := cost.Faults; fp != nil && len(fp.Crashes) > 0 && !fp.Respawn {
		return nil, fmt.Errorf("resilience: ABFT recovery needs FaultPlan.Respawn (hard crashes kill the rank before recovery can run)")
	}
	nb := n / q
	grid, err := sim.NewGrid3D(q, c, q*q*c)
	if err != nil {
		return nil, err
	}
	layer0 := grid.LayerGrid()
	cBlocks := make([]*matrix.Dense, q*q)
	panelsPerLayer := q / c

	res, err := sim.Run(q*q*c, cost, func(r *sim.Rank) error {
		row, col, layer := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		r.Alloc(3 * nb * nb)
		st := &abftRank{
			r: r, rel: NewReliable(r), grid: grid,
			nb: nb, panels: panelsPerLayer,
		}

		// Replicate the layer-0 blocks down the fiber over the reliable
		// channel, so corruption injected on fiber links is masked.
		if layer == 0 {
			st.aBlk = a.Block(row*nb, col*nb, nb, nb)
			st.bBlk = b.Block(row*nb, col*nb, nb, nb)
			for l := 1; l < c; l++ {
				st.rel.Send(grid.RankAt(row, col, l), st.aBlk.Data)
				st.rel.Send(grid.RankAt(row, col, l), st.bBlk.Data)
			}
		} else {
			src := grid.RankAt(row, col, 0)
			st.aBlk = matrix.FromData(nb, nb, st.rel.Recv(src))
			st.bBlk = matrix.FromData(nb, nb, st.rel.Recv(src))
		}
		st.cBlk = matrix.New(nb, nb)

		if err := st.detectAndRecover(); err != nil {
			return err
		}
		for s := 0; s < panelsPerLayer; s++ {
			t := layer*panelsPerLayer + s
			aPanel := rowComm.BcastLarge(t, dataIf(col == t, st.aBlk))
			bPanel := colComm.BcastLarge(t, dataIf(row == t, st.bBlk))
			matrix.MulAdd(st.cBlk, matrix.FromData(nb, nb, aPanel), matrix.FromData(nb, nb, bPanel))
			r.Compute(matrix.MulFlops(nb, nb, nb))
			st.done++
			if err := st.detectAndRecover(); err != nil {
				return err
			}
		}

		// Sum the partial C blocks onto layer 0 over the reliable channel
		// (linear in c — the replication factor is small by construction).
		if layer == 0 {
			for l := 1; l < c; l++ {
				contrib := st.rel.Recv(grid.RankAt(row, col, l))
				r.Compute(float64(len(contrib)))
				for i, v := range contrib {
					st.cBlk.Data[i] += v
				}
			}
			cBlocks[layer0.RankAt(row, col)] = st.cBlk
		} else {
			st.rel.Send(grid.RankAt(row, col, 0), st.cBlk.Data)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := matrix.New(n, n)
	for id, blk := range cBlocks {
		if blk == nil {
			continue
		}
		brow, bcol := layer0.Coords(id)
		out.SetBlock(brow*nb, bcol*nb, blk)
	}
	return &Result{C: out, Sim: res}, nil
}

// abftRank is the per-rank state the recovery protocol operates on.
type abftRank struct {
	r    *sim.Rank
	rel  *Reliable
	grid sim.Grid3D
	nb   int
	// panels is the number of panel steps per layer (q/c); done counts the
	// steps this rank has completed, i.e. how much of cBlk a replay must
	// reconstruct.
	panels int
	done   int
	aBlk   *matrix.Dense
	bBlk   *matrix.Dense
	cBlk   *matrix.Dense
}

// detectAndRecover runs one failure-detection round and, when the bitmap
// reports casualties, the two-phase recovery. Every rank derives the same
// schedule from the same bitmap, so the point-to-point recovery traffic
// pairs up without further coordination.
func (st *abftRank) detectAndRecover() error {
	bitmap := crashBitmap(st.rel)
	var crashed []int
	for id, v := range bitmap {
		if v > 0 {
			crashed = append(crashed, id)
		}
	}
	if len(crashed) == 0 {
		return nil
	}
	nb, grid := st.nb, st.grid
	// A crashed rank's application data is gone; scrub it so an incomplete
	// recovery poisons the result instead of silently passing.
	if bitmap[st.r.ID()] > 0 {
		scrub(st.aBlk.Data)
		scrub(st.bBlk.Data)
		scrub(st.cBlk.Data)
	}
	// Phase A: restore every casualty's resident blocks from the first
	// fiber sibling that did not crash this round.
	for _, d := range crashed {
		rd, cd, _ := grid.Coords(d)
		donor := -1
		for l := 0; l < grid.Layers; l++ {
			if cand := grid.RankAt(rd, cd, l); cand != d && bitmap[cand] == 0 {
				donor = cand
				break
			}
		}
		if donor < 0 {
			return fmt.Errorf("resilience: rank %d unrecoverable: every replica in its fiber crashed (c=%d)", d, grid.Layers)
		}
		switch st.r.ID() {
		case donor:
			st.rel.Send(d, st.aBlk.Data)
			st.rel.Send(d, st.bBlk.Data)
		case d:
			st.aBlk = matrix.FromData(nb, nb, st.rel.Recv(donor))
			st.bBlk = matrix.FromData(nb, nb, st.rel.Recv(donor))
		}
	}
	// Phase B: rebuild every casualty's partial C by replaying the panel
	// steps it has completed, re-fetching each panel from its in-layer
	// owner (whose resident block phase A made valid if it, too, crashed).
	for _, d := range crashed {
		rd, cd, ld := grid.Coords(d)
		if st.r.ID() == d {
			st.cBlk = matrix.New(nb, nb)
		}
		for s := 0; s < st.done; s++ {
			t := ld*st.panels + s
			aOwner := grid.RankAt(rd, t, ld)
			bOwner := grid.RankAt(t, cd, ld)
			if st.r.ID() == aOwner && aOwner != d {
				st.rel.Send(d, st.aBlk.Data)
			}
			if st.r.ID() == bOwner && bOwner != d {
				st.rel.Send(d, st.bBlk.Data)
			}
			if st.r.ID() == d {
				aPanel := st.aBlk.Data
				if aOwner != d {
					aPanel = st.rel.Recv(aOwner)
				}
				bPanel := st.bBlk.Data
				if bOwner != d {
					bPanel = st.rel.Recv(bOwner)
				}
				matrix.MulAdd(st.cBlk, matrix.FromData(nb, nb, aPanel), matrix.FromData(nb, nb, bPanel))
				st.r.Compute(matrix.MulFlops(nb, nb, nb))
			}
		}
	}
	return nil
}

// crashBitmap is one failure-detection round: each rank contributes its
// TakeCrashed flag and a reliable all-reduce gives everyone the same p-word
// view. Riding on Reliable matters: a corrupted raw collective could plant
// phantom crashes in half the machine and desynchronize the recovery
// schedule.
func crashBitmap(rel *Reliable) []float64 {
	bm := make([]float64, rel.r.P())
	if rel.r.TakeCrashed() {
		bm[rel.r.ID()] = 1
	}
	return rel.AllReduceSum(bm)
}

// scrub overwrites lost data with NaN so it can never masquerade as valid.
func scrub(xs []float64) {
	for i := range xs {
		xs[i] = math.NaN()
	}
}

// dataIf returns the block's data when cond holds, else nil (non-roots pass
// nil into broadcasts).
func dataIf(cond bool, blk *matrix.Dense) []float64 {
	if cond {
		return blk.Data
	}
	return nil
}
