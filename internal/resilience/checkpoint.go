package resilience

import (
	"fmt"

	"perfscale/internal/sim"
)

// CheckpointResult bundles the final per-rank states and the simulation
// statistics of a checkpointed run, checkpoint and rollback costs included.
type CheckpointResult struct {
	States [][]float64
	Sim    *sim.Result
}

// RunCheckpointed executes an iterative SPMD kernel under in-memory buddy
// checkpointing with coordinated rollback. init produces rank r's initial
// state; step advances it by one iteration (it may communicate through w
// and must be deterministic given (iter, state), since rollback re-executes
// it).
//
// Every `every` iterations each rank snapshots its state and ships the
// snapshot to its buddy, rank (id+1) mod p, over the checksummed Reliable
// channel (so a corrupted checkpoint transfer is retransmitted, never
// silently kept). After every step a world all-reduce of a p-word crash
// bitmap detects casualties; on detection the buddies re-seed the crashed
// ranks' snapshots and every rank — crashed or not — rolls back to the last
// checkpoint and re-executes, which keeps the global state consistent. The
// repeated iterations, snapshot traffic and detection all-reduces flow
// through the normal Stats, so the energy price of the checkpoint interval
// is measurable with core.PriceSim.
//
// A round is unrecoverable when a rank and its buddy crash together (the
// only copies of the rank's snapshot die at once) and always when p = 1.
func RunCheckpointed(cost sim.Cost, p, iters, every int,
	init func(r *sim.Rank) []float64,
	step func(r *sim.Rank, w *sim.Comm, iter int, state []float64) []float64,
) (*CheckpointResult, error) {
	if p <= 0 {
		return nil, fmt.Errorf("resilience: need at least one rank, got %d", p)
	}
	if iters < 0 || every <= 0 {
		return nil, fmt.Errorf("resilience: need iters >= 0 and every > 0, got %d and %d", iters, every)
	}
	if fp := cost.Faults; fp != nil && len(fp.Crashes) > 0 && !fp.Respawn {
		return nil, fmt.Errorf("resilience: checkpoint recovery needs FaultPlan.Respawn")
	}
	finals := make([][]float64, p)
	res, err := sim.Run(p, cost, func(r *sim.Rank) error {
		w := r.World()
		rel := NewReliable(r)
		id := r.ID()
		buddy := (id + 1) % p
		ward := (id - 1 + p) % p

		state := init(r)
		myCkpt := cloneState(state)
		ckptIter := 0
		var wardCkpt []float64

		// exchange ships myCkpt around the ring: rank rnd sends while rank
		// rnd+1 receives, serialized so the blocking ack protocol never
		// forms a cycle. O(p) latency per checkpoint — simple and correct.
		exchange := func() {
			for rnd := 0; rnd < p; rnd++ {
				if id == rnd {
					rel.Send(buddy, myCkpt)
				}
				if id == (rnd+1)%p {
					wardCkpt = rel.Recv(ward)
				}
			}
		}
		if p > 1 {
			exchange()
		}

		for i := 0; i < iters; {
			state = step(r, w, i, state)
			i++
			bitmap := crashBitmap(rel)
			var crashed []int
			for cid, v := range bitmap {
				if v > 0 {
					crashed = append(crashed, cid)
				}
			}
			if len(crashed) == 0 {
				if i%every == 0 && i < iters {
					myCkpt = cloneState(state)
					ckptIter = i
					if p > 1 {
						exchange()
					}
				}
				continue
			}
			// Everything the casualty held — live state and both snapshot
			// copies — is lost.
			if bitmap[id] > 0 {
				scrub(state)
				scrub(myCkpt)
				scrub(wardCkpt)
			}
			// Phase 1: each casualty's buddy re-seeds its snapshot. A rank
			// that crashed together with its buddy is unrecoverable: both
			// copies of its snapshot died in the same round.
			for _, d := range crashed {
				db := (d + 1) % p
				if p == 1 || bitmap[db] > 0 {
					return fmt.Errorf("resilience: rank %d unrecoverable: its buddy rank %d crashed in the same round", d, db)
				}
				if id == db {
					rel.Send(d, wardCkpt)
				}
				if id == d {
					myCkpt = rel.Recv(db)
				}
			}
			// Phase 2: re-seed each casualty's ward snapshot from the ward's
			// own copy (valid by now: phase 1 repaired crashed wards first).
			for _, d := range crashed {
				dw := (d - 1 + p) % p
				if id == dw && dw != d {
					rel.Send(d, myCkpt)
				}
				if id == d && dw != d {
					wardCkpt = rel.Recv(dw)
				}
			}
			// Coordinated rollback: every rank returns to the checkpointed
			// iteration so the re-execution sees a globally consistent state.
			state = cloneState(myCkpt)
			i = ckptIter
		}
		finals[id] = state
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &CheckpointResult{States: finals, Sim: res}, nil
}

func cloneState(xs []float64) []float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	return cp
}
