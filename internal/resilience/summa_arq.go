package resilience

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// SUMMAARQResult bundles the assembled product, the simulation statistics,
// and the per-rank ARQ protocol counters of a drop-masked run.
type SUMMAARQResult struct {
	C   *matrix.Dense
	Sim *sim.Result
	// ARQ holds each rank's endpoint counters; Report sums them.
	ARQ []ARQStats
}

// Report returns the cluster-wide sum of the per-rank ARQ counters.
func (r *SUMMAARQResult) Report() ARQStats {
	var total ARQStats
	for _, s := range r.ARQ {
		total.Add(s)
	}
	return total
}

// SUMMAARQ computes C = A·B on a q×q grid with the SUMMA algorithm carried
// entirely over the timer-aware ARQ endpoint: every panel broadcast is a
// binomial tree of acknowledged, retransmit-on-timeout transfers. Unlike
// the raw-channel SUMMA — where a single silently dropped message hangs
// the run until the watchdog aborts it — a SUMMAARQ run under a lossy
// sim.FaultPlan completes, bit-identical to its fault-free self, with the
// retransmission and timeout costs priced into the normal counters.
//
// SUMMA is the deliberate choice of algorithm: its broadcasts are trees,
// and trees keep every ARQ conversation pairwise nested. Cannon-style
// shift rings interleave each rank's send with a receive from a different
// neighbour, which deadlocks once an ack wait can interpose — rings must
// stay on raw channels.
func SUMMAARQ(cost sim.Cost, q int, cfg ARQConfig, a, b *matrix.Dense) (*SUMMAARQResult, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("resilience: need equal square operands, got %dx%d and %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if q <= 0 || n%q != 0 {
		return nil, fmt.Errorf("resilience: matrix size %d not divisible by grid size %d", n, q)
	}
	nb := n / q
	p := q * q
	grid := sim.Grid2D{Rows: q, Cols: q}
	cBlocks := make([]*matrix.Dense, p)
	reports := make([]ARQStats, p)

	res, err := sim.Run(p, cost, func(r *sim.Rank) error {
		row, col := grid.Coords(r.ID())
		arq := NewARQ(r, cfg)
		defer func() { reports[r.ID()] = arq.Stats() }()
		r.Alloc(3 * nb * nb)
		aBlk := a.Block(row*nb, col*nb, nb, nb)
		bBlk := b.Block(row*nb, col*nb, nb, nb)
		cBlk := matrix.New(nb, nb)

		rowMembers := make([]int, q)
		colMembers := make([]int, q)
		for i := 0; i < q; i++ {
			rowMembers[i] = grid.RankAt(row, i)
			colMembers[i] = grid.RankAt(i, col)
		}

		for t := 0; t < q; t++ {
			// Phase marks are free when unobserved; campaign-style tooling
			// enumerates them as crash-injection candidates.
			r.Phase(fmt.Sprintf("panel-%d", t))
			aPanel, err := arq.Bcast(rowMembers, grid.RankAt(row, t), dataIf(col == t, aBlk))
			if err != nil {
				return err
			}
			bPanel, err := arq.Bcast(colMembers, grid.RankAt(t, col), dataIf(row == t, bBlk))
			if err != nil {
				return err
			}
			matrix.MulAdd(cBlk, matrix.FromData(nb, nb, aPanel), matrix.FromData(nb, nb, bPanel))
			r.Compute(matrix.MulFlops(nb, nb, nb))
		}
		cBlocks[r.ID()] = cBlk
		return nil
	})
	if err != nil {
		return nil, err
	}

	c := matrix.New(n, n)
	for id, blk := range cBlocks {
		brow, bcol := grid.Coords(id)
		c.SetBlock(brow*nb, bcol*nb, blk)
	}
	return &SUMMAARQResult{C: c, Sim: res, ARQ: reports}, nil
}
