package resilience_test

import (
	"errors"
	"testing"
	"time"

	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// arqCost gives runs a virtual clock and a fast watchdog window; ARQ
// timeouts fire at quiescence, so every masked drop costs about one window
// of real time.
func arqCost() sim.Cost {
	return sim.Cost{
		GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6,
		WatchdogTimeout: 40 * time.Millisecond,
	}
}

func TestARQDeliversInOrder(t *testing.T) {
	const msgs = 10
	cfg := resilience.ARQDefaults(arqCost(), 2)
	var senderStats resilience.ARQStats
	_, err := sim.Run(2, arqCost(), func(r *sim.Rank) error {
		arq := resilience.NewARQ(r, cfg)
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				if err := arq.Send(1, []float64{float64(i), float64(2 * i)}); err != nil {
					return err
				}
			}
			senderStats = arq.Stats()
			return nil
		}
		for i := 0; i < msgs; i++ {
			got, err := arq.Recv(0)
			if err != nil {
				return err
			}
			if len(got) != 2 || got[0] != float64(i) || got[1] != float64(2*i) {
				t.Errorf("message %d mangled: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderStats.Retransmits != 0 || senderStats.Timeouts != 0 {
		t.Errorf("fault-free run paid protocol overhead: %+v", senderStats)
	}
}

// TestARQMasksSilentDrops is the capability Reliable lacks: silently
// dropped frames — in both the data and the ack direction — are recovered
// by timeout-driven retransmission instead of hanging until the watchdog
// aborts the run.
func TestARQMasksSilentDrops(t *testing.T) {
	const msgs = 12
	cost := arqCost()
	cost.Faults = &sim.FaultPlan{
		Seed:  21,
		Links: []sim.LinkFault{{Src: -1, Dst: -1, DropProb: 0.25}},
	}
	cfg := resilience.ARQDefaults(cost, 2)
	var senderStats resilience.ARQStats
	_, err := sim.Run(2, cost, func(r *sim.Rank) error {
		arq := resilience.NewARQ(r, cfg)
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				if err := arq.Send(1, []float64{float64(i), 100 + float64(i)}); err != nil {
					return err
				}
			}
			senderStats = arq.Stats()
			return nil
		}
		for i := 0; i < msgs; i++ {
			got, err := arq.Recv(0)
			if err != nil {
				return err
			}
			if len(got) != 2 || got[0] != float64(i) || got[1] != 100+float64(i) {
				t.Errorf("message %d mangled: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderStats.Retransmits == 0 {
		t.Error("drop plan injected no retransmissions; the test exercises nothing")
	}
}

// TestARQPeerFailureExited checks accurate detection: a peer that dies is
// reported as an Exited PeerFailure carrying the peer's own error, not as
// a suspicion and not as a watchdog abort.
func TestARQPeerFailureExited(t *testing.T) {
	boom := errors.New("boom")
	cfg := resilience.ARQDefaults(arqCost(), 1)
	_, err := sim.Run(2, arqCost(), func(r *sim.Rank) error {
		if r.ID() == 1 {
			return boom
		}
		arq := resilience.NewARQ(r, cfg)
		if err := arq.Send(1, []float64{42}); err != nil {
			return err
		}
		return errors.New("send to a dead peer succeeded")
	})
	var pf *resilience.PeerFailure
	if !errors.As(err, &pf) {
		t.Fatalf("want *PeerFailure in %v", err)
	}
	if !pf.Exited || pf.Clean {
		t.Errorf("want accurate unclean exit detection, got %+v", pf)
	}
	if !errors.Is(err, boom) {
		t.Errorf("PeerFailure should carry the peer's cause; got %v", err)
	}
}

// TestARQPeerFailureSuspected checks timeout-based detection: a peer that
// stays alive but silent past the detector budget becomes a suspected
// PeerFailure after exactly DetectorMisses silent windows.
func TestARQPeerFailureSuspected(t *testing.T) {
	cfg := resilience.ARQDefaults(arqCost(), 1)
	cfg.DetectorMisses = 2
	pings := 0
	_, err := sim.Run(2, arqCost(), func(r *sim.Rank) error {
		if r.ID() == 1 {
			// Alive but unresponsive: consume whatever arrives (the
			// detector's pings) without ever answering.
			for {
				_, out := r.RecvTimeout(0, 1e9)
				if out != sim.RecvOK {
					return nil
				}
				pings++
			}
		}
		arq := resilience.NewARQ(r, cfg)
		_, err := arq.Recv(1)
		return err
	})
	var pf *resilience.PeerFailure
	if !errors.As(err, &pf) {
		t.Fatalf("want *PeerFailure in %v", err)
	}
	if pf.Exited || pf.Misses != cfg.DetectorMisses {
		t.Errorf("want suspicion after %d misses, got %+v", cfg.DetectorMisses, pf)
	}
	if pings == 0 {
		t.Error("detector declared failure without probing first")
	}
}

// TestARQHeartbeatCoversLongCompute: without beats, a compute phase longer
// than the detector budget is a false positive; with beats, the same phase
// passes. Both outcomes are decided purely by virtual stamps.
func TestARQHeartbeatCoversLongCompute(t *testing.T) {
	base := arqCost()
	cfg := resilience.ARQDefaults(base, 1)
	cfg.RTO = 0.25
	cfg.Backoff = 1 // constant windows: the silence budget is exactly 3·2 = 6 s
	cfg.DetectorInterval = 2
	cfg.DetectorMisses = 3

	run := func(beats bool) error {
		_, err := sim.Run(2, base, func(r *sim.Rank) error {
			arq := resilience.NewARQ(r, cfg)
			if r.ID() == 1 {
				for i := 0; i < 5; i++ {
					if beats {
						if err := arq.Heartbeat(0); err != nil {
							return err
						}
					}
					r.Compute(3e9) // 3 virtual seconds at γt = 1e-9
				}
				return arq.Send(0, []float64{7})
			}
			got, err := arq.Recv(1)
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != 7 {
				t.Errorf("payload mangled: %v", got)
			}
			return nil
		})
		return err
	}

	var pf *resilience.PeerFailure
	if err := run(false); !errors.As(err, &pf) {
		t.Errorf("15s of silence against a 6s budget should be a PeerFailure, got %v", err)
	}
	if err := run(true); err != nil {
		t.Errorf("heartbeats every 3s against a 6s budget should pass, got %v", err)
	}
}

// TestReliablePendingOverflow forges in-order DATA frames from a raw peer
// at a Reliable endpoint parked in an ack wait, and checks the buffer cap
// converts unbounded growth into a typed error instead of an OOM.
func TestReliablePendingOverflow(t *testing.T) {
	const forged = resilience.DefaultMaxPending + 1
	_, err := sim.Run(2, arqCost(), func(r *sim.Rank) error {
		if r.ID() == 1 {
			// A buggy peer: streams frames, never consumes, never acks.
			for i := 0; i < forged; i++ {
				r.Send(0, resilience.DataFrame(i, []float64{float64(i)}))
			}
			return nil
		}
		rel := resilience.NewReliable(r)
		rel.Send(1, []float64{1}) // parks rank 0 in the ack wait
		return errors.New("ack wait ended without an overflow")
	})
	var poe *resilience.PendingOverflowError
	if !errors.As(err, &poe) {
		t.Fatalf("want *PendingOverflowError in %v", err)
	}
	if poe.Rank != 0 || poe.Peer != 1 || poe.Limit != resilience.DefaultMaxPending {
		t.Errorf("overflow misattributed: %+v", poe)
	}
}

// TestARQPendingOverflow checks the ARQ endpoint enforces the same bound
// through its error-returning contract.
func TestARQPendingOverflow(t *testing.T) {
	cfg := resilience.ARQDefaults(arqCost(), 1)
	cfg.MaxPending = 8
	_, err := sim.Run(2, arqCost(), func(r *sim.Rank) error {
		if r.ID() == 1 {
			for i := 0; i < cfg.MaxPending+1; i++ {
				r.Send(0, resilience.DataFrame(i, []float64{float64(i)}))
			}
			return nil
		}
		arq := resilience.NewARQ(r, cfg)
		return arq.Send(1, []float64{1})
	})
	var poe *resilience.PendingOverflowError
	if !errors.As(err, &poe) {
		t.Fatalf("want *PendingOverflowError in %v", err)
	}
	if poe.Limit != cfg.MaxPending {
		t.Errorf("want configured limit %d, got %+v", cfg.MaxPending, poe)
	}
}

func TestARQBcastTree(t *testing.T) {
	const p = 8
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	payload := []float64{3, 1, 4, 1, 5}
	cfg := resilience.ARQDefaults(arqCost(), len(payload))
	_, err := sim.Run(p, arqCost(), func(r *sim.Rank) error {
		arq := resilience.NewARQ(r, cfg)
		got, err := arq.Bcast(members, 3, dataIfTest(r.ID() == 3, payload))
		if err != nil {
			return err
		}
		for i, v := range payload {
			if got[i] != v {
				t.Errorf("rank %d word %d: got %g want %g", r.ID(), i, got[i], v)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func dataIfTest(cond bool, data []float64) []float64 {
	if cond {
		return data
	}
	return nil
}

// TestARQPendingOverflowFromARQPeer drives the pending bound through honest
// two-sided protocol traffic (TestARQPendingOverflow above forges raw
// frames): rank 0 parks in an ack wait whose RTO is effectively infinite
// while rank 1 pushes three genuine ARQ transfers at it. With MaxPending=2
// the third in-order frame must surface *PendingOverflowError out of rank
// 0's own Send, attributed to the overflowing endpoint.
func TestARQPendingOverflowFromARQPeer(t *testing.T) {
	slowCfg := resilience.ARQDefaults(arqCost(), 2)
	slowCfg.RTO = 10 // virtual seconds: parks rank 0 for the whole run
	slowCfg.MaxPending = 2
	fastCfg := resilience.ARQDefaults(arqCost(), 2)
	fastCfg.MaxAttempts = 3

	_, err := sim.Run(2, arqCost(), func(r *sim.Rank) error {
		if r.ID() == 0 {
			arq := resilience.NewARQ(r, slowCfg)
			// Never acked (the peer only sends), so this sits in the ack
			// wait accepting the peer's early data until the bound trips.
			return arq.Send(1, []float64{1})
		}
		arq := resilience.NewARQ(r, fastCfg)
		for i := 0; i < slowCfg.MaxPending+1; i++ {
			// The first copies park unacknowledged; retransmits of parked
			// frames are dup-acked, and the final transfer completes
			// optimistically — either way the sender's exit stays clean,
			// so the only error in the run is the receiver's overflow.
			if err := arq.Send(0, []float64{float64(i)}); err != nil {
				return nil
			}
		}
		return nil
	})
	var poe *resilience.PendingOverflowError
	if !errors.As(err, &poe) {
		t.Fatalf("want *PendingOverflowError in %v", err)
	}
	if poe.Rank != 0 || poe.Peer != 1 || poe.Limit != slowCfg.MaxPending {
		t.Errorf("overflow misattributed: %+v", poe)
	}
}

// TestARQOptimisticCompletionAtMaxAttempts exercises the MaxAttempts
// boundary on a one-way blackhole link (every copy rank 0 sends toward
// rank 1 drops, the reverse direction is clean). The sender must exhaust
// exactly its budget — MaxAttempts timeouts, MaxAttempts-1 retransmits —
// and then complete optimistically rather than deadlock; the residual risk
// lands on the receiver, whose Recv converts the sender's clean exit into
// a typed *PeerFailure with Exited && Clean set.
func TestARQOptimisticCompletionAtMaxAttempts(t *testing.T) {
	cost := arqCost()
	cost.Faults = &sim.FaultPlan{
		Seed:  7,
		Links: []sim.LinkFault{{Src: 0, Dst: 1, DropProb: 1}},
	}
	cfg := resilience.ARQDefaults(cost, 1)
	cfg.MaxAttempts = 3

	var senderStats resilience.ARQStats
	var recvErr error
	_, err := sim.Run(2, cost, func(r *sim.Rank) error {
		arq := resilience.NewARQ(r, cfg)
		if r.ID() == 0 {
			if err := arq.Send(1, []float64{42}); err != nil {
				return err
			}
			senderStats = arq.Stats()
			return nil
		}
		_, recvErr = arq.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("run must complete (that is the point of optimistic completion): %v", err)
	}
	if senderStats.OptimisticSends != 1 {
		t.Errorf("OptimisticSends = %d, want 1", senderStats.OptimisticSends)
	}
	if senderStats.Timeouts != cfg.MaxAttempts {
		t.Errorf("Timeouts = %d, want the full budget %d", senderStats.Timeouts, cfg.MaxAttempts)
	}
	if senderStats.Retransmits != cfg.MaxAttempts-1 {
		t.Errorf("Retransmits = %d, want %d (no retransmit after the final timeout)",
			senderStats.Retransmits, cfg.MaxAttempts-1)
	}
	var pf *resilience.PeerFailure
	if !errors.As(recvErr, &pf) {
		t.Fatalf("receiver error = %v, want *PeerFailure", recvErr)
	}
	if !pf.Exited || !pf.Clean {
		t.Errorf("residual-risk verdict = %+v, want Exited && Clean (sender finished optimistically)", pf)
	}
}

// TestARQRecoversJustBeforeMaxAttempts is the contrast case one step inside
// the boundary: the drop window covers only the first copy, the first
// retransmit lands, and the transfer completes normally — one timeout, one
// retransmit, no optimistic completion, payload intact at the receiver.
func TestARQRecoversJustBeforeMaxAttempts(t *testing.T) {
	cost := arqCost()
	cfg := resilience.ARQDefaults(cost, 2)
	cfg.MaxAttempts = 3
	// The first data copy leaves within half an RTO of the clock origin
	// and drops; the retransmit fires a full (jittered) RTO later, outside
	// the window, and delivers.
	cost.Faults = &sim.FaultPlan{
		Seed:  7,
		Links: []sim.LinkFault{{Src: 0, Dst: 1, From: 0, Until: 0.5 * cfg.RTO, DropProb: 1}},
	}

	var senderStats resilience.ARQStats
	var got []float64
	_, err := sim.Run(2, cost, func(r *sim.Rank) error {
		arq := resilience.NewARQ(r, cfg)
		if r.ID() == 0 {
			if err := arq.Send(1, []float64{3, 9}); err != nil {
				return err
			}
			senderStats = arq.Stats()
			return nil
		}
		var err error
		got, err = arq.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Errorf("payload after masked drop = %v, want [3 9]", got)
	}
	if senderStats.Timeouts != 1 || senderStats.Retransmits != 1 || senderStats.OptimisticSends != 0 {
		t.Errorf("stats = %+v, want exactly one timeout, one retransmit, no optimistic completion", senderStats)
	}
}
