package resilience_test

import (
	"strings"
	"testing"

	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// stencilInit and stencilStep define the demo kernel: a 1D three-point
// relaxation over a ring, state' = 0.5·self + 0.25·left + 0.25·right,
// with a compute charge so the virtual clock advances and crash times land
// mid-run.
func stencilInit(r *sim.Rank) []float64 {
	state := make([]float64, 8)
	for i := range state {
		state[i] = float64(r.ID()*len(state) + i)
	}
	return state
}

func stencilStep(r *sim.Rank, w *sim.Comm, iter int, state []float64) []float64 {
	r.Compute(1e6)              // 1 ms of virtual compute per iteration at γt = 1e-9
	left := w.Shift(state, 1)   // from the left neighbor
	right := w.Shift(state, -1) // from the right neighbor
	out := make([]float64, len(state))
	for i := range out {
		out[i] = 0.5*state[i] + 0.25*left[i] + 0.25*right[i]
	}
	return out
}

func TestCheckpointFaultFreeMatchesPlainRun(t *testing.T) {
	const p, iters, every = 4, 10, 3
	res, err := resilience.RunCheckpointed(testCost(), p, iters, every, stencilInit, stencilStep)
	if err != nil {
		t.Fatal(err)
	}
	// The same kernel run without the checkpoint machinery.
	plain := make([][]float64, p)
	if _, err := sim.Run(p, testCost(), func(r *sim.Rank) error {
		w := r.World()
		state := stencilInit(r)
		for i := 0; i < iters; i++ {
			state = stencilStep(r, w, i, state)
		}
		plain[r.ID()] = state
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for id := range plain {
		for i, v := range plain[id] {
			if res.States[id][i] != v {
				t.Fatalf("rank %d word %d: checkpointed %g != plain %g", id, i, res.States[id][i], v)
			}
		}
	}
}

func TestCheckpointRecoversFromCrash(t *testing.T) {
	const p, iters, every = 4, 10, 3
	base, err := resilience.RunCheckpointed(testCost(), p, iters, every, stencilInit, stencilStep)
	if err != nil {
		t.Fatal(err)
	}
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Crashes:    map[int]float64{2: 0.55 * base.Sim.Time()},
		Respawn:    true,
		RebootTime: 0.05 * base.Sim.Time(),
	}
	res, err := resilience.RunCheckpointed(cost, p, iters, every, stencilInit, stencilStep)
	if err != nil {
		t.Fatal(err)
	}
	// Rollback re-executes the identical arithmetic, so the final states
	// must match the fault-free run bit for bit.
	for id := range base.States {
		for i, v := range base.States[id] {
			if res.States[id][i] != v {
				t.Fatalf("rank %d word %d: recovered %g != fault-free %g", id, i, res.States[id][i], v)
			}
		}
	}
	// The rollback re-execution is visible in the counters.
	if res.Sim.TotalStats().Flops <= base.Sim.TotalStats().Flops {
		t.Errorf("re-executed iterations must cost flops: %g <= %g",
			res.Sim.TotalStats().Flops, base.Sim.TotalStats().Flops)
	}
	if res.Sim.Time() <= base.Sim.Time() {
		t.Errorf("recovery should cost time: %g <= %g", res.Sim.Time(), base.Sim.Time())
	}
}

func TestCheckpointUnrecoverableBuddyPair(t *testing.T) {
	const p, iters, every = 4, 10, 3
	base, err := resilience.RunCheckpointed(testCost(), p, iters, every, stencilInit, stencilStep)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 and its buddy rank 2 die in the same round: both copies of
	// rank 1's snapshot are gone.
	when := 0.5 * base.Sim.Time()
	cost := testCost()
	cost.Faults = &sim.FaultPlan{
		Crashes: map[int]float64{1: when, 2: when},
		Respawn: true,
	}
	_, err = resilience.RunCheckpointed(cost, p, iters, every, stencilInit, stencilStep)
	if err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Errorf("adjacent buddy crash must be unrecoverable, got %v", err)
	}
}

func TestCheckpointValidation(t *testing.T) {
	if _, err := resilience.RunCheckpointed(testCost(), 0, 5, 1, stencilInit, stencilStep); err == nil {
		t.Error("p = 0 must be rejected")
	}
	if _, err := resilience.RunCheckpointed(testCost(), 2, 5, 0, stencilInit, stencilStep); err == nil {
		t.Error("every = 0 must be rejected")
	}
	hard := testCost()
	hard.Faults = &sim.FaultPlan{Crashes: map[int]float64{0: 1}}
	if _, err := resilience.RunCheckpointed(hard, 2, 5, 1, stencilInit, stencilStep); err == nil {
		t.Error("crashes without Respawn must be rejected")
	}
}
