package resilience_test

import (
	"testing"
	"time"

	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

func TestSUMMAARQMatchesSerial(t *testing.T) {
	const q, n = 2, 8
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	cfg := resilience.ARQDefaults(arqCost(), (n/q)*(n/q))
	res, err := resilience.SUMMAARQ(arqCost(), q, cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.C.MaxAbsDiff(matmul.Serial(a, b)); diff > 1e-9 {
		t.Errorf("C diverges from serial by %g", diff)
	}
	if rep := res.Report(); rep.Retransmits != 0 || rep.Timeouts != 0 {
		t.Errorf("fault-free run paid protocol overhead: %+v", rep)
	}
}

// TestSUMMAARQMasksChaosDeterministically is the p = 64 chaos test: drops,
// duplication and corruption on every link at once. The run must complete
// (no watchdog abort), produce a C bit-identical to the fault-free run
// (retransmission changes when work happens, never what is computed), and
// replay deterministically — two runs under the same plan agree bitwise on
// every rank's Stats and on every rank's ARQ counters.
func TestSUMMAARQMasksChaosDeterministically(t *testing.T) {
	const q, n = 8, 64
	a := matrix.Random(n, n, 3)
	b := matrix.Random(n, n, 4)
	cost := sim.Cost{
		GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6,
		WatchdogTimeout: 10 * time.Millisecond,
	}
	cfg := resilience.ARQDefaults(cost, (n/q)*(n/q))

	clean, err := resilience.SUMMAARQ(cost, q, cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}

	chaos := cost
	chaos.Faults = &sim.FaultPlan{
		Seed: 99,
		Links: []sim.LinkFault{
			{Src: -1, Dst: -1, DropProb: 0.01, DupProb: 0.02, CorruptProb: 0.02},
		},
	}
	run1, err := resilience.SUMMAARQ(chaos, q, cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := resilience.SUMMAARQ(chaos, q, cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}

	for i, v := range clean.C.Data {
		if run1.C.Data[i] != v {
			t.Fatalf("C word %d: chaos run %v differs from clean %v", i, run1.C.Data[i], v)
		}
	}
	rep := run1.Report()
	if rep.Retransmits == 0 || rep.DupsAbsorbed == 0 {
		t.Errorf("chaos plan exercised nothing: %+v", rep)
	}
	if cleanRep := clean.Report(); cleanRep.Retransmits != 0 {
		t.Errorf("fault-free run retransmitted: %+v", cleanRep)
	}

	for id := range run1.Sim.PerRank {
		if run1.Sim.PerRank[id] != run2.Sim.PerRank[id] {
			t.Errorf("rank %d sim stats differ across replays:\n  %+v\n  %+v",
				id, run1.Sim.PerRank[id], run2.Sim.PerRank[id])
		}
		if run1.ARQ[id] != run2.ARQ[id] {
			t.Errorf("rank %d ARQ counters differ across replays:\n  %+v\n  %+v",
				id, run1.ARQ[id], run2.ARQ[id])
		}
	}
}
