// Package resilience provides fault-tolerant building blocks on top of the
// virtual-time simulator, so the energy cost of resilience can be measured
// with the paper's model (Eq. 2) exactly like any other communication or
// computation: every retransmission, checksum, checkpoint and replayed flop
// flows through the normal sim.Stats counters and is priced by
// core.PriceSim.
//
// Three layers:
//
//   - Reliable: a checksummed, acknowledged point-to-point channel that
//     masks message corruption and duplication injected by a sim.FaultPlan.
//     It has no timers (virtual time has no timeouts), so unbounded message
//     loss is not retransmitted — a dropped packet leaves both ends blocked
//     and the runtime watchdog converts the hang into a DeadlockError.
//
//   - ABFT25D: the 2.5D SUMMA matrix multiply of internal/matmul hardened
//     against rank crashes. The 2.5D algorithm's replication factor c is
//     exactly the redundancy resilience needs: each fiber of c ranks holds
//     identical resident A and B blocks, so a crashed rank restores its
//     state from any live fiber sibling and replays the outer-product
//     panels it missed from their in-layer owners. The recovery traffic and
//     recomputation are ordinary sends and flops — the experiment in
//     cmd/faulttol prices them and asks whether the paper's perfect strong
//     scaling survives failures.
//
//   - RunCheckpointed: in-memory buddy checkpointing with coordinated
//     rollback for iterative SPMD kernels. Each rank ships its state to a
//     buddy every k iterations over Reliable; when the per-step failure
//     detection (a world all-reduce of a crash bitmap) reports a casualty,
//     every rank rolls back to the last checkpoint and re-executes.
//
// Crash semantics follow sim.FaultPlan with Respawn: a crashed rank loses
// its application data (the implementations scrub it to NaN so an
// incomplete recovery cannot silently pass) but continues executing the
// SPMD protocol as a cold spare, as under message-logging runtimes. All
// recovery decisions are driven by the deterministic crash bitmap, so a
// given FaultPlan seed reproduces byte-identical results and Stats.
package resilience
