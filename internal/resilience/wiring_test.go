package resilience_test

import (
	"testing"

	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// TestRecoveryProtocolsWiringBitIdentical pins that the sparse wiring
// changes nothing for the recovery protocols either: an ABFT run that
// survives a mid-flight crash, and a checkpointed stencil that rolls back,
// both produce bit-identical outputs and per-rank accounting under dense
// and sparse wiring.
func TestRecoveryProtocolsWiringBitIdentical(t *testing.T) {
	assertSame := func(name string, dense, sparse *sim.Result) {
		t.Helper()
		for id := range dense.PerRank {
			if dense.PerRank[id] != sparse.PerRank[id] {
				t.Errorf("%s rank %d stats differ:\ndense:  %+v\nsparse: %+v",
					name, id, dense.PerRank[id], sparse.PerRank[id])
			}
		}
	}

	a, b := abftOperands(16)
	abftCost := testCost()
	abftCost.Faults = &sim.FaultPlan{
		Seed:       5,
		Crashes:    map[int]float64{4*4 + 5: 1e-4}, // a layer-1 rank, mid-run
		Respawn:    true,
		RebootTime: 1e-5,
	}
	runABFT := func(w sim.Wiring) *resilience.Result {
		cost := abftCost
		cost.Wiring = w
		res, err := resilience.ABFT25D(cost, 4, 2, a, b)
		if err != nil {
			t.Fatalf("ABFT/%v: %v", w, err)
		}
		return res
	}
	ad, as := runABFT(sim.WiringDense), runABFT(sim.WiringSparse)
	if d := ad.C.MaxAbsDiff(as.C); d != 0 {
		t.Errorf("ABFT products differ between wirings: max diff %g", d)
	}
	assertSame("ABFT", ad.Sim, as.Sim)

	ckptCost := testCost()
	ckptCost.Faults = &sim.FaultPlan{
		Seed:       3,
		Crashes:    map[int]float64{2: 1e-5},
		Respawn:    true,
		RebootTime: 1e-5,
	}
	runCkpt := func(w sim.Wiring) *resilience.CheckpointResult {
		cost := ckptCost
		cost.Wiring = w
		res, err := resilience.RunCheckpointed(cost, 4, 12, 3, stencilInit, stencilStep)
		if err != nil {
			t.Fatalf("checkpoint/%v: %v", w, err)
		}
		return res
	}
	cd, cs := runCkpt(sim.WiringDense), runCkpt(sim.WiringSparse)
	for id := range cd.States {
		for i := range cd.States[id] {
			if cd.States[id][i] != cs.States[id][i] {
				t.Errorf("checkpoint state rank %d word %d differs: dense %g sparse %g",
					id, i, cd.States[id][i], cs.States[id][i])
			}
		}
	}
	assertSame("checkpoint", cd.Sim, cs.Sim)
}
