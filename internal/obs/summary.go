package obs

import (
	"fmt"
	"io"
	"sort"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

// PairTraffic is one directed communication-matrix cell.
type PairTraffic struct {
	Src, Dst int
	Words    float64
	Msgs     float64
}

// Summary is the post-run attribution report: Eq. 2's energy split into
// its γe·F / βe·W / αe·S / δe·M·T / εe·T terms per rank, the directed
// communication matrix, and the same split along the run's critical path.
type Summary struct {
	P       int
	T       float64
	Machine machine.Params
	// Ranks holds the per-rank counters the energies were priced from.
	Ranks []sim.Stats
	// PerRank[i] is rank i's slice of Eq. 2. Total accumulates the terms
	// in rank order — the identical float additions core.PriceSim performs
	// — so Total equals the untraced run's priced energy bit for bit.
	PerRank []core.EnergyBreakdown
	Total   core.EnergyBreakdown
	// Pairs is the directed communication matrix (cells with traffic,
	// sorted by src then dst); nil when no Collector was supplied.
	Pairs []PairTraffic
	// Path is the run's critical path and PathEnergy the dynamic energy of
	// the work on it (compute γe·F, sends βe·W + αe·S; the static δe·M·T +
	// εe·T terms accrue machine-wide regardless of the path, so they are
	// not attributed to it). Both are nil/zero for untraced runs.
	Path       []sim.Segment
	PathEnergy core.EnergyBreakdown
	// PathTime decomposes the path's duration by segment kind.
	PathTime map[sim.SegmentKind]float64
}

// NewSummary prices a finished run. col may be nil (no communication
// matrix); res.Trace may be nil (no critical-path attribution).
func NewSummary(m machine.Params, res *sim.Result, col *Collector) *Summary {
	s := &Summary{
		P:       len(res.PerRank),
		T:       res.Time(),
		Machine: m,
		Ranks:   append([]sim.Stats(nil), res.PerRank...),
		PerRank: make([]core.EnergyBreakdown, 0, len(res.PerRank)),
	}
	for _, st := range res.PerRank {
		e := core.EnergyBreakdown{
			Compute:   m.GammaE * st.Flops,
			Bandwidth: m.BetaE * st.WordsSent,
			Latency:   m.AlphaE * st.MsgsSent,
			Memory:    m.DeltaE * st.PeakMemWords * s.T,
			Leakage:   m.EpsilonE * s.T,
		}
		s.PerRank = append(s.PerRank, e)
		// Accumulate exactly as core.PriceSim does: term by term, in rank
		// order. Floating-point addition is order-sensitive; matching the
		// order makes Total bit-identical to PriceSim's, which the
		// exporters' self-checks rely on.
		s.Total.Compute += e.Compute
		s.Total.Bandwidth += e.Bandwidth
		s.Total.Latency += e.Latency
		s.Total.Memory += e.Memory
		s.Total.Leakage += e.Leakage
	}
	if col != nil {
		s.Pairs = pairTraffic(col)
	}
	if res.Trace != nil {
		s.Path = res.Trace.CriticalPath()
		s.PathTime = sim.PathBreakdown(s.Path)
		for _, seg := range s.Path {
			switch seg.Kind {
			case sim.SegCompute:
				s.PathEnergy.Compute += m.GammaE * seg.Flops
			case sim.SegSend:
				s.PathEnergy.Bandwidth += m.BetaE * float64(seg.Words)
				s.PathEnergy.Latency += m.AlphaE * seg.Msgs
			}
		}
	}
	return s
}

// pairTraffic folds a collector's send events into the directed matrix.
func pairTraffic(col *Collector) []PairTraffic {
	type key struct{ src, dst int }
	cells := map[key]*PairTraffic{}
	for rank := 0; rank < col.P(); rank++ {
		for _, e := range col.Rank(rank) {
			if e.Kind != KindSend {
				continue
			}
			k := key{e.Rank, e.Peer}
			c := cells[k]
			if c == nil {
				c = &PairTraffic{Src: e.Rank, Dst: e.Peer}
				cells[k] = c
			}
			c.Words += float64(e.Words)
			c.Msgs += e.Msgs
		}
	}
	out := make([]PairTraffic, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// WriteEnergyCSV writes the per-rank energy split, one row per rank plus
// a total row, in joules.
func (s *Summary) WriteEnergyCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rank,flops,words_sent,msgs_sent,peak_mem_words,time_s,e_compute_j,e_bandwidth_j,e_latency_j,e_memory_j,e_leakage_j,e_total_j"); err != nil {
		return err
	}
	for i, e := range s.PerRank {
		st := s.Ranks[i]
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			i, st.Flops, st.WordsSent, st.MsgsSent, st.PeakMemWords, st.Time,
			e.Compute, e.Bandwidth, e.Latency, e.Memory, e.Leakage, e.Total()); err != nil {
			return err
		}
	}
	t := s.Total
	_, err := fmt.Fprintf(w, "total,,,,,%g,%g,%g,%g,%g,%g,%g\n",
		s.T, t.Compute, t.Bandwidth, t.Latency, t.Memory, t.Leakage, t.Total())
	return err
}

// WriteCommCSV writes the directed communication matrix as sparse
// src,dst,words,msgs rows.
func (s *Summary) WriteCommCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "src,dst,words,msgs"); err != nil {
		return err
	}
	for _, c := range s.Pairs {
		if _, err := fmt.Fprintf(w, "%d,%d,%g,%g\n", c.Src, c.Dst, c.Words, c.Msgs); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the human-readable report: the machine-wide energy
// split with shares, the busiest pairs, and the critical-path breakdown.
func (s *Summary) WriteText(w io.Writer) error {
	t := s.Total
	total := t.Total()
	pct := func(x float64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * x / total
	}
	fmt.Fprintf(w, "p=%d machine=%s T=%.6g s E=%.6g J\n", s.P, s.Machine.Name, s.T, total)
	fmt.Fprintf(w, "energy split (Eq. 2):\n")
	fmt.Fprintf(w, "  compute   γe·F    %12.5g J  %5.1f%%\n", t.Compute, pct(t.Compute))
	fmt.Fprintf(w, "  bandwidth βe·W    %12.5g J  %5.1f%%\n", t.Bandwidth, pct(t.Bandwidth))
	fmt.Fprintf(w, "  latency   αe·S    %12.5g J  %5.1f%%\n", t.Latency, pct(t.Latency))
	fmt.Fprintf(w, "  memory    δe·M·T  %12.5g J  %5.1f%%\n", t.Memory, pct(t.Memory))
	fmt.Fprintf(w, "  leakage   εe·T    %12.5g J  %5.1f%%\n", t.Leakage, pct(t.Leakage))
	if s.Pairs != nil {
		top := append([]PairTraffic(nil), s.Pairs...)
		sort.Slice(top, func(i, j int) bool { return top[i].Words > top[j].Words })
		n := len(top)
		if n > 5 {
			n = 5
		}
		fmt.Fprintf(w, "communication matrix: %d active pairs; busiest:\n", len(s.Pairs))
		for _, c := range top[:n] {
			fmt.Fprintf(w, "  %4d -> %-4d %12g words %10g msgs\n", c.Src, c.Dst, c.Words, c.Msgs)
		}
	}
	if s.Path != nil {
		fmt.Fprintf(w, "critical path: %d segments", len(s.Path))
		for _, kind := range []sim.SegmentKind{sim.SegCompute, sim.SegSend, sim.SegRecv, sim.SegWait} {
			if d := s.PathTime[kind]; d > 0 {
				fmt.Fprintf(w, "  %s=%.4gs", kind, d)
			}
		}
		pe := s.PathEnergy
		fmt.Fprintf(w, "\npath dynamic energy: compute=%.5g J bandwidth=%.5g J latency=%.5g J\n",
			pe.Compute, pe.Bandwidth, pe.Latency)
	}
	return nil
}
