package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/obs"
	"perfscale/internal/sim"
)

func testCost() sim.Cost {
	return sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-6}
}

// testProgram is the shared workload: phased compute + a ring shift, with
// per-rank-skewed sizes so no two ranks have identical counters.
func testProgram(r *sim.Rank) error {
	r.Phase("setup")
	r.Alloc(100 * (r.ID() + 1))
	r.Compute(float64(1000 * (r.ID() + 1)))
	r.Phase("exchange")
	next := (r.ID() + 1) % r.P()
	prev := (r.ID() + r.P() - 1) % r.P()
	payload := make([]float64, 8*(r.ID()+1))
	r.Send(next, payload)
	r.Recv(prev)
	r.Phase("finish")
	r.Compute(500)
	return nil
}

// testFaults is a completing plan: a respawned crash plus a degraded
// window. Drops would hang the raw-channel program.
func testFaults() *sim.FaultPlan {
	return &sim.FaultPlan{
		Seed:       7,
		Crashes:    map[int]float64{2: 1e-9},
		Respawn:    true,
		RebootTime: 1e-4,
		Degraded: []sim.DegradedLink{
			{Src: -1, Dst: -1, AlphaFactor: 3, BetaFactor: 2},
		},
	}
}

func runCollected(t *testing.T, faults *sim.FaultPlan) (*sim.Result, *obs.Collector) {
	t.Helper()
	cost := testCost()
	cost.Trace = true
	cost.Faults = faults
	col := obs.NewCollector(4)
	cost.Observers = []sim.Observer{col}
	res, err := sim.Run(4, cost, testProgram)
	if err != nil {
		t.Fatal(err)
	}
	return res, col
}

func TestCollectorCapturesRun(t *testing.T) {
	res, col := runCollected(t, nil)
	if col.P() != 4 {
		t.Fatalf("P() = %d", col.P())
	}
	for rank := 0; rank < 4; rank++ {
		events := col.Rank(rank)
		var phases []string
		now := 0.0
		for _, e := range events {
			if e.Start < now {
				t.Errorf("rank %d event %+v starts before %g", rank, e, now)
			}
			now = e.Start
			if e.Kind == obs.KindPhase {
				phases = append(phases, e.Name)
			}
		}
		if want := []string{"setup", "exchange", "finish"}; fmt.Sprint(phases) != fmt.Sprint(want) {
			t.Errorf("rank %d phases = %v, want %v", rank, phases, want)
		}
		// The bus must deliver the same decomposition the Stats carry.
		var flops float64
		var words int
		for _, e := range events {
			if e.Kind == obs.KindCompute {
				flops += e.Flops
			}
			if e.Kind == obs.KindSend {
				words += e.Words
			}
		}
		st := res.PerRank[rank]
		if flops != st.Flops {
			t.Errorf("rank %d bus flops %g, stats %g", rank, flops, st.Flops)
		}
		if float64(words) != st.WordsSent {
			t.Errorf("rank %d bus words %d, stats %g", rank, words, st.WordsSent)
		}
	}
	if len(col.Deadlocks()) != 0 {
		t.Errorf("unexpected deadlocks: %v", col.Deadlocks())
	}
}

func TestCollectorSeesFaultAndCrashEvents(t *testing.T) {
	_, col := runCollected(t, testFaults())
	var crashes, degraded int
	for rank := 0; rank < 4; rank++ {
		for _, e := range col.Rank(rank) {
			switch e.Kind {
			case obs.KindCrash:
				crashes++
				if e.Rank != 2 || e.Name != "crash-respawn" {
					t.Errorf("crash event %+v", e)
				}
			case obs.KindFault:
				if e.Name == sim.FaultDegraded.String() {
					degraded++
				}
			}
		}
	}
	if crashes != 1 {
		t.Errorf("crashes = %d, want 1", crashes)
	}
	if degraded != 4 {
		t.Errorf("degraded fault events = %d, want one per send", degraded)
	}
}

func TestRingBufferBounds(t *testing.T) {
	rb := obs.NewRingBuffer(16)
	for i := 0; i < 50; i++ {
		rb.OnPhase(0, fmt.Sprintf("p%d", i), float64(i))
	}
	if rb.Total() != 50 {
		t.Errorf("Total = %d", rb.Total())
	}
	if rb.Dropped() != 34 {
		t.Errorf("Dropped = %d", rb.Dropped())
	}
	snap := rb.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot holds %d events", len(snap))
	}
	for i, e := range snap {
		if want := fmt.Sprintf("p%d", 34+i); e.Name != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest first)", i, e.Name, want)
		}
	}
}

func TestRingBufferObservesRunBounded(t *testing.T) {
	cost := testCost()
	rb := obs.NewRingBuffer(8)
	col := obs.NewCollector(4)
	cost.Observers = []sim.Observer{rb, col}
	if _, err := sim.Run(4, cost, testProgram); err != nil {
		t.Fatal(err)
	}
	if got, want := rb.Total(), uint64(col.Total()); got != want {
		t.Errorf("ring saw %d events, collector %d", got, want)
	}
	if len(rb.Snapshot()) != 8 {
		t.Errorf("snapshot len %d, want the 8-event window", len(rb.Snapshot()))
	}
	if rb.Dropped() != rb.Total()-8 {
		t.Errorf("Dropped = %d with Total = %d", rb.Dropped(), rb.Total())
	}
}

func TestJSONLStreamParses(t *testing.T) {
	cost := testCost()
	cost.Faults = testFaults()
	// Recv segments exist only when the receiver is charged for them.
	cost.ChargeReceiver = true
	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	col := obs.NewCollector(4)
	cost.Observers = []sim.Observer{jw, col}
	if _, err := sim.Run(4, cost, testProgram); err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := 0
	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e struct {
			Kind  string  `json:"kind"`
			Rank  int     `json:"rank"`
			Start float64 `json:"start"`
			End   float64 `json:"end"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d does not parse: %v", lines+1, err)
		}
		if e.Kind == "" || e.End < e.Start {
			t.Fatalf("bad event on line %d: %+v", lines+1, e)
		}
		kinds[e.Kind]++
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != col.Total() {
		t.Errorf("stream carries %d lines, collector %d events", lines, col.Total())
	}
	for _, want := range []string{"compute", "send", "recv", "phase", "fault", "crash"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in stream (kinds: %v)", want, kinds)
		}
	}
}

func TestChromeTraceValidates(t *testing.T) {
	m := machine.SimDefault()
	res, col := runCollected(t, testFaults())
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col, obs.TraceOptions{Machine: &m, Result: res}); err != nil {
		t.Fatal(err)
	}
	stats, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if stats.RankTracks != 4 {
		t.Errorf("RankTracks = %d, want 4", stats.RankTracks)
	}
	if stats.PhaseSlices != 12 {
		t.Errorf("PhaseSlices = %d, want 3 per rank", stats.PhaseSlices)
	}
	if stats.Instants < 5 {
		t.Errorf("Instants = %d, want the crash and 4 degraded-send faults", stats.Instants)
	}
	// The energy counter's final value is the full Eq. 2 energy. The trace
	// accumulates deltas in time order, not PriceSim's rank order, so the
	// comparison is tolerance-based.
	want := core.PriceSim(m, res).Total()
	got := stats.Counters["cumulative energy (J)"]
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("final energy counter %g, PriceSim %g", got, want)
	}
	total := res.TotalStats()
	if got := stats.Counters["cumulative words sent"]; got != total.WordsSent {
		t.Errorf("final words counter %g, stats %g", got, total.WordsSent)
	}
	if got := stats.Counters["cumulative messages sent"]; got != total.MsgsSent {
		t.Errorf("final msgs counter %g, stats %g", got, total.MsgsSent)
	}
}

func TestChromeTraceDownsamplingKeepsFinalValue(t *testing.T) {
	m := machine.SimDefault()
	res, col := runCollected(t, nil)
	var full, sampled bytes.Buffer
	if err := obs.WriteChromeTrace(&full, col, obs.TraceOptions{Machine: &m, Result: res}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&sampled, col, obs.TraceOptions{Machine: &m, Result: res, CounterSamples: 2}); err != nil {
		t.Fatal(err)
	}
	fs, err := obs.ValidateChromeTrace(full.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := obs.ValidateChromeTrace(sampled.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ss.CounterEvents >= fs.CounterEvents {
		t.Errorf("downsampling kept %d counter events of %d", ss.CounterEvents, fs.CounterEvents)
	}
	for name, v := range fs.Counters {
		if ss.Counters[name] != v {
			t.Errorf("counter %q final value %g after downsampling, want %g", name, ss.Counters[name], v)
		}
	}
}

func TestSummaryEnergyBitIdentical(t *testing.T) {
	m := machine.SimDefault()
	res, col := runCollected(t, testFaults())
	s := obs.NewSummary(m, res, col)
	want := core.PriceSim(m, res)
	if s.Total != want {
		t.Errorf("summary total %+v != PriceSim %+v (must be bit-identical)", s.Total, want)
	}

	// Observation must not perturb the physics: the untraced run's Stats
	// and priced energy are identical to the traced run's.
	plain, err := sim.Run(4, testCost(), testProgram)
	if err != nil {
		t.Fatal(err)
	}
	// Traced run carries faults; rerun traced without them for the pairing.
	clean, cleanCol := runCollected(t, nil)
	for i := range plain.PerRank {
		if plain.PerRank[i] != clean.PerRank[i] {
			t.Errorf("rank %d stats differ traced vs untraced:\n%+v\n%+v", i, clean.PerRank[i], plain.PerRank[i])
		}
	}
	if got := obs.NewSummary(m, clean, cleanCol).Total; got != core.PriceSim(m, plain) {
		t.Errorf("traced summary %+v != untraced PriceSim %+v", got, core.PriceSim(m, plain))
	}
}

func TestSummaryPairsAndPath(t *testing.T) {
	m := machine.SimDefault()
	res, col := runCollected(t, nil)
	s := obs.NewSummary(m, res, col)
	if len(s.Pairs) != 4 {
		t.Fatalf("ring shift has 4 active pairs, got %v", s.Pairs)
	}
	var words float64
	for _, c := range s.Pairs {
		if c.Dst != (c.Src+1)%4 {
			t.Errorf("unexpected pair %+v", c)
		}
		words += c.Words
	}
	if total := res.TotalStats().WordsSent; words != total {
		t.Errorf("matrix words %g, stats %g", words, total)
	}
	if len(s.Path) == 0 {
		t.Fatal("no critical path on a traced run")
	}
	pathDur := 0.0
	for _, kind := range []sim.SegmentKind{sim.SegCompute, sim.SegSend, sim.SegRecv, sim.SegWait} {
		pathDur += s.PathTime[kind]
	}
	if T := res.Time(); math.Abs(pathDur-T) > 1e-9*T {
		t.Errorf("PathTime sums to %g, T = %g", pathDur, T)
	}
	if s.PathEnergy.Compute <= 0 {
		t.Errorf("path dynamic energy %+v has no compute term", s.PathEnergy)
	}
}

func TestSummaryWriters(t *testing.T) {
	m := machine.SimDefault()
	res, col := runCollected(t, nil)
	s := obs.NewSummary(m, res, col)

	var csv bytes.Buffer
	if err := s.WriteEnergyCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+4+1 {
		t.Fatalf("energy CSV has %d lines:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "rank,flops,") || !strings.HasPrefix(lines[5], "total,") {
		t.Errorf("energy CSV shape:\n%s", csv.String())
	}

	var comm bytes.Buffer
	if err := s.WriteCommCSV(&comm); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(comm.String()), "\n")); got != 1+4 {
		t.Errorf("comm CSV has %d lines:\n%s", got, comm.String())
	}

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"energy split", "γe·F", "communication matrix", "critical path"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report misses %q:\n%s", want, text.String())
		}
	}
}
