package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"perfscale/internal/sim"
)

// JSONLWriter streams every bus event as one JSON object per line, in the
// order the (concurrent) callbacks arrive. Lines from one rank are in that
// rank's virtual-time order; across ranks the interleaving follows the Go
// scheduler — sort on "start" for a global timeline. Errors are sticky:
// the first write failure stops further output and is reported by Err and
// Flush.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// jsonEvent is the wire form of an Event; zero-valued dimensions are
// omitted to keep lines short.
type jsonEvent struct {
	Kind  string  `json:"kind"`
	Rank  int     `json:"rank"`
	Peer  int     `json:"peer,omitempty"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Words int     `json:"words,omitempty"`
	Msgs  float64 `json:"msgs,omitempty"`
	Flops float64 `json:"flops,omitempty"`
	Name  string  `json:"name,omitempty"`
}

// NewJSONLWriter creates a streaming writer over w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

func (jw *JSONLWriter) write(e Event) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	jw.err = jw.enc.Encode(jsonEvent{
		Kind: e.Kind.String(), Rank: e.Rank, Peer: e.Peer,
		Start: e.Start, End: e.End,
		Words: e.Words, Msgs: e.Msgs, Flops: e.Flops, Name: e.Name,
	})
}

// OnCompute implements sim.Observer.
func (jw *JSONLWriter) OnCompute(rank int, seg sim.Segment) { jw.write(segEvent(rank, seg)) }

// OnSend implements sim.Observer.
func (jw *JSONLWriter) OnSend(rank int, seg sim.Segment) { jw.write(segEvent(rank, seg)) }

// OnRecv implements sim.Observer.
func (jw *JSONLWriter) OnRecv(rank int, seg sim.Segment) { jw.write(segEvent(rank, seg)) }

// OnPhase implements sim.Observer.
func (jw *JSONLWriter) OnPhase(rank int, name string, at float64) {
	jw.write(Event{Kind: KindPhase, Rank: rank, Peer: -1, Start: at, End: at, Name: name})
}

// OnFault implements sim.Observer.
func (jw *JSONLWriter) OnFault(ev sim.FaultEvent) { jw.write(faultEvent(ev)) }

// OnCrash implements sim.Observer.
func (jw *JSONLWriter) OnCrash(ev sim.CrashEvent) { jw.write(crashEvent(ev)) }

// OnTimer implements sim.Observer.
func (jw *JSONLWriter) OnTimer(ev sim.TimerEvent) { jw.write(timerEvent(ev)) }

// OnDeadlock implements sim.Observer.
func (jw *JSONLWriter) OnDeadlock(ev sim.DeadlockEvent) { jw.write(deadlockEvent(ev)) }

// Flush drains the buffer and returns the sticky error, if any. Call it
// after sim.Run returns.
func (jw *JSONLWriter) Flush() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return jw.err
	}
	jw.err = jw.bw.Flush()
	return jw.err
}

// Err returns the first write error, if any.
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}
