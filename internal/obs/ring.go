package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"perfscale/internal/sim"
)

// ringShards is the maximum lock-striping width. Events are dealt to
// shards by a global sequence number, so shard i holds the tail of residue
// class i and the union of all shard tails covers the last-capacity global
// window (Snapshot trims the excess from shards that round up).
const ringShards = 64

type ringEntry struct {
	seq uint64
	ev  Event
}

type ringShard struct {
	mu   sync.Mutex
	buf  []ringEntry
	next int
	// Pad shards apart so neighbouring locks don't share a cache line;
	// at p = 1024 every rank goroutine is hammering these.
	_ [64]byte
}

// RingBuffer is the bounded subscriber for large runs: it keeps only the
// last Cap events, so observing a p = 16384 run costs O(window) memory
// instead of O(events). Pushes take one atomic increment plus one striped
// mutex, so thousands of rank goroutines can emit concurrently without
// serialising on a single lock; use Collector when the full event stream
// is wanted.
type RingBuffer struct {
	capacity int
	mask     uint64 // len(shards)-1; shard count is a power of two
	seq      atomic.Uint64
	shards   []ringShard
}

// NewRingBuffer creates a ring holding the last capacity events.
func NewRingBuffer(capacity int) *RingBuffer {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n*2 <= ringShards && n*2 <= capacity {
		n *= 2
	}
	rb := &RingBuffer{capacity: capacity, mask: uint64(n - 1), shards: make([]ringShard, n)}
	per := (capacity + n - 1) / n
	for i := range rb.shards {
		rb.shards[i].buf = make([]ringEntry, 0, per)
	}
	return rb
}

func (rb *RingBuffer) push(e Event) {
	seq := rb.seq.Add(1) - 1
	sh := &rb.shards[seq&rb.mask]
	sh.mu.Lock()
	if len(sh.buf) < cap(sh.buf) {
		sh.buf = append(sh.buf, ringEntry{seq, e})
	} else {
		sh.buf[sh.next] = ringEntry{seq, e}
		sh.next++
		if sh.next == cap(sh.buf) {
			sh.next = 0
		}
	}
	sh.mu.Unlock()
}

// OnCompute implements sim.Observer.
func (rb *RingBuffer) OnCompute(rank int, seg sim.Segment) { rb.push(segEvent(rank, seg)) }

// OnSend implements sim.Observer.
func (rb *RingBuffer) OnSend(rank int, seg sim.Segment) { rb.push(segEvent(rank, seg)) }

// OnRecv implements sim.Observer.
func (rb *RingBuffer) OnRecv(rank int, seg sim.Segment) { rb.push(segEvent(rank, seg)) }

// OnPhase implements sim.Observer.
func (rb *RingBuffer) OnPhase(rank int, name string, at float64) {
	rb.push(Event{Kind: KindPhase, Rank: rank, Peer: -1, Start: at, End: at, Name: name})
}

// OnFault implements sim.Observer.
func (rb *RingBuffer) OnFault(ev sim.FaultEvent) { rb.push(faultEvent(ev)) }

// OnCrash implements sim.Observer.
func (rb *RingBuffer) OnCrash(ev sim.CrashEvent) { rb.push(crashEvent(ev)) }

// OnTimer implements sim.Observer.
func (rb *RingBuffer) OnTimer(ev sim.TimerEvent) { rb.push(timerEvent(ev)) }

// OnDeadlock implements sim.Observer.
func (rb *RingBuffer) OnDeadlock(ev sim.DeadlockEvent) { rb.push(deadlockEvent(ev)) }

// Snapshot returns the buffered tail, oldest first.
func (rb *RingBuffer) Snapshot() []Event {
	entries := make([]ringEntry, 0, rb.capacity)
	for i := range rb.shards {
		sh := &rb.shards[i]
		sh.mu.Lock()
		entries = append(entries, sh.buf...)
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	// Shards round their capacity up, so trim any excess beyond the window.
	if len(entries) > rb.capacity {
		entries = entries[len(entries)-rb.capacity:]
	}
	out := make([]Event, len(entries))
	for i, en := range entries {
		out[i] = en.ev
	}
	return out
}

// Total counts every event ever pushed, kept or evicted.
func (rb *RingBuffer) Total() uint64 { return rb.seq.Load() }

// Dropped counts events evicted to keep the window bounded.
func (rb *RingBuffer) Dropped() uint64 {
	total := rb.seq.Load()
	var kept uint64
	for i := range rb.shards {
		sh := &rb.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.buf))
		sh.mu.Unlock()
		kept += n
	}
	if kept > uint64(rb.capacity) {
		kept = uint64(rb.capacity)
	}
	return total - kept
}
