package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

// The Chrome trace-event format (also read by ui.perfetto.dev): a JSON
// object whose traceEvents array holds slices ("X", with ts/dur), instant
// events ("i"), counter samples ("C") and metadata ("M"). Timestamps are
// microseconds; the simulator's virtual seconds are scaled by 1e6, so one
// trace microsecond is one simulated microsecond.
const secondsToUs = 1e6

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceOptions configures WriteChromeTrace.
type TraceOptions struct {
	// Machine enables the cumulative-energy counter track: dynamic energy
	// deposited per event plus the static δe·M+εe floor accrued linearly.
	// Requires Result for the per-rank peak memory and run length.
	Machine *machine.Params
	// Result supplies per-rank Stats for the static-power slope; optional
	// unless Machine is set.
	Result *sim.Result
	// CounterSamples caps each counter track's sample count (the trace
	// would otherwise carry one sample per event). Zero means 512.
	CounterSamples int
}

// WriteChromeTrace exports a collected run as Chrome/Perfetto trace JSON:
// one track (tid) per rank carrying its phase slices and timeline
// segments, instant events for faults and crashes, and machine-wide
// counter tracks for cumulative words, messages and (with Machine set)
// energy. Open the output at ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, col *Collector, opt TraceOptions) error {
	if opt.Machine != nil && opt.Result == nil {
		return fmt.Errorf("obs: TraceOptions.Machine requires Result for static power")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}

	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: 0, Args: map[string]any{"name": fmt.Sprintf("simulated cluster (p=%d)", col.P())}}); err != nil {
		return err
	}
	for rank := 0; rank < col.P(); rank++ {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: rank, Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)}}); err != nil {
			return err
		}
	}

	lastEnd := make([]float64, col.P())
	for rank := 0; rank < col.P(); rank++ {
		for _, e := range col.Rank(rank) {
			if e.End > lastEnd[rank] {
				lastEnd[rank] = e.End
			}
		}
	}

	for rank := 0; rank < col.P(); rank++ {
		events := col.Rank(rank)
		// Phase marks become enclosing slices: each spans from its mark to
		// the next mark (or the rank's last event). Segments between two
		// marks are fully contained — the rank's clock passes a mark only
		// between operations — so Perfetto nests them under the phase.
		var marks []Event
		for _, e := range events {
			if e.Kind == KindPhase {
				marks = append(marks, e)
			}
		}
		for i, mk := range marks {
			end := lastEnd[rank]
			if i+1 < len(marks) {
				end = marks[i+1].Start
			}
			dur := (end - mk.Start) * secondsToUs
			if err := emit(chromeEvent{Name: mk.Name, Ph: "X", Pid: 0, Tid: rank, Ts: mk.Start * secondsToUs, Dur: &dur, Cat: "phase"}); err != nil {
				return err
			}
		}
		for _, e := range events {
			switch e.Kind {
			case KindCompute, KindSend, KindWait, KindRecv:
				dur := e.Duration() * secondsToUs
				args := map[string]any{}
				if e.Peer >= 0 {
					args["peer"] = e.Peer
				}
				if e.Words > 0 {
					args["words"] = e.Words
				}
				if e.Msgs > 0 {
					args["msgs"] = e.Msgs
				}
				if e.Flops > 0 {
					args["flops"] = e.Flops
				}
				if err := emit(chromeEvent{Name: e.Kind.String(), Ph: "X", Pid: 0, Tid: e.Rank, Ts: e.Start * secondsToUs, Dur: &dur, Cat: "seg", Args: args}); err != nil {
					return err
				}
			case KindFault:
				if err := emit(chromeEvent{Name: "fault:" + e.Name, Ph: "i", Pid: 0, Tid: e.Rank, Ts: e.Start * secondsToUs, S: "t", Cat: "fault", Args: map[string]any{"dst": e.Peer, "words": e.Words}}); err != nil {
					return err
				}
			case KindCrash:
				if err := emit(chromeEvent{Name: e.Name, Ph: "i", Pid: 0, Tid: e.Rank, Ts: e.Start * secondsToUs, S: "t", Cat: "crash"}); err != nil {
					return err
				}
			case KindTimer:
				if err := emit(chromeEvent{Name: e.Name, Ph: "i", Pid: 0, Tid: e.Rank, Ts: e.Start * secondsToUs, S: "t", Cat: "timer", Args: map[string]any{"peer": e.Peer}}); err != nil {
					return err
				}
			}
		}
	}
	for _, d := range col.Deadlocks() {
		rank := d.Err.Rank
		if err := emit(chromeEvent{Name: "deadlock", Ph: "i", Pid: 0, Tid: rank, Ts: lastEnd[rank] * secondsToUs, S: "g", Cat: "deadlock", Args: map[string]any{"peer": d.Err.Peer, "op": d.Err.Op}}); err != nil {
			return err
		}
	}

	if err := writeCounters(emit, col, opt); err != nil {
		return err
	}

	_, err := bw.WriteString("\n]}\n")
	if err != nil {
		return err
	}
	return bw.Flush()
}

// counterSample is one cumulative data point.
type counterSample struct {
	t float64
	w float64 // words sent so far
	s float64 // messages sent so far
	e float64 // dynamic energy deposited so far
}

// writeCounters emits the machine-wide cumulative counter tracks. Values
// accumulate non-negative deltas in time order, so every track is monotone
// non-decreasing by construction.
func writeCounters(emit func(chromeEvent) error, col *Collector, opt TraceOptions) error {
	var deltas []counterSample
	for rank := 0; rank < col.P(); rank++ {
		for _, e := range col.Rank(rank) {
			switch e.Kind {
			case KindSend:
				d := counterSample{t: e.End, w: float64(e.Words), s: e.Msgs}
				if opt.Machine != nil {
					d.e = opt.Machine.BetaE*float64(e.Words) + opt.Machine.AlphaE*e.Msgs
				}
				deltas = append(deltas, d)
			case KindCompute:
				d := counterSample{t: e.End}
				if opt.Machine != nil {
					d.e = opt.Machine.GammaE * e.Flops
				} else {
					continue
				}
				deltas = append(deltas, d)
			}
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].t < deltas[j].t })

	samples := make([]counterSample, 0, len(deltas)+1)
	cum := counterSample{}
	for _, d := range deltas {
		cum.t = d.t
		cum.w += d.w
		cum.s += d.s
		cum.e += d.e
		samples = append(samples, cum)
	}

	// The static δe·M+εe floor accrues for the whole run on every rank;
	// adding it at each sample keeps the energy counter monotone and makes
	// its final value the full Eq. 2 energy.
	static := 0.0
	if opt.Machine != nil {
		T := opt.Result.Time()
		for _, s := range opt.Result.PerRank {
			static += opt.Machine.DeltaE*s.PeakMemWords + opt.Machine.EpsilonE
		}
		if len(samples) == 0 || samples[len(samples)-1].t < T {
			cum.t = T
			samples = append(samples, cum)
		}
	}

	max := opt.CounterSamples
	if max <= 0 {
		max = 512
	}
	stride := 1
	if len(samples) > max {
		stride = int(math.Ceil(float64(len(samples)) / float64(max)))
	}
	for i := 0; i < len(samples); i += stride {
		// Always keep the final sample so the counters end at the totals.
		if i+stride >= len(samples) {
			i = len(samples) - 1
		}
		sm := samples[i]
		ts := sm.t * secondsToUs
		if err := emit(chromeEvent{Name: "cumulative words sent", Ph: "C", Pid: 0, Ts: ts, Args: map[string]any{"words": sm.w}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "cumulative messages sent", Ph: "C", Pid: 0, Ts: ts, Args: map[string]any{"msgs": sm.s}}); err != nil {
			return err
		}
		if opt.Machine != nil {
			if err := emit(chromeEvent{Name: "cumulative energy (J)", Ph: "C", Pid: 0, Ts: ts, Args: map[string]any{"joules": sm.e + static*sm.t}}); err != nil {
				return err
			}
		}
		if i == len(samples)-1 {
			break
		}
	}
	return nil
}

// TraceStats summarizes a validated Chrome trace.
type TraceStats struct {
	// Slices, Instants and CounterEvents count "X", "i" and "C" entries.
	Slices, Instants, CounterEvents int
	// RankTracks counts distinct tids carrying at least one slice.
	RankTracks int
	// PhaseSlices counts slices in the "phase" category.
	PhaseSlices int
	// Counters maps each counter track to its final value.
	Counters map[string]float64
}

// ValidateChromeTrace parses trace JSON produced by WriteChromeTrace and
// checks its structural invariants: it must parse, slices must have
// non-negative durations, and every counter track must be monotone
// non-decreasing in time. It returns per-kind counts for smoke tests.
func ValidateChromeTrace(data []byte) (*TraceStats, error) {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: trace does not parse: %w", err)
	}
	stats := &TraceStats{Counters: map[string]float64{}}
	tids := map[int]bool{}
	type counterState struct {
		ts, value float64
		seen      bool
	}
	counters := map[string]*counterState{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				return nil, fmt.Errorf("obs: slice %q at ts=%g has negative duration %g", ev.Name, ev.Ts, ev.Dur)
			}
			stats.Slices++
			tids[ev.Tid] = true
			if ev.Cat == "phase" {
				stats.PhaseSlices++
			}
		case "i":
			stats.Instants++
		case "C":
			stats.CounterEvents++
			for _, v := range ev.Args {
				val, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("obs: counter %q carries non-numeric value %v", ev.Name, v)
				}
				st := counters[ev.Name]
				if st == nil {
					st = &counterState{}
					counters[ev.Name] = st
				}
				if st.seen && ev.Ts < st.ts {
					return nil, fmt.Errorf("obs: counter %q samples out of time order at ts=%g", ev.Name, ev.Ts)
				}
				if st.seen && val < st.value {
					return nil, fmt.Errorf("obs: counter %q is not monotone: %g after %g at ts=%g", ev.Name, val, st.value, ev.Ts)
				}
				st.ts, st.value, st.seen = ev.Ts, val, true
				stats.Counters[ev.Name] = val
			}
		}
	}
	stats.RankTracks = len(tids)
	return stats, nil
}
