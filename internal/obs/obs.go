// Package obs is the observability layer over the simulator's event bus
// (sim.Observer): subscribers that capture a run's events — in full, in a
// bounded ring, or streamed as JSONL — and exporters that turn a capture
// into Chrome/Perfetto trace JSON, a communication matrix, and an energy
// summary splitting Eq. 2 into its γe/βe/αe/δe·M·T/εe terms per rank and
// along the critical path.
//
// The package never touches virtual clocks or counters: everything here
// observes; the physics stays in internal/sim and internal/core.
package obs

import (
	"fmt"
	"sync"

	"perfscale/internal/sim"
)

// Kind classifies an Event.
type Kind uint8

// Event kinds. The segment kinds mirror sim.SegmentKind; the rest carry
// fault, crash, deadlock and phase annotations.
const (
	KindCompute Kind = iota
	KindSend
	KindWait
	KindRecv
	KindPhase
	KindFault
	KindCrash
	KindDeadlock
	KindTimer
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindWait:
		return "wait"
	case KindRecv:
		return "recv"
	case KindPhase:
		return "phase"
	case KindFault:
		return "fault"
	case KindCrash:
		return "crash"
	case KindDeadlock:
		return "deadlock"
	case KindTimer:
		return "timer"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is the uniform record every subscriber stores: one timeline
// segment, phase mark, fault, crash or deadlock, flattened from the typed
// bus callbacks.
type Event struct {
	Kind Kind
	// Rank is the rank the event belongs to (the sender for faults).
	Rank int
	// Peer is the other rank: send/wait/recv peer, fault destination,
	// deadlock wait target; -1 when there is none.
	Peer int
	// Start and End bound the event in virtual seconds; instantaneous
	// events (phases, faults, crashes, deadlocks) have Start == End.
	Start, End float64
	// Words and Msgs carry communication volume, Flops compute work.
	Words int
	Msgs  float64
	Flops float64
	// Name carries the phase name, fault kind, or deadlock summary.
	Name string
}

// Duration returns End − Start.
func (e Event) Duration() float64 { return e.End - e.Start }

func segEvent(rank int, seg sim.Segment) Event {
	kind := KindCompute
	switch seg.Kind {
	case sim.SegSend:
		kind = KindSend
	case sim.SegWait:
		kind = KindWait
	case sim.SegRecv:
		kind = KindRecv
	}
	return Event{
		Kind: kind, Rank: rank, Peer: seg.Peer,
		Start: seg.Start, End: seg.End,
		Words: seg.Words, Msgs: seg.Msgs, Flops: seg.Flops,
	}
}

func faultEvent(ev sim.FaultEvent) Event {
	return Event{
		Kind: KindFault, Rank: ev.Src, Peer: ev.Dst,
		Start: ev.Time, End: ev.Time, Words: ev.Words,
		Name: ev.Kind.String(),
	}
}

func crashEvent(ev sim.CrashEvent) Event {
	name := "crash"
	if ev.Respawn {
		name = "crash-respawn"
	}
	return Event{Kind: KindCrash, Rank: ev.Rank, Peer: -1, Start: ev.Time, End: ev.Time, Name: name}
}

func timerEvent(ev sim.TimerEvent) Event {
	return Event{
		Kind: KindTimer, Rank: ev.Rank, Peer: ev.Peer,
		Start: ev.Time, End: ev.Time,
		Name: "timer-" + ev.Op + "-" + ev.Kind.String(),
	}
}

func deadlockEvent(ev sim.DeadlockEvent) Event {
	return Event{
		Kind: KindDeadlock, Rank: ev.Err.Rank, Peer: ev.Err.Peer,
		Name: "deadlock: blocked in " + ev.Err.Op,
	}
}

// Collector subscribes to a run and keeps every event, bucketed per rank.
// Rank-goroutine callbacks append to their own rank's slice without locks
// (the bus guarantees per-rank callbacks are single-goroutine); only the
// watchdog-sourced deadlock events need a mutex. Memory is O(events) —
// use RingBuffer when that is too much at large p.
//
// Read a Collector only after sim.Run has returned.
type Collector struct {
	perRank [][]Event

	mu        sync.Mutex
	deadlocks []sim.DeadlockEvent
}

// NewCollector creates a collector for a p-rank run. Pass it in
// Cost.Observers of a cluster with the same p.
func NewCollector(p int) *Collector {
	return &Collector{perRank: make([][]Event, p)}
}

// OnCompute implements sim.Observer.
func (c *Collector) OnCompute(rank int, seg sim.Segment) {
	c.perRank[rank] = append(c.perRank[rank], segEvent(rank, seg))
}

// OnSend implements sim.Observer.
func (c *Collector) OnSend(rank int, seg sim.Segment) {
	c.perRank[rank] = append(c.perRank[rank], segEvent(rank, seg))
}

// OnRecv implements sim.Observer.
func (c *Collector) OnRecv(rank int, seg sim.Segment) {
	c.perRank[rank] = append(c.perRank[rank], segEvent(rank, seg))
}

// OnPhase implements sim.Observer.
func (c *Collector) OnPhase(rank int, name string, at float64) {
	c.perRank[rank] = append(c.perRank[rank], Event{Kind: KindPhase, Rank: rank, Peer: -1, Start: at, End: at, Name: name})
}

// OnFault implements sim.Observer; the event lands on the sender's bucket.
func (c *Collector) OnFault(ev sim.FaultEvent) {
	c.perRank[ev.Src] = append(c.perRank[ev.Src], faultEvent(ev))
}

// OnCrash implements sim.Observer.
func (c *Collector) OnCrash(ev sim.CrashEvent) {
	c.perRank[ev.Rank] = append(c.perRank[ev.Rank], crashEvent(ev))
}

// OnTimer implements sim.Observer; timer transitions fire on the owning
// rank's goroutine, so they land on the per-rank bucket like segments.
func (c *Collector) OnTimer(ev sim.TimerEvent) {
	c.perRank[ev.Rank] = append(c.perRank[ev.Rank], timerEvent(ev))
}

// OnDeadlock implements sim.Observer. It fires on the watchdog goroutine,
// so the events go to a mutex-protected list instead of the per-rank
// buckets (which the rank goroutines still own at that moment).
func (c *Collector) OnDeadlock(ev sim.DeadlockEvent) {
	c.mu.Lock()
	c.deadlocks = append(c.deadlocks, ev)
	c.mu.Unlock()
}

// P returns the rank count the collector was created for.
func (c *Collector) P() int { return len(c.perRank) }

// Rank returns one rank's events in virtual-time order.
func (c *Collector) Rank(rank int) []Event { return c.perRank[rank] }

// Deadlocks returns the watchdog aborts observed, one per aborted rank.
func (c *Collector) Deadlocks() []sim.DeadlockEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]sim.DeadlockEvent(nil), c.deadlocks...)
}

// Total counts all captured events, deadlocks included.
func (c *Collector) Total() int {
	n := len(c.Deadlocks())
	for _, evs := range c.perRank {
		n += len(evs)
	}
	return n
}
