package qr

import (
	"math"
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

var zeroCost = sim.Cost{}

func TestHouseholderReconstructs(t *testing.T) {
	for _, tc := range []struct{ m, n int }{
		{1, 1}, {4, 4}, {8, 3}, {16, 5}, {32, 8}, {7, 7},
	} {
		a := matrix.Random(tc.m, tc.n, int64(tc.m*10+tc.n))
		q, r, err := Householder(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.m, tc.n, err)
		}
		recon := matrix.Mul(q, r)
		if d := recon.MaxAbsDiff(a); d > 1e-10*float64(tc.m) {
			t.Errorf("%dx%d: ‖QR − A‖ = %g", tc.m, tc.n, d)
		}
		// Q has orthonormal columns: QᵀQ = I.
		qtq := matrix.Mul(q.Transpose(), q)
		if d := qtq.MaxAbsDiff(matrix.Identity(tc.n)); d > 1e-10*float64(tc.m) {
			t.Errorf("%dx%d: ‖QᵀQ − I‖ = %g", tc.m, tc.n, d)
		}
		// R upper triangular with non-negative diagonal.
		for i := 0; i < tc.n; i++ {
			if r.At(i, i) < 0 {
				t.Errorf("%dx%d: negative diagonal at %d", tc.m, tc.n, i)
			}
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Errorf("%dx%d: R not upper at (%d,%d)", tc.m, tc.n, i, j)
				}
			}
		}
	}
}

func TestHouseholderRejectsWide(t *testing.T) {
	if _, _, err := Householder(matrix.New(3, 5)); err == nil {
		t.Error("wide matrix should be rejected")
	}
}

func TestHouseholderFlops(t *testing.T) {
	// 2mn² − (2/3)n³ at m=n=3: 54 − 18 = 36.
	if got := HouseholderFlops(3, 3); math.Abs(got-36) > 1e-12 {
		t.Errorf("HouseholderFlops(3,3) = %g, want 36", got)
	}
}

func TestTSQRMatchesSerialR(t *testing.T) {
	for _, tc := range []struct{ m, n, p int }{
		{16, 4, 1},
		{16, 4, 2},
		{32, 4, 4},
		{64, 8, 4},
		{48, 3, 8}, // non-power-of-two friendly block count
	} {
		a := matrix.Random(tc.m, tc.n, int64(tc.m+tc.n+tc.p))
		res, err := TSQR(zeroCost, tc.p, a)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		_, want, err := Householder(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := res.R.MaxAbsDiff(want); d > 1e-9*float64(tc.m) {
			t.Errorf("%+v: TSQR R differs from serial by %g", tc, d)
		}
	}
}

func TestTSQRRSatisfiesNormalEquations(t *testing.T) {
	// RᵀR = AᵀA: the R factor is determined by A's Gram matrix.
	const m, n, p = 64, 6, 8
	a := matrix.Random(m, n, 77)
	res, err := TSQR(zeroCost, p, a)
	if err != nil {
		t.Fatal(err)
	}
	rtr := matrix.Mul(res.R.Transpose(), res.R)
	ata := matrix.Mul(a.Transpose(), a)
	if d := rtr.MaxAbsDiff(ata); d > 1e-9*float64(m) {
		t.Errorf("‖RᵀR − AᵀA‖ = %g", d)
	}
}

func TestTSQRImplicitQOrthonormal(t *testing.T) {
	// Q = A·R⁻¹ has orthonormal columns when A has full rank.
	const m, n, p = 48, 4, 4
	a := matrix.Random(m, n, 91)
	res, err := TSQR(zeroCost, p, a)
	if err != nil {
		t.Fatal(err)
	}
	// Solve R·X = Aᵀ... easier: Q = A·R⁻¹ via back substitution per row.
	q := a.Clone()
	// Right-solve X·R = A: columns of X from left to right.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := q.At(i, j)
			for k := 0; k < j; k++ {
				s -= q.At(i, k) * res.R.At(k, j)
			}
			q.Set(i, j, s/res.R.At(j, j))
		}
	}
	qtq := matrix.Mul(q.Transpose(), q)
	if d := qtq.MaxAbsDiff(matrix.Identity(n)); d > 1e-8 {
		t.Errorf("implicit Q not orthonormal: %g", d)
	}
}

func TestTSQRValidation(t *testing.T) {
	a := matrix.Random(16, 4, 1)
	if _, err := TSQR(zeroCost, 3, a); err == nil {
		t.Error("16 rows on 3 ranks should be rejected")
	}
	if _, err := TSQR(zeroCost, 8, a); err == nil {
		t.Error("2-row local blocks for 4 columns should be rejected")
	}
	if _, err := TSQR(zeroCost, 0, a); err == nil {
		t.Error("p=0 should be rejected")
	}
}

func TestTSQRCommunicationProfile(t *testing.T) {
	// The communication-avoiding signature: log2(p) rounds, one n² triangle
	// each, independent of m.
	const n, p = 4, 8
	for _, m := range []int{64, 512} {
		a := matrix.Random(m, n, int64(m))
		res, err := TSQR(zeroCost, p, a)
		if err != nil {
			t.Fatal(err)
		}
		maxMsgs := res.Sim.MaxStats().MsgsSent
		if maxMsgs > 1 {
			t.Errorf("m=%d: each rank sends at most one R (got %g)", m, maxMsgs)
		}
		// Rank 0 receives log2(p) = 3 R factors of n² words.
		recv := res.Sim.PerRank[0].WordsRecv
		if recv != 3*n*n {
			t.Errorf("m=%d: root received %g words, want %d (independent of m)", m, recv, 3*n*n)
		}
	}
}

func TestTSQRLatencyIsLogP(t *testing.T) {
	const m, n = 256, 4
	lat := sim.Cost{AlphaT: 1}
	a := matrix.Random(m, n, 13)
	t4, err := TSQR(lat, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := TSQR(lat, 16, a)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Sim.Time() != 2 || t16.Sim.Time() != 4 {
		t.Errorf("latency critical path: p=4 -> %g (want 2), p=16 -> %g (want 4)",
			t4.Sim.Time(), t16.Sim.Time())
	}
}
