package qr

import (
	"math/rand"
	"testing"

	"perfscale/internal/matrix"
)

// Randomized properties of the factorization, complementing the fixed-shape
// tests in qr_test.go: each seed draws a shape and checks invariants that
// must hold for every tall matrix, not just the hand-picked ones.

// drawShape picks a TSQR-compatible (m, n, p): p a power of two, m a
// multiple of p with tall local blocks.
func drawShape(rng *rand.Rand) (m, n, p int) {
	p = 1 << rng.Intn(4)    // 1..8
	n = 1 + rng.Intn(6)     // 1..6
	rows := n + rng.Intn(8) // local block height ≥ n
	return rows * p, n, p
}

func TestTSQRPropertyMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, n, p := drawShape(rng)
		a := matrix.Random(m, n, seed+1000)
		res, err := TSQR(zeroCost, p, a)
		if err != nil {
			t.Fatalf("seed %d (%dx%d p=%d): %v", seed, m, n, p, err)
		}
		_, want, err := Householder(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := res.R.MaxAbsDiff(want); d > 1e-9*float64(m) {
			t.Errorf("seed %d (%dx%d p=%d): TSQR R differs from serial by %g", seed, m, n, p, d)
		}
	}
}

func TestTSQRPropertyRIndependentOfP(t *testing.T) {
	// R is a function of A alone: any rank count must produce the same
	// factor (up to roundoff), because the reduction tree only reassociates
	// the same orthogonal eliminations.
	const m, n = 48, 4
	a := matrix.Random(m, n, 555)
	var first *matrix.Dense
	for _, p := range []int{1, 2, 4, 8} {
		res, err := TSQR(zeroCost, p, a)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if first == nil {
			first = res.R
			continue
		}
		if d := res.R.MaxAbsDiff(first); d > 1e-9*float64(m) {
			t.Errorf("p=%d: R differs from p=1 by %g", p, d)
		}
	}
}

func TestTSQRPropertyDeterministic(t *testing.T) {
	const m, n, p = 64, 5, 8
	a := matrix.Random(m, n, 77)
	r1, err := TSQR(zeroCost, p, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TSQR(zeroCost, p, a)
	if err != nil {
		t.Fatal(err)
	}
	if d := r1.R.MaxAbsDiff(r2.R); d != 0 {
		t.Errorf("two identical runs differ by %g", d)
	}
}

func TestHouseholderPropertyScaling(t *testing.T) {
	// QR(s·A) = (±Q, |s|·R): with the non-negative-diagonal convention the
	// R factor scales by |s| exactly as a mathematical identity; roundoff
	// only enters through the two independent factorizations.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(20)
		n := 1 + rng.Intn(4)
		if n > m {
			n = m
		}
		s := -3.0 + 6.0*rng.Float64()
		if s == 0 {
			s = 1
		}
		a := matrix.Random(m, n, seed+2000)
		scaled := a.Clone()
		for i := range scaled.Data {
			scaled.Data[i] *= s
		}
		_, r, err := Householder(a)
		if err != nil {
			t.Fatal(err)
		}
		_, rs, err := Householder(scaled)
		if err != nil {
			t.Fatal(err)
		}
		abs := s
		if abs < 0 {
			abs = -abs
		}
		want := r.Clone()
		for i := range want.Data {
			want.Data[i] *= abs
		}
		if d := rs.MaxAbsDiff(want); d > 1e-9*float64(m)*(1+abs) {
			t.Errorf("seed %d: R(%g·A) deviates from |%g|·R(A) by %g", seed, s, s, d)
		}
	}
}
