// Package qr implements QR factorization: serial Householder QR and the
// communication-avoiding Tall-Skinny QR (TSQR) on the simulator. The
// paper's Section III lists QR among the factorizations its communication
// bounds cover; TSQR is the canonical communication-avoiding instance —
// one reduction tree of small R factors replaces the column-by-column
// panel traffic, so the word count drops to the I/O term and the message
// count to log p.
package qr

import (
	"fmt"
	"math"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// Householder factors A (m×n, m ≥ n) into Q·R with dense Householder
// reflections: returns Q (m×n, orthonormal columns — the thin factor) and
// R (n×n upper triangular with non-negative diagonal).
func Householder(a *matrix.Dense) (q, r *matrix.Dense, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, fmt.Errorf("qr: need m ≥ n, got %dx%d", m, n)
	}
	work := a.Clone()
	// vs[k] holds the k-th Householder vector (length m, zeros above k).
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		normx := 0.0
		for i := k; i < m; i++ {
			normx += work.At(i, k) * work.At(i, k)
		}
		normx = math.Sqrt(normx)
		v := make([]float64, m)
		alpha := work.At(k, k)
		sign := 1.0
		if alpha < 0 {
			sign = -1.0
		}
		v[k] = alpha + sign*normx
		for i := k + 1; i < m; i++ {
			v[i] = work.At(i, k)
		}
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 > 0 {
			// Apply I − 2vvᵀ/(vᵀv) to the trailing columns.
			for j := k; j < n; j++ {
				dot := 0.0
				for i := k; i < m; i++ {
					dot += v[i] * work.At(i, j)
				}
				scale := 2 * dot / vnorm2
				for i := k; i < m; i++ {
					work.Set(i, j, work.At(i, j)-scale*v[i])
				}
			}
		}
		vs = append(vs, v)
	}
	// R is the upper triangle; flip signs so the diagonal is non-negative
	// (a convention that makes R unique and comparable across algorithms).
	r = matrix.New(n, n)
	flip := make([]bool, n)
	for i := 0; i < n; i++ {
		flip[i] = work.At(i, i) < 0
		for j := i; j < n; j++ {
			v := work.At(i, j)
			if flip[i] {
				v = -v
			}
			r.Set(i, j, v)
		}
	}
	// Thin Q by applying the reflectors to the first n columns of I.
	q = matrix.New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * q.At(i, j)
			}
			scale := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-scale*v[i])
			}
		}
	}
	// Apply the sign convention to Q's columns to match R.
	for j := 0; j < n; j++ {
		if flip[j] {
			for i := 0; i < m; i++ {
				q.Set(i, j, -q.At(i, j))
			}
		}
	}
	return q, r, nil
}

// HouseholderFlops returns the classical operation count ≈ 2mn² − (2/3)n³
// for the factorization itself (Q assembly excluded).
func HouseholderFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return 2*fm*fn*fn - 2.0/3.0*fn*fn*fn
}

// Result bundles the TSQR output with simulation statistics.
type Result struct {
	// R is the n×n upper-triangular factor (non-negative diagonal).
	R *matrix.Dense
	// Sim holds per-rank counters and virtual clocks.
	Sim *sim.Result
}

// TSQR factors a tall-skinny A (m×n, m ≥ p·n) on p ranks: each rank
// Householder-QRs its row block, then a binomial reduction tree repeatedly
// stacks pairs of R factors and re-factors them, producing the global R in
// ⌈log2 p⌉ rounds. Per-rank communication is one n×n triangle per round —
// W = Θ(n²·log p), S = Θ(log p) — independent of m: the communication-
// avoiding profile (column-by-column panel QR would move Θ(n²·log p · …)
// with Θ(n·log p) messages).
//
// The orthogonal factor is left implicit (as in practice); R's correctness
// is established against the serial factorization, which also pins down Q
// = A·R⁻¹ when A has full rank.
func TSQR(cost sim.Cost, p int, a *matrix.Dense) (*Result, error) {
	m, n := a.Rows, a.Cols
	if p <= 0 || m%p != 0 {
		return nil, fmt.Errorf("qr: %d rows not divisible by %d ranks", m, p)
	}
	if m/p < n {
		return nil, fmt.Errorf("qr: local blocks %dx%d not tall (need m/p ≥ n)", m/p, n)
	}
	rowsPer := m / p
	var rOut *matrix.Dense

	res, err := sim.Run(p, cost, func(r *sim.Rank) error {
		me := r.ID()
		r.Alloc(rowsPer*n + n*n)
		local := a.Block(me*rowsPer, 0, rowsPer, n)
		_, rLoc, err := Householder(local)
		if err != nil {
			return err
		}
		r.Compute(HouseholderFlops(rowsPer, n))

		// Binomial reduction: at round bit, ranks with that bit set send
		// their R to (me &^ bit) and exit; survivors stack and re-factor.
		for bit := 1; bit < p; bit <<= 1 {
			if me&bit != 0 {
				r.Send(me&^bit, rLoc.Data)
				return nil
			}
			partner := me | bit
			if partner < p {
				other := matrix.FromData(n, n, r.Recv(partner))
				stacked := matrix.New(2*n, n)
				stacked.SetBlock(0, 0, rLoc)
				stacked.SetBlock(n, 0, other)
				_, rLoc, err = Householder(stacked)
				if err != nil {
					return err
				}
				r.Compute(HouseholderFlops(2*n, n))
			}
		}
		if me == 0 {
			rOut = rLoc
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{R: rOut, Sim: res}, nil
}
