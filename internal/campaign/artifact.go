package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"perfscale/internal/sim"
)

// ReproducerVersion is the artifact schema version; Load rejects artifacts
// from a different schema instead of misinterpreting them.
const ReproducerVersion = 1

// Reproducer is a self-contained minimal reproducer: everything needed to
// re-run one invariant violation bitwise — the target, the discovered and
// minimized fault plans, the judgment bands, and the exact outcomes the
// replay must reproduce. It references no files and no wall-clock state,
// so an artifact checked in today replays identically on any machine.
type Reproducer struct {
	Version int    `json:"version"`
	Target  Target `json:"target"`

	// Cell, Kind and Class locate the finding in the campaign that made it.
	Cell  int    `json:"cell"`
	Kind  string `json:"kind"`
	Class Class  `json:"class"`

	// Invariant and Detail name the violated property as first judged.
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`

	// TimeBand and EnergyBand are the overhead ceilings the campaign judged
	// with; Verify re-judges with the same bands.
	TimeBand   float64 `json:"time_band"`
	EnergyBand float64 `json:"energy_band"`

	// Discovered is the campaign cell's full plan; Minimized is the
	// delta-debugged reproducer. Coords are their coordWeight footprints —
	// minimization must strictly reduce them.
	Discovered       *sim.FaultPlan `json:"discovered"`
	DiscoveredCoords int            `json:"discovered_coords"`
	Minimized        *sim.FaultPlan `json:"minimized"`
	MinimizedCoords  int            `json:"minimized_coords"`
	// ShrinkRuns counts the target runs minimization spent.
	ShrinkRuns int `json:"shrink_runs"`

	// Clean is the fault-free baseline outcome; Expected is the outcome of
	// the minimized plan. Verify requires both bitwise on both backends.
	Clean    Outcome `json:"clean"`
	Expected Outcome `json:"expected"`
}

// Encode renders the artifact as indented JSON with a trailing newline.
func (r *Reproducer) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Load parses and sanity-checks an artifact.
func Load(data []byte) (*Reproducer, error) {
	var r Reproducer
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("campaign: bad reproducer artifact: %w", err)
	}
	if r.Version != ReproducerVersion {
		return nil, fmt.Errorf("campaign: reproducer schema version %d, want %d", r.Version, ReproducerVersion)
	}
	if r.Minimized == nil {
		return nil, fmt.Errorf("campaign: reproducer has no minimized plan")
	}
	if err := r.Target.Validate(); err != nil {
		return nil, err
	}
	if err := r.Minimized.Validate(r.Target.Ranks()); err != nil {
		return nil, err
	}
	return &r, nil
}

// LoadFile reads an artifact from disk.
func LoadFile(path string) (*Reproducer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(data)
}

// verifyRuntimes lists the backends Verify replays on: artifacts must
// reproduce on the exact-quiescence event engine and the goroutine engine
// alike, or the finding is a backend bug, not a protocol bug.
var verifyRuntimes = []struct {
	name string
	rt   sim.Runtime
}{
	{"event", sim.RuntimeEvent},
	{"goroutine", sim.RuntimeGoroutine},
}

// Reshrink re-minimizes the artifact's discovered plan from scratch with a
// fresh run budget — useful when the original campaign's ShrinkBudget ran
// dry before the plan got small. The artifact's Minimized, MinimizedCoords,
// ShrinkRuns and Expected fields are rewritten in place; the number of
// target runs spent is returned.
func (r *Reproducer) Reshrink(ctx context.Context, runtime string, budget int) (int, error) {
	rt, err := runtimeByName(runtime)
	if err != nil {
		return 0, err
	}
	sp, clean, err := r.Target.Enumerate(ctx, rt)
	if err != nil {
		return 0, err
	}
	if diff, same := clean.identical(&r.Clean); !same {
		return 0, fmt.Errorf("campaign: clean baseline deviates from the artifact's: %s", diff)
	}
	sh := &shrinker{ctx: ctx, t: r.Target, rt: rt, class: r.Class, clean: clean,
		b: bands{
			timeOverhead:   r.TimeBand,
			energyOverhead: r.EnergyBand,
			floor:          boundsFloor(r.Target, clean.PeakMemWords),
		},
		inv: r.Invariant, sp: sp, budget: budget}
	minimized := sh.shrink(r.Discovered)
	if ctx.Err() != nil {
		return sh.runs, ctx.Err()
	}
	expected, err := r.Target.Run(ctx, rt, minimized)
	if err != nil {
		return sh.runs, err
	}
	r.Minimized = minimized
	r.MinimizedCoords = coordWeight(minimized, r.Target.Ranks())
	r.ShrinkRuns = sh.runs
	r.Expected = *expected
	return sh.runs + 1, nil
}

// Verify replays the artifact on both backends and fails on the first
// deviation: the clean baseline must match Clean bitwise, the minimized
// plan must reproduce Expected bitwise, and re-judging the outcome with
// the stored bands must re-derive the recorded invariant violation.
func (r *Reproducer) Verify(ctx context.Context) error {
	if coords := coordWeight(r.Minimized, r.Target.Ranks()); coords != r.MinimizedCoords {
		return fmt.Errorf("campaign: artifact claims %d minimized coords but the plan weighs %d", r.MinimizedCoords, coords)
	}
	for _, be := range verifyRuntimes {
		clean, err := r.Target.Run(ctx, be.rt, nil)
		if err != nil {
			return err
		}
		if diff, same := clean.identical(&r.Clean); !same {
			return fmt.Errorf("campaign: %s backend clean baseline deviates: %s", be.name, diff)
		}
		got, err := r.Target.Run(ctx, be.rt, r.Minimized)
		if err != nil {
			return err
		}
		if got.ErrorKind == "cancelled" {
			return ctx.Err()
		}
		if r.Invariant == "replay" {
			// A replay finding is nondeterminism itself: the only meaningful
			// check is that two runs of the plan still disagree.
			again, err := r.Target.Run(ctx, be.rt, r.Minimized)
			if err != nil {
				return err
			}
			if replayViolation(got, again) == nil {
				return fmt.Errorf("campaign: %s backend no longer shows the replay divergence", be.name)
			}
			continue
		}
		if diff, same := got.identical(&r.Expected); !same {
			return fmt.Errorf("campaign: %s backend replay deviates from expected outcome: %s", be.name, diff)
		}
		b := bands{
			timeOverhead:   r.TimeBand,
			energyOverhead: r.EnergyBand,
			floor:          boundsFloor(r.Target, clean.PeakMemWords),
		}
		if !hasInvariant(checkOutcome(r.Class, clean, got, b), r.Invariant) {
			return fmt.Errorf("campaign: %s backend replay no longer violates %q", be.name, r.Invariant)
		}
	}
	return nil
}
