package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"perfscale/internal/sim"
)

// redTarget is the campaign's canonical seeded violation: a failure
// detector provisioned at 4 RTOs with only 2 tolerated misses, a 3-attempt
// retransmission budget and an 8·RTO backoff ceiling. Under 25% background
// loss the detector converts survivable silence into a spurious
// peer-failure verdict; the stock 512·RTO/8-miss defaults mask the same
// loss completely.
func redTarget() Target {
	return Target{N: 16, Q: 4, MaxAttempts: 3, MaxRTOFactor: 8, DetectorRTOs: 4, DetectorMisses: 2}
}

// smallConfig keeps campaign tests fast: a few cells per sweep, tight
// shrink budgets, event backend.
func smallConfig(t Target) Config {
	return Config{
		Target:      t,
		RandomPlans: 2, MaxCrashCells: 2, MaxLinkCells: 4, MaxWindowCells: 2,
		MaxFindings: 2, ShrinkBudget: 80,
	}
}

func TestEnumerateSpaceDeterministic(t *testing.T) {
	tg := redTarget().withDefaults()
	sp1, clean1, err := tg.Enumerate(context.Background(), sim.RuntimeEvent)
	if err != nil {
		t.Fatal(err)
	}
	sp2, clean2, err := tg.Enumerate(context.Background(), sim.RuntimeEvent)
	if err != nil {
		t.Fatal(err)
	}
	if diff, same := clean1.identical(clean2); !same {
		t.Fatalf("clean enumeration runs differ: %s", diff)
	}
	j1, _ := json.Marshal(sp1)
	j2, _ := json.Marshal(sp2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("enumerated spaces differ:\n%s\n%s", j1, j2)
	}
	if len(sp1.Phases) != tg.Q {
		t.Errorf("enumerated %d phase marks, want %d panel phases", len(sp1.Phases), tg.Q)
	}
	if sp1.Phases[0].Name != "panel-0" {
		t.Errorf("first phase %q, want panel-0", sp1.Phases[0].Name)
	}
	if len(sp1.Links) == 0 || len(sp1.Windows) == 0 {
		t.Errorf("enumeration found %d links and %d timer windows, want both nonzero", len(sp1.Links), len(sp1.Windows))
	}
	if sp1.Ranks != 16 || sp1.Makespan <= 0 {
		t.Errorf("space ranks=%d makespan=%g", sp1.Ranks, sp1.Makespan)
	}
}

func TestBuildCellsDeterministicAndValid(t *testing.T) {
	cfg := smallConfig(redTarget()).withDefaults()
	sp, _, err := cfg.Target.Enumerate(context.Background(), sim.RuntimeEvent)
	if err != nil {
		t.Fatal(err)
	}
	cells := BuildCells(cfg, sp)
	again := BuildCells(cfg, sp)
	j1, _ := json.Marshal(cells)
	j2, _ := json.Marshal(again)
	if !bytes.Equal(j1, j2) {
		t.Fatal("cell list is not a pure function of (Config, Space)")
	}
	if len(cells) == 0 {
		t.Fatal("no cells generated")
	}
	kinds := map[string]int{}
	classes := map[Class]int{}
	for i, c := range cells {
		if c.Seq != i {
			t.Errorf("cell %d has Seq %d", i, c.Seq)
		}
		if err := c.Plan.Validate(cfg.Target.Ranks()); err != nil {
			t.Errorf("cell %d (%s) has invalid plan: %v", i, c.Kind, err)
		}
		if w := coordWeight(c.Plan, cfg.Target.Ranks()); w <= 0 {
			t.Errorf("cell %d (%s) has coordinate weight %d", i, c.Kind, w)
		}
		kinds[c.Kind]++
		classes[c.Class]++
	}
	for _, k := range []string{"background", "compound", "crash-phase", "drop-link", "drop-link-hard", "degraded-window"} {
		if kinds[k] == 0 {
			t.Errorf("no %q cells generated (kinds: %v)", k, kinds)
		}
	}
	if classes[ClassMaskable] == 0 || classes[ClassGraceful] == 0 {
		t.Errorf("both invariant classes must appear, got %v", classes)
	}
	if cells[0].Kind != "background" {
		t.Errorf("first cell is %q, want the background-loss cell", cells[0].Kind)
	}
}

func TestCleanRunBitIdenticalAcrossBackends(t *testing.T) {
	tg := redTarget().withDefaults()
	ev, err := tg.Run(context.Background(), sim.RuntimeEvent, nil)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := tg.Run(context.Background(), sim.RuntimeGoroutine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Completed || !gr.Completed {
		t.Fatalf("clean runs must complete: event %+v goroutine %+v", ev, gr)
	}
	if diff, same := ev.identical(gr); !same {
		t.Fatalf("backends disagree on the clean run: %s", diff)
	}
}

// TestCampaignRedThenGreen is the engine's end-to-end proof: the seeded
// under-provisioned detector is found by the very first cell, shrunk to a
// single link atom with strictly fewer fault coordinates, and the emitted
// artifact replays bitwise on both backends — while the identically-swept
// stock configuration sails through the same cell clean.
func TestCampaignRedThenGreen(t *testing.T) {
	// Red: the mis-provisioned detector.
	eng, err := New(smallConfig(redTarget()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(RunOpts{Log: t.Logf})
	if err != nil {
		t.Fatalf("red campaign: %v", err)
	}
	if !st.Completed {
		t.Fatal("red campaign did not complete")
	}
	if len(st.Findings) == 0 {
		t.Fatal("red campaign found no violations; the seeded detector bug went undetected")
	}
	f := st.Findings[0]
	if f.Cell != 0 || f.Kind != "background" {
		t.Errorf("first finding from cell %d (%s), want the background cell 0", f.Cell, f.Kind)
	}
	if f.Invariant != "completes" {
		t.Errorf("first finding violates %q, want completes", f.Invariant)
	}
	r := f.Repro
	if r == nil {
		t.Fatal("first finding carries no reproducer")
	}
	if r.MinimizedCoords >= r.DiscoveredCoords {
		t.Errorf("shrinking did not reduce coordinates: %d → %d", r.DiscoveredCoords, r.MinimizedCoords)
	}
	if got := len(r.Minimized.Links) + len(r.Minimized.Crashes) + len(r.Minimized.Degraded); got != 1 {
		t.Errorf("minimized plan has %d atoms, want the single killer link rule (%+v)", got, r.Minimized)
	}
	if r.Expected.ErrorKind != "peer-failure" {
		t.Errorf("minimized plan ends in %q, want the spurious peer-failure verdict", r.Expected.ErrorKind)
	}

	// The artifact must survive a JSON round trip bit-for-bit…
	enc, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("artifact changed across an encode/load round trip")
	}
	// …and replay from the loaded copy alone, on both backends.
	if err := back.Verify(context.Background()); err != nil {
		t.Fatalf("artifact does not replay: %v", err)
	}

	// Green: the stock detector under the identical background cell.
	green, err := New(smallConfig(Target{N: 16, Q: 4}))
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3 covers enumeration plus the background cell's two runs.
	gst, err := green.Run(RunOpts{Budget: 3, Log: t.Logf})
	if err != ErrBudget {
		t.Fatalf("green campaign: got %v, want ErrBudget", err)
	}
	if gst.NextCell != 1 {
		t.Fatalf("green campaign processed %d cells, want exactly the background cell", gst.NextCell)
	}
	if len(gst.Findings) != 0 {
		t.Fatalf("stock configuration flagged on the background cell: %+v", gst.Findings)
	}
}

// TestCampaignResumeIdentical checkpoints a campaign, kills it mid-sweep
// via context cancellation (the SIGINT path), resumes from the serialized
// checkpoint, and requires the final state — corpus, findings, run counts,
// artifacts — byte-identical to an uninterrupted reference run.
func TestCampaignResumeIdentical(t *testing.T) {
	cfg := smallConfig(redTarget())

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := ref.Run(RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(refSt)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the fourth checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snapshot []byte
	saves := 0
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(RunOpts{Context: ctx, Save: func(st *State) error {
		var err error
		snapshot, err = json.Marshal(st)
		saves++
		if saves == 4 {
			cancel()
		}
		return err
	}})
	if err != ErrInterrupted {
		t.Fatalf("interrupted run: got %v, want ErrInterrupted", err)
	}
	if snapshot == nil {
		t.Fatal("no checkpoint written before interruption")
	}

	// Resume from the serialized checkpoint only.
	var st State
	if err := json.Unmarshal(snapshot, &st); err != nil {
		t.Fatal(err)
	}
	if st.Completed {
		t.Fatal("interrupted checkpoint claims completion")
	}
	resumed, err := Resume(&st)
	if err != nil {
		t.Fatal(err)
	}
	finalSt, err := resumed.Run(RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	finalJSON, err := json.Marshal(finalSt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, finalJSON) {
		t.Errorf("resumed campaign diverged from the uninterrupted reference:\nref:     %.400s…\nresumed: %.400s…", refJSON, finalJSON)
	}
}

// TestGoldenArtifactReplays pins the checked-in reproducer: the artifact
// alone — no campaign, no enumeration — must replay its violation bitwise
// on both backends. This is the regression net for the detector
// provisioning bug class.
func TestGoldenArtifactReplays(t *testing.T) {
	if os.Getenv("CAMPAIGN_REGEN_GOLDEN") != "" {
		eng, err := New(smallConfig(redTarget()))
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run(RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Findings) == 0 || st.Findings[0].Repro == nil {
			t.Fatal("regeneration campaign produced no minimized finding")
		}
		data, err := st.Findings[0].Repro.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/repro-golden.json", data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("regenerated testdata/repro-golden.json")
	}
	r, err := LoadFile("testdata/repro-golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if r.MinimizedCoords >= r.DiscoveredCoords {
		t.Errorf("golden artifact is not minimized: %d → %d coords", r.DiscoveredCoords, r.MinimizedCoords)
	}
	if err := r.Verify(context.Background()); err != nil {
		t.Fatalf("golden artifact does not replay: %v", err)
	}
}

func TestResumeRejectsBadState(t *testing.T) {
	if _, err := Resume(&State{Version: 99, Config: smallConfig(redTarget()).withDefaults()}); err == nil {
		t.Error("wrong-version state accepted")
	}
	st := &State{Version: StateVersion, Config: smallConfig(redTarget()).withDefaults(), NextCell: 5}
	if _, err := Resume(st); err == nil {
		t.Error("next_cell beyond corpus accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Target: Target{Workload: "cannon"}},
		{Target: Target{N: 15, Q: 4}},
		{Target: Target{Machine: "no-such-machine"}},
		{Runtime: "thread"},
		{DropProb: 1.5},
		{TimeOverhead: 0.5},
		{RandomPlans: -1},
	}
	for i, c := range bad {
		if err := c.withDefaults().Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if err := (Config{}).withDefaults().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
