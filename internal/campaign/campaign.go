package campaign

import (
	"context"
	"errors"
	"fmt"

	"perfscale/internal/sim"
)

// Config parameterizes a campaign. It is fully serializable and, together
// with the enumerated Space, determines the entire cell list — which is
// what makes campaigns resumable: a checkpointed campaign rebuilt from its
// Config and Space walks the identical corpus.
type Config struct {
	Target Target `json:"target"`
	// Runtime names the sweep backend: "event" (default — exact quiescence,
	// ~1000× faster) or "goroutine". Artifact verification always replays
	// on both regardless.
	Runtime string `json:"runtime"`
	// Seed keys every randomized choice: cell fault-plan seeds, compound
	// plan composition, crash victim selection.
	Seed uint64 `json:"seed"`
	// RandomPlans is the number of seeded compound cells.
	RandomPlans int `json:"random_plans"`
	// DropProb is the fractional loss rate of the background and per-link
	// drop cells.
	DropProb float64 `json:"drop_prob"`
	// MaxCrashCells, MaxLinkCells and MaxWindowCells cap the structured
	// sweeps (0 = unlimited); large grids are downsampled evenly.
	MaxCrashCells  int `json:"max_crash_cells"`
	MaxLinkCells   int `json:"max_link_cells"`
	MaxWindowCells int `json:"max_window_cells"`
	// TimeOverhead and EnergyOverhead are the maskable-class ceilings on
	// faulty/clean ratios. Deliberately generous — stock ARQ masks the
	// default 25% background loss at a measured ~105× time overhead on the
	// small grid — they catch runaway retransmission storms, not the
	// (large but bounded) cost of honest recovery.
	TimeOverhead   float64 `json:"time_overhead"`
	EnergyOverhead float64 `json:"energy_overhead"`
	// MaxFindings caps how many findings are shrunk to artifacts; later
	// findings are still recorded, unminimized.
	MaxFindings int `json:"max_findings"`
	// ShrinkBudget caps the target runs one minimization may spend.
	ShrinkBudget int `json:"shrink_budget"`
}

// withDefaults fills zero fields with the small-grid defaults.
func (c Config) withDefaults() Config {
	c.Target = c.Target.withDefaults()
	if c.Runtime == "" {
		c.Runtime = "event"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RandomPlans == 0 {
		c.RandomPlans = 6
	}
	if c.DropProb == 0 {
		c.DropProb = 0.25
	}
	if c.MaxCrashCells == 0 {
		c.MaxCrashCells = 8
	}
	if c.MaxLinkCells == 0 {
		c.MaxLinkCells = 12
	}
	if c.MaxWindowCells == 0 {
		c.MaxWindowCells = 4
	}
	if c.TimeOverhead == 0 {
		c.TimeOverhead = 200
	}
	if c.EnergyOverhead == 0 {
		c.EnergyOverhead = 200
	}
	if c.MaxFindings == 0 {
		c.MaxFindings = 4
	}
	if c.ShrinkBudget == 0 {
		c.ShrinkBudget = 250
	}
	return c
}

// Validate rejects configs the engine cannot run.
func (c Config) Validate() error {
	if err := c.Target.Validate(); err != nil {
		return err
	}
	if _, err := runtimeByName(c.Runtime); err != nil {
		return err
	}
	if c.DropProb <= 0 || c.DropProb > 1 {
		return fmt.Errorf("campaign: drop probability %g outside (0,1]", c.DropProb)
	}
	if c.TimeOverhead < 1 || c.EnergyOverhead < 1 {
		return fmt.Errorf("campaign: overhead bands must be ≥ 1, got T×%g E×%g", c.TimeOverhead, c.EnergyOverhead)
	}
	if c.RandomPlans < 0 || c.MaxFindings < 0 || c.ShrinkBudget < 0 {
		return fmt.Errorf("campaign: negative knob in config")
	}
	return nil
}

// runtimeByName maps the serialized backend name to the sim runtime.
func runtimeByName(name string) (sim.Runtime, error) {
	switch name {
	case "event":
		return sim.RuntimeEvent, nil
	case "goroutine":
		return sim.RuntimeGoroutine, nil
	}
	return 0, fmt.Errorf("campaign: unknown runtime %q (have: event, goroutine)", name)
}

// StateVersion is the checkpoint schema version.
const StateVersion = 1

// State is the complete checkpoint of a campaign: save it after any cell
// and a Resume'd engine continues exactly where it stopped — same cells,
// same seeds, same findings, same artifacts. It holds no wall-clock state.
type State struct {
	Version int    `json:"version"`
	Config  Config `json:"config"`
	// Space and Clean are the enumeration products: the fault coordinates
	// and the fault-free baseline every invariant judges against.
	Space *Space  `json:"space,omitempty"`
	Clean Outcome `json:"clean,omitempty"`
	// Cells is the corpus, a pure function of (Config, Space); it is
	// checkpointed so a resumed campaign need not re-enumerate.
	Cells []Cell `json:"cells,omitempty"`
	// NextCell indexes the first cell not yet fully processed.
	NextCell int `json:"next_cell"`
	// RunsUsed counts completed (never cancelled) target runs, including
	// enumeration, replay checks and shrinking.
	RunsUsed int `json:"runs_used"`
	// Findings lists every invariant violation in discovery order.
	Findings []Finding `json:"findings,omitempty"`
	// Completed is set once every cell has been processed.
	Completed bool `json:"completed"`
}

// Finding is one invariant violation. The first Config.MaxFindings carry a
// minimized reproducer and its deterministic artifact filename.
type Finding struct {
	Cell      int    `json:"cell"`
	Kind      string `json:"kind"`
	Class     Class  `json:"class"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	// Artifact is the reproducer's filename within the campaign's artifact
	// directory ("repro-000.json", numbered by finding order).
	Artifact string      `json:"artifact,omitempty"`
	Repro    *Reproducer `json:"repro,omitempty"`
}

// ErrInterrupted reports a campaign stopped by context cancellation with
// its state checkpointed; Resume continues it.
var ErrInterrupted = errors.New("campaign: interrupted, state saved")

// ErrBudget reports a campaign paused by its run budget with its state
// checkpointed; Resume with a fresh budget continues it.
var ErrBudget = errors.New("campaign: run budget exhausted, state saved")

// RunOpts controls one Run call. All fields are optional except Context
// handling: a nil Context means background.
type RunOpts struct {
	Context context.Context
	// Budget caps st.RunsUsed; it is checked between cells only, so a
	// budgeted campaign always checkpoints on a cell boundary.
	Budget int
	// Log receives one-line progress messages.
	Log func(format string, args ...any)
	// Save checkpoints the state; it is called after enumeration, after
	// every completed cell, and on interruption. A Save error aborts the
	// campaign.
	Save func(*State) error
}

// Engine drives one campaign. It performs no file IO — checkpointing and
// artifact writing are the caller's Save callback — so the engine itself
// is deterministic and testable in memory.
type Engine struct {
	st *State
	rt sim.Runtime
}

// New builds an engine for a fresh campaign.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt, _ := runtimeByName(cfg.Runtime)
	return &Engine{st: &State{Version: StateVersion, Config: cfg}, rt: rt}, nil
}

// Resume builds an engine continuing a checkpointed campaign.
func Resume(st *State) (*Engine, error) {
	if st.Version != StateVersion {
		return nil, fmt.Errorf("campaign: state schema version %d, want %d", st.Version, StateVersion)
	}
	if err := st.Config.Validate(); err != nil {
		return nil, err
	}
	if st.NextCell < 0 || st.NextCell > len(st.Cells) {
		return nil, fmt.Errorf("campaign: state next_cell %d outside [0,%d]", st.NextCell, len(st.Cells))
	}
	rt, _ := runtimeByName(st.Config.Runtime)
	return &Engine{st: st, rt: rt}, nil
}

// State returns the engine's current state (live, not a copy).
func (e *Engine) State() *State { return e.st }

// Run executes the campaign to completion, budget exhaustion, or
// cancellation. It returns the final state alongside nil (completed),
// ErrBudget, ErrInterrupted, or a harness error.
func (e *Engine) Run(opts RunOpts) (*State, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	save := func() error {
		if opts.Save == nil {
			return nil
		}
		return opts.Save(e.st)
	}
	st, cfg := e.st, e.st.Config

	if st.Space == nil {
		logf("enumerating fault space: clean %s run of %s n=%d q=%d", cfg.Runtime, cfg.Target.Workload, cfg.Target.N, cfg.Target.Q)
		sp, clean, err := cfg.Target.Enumerate(ctx, e.rt)
		if err != nil {
			if ctx.Err() != nil {
				return st, ErrInterrupted
			}
			return st, err
		}
		st.Space, st.Clean = sp, *clean
		st.RunsUsed++
		st.Cells = BuildCells(cfg, sp)
		logf("space: %d phases, %d links, %d windows → %d cells", len(sp.Phases), len(sp.Links), len(sp.Windows), len(st.Cells))
		if err := save(); err != nil {
			return st, err
		}
	}

	b := bands{
		timeOverhead:   cfg.TimeOverhead,
		energyOverhead: cfg.EnergyOverhead,
		floor:          boundsFloor(cfg.Target, st.Clean.PeakMemWords),
	}

	for st.NextCell < len(st.Cells) {
		if ctx.Err() != nil {
			if err := save(); err != nil {
				return st, err
			}
			return st, ErrInterrupted
		}
		if opts.Budget > 0 && st.RunsUsed >= opts.Budget {
			if err := save(); err != nil {
				return st, err
			}
			return st, ErrBudget
		}
		cell := st.Cells[st.NextCell]
		// A cell's runs commit to RunsUsed only when the cell completes, so
		// an interruption mid-cell leaves the checkpoint exactly as if the
		// cell had never started and resume replays it identically.
		used := 0
		out, err := cfg.Target.Run(ctx, e.rt, cell.Plan)
		if err != nil {
			return st, err
		}
		if out.ErrorKind == "cancelled" {
			if err := save(); err != nil {
				return st, err
			}
			return st, ErrInterrupted
		}
		used++
		again, err := cfg.Target.Run(ctx, e.rt, cell.Plan)
		if err != nil {
			return st, err
		}
		if again.ErrorKind == "cancelled" {
			if err := save(); err != nil {
				return st, err
			}
			return st, ErrInterrupted
		}
		used++
		vios := checkOutcome(cell.Class, &st.Clean, out, b)
		if rv := replayViolation(out, again); rv != nil {
			vios = append(vios, *rv)
		}
		if len(vios) == 0 {
			logf("cell %d/%d %s ok (%s)", cell.Seq+1, len(st.Cells), cell.Kind, outcomeWord(out))
			st.RunsUsed += used
			st.NextCell++
			if err := save(); err != nil {
				return st, err
			}
			continue
		}
		v := vios[0]
		logf("cell %d/%d %s VIOLATES %s: %s", cell.Seq+1, len(st.Cells), cell.Kind, v.Invariant, v.Detail)
		f := Finding{Cell: cell.Seq, Kind: cell.Kind, Class: cell.Class, Invariant: v.Invariant, Detail: v.Detail}
		if len(st.Findings) < cfg.MaxFindings {
			sh := &shrinker{ctx: ctx, t: cfg.Target, rt: e.rt, class: cell.Class,
				clean: &st.Clean, b: b, inv: v.Invariant, sp: st.Space, budget: cfg.ShrinkBudget}
			minimized := sh.shrink(cell.Plan)
			used += sh.runs
			if ctx.Err() != nil {
				if err := save(); err != nil {
					return st, err
				}
				return st, ErrInterrupted
			}
			expected, err := cfg.Target.Run(ctx, e.rt, minimized)
			if err != nil {
				return st, err
			}
			if expected.ErrorKind == "cancelled" {
				if err := save(); err != nil {
					return st, err
				}
				return st, ErrInterrupted
			}
			used++
			ranks := cfg.Target.Ranks()
			f.Artifact = fmt.Sprintf("repro-%03d.json", len(st.Findings))
			f.Repro = &Reproducer{
				Version: ReproducerVersion, Target: cfg.Target,
				Cell: cell.Seq, Kind: cell.Kind, Class: cell.Class,
				Invariant: v.Invariant, Detail: v.Detail,
				TimeBand: cfg.TimeOverhead, EnergyBand: cfg.EnergyOverhead,
				Discovered: cell.Plan, DiscoveredCoords: coordWeight(cell.Plan, ranks),
				Minimized: minimized, MinimizedCoords: coordWeight(minimized, ranks),
				ShrinkRuns: sh.runs,
				Clean:      st.Clean, Expected: *expected,
			}
			logf("  shrunk %d → %d fault coordinates in %d runs → %s",
				f.Repro.DiscoveredCoords, f.Repro.MinimizedCoords, sh.runs, f.Artifact)
		} else {
			logf("  finding cap reached (%d); recorded unminimized", cfg.MaxFindings)
		}
		st.Findings = append(st.Findings, f)
		st.RunsUsed += used
		st.NextCell++
		if err := save(); err != nil {
			return st, err
		}
	}
	st.Completed = true
	if err := save(); err != nil {
		return st, err
	}
	logf("campaign complete: %d cells, %d runs, %d findings", len(st.Cells), st.RunsUsed, len(st.Findings))
	return st, nil
}

// outcomeWord renders a one-word outcome summary for progress lines.
func outcomeWord(o *Outcome) string {
	if o.Completed {
		return "completed"
	}
	return o.ErrorKind
}
