package campaign

import "fmt"

// Violation is one invariant a cell's outcome broke.
type Violation struct {
	// Invariant names the broken property: "completes", "numerics",
	// "time-overhead", "energy-overhead", "bounds-floor", "no-wedge",
	// or "replay".
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// bands bundles the campaign's overhead ceilings and the communication
// lower bound the invariant checks judge against; artifacts carry them so
// a reproducer can be re-judged from the JSON alone.
type bands struct {
	timeOverhead   float64
	energyOverhead float64
	floor          float64
}

// floorSlack mirrors the conformance bounds family: the floor holds up to
// floating-point summation drift, nothing more.
const floorSlack = 1 - 1e-9

// checkOutcome judges one cell outcome against its class's invariant set.
// The clean baseline supplies the bit-identity reference and the overhead
// denominators. A "cancelled" outcome must never reach this function —
// the engine discards it (real time leaked into the run).
func checkOutcome(class Class, clean, out *Outcome, b bands) []Violation {
	var vios []Violation
	add := func(inv, detail string) { vios = append(vios, Violation{Invariant: inv, Detail: detail}) }

	if !out.Completed {
		switch class {
		case ClassMaskable:
			// A maskable plan injects nothing the stack is allowed to
			// die from.
			add("completes", fmt.Sprintf("maskable plan killed the run: %s: %s", out.ErrorKind, out.Error))
		case ClassGraceful:
			// A graceful plan may kill the run, but only with a typed
			// verdict; a watchdog wedge or an untyped error is a bug.
			if out.ErrorKind != "peer-failure" && out.ErrorKind != "crash" {
				add("no-wedge", fmt.Sprintf("graceful plan ended untyped: %s: %s", out.ErrorKind, out.Error))
			}
		}
		return vios
	}

	// Completed runs of either class: recovery changes when work happens,
	// never what is computed, and can only add words, time and energy.
	if out.OutputDigest != clean.OutputDigest {
		add("numerics", fmt.Sprintf("product digest %s differs from clean %s", out.OutputDigest, clean.OutputDigest))
	}
	if b.floor > 0 && out.MaxWordsMoved < b.floor*floorSlack {
		add("bounds-floor", fmt.Sprintf("busiest-rank words moved %g fell below the composite lower bound %g", out.MaxWordsMoved, b.floor))
	}
	if class != ClassMaskable {
		return vios
	}
	if ratio := out.SimTime / clean.SimTime; ratio < floorSlack || ratio > b.timeOverhead {
		add("time-overhead", fmt.Sprintf("T ratio %.6g outside [1, %g]", ratio, b.timeOverhead))
	}
	if ratio := out.EnergyJ / clean.EnergyJ; ratio < floorSlack || ratio > b.energyOverhead {
		add("energy-overhead", fmt.Sprintf("E ratio %.6g outside [1, %g]", ratio, b.energyOverhead))
	}
	return vios
}

// replayViolation compares two runs of the same plan on the same backend;
// any difference is a determinism violation — the property every other
// guarantee in the repo stands on.
func replayViolation(first, second *Outcome) *Violation {
	if diff, same := first.identical(second); !same {
		return &Violation{Invariant: "replay", Detail: "second run of the same plan differs: " + diff}
	}
	return nil
}

// hasInvariant reports whether the named invariant is among the violations.
func hasInvariant(vios []Violation, name string) bool {
	for _, v := range vios {
		if v.Invariant == name {
			return true
		}
	}
	return false
}
