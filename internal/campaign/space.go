package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"perfscale/internal/sim"
)

// Space is the enumerated fault space of one clean run: every injection
// coordinate the campaign sweeps is read off the observer stream of a real
// execution, never guessed. It is serializable and a pure function of the
// target, so a resumed campaign rebuilds the identical cell list from the
// checkpointed Space.
type Space struct {
	Ranks    int     `json:"ranks"`
	Makespan float64 `json:"makespan"`
	// Phases are the distinct phase marks with the earliest virtual time
	// any rank entered them — the crash-injection candidates.
	Phases []PhaseMark `json:"phases"`
	// Links are the directed rank pairs that actually communicated — the
	// drop/duplication/corruption candidates.
	Links []Link `json:"links"`
	// Windows are merged timer-activity windows (armed RTO and detector
	// spans) — the degraded-link window candidates, where latency
	// inflation races real protocol deadlines.
	Windows []Window `json:"windows"`
}

// PhaseMark is one named phase boundary at its earliest entry time.
type PhaseMark struct {
	Name string  `json:"name"`
	At   float64 `json:"at"`
}

// Link is one directed communicating pair.
type Link struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Window is one virtual-time interval [From, Until).
type Window struct {
	From  float64 `json:"from"`
	Until float64 `json:"until"`
}

// maxWindows caps the merged timer windows kept for the degraded-window
// grid; beyond this the grid stops adding scenario diversity.
const maxWindows = 6

// collector subscribes to the clean run and accumulates the raw
// coordinates. Callbacks fire concurrently across ranks (see the Observer
// contract), so every handler locks; the clean run happens once per
// campaign and contention is irrelevant next to simulation cost.
type collector struct {
	mu      sync.Mutex
	phases  map[string]float64
	links   map[Link]bool
	windows []Window
}

func newCollector() *collector {
	return &collector{phases: map[string]float64{}, links: map[Link]bool{}}
}

func (c *collector) OnCompute(rank int, seg sim.Segment) {}

func (c *collector) OnSend(rank int, seg sim.Segment) {
	c.mu.Lock()
	c.links[Link{Src: rank, Dst: seg.Peer}] = true
	c.mu.Unlock()
}

func (c *collector) OnRecv(rank int, seg sim.Segment) {}

func (c *collector) OnPhase(rank int, name string, at float64) {
	c.mu.Lock()
	if t, ok := c.phases[name]; !ok || at < t {
		c.phases[name] = at
	}
	c.mu.Unlock()
}

func (c *collector) OnFault(ev sim.FaultEvent) {}

func (c *collector) OnTimer(ev sim.TimerEvent) {
	if ev.Kind != sim.TimerArmed || ev.Deadline <= ev.Time {
		return
	}
	c.mu.Lock()
	c.windows = append(c.windows, Window{From: ev.Time, Until: ev.Deadline})
	c.mu.Unlock()
}

func (c *collector) OnCrash(ev sim.CrashEvent)       {}
func (c *collector) OnDeadlock(ev sim.DeadlockEvent) {}

// space finalizes the collected coordinates into a deterministic Space:
// everything sorted, timer windows merged and capped.
func (c *collector) space(ranks int, makespan float64) *Space {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp := &Space{Ranks: ranks, Makespan: makespan}
	for name, at := range c.phases {
		sp.Phases = append(sp.Phases, PhaseMark{Name: name, At: at})
	}
	sort.Slice(sp.Phases, func(i, j int) bool {
		if sp.Phases[i].At != sp.Phases[j].At {
			return sp.Phases[i].At < sp.Phases[j].At
		}
		return sp.Phases[i].Name < sp.Phases[j].Name
	})
	for l := range c.links {
		sp.Links = append(sp.Links, l)
	}
	sort.Slice(sp.Links, func(i, j int) bool {
		if sp.Links[i].Src != sp.Links[j].Src {
			return sp.Links[i].Src < sp.Links[j].Src
		}
		return sp.Links[i].Dst < sp.Links[j].Dst
	})
	sp.Windows = mergeWindows(c.windows)
	if len(sp.Windows) > maxWindows {
		sp.Windows = sp.Windows[:maxWindows]
	}
	// A workload with no timers still gets windows: the intervals between
	// consecutive phase boundaries.
	if len(sp.Windows) == 0 {
		for i := 0; i+1 < len(sp.Phases); i++ {
			sp.Windows = append(sp.Windows, Window{From: sp.Phases[i].At, Until: sp.Phases[i+1].At})
			if len(sp.Windows) == maxWindows {
				break
			}
		}
	}
	return sp
}

// mergeWindows sorts raw [From, Until) intervals and merges overlaps.
func mergeWindows(raw []Window) []Window {
	if len(raw) == 0 {
		return nil
	}
	ws := append([]Window(nil), raw...)
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].From != ws[j].From {
			return ws[i].From < ws[j].From
		}
		return ws[i].Until < ws[j].Until
	})
	merged := []Window{ws[0]}
	for _, w := range ws[1:] {
		last := &merged[len(merged)-1]
		if w.From <= last.Until {
			if w.Until > last.Until {
				last.Until = w.Until
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// Enumerate runs the target fault-free with the collector subscribed and
// returns the enumerated space plus the clean baseline outcome. Observed
// and blind runs are bit-identical (pinned by the conformance metamorphic
// family), so the same run serves as both enumeration and baseline.
func (t Target) Enumerate(ctx context.Context, rt sim.Runtime) (*Space, *Outcome, error) {
	col := newCollector()
	out, err := t.Run(ctx, rt, nil, col)
	if err != nil {
		return nil, nil, err
	}
	if !out.Completed {
		return nil, nil, fmt.Errorf("campaign: clean enumeration run failed (%s: %s) — the target is broken before any fault is injected", out.ErrorKind, out.Error)
	}
	return col.space(t.Ranks(), out.SimTime), out, nil
}
