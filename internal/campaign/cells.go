package campaign

import (
	"fmt"

	"perfscale/internal/sim"
)

// Class partitions cells by the invariant set they must satisfy.
type Class string

const (
	// ClassMaskable marks survivable fault plans — fractional message
	// faults and degraded windows the resilience stack exists to absorb.
	// The run must complete bit-identical to the clean baseline, inside
	// the overhead bands, above the communication lower bound.
	ClassMaskable Class = "maskable"
	// ClassGraceful marks plans that may legitimately kill the run —
	// rank crashes and total link loss. The run must either complete
	// bit-identically or fail with a typed verdict (peer-failure or
	// crash); it must never wedge into a watchdog abort or an untyped
	// error.
	ClassGraceful Class = "graceful"
)

// Cell is one campaign coordinate: a fault plan plus the invariant class
// judging it. The cell list is a pure function of (Config, Space), which
// is what makes an interrupted campaign resumable with an identical
// corpus.
type Cell struct {
	Seq   int            `json:"seq"`
	Kind  string         `json:"kind"`
	Class Class          `json:"class"`
	Desc  string         `json:"desc"`
	Plan  *sim.FaultPlan `json:"plan"`
}

// mix64 is the splitmix64 finalizer, the same generator sim.FaultPlan
// hashes with; the campaign derives every cell seed and randomized choice
// from it so the cell list depends only on Config.Seed.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cellSeed derives a nonzero fault-plan seed for cell construction slot i.
func cellSeed(base uint64, i int) uint64 {
	return mix64(base^mix64(uint64(i)+0xC0FFEE)) | 1
}

// BuildCells generates the campaign's cell list from the enumerated space:
// the background-loss scenario first (the cheapest high-yield cell),
// then seeded randomized compound plans, then the structured sweeps —
// crash-at-each-phase, drop-each-link (fractional and total), and the
// degraded-window grid.
func BuildCells(cfg Config, sp *Space) []Cell {
	var cells []Cell
	add := func(kind string, class Class, desc string, plan *sim.FaultPlan) {
		cells = append(cells, Cell{Seq: len(cells), Kind: kind, Class: class, Desc: desc, Plan: plan})
	}

	// Background loss: drops, duplications and corruptions on every link
	// at once, as three separate atoms so delta-debugging can name the
	// one that matters.
	add("background", ClassMaskable,
		fmt.Sprintf("all-links background loss: %g drop + 0.02 dup + 0.02 corrupt", cfg.DropProb),
		&sim.FaultPlan{Seed: cellSeed(cfg.Seed, 0), Links: []sim.LinkFault{
			{Src: -1, Dst: -1, DropProb: cfg.DropProb},
			{Src: -1, Dst: -1, DupProb: 0.02},
			{Src: -1, Dst: -1, CorruptProb: 0.02},
		}})

	// Seeded randomized compound plans over the enumerated coordinates.
	probs := []float64{0.05, 0.1, 0.2, 0.3}
	for i := 0; i < cfg.RandomPlans; i++ {
		roll := func(salt uint64) uint64 { return mix64(cfg.Seed ^ mix64(uint64(i)*0x9E3779B9+salt)) }
		plan := &sim.FaultPlan{Seed: cellSeed(cfg.Seed, 1000+i)}
		natoms := 1 + int(roll(1)%3)
		desc := "compound:"
		for a := 0; a < natoms; a++ {
			l := sp.Links[int(roll(uint64(10+a))%uint64(len(sp.Links)))]
			lf := sim.LinkFault{Src: l.Src, Dst: l.Dst}
			p := probs[int(roll(uint64(20+a))%uint64(len(probs)))]
			switch roll(uint64(30+a)) % 3 {
			case 0:
				lf.DropProb = p
				desc += fmt.Sprintf(" drop(%d->%d,%g)", l.Src, l.Dst, p)
			case 1:
				lf.DupProb = p
				desc += fmt.Sprintf(" dup(%d->%d,%g)", l.Src, l.Dst, p)
			default:
				lf.CorruptProb = p
				desc += fmt.Sprintf(" corrupt(%d->%d,%g)", l.Src, l.Dst, p)
			}
			plan.Links = append(plan.Links, lf)
		}
		if len(sp.Windows) > 0 && roll(40)%2 == 0 {
			w := sp.Windows[int(roll(41)%uint64(len(sp.Windows)))]
			factor := float64(uint64(4) << (roll(42) % 3)) // 4, 8 or 16
			plan.Degraded = append(plan.Degraded, sim.DegradedLink{
				Src: -1, Dst: -1, From: w.From, Until: w.Until,
				AlphaFactor: factor, BetaFactor: factor,
			})
			desc += fmt.Sprintf(" degrade(window [%g,%g), x%g)", w.From, w.Until, factor)
		}
		add("compound", ClassMaskable, desc, plan)
	}

	// Crash at each phase boundary: the rank is hash-chosen per phase so
	// the sweep varies the victim, and the crash is fail-stop (no
	// respawn) — SUMMAARQ has no application-level recovery, so the
	// invariant is a graceful typed failure, never a wedge.
	crashes := sp.Phases
	if cfg.MaxCrashCells > 0 && len(crashes) > cfg.MaxCrashCells {
		crashes = strideAny(crashes, cfg.MaxCrashCells)
	}
	for i, mark := range crashes {
		rank := int(mix64(cfg.Seed^uint64(0xDEAD+i)) % uint64(sp.Ranks))
		add("crash-phase", ClassGraceful,
			fmt.Sprintf("crash rank %d at %s (t=%g)", rank, mark.Name, mark.At),
			&sim.FaultPlan{Seed: cellSeed(cfg.Seed, 2000+i),
				Crashes: map[int]float64{rank: mark.At}})
	}

	// Drop each active link at the campaign's fractional rate.
	links := sp.Links
	if cfg.MaxLinkCells > 0 && len(links) > cfg.MaxLinkCells {
		links = strideAny(links, cfg.MaxLinkCells)
	}
	for i, l := range links {
		add("drop-link", ClassMaskable,
			fmt.Sprintf("drop %g on link %d->%d", cfg.DropProb, l.Src, l.Dst),
			&sim.FaultPlan{Seed: cellSeed(cfg.Seed, 3000+i),
				Links: []sim.LinkFault{{Src: l.Src, Dst: l.Dst, DropProb: cfg.DropProb}}})
	}

	// Total loss on a couple of links: the sender completes its budget
	// optimistically, the receiver's detector must convert the silence
	// into a typed peer-failure verdict — or the run completes anyway
	// (an ack-only direction). Either is graceful; a wedge is not.
	for i, l := range links {
		if i >= 2 {
			break
		}
		add("drop-link-hard", ClassGraceful,
			fmt.Sprintf("total loss on link %d->%d", l.Src, l.Dst),
			&sim.FaultPlan{Seed: cellSeed(cfg.Seed, 4000+i),
				Links: []sim.LinkFault{{Src: l.Src, Dst: l.Dst, DropProb: 1}}})
	}

	// Degraded-window grid: every enumerated timer window × inflation
	// factor, all links. Degradation moves time, never data, so the run
	// must stay bit-identical inside (generous) overhead bands.
	windows := sp.Windows
	if cfg.MaxWindowCells > 0 && len(windows) > cfg.MaxWindowCells {
		windows = strideAny(windows, cfg.MaxWindowCells)
	}
	for i, w := range windows {
		for _, factor := range []float64{4, 16} {
			add("degraded-window", ClassMaskable,
				fmt.Sprintf("degrade all links x%g in [%g,%g)", factor, w.From, w.Until),
				&sim.FaultPlan{Seed: cellSeed(cfg.Seed, 5000+i),
					Degraded: []sim.DegradedLink{{Src: -1, Dst: -1, From: w.From, Until: w.Until,
						AlphaFactor: factor, BetaFactor: factor}}})
		}
	}
	return cells
}

// strideAny downsamples a slice to at most max elements, evenly spaced,
// always keeping the first.
func strideAny[T any](s []T, max int) []T {
	if len(s) <= max || max <= 0 {
		return s
	}
	out := make([]T, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, s[i*len(s)/max])
	}
	return out
}

// coordWeight measures a plan's concrete coordinate footprint: each crash
// is one coordinate, each link rule or degradation window counts the
// directed pairs it matches (a -1 wildcard spans all ranks). Shrinking
// minimizes this weight — removing an atom or narrowing a wildcard both
// strictly reduce it.
func coordWeight(p *sim.FaultPlan, ranks int) int {
	if p == nil {
		return 0
	}
	span := func(v int) int {
		if v == -1 {
			return ranks
		}
		return 1
	}
	w := len(p.Crashes)
	for _, l := range p.Links {
		w += span(l.Src) * span(l.Dst)
	}
	for _, d := range p.Degraded {
		w += span(d.Src) * span(d.Dst)
	}
	return w
}
