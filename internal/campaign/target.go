// Package campaign is the chaos-campaign engine: it explores the fault
// space of the resilience stack systematically instead of by hand-written
// scenario. A campaign enumerates candidate injection points from a clean
// run's observer stream (phase boundaries, active links, timer windows),
// sweeps seeded randomized and structured fault plans through the
// sim/resilience/ARQ stack, checks a pluggable invariant set against the
// clean baseline (bit-identical numerics, overhead bands, communication
// lower-bound floors, no watchdog wedge, replay determinism), and
// delta-debugs every violating plan down to a minimal reproducer emitted
// as a self-contained JSON artifact. Campaign progress checkpoints to a
// serializable State, so an interrupted multi-hour campaign resumes
// exactly where it stopped with a bit-identical corpus.
//
// See docs/CAMPAIGN.md for the enumeration → sweep → shrink → replay
// lifecycle and cmd/campaign for the CLI.
package campaign

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matrix"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// Target describes the workload a campaign drives. It is fully
// serializable, so a reproducer artifact reconstructs the exact run —
// operand seeds are fixed (41/42, the recovery-family convention) and the
// machine is named, never embedded wall-clock state.
type Target struct {
	// Workload names the program under test; "summa-arq" (SUMMA over the
	// ARQ endpoints, the self-healing workload) is the only one today.
	Workload string `json:"workload"`
	// N and Q size the run: an n×n matmul on a q×q grid (p = q²).
	N int `json:"n"`
	Q int `json:"q"`
	// Machine is the machine-preset name pricing the run (not a file
	// path: artifacts must not depend on files outside the repo).
	Machine string `json:"machine"`

	// The ARQ provisioning knobs. Zero keeps the endpoint default; the
	// detector knobs are the campaign's canonical seeded violation — an
	// under-provisioned DetectorInterval turns maskable background loss
	// into spurious peer-failure verdicts.
	MaxAttempts    int     `json:"max_attempts,omitempty"`
	MaxRTOFactor   float64 `json:"max_rto_factor,omitempty"`
	DetectorRTOs   float64 `json:"detector_rtos,omitempty"`
	DetectorMisses int     `json:"detector_misses,omitempty"`
}

// withDefaults fills the zero fields with the small-grid defaults.
func (t Target) withDefaults() Target {
	if t.Workload == "" {
		t.Workload = "summa-arq"
	}
	if t.N == 0 {
		t.N = 32
	}
	if t.Q == 0 {
		t.Q = 4
	}
	if t.Machine == "" {
		t.Machine = "simdefault"
	}
	return t
}

// Validate rejects targets the workload cannot host.
func (t Target) Validate() error {
	if t.Workload != "summa-arq" {
		return fmt.Errorf("campaign: unknown workload %q (have: summa-arq)", t.Workload)
	}
	if t.Q <= 0 || t.N <= 0 || t.N%t.Q != 0 {
		return fmt.Errorf("campaign: target needs n divisible by q, got n=%d q=%d", t.N, t.Q)
	}
	if _, err := t.params(); err != nil {
		return err
	}
	if t.MaxAttempts < 0 || t.MaxRTOFactor < 0 || t.DetectorRTOs < 0 || t.DetectorMisses < 0 {
		return fmt.Errorf("campaign: negative ARQ knob in target %+v", t)
	}
	return nil
}

// Ranks returns p, the process count of the run.
func (t Target) Ranks() int { return t.Q * t.Q }

// params resolves the named machine preset.
func (t Target) params() (machine.Params, error) {
	return machine.Resolve(t.Machine)
}

// arqConfig builds the endpoint config: the words-sized default with the
// target's provisioning knobs applied.
func (t Target) arqConfig(cost sim.Cost) resilience.ARQConfig {
	nb := t.N / t.Q
	cfg := resilience.ARQDefaults(cost, nb*nb)
	if t.MaxAttempts > 0 {
		cfg.MaxAttempts = t.MaxAttempts
	}
	if t.MaxRTOFactor > 0 {
		cfg.MaxRTO = t.MaxRTOFactor * cfg.RTO
	}
	if t.DetectorRTOs > 0 {
		cfg.DetectorInterval = t.DetectorRTOs * cfg.RTO
	}
	if t.DetectorMisses > 0 {
		cfg.DetectorMisses = t.DetectorMisses
	}
	return cfg
}

// Outcome is the deterministic summary of one target run under one fault
// plan: digests instead of payloads, typed-error classification instead of
// full diagnostics, no wall-clock anywhere. Two runs of the same plan on
// either backend must produce identical Outcomes — that is the replay
// invariant, and what artifact verification compares bitwise.
type Outcome struct {
	Completed bool `json:"completed"`
	// ErrorKind classifies a failed run: "peer-failure", "crash",
	// "deadlock", "cancelled" or "other".
	ErrorKind string `json:"error_kind,omitempty"`
	// Error is the primary typed error's text (virtual quantities only).
	// Deadlock diagnostics embed real-time state, so for "deadlock" the
	// kind alone is recorded.
	Error string `json:"error,omitempty"`
	// OutputDigest and StatsDigest are FNV-1a hashes of the assembled
	// product's bits and of every rank's Stats + ARQ counters.
	OutputDigest string  `json:"output_digest,omitempty"`
	StatsDigest  string  `json:"stats_digest,omitempty"`
	SimTime      float64 `json:"sim_time,omitempty"`
	EnergyJ      float64 `json:"energy_j,omitempty"`
	// MaxWordsMoved is the busiest rank's WordsSent+WordsRecv — the
	// quantity the composite lower bounds floor.
	MaxWordsMoved float64 `json:"max_words_moved,omitempty"`
	PeakMemWords  float64 `json:"peak_mem_words,omitempty"`
	// Retransmits and OptimisticSends summarize the recovery work.
	Retransmits     int `json:"retransmits,omitempty"`
	OptimisticSends int `json:"optimistic_sends,omitempty"`
}

// identical compares two outcomes bitwise and names the first difference.
func (o *Outcome) identical(b *Outcome) (string, bool) {
	if *o == *b {
		return "", true
	}
	return fmt.Sprintf("got %+v, want %+v", *o, *b), false
}

// chaosWatchdog keeps goroutine-backend chaos runs fast: virtual timers
// fire at real-time quiescence, and each recovered drop burns about one
// window. The event backend detects quiescence exactly and ignores it.
const chaosWatchdog = 15 * time.Millisecond

// Run executes the target once under the given fault plan (nil for the
// clean baseline) on the chosen backend and summarizes the result. The
// returned error is a harness failure (unresolvable machine, invalid
// target); every way the run itself can end — including typed failures —
// is an Outcome.
func (t Target) Run(ctx context.Context, rt sim.Runtime, plan *sim.FaultPlan, obs ...sim.Observer) (*Outcome, error) {
	m, err := t.params()
	if err != nil {
		return nil, err
	}
	cost := sim.Cost{
		GammaT:          m.GammaT,
		BetaT:           m.BetaT,
		AlphaT:          m.AlphaT,
		MaxMsgWords:     int(m.MaxMsgWords),
		Runtime:         rt,
		Faults:          plan,
		Observers:       obs,
		WatchdogTimeout: chaosWatchdog,
		Context:         ctx,
	}
	a := matrix.Random(t.N, t.N, 41)
	b := matrix.Random(t.N, t.N, 42)
	res, err := resilience.SUMMAARQ(cost, t.Q, t.arqConfig(cost), a, b)
	if err != nil {
		kind, text := classify(ctx, err)
		return &Outcome{ErrorKind: kind, Error: text}, nil
	}
	rep := res.Report()
	out := &Outcome{
		Completed:       true,
		OutputDigest:    outputDigest(res.C),
		StatsDigest:     statsDigest(res.Sim, res.ARQ),
		SimTime:         res.Sim.Time(),
		EnergyJ:         core.PriceSim(m, res.Sim).Total(),
		Retransmits:     rep.Retransmits,
		OptimisticSends: rep.OptimisticSends,
	}
	for _, s := range res.Sim.PerRank {
		out.MaxWordsMoved = math.Max(out.MaxWordsMoved, s.WordsSent+s.WordsRecv)
		out.PeakMemWords = math.Max(out.PeakMemWords, s.PeakMemWords)
	}
	return out, nil
}

// classify maps a run error to its deterministic (kind, text) summary.
// Precedence: cancellation (real time leaked in — the outcome must never
// be recorded), then the typed failures in diagnostic-value order. The
// text is the primary typed error's own rendering, never the full
// multi-rank join, so it stays identical across backends.
func classify(ctx context.Context, err error) (kind, text string) {
	var (
		cancelled *sim.CancelledError
		pf        *resilience.PeerFailure
		ce        *sim.CrashError
		de        *sim.DeadlockError
	)
	switch {
	case ctx != nil && ctx.Err() != nil, errors.As(err, &cancelled):
		return "cancelled", ""
	case errors.As(err, &pf):
		return "peer-failure", pf.Error()
	case errors.As(err, &ce):
		return "crash", ce.Error()
	case errors.As(err, &de):
		// The deadlock snapshot embeds real-time state; record the kind
		// plus the blocked operation only.
		return "deadlock", fmt.Sprintf("rank %d blocked in %s on peer %d", de.Rank, de.Op, de.Peer)
	default:
		line, _, _ := strings.Cut(err.Error(), "\n")
		return "other", line
	}
}

// outputDigest hashes the product's bits.
func outputDigest(c *matrix.Dense) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(c.Rows))
	h.Write(buf[:])
	for _, v := range c.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// statsDigest hashes every rank's Stats and ARQ counters bitwise.
func statsDigest(res *sim.Result, arq []resilience.ARQStats) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	puti := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, s := range res.PerRank {
		put(s.Flops)
		put(s.WordsSent)
		put(s.MsgsSent)
		put(s.WordsRecv)
		put(s.MsgsRecv)
		put(s.PeakMemWords)
		put(s.Time)
		put(s.ComputeTime)
		put(s.SendTime)
		put(s.RecvTime)
		put(s.WaitTime)
	}
	for _, s := range arq {
		puti(s.Retransmits)
		puti(s.Timeouts)
		puti(s.Misses)
		puti(s.ProbesSent)
		puti(s.ProbesAnswered)
		puti(s.DupsAbsorbed)
		puti(s.OptimisticSends)
		puti(s.BeatsSent)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// boundsFloor returns the composite communication lower bound for the
// target at the measured per-rank memory — the words-moved floor no run,
// faulty or not, may dip under without breaking a theorem.
func boundsFloor(t Target, peakMemWords float64) float64 {
	bs := bounds.MatMulBounds(bounds.MatMulProblem{
		M: float64(t.N), K: float64(t.N), N: float64(t.N),
		P:   float64(t.Ranks()),
		Mem: peakMemWords,
	})
	return bs.Max().Words
}
