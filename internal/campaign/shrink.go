package campaign

import (
	"context"
	"sort"

	"perfscale/internal/sim"
)

// shrinker drives reproducer minimization: given a plan that violates one
// named invariant, it searches for the smallest plan (by coordWeight) that
// still violates the same invariant, spending at most budget target runs.
// Every step is deterministic — candidate order is fixed and the predicate
// is the bitwise-reproducible simulator — so shrinking the same finding
// always lands on the same minimal reproducer.
type shrinker struct {
	ctx    context.Context
	t      Target
	rt     sim.Runtime
	class  Class
	clean  *Outcome
	b      bands
	inv    string // the invariant the minimized plan must keep violating
	sp     *Space
	budget int // predicate runs remaining
	runs   int // predicate runs consumed
}

// fails reports whether the candidate plan still triggers the invariant.
// Out of budget, cancelled, or invalid candidates conservatively report
// false — the current (known-failing) plan is kept instead.
func (s *shrinker) fails(p *sim.FaultPlan) bool {
	need := 1
	if s.inv == "replay" {
		need = 2
	}
	if s.budget < need || s.ctx.Err() != nil {
		return false
	}
	if err := p.Validate(s.t.Ranks()); err != nil {
		return false
	}
	s.budget -= need
	s.runs += need
	out, err := s.t.Run(s.ctx, s.rt, p)
	if err != nil || out.ErrorKind == "cancelled" {
		return false
	}
	if s.inv == "replay" {
		again, err := s.t.Run(s.ctx, s.rt, p)
		if err != nil || again.ErrorKind == "cancelled" {
			return false
		}
		return replayViolation(out, again) != nil
	}
	return hasInvariant(checkOutcome(s.class, s.clean, out, s.b), s.inv)
}

// atom is one removable fault coordinate of a plan.
type atom struct {
	kind int // 0 crash, 1 link, 2 degraded
	rank int
	at   float64
	link sim.LinkFault
	deg  sim.DegradedLink
}

// planAtoms decomposes a plan into its atoms in deterministic order.
func planAtoms(p *sim.FaultPlan) []atom {
	var atoms []atom
	ranks := make([]int, 0, len(p.Crashes))
	for r := range p.Crashes {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		atoms = append(atoms, atom{kind: 0, rank: r, at: p.Crashes[r]})
	}
	for _, l := range p.Links {
		atoms = append(atoms, atom{kind: 1, link: l})
	}
	for _, d := range p.Degraded {
		atoms = append(atoms, atom{kind: 2, deg: d})
	}
	return atoms
}

// atomsPlan rebuilds a plan from a subset of atoms, preserving the base
// plan's Seed, Respawn and RebootTime (the non-coordinate fields).
func atomsPlan(base *sim.FaultPlan, atoms []atom) *sim.FaultPlan {
	p := &sim.FaultPlan{Seed: base.Seed, Respawn: base.Respawn, RebootTime: base.RebootTime}
	for _, a := range atoms {
		switch a.kind {
		case 0:
			if p.Crashes == nil {
				p.Crashes = map[int]float64{}
			}
			p.Crashes[a.rank] = a.at
		case 1:
			p.Links = append(p.Links, a.link)
		default:
			p.Degraded = append(p.Degraded, a.deg)
		}
	}
	return p
}

// ddmin is the classic delta-debugging minimizer over the plan's atoms:
// it returns a subset such that removing any single remaining atom no
// longer triggers the invariant (1-minimality), or the best subset found
// when the budget runs dry.
func (s *shrinker) ddmin(base *sim.FaultPlan, atoms []atom) []atom {
	n := 2
	for len(atoms) >= 2 {
		chunk := (len(atoms) + n - 1) / n
		reduced := false
		for start := 0; start < len(atoms); start += chunk {
			end := start + chunk
			if end > len(atoms) {
				end = len(atoms)
			}
			// Try the complement of this chunk.
			complement := append(append([]atom(nil), atoms[:start]...), atoms[end:]...)
			if len(complement) > 0 && s.fails(atomsPlan(base, complement)) {
				atoms = complement
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(atoms) {
				break
			}
			n = min(2*n, len(atoms))
		}
	}
	return atoms
}

// concreteTries caps how many enumerated links a wildcard-narrowing step
// samples before settling for a half-open wildcard.
const concreteTries = 8

// shrinkFields minimizes the surviving atoms field by field: probabilities
// are zeroed then halved toward a floor, wildcards narrowed to concrete or
// half-open links, degradation windows bisected and factors halved toward
// 1. Each accepted mutation strictly reduces the plan's coordinate weight
// or its magnitude; rejected mutations are rolled back.
func (s *shrinker) shrinkFields(base *sim.FaultPlan, atoms []atom) []atom {
	try := func(i int, mutate func(*atom)) bool {
		saved := atoms[i]
		mutate(&atoms[i])
		if s.fails(atomsPlan(base, atoms)) {
			return true
		}
		atoms[i] = saved
		return false
	}
	for i := range atoms {
		switch atoms[i].kind {
		case 1:
			// Zero each probability that another one can carry alone.
			try(i, func(a *atom) { a.link.DupProb = 0 })
			try(i, func(a *atom) { a.link.CorruptProb = 0 })
			try(i, func(a *atom) { a.link.DropProb = 0 })
			// Halve the surviving probabilities toward 0.01.
			for _, f := range []func(*atom) *float64{
				func(a *atom) *float64 { return &a.link.DropProb },
				func(a *atom) *float64 { return &a.link.DupProb },
				func(a *atom) *float64 { return &a.link.CorruptProb },
			} {
				for *f(&atoms[i]) >= 0.02 {
					prev := *f(&atoms[i])
					if !try(i, func(a *atom) { *f(a) = prev / 2 }) {
						break
					}
				}
			}
			s.narrowLink(base, atoms, i)
		case 2:
			// Bisect the window while a half still reproduces.
			for {
				w := atoms[i].deg
				until := w.Until
				if until == 0 {
					until = s.sp.Makespan
				}
				if mid := (w.From + until) / 2; mid > w.From && mid < until {
					if try(i, func(a *atom) { a.deg.Until = mid }) {
						continue
					}
					if try(i, func(a *atom) { a.deg.From = mid }) {
						continue
					}
				}
				break
			}
			// Halve the inflation factors toward 1.
			for atoms[i].deg.AlphaFactor > 2 || atoms[i].deg.BetaFactor > 2 {
				a0, b0 := atoms[i].deg.AlphaFactor, atoms[i].deg.BetaFactor
				if !try(i, func(a *atom) {
					a.deg.AlphaFactor = max64(1, a0/2)
					a.deg.BetaFactor = max64(1, b0/2)
				}) {
					break
				}
			}
			s.narrowDegraded(base, atoms, i)
		}
	}
	return atoms
}

// narrowLink replaces a link rule's wildcards with the narrowest scope that
// still reproduces: a concrete enumerated link first, then a half-open
// wildcard (one endpoint pinned).
func (s *shrinker) narrowLink(base *sim.FaultPlan, atoms []atom, i int) {
	l := atoms[i].link
	if l.Src != -1 && l.Dst != -1 {
		return
	}
	match := func(c Link) bool {
		return (l.Src == -1 || l.Src == c.Src) && (l.Dst == -1 || l.Dst == c.Dst)
	}
	tried := 0
	for _, c := range s.sp.Links {
		if !match(c) || tried >= concreteTries {
			continue
		}
		tried++
		saved := atoms[i]
		atoms[i].link.Src, atoms[i].link.Dst = c.Src, c.Dst
		if s.fails(atomsPlan(base, atoms)) {
			return
		}
		atoms[i] = saved
	}
	// No single concrete link carries it; pin one endpoint.
	if l.Src == -1 && l.Dst == -1 {
		for _, c := range s.sp.Links[:min(concreteTries, len(s.sp.Links))] {
			saved := atoms[i]
			atoms[i].link.Dst = c.Dst
			if s.fails(atomsPlan(base, atoms)) {
				return
			}
			atoms[i] = saved
			atoms[i].link.Src = c.Src
			if s.fails(atomsPlan(base, atoms)) {
				return
			}
			atoms[i] = saved
		}
	}
}

// narrowDegraded pins a degraded-window rule's wildcard endpoints the same
// way narrowLink does.
func (s *shrinker) narrowDegraded(base *sim.FaultPlan, atoms []atom, i int) {
	d := atoms[i].deg
	if d.Src != -1 && d.Dst != -1 {
		return
	}
	tried := 0
	for _, c := range s.sp.Links {
		if (d.Src != -1 && d.Src != c.Src) || (d.Dst != -1 && d.Dst != c.Dst) {
			continue
		}
		if tried >= concreteTries {
			break
		}
		tried++
		saved := atoms[i]
		atoms[i].deg.Src, atoms[i].deg.Dst = c.Src, c.Dst
		if s.fails(atomsPlan(base, atoms)) {
			return
		}
		atoms[i] = saved
	}
}

// shrink minimizes the plan: ddmin removes whole atoms, then the surviving
// atoms are narrowed field by field, then ddmin runs once more in case a
// narrowed atom freed another for removal. Returns the minimized plan.
func (s *shrinker) shrink(p *sim.FaultPlan) *sim.FaultPlan {
	atoms := planAtoms(p)
	atoms = s.ddmin(p, atoms)
	atoms = s.shrinkFields(p, atoms)
	if len(atoms) > 1 {
		atoms = s.ddmin(p, atoms)
	}
	return atomsPlan(p, atoms)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
