package strassen

import (
	"math"
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

var zeroCost = sim.Cost{}

func TestMultiplyMatchesClassical(t *testing.T) {
	for _, tc := range []struct{ n, cutoff int }{
		{1, 1}, {2, 1}, {4, 1}, {8, 2}, {16, 4}, {32, 8},
		{6, 1},  // even but not power of two
		{10, 4}, // recursion then odd fallback (5x5)
		{7, 2},  // odd: direct fallback
		{64, 16},
	} {
		a := matrix.Random(tc.n, tc.n, int64(tc.n))
		b := matrix.Random(tc.n, tc.n, int64(tc.n)+99)
		want := matrix.Mul(a, b)
		got := Multiply(a, b, tc.cutoff)
		if d := got.MaxAbsDiff(want); d > 1e-9*float64(tc.n) {
			t.Errorf("n=%d cutoff=%d: max diff %g", tc.n, tc.cutoff, d)
		}
	}
}

func TestMultiplyPanicsOnBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rectangular operands should panic")
		}
	}()
	Multiply(matrix.New(2, 3), matrix.New(3, 3), 1)
}

func TestFlops(t *testing.T) {
	// n=2, cutoff=1: 7 scalar multiplies... leaf n=1 costs 2 flops each,
	// plus 18 adds of 1 element: 7*2 + 18 = 32.
	if got := Flops(2, 1); got != 32 {
		t.Errorf("Flops(2,1) = %g, want 32", got)
	}
	// At or below cutoff: classical 2n³.
	if got := Flops(8, 8); got != 1024 {
		t.Errorf("Flops(8,8) = %g, want 1024", got)
	}
	// Strassen beats classical for large n at small cutoff.
	if Flops(1024, 32) >= 2*math.Pow(1024, 3) {
		t.Error("Strassen flops should undercut classical at n=1024")
	}
	// Flop count grows as ~7^levels: ratio between successive doublings
	// approaches 7.
	r := Flops(2048, 16) / Flops(1024, 16)
	if r < 6.5 || r > 8.5 {
		t.Errorf("doubling ratio %g, want ≈7", r)
	}
}

func TestZOrderRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 8, 16, 28} {
		a := matrix.Random(n, n, int64(n))
		z := DenseToZ(a)
		if len(z) != n*n {
			t.Fatalf("n=%d: Z length %d", n, len(z))
		}
		back := ZToDense(z, n)
		if d := back.MaxAbsDiff(a); d != 0 {
			t.Errorf("n=%d: round trip diff %g", n, d)
		}
	}
}

func TestZOrderQuadrantsContiguous(t *testing.T) {
	n := 8
	a := matrix.Random(n, n, 3)
	z := DenseToZ(a)
	quarter := n * n / 4
	// First quarter of z must be exactly Z(A11).
	a11 := a.Block(0, 0, n/2, n/2)
	z11 := DenseToZ(a11)
	for i := range z11 {
		if z[i] != z11[i] {
			t.Fatalf("Z quadrant not contiguous at %d", i)
		}
	}
	// Fourth quarter is Z(A22).
	a22 := a.Block(n/2, n/2, n/2, n/2)
	z22 := DenseToZ(a22)
	for i := range z22 {
		if z[3*quarter+i] != z22[i] {
			t.Fatalf("Z(A22) not contiguous at %d", i)
		}
	}
}

func TestCAPSMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{8, 0},  // p=1
		{28, 1}, // p=7
		{56, 1}, // p=7, larger leaves
		{56, 2}, // p=49
	} {
		a := matrix.Random(tc.n, tc.n, int64(tc.n)+5)
		b := matrix.Random(tc.n, tc.n, int64(tc.n)+55)
		want := matrix.Mul(a, b)
		got, err := CAPS(zeroCost, tc.k, a, b, 8)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if d := got.C.MaxAbsDiff(want); d > 1e-9*float64(tc.n) {
			t.Errorf("n=%d k=%d: max diff %g", tc.n, tc.k, d)
		}
	}
}

func TestCAPSValidation(t *testing.T) {
	a := matrix.Random(30, 30, 1)
	b := matrix.Random(30, 30, 2)
	if _, err := CAPS(zeroCost, 1, a, b, 8); err == nil {
		t.Error("n=30 (not divisible by 4·7 pattern) should be rejected")
	}
	if _, err := CAPS(zeroCost, -1, a, b, 8); err == nil {
		t.Error("negative k should be rejected")
	}
	if _, err := CAPS(zeroCost, 0, matrix.New(3, 4), matrix.New(4, 4), 8); err == nil {
		t.Error("rectangular operands should be rejected")
	}
}

func TestCAPSFlopAdvantage(t *testing.T) {
	// The CAPS run must perform fewer total flops than classical 2n³ —
	// that's the whole point of Strassen.
	n := 56
	a := matrix.Random(n, n, 7)
	b := matrix.Random(n, n, 8)
	res, err := CAPS(zeroCost, 1, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	classical := 2 * float64(n) * float64(n) * float64(n)
	if got := res.Sim.TotalStats().Flops; got >= classical {
		t.Errorf("CAPS total flops %g should undercut classical %g", got, classical)
	}
}

func TestCAPSLoadBalance(t *testing.T) {
	n := 56
	a := matrix.Random(n, n, 9)
	b := matrix.Random(n, n, 10)
	res, err := CAPS(zeroCost, 1, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	maxF := res.Sim.MaxStats().Flops
	avgF := res.Sim.TotalStats().Flops / 7
	if maxF > 1.2*avgF {
		t.Errorf("leaf flops imbalanced: max %g avg %g", maxF, avgF)
	}
}

func TestCAPSStrongScalingTime(t *testing.T) {
	// More ranks, same n: simulated time must fall substantially (the
	// model's FUM regime predicts T ∝ 1/p at fixed n with maximal memory;
	// levels add bandwidth, so accept a generous bracket around 7).
	cost := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
	n := 56
	a := matrix.Random(n, n, 11)
	b := matrix.Random(n, n, 12)
	r1, err := CAPS(cost, 1, a, b, 4) // p=7
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CAPS(cost, 2, a, b, 4) // p=49
	if err != nil {
		t.Fatal(err)
	}
	s := r1.Sim.Time() / r2.Sim.Time()
	if s < 2.5 || s > 9 {
		t.Errorf("p: 7 -> 49 speedup %g, want meaningfully parallel (≈7)", s)
	}
}

func TestCAPSMemoryFollowsFUM(t *testing.T) {
	// Per-rank peak memory should drop ≈4x when k increases by 1
	// (M = Θ(n²/4^k)).
	n := 56
	a := matrix.Random(n, n, 13)
	b := matrix.Random(n, n, 14)
	r1, err := CAPS(zeroCost, 1, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CAPS(zeroCost, 2, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r1.Sim.MaxStats().PeakMemWords / r2.Sim.MaxStats().PeakMemWords
	if ratio < 2.5 || ratio > 5 {
		t.Errorf("memory ratio k=1/k=2: %g, want ≈4", ratio)
	}
}

func TestCAPSIdentity(t *testing.T) {
	n := 28
	a := matrix.Random(n, n, 15)
	id := matrix.Identity(n)
	res, err := CAPS(zeroCost, 1, a, id, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.C.MaxAbsDiff(a); d > 1e-11 {
		t.Errorf("A·I diff %g", d)
	}
}
