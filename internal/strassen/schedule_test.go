package strassen

import (
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func TestCAPSScheduleMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		n        int
		schedule string
	}{
		{8, ""},      // p=1, no levels
		{16, "D"},    // p=1, one local DFS level
		{16, "DD"},   // p=1, two local DFS levels
		{28, "B"},    // p=7
		{56, "DB"},   // p=7, DFS then BFS
		{56, "BD"},   // p=7, BFS then DFS
		{112, "DBB"}, // p=49
		{112, "BDB"}, // p=49
		{112, "DDB"}, // p=7
	} {
		a := matrix.Random(tc.n, tc.n, int64(tc.n)+1)
		b := matrix.Random(tc.n, tc.n, int64(tc.n)+2)
		want := matrix.Mul(a, b)
		got, err := CAPSSchedule(zeroCost, tc.schedule, a, b, 8)
		if err != nil {
			t.Fatalf("n=%d %q: %v", tc.n, tc.schedule, err)
		}
		if d := got.C.MaxAbsDiff(want); d > 1e-9*float64(tc.n) {
			t.Errorf("n=%d %q: max diff %g", tc.n, tc.schedule, d)
		}
	}
}

func TestCAPSScheduleValidation(t *testing.T) {
	a := matrix.Random(56, 56, 1)
	b := matrix.Random(56, 56, 2)
	if _, err := CAPSSchedule(zeroCost, "BX", a, b, 8); err == nil {
		t.Error("invalid schedule characters should be rejected")
	}
	// 56 is not divisible by 2^4 = 16, so a 3-level schedule must fail.
	if _, err := CAPSSchedule(zeroCost, "DBB", a, b, 8); err == nil {
		t.Error("insufficient divisibility should be rejected")
	}
}

func TestDFSSavesMemory(t *testing.T) {
	// Same rank count (p=7), same n: prepending a DFS level shrinks the
	// leaf subproblems from n/2 to n/4 — a 4x saving on the leaf term,
	// diluted by the per-level share buffers (every term scales with n², so
	// the peak ratio is a schedule-determined constant between 1.5x and 4x).
	const n = 112
	a := matrix.Random(n, n, 3)
	b := matrix.Random(n, n, 4)
	bfs, err := CAPSSchedule(zeroCost, "B", a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := CAPSSchedule(zeroCost, "DB", a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	mBFS := bfs.Sim.MaxStats().PeakMemWords
	mDFS := dfs.Sim.MaxStats().PeakMemWords
	ratio := mBFS / mDFS
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("DFS memory saving: got %.2fx, want in [1.5, 4] (BFS %g, DFS %g)", ratio, mBFS, mDFS)
	}
}

func TestDFSCostsMoreBandwidth(t *testing.T) {
	// The tradeoff's other side: the DFS level redistributes all seven
	// subproblems across the whole group, so more words move per rank.
	const n = 112
	a := matrix.Random(n, n, 5)
	b := matrix.Random(n, n, 6)
	bfs, err := CAPSSchedule(zeroCost, "B", a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := CAPSSchedule(zeroCost, "DB", a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	wBFS := bfs.Sim.MaxStats().WordsSent
	wDFS := dfs.Sim.MaxStats().WordsSent
	if wDFS <= wBFS {
		t.Errorf("DFS should move more words: %g vs %g", wDFS, wBFS)
	}
}

func TestScheduleOrderMattersForMemoryNotCorrectness(t *testing.T) {
	const n = 112
	a := matrix.Random(n, n, 7)
	b := matrix.Random(n, n, 8)
	r1, err := CAPSSchedule(zeroCost, "DBB", a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CAPSSchedule(zeroCost, "BDB", a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := r1.C.MaxAbsDiff(r2.C); d > 1e-10*n {
		t.Errorf("schedule order changed the product: %g", d)
	}
	// Flop totals agree too (same arithmetic, different layout).
	f1 := r1.Sim.TotalStats().Flops
	f2 := r2.Sim.TotalStats().Flops
	if f1 != f2 {
		t.Errorf("flop totals differ: %g vs %g", f1, f2)
	}
}

func TestDFSOnlySingleRank(t *testing.T) {
	// A pure-DFS schedule runs on one rank and must equal serial Strassen's
	// flop count for the same effective recursion.
	const n = 32
	a := matrix.Random(n, n, 9)
	b := matrix.Random(n, n, 10)
	res, err := CAPSSchedule(zeroCost, "DD", a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a, b)
	if d := res.C.MaxAbsDiff(want); d > 1e-10*n {
		t.Errorf("pure DFS wrong: %g", d)
	}
	if got := res.Sim.TotalStats().Flops; got != Flops(n, 8) {
		t.Errorf("pure-DFS flops %g, want serial Strassen %g", got, Flops(n, 8))
	}
}

func TestCAPSScheduleDeterministic(t *testing.T) {
	cost := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
	const n = 56
	a := matrix.Random(n, n, 11)
	b := matrix.Random(n, n, 12)
	r1, err := CAPSSchedule(cost, "DB", a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CAPSSchedule(cost, "DB", a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sim.Time() != r2.Sim.Time() {
		t.Error("simulated time must be deterministic")
	}
}
