package strassen

import (
	"fmt"
	"strings"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// RunResult bundles the assembled product with simulation statistics.
type RunResult struct {
	C   *matrix.Dense
	Sim *sim.Result
}

// A step of the CAPS schedule: BFS splits the group of ranks across the 7
// subproblems (parallel, more memory); DFS keeps the whole group on each
// subproblem in turn (sequential, less memory, more redistribution
// traffic). CAPS interleaves them to run within whatever memory exists —
// the paper's FLM regime; BFS-only is the unlimited-memory FUM regime.
const (
	bfsStep byte = 'B'
	dfsStep byte = 'D'
)

// CAPS multiplies A·B on p = 7^k ranks with the BFS-only (unlimited
// memory, Eq. 14) schedule. See CAPSSchedule for the general form.
func CAPS(cost sim.Cost, k int, a, b *matrix.Dense, cutoff int) (*RunResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("strassen: negative recursion depth %d", k)
	}
	return CAPSSchedule(cost, strings.Repeat("B", k), a, b, cutoff)
}

// CAPSSchedule multiplies A·B with a CAPS-style parallel Strassen whose
// recursion follows the given schedule string: one Strassen level per
// character, 'B' for a BFS step and 'D' for a DFS step. The rank count is
// 7^(number of B steps). Matrices are kept in Morton (Z-order) layout with
// each rank holding an identical Z-range of all four quadrants, so the
// Strassen linear combinations are local and each level's subproblem
// redistribution is a contiguous-interval exchange.
//
// Memory per rank is dominated by the leaf subproblems: 3·(n/2^L)² words
// for L total levels, so prepending DFS steps divides the footprint by 4
// per step at the price of extra redistribution bandwidth — exactly the
// memory/communication tradeoff of the paper's Eq. 13.
func CAPSSchedule(cost sim.Cost, schedule string, a, b *matrix.Dense, cutoff int) (*RunResult, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("strassen: need equal square operands")
	}
	n := a.Rows
	p := 1
	for _, s := range []byte(schedule) {
		switch s {
		case bfsStep:
			p *= 7
		case dfsStep:
		default:
			return nil, fmt.Errorf("strassen: schedule %q must contain only 'B' and 'D'", schedule)
		}
	}
	if err := checkDivisibility(n, schedule, p); err != nil {
		return nil, err
	}
	if cutoff < 1 {
		cutoff = DefaultCutoff
	}

	az := DenseToZ(a)
	bz := DenseToZ(b)
	quarter := n * n / 4
	share := quarter / p

	cShares := make([][4][]float64, p)
	res, err := sim.Run(p, cost, func(r *sim.Rank) error {
		var aQ, bQ [4][]float64
		lo := r.ID() * share
		for q := 0; q < 4; q++ {
			aQ[q] = az[q*quarter+lo : q*quarter+lo+share]
			bQ[q] = bz[q*quarter+lo : q*quarter+lo+share]
		}
		r.Alloc(8 * share)
		cQ, err := capsRecurse(r, 0, p, n, aQ, bQ, cutoff, []byte(schedule))
		if err != nil {
			return err
		}
		cShares[r.ID()] = cQ
		return nil
	})
	if err != nil {
		return nil, err
	}

	cz := make([]float64, n*n)
	for rank, quads := range cShares {
		lo := rank * share
		for q := 0; q < 4; q++ {
			copy(cz[q*quarter+lo:q*quarter+lo+share], quads[q])
		}
	}
	return &RunResult{C: ZToDense(cz, n), Sim: res}, nil
}

// checkDivisibility verifies integral shares at every schedule level.
func checkDivisibility(n int, schedule string, p int) error {
	levels := len(schedule)
	if n%(1<<uint(levels+1)) != 0 {
		return fmt.Errorf("strassen: n = %d must be divisible by 2^(levels+1) = %d", n, 1<<uint(levels+1))
	}
	m, g := n, p
	for j := 0; j < levels; j++ {
		qp := m * m / 4
		h := g
		if schedule[j] == bfsStep {
			h = g / 7
		}
		if qp%g != 0 {
			return fmt.Errorf("strassen: level %d (%c): quadrant %d not divisible by group %d", j, schedule[j], qp, g)
		}
		if (qp/4)%h != 0 {
			return fmt.Errorf("strassen: level %d (%c): target shares not integral", j, schedule[j])
		}
		m, g = m/2, h
	}
	if g != 1 {
		return fmt.Errorf("strassen: schedule %q leaves groups of %d ranks at the leaves", schedule, g)
	}
	return nil
}

// strassen linear-combination tables: sign of each quadrant (indexed
// A11=0, A12=1, A21=2, A22=3) contributing to T_i (A side) and S_i (B side).
var (
	tComb = [7][4]float64{
		{1, 0, 0, 1},  // T1 = A11+A22
		{0, 0, 1, 1},  // T2 = A21+A22
		{1, 0, 0, 0},  // T3 = A11
		{0, 0, 0, 1},  // T4 = A22
		{1, 1, 0, 0},  // T5 = A11+A12
		{-1, 0, 1, 0}, // T6 = A21−A11
		{0, 1, 0, -1}, // T7 = A12−A22
	}
	sComb = [7][4]float64{
		{1, 0, 0, 1},  // S1 = B11+B22
		{1, 0, 0, 0},  // S2 = B11
		{0, 1, 0, -1}, // S3 = B12−B22
		{-1, 0, 1, 0}, // S4 = B21−B11
		{0, 0, 0, 1},  // S5 = B22
		{1, 1, 0, 0},  // S6 = B11+B12
		{0, 0, 1, 1},  // S7 = B21+B22
	}
	// cComb[q][i]: coefficient of M_{i+1} in C quadrant q.
	cComb = [4][7]float64{
		{1, 0, 0, 1, -1, 0, 1}, // C11 = M1+M4−M5+M7
		{0, 0, 1, 0, 1, 0, 0},  // C12 = M3+M5
		{0, 1, 0, 1, 0, 0, 0},  // C21 = M2+M4
		{1, -1, 1, 0, 0, 1, 0}, // C22 = M1−M2+M3+M6
	}
)

// combine evaluates a signed sum of quadrant shares and reports the flops
// spent (one op per nonzero term beyond the first, per element).
func combine(coeff [4]float64, quads [4][]float64, length int) ([]float64, float64) {
	out := make([]float64, length)
	terms := 0
	for q := 0; q < 4; q++ {
		c := coeff[q]
		if c == 0 {
			continue
		}
		terms++
		for i := 0; i < length; i++ {
			out[i] += c * quads[q][i]
		}
	}
	flops := 0.0
	if terms > 1 {
		flops = float64((terms - 1) * length)
	}
	return out, flops
}

// exchange geometry: a Z-array of qp elements is re-bucketed from g source
// ranks (contiguous slices of length qp/g at offset rl·share) to h target
// ranks (per-quadrant slices of length qp/(4h)). Senders iterate (c, tl),
// receivers (c, srcRL); both c-ascending per pair, so FIFO matching is
// deterministic.

// sendForward ships this rank's slice of a subproblem Z-array to the
// target group [tbase, tbase+h).
func sendForward(r *sim.Rank, data []float64, lo, share, qp, tbase, h int) {
	tshare := qp / 4 / h
	for c := 0; c < 4; c++ {
		for tl := 0; tl < h; tl++ {
			tlo := c*(qp/4) + tl*tshare
			thi := tlo + tshare
			ilo, ihi := maxInt(lo, tlo), minInt(lo+share, thi)
			if ilo < ihi {
				r.Send(tbase+tl, data[ilo-lo:ihi-lo])
			}
		}
	}
}

// recvForward assembles this target rank's per-quadrant slices from the
// source group [base, base+g).
func recvForward(r *sim.Rank, base, g, share, qp, tl, h int) [4][]float64 {
	tshare := qp / 4 / h
	var out [4][]float64
	for c := 0; c < 4; c++ {
		buf := make([]float64, tshare)
		tlo := c*(qp/4) + tl*tshare
		thi := tlo + tshare
		for srcRL := 0; srcRL < g; srcRL++ {
			slo, shi := srcRL*share, (srcRL+1)*share
			ilo, ihi := maxInt(slo, tlo), minInt(shi, thi)
			if ilo < ihi {
				piece := r.Recv(base + srcRL)
				copy(buf[ilo-tlo:ihi-tlo], piece)
			}
		}
		out[c] = buf
	}
	return out
}

// sendBack ships this target rank's product quadrant slices back to the
// source group [base, base+g).
func sendBack(r *sim.Rank, qC [4][]float64, base, g, share, qp, tl, h int) {
	tshare := qp / 4 / h
	for c := 0; c < 4; c++ {
		tlo := c*(qp/4) + tl*tshare
		thi := tlo + tshare
		for dstRL := 0; dstRL < g; dstRL++ {
			slo, shi := dstRL*share, (dstRL+1)*share
			ilo, ihi := maxInt(slo, tlo), minInt(shi, thi)
			if ilo < ihi {
				r.Send(base+dstRL, qC[c][ilo-tlo:ihi-tlo])
			}
		}
	}
}

// recvBack reassembles this source rank's contiguous product slice from
// the target group [tbase, tbase+h).
func recvBack(r *sim.Rank, lo, share, qp, tbase, h int) []float64 {
	tshare := qp / 4 / h
	buf := make([]float64, share)
	for c := 0; c < 4; c++ {
		for srcTL := 0; srcTL < h; srcTL++ {
			tlo := c*(qp/4) + srcTL*tshare
			thi := tlo + tshare
			ilo, ihi := maxInt(lo, tlo), minInt(lo+share, thi)
			if ilo < ihi {
				piece := r.Recv(tbase + srcTL)
				copy(buf[ilo-lo:ihi-lo], piece)
			}
		}
	}
	return buf
}

// capsRecurse runs the remaining schedule for the group [base, base+g)
// holding an m×m subproblem and returns this rank's C quadrant shares.
func capsRecurse(r *sim.Rank, base, g, m int, aQ, bQ [4][]float64, cutoff int, sched []byte) ([4][]float64, error) {
	if len(sched) == 0 {
		if g != 1 {
			return [4][]float64{}, fmt.Errorf("strassen: schedule exhausted with group size %d", g)
		}
		r.Phase("leaf")
		return capsLeaf(r, m, aQ, bQ, cutoff), nil
	}
	// Mark each schedule level (keyed by remaining depth, so names are
	// stable across the seven DFS sub-calls of one level).
	if sched[0] == bfsStep {
		r.Phase(fmt.Sprintf("bfs/%d", len(sched)))
		return capsBFS(r, base, g, m, aQ, bQ, cutoff, sched)
	}
	r.Phase(fmt.Sprintf("dfs/%d", len(sched)))
	return capsDFS(r, base, g, m, aQ, bQ, cutoff, sched)
}

// capsBFS forms all 7 subproblems and scatters them across 7 subgroups.
func capsBFS(r *sim.Rank, base, g, m int, aQ, bQ [4][]float64, cutoff int, sched []byte) ([4][]float64, error) {
	qp := m * m / 4
	share := qp / g
	h := g / 7
	rl := r.ID() - base
	lo := rl * share

	var tShares, sShares [7][]float64
	r.Alloc(14 * share)
	for i := 0; i < 7; i++ {
		var f1, f2 float64
		tShares[i], f1 = combine(tComb[i], aQ, share)
		sShares[i], f2 = combine(sComb[i], bQ, share)
		r.Compute(f1 + f2)
	}

	for pass := 0; pass < 2; pass++ {
		src := tShares
		if pass == 1 {
			src = sShares
		}
		for i := 0; i < 7; i++ {
			sendForward(r, src[i], lo, share, qp, base+i*h, h)
		}
	}
	subI := rl / h
	tl := rl % h
	tshare := qp / 4 / h
	r.Alloc(8 * tshare)
	nextA := recvForward(r, base, g, share, qp, tl, h)
	nextB := recvForward(r, base, g, share, qp, tl, h)

	qC, err := capsRecurse(r, base+subI*h, h, m/2, nextA, nextB, cutoff, sched[1:])
	if err != nil {
		return [4][]float64{}, err
	}

	sendBack(r, qC, base, g, share, qp, tl, h)
	var qShares [7][]float64
	r.Alloc(7 * share)
	for i := 0; i < 7; i++ {
		qShares[i] = recvBack(r, lo, share, qp, base+i*h, h)
	}

	cQ := combineProducts(r, qShares, share)
	r.Free(14*share + 8*tshare + 7*share)
	return cQ, nil
}

// capsDFS runs the 7 subproblems sequentially on the whole group.
func capsDFS(r *sim.Rank, base, g, m int, aQ, bQ [4][]float64, cutoff int, sched []byte) ([4][]float64, error) {
	qp := m * m / 4
	share := qp / g
	rl := r.ID() - base
	lo := rl * share
	tshare := qp / 4 / g

	var qShares [7][]float64
	// Working set per subproblem: T/S shares + received quadrant slices +
	// the recursive call's own footprint; only one subproblem lives at a
	// time — that is the DFS memory saving.
	for i := 0; i < 7; i++ {
		tData, f1 := combine(tComb[i], aQ, share)
		sData, f2 := combine(sComb[i], bQ, share)
		r.Compute(f1 + f2)
		r.Alloc(2 * share)

		sendForward(r, tData, lo, share, qp, base, g)
		sendForward(r, sData, lo, share, qp, base, g)
		r.Alloc(8 * tshare)
		nextA := recvForward(r, base, g, share, qp, rl, g)
		nextB := recvForward(r, base, g, share, qp, rl, g)

		qC, err := capsRecurse(r, base, g, m/2, nextA, nextB, cutoff, sched[1:])
		if err != nil {
			return [4][]float64{}, err
		}

		sendBack(r, qC, base, g, share, qp, rl, g)
		r.Alloc(share)
		qShares[i] = recvBack(r, lo, share, qp, base, g)
		r.Free(2*share + 8*tshare)
	}
	cQ := combineProducts(r, qShares, share)
	r.Free(7 * share)
	return cQ, nil
}

// combineProducts computes the C quadrant shares from the 7 product shares.
func combineProducts(r *sim.Rank, qShares [7][]float64, share int) [4][]float64 {
	var cQ [4][]float64
	for q := 0; q < 4; q++ {
		out := make([]float64, share)
		terms := 0
		for i := 0; i < 7; i++ {
			coeff := cComb[q][i]
			if coeff == 0 {
				continue
			}
			terms++
			for e := 0; e < share; e++ {
				out[e] += coeff * qShares[i][e]
			}
		}
		if terms > 1 {
			r.Compute(float64((terms - 1) * share))
		}
		cQ[q] = out
	}
	return cQ
}

// capsLeaf multiplies the rank's full local subproblem with serial Strassen.
func capsLeaf(r *sim.Rank, m int, aQ, bQ [4][]float64, cutoff int) [4][]float64 {
	quarter := m * m / 4
	az := make([]float64, 0, m*m)
	bz := make([]float64, 0, m*m)
	for q := 0; q < 4; q++ {
		az = append(az, aQ[q]...)
		bz = append(bz, bQ[q]...)
	}
	r.Alloc(3 * m * m)
	a := ZToDense(az, m)
	b := ZToDense(bz, m)
	c := Multiply(a, b, cutoff)
	r.Compute(Flops(m, cutoff))
	cz := DenseToZ(c)
	var cQ [4][]float64
	for q := 0; q < 4; q++ {
		cQ[q] = cz[q*quarter : (q+1)*quarter]
	}
	r.Free(3 * m * m)
	return cQ
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
