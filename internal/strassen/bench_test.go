package strassen

import (
	"testing"

	"perfscale/internal/matrix"
)

func BenchmarkSerialStrassen256(b *testing.B) {
	x := matrix.Random(256, 256, 1)
	y := matrix.Random(256, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Multiply(x, y, 64)
	}
}

func BenchmarkClassical256(b *testing.B) {
	x := matrix.Random(256, 256, 1)
	y := matrix.Random(256, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = matrix.Mul(x, y)
	}
}

func BenchmarkZOrderRoundTrip(b *testing.B) {
	a := matrix.Random(256, 256, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := DenseToZ(a)
		_ = ZToDense(z, 256)
	}
}
