// Package strassen implements fast matrix multiplication: serial Strassen
// with a classical-kernel cutoff, and a CAPS-style parallel Strassen on the
// simulator (BFS recursion over 7^k ranks), the algorithm whose
// communication costs instantiate the paper's Eqs. 13–14.
package strassen

import (
	"perfscale/internal/matrix"
)

// DefaultCutoff is the submatrix size below which the classical kernel is
// used. 64 balances recursion overhead against the O(n³)/O(n^2.81)
// crossover for the pure-Go kernel.
const DefaultCutoff = 64

// Multiply returns A·B using Strassen's algorithm with the given cutoff.
// Odd-sized (sub)matrices fall back to the classical kernel, so any square
// size works; power-of-two sizes recurse all the way down.
func Multiply(a, b *matrix.Dense, cutoff int) *matrix.Dense {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		panic("strassen: need equal square operands")
	}
	if cutoff < 1 {
		cutoff = 1
	}
	return multiply(a, b, cutoff)
}

func multiply(a, b *matrix.Dense, cutoff int) *matrix.Dense {
	n := a.Rows
	if n <= cutoff || n%2 != 0 {
		return matrix.Mul(a, b)
	}
	h := n / 2
	a11 := a.Block(0, 0, h, h)
	a12 := a.Block(0, h, h, h)
	a21 := a.Block(h, 0, h, h)
	a22 := a.Block(h, h, h, h)
	b11 := b.Block(0, 0, h, h)
	b12 := b.Block(0, h, h, h)
	b21 := b.Block(h, 0, h, h)
	b22 := b.Block(h, h, h, h)

	m1 := multiply(add(a11, a22), add(b11, b22), cutoff)
	m2 := multiply(add(a21, a22), b11, cutoff)
	m3 := multiply(a11, sub(b12, b22), cutoff)
	m4 := multiply(a22, sub(b21, b11), cutoff)
	m5 := multiply(add(a11, a12), b22, cutoff)
	m6 := multiply(sub(a21, a11), add(b11, b12), cutoff)
	m7 := multiply(sub(a12, a22), add(b21, b22), cutoff)

	c := matrix.New(n, n)
	// C11 = M1 + M4 − M5 + M7
	c11 := m1.Clone()
	c11.Add(m4)
	c11.Sub(m5)
	c11.Add(m7)
	// C12 = M3 + M5
	c12 := m3.Clone()
	c12.Add(m5)
	// C21 = M2 + M4
	c21 := m2.Clone()
	c21.Add(m4)
	// C22 = M1 − M2 + M3 + M6
	c22 := m1.Clone()
	c22.Sub(m2)
	c22.Add(m3)
	c22.Add(m6)
	c.SetBlock(0, 0, c11)
	c.SetBlock(0, h, c12)
	c.SetBlock(h, 0, c21)
	c.SetBlock(h, h, c22)
	return c
}

func add(a, b *matrix.Dense) *matrix.Dense {
	c := a.Clone()
	c.Add(b)
	return c
}

func sub(a, b *matrix.Dense) *matrix.Dense {
	c := a.Clone()
	c.Sub(b)
	return c
}

// Flops returns the floating-point operations Multiply performs on n×n
// operands with the given cutoff: classical 2n³ at the leaves plus
// 18·(n/2)² additions per recursion step. This is what the simulator
// charges for local Strassen multiplies.
func Flops(n, cutoff int) float64 {
	if cutoff < 1 {
		cutoff = 1
	}
	if n <= cutoff || n%2 != 0 {
		return 2 * float64(n) * float64(n) * float64(n)
	}
	h := float64(n / 2)
	return 7*Flops(n/2, cutoff) + 18*h*h
}

// --- Morton (Z-order) layout helpers for the parallel algorithm -----------

// DenseToZ flattens a square matrix into the recursive quadrant-major
// ("Z-order") layout: [Z(A11), Z(A12), Z(A21), Z(A22)], bottoming out at
// single elements. In this layout every quadrant — at every recursion
// depth — is a contiguous slice, which is what lets CAPS redistribute
// subproblems with contiguous messages.
func DenseToZ(a *matrix.Dense) []float64 {
	if a.Rows != a.Cols {
		panic("strassen: Z-order needs a square matrix")
	}
	out := make([]float64, 0, a.Rows*a.Cols)
	return appendZ(out, a, 0, 0, a.Rows)
}

func appendZ(out []float64, a *matrix.Dense, r0, c0, size int) []float64 {
	if size == 1 {
		return append(out, a.At(r0, c0))
	}
	if size%2 != 0 {
		// Odd block: row-major terminal (only reached when the recursion
		// stops subdividing, which the parallel algorithm never does for
		// its supported sizes).
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				out = append(out, a.At(r0+i, c0+j))
			}
		}
		return out
	}
	h := size / 2
	out = appendZ(out, a, r0, c0, h)
	out = appendZ(out, a, r0, c0+h, h)
	out = appendZ(out, a, r0+h, c0, h)
	return appendZ(out, a, r0+h, c0+h, h)
}

// ZToDense inverts DenseToZ for an n×n matrix.
func ZToDense(z []float64, n int) *matrix.Dense {
	if len(z) != n*n {
		panic("strassen: Z length mismatch")
	}
	a := matrix.New(n, n)
	pos := 0
	fillZ(z, &pos, a, 0, 0, n)
	return a
}

func fillZ(z []float64, pos *int, a *matrix.Dense, r0, c0, size int) {
	if size == 1 {
		a.Set(r0, c0, z[*pos])
		*pos++
		return
	}
	if size%2 != 0 {
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				a.Set(r0+i, c0+j, z[*pos])
				*pos++
			}
		}
		return
	}
	h := size / 2
	fillZ(z, pos, a, r0, c0, h)
	fillZ(z, pos, a, r0, c0+h, h)
	fillZ(z, pos, a, r0+h, c0, h)
	fillZ(z, pos, a, r0+h, c0+h, h)
}
