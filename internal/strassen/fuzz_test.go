package strassen

import (
	"testing"

	"perfscale/internal/matrix"
)

// FuzzZOrderRoundTrip drives the Morton-layout conversion with arbitrary
// sizes and seeds: the round trip must always be exact, including odd and
// mixed even/odd recursion terminals.
func FuzzZOrderRoundTrip(f *testing.F) {
	f.Add(uint8(4), int64(1))
	f.Add(uint8(7), int64(2))
	f.Add(uint8(12), int64(3))
	f.Add(uint8(1), int64(4))
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64) {
		n := int(nRaw)%32 + 1
		a := matrix.Random(n, n, seed)
		z := DenseToZ(a)
		if len(z) != n*n {
			t.Fatalf("n=%d: Z length %d", n, len(z))
		}
		back := ZToDense(z, n)
		if d := back.MaxAbsDiff(a); d != 0 {
			t.Fatalf("n=%d seed=%d: round trip diff %g", n, seed, d)
		}
	})
}

// FuzzStrassenMatchesClassical checks serial Strassen against the blocked
// classical kernel for arbitrary sizes and cutoffs.
func FuzzStrassenMatchesClassical(f *testing.F) {
	f.Add(uint8(8), uint8(2), int64(1))
	f.Add(uint8(15), uint8(4), int64(2))
	f.Add(uint8(32), uint8(1), int64(3))
	f.Fuzz(func(t *testing.T, nRaw, cutRaw uint8, seed int64) {
		n := int(nRaw)%48 + 1
		cutoff := int(cutRaw)%16 + 1
		a := matrix.Random(n, n, seed)
		b := matrix.Random(n, n, seed+1)
		got := Multiply(a, b, cutoff)
		want := matrix.Mul(a, b)
		if d := got.MaxAbsDiff(want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d cutoff=%d: diff %g", n, cutoff, d)
		}
	})
}
