package opt

import "math"

// solveCubicPositive returns the positive real root of
// a·x³ + b·x² + c·x + d = 0 for coefficient patterns with exactly one
// positive root (a > 0, d < 0 here), using the trigonometric/Cardano
// closed forms. Returns NaN if no positive real root exists.
func solveCubicPositive(a, b, c, d float64) float64 {
	if a == 0 {
		// Quadratic b·x² + c·x + d = 0.
		if b == 0 {
			if c == 0 {
				return math.NaN()
			}
			x := -d / c
			if x > 0 {
				return x
			}
			return math.NaN()
		}
		disc := c*c - 4*b*d
		if disc < 0 {
			return math.NaN()
		}
		sq := math.Sqrt(disc)
		best := math.NaN()
		for _, x := range []float64{(-c + sq) / (2 * b), (-c - sq) / (2 * b)} {
			if x > 0 && (math.IsNaN(best) || x < best) {
				best = x
			}
		}
		return best
	}
	// Depressed cubic t³ + p·t + q = 0 with x = t − b/(3a).
	b, c, d = b/a, c/a, d/a
	p := c - b*b/3
	q := 2*b*b*b/27 - b*c/3 + d
	shift := -b / 3
	disc := q*q/4 + p*p*p/27
	var roots []float64
	switch {
	case disc > 0:
		// One real root.
		sq := math.Sqrt(disc)
		u := math.Cbrt(-q/2 + sq)
		v := math.Cbrt(-q/2 - sq)
		roots = []float64{u + v + shift}
	case disc == 0:
		if q == 0 {
			roots = []float64{shift}
		} else {
			u := math.Cbrt(-q / 2)
			roots = []float64{2*u + shift, -u + shift}
		}
	default:
		// Three real roots (casus irreducibilis): trigonometric form.
		r := math.Sqrt(-p * p * p / 27)
		phi := math.Acos(math.Min(1, math.Max(-1, -q/(2*r))))
		m := 2 * math.Sqrt(-p/3)
		for k := 0; k < 3; k++ {
			roots = append(roots, m*math.Cos((phi+2*math.Pi*float64(k))/3)+shift)
		}
	}
	best := math.NaN()
	for _, x := range roots {
		if x > 0 && (math.IsNaN(best) || x < best) {
			best = x
		}
	}
	eval := func(x float64) float64 { return x*x*x + b*x*x + c*x + d }
	// Polish the closed-form root with a few Newton steps on the monic
	// cubic (Cardano suffers cancellation for some coefficient patterns).
	if !math.IsNaN(best) {
		for i := 0; i < 4; i++ {
			f := eval(best)
			df := 3*best*best + 2*b*best + c
			if df == 0 {
				break
			}
			best -= f / df
		}
	}
	// Cardano can lose the root entirely when the coefficients span many
	// orders of magnitude (fuzz-found: a tiny root below huge quadratic
	// terms). For the d < 0 < a case the cubic has f(0) < 0 and f(∞) > 0,
	// so a bracketing bisection always recovers it.
	if (math.IsNaN(best) || best <= 0 || math.Abs(eval(best)) > 1e-9*(math.Abs(d)+math.Abs(best*best*best))) && d < 0 {
		hi := 1.0
		for eval(hi) < 0 && hi < 1e150 {
			hi *= 2
		}
		lo := 0.0
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if eval(mid) < 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		best = (lo + hi) / 2
	}
	return best
}

// OptimalMemoryAnalytic returns the closed-form energy-minimizing memory
// for classical matmul — the technical-report analogue of the paper's M0.
// Setting dE/dM = 0 on Eq. 10 with x = √M gives the cubic
//
//	δe·γt·x³ + (δe·(βt+αt/m)/2)·x² − B/2 = 0
//
// whose unique positive root squared is M*. Only defined for ω = 3 (the
// paper notes the Strassen powers spoil the closed form; use
// OptimalMemory for that). Falls back to NaN when the cubic degenerates
// (e.g. δe = 0: energy is then monotone decreasing in M and the optimum is
// the memory ceiling).
func (pb MatMul) OptimalMemoryAnalytic() float64 {
	if pb.omega() != 3 {
		return math.NaN()
	}
	m := pb.M
	a := m.DeltaE * m.GammaT
	b := m.DeltaE * m.CommTimePerWord() / 2
	d := -m.CommEnergyPerWord() / 2
	x := solveCubicPositive(a, b, 0, d)
	return x * x
}
