package opt

import (
	"errors"
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/machine"
)

func approx(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < rel
	}
	return math.Abs(got-want)/math.Abs(want) < rel
}

func testNBody() NBody {
	return NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
}

func TestMinimizeUnimodal(t *testing.T) {
	// min of (x-5)² + 3 over [0.1, 100].
	f := func(x float64) float64 { return (x-5)*(x-5) + 3 }
	x, fx := MinimizeUnimodal(f, 0.1, 100)
	if !approx(x, 5, 1e-6) || !approx(fx, 3, 1e-9) {
		t.Errorf("got x=%g fx=%g", x, fx)
	}
	// Monotone decreasing: minimum at the right edge.
	x, _ = MinimizeUnimodal(func(x float64) float64 { return -x }, 1, 10)
	if !approx(x, 10, 1e-6) {
		t.Errorf("decreasing f: got %g want 10", x)
	}
}

func TestMinimizeUnimodalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad interval should panic")
		}
	}()
	MinimizeUnimodal(func(x float64) float64 { return x }, 5, 1)
}

func TestBisectIncreasing(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, err := BisectIncreasing(f, 0.001, 100, 49)
	if err != nil || !approx(x, 7, 1e-6) {
		t.Errorf("got %g err %v", x, err)
	}
	if _, err := BisectIncreasing(f, 10, 100, 1); !errors.Is(err, ErrInfeasible) {
		t.Error("target below f(lo) should be infeasible")
	}
	x, err = BisectIncreasing(f, 1, 10, 1e9)
	if err != nil || x != 10 {
		t.Errorf("saturated target: got %g err %v", x, err)
	}
}

func TestNBodyOptimalMemoryClosedForm(t *testing.T) {
	pb := testNBody()
	m0 := pb.OptimalMemory()
	want := math.Sqrt(pb.M.CommEnergyPerWord() / (pb.M.DeltaE * pb.M.GammaT * pb.F))
	if !approx(m0, want, 1e-12) {
		t.Errorf("M0: got %g want %g", m0, want)
	}
	// M0 minimizes the energy curve: both neighbors cost more.
	if pb.Energy(m0*1.1) <= pb.Energy(m0) || pb.Energy(m0/1.1) <= pb.Energy(m0) {
		t.Error("M0 is not a local minimum of Eq. 16")
	}
}

func TestNBodyNumericMatchesClosedForm(t *testing.T) {
	pb := testNBody()
	if got, want := pb.NumericOptimalMemory(), pb.OptimalMemory(); !approx(got, want, 1e-4) {
		t.Errorf("numeric M0 %g vs closed form %g", got, want)
	}
}

func TestNBodyMinEnergyMatchesEnergyAtM0(t *testing.T) {
	pb := testNBody()
	if got, want := pb.MinEnergy(), pb.Energy(pb.OptimalMemory()); !approx(got, want, 1e-12) {
		t.Errorf("E* %g vs E(M0) %g", got, want)
	}
}

func TestNBodyM0InsideIllustrativeRange(t *testing.T) {
	// The Illustrative preset promises M0 = 2000 words, so the Figure 4
	// minimum-energy line spans p ∈ [n/M0, n²/M0²] = [5, 25] — overlapping
	// the plotted axis [6, 100] the way the paper draws it.
	pb := testNBody()
	m0 := pb.OptimalMemory()
	if !approx(m0, 2000, 0.01) {
		t.Errorf("M0: got %g want ~2000", m0)
	}
	for _, p := range []float64{6, 10, 20} {
		if !bounds.InNBodyScalingRange(pb.N, p, m0) {
			t.Errorf("M0=%g outside range at p=%g: [%g, %g]", m0, p, pb.N/p, pb.N/math.Sqrt(p))
		}
	}
	lo, hi := pb.MinEnergyProcRange()
	if lo >= 6 || hi <= 6 || hi >= 100 {
		t.Errorf("min-energy line [%g, %g] should overlap [6, 100] partially", lo, hi)
	}
}

func TestNBodyMinEnergyProcRange(t *testing.T) {
	pb := testNBody()
	lo, hi := pb.MinEnergyProcRange()
	m0 := pb.OptimalMemory()
	if !approx(lo, pb.N/m0, 1e-12) || !approx(hi, pb.N*pb.N/(m0*m0), 1e-12) {
		t.Errorf("range [%g, %g]", lo, hi)
	}
	if lo >= hi {
		t.Error("range must be nonempty")
	}
}

func TestNBodyMinTimeConfig(t *testing.T) {
	pb := testNBody()
	cfg := pb.MinTimeConfig(64)
	if cfg.P != 64 || !approx(cfg.Mem, pb.N/8, 1e-12) {
		t.Errorf("cfg %+v", cfg)
	}
}

func TestMinEnergyGivenTimeGenerousBudget(t *testing.T) {
	pb := testNBody()
	// With a huge budget the global optimum must be returned.
	cfg, e, err := pb.MinEnergyGivenTime(1e12)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(e, pb.MinEnergy(), 1e-12) {
		t.Errorf("energy %g vs E* %g", e, pb.MinEnergy())
	}
	if !approx(cfg.Mem, pb.OptimalMemory(), 1e-12) {
		t.Errorf("memory %g vs M0 %g", cfg.Mem, pb.OptimalMemory())
	}
}

func TestMinEnergyGivenTimeTightBudget(t *testing.T) {
	pb := testNBody()
	tight := pb.timeAtM0() / 10
	cfg, e, err := pb.MinEnergyGivenTime(tight)
	if err != nil {
		t.Fatal(err)
	}
	// The budget must actually be met (within rounding).
	if got := pb.Time(cfg.P, cfg.Mem); got > tight*(1+1e-9) {
		t.Errorf("returned config misses deadline: T=%g > %g", got, tight)
	}
	// It costs more than the global optimum.
	if e < pb.MinEnergy() {
		t.Errorf("constrained energy %g below global optimum %g", e, pb.MinEnergy())
	}
	// And it runs at the 2D limit M = n/√p.
	if !approx(cfg.Mem, pb.N/math.Sqrt(cfg.P), 1e-9) {
		t.Errorf("tight-budget run should be 2D: M=%g n/√p=%g", cfg.Mem, pb.N/math.Sqrt(cfg.P))
	}
}

func TestMinEnergyGivenTimeInfeasible(t *testing.T) {
	pb := testNBody()
	if _, _, err := pb.MinEnergyGivenTime(0); !errors.Is(err, ErrInfeasible) {
		t.Error("zero budget should be infeasible")
	}
}

func TestMinEnergyGivenTimePminFormula(t *testing.T) {
	// The returned p must satisfy the paper's quadratic: T(pmin, n/√pmin)
	// equals Tmax exactly.
	pb := testNBody()
	tight := pb.timeAtM0() / 7
	cfg, _, err := pb.MinEnergyGivenTime(tight)
	if err != nil {
		t.Fatal(err)
	}
	if got := pb.Time(cfg.P, cfg.Mem); !approx(got, tight, 1e-9) {
		t.Errorf("pmin should make the deadline tight: T=%g Tmax=%g", got, tight)
	}
}

func TestMaxProcsGivenEnergy(t *testing.T) {
	pb := testNBody()
	// Budget 2x the 2D-limit energy at p=100.
	mem := pb.N / 10
	budget := pb.Energy(mem)
	p, err := pb.MaxProcsGivenEnergy(budget)
	if err != nil {
		t.Fatal(err)
	}
	// At the returned p, the 2D run exactly exhausts the budget.
	got := pb.Energy(pb.N / math.Sqrt(p))
	if !approx(got, budget, 1e-9) {
		t.Errorf("E at max p: %g vs budget %g", got, budget)
	}
	// Below E*, infeasible.
	if _, err := pb.MaxProcsGivenEnergy(pb.MinEnergy() * 0.5); !errors.Is(err, ErrInfeasible) {
		t.Error("budget below E* should be infeasible")
	}
}

func TestMinTimeGivenEnergyIs2D(t *testing.T) {
	pb := testNBody()
	budget := pb.MinEnergy() * 1.5
	cfg, tt, err := pb.MinTimeGivenEnergy(budget)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(cfg.Mem, pb.N/math.Sqrt(cfg.P), 1e-9) {
		t.Error("min-time run must sit on the 2D limit")
	}
	if !approx(tt, pb.Time(cfg.P, cfg.Mem), 1e-12) {
		t.Error("returned time inconsistent")
	}
	// A bigger budget must not be slower.
	_, t2, err := pb.MinTimeGivenEnergy(budget * 2)
	if err != nil {
		t.Fatal(err)
	}
	if t2 > tt {
		t.Errorf("more energy budget should not slow the run: %g -> %g", tt, t2)
	}
}

func TestProcPowerIndependentOfP(t *testing.T) {
	// ProcPower takes no p: check it equals E/(T·p) computed at several p.
	pb := testNBody()
	mem := pb.OptimalMemory()
	want := pb.ProcPower(mem)
	for _, p := range []float64{10, 40, 90} {
		e := pb.Energy(mem)
		tt := pb.Time(p, mem)
		if got := e / (tt * p); !approx(got, want, 1e-9) {
			t.Errorf("p=%g: E/(T·p)=%g vs ProcPower=%g", p, got, want)
		}
	}
}

func TestMaxProcsGivenTotalPower(t *testing.T) {
	pb := testNBody()
	mem := pb.OptimalMemory()
	p1 := pb.ProcPower(mem)
	if got := pb.MaxProcsGivenTotalPower(50*p1, mem); !approx(got, 50, 1e-12) {
		t.Errorf("total power for 50 procs: got %g", got)
	}
}

func TestMemRangeGivenProcPower(t *testing.T) {
	pb := testNBody()
	mem := pb.OptimalMemory()
	cap := pb.ProcPower(mem) * 1.2
	lo, hi, err := pb.MemRangeGivenProcPower(cap)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < mem && mem < hi) {
		t.Errorf("M0=%g should be inside allowed range [%g, %g]", mem, lo, hi)
	}
	// The boundary memory should draw exactly the cap.
	if got := pb.ProcPower(hi); !approx(got, cap, 1e-6) {
		t.Errorf("power at hi boundary: %g vs cap %g", got, cap)
	}
	// An impossible cap is reported.
	if _, _, err := pb.MemRangeGivenProcPower(pb.M.EpsilonE / 2); !errors.Is(err, ErrInfeasible) {
		t.Error("cap below leakage should be infeasible")
	}
}

func TestMinEnergyGivenProcPower(t *testing.T) {
	pb := testNBody()
	m0 := pb.OptimalMemory()
	// Generous cap: global optimum.
	mem, e, err := pb.MinEnergyGivenProcPower(pb.ProcPower(m0) * 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mem, m0, 1e-9) || !approx(e, pb.MinEnergy(), 1e-9) {
		t.Errorf("generous cap: mem=%g e=%g", mem, e)
	}
	// Tight cap (below the power at M0 but feasible at smaller memory):
	// the best memory is the boundary below M0.
	tight := pb.ProcPower(m0/4) * 1.0001
	if tight >= pb.ProcPower(m0) {
		t.Skip("illustrative machine: power not increasing at M0/4")
	}
	mem, e, err = pb.MinEnergyGivenProcPower(tight)
	if err != nil {
		t.Fatal(err)
	}
	if mem >= m0 {
		t.Errorf("tight cap should force memory below M0: got %g", mem)
	}
	if e <= pb.MinEnergy() {
		t.Errorf("constrained energy %g should exceed E* %g", e, pb.MinEnergy())
	}
}

func TestEfficiencyIndependentOfN(t *testing.T) {
	pb := testNBody()
	pb2 := pb
	pb2.N = pb.N * 7
	if !approx(pb.Efficiency(), pb2.Efficiency(), 1e-12) {
		t.Errorf("n-body efficiency should be n-independent: %g vs %g", pb.Efficiency(), pb2.Efficiency())
	}
}

func TestEnergyScaleForTarget(t *testing.T) {
	pb := testNBody()
	target := pb.Efficiency() * 4
	x := pb.EnergyScaleForTarget(target)
	if !approx(x, 0.25, 1e-12) {
		t.Errorf("scale: got %g want 0.25", x)
	}
	// Verify: scaling every energy parameter by x reaches the target.
	scaled := pb
	scaled.M = pb.M.ScaleEnergy(x,
		machine.FieldGammaE, machine.FieldBetaE, machine.FieldAlphaE,
		machine.FieldDeltaE, machine.FieldEpsilonE)
	if got := scaled.Efficiency(); !approx(got, target, 1e-9) {
		t.Errorf("scaled efficiency %g vs target %g", got, target)
	}
}

func TestRaceToHaltNotAlwaysOptimal(t *testing.T) {
	// §V.A's punchline: minimizing energy and minimizing time select
	// different configurations — "race to halt" is not the guiding
	// principle. The fastest config (2D limit) must use strictly more
	// energy than E* whenever M0 is interior.
	pb := testNBody()
	fast := pb.MinTimeConfig(100)
	eFast := pb.Energy(fast.Mem)
	if eFast <= pb.MinEnergy()*(1+1e-9) {
		t.Errorf("fastest config energy %g should exceed E* %g", eFast, pb.MinEnergy())
	}
}
