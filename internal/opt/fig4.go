package opt

import (
	"math"

	"perfscale/internal/bounds"
)

// Fig4Cell is one (p, M) point of the Figure 4 plots: the execution-region
// diagrams of the data-replicating n-body algorithm.
type Fig4Cell struct {
	P, Mem float64
	// Feasible reports whether the algorithm can run here:
	// n/p ≤ M ≤ n/√p (between the thick red 1D and 2D limits).
	Feasible bool
	// Energy and Time are the Eq. 16/15 model values.
	Energy, Time float64
	// ProcPower and TotalPower are E/(T·p) and E/T.
	ProcPower, TotalPower float64
	// OnMinEnergyLine reports whether this cell's memory is (within grid
	// resolution) the energy-optimal M0 — Figure 4's green line.
	OnMinEnergyLine bool
}

// Fig4Grid is the sampled execution region.
type Fig4Grid struct {
	Problem NBody
	// M0 is the energy-optimal memory; E* the global minimum energy.
	M0, EStar float64
	Cells     []Fig4Cell
	// PValues and MemValues are the grid axes.
	PValues, MemValues []float64
}

// NBodyRegionGrid samples the Figure 4 execution region on a pCount ×
// memCount grid: p linear in [pLo, pHi] (the paper's axis runs from 6 to
// 100), and M logarithmic between the smallest 1D-limit memory and the
// largest 2D-limit memory over that p range.
func NBodyRegionGrid(pb NBody, pLo, pHi float64, pCount, memCount int) Fig4Grid {
	g := Fig4Grid{Problem: pb, M0: pb.OptimalMemory(), EStar: pb.MinEnergy()}
	memLo := pb.N / pHi            // 1D limit at the largest p
	memHi := pb.N / math.Sqrt(pLo) // 2D limit at the smallest p
	g.PValues = make([]float64, pCount)
	g.MemValues = make([]float64, memCount)
	for i := range g.PValues {
		g.PValues[i] = pLo + (pHi-pLo)*float64(i)/float64(pCount-1)
	}
	for j := range g.MemValues {
		frac := float64(j) / float64(memCount-1)
		g.MemValues[j] = memLo * math.Pow(memHi/memLo, frac)
	}
	// A memory row counts as "the" M0 row if it is the closest row to M0.
	bestRow, bestDist := -1, math.Inf(1)
	for j, mem := range g.MemValues {
		if d := math.Abs(math.Log(mem / g.M0)); d < bestDist {
			bestRow, bestDist = j, d
		}
	}
	for j, mem := range g.MemValues {
		for _, p := range g.PValues {
			cell := Fig4Cell{P: p, Mem: mem}
			cell.Feasible = bounds.InNBodyScalingRange(pb.N, p, mem)
			if cell.Feasible {
				cell.Energy = pb.Energy(mem)
				cell.Time = pb.Time(p, mem)
				cell.TotalPower = cell.Energy / cell.Time
				cell.ProcPower = cell.TotalPower / p
				cell.OnMinEnergyLine = j == bestRow
			}
			g.Cells = append(g.Cells, cell)
		}
	}
	return g
}

// CountFeasible returns how many sampled cells are inside the execution
// region.
func (g Fig4Grid) CountFeasible() int {
	n := 0
	for _, c := range g.Cells {
		if c.Feasible {
			n++
		}
	}
	return n
}

// Budgets holds the Figure 4(b)/(c) budget lines.
type Budgets struct {
	EnergyMax    float64 // Fig 4(b) dark region: E ≤ EnergyMax
	ProcPowerMax float64 // Fig 4(b) cyan region: E/(T·p) ≤ ProcPowerMax
	TimeMax      float64 // Fig 4(c) crosshatch: T ≤ TimeMax
	TotalPowMax  float64 // Fig 4(c) magenta: E/T ≤ TotalPowMax
}

// RegionFlags classifies one cell against the budgets.
type RegionFlags struct {
	WithinEnergy    bool
	WithinProcPower bool
	WithinTime      bool
	WithinTotalPow  bool
}

// Classify returns the budget flags of a feasible cell (all false for
// infeasible cells).
func (b Budgets) Classify(c Fig4Cell) RegionFlags {
	if !c.Feasible {
		return RegionFlags{}
	}
	return RegionFlags{
		WithinEnergy:    c.Energy <= b.EnergyMax,
		WithinProcPower: c.ProcPower <= b.ProcPowerMax,
		WithinTime:      c.Time <= b.TimeMax,
		WithinTotalPow:  c.TotalPower <= b.TotalPowMax,
	}
}

// MatMulGrid is the matmul counterpart of the Figure 4 execution region:
// the technical report's companion plots. Cells are feasible between the 2D
// limit M = n²/p and the 3D limit M = n²/p^(2/3).
type MatMulGrid struct {
	Problem            MatMul
	MStar, EStar       float64
	Cells              []Fig4Cell
	PValues, MemValues []float64
}

// MatMulRegionGrid samples the matmul execution region on a pCount ×
// memCount grid, p and M both log-spaced.
func MatMulRegionGrid(pb MatMul, pLo, pHi float64, pCount, memCount int) MatMulGrid {
	g := MatMulGrid{Problem: pb, MStar: pb.OptimalMemory()}
	g.EStar = pb.Energy(g.MStar)
	memLo := pb.N * pb.N / pHi                    // 2D limit at the largest p
	memHi := pb.N * pb.N / math.Pow(pLo, 2.0/3.0) // 3D limit at the smallest p
	g.PValues = make([]float64, pCount)
	g.MemValues = make([]float64, memCount)
	for i := range g.PValues {
		frac := float64(i) / float64(pCount-1)
		g.PValues[i] = pLo * math.Pow(pHi/pLo, frac)
	}
	for j := range g.MemValues {
		frac := float64(j) / float64(memCount-1)
		g.MemValues[j] = memLo * math.Pow(memHi/memLo, frac)
	}
	bestRow, bestDist := -1, math.Inf(1)
	for j, mem := range g.MemValues {
		if d := math.Abs(math.Log(mem / g.MStar)); d < bestDist {
			bestRow, bestDist = j, d
		}
	}
	n := pb.N
	for j, mem := range g.MemValues {
		for _, p := range g.PValues {
			cell := Fig4Cell{P: p, Mem: mem}
			cell.Feasible = mem >= n*n/p && mem <= n*n/math.Pow(p, 2.0/3.0)
			if cell.Feasible {
				cell.Energy = pb.Energy(mem)
				cell.Time = pb.Time(p, mem)
				cell.TotalPower = cell.Energy / cell.Time
				cell.ProcPower = cell.TotalPower / p
				cell.OnMinEnergyLine = j == bestRow
			}
			g.Cells = append(g.Cells, cell)
		}
	}
	return g
}

// CountFeasible returns the number of in-region cells.
func (g MatMulGrid) CountFeasible() int {
	n := 0
	for _, c := range g.Cells {
		if c.Feasible {
			n++
		}
	}
	return n
}
