package opt

import (
	"math"
	"testing"
)

// FuzzCubicRoot: for a > 0 and d < 0 the cubic has exactly one positive
// root and the solver must return it with a tiny residual.
func FuzzCubicRoot(f *testing.F) {
	f.Add(1.0, 0.5, 0.25, -2.0)
	f.Add(2.5, 0.0, 0.0, -1.0)
	f.Add(0.001, 10.0, 0.0, -0.001)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		if !(a > 1e-9 && a < 1e9) || !(d < -1e-9 && d > -1e9) {
			t.Skip()
		}
		if math.IsNaN(b) || math.IsInf(b, 0) || b < 0 || b > 1e9 {
			t.Skip()
		}
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 || c > 1e9 {
			t.Skip()
		}
		x := solveCubicPositive(a, b, c, d)
		if math.IsNaN(x) || x <= 0 {
			t.Fatalf("no positive root returned for (%g,%g,%g,%g)", a, b, c, d)
		}
		res := a*x*x*x + b*x*x + c*x + d
		scale := a*x*x*x + b*x*x + c*x - d
		if math.Abs(res) > 1e-7*scale {
			t.Fatalf("residual %g at x=%g for (%g,%g,%g,%g)", res, x, a, b, c, d)
		}
	})
}
