package opt

import (
	"math"
)

// This file takes up two of the paper's Section VII open problems that its
// machinery already supports:
//
//   - "Minimizing average power for the data-replicating n-body algorithm":
//     solved below in closed form plus a numeric cross-check.
//   - The matmul analogue of the Section V.E per-processor power cap, which
//     the paper leaves to the technical report: solved numerically.

// MinAvgPowerConfig returns the configuration minimizing average power
// P = E/T for the n-body problem, together with that power.
//
// For fixed M, E is constant in p while T ∝ 1/p, so average power grows
// with p: the power-minimizing run uses the fewest processors that hold
// the data, p = n/M (the 1D limit). Along that limit,
//
//	P(M) = E(M) / T(n/M, M)
//
// is unimodal in M and is minimized where more memory's energy cost stops
// paying for the shorter runtime; the minimizer is found by golden-section
// search. Note the contrast with §V.A: minimum energy picks M0 and any p,
// minimum power picks the 1D limit.
func (pb NBody) MinAvgPowerConfig() (Config, float64) {
	power := func(mem float64) float64 {
		p := pb.N / mem // 1D limit
		return pb.Energy(mem) / pb.Time(p, mem)
	}
	// M ranges over the whole execution region: from n/pmax... any M up to
	// n (single processor holds everything).
	mem, pw := MinimizeUnimodal(power, 1, pb.N)
	return Config{P: pb.N / mem, Mem: mem}, pw
}

// AvgPower returns E/T at a configuration.
func (pb NBody) AvgPower(p, mem float64) float64 {
	return pb.Energy(mem) / pb.Time(p, mem)
}

// MemRangeGivenProcPower is the §V.E matmul analogue: the memory interval
// within which the per-processor power of classical matmul stays at or
// below pMax. The matmul power curve P1(M) is unimodal like the n-body
// one, but the paper leaves its quadratic to the technical report; we
// bracket the feasible interval numerically against opt.MatMul.ProcPower.
func (pb MatMul) MemRangeGivenProcPower(pMax float64) (mLo, mHi float64, err error) {
	hi := math.Min(pb.M.MemWords, pb.N*pb.N)
	// Find the power-minimizing memory first.
	mMin, pMin := MinimizeUnimodal(pb.ProcPower, 1, hi)
	if pMin > pMax {
		return 0, 0, ErrInfeasible
	}
	// Left edge: P1 decreasing on [1, mMin].
	if pb.ProcPower(1) <= pMax {
		mLo = 1
	} else {
		lo, hiB := 1.0, mMin
		for i := 0; i < 200 && hiB > lo*(1+1e-14); i++ {
			mid := math.Sqrt(lo * hiB)
			if pb.ProcPower(mid) <= pMax {
				hiB = mid
			} else {
				lo = mid
			}
		}
		mLo = hiB
	}
	// Right edge: P1 increasing on [mMin, hi].
	if pb.ProcPower(hi) <= pMax {
		mHi = hi
	} else {
		lo, hiB := mMin, hi
		for i := 0; i < 200 && hiB > lo*(1+1e-14); i++ {
			mid := math.Sqrt(lo * hiB)
			if pb.ProcPower(mid) <= pMax {
				lo = mid
			} else {
				hiB = mid
			}
		}
		mHi = lo
	}
	return mLo, mHi, nil
}

// MinEnergyGivenProcPower answers the matmul version of §V.E's second
// question: the best memory and energy under a per-processor power cap.
func (pb MatMul) MinEnergyGivenProcPower(pMax float64) (float64, float64, error) {
	mLo, mHi, err := pb.MemRangeGivenProcPower(pMax)
	if err != nil {
		return 0, 0, err
	}
	mStar := pb.OptimalMemory()
	mem := math.Min(math.Max(mStar, mLo), mHi)
	return mem, pb.Energy(mem), nil
}
