package opt

import (
	"math"

	"perfscale/internal/core"
	"perfscale/internal/machine"
)

// NBody poses the Section V optimization problems for the data-replicating
// direct n-body algorithm on a fixed machine and problem size.
type NBody struct {
	// M is the machine parameter set.
	M machine.Params
	// N is the number of bodies.
	N float64
	// F is the paper's f: flops per pairwise interaction.
	F float64
}

// a returns the paper's A = f·(γe+γt·εe) + δe·(βt+αt/m), the M- and
// p-independent energy per interaction pair (Section V.C).
func (pb NBody) a() float64 {
	return pb.F*pb.M.FlopEnergy() + pb.M.DeltaE*pb.M.CommTimePerWord()
}

// b returns B = (βe+βt·εe) + (αe+αt·εe)/m, the energy per communicated word.
func (pb NBody) b() float64 { return pb.M.CommEnergyPerWord() }

// Energy returns the model energy at memory mem (Eq. 16; independent of p
// inside the replication range).
func (pb NBody) Energy(mem float64) float64 {
	return core.NBodyEnergyClosedForm(pb.M, pb.N, mem, pb.F)
}

// Time returns the model runtime at (p, mem) (Eq. 15).
func (pb NBody) Time(p, mem float64) float64 {
	return core.NBodyTimeClosedForm(pb.M, pb.N, p, mem, pb.F)
}

// OptimalMemory returns M0 = sqrt(B / (δe·γt·f)), the memory that minimizes
// total energy (§V.A). Less memory wastes energy on communication; more
// wastes it keeping DRAM powered.
func (pb NBody) OptimalMemory() float64 {
	return math.Sqrt(pb.b() / (pb.M.DeltaE * pb.M.GammaT * pb.F))
}

// MinEnergy returns E* of Eq. 18, the global minimum energy:
//
//	E* = n²·(f(γe+γt·εe) + δe(βt+αt/m) + 2·sqrt(δe·γt·f·B))
func (pb NBody) MinEnergy() float64 {
	return pb.N * pb.N * (pb.a() + 2*math.Sqrt(pb.M.DeltaE*pb.M.GammaT*pb.F*pb.b()))
}

// MinEnergyProcRange returns the range of processor counts [n/M0, n²/M0²]
// over which the global minimum energy is attainable (the green line of
// Figure 4).
func (pb NBody) MinEnergyProcRange() (pLo, pHi float64) {
	m0 := pb.OptimalMemory()
	return pb.N / m0, pb.N * pb.N / (m0 * m0)
}

// MinTimeConfig returns the fastest configuration for a given maximum
// processor count: p = pMax with the largest legal memory M = n/√p (§V.A:
// "minimum runtime is when p is set as large as possible, and M is set to
// its maximum value").
func (pb NBody) MinTimeConfig(pMax float64) Config {
	return Config{P: pMax, Mem: pb.N / math.Sqrt(pMax)}
}

// timeAtM0 is the runtime using M0 memory and the most processors that
// still allow M0, p = n²/M0²: T = γt·f·M0² + (βt+αt/m)·M0 (§V.B).
func (pb NBody) timeAtM0() float64 {
	m0 := pb.OptimalMemory()
	return pb.M.GammaT*pb.F*m0*m0 + pb.M.CommTimePerWord()*m0
}

// MinEnergyGivenTime answers §V.B: the minimum-energy configuration whose
// runtime does not exceed tMax. If the time budget admits M0, the global
// optimum is returned; otherwise the run uses
//
//	pmin = ((βt'·n + sqrt(βt'²·n² + 4·tMax·γt·f·n²)) / (2·tMax))²
//
// processors at the 2D limit M = n/√pmin. Returns ErrInfeasible only for
// non-positive tMax (any positive time is reachable with enough processors).
func (pb NBody) MinEnergyGivenTime(tMax float64) (Config, float64, error) {
	if tMax <= 0 {
		return Config{}, 0, ErrInfeasible
	}
	if tMax >= pb.timeAtM0() {
		m0 := pb.OptimalMemory()
		return Config{P: pb.N * pb.N / (m0 * m0), Mem: m0}, pb.MinEnergy(), nil
	}
	bt := pb.M.CommTimePerWord()
	s := (bt*pb.N + math.Sqrt(bt*bt*pb.N*pb.N+4*tMax*pb.M.GammaT*pb.F*pb.N*pb.N)) / (2 * tMax)
	pmin := s * s
	mem := pb.N / math.Sqrt(pmin)
	return Config{P: pmin, Mem: mem}, pb.Energy(mem), nil
}

// MaxProcsGivenEnergy answers the §V.C processor bound: the largest p such
// that a 2D run (M = n/√p) fits within energy budget eMax:
//
//	p ≤ (((Emax − A·n²) + sqrt((Emax − A·n²)² − 4·B·δe·γt·f·n⁴)) / (2·n·B))²
//
// Returns ErrInfeasible when eMax is below the global minimum energy (the
// expression turns imaginary, as the paper notes).
func (pb NBody) MaxProcsGivenEnergy(eMax float64) (float64, error) {
	a, b := pb.a(), pb.b()
	excess := eMax - a*pb.N*pb.N
	disc := excess*excess - 4*b*pb.M.DeltaE*pb.M.GammaT*pb.F*math.Pow(pb.N, 4)
	if excess <= 0 || disc < 0 {
		return 0, ErrInfeasible
	}
	x := (excess + math.Sqrt(disc)) / (2 * pb.N * b)
	return x * x, nil
}

// MinTimeGivenEnergy answers §V.C: the fastest configuration within energy
// budget eMax — always a 2D run at the largest p the budget allows.
func (pb NBody) MinTimeGivenEnergy(eMax float64) (Config, float64, error) {
	p, err := pb.MaxProcsGivenEnergy(eMax)
	if err != nil {
		return Config{}, 0, err
	}
	cfg := Config{P: p, Mem: pb.N / math.Sqrt(p)}
	return cfg, pb.Time(cfg.P, cfg.Mem), nil
}

// ProcPower returns the average power drawn by one processor at memory mem
// (§V.D); it is independent of p:
//
//	P1 = (γe·f + βe/M + αe/(m·M)) / (γt·f + βt/M + αt/(m·M)) + δe·M + εe
func (pb NBody) ProcPower(mem float64) float64 {
	m := pb.M
	num := m.GammaE*pb.F + m.BetaE/mem + m.AlphaE/(m.MaxMsgWords*mem)
	den := m.GammaT*pb.F + m.BetaT/mem + m.AlphaT/(m.MaxMsgWords*mem)
	return num/den + m.DeltaE*mem + m.EpsilonE
}

// MaxProcsGivenTotalPower answers §V.D: the processor bound implied by a
// total average power budget at memory mem (Eq. 19): p ≤ Ptot / P1(M).
func (pb NBody) MaxProcsGivenTotalPower(pTot, mem float64) float64 {
	return pTot / pb.ProcPower(mem)
}

// MemRangeGivenProcPower answers §V.E: the memory interval [mLo, mHi]
// within which the per-processor power stays at or below pMax (Eq. 20):
//
//	δe·γt·f·M² − C·M + D ≤ 0, with
//	C = γt·f·Pmax − γe·f − εe·γt·f − δe·(βt+αt/m)
//	D = βe + αe/m − (βt+αt/m)·(Pmax − εe)
//
// Returns ErrInfeasible when no memory satisfies the cap. Two corrections
// to the printed Eq. 20, both verified by expanding the power inequality
// and substituting the roots back: the discriminant's coefficient is
// 4·δe·γt·f·D (printed as 4·γe·γt·f·D), and the εe·(βt+αt/m) term of D
// enters with a plus sign (printed minus).
func (pb NBody) MemRangeGivenProcPower(pMax float64) (mLo, mHi float64, err error) {
	m := pb.M
	bt := m.CommTimePerWord()
	c := m.GammaT*pb.F*pMax - m.GammaE*pb.F - m.EpsilonE*m.GammaT*pb.F - m.DeltaE*bt
	d := m.BetaE + m.AlphaE/m.MaxMsgWords - bt*(pMax-m.EpsilonE)
	a := m.DeltaE * m.GammaT * pb.F
	disc := c*c - 4*a*d
	if disc < 0 {
		return 0, 0, ErrInfeasible
	}
	sq := math.Sqrt(disc)
	mLo = (c - sq) / (2 * a)
	mHi = (c + sq) / (2 * a)
	if mHi <= 0 {
		return 0, 0, ErrInfeasible
	}
	mLo = math.Max(mLo, 0)
	return mLo, mHi, nil
}

// MinEnergyGivenProcPower answers the second half of §V.E: the minimum
// energy achievable under a per-processor power cap. If M0 is allowed, the
// global optimum stands; otherwise the best memory is the boundary of the
// allowed interval nearest M0 (E is unimodal around M0).
func (pb NBody) MinEnergyGivenProcPower(pMax float64) (float64, float64, error) {
	mLo, mHi, err := pb.MemRangeGivenProcPower(pMax)
	if err != nil {
		return 0, 0, err
	}
	m0 := pb.OptimalMemory()
	mem := math.Min(math.Max(m0, mLo), mHi)
	return mem, pb.Energy(mem), nil
}

// Efficiency returns the best-case efficiency f·n²/E* in GFLOPS/W (§V.F).
// It is independent of n, p and M: E* scales as n² and the flop count does
// too.
func (pb NBody) Efficiency() float64 {
	return pb.F * pb.N * pb.N / pb.MinEnergy() / 1e9
}

// EnergyScaleForTarget answers §V.F's co-design question for the simplest
// lever: the factor x by which all energy parameters (γe, βe, αe, δe, εe)
// must be multiplied so that Efficiency reaches target GFLOPS/W. E* is
// homogeneous of degree 1 in the energy parameters, so x is exact:
// x = current/target.
func (pb NBody) EnergyScaleForTarget(target float64) float64 {
	return pb.Efficiency() / target
}

// NumericOptimalMemory cross-checks OptimalMemory by golden-section search
// over Eq. 16; the two agree to solver tolerance.
func (pb NBody) NumericOptimalMemory() float64 {
	x, _ := MinimizeUnimodal(pb.Energy, 1, pb.N*pb.N)
	return x
}
