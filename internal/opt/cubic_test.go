package opt

import (
	"math"
	"testing"
	"testing/quick"

	"perfscale/internal/machine"
)

func TestSolveCubicKnownRoots(t *testing.T) {
	cases := []struct {
		a, b, c, d float64
		want       float64
	}{
		{1, -6, 11, -6, 1},    // (x-1)(x-2)(x-3): smallest positive root 1
		{1, 0, 0, -8, 2},      // x³ = 8
		{0, 1, -3, 2, 1},      // quadratic (x-1)(x-2)
		{0, 0, 2, -8, 4},      // linear
		{1, 0, -1, 0, 1},      // x³ - x: roots -1, 0, 1 → positive root 1
		{2, 1, 0, -1, 0.6573}, // 2x³+x²-1: one positive root
	}
	for _, c := range cases {
		got := solveCubicPositive(c.a, c.b, c.c, c.d)
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("cubic(%g,%g,%g,%g): got %g want %g", c.a, c.b, c.c, c.d, got, c.want)
		}
	}
}

func TestSolveCubicNoPositiveRoot(t *testing.T) {
	// (x+1)(x+2)(x+3): no positive roots.
	if got := solveCubicPositive(1, 6, 11, 6); !math.IsNaN(got) {
		t.Errorf("expected NaN, got %g", got)
	}
	if got := solveCubicPositive(0, 0, 0, 5); !math.IsNaN(got) {
		t.Errorf("degenerate constant: expected NaN, got %g", got)
	}
	if got := solveCubicPositive(0, 1, 0, 4); !math.IsNaN(got) {
		t.Errorf("x² = -4: expected NaN, got %g", got)
	}
}

// Property: any root returned satisfies the cubic.
func TestSolveCubicResidualProperty(t *testing.T) {
	f := func(ai, bi, di uint8) bool {
		a := 0.1 + float64(ai)/64
		b := float64(bi) / 64
		d := -(0.1 + float64(di)/64)
		x := solveCubicPositive(a, b, 0, d)
		if math.IsNaN(x) {
			return false // a>0, d<0 guarantees a positive root
		}
		res := a*x*x*x + b*x*x + d
		scale := a*x*x*x - d
		return math.Abs(res) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyticMatchesNumericOptimum(t *testing.T) {
	for _, m := range []machine.Params{
		machine.Jaketown(),
		machine.Illustrative(),
		machine.SimDefault(),
	} {
		pb := MatMul{M: m, N: 1 << 14}
		analytic := pb.OptimalMemoryAnalytic()
		numeric := pb.OptimalMemory()
		if math.IsNaN(analytic) {
			t.Fatalf("%s: analytic optimum undefined", m.Name)
		}
		// The numeric search clamps to [1, min(MemWords, n²)]; compare only
		// when the analytic optimum lies inside that window.
		hi := math.Min(m.MemWords, pb.N*pb.N)
		if analytic >= 1 && analytic <= hi {
			if !approx(analytic, numeric, 1e-3) {
				t.Errorf("%s: analytic M* %g vs numeric %g", m.Name, analytic, numeric)
			}
		} else if numeric < hi*0.99 && numeric > 1.01 {
			t.Errorf("%s: analytic out of window [1, %g] (%g) but numeric interior (%g)",
				m.Name, hi, analytic, numeric)
		}
	}
}

func TestAnalyticUndefinedForStrassen(t *testing.T) {
	pb := testMatMul()
	pb.Omega = 2.807
	if !math.IsNaN(pb.OptimalMemoryAnalytic()) {
		t.Error("analytic optimum should be undefined for fast matmul")
	}
}
