package opt

import (
	"math"
	"testing"

	"perfscale/internal/core"
	"perfscale/internal/machine"
)

// matmulEff evaluates 2.5D matmul efficiency at a fixed configuration —
// the same evaluator shape the Section VI study uses.
func matmulEff(n, p, mem float64) func(machine.Params) float64 {
	return func(m machine.Params) float64 {
		return core.MatMulClassical(m, n, p, mem).GFLOPSPerWatt()
	}
}

func TestCoDesignReachesTarget(t *testing.T) {
	base := machine.Jaketown()
	eff := matmulEff(35000, 2, 35000*35000/math.Pow(2, 2.0/3.0))
	target := eff(base) * 25 // deep enough that gamma_e alone cannot get there
	res, err := CoDesignProblem{
		Base:                base,
		TargetGFLOPSPerWatt: target,
		Efficiency:          eff,
	}.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Achieved < target {
		t.Errorf("achieved %g below target %g", res.Achieved, target)
	}
	// Sanity: the returned machine really evaluates to the claim.
	if got := eff(res.Machine); !approx(got, res.Achieved, 1e-12) {
		t.Errorf("result machine inconsistent: %g vs %g", got, res.Achieved)
	}
	// On Jaketown, γe and δe dominate the energy; βe does almost nothing —
	// the solver should spend essentially nothing on βe.
	if res.Halvings[machine.FieldBetaE] > res.Halvings[machine.FieldGammaE] {
		t.Errorf("solver wasted effort on beta_e: %v", res.Halvings)
	}
	if res.Halvings[machine.FieldGammaE] == 0 || res.Halvings[machine.FieldDeltaE] == 0 {
		t.Errorf("gamma_e and delta_e should both receive effort: %v", res.Halvings)
	}
}

func TestCoDesignRespectsWeights(t *testing.T) {
	base := machine.Jaketown()
	eff := matmulEff(35000, 2, 35000*35000/math.Pow(2, 2.0/3.0))
	target := eff(base) * 4
	cheapGamma, err := CoDesignProblem{
		Base: base, TargetGFLOPSPerWatt: target, Efficiency: eff,
		Weights: map[machine.EnergyField]float64{machine.FieldDeltaE: 100},
	}.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cheapDelta, err := CoDesignProblem{
		Base: base, TargetGFLOPSPerWatt: target, Efficiency: eff,
		Weights: map[machine.EnergyField]float64{machine.FieldGammaE: 100},
	}.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Making delta expensive shifts effort to gamma, and vice versa.
	if cheapGamma.Halvings[machine.FieldGammaE] <= cheapDelta.Halvings[machine.FieldGammaE] {
		t.Errorf("weights ignored: gamma effort %g vs %g",
			cheapGamma.Halvings[machine.FieldGammaE], cheapDelta.Halvings[machine.FieldGammaE])
	}
}

func TestCoDesignUnreachableTarget(t *testing.T) {
	// With all energy parameters already zero except γt-driven leakage...
	// simpler: an efficiency function that caps out.
	base := machine.Jaketown()
	capped := func(m machine.Params) float64 { return 1.0 } // constant
	_, err := CoDesignProblem{Base: base, TargetGFLOPSPerWatt: 2, Efficiency: capped}.Solve()
	if err == nil {
		t.Error("constant efficiency cannot reach a higher target")
	}
}

func TestCoDesignValidation(t *testing.T) {
	if _, err := (CoDesignProblem{Base: machine.Jaketown(), TargetGFLOPSPerWatt: -1,
		Efficiency: func(machine.Params) float64 { return 1 }}).Solve(); err == nil {
		t.Error("negative target should be rejected")
	}
	if _, err := (CoDesignProblem{Base: machine.Jaketown(), TargetGFLOPSPerWatt: 1}).Solve(); err == nil {
		t.Error("nil evaluator should be rejected")
	}
}

func TestCoDesignCostAccounting(t *testing.T) {
	base := machine.Jaketown()
	eff := matmulEff(35000, 2, 35000*35000/math.Pow(2, 2.0/3.0))
	res, err := CoDesignProblem{
		Base: base, TargetGFLOPSPerWatt: eff(base) * 2, Efficiency: eff,
	}.Solve()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, h := range res.Halvings {
		total += h
	}
	if !approx(res.Cost, total, 1e-12) { // unit weights: cost = total halvings
		t.Errorf("cost %g vs total halvings %g", res.Cost, total)
	}
	if total <= 0 {
		t.Error("reaching 2x the baseline must cost something")
	}
}
