// Package opt implements Section V of the paper: optimization of energy,
// runtime and power for the data-replicating n-body algorithm (closed
// forms, §V.A–F) and for classical/Strassen matrix multiplication (numeric,
// since the paper notes the analytic solutions are "harder to obtain").
package opt

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when a budget cannot be met by any
// configuration of the model.
var ErrInfeasible = errors.New("opt: budget infeasible")

// Config is an execution configuration: processor count and memory used per
// processor.
type Config struct {
	P   float64
	Mem float64
}

// MinimizeUnimodal performs golden-section search for the minimizer of f on
// [lo, hi] in log space (the energy curves of the paper are unimodal in M
// across many orders of magnitude). It returns the argmin and minimum.
func MinimizeUnimodal(f func(float64) float64, lo, hi float64) (x, fx float64) {
	if lo <= 0 || hi <= lo {
		panic("opt: MinimizeUnimodal needs 0 < lo < hi")
	}
	const phi = 1.618033988749895
	const tol = 1e-12
	a, b := math.Log(lo), math.Log(hi)
	g := func(t float64) float64 { return f(math.Exp(t)) }
	c := b - (b-a)/phi
	d := a + (b-a)/phi
	fc, fd := g(c), g(d)
	for i := 0; i < 400 && math.Abs(b-a) > tol*(1+math.Abs(a)+math.Abs(b)); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)/phi
			fc = g(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)/phi
			fd = g(d)
		}
	}
	t := (a + b) / 2
	return math.Exp(t), g(t)
}

// BisectIncreasing finds x in [lo, hi] with f(x) = target for a
// non-decreasing f; it returns the largest x with f(x) ≤ target. Returns
// ErrInfeasible when f(lo) > target.
func BisectIncreasing(f func(float64) float64, lo, hi, target float64) (float64, error) {
	if f(lo) > target {
		return 0, ErrInfeasible
	}
	if f(hi) <= target {
		return hi, nil
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
