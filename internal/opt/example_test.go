package opt_test

import (
	"fmt"

	"perfscale/internal/machine"
	"perfscale/internal/opt"
)

// ExampleNBody_OptimalMemory answers the paper's first optimization
// question: the memory per processor that minimizes total energy, and the
// processor range over which that minimum is attainable.
func ExampleNBody_OptimalMemory() {
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
	lo, hi := pb.MinEnergyProcRange()
	fmt.Printf("M0 = %.0f words\n", pb.OptimalMemory())
	fmt.Printf("attainable for p in [%.0f, %.0f]\n", lo, hi)
	// Output:
	// M0 = 2001 words
	// attainable for p in [5, 25]
}
