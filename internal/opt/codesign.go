package opt

import (
	"fmt"
	"math"

	"perfscale/internal/machine"
)

// Section VI closes with: "If we consider the problem of finding optimal
// machine parameters within a given energy efficiency envelope and cost
// metrics, we can solve the optimization problem via a steepest descents
// approach to guide hardware development." CoDesign implements that loop:
// find the cheapest improvement of the energy parameters that reaches a
// target efficiency, where "cheap" is measured by per-parameter engineering
// difficulty weights.

// CoDesignProblem describes the §VI hardware-development question.
type CoDesignProblem struct {
	// Base is the current machine.
	Base machine.Params
	// TargetGFLOPSPerWatt is the efficiency envelope to reach.
	TargetGFLOPSPerWatt float64
	// Weights holds the relative engineering cost of halving each
	// parameter once (its "difficulty"); missing entries default to 1.
	Weights map[machine.EnergyField]float64
	// Efficiency evaluates a candidate machine (e.g. casestudy.Efficiency
	// or an opt.NBody closure). It must be non-decreasing as energy
	// parameters shrink.
	Efficiency func(machine.Params) float64
}

// CoDesignResult is the solver's answer.
type CoDesignResult struct {
	// Halvings[f] is the (fractional) number of halvings applied to field f.
	Halvings map[machine.EnergyField]float64
	// Machine is the improved parameter set.
	Machine machine.Params
	// Achieved is its efficiency; Cost the weighted halving total.
	Achieved float64
	Cost     float64
}

// codesignFields are the parameters the §VI study scales.
var codesignFields = []machine.EnergyField{
	machine.FieldGammaE, machine.FieldBetaE, machine.FieldAlphaE,
	machine.FieldDeltaE, machine.FieldEpsilonE,
}

// Solve runs a steepest-descent (greedy marginal-utility) search: at each
// step it spends a small halving increment on the parameter with the best
// efficiency-gain-per-cost, until the target is met. The returned halvings
// tell hardware designers where improvement effort pays.
func (cp CoDesignProblem) Solve() (CoDesignResult, error) {
	if cp.TargetGFLOPSPerWatt <= 0 {
		return CoDesignResult{}, fmt.Errorf("opt: non-positive target")
	}
	if cp.Efficiency == nil {
		return CoDesignResult{}, fmt.Errorf("opt: nil efficiency evaluator")
	}
	weight := func(f machine.EnergyField) float64 {
		if w, ok := cp.Weights[f]; ok && w > 0 {
			return w
		}
		return 1
	}
	res := CoDesignResult{Halvings: map[machine.EnergyField]float64{}, Machine: cp.Base}
	cur := cp.Efficiency(cp.Base)
	const step = 0.25     // quarter-halvings per move
	const maxMoves = 4000 // backstop: 1000 full halvings across parameters
	for move := 0; move < maxMoves; move++ {
		if cur >= cp.TargetGFLOPSPerWatt {
			res.Achieved = cur
			return res, nil
		}
		// Pick the field with the best marginal gain per unit cost.
		bestGain := 0.0
		bestField := machine.EnergyField(-1)
		var bestMachine machine.Params
		var bestEff float64
		for _, f := range codesignFields {
			cand := res.Machine.ScaleEnergy(math.Pow(0.5, step), f)
			eff := cp.Efficiency(cand)
			gain := (eff - cur) / weight(f)
			if gain > bestGain {
				bestGain = gain
				bestField = f
				bestMachine = cand
				bestEff = eff
			}
		}
		if bestField < 0 {
			return res, fmt.Errorf("opt: no parameter improves efficiency beyond %.4g GFLOPS/W (target %.4g unreachable by scaling energy parameters)",
				cur, cp.TargetGFLOPSPerWatt)
		}
		res.Machine = bestMachine
		res.Halvings[bestField] += step
		res.Cost += step * weight(bestField)
		cur = bestEff
	}
	return res, fmt.Errorf("opt: target %.4g not reached after %d moves (at %.4g)",
		cp.TargetGFLOPSPerWatt, maxMoves, cur)
}
