package opt

import (
	"errors"
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/machine"
)

func testMatMul() MatMul {
	return MatMul{M: machine.Illustrative(), N: 1 << 14}
}

func TestMatMulOmegaDefault(t *testing.T) {
	pb := testMatMul()
	if pb.omega() != 3 {
		t.Errorf("default omega: got %g", pb.omega())
	}
	pb.Omega = bounds.OmegaStrassen
	if pb.omega() != bounds.OmegaStrassen {
		t.Error("explicit omega ignored")
	}
}

func TestMatMulOptimalMemoryIsMinimum(t *testing.T) {
	pb := testMatMul()
	m0 := pb.OptimalMemory()
	if pb.Energy(m0*1.01) < pb.Energy(m0) || pb.Energy(m0/1.01) < pb.Energy(m0) {
		t.Errorf("M*=%g is not a minimum of Eq. 10", m0)
	}
	// Grid scan confirms golden section found the global minimum.
	bestE := math.Inf(1)
	for x := 1.0; x <= pb.N*pb.N; x *= 1.1 {
		if e := pb.Energy(x); e < bestE {
			bestE = e
		}
	}
	if pb.MinEnergy() > bestE*(1+1e-6) {
		t.Errorf("golden section missed minimum: %g vs grid %g", pb.MinEnergy(), bestE)
	}
}

func TestMatMulStrassenOptimum(t *testing.T) {
	pb := testMatMul()
	pb.Omega = bounds.OmegaStrassen
	m0 := pb.OptimalMemory()
	if pb.Energy(m0*1.02) < pb.Energy(m0) || pb.Energy(m0/1.02) < pb.Energy(m0) {
		t.Errorf("Strassen M*=%g is not a minimum", m0)
	}
	// Strassen does fewer flops, so its minimum energy is lower.
	classical := testMatMul()
	if pb.MinEnergy() >= classical.MinEnergy() {
		t.Errorf("Strassen E* %g should beat classical %g", pb.MinEnergy(), classical.MinEnergy())
	}
}

func TestMatMulTimeScalesWithP(t *testing.T) {
	pb := testMatMul()
	mem := pb.N * pb.N / 64
	if !approx(pb.Time(128, mem), pb.Time(64, mem)/2, 1e-12) {
		t.Error("matmul model time must scale 1/p")
	}
}

func TestMatMulPBounds(t *testing.T) {
	pb := testMatMul()
	mem := 1 << 20
	if !approx(pb.PMax(float64(mem)), bounds.MatMulPMax(pb.N, float64(mem)), 1e-12) {
		t.Error("PMax mismatch with bounds package")
	}
	if !approx(pb.PMin(float64(mem)), bounds.MatMulPMin(pb.N, float64(mem)), 1e-12) {
		t.Error("PMin mismatch with bounds package")
	}
}

func TestMatMulMinEnergyGivenTime(t *testing.T) {
	pb := testMatMul()
	// Generous: global optimum.
	cfgG, eG, err := pb.MinEnergyGivenTime(1e15)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(eG, pb.MinEnergy(), 1e-9) {
		t.Errorf("generous budget energy %g vs E* %g", eG, pb.MinEnergy())
	}
	if got := pb.Time(cfgG.P, cfgG.Mem); got > 1e15 {
		t.Error("generous deadline missed")
	}
	// Tight: budget one tenth of the fastest time at the optimum memory.
	tight := pb.minTimeAtMem(pb.OptimalMemory()) / 10
	cfgT, eT, err := pb.MinEnergyGivenTime(tight)
	if err != nil {
		t.Fatal(err)
	}
	if got := pb.Time(cfgT.P, cfgT.Mem); got > tight*(1+1e-6) {
		t.Errorf("tight deadline missed: %g > %g", got, tight)
	}
	if eT < eG {
		t.Errorf("tight-budget energy %g below unconstrained %g", eT, eG)
	}
	if cfgT.Mem >= pb.OptimalMemory() {
		t.Errorf("tight budget should force memory below optimum: %g", cfgT.Mem)
	}
	// Impossible.
	if _, _, err := pb.MinEnergyGivenTime(0); !errors.Is(err, ErrInfeasible) {
		t.Error("zero deadline should be infeasible")
	}
}

func TestMatMulMinTimeGivenEnergy(t *testing.T) {
	pb := testMatMul()
	budget := pb.MinEnergy() * 1.2
	cfg, tt, err := pb.MinTimeGivenEnergy(budget)
	if err != nil {
		t.Fatal(err)
	}
	if got := pb.Energy(cfg.Mem); got > budget*(1+1e-9) {
		t.Errorf("budget exceeded: %g > %g", got, budget)
	}
	if !approx(tt, pb.Time(cfg.P, cfg.Mem), 1e-12) {
		t.Error("returned time inconsistent")
	}
	// The run sits at the replication limit p = PMax(M).
	if !approx(cfg.P, pb.PMax(cfg.Mem), 1e-9) {
		t.Error("min-time run should use the full replication range")
	}
	// Smaller budget => slower (or infeasible).
	_, t2, err := pb.MinTimeGivenEnergy(pb.MinEnergy() * 1.01)
	if err != nil {
		t.Fatal(err)
	}
	if t2 < tt {
		t.Errorf("smaller budget should not be faster: %g < %g", t2, tt)
	}
	if _, _, err := pb.MinTimeGivenEnergy(pb.MinEnergy() * 0.9); !errors.Is(err, ErrInfeasible) {
		t.Error("budget below E* should be infeasible")
	}
}

func TestMatMulProcPowerMatchesDefinition(t *testing.T) {
	pb := testMatMul()
	mem := 1 << 22
	want := pb.ProcPower(float64(mem))
	// Cross-check against E/(T·p) via the core model.
	p := 64.0
	e := pb.Energy(float64(mem))
	tt := pb.Time(p, float64(mem))
	if got := e / (tt * p); !approx(got, want, 1e-9) {
		t.Errorf("ProcPower: formula %g vs E/(T·p) %g", want, got)
	}
}

func TestMatMulTotalPowerBound(t *testing.T) {
	pb := testMatMul()
	mem := 1 << 22
	p1 := pb.ProcPower(float64(mem))
	if got := pb.MaxProcsGivenTotalPower(10*p1, float64(mem)); !approx(got, 10, 1e-12) {
		t.Errorf("got %g want 10", got)
	}
}

func TestMatMulEfficiencyPositive(t *testing.T) {
	pb := testMatMul()
	if eff := pb.Efficiency(); eff <= 0 || math.IsInf(eff, 0) || math.IsNaN(eff) {
		t.Errorf("efficiency %g", eff)
	}
}

func TestFig4Grid(t *testing.T) {
	pb := testNBody()
	g := NBodyRegionGrid(pb, 6, 100, 40, 30)
	if len(g.Cells) != 40*30 {
		t.Fatalf("cells: %d", len(g.Cells))
	}
	if g.CountFeasible() == 0 {
		t.Fatal("no feasible cells sampled")
	}
	if !approx(g.M0, pb.OptimalMemory(), 1e-12) || !approx(g.EStar, pb.MinEnergy(), 1e-12) {
		t.Error("grid metadata wrong")
	}
	// Feasibility matches the bounds predicate; energy is p-independent
	// along each feasible row.
	rowEnergy := map[float64]float64{}
	m0Rows := map[float64]bool{}
	for _, c := range g.Cells {
		if want := bounds.InNBodyScalingRange(pb.N, c.P, c.Mem); c.Feasible != want {
			t.Fatalf("feasibility mismatch at p=%g M=%g", c.P, c.Mem)
		}
		if !c.Feasible {
			continue
		}
		if prev, ok := rowEnergy[c.Mem]; ok && !approx(prev, c.Energy, 1e-12) {
			t.Fatalf("energy varies along p at M=%g", c.Mem)
		}
		rowEnergy[c.Mem] = c.Energy
		if c.OnMinEnergyLine {
			m0Rows[c.Mem] = true
		}
		if c.TotalPower <= 0 || c.ProcPower <= 0 {
			t.Fatalf("degenerate powers at p=%g M=%g", c.P, c.Mem)
		}
	}
	if len(m0Rows) != 1 {
		t.Errorf("exactly one memory row should carry the min-energy line, got %d", len(m0Rows))
	}
	// The minimum over sampled rows is achieved on (or adjacent to) the M0 row.
	var m0RowMem float64
	for mem := range m0Rows {
		m0RowMem = mem
	}
	for mem, e := range rowEnergy {
		if e < rowEnergy[m0RowMem]*(1-1e-9) {
			// Allow grid discretization: the better row must be adjacent to M0.
			if math.Abs(math.Log(mem/g.M0)) > 0.2 {
				t.Errorf("row M=%g has lower energy than the flagged M0 row", mem)
			}
		}
	}
}

func TestBudgetsClassify(t *testing.T) {
	b := Budgets{EnergyMax: 10, ProcPowerMax: 2, TimeMax: 5, TotalPowMax: 100}
	feasible := Fig4Cell{Feasible: true, Energy: 9, Time: 6, ProcPower: 1, TotalPower: 150}
	f := b.Classify(feasible)
	if !f.WithinEnergy || !f.WithinProcPower || f.WithinTime || f.WithinTotalPow {
		t.Errorf("flags: %+v", f)
	}
	infeasible := Fig4Cell{Feasible: false, Energy: 1, Time: 1}
	if got := b.Classify(infeasible); got != (RegionFlags{}) {
		t.Error("infeasible cells must classify to all-false")
	}
}

func TestFig4TimeDecreasesRightAndUp(t *testing.T) {
	// Figure 4(a): "runtime is decreased by moving to the right or up".
	pb := testNBody()
	g := NBodyRegionGrid(pb, 6, 100, 20, 20)
	cellAt := func(pi, mi int) Fig4Cell { return g.Cells[mi*len(g.PValues)+pi] }
	for mi := 0; mi < 20; mi++ {
		for pi := 1; pi < 20; pi++ {
			a, b := cellAt(pi-1, mi), cellAt(pi, mi)
			if a.Feasible && b.Feasible && b.Time >= a.Time {
				t.Fatalf("time should fall moving right: p %g->%g", a.P, b.P)
			}
		}
	}
	for pi := 0; pi < 20; pi++ {
		for mi := 1; mi < 20; mi++ {
			a, b := cellAt(pi, mi-1), cellAt(pi, mi)
			if a.Feasible && b.Feasible && b.Time >= a.Time {
				t.Fatalf("time should fall moving up in memory: M %g->%g", a.Mem, b.Mem)
			}
		}
	}
}

func TestMatMulRegionGrid(t *testing.T) {
	pb := testMatMul()
	g := MatMulRegionGrid(pb, 64, 1<<16, 32, 24)
	if g.CountFeasible() == 0 {
		t.Fatal("no feasible cells")
	}
	if !approx(g.MStar, pb.OptimalMemory(), 1e-12) {
		t.Error("grid metadata wrong")
	}
	nP := len(g.PValues)
	for mi, mem := range g.MemValues {
		for pi, p := range g.PValues {
			c := g.Cells[mi*nP+pi]
			wantFeasible := mem >= pb.N*pb.N/p && mem <= pb.N*pb.N/math.Pow(p, 2.0/3.0)
			if c.Feasible != wantFeasible {
				t.Fatalf("feasibility mismatch at p=%g M=%g", p, mem)
			}
			if c.Feasible && c.Time <= 0 {
				t.Fatalf("degenerate cell at p=%g M=%g", p, mem)
			}
		}
	}
	// Energy constant along each feasible row (p-independence).
	for mi := range g.MemValues {
		var e float64
		for pi := range g.PValues {
			c := g.Cells[mi*nP+pi]
			if !c.Feasible {
				continue
			}
			if e == 0 {
				e = c.Energy
			} else if !approx(c.Energy, e, 1e-12) {
				t.Fatal("energy varies along p inside the matmul region")
			}
		}
	}
}
