package opt

import (
	"errors"
	"math"
	"testing"
)

func TestMinAvgPowerUses1DLimit(t *testing.T) {
	pb := testNBody()
	cfg, pw := pb.MinAvgPowerConfig()
	// The returned configuration sits on the 1D limit p = n/M.
	if !approx(cfg.P, pb.N/cfg.Mem, 1e-9) {
		t.Errorf("power-optimal run should use p = n/M: p=%g M=%g", cfg.P, cfg.Mem)
	}
	// The reported power matches E/T there.
	if !approx(pw, pb.AvgPower(cfg.P, cfg.Mem), 1e-9) {
		t.Errorf("reported power inconsistent: %g vs %g", pw, pb.AvgPower(cfg.P, cfg.Mem))
	}
	// No sampled feasible configuration beats it.
	for _, mem := range []float64{cfg.Mem / 4, cfg.Mem / 2, cfg.Mem * 2, cfg.Mem * 4} {
		for _, mult := range []float64{1, 2, 8} {
			p := pb.N / mem * mult
			if p > pb.N*pb.N/(mem*mem) {
				continue // outside the 2D limit
			}
			if got := pb.AvgPower(p, mem); got < pw*(1-1e-9) {
				t.Errorf("found lower power %g at p=%g M=%g than optimum %g", got, p, mem, pw)
			}
		}
	}
}

func TestMinAvgPowerVsMinEnergyDiffer(t *testing.T) {
	// Minimum power and minimum energy are different objectives: the
	// power-optimal run is on the 1D limit; the energy optimum allows a
	// whole range of p at M0.
	pb := testNBody()
	cfg, _ := pb.MinAvgPowerConfig()
	eAtPowerOpt := pb.Energy(cfg.Mem)
	if eAtPowerOpt < pb.MinEnergy() {
		t.Errorf("power-optimal energy %g cannot beat E* %g", eAtPowerOpt, pb.MinEnergy())
	}
}

func TestAvgPowerGrowsWithP(t *testing.T) {
	pb := testNBody()
	mem := pb.OptimalMemory()
	p1 := pb.AvgPower(10, mem)
	p2 := pb.AvgPower(20, mem)
	if p2 <= p1 {
		t.Errorf("average power should grow with p at fixed M: %g -> %g", p1, p2)
	}
	if !approx(p2, 2*p1, 1e-9) {
		t.Errorf("E const and T ∝ 1/p means power ∝ p: %g vs 2·%g", p2, p1)
	}
}

func TestMatMulMemRangeGivenProcPower(t *testing.T) {
	pb := testMatMul()
	// Find the power-minimizing memory and set a cap 30% above it.
	mMin, pMin := MinimizeUnimodal(pb.ProcPower, 1, pb.N*pb.N)
	cap := pMin * 1.3
	lo, hi, err := pb.MemRangeGivenProcPower(cap)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < mMin && mMin < hi) {
		t.Errorf("power-minimizing memory %g should lie inside [%g, %g]", mMin, lo, hi)
	}
	// Just inside: under cap. Just outside: over cap (when interior).
	if pb.ProcPower(lo*1.01) > cap*(1+1e-9) || pb.ProcPower(hi*0.99) > cap*(1+1e-9) {
		t.Error("interior of the returned range violates the cap")
	}
	if lo > 1.5 && pb.ProcPower(lo*0.9) < cap {
		t.Error("left of the range should violate the cap")
	}
	if hi < pb.N*pb.N/2 && pb.ProcPower(hi*1.1) < cap {
		t.Error("right of the range should violate the cap")
	}
	// Impossible cap.
	if _, _, err := pb.MemRangeGivenProcPower(pMin * 0.5); !errors.Is(err, ErrInfeasible) {
		t.Error("cap below the minimum power should be infeasible")
	}
}

func TestMatMulMinEnergyGivenProcPower(t *testing.T) {
	pb := testMatMul()
	mStar := pb.OptimalMemory()
	// Generous cap: global optimum.
	mem, e, err := pb.MinEnergyGivenProcPower(pb.ProcPower(mStar) * 3)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mem, mStar, 1e-6) || !approx(e, pb.MinEnergy(), 1e-9) {
		t.Errorf("generous cap should give the global optimum: mem=%g e=%g", mem, e)
	}
	// Any returned configuration respects the cap.
	cap := pb.ProcPower(mStar) * 1.0001
	mem, e, err = pb.MinEnergyGivenProcPower(cap)
	if err != nil {
		t.Fatal(err)
	}
	if pb.ProcPower(mem) > cap*(1+1e-6) {
		t.Errorf("returned memory %g violates the cap", mem)
	}
	if e < pb.MinEnergy()*(1-1e-12) {
		t.Errorf("capped energy %g below global optimum", e)
	}
	_ = math.Pi
}
