package opt

import (
	"math"

	"perfscale/internal/core"
	"perfscale/internal/machine"
)

// MatMul poses the Section V optimization questions for classical matrix
// multiplication. The paper notes these have the same structure as the
// n-body answers but are "more complicated" analytically (√M appears with
// three different powers in Eq. 10), so this type solves them numerically
// against the closed-form energy Eq. 10; the n-body closed forms serve as
// the analytic cross-check of the method.
type MatMul struct {
	// M is the machine parameter set.
	M machine.Params
	// N is the matrix dimension.
	N float64
	// Omega is the algorithm exponent: 3 for classical, log2(7) for
	// Strassen. Zero means classical.
	Omega float64
}

func (pb MatMul) omega() float64 {
	if pb.Omega == 0 {
		return 3
	}
	return pb.Omega
}

// Energy returns the model energy at memory mem (Eq. 10 or 13), which is
// independent of p inside the replication range.
func (pb MatMul) Energy(mem float64) float64 {
	if pb.omega() == 3 {
		return core.MatMulEnergyClosedForm(pb.M, pb.N, mem)
	}
	return core.FastMatMulEnergyClosedForm(pb.M, pb.N, mem, pb.omega())
}

// Time returns the model runtime at (p, mem).
func (pb MatMul) Time(p, mem float64) float64 {
	w := pb.omega()
	nw := math.Pow(pb.N, w)
	return pb.M.GammaT*nw/p + pb.M.CommTimePerWord()*nw/(math.Pow(mem, w/2-1)*p)
}

// PMax returns the end of the perfect-scaling range for memory mem:
// p = n^ω/M^(ω/2).
func (pb MatMul) PMax(mem float64) float64 {
	return math.Pow(pb.N, pb.omega()) / math.Pow(mem, pb.omega()/2)
}

// PMin returns n²/M, the fewest processors that hold the input.
func (pb MatMul) PMin(mem float64) float64 { return pb.N * pb.N / mem }

// OptimalMemory returns the energy-minimizing memory (the matmul analogue
// of M0), found by golden-section search over the unimodal Eq. 10/13 curve.
func (pb MatMul) OptimalMemory() float64 {
	hi := math.Min(pb.M.MemWords, pb.N*pb.N)
	x, _ := MinimizeUnimodal(pb.Energy, 1, hi)
	return x
}

// MinEnergy returns the global minimum energy over memory.
func (pb MatMul) MinEnergy() float64 { return pb.Energy(pb.OptimalMemory()) }

// minTimeAtMem is the fastest runtime achievable with memory mem: run at
// the end of the scaling range, p = PMax(mem). Substituting p gives
// T = γt·M^(ω/2) + βt'·M (an increasing function of M: less memory admits
// more processors).
func (pb MatMul) minTimeAtMem(mem float64) float64 {
	return pb.Time(pb.PMax(mem), mem)
}

// MinEnergyGivenTime answers question 2 of the introduction for matmul:
// minimum energy with runtime ≤ tMax. Feasibility requires memory at or
// below the value where minTimeAtMem = tMax; the energy-optimal choice is
// the smaller of that cap and the unconstrained optimum.
func (pb MatMul) MinEnergyGivenTime(tMax float64) (Config, float64, error) {
	if tMax <= 0 {
		return Config{}, 0, ErrInfeasible
	}
	hi := math.Min(pb.M.MemWords, pb.N*pb.N)
	mCap, err := BisectIncreasing(pb.minTimeAtMem, 1, hi, tMax)
	if err != nil {
		// Even M=1 word cannot meet tMax in this model.
		return Config{}, 0, ErrInfeasible
	}
	mem := math.Min(mCap, pb.OptimalMemory())
	// Use the fewest processors that still meet the deadline (T ∝ 1/p).
	p := math.Min(pb.PMax(mem), pb.Time(1, mem)/tMax)
	p = math.Max(p, pb.PMin(mem))
	return Config{P: p, Mem: mem}, pb.Energy(mem), nil
}

// MinTimeGivenEnergy answers question 3: minimum runtime with energy ≤
// eMax. Runtime falls as memory shrinks (more processors fit in the
// scaling range), so the answer uses the smallest memory whose energy is
// within budget — the left edge of the feasible interval around the energy
// optimum.
func (pb MatMul) MinTimeGivenEnergy(eMax float64) (Config, float64, error) {
	mStar := pb.OptimalMemory()
	if pb.Energy(mStar) > eMax {
		return Config{}, 0, ErrInfeasible
	}
	// E is decreasing on [1, mStar]: find the smallest feasible memory by
	// bisecting the decreasing branch.
	lo, hi := 1.0, mStar
	if pb.Energy(lo) <= eMax {
		hi = lo
	}
	for i := 0; i < 200 && hi > lo*(1+1e-15); i++ {
		mid := math.Sqrt(lo * hi)
		if pb.Energy(mid) <= eMax {
			hi = mid
		} else {
			lo = mid
		}
	}
	mem := hi
	p := pb.PMax(mem)
	return Config{P: p, Mem: mem}, pb.Time(p, mem), nil
}

// ProcPower returns the per-processor average power at memory mem, the
// matmul analogue of §V.D; independent of p.
func (pb MatMul) ProcPower(mem float64) float64 {
	m := pb.M
	w := pb.omega()
	commPerFlop := 1 / math.Pow(mem, w/2-1) // W/F
	num := m.GammaE + (m.BetaE+m.AlphaE/m.MaxMsgWords)*commPerFlop
	den := m.GammaT + m.CommTimePerWord()*commPerFlop
	return num/den + m.DeltaE*mem + m.EpsilonE
}

// MaxProcsGivenTotalPower returns the processor bound implied by a total
// power budget at memory mem: p ≤ Ptot / P1(M).
func (pb MatMul) MaxProcsGivenTotalPower(pTot, mem float64) float64 {
	return pTot / pb.ProcPower(mem)
}

// Efficiency returns the best-case efficiency n^ω/E_min in GFLOPS/W — the
// §V.F metric for matmul. Unlike n-body it depends (weakly) on n because
// the optimal memory does.
func (pb MatMul) Efficiency() float64 {
	return math.Pow(pb.N, pb.omega()) / pb.MinEnergy() / 1e9
}
