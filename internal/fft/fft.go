// Package fft implements the fast Fourier transform: a serial radix-2
// implementation, a naive DFT reference, and a distributed six-step
// (transpose) FFT on the simulator whose single data exchange uses either
// the naive personalized all-to-all (W = n/p words, S = p messages) or the
// tree-based Bruck all-to-all (W = (n/p)·log p, S = log p) — the two cost
// points of the paper's Section IV FFT analysis.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"

	"perfscale/internal/sim"
)

// FlopsSerial is the standard operation-count model for a radix-2 complex
// FFT of size n: 5·n·log2(n) real floating-point operations.
func FlopsSerial(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// Serial computes the DFT of x in O(n log n) with an iterative radix-2
// decimation-in-time FFT. len(x) must be a power of two.
func Serial(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	y := make([]complex128, n)
	copy(y, x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return y
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			y[i], y[j] = y[j], y[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := y[start+k]
				b := y[start+k+half] * w
				y[start+k] = a + b
				y[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return y
}

// DFT computes the discrete Fourier transform directly in O(n²) — the
// verification oracle for everything else in this package.
func DFT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		y[k] = s
	}
	return y
}

// RandomSignal returns n deterministic pseudo-random complex samples.
func RandomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// MaxAbsDiff returns max_k |a[k]−b[k]|.
func MaxAbsDiff(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("fft: length mismatch")
	}
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// RunResult bundles the transform with the simulation statistics.
type RunResult struct {
	Y   []complex128
	Sim *sim.Result
}

// Distributed computes the DFT of x on p ranks with the six-step
// (transpose) algorithm: factor n = n1·n2 with p | n1 and p | n2; rank r
// owns n1/p rows of the n1×n2 view. Phase 1 runs local size-n2 FFTs and the
// twiddle scaling; the single all-to-all re-buckets columns; phase 2 runs
// local size-n1 FFTs. With tree=false the exchange is the naive
// personalized all-to-all (S = p−1); with tree=true it is the Bruck
// algorithm (S = ⌈log2 p⌉, log p times the words) — the paper's two FFT
// variants.
func Distributed(cost sim.Cost, p int, x []complex128, tree bool) (*RunResult, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d must be a power of two", n)
	}
	n1, n2, err := factor(n, p)
	if err != nil {
		return nil, err
	}
	rowsPer := n1 / p
	colsPer := n2 / p

	results := make([][]complex128, p)
	res, err := sim.Run(p, cost, func(r *sim.Rank) error {
		world := r.World()
		me := r.ID()
		r.Alloc(2 * rowsPer * n2 * 2) // input rows + workspace, complex = 2 words

		// Phase 1: for each owned row j1, FFT over j2 plus twiddles.
		r.Phase("row-fft")
		rows := make([][]complex128, rowsPer)
		for ri := 0; ri < rowsPer; ri++ {
			j1 := me*rowsPer + ri
			row := make([]complex128, n2)
			for j2 := 0; j2 < n2; j2++ {
				row[j2] = x[j1+n1*j2]
			}
			row = Serial(row)
			r.Compute(FlopsSerial(n2))
			for k2 := 0; k2 < n2; k2++ {
				angle := -2 * math.Pi * float64(j1) * float64(k2) / float64(n)
				row[k2] *= cmplx.Exp(complex(0, angle))
			}
			r.Compute(6 * float64(n2)) // one complex multiply per element
			rows[ri] = row
		}

		// Exchange: rank t needs columns [t·colsPer, (t+1)·colsPer) of all
		// rows. Pack per-target blocks, run the all-to-all, unpack.
		r.Phase("all-to-all")
		blockLen := rowsPer * colsPer * 2
		sendBuf := make([]float64, p*blockLen)
		for t := 0; t < p; t++ {
			o := t * blockLen
			for ri := 0; ri < rowsPer; ri++ {
				for ci := 0; ci < colsPer; ci++ {
					v := rows[ri][t*colsPer+ci]
					sendBuf[o] = real(v)
					sendBuf[o+1] = imag(v)
					o += 2
				}
			}
		}
		var recvBuf []float64
		if tree {
			recvBuf = world.AllToAllTree(sendBuf)
		} else {
			recvBuf = world.AllToAll(sendBuf)
		}

		// Phase 2: for each owned column k2, gather B[·][k2], FFT over j1.
		r.Phase("col-fft")
		out := make([]complex128, colsPer*n1)
		for ci := 0; ci < colsPer; ci++ {
			col := make([]complex128, n1)
			for src := 0; src < p; src++ {
				o := src*blockLen + ci*2
				for ri := 0; ri < rowsPer; ri++ {
					idx := o + ri*colsPer*2
					col[src*rowsPer+ri] = complex(recvBuf[idx], recvBuf[idx+1])
				}
			}
			col = Serial(col)
			r.Compute(FlopsSerial(n1))
			copy(out[ci*n1:(ci+1)*n1], col)
		}
		results[me] = out
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Reassemble: rank r's column k2 FFT yields y[k2 + n2·k1].
	y := make([]complex128, n)
	for rank, out := range results {
		for ci := 0; ci < colsPer; ci++ {
			k2 := rank*colsPer + ci
			for k1 := 0; k1 < n1; k1++ {
				y[k2+n2*k1] = out[ci*n1+k1]
			}
		}
	}
	return &RunResult{Y: y, Sim: res}, nil
}

// factor splits n into n1·n2, both powers of two divisible by p, as square
// as possible.
func factor(n, p int) (n1, n2 int, err error) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, 0, fmt.Errorf("fft: rank count %d must be a power of two", p)
	}
	best := -1
	for a := 1; a <= n; a <<= 1 {
		b := n / a
		if a*b != n {
			continue
		}
		if a%p == 0 && b%p == 0 {
			if best == -1 || absInt(a-b) < best {
				best = absInt(a - b)
				n1, n2 = a, b
			}
		}
	}
	if best == -1 {
		return 0, 0, fmt.Errorf("fft: cannot factor n=%d into n1·n2 with p=%d dividing both (need n ≥ p²)", n, p)
	}
	return n1, n2, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// InverseSerial computes the inverse DFT of y: x with DFT(x) = y.
// len(y) must be a power of two.
func InverseSerial(y []complex128) []complex128 {
	n := len(y)
	if n == 0 {
		return nil
	}
	// IFFT via conjugation: x = conj(FFT(conj(y)))/n.
	tmp := make([]complex128, n)
	for i, v := range y {
		tmp[i] = cmplx.Conj(v)
	}
	tmp = Serial(tmp)
	scale := complex(1/float64(n), 0)
	for i, v := range tmp {
		tmp[i] = cmplx.Conj(v) * scale
	}
	return tmp
}

// Convolve returns the circular convolution of a and b via the FFT:
// (a ⊛ b)[k] = Σ_j a[j]·b[(k−j) mod n]. Both inputs must share a
// power-of-two length.
func Convolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("fft: convolution operands must share a length")
	}
	fa := Serial(a)
	fb := Serial(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	return InverseSerial(fa)
}

// DistributedInverse computes the inverse DFT on p ranks by conjugation
// around the forward distributed transform: the same communication profile
// as Distributed.
func DistributedInverse(cost sim.Cost, p int, y []complex128, tree bool) (*RunResult, error) {
	n := len(y)
	conj := make([]complex128, n)
	for i, v := range y {
		conj[i] = cmplx.Conj(v)
	}
	res, err := Distributed(cost, p, conj, tree)
	if err != nil {
		return nil, err
	}
	scale := complex(1/float64(n), 0)
	for i, v := range res.Y {
		res.Y[i] = cmplx.Conj(v) * scale
	}
	return res, nil
}
