package fft

import "testing"

func benchmarkSerial(b *testing.B, n int) {
	x := RandomSignal(n, 1)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Serial(x)
	}
}

func BenchmarkSerial1k(b *testing.B)  { benchmarkSerial(b, 1<<10) }
func BenchmarkSerial64k(b *testing.B) { benchmarkSerial(b, 1<<16) }

func BenchmarkConvolve4k(b *testing.B) {
	x := RandomSignal(1<<12, 1)
	y := RandomSignal(1<<12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Convolve(x, y)
	}
}
