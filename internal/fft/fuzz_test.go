package fft

import (
	"math"
	"testing"
)

// FuzzSerialInverseRoundTrip: for any power-of-two size and seed, the
// inverse transform must recover the input and Parseval must hold.
func FuzzSerialInverseRoundTrip(f *testing.F) {
	f.Add(uint8(3), int64(1))
	f.Add(uint8(0), int64(2))
	f.Add(uint8(8), int64(3))
	f.Fuzz(func(t *testing.T, logN uint8, seed int64) {
		n := 1 << (int(logN) % 11) // up to 1024
		x := RandomSignal(n, seed)
		y := Serial(x)
		back := InverseSerial(y)
		if d := MaxAbsDiff(back, x); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: round trip diff %g", n, d)
		}
		var ex, ey float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		if ex > 0 && math.Abs(ex-ey/float64(n)) > 1e-8*ex {
			t.Fatalf("n=%d: Parseval violated: %g vs %g", n, ex, ey/float64(n))
		}
	})
}
