package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"perfscale/internal/sim"
)

var zeroCost = sim.Cost{}

func TestSerialMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := RandomSignal(n, int64(n))
		want := DFT(x)
		got := Serial(x)
		if d := MaxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: max diff %g", n, d)
		}
	}
}

func TestSerialKnownValues(t *testing.T) {
	// FFT of a constant signal: delta at k=0 scaled by n.
	x := []complex128{1, 1, 1, 1}
	y := Serial(x)
	if cmplx.Abs(y[0]-4) > 1e-12 {
		t.Errorf("y[0] = %v, want 4", y[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(y[k]) > 1e-12 {
			t.Errorf("y[%d] = %v, want 0", k, y[k])
		}
	}
	// FFT of a delta: all-ones spectrum.
	x = []complex128{1, 0, 0, 0}
	y = Serial(x)
	for k := 0; k < 4; k++ {
		if cmplx.Abs(y[k]-1) > 1e-12 {
			t.Errorf("delta: y[%d] = %v, want 1", k, y[k])
		}
	}
}

func TestSerialParseval(t *testing.T) {
	// Σ|x|² = (1/n)·Σ|y|².
	n := 128
	x := RandomSignal(n, 5)
	y := Serial(x)
	var ex, ey float64
	for i := range x {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	if math.Abs(ex-ey/float64(n)) > 1e-8*ex {
		t.Errorf("Parseval violated: %g vs %g", ex, ey/float64(n))
	}
}

func TestSerialPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=3 should panic")
		}
	}()
	Serial(make([]complex128, 3))
}

func TestSerialEmpty(t *testing.T) {
	if got := Serial(nil); got != nil {
		t.Error("empty input should give nil")
	}
}

func TestFlopsSerial(t *testing.T) {
	if FlopsSerial(1) != 0 {
		t.Error("n=1 is free")
	}
	if got := FlopsSerial(8); got != 120 {
		t.Errorf("FlopsSerial(8) = %g, want 5·8·3 = 120", got)
	}
}

func TestFactor(t *testing.T) {
	n1, n2, err := factor(256, 4)
	if err != nil || n1 != 16 || n2 != 16 {
		t.Errorf("factor(256,4) = (%d,%d,%v)", n1, n2, err)
	}
	n1, n2, err = factor(512, 4)
	if err != nil || n1*n2 != 512 || n1%4 != 0 || n2%4 != 0 {
		t.Errorf("factor(512,4) = (%d,%d,%v)", n1, n2, err)
	}
	if _, _, err := factor(8, 4); err == nil {
		t.Error("n=8 p=4 (n < p²) should fail")
	}
	if _, _, err := factor(64, 3); err == nil {
		t.Error("non-power-of-two p should fail")
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		tree bool
	}{
		{16, 1, false},
		{16, 2, false},
		{64, 4, false},
		{64, 4, true},
		{256, 8, false},
		{256, 8, true},
		{256, 16, true},
		{512, 4, false},
	} {
		x := RandomSignal(tc.n, int64(tc.n+tc.p))
		want := Serial(x)
		got, err := Distributed(zeroCost, tc.p, x, tc.tree)
		if err != nil {
			t.Fatalf("n=%d p=%d tree=%v: %v", tc.n, tc.p, tc.tree, err)
		}
		if d := MaxAbsDiff(got.Y, want); d > 1e-7*float64(tc.n) {
			t.Errorf("n=%d p=%d tree=%v: max diff %g", tc.n, tc.p, tc.tree, d)
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	x := RandomSignal(24, 1)
	if _, err := Distributed(zeroCost, 2, x, false); err == nil {
		t.Error("non-power-of-two length should be rejected")
	}
	x = RandomSignal(8, 1)
	if _, err := Distributed(zeroCost, 4, x, false); err == nil {
		t.Error("n < p² should be rejected")
	}
	x = RandomSignal(64, 1)
	if _, err := Distributed(zeroCost, 3, x, false); err == nil {
		t.Error("non-power-of-two p should be rejected")
	}
}

func TestNaiveVsTreeCostTradeoff(t *testing.T) {
	// The experiment of Section IV: naive all-to-all sends p−1 messages and
	// n/p (complex) words; the tree variant sends log2 p messages and
	// (n/p)·log2(p)/2·... more words.
	const n, p = 1024, 16
	x := RandomSignal(n, 3)
	naive, err := Distributed(zeroCost, p, x, false)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Distributed(zeroCost, p, x, true)
	if err != nil {
		t.Fatal(err)
	}
	nm := naive.Sim.MaxStats().MsgsSent
	tm := tree.Sim.MaxStats().MsgsSent
	if nm != p-1 {
		t.Errorf("naive messages: got %g want %d", nm, p-1)
	}
	if tm != 4 {
		t.Errorf("tree messages: got %g want log2(16) = 4", tm)
	}
	nw := naive.Sim.MaxStats().WordsSent
	tw := tree.Sim.MaxStats().WordsSent
	if tw <= nw {
		t.Errorf("tree should move more words: %g vs %g", tw, nw)
	}
	// Naive words: (p−1)/p of the local 2·n/p float words.
	wantNaive := float64(2 * n / p * (p - 1) / p)
	if nw != wantNaive {
		t.Errorf("naive words: got %g want %g", nw, wantNaive)
	}
}

func TestLatencyCrossover(t *testing.T) {
	// With latency-dominated costs the tree wins; with bandwidth-dominated
	// costs the naive all-to-all wins. This is the αt/βt crossover the
	// model predicts.
	const n, p = 1024, 16
	x := RandomSignal(n, 7)
	latency := sim.Cost{AlphaT: 1, BetaT: 1e-9}
	band := sim.Cost{AlphaT: 1e-9, BetaT: 1}
	nl, err := Distributed(latency, p, x, false)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Distributed(latency, p, x, true)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Sim.Time() >= nl.Sim.Time() {
		t.Errorf("latency regime: tree %g should beat naive %g", tl.Sim.Time(), nl.Sim.Time())
	}
	nb, err := Distributed(band, p, x, false)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Distributed(band, p, x, true)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Sim.Time() >= tb.Sim.Time() {
		t.Errorf("bandwidth regime: naive %g should beat tree %g", nb.Sim.Time(), tb.Sim.Time())
	}
}

func TestDistributedFlopBalance(t *testing.T) {
	const n, p = 256, 4
	x := RandomSignal(n, 9)
	res, err := Distributed(zeroCost, p, x, false)
	if err != nil {
		t.Fatal(err)
	}
	// Total ≈ 2 passes of n-point FFT work + twiddles: within 2x of
	// 5n·log2(n).
	total := res.Sim.TotalStats().Flops
	model := FlopsSerial(n)
	if total < model || total > 2.5*model {
		t.Errorf("total flops %g outside [%g, %g]", total, model, 2.5*model)
	}
	maxF := res.Sim.MaxStats().Flops
	if maxF > 1.01*total/p {
		t.Errorf("flops imbalanced: max %g avg %g", maxF, total/p)
	}
}

func TestInverseSerialRoundTrip(t *testing.T) {
	for _, n := range []int{1, 4, 64, 256} {
		x := RandomSignal(n, int64(n)+77)
		back := InverseSerial(Serial(x))
		if d := MaxAbsDiff(back, x); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip diff %g", n, d)
		}
	}
	if got := InverseSerial(nil); got != nil {
		t.Error("empty inverse should be nil")
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	const n = 32
	a := RandomSignal(n, 81)
	b := RandomSignal(n, 82)
	got := Convolve(a, b)
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			want[k] += a[j] * b[(k-j+n)%n]
		}
	}
	if d := MaxAbsDiff(got, want); d > 1e-10*n {
		t.Errorf("convolution diff %g", d)
	}
}

func TestConvolveDeltaIsIdentity(t *testing.T) {
	const n = 16
	a := RandomSignal(n, 83)
	delta := make([]complex128, n)
	delta[0] = 1
	got := Convolve(a, delta)
	if d := MaxAbsDiff(got, a); d > 1e-11*n {
		t.Errorf("a ⊛ δ should be a: diff %g", d)
	}
}

func TestConvolveLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Convolve(make([]complex128, 4), make([]complex128, 8))
}

func TestDistributedInverseRoundTrip(t *testing.T) {
	const n, p = 256, 4
	x := RandomSignal(n, 99)
	fwd, err := Distributed(zeroCost, p, x, false)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DistributedInverse(zeroCost, p, fwd.Y, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(back.Y, x); d > 1e-9*float64(n) {
		t.Errorf("distributed round trip diff %g", d)
	}
	// Same communication profile as the forward transform.
	if back.Sim.MaxStats().MsgsSent != 2 { // log2(4) with tree
		t.Errorf("inverse messages: %g", back.Sim.MaxStats().MsgsSent)
	}
}
