package analytics

import (
	"fmt"
	"io"
	"math"
)

// DiffOptions parameterizes the divide operator.
type DiffOptions struct {
	// ExpectedRatio is the predicted per-phase time ratio span(B)/span(A):
	// pA/pB (i.e. 1/k) for a perfect-strong-scaling comparison at k× the
	// processors, 1 for a same-configuration comparison (two commits, or a
	// clean run against a degraded one). Zero defaults to 1.
	ExpectedRatio float64
	// Tolerance bounds the acceptable deviation of measured/expected: a
	// phase is flagged when its deviation leaves [1/(1+tol), 1+tol]. Zero
	// defaults to 0.25 — scaling bands, not bit-equality.
	Tolerance float64
	// ShareFloor suppresses flags on phases whose time share is below this
	// fraction on both sides: a 0.1% phase running 3x slow is noise, not a
	// bottleneck. Zero defaults to 0.02.
	ShareFloor float64
	// PlateauP optionally carries the predicted perfect-scaling plateau
	// endpoint p* for the configuration under comparison, and PlateauBound
	// the name of the memory-independent bound that binds past it (see
	// internal/bounds). When side B sits past p*, the report's Wall line
	// names the wall, so a sub-1 efficiency is attributed to the lower
	// bound rather than read as an implementation regression. Zero leaves
	// the annotation off.
	PlateauP     float64
	PlateauBound string
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.ExpectedRatio == 0 {
		o.ExpectedRatio = 1
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.25
	}
	if o.ShareFloor == 0 {
		o.ShareFloor = 0.02
	}
	return o
}

// PhaseDiff is one phase's row of a profile division.
type PhaseDiff struct {
	Name string `json:"name"`
	// SpanA and SpanB are the phase makespans (Span.Max) on each side;
	// zero when the phase exists only on the other side.
	SpanA float64 `json:"span_a_s"`
	SpanB float64 `json:"span_b_s"`
	// Ratio is SpanB/SpanA (Inf for phases new in B), Expected the
	// predicted ratio, and Deviation = Ratio/Expected — 1 means the phase
	// scaled exactly as the model says.
	Ratio     float64 `json:"ratio"`
	Expected  float64 `json:"expected"`
	Deviation float64 `json:"deviation"`
	// Efficiency is Expected/Ratio, the per-phase scaling efficiency
	// (1 = on prediction, <1 = this phase stopped scaling).
	Efficiency float64 `json:"efficiency"`
	// ExcessS is SpanB − SpanA·Expected: the absolute virtual seconds this
	// phase costs beyond prediction. The bottleneck is the max-excess
	// flagged phase.
	ExcessS float64 `json:"excess_s"`
	// EnergyA/B are the phase's machine-wide energy on each side.
	EnergyA float64 `json:"energy_a_j"`
	EnergyB float64 `json:"energy_b_j"`
	// ShareA/B are the phase's time share of each run.
	ShareA float64 `json:"share_a"`
	ShareB float64 `json:"share_b"`
	// Flagged marks a deviation beyond tolerance on a phase above the
	// share floor.
	Flagged bool `json:"flagged"`
}

// DiffReport is the result of dividing profile B by profile A.
type DiffReport struct {
	A, B *PhaseProfile `json:"-"`
	// Label summarizes the two sides ("p=16 -> p=64").
	Label string `json:"label"`
	// TotalRatio is T(B)/T(A); Expected the predicted ratio; Efficiency
	// Expected/TotalRatio for the whole run.
	TotalRatio float64 `json:"total_ratio"`
	Expected   float64 `json:"expected"`
	Efficiency float64 `json:"efficiency"`
	// EnergyRatio is E(B)/E(A) — ≈1 inside the paper's perfect-scaling
	// region regardless of p.
	EnergyRatio float64     `json:"energy_ratio"`
	Phases      []PhaseDiff `json:"phases"`
	// Bottleneck names the flagged phase with the largest excess time; ""
	// when no phase is flagged.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Wall explains an expected efficiency loss: when side B's processor
	// count lies past the predicted perfect-scaling plateau end
	// (DiffOptions.PlateauP), it names the memory-independent bound that
	// binds there.
	Wall string `json:"wall,omitempty"`
}

// Diff divides profile b by profile a, phase by phase: the Hatchet-style
// divide operator specialized to scaling analysis. Phases are matched by
// name; a phase present on only one side gets a one-sided row (flagged
// when its share clears the floor — a phase that appeared or vanished is
// itself a scaling signal).
func Diff(a, b *PhaseProfile, opt DiffOptions) *DiffReport {
	opt = opt.withDefaults()
	rep := &DiffReport{
		A: a, B: b,
		Label:    fmt.Sprintf("p=%d -> p=%d", a.P, b.P),
		Expected: opt.ExpectedRatio,
	}
	if a.T > 0 {
		rep.TotalRatio = b.T / a.T
		rep.Efficiency = opt.ExpectedRatio / rep.TotalRatio
	}
	if ea := a.Energy.Total(); ea > 0 {
		rep.EnergyRatio = b.Energy.Total() / ea
	}
	if opt.PlateauP > 0 && float64(b.P) >= opt.PlateauP*(1-1e-12) {
		rep.Wall = fmt.Sprintf(
			"p=%d is at or past the perfect-scaling plateau end p* = %.4g: the %s bound binds — hit the memory-independent wall",
			b.P, opt.PlateauP, opt.PlateauBound)
	}

	lo, hi := 1/(1+opt.Tolerance), 1+opt.Tolerance
	seen := map[string]bool{}
	worstExcess := 0.0
	add := func(pa, pb *PhaseStats, name string) {
		d := PhaseDiff{Name: name, Expected: opt.ExpectedRatio}
		if pa != nil {
			d.SpanA = pa.Span.Max
			d.EnergyA = pa.Energy.Total()
			d.ShareA = pa.TimeShare(a.T)
		}
		if pb != nil {
			d.SpanB = pb.Span.Max
			d.EnergyB = pb.Energy.Total()
			d.ShareB = pb.TimeShare(b.T)
		}
		switch {
		case pa == nil || d.SpanA == 0:
			d.Ratio = math.Inf(1)
			d.Deviation = math.Inf(1)
			d.Efficiency = 0
		default:
			d.Ratio = d.SpanB / d.SpanA
			d.Deviation = d.Ratio / d.Expected
			if d.Ratio > 0 {
				d.Efficiency = d.Expected / d.Ratio
			}
		}
		d.ExcessS = d.SpanB - d.SpanA*d.Expected
		significant := d.ShareA >= opt.ShareFloor || d.ShareB >= opt.ShareFloor
		if significant && (d.Deviation < lo || d.Deviation > hi) {
			d.Flagged = true
			if d.ExcessS > worstExcess {
				worstExcess = d.ExcessS
				rep.Bottleneck = d.Name
			}
		}
		rep.Phases = append(rep.Phases, d)
	}
	for i := range a.Phases {
		pa := &a.Phases[i]
		seen[pa.Name] = true
		add(pa, b.Phase(pa.Name), pa.Name)
	}
	for i := range b.Phases {
		pb := &b.Phases[i]
		if !seen[pb.Name] {
			add(nil, pb, pb.Name)
		}
	}
	return rep
}

// WriteText renders the diff as an annotated table. Flagged phases carry a
// "<<" marker; the bottleneck line names the scaling culprit.
func (r *DiffReport) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("scaling diff %s: T %.6g s -> %.6g s (ratio %.4g, expected %.4g, efficiency %.3f)\n",
		r.Label, r.A.T, r.B.T, r.TotalRatio, r.Expected, r.Efficiency); err != nil {
		return err
	}
	if err := p("energy %.6g J -> %.6g J (ratio %.4g)\n", r.A.Energy.Total(), r.B.Energy.Total(), r.EnergyRatio); err != nil {
		return err
	}
	if err := p("%-16s %12s %12s %8s %8s %10s %9s\n",
		"phase", "span A (s)", "span B (s)", "ratio", "expect", "efficiency", "excess"); err != nil {
		return err
	}
	for _, d := range r.Phases {
		mark := ""
		if d.Flagged {
			mark = "  << off prediction"
			if d.Name == r.Bottleneck {
				mark = "  << BOTTLENECK"
			}
		}
		if err := p("%-16s %12.5g %12.5g %8.3g %8.3g %10.3f %+9.3g%s\n",
			d.Name, d.SpanA, d.SpanB, d.Ratio, d.Expected, d.Efficiency, d.ExcessS, mark); err != nil {
			return err
		}
	}
	if r.Bottleneck != "" {
		if err := p("scaling bottleneck: %s (%+.4g s beyond prediction)\n", r.Bottleneck, excessOf(r)); err != nil {
			return err
		}
	} else if err := p("all phases within tolerance of the predicted scaling\n"); err != nil {
		return err
	}
	if r.Wall != "" {
		return p("note: %s\n", r.Wall)
	}
	return nil
}

// excessOf returns the bottleneck phase's excess seconds.
func excessOf(r *DiffReport) float64 {
	for _, d := range r.Phases {
		if d.Name == r.Bottleneck {
			return d.ExcessS
		}
	}
	return 0
}
