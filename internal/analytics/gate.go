package analytics

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// DefaultGateTolerance is the relative slack the regression gate allows
// before a curve row counts as degraded. The curves are deterministic
// virtual-time quantities, so the tolerance absorbs intentional small
// model/constant adjustments between baseline updates, not measurement
// noise.
const DefaultGateTolerance = 0.02

// Regression is one scaling-gate failure: a curve row (or one of its
// phases) that degraded beyond tolerance relative to the baseline.
type Regression struct {
	// Key identifies the curve row (family/algorithm/runtime/n/p/c).
	Key string `json:"key"`
	// Field names the degraded quantity: "efficiency", "sim_time_s",
	// "phase:<name>" for a per-phase span, or "missing" when the row or
	// phase vanished from the current sweep.
	Field    string  `json:"field"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Change is the relative degradation (positive = worse).
	Change float64 `json:"change"`
}

func (r Regression) String() string {
	if r.Field == "missing" {
		return fmt.Sprintf("%s: row present in baseline but missing from current sweep", r.Key)
	}
	return fmt.Sprintf("%s %s: baseline %.6g, current %.6g (%.2f%% worse than tolerance allows)",
		r.Key, r.Field, r.Baseline, r.Current, 100*r.Change)
}

// CheckCurves compares freshly measured curves against a committed
// baseline and returns every regression beyond tol (<= 0 selects
// DefaultGateTolerance):
//
//   - a baseline row missing from current is a regression (coverage must
//     not silently shrink; new rows in current are fine);
//   - scaling efficiency below baseline·(1−tol) is a regression;
//   - virtual time above baseline·(1+tol) is a regression (the absolute
//     curve, not just its shape);
//   - each baseline phase span above baseline·(1+tol) is a regression
//     named "phase:<name>" — this is what points at the phase that
//     stopped scaling; a vanished phase is reported as missing.
//
// Improvements never fail the gate; they call for a baseline refresh.
func CheckCurves(current, baseline []CurvePoint, tol float64) []Regression {
	if tol <= 0 {
		tol = DefaultGateTolerance
	}
	cur := map[string]CurvePoint{}
	for _, row := range current {
		cur[row.Key()] = row
	}
	var regs []Regression
	for _, base := range baseline {
		key := base.Key()
		now, ok := cur[key]
		if !ok {
			regs = append(regs, Regression{Key: key, Field: "missing"})
			continue
		}
		if base.Efficiency > 0 && now.Efficiency < base.Efficiency*(1-tol) {
			regs = append(regs, Regression{
				Key: key, Field: "efficiency",
				Baseline: base.Efficiency, Current: now.Efficiency,
				Change: 1 - now.Efficiency/base.Efficiency,
			})
		}
		if base.SimT > 0 && now.SimT > base.SimT*(1+tol) {
			regs = append(regs, Regression{
				Key: key, Field: "sim_time_s",
				Baseline: base.SimT, Current: now.SimT,
				Change: now.SimT/base.SimT - 1,
			})
		}
		names := make([]string, 0, len(base.PhaseSpans))
		for name := range base.PhaseSpans {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bs := base.PhaseSpans[name]
			ns, ok := now.PhaseSpans[name]
			if !ok {
				regs = append(regs, Regression{Key: key, Field: "missing", Baseline: bs})
				continue
			}
			if bs > 0 && ns > bs*(1+tol) {
				regs = append(regs, Regression{
					Key: key, Field: "phase:" + name,
					Baseline: bs, Current: ns,
					Change: ns/bs - 1,
				})
			}
		}
	}
	return regs
}

// CurveFile is the standalone curves artifact cmd/bench writes and the
// gate reads back as its baseline.
type CurveFile struct {
	Machine string       `json:"machine"`
	Curves  []CurvePoint `json:"scaling_curves"`
}

// LoadCurves reads curve rows from a JSON file: either a standalone
// CurveFile or any document with a top-level "scaling_curves" array
// (BENCH_sim.json qualifies), so the gate can baseline against whichever
// artifact is committed.
func LoadCurves(path string) ([]CurvePoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f CurveFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("analytics: parsing %s: %w", path, err)
	}
	if len(f.Curves) == 0 {
		return nil, fmt.Errorf("analytics: %s holds no scaling_curves rows", path)
	}
	return f.Curves, nil
}

// WriteCurves writes the standalone curves artifact.
func WriteCurves(path, machineName string, curves []CurvePoint) error {
	buf, err := json.MarshalIndent(CurveFile{Machine: machineName, Curves: curves}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
