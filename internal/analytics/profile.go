// Package analytics turns the raw observability artifacts of internal/obs
// — per-rank event streams and energy summaries — into scaling analytics:
//
//   - PhaseProfile: a per-phase, per-rank breakdown of a run (F/W/S, the
//     virtual-time split, and Eq. 2's energy terms attributed to phases),
//     aggregated with min/mean/max/imbalance across ranks;
//   - Diff: a Hatchet-style divide operator over two profiles that
//     computes per-phase time/energy ratios against a predicted scaling
//     and names the phase that stopped scaling;
//   - sweep drivers for strong scaling (fixed n, growing p — the paper's
//     T÷c at constant E) and weak scaling (fixed per-rank memory, problem
//     grown to fill it) that emit efficiency-vs-p curves with closed-form
//     predictions from internal/core;
//   - CheckCurves: a regression gate comparing freshly measured curves
//     against a committed baseline, so a phase that quietly stops scaling
//     fails CI rather than a code review.
//
// Everything here consumes virtual-time quantities only, so every number
// is deterministic and byte-stable across hosts — which is what lets the
// gate use tight tolerances.
package analytics

import (
	"fmt"
	"io"
	"math"
	"sort"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/obs"
	"perfscale/internal/sim"
)

// InitPhase is the synthetic phase name covering activity before a rank's
// first Phase() mark (and whole runs of programs that declare no phases).
const InitPhase = "(init)"

// Agg summarizes one per-rank quantity across the ranks that entered a
// phase.
type Agg struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
}

// Imbalance returns Max/Mean, the classic load-imbalance factor (1 =
// perfectly balanced; 0 when the phase saw none of this quantity).
func (a Agg) Imbalance() float64 {
	if a.Mean == 0 {
		return 0
	}
	return a.Max / a.Mean
}

// aggregate folds per-rank samples into an Agg. n is the rank count the
// mean divides by (ranks that entered the phase).
func aggregate(samples []float64) Agg {
	var a Agg
	if len(samples) == 0 {
		return a
	}
	a.Min = math.Inf(1)
	for _, v := range samples {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
		a.Sum += v
	}
	a.Mean = a.Sum / float64(len(samples))
	return a
}

// PhaseStats is one named phase of a PhaseProfile: every per-rank counter
// the energy model prices, aggregated across the ranks that entered it.
type PhaseStats struct {
	Name string `json:"name"`
	// Ranks is how many ranks entered the phase.
	Ranks int `json:"ranks"`
	// Span is each rank's time inside the phase (from its mark to the next
	// mark, or to the rank's final clock), in virtual seconds. Span.Max is
	// the phase's makespan contribution and the quantity Diff divides.
	Span Agg `json:"span"`
	// Start and End bound the phase's virtual-time window across ranks:
	// the earliest mark and the latest close. Fault plans can target the
	// window (that is how cmd/scalediff degrades one phase).
	Start float64 `json:"window_start_s"`
	End   float64 `json:"window_end_s"`
	// The priced counters, per rank: F, W, S.
	Flops     Agg `json:"flops"`
	WordsSent Agg `json:"words_sent"`
	MsgsSent  Agg `json:"msgs_sent"`
	// The virtual-time split inside the phase, per rank.
	ComputeTime Agg `json:"compute_time"`
	SendTime    Agg `json:"send_time"`
	RecvTime    Agg `json:"recv_time"`
	WaitTime    Agg `json:"wait_time"`
	// Energy is the machine-wide slice of Eq. 2 attributed to the phase:
	// γe·ΣF, βe·ΣW, αe·ΣS from the phase's own counters; δe·Σ(M·span) and
	// εe·Σspan pro-rated by each rank's time in the phase (M is the rank's
	// whole-run peak — the model has no per-phase footprint).
	Energy core.EnergyBreakdown `json:"energy"`
}

// TimeShare returns the phase's share of the run's critical dimension:
// Span.Max over the profile's total time.
func (ps PhaseStats) TimeShare(total float64) float64 {
	if total <= 0 {
		return 0
	}
	return ps.Span.Max / total
}

// PhaseProfile is the per-phase view of one run: the Hatchet-style "graph
// frame" this package diffs. Phases appear in first-entry order (earliest
// mark across ranks); a name marked repeatedly (LU's per-step phases use
// distinct names, but a program may re-enter one) accumulates.
type PhaseProfile struct {
	// Meta identifies the run the profile describes.
	Algorithm string `json:"algorithm"`
	Runtime   string `json:"runtime,omitempty"`
	Machine   string `json:"machine"`
	N         int    `json:"n,omitempty"`
	P         int    `json:"p"`
	C         int    `json:"c,omitempty"`
	// T is the run's makespan and Energy the whole-run Eq. 2 total.
	T      float64              `json:"sim_time_s"`
	Energy core.EnergyBreakdown `json:"energy"`
	Phases []PhaseStats         `json:"phases"`
}

// Phase returns the named phase, or nil.
func (p *PhaseProfile) Phase(name string) *PhaseStats {
	for i := range p.Phases {
		if p.Phases[i].Name == name {
			return &p.Phases[i]
		}
	}
	return nil
}

// Meta carries run identification into BuildProfile.
type Meta struct {
	Algorithm string
	Runtime   string
	N         int
	C         int
}

// phaseAcc accumulates one (rank, phase) contribution.
type phaseAcc struct {
	span, flops, words, msgs      float64
	computeT, sendT, recvT, waitT float64
	memSpan                       float64 // M_rank · span, for δe
	start, end                    float64 // this rank's window in the phase
	windowSet                     bool
	entered                       bool
}

// BuildProfile extracts a PhaseProfile from a finished observed run. The
// collector must have subscribed to the run that produced res (same p).
//
// Segment attribution follows the per-rank event order the bus guarantees:
// a segment belongs to the phase whose mark most recently preceded it on
// its own rank; activity before the first mark lands in InitPhase. A
// rank's span in a phase runs from its mark to its next mark (or its
// final clock), so spans include idle time — a phase that waits is a
// phase that costs.
func BuildProfile(m machine.Params, res *sim.Result, col *obs.Collector, meta Meta) *PhaseProfile {
	p := len(res.PerRank)
	prof := &PhaseProfile{
		Algorithm: meta.Algorithm,
		Runtime:   meta.Runtime,
		Machine:   m.Name,
		N:         meta.N,
		P:         p,
		C:         meta.C,
		T:         res.Time(),
	}
	prof.Energy = core.EnergyBreakdown{}
	for _, st := range res.PerRank {
		prof.Energy.Compute += m.GammaE * st.Flops
		prof.Energy.Bandwidth += m.BetaE * st.WordsSent
		prof.Energy.Latency += m.AlphaE * st.MsgsSent
		prof.Energy.Memory += m.DeltaE * st.PeakMemWords * prof.T
		prof.Energy.Leakage += m.EpsilonE * prof.T
	}

	// first[name] is the earliest mark time across ranks (phase order);
	// acc[name][rank] the per-rank accumulator.
	first := map[string]float64{}
	order := []string{}
	acc := map[string][]*phaseAcc{}
	get := func(name string, rank int, at float64) *phaseAcc {
		rs := acc[name]
		if rs == nil {
			rs = make([]*phaseAcc, p)
			acc[name] = rs
			first[name] = at
			order = append(order, name)
		} else if at < first[name] {
			first[name] = at
		}
		if rs[rank] == nil {
			rs[rank] = &phaseAcc{}
		}
		return rs[rank]
	}

	for rank := 0; rank < p; rank++ {
		cur := InitPhase
		curStart := 0.0
		closePhase := func(at float64) {
			if at <= curStart {
				// A zero-span phase with no recorded activity (ranks that
				// mark their first phase at t=0 leave an empty InitPhase)
				// contributes nothing and must not fabricate a row.
				return
			}
			a := get(cur, rank, curStart)
			if !a.windowSet || curStart < a.start {
				a.start = curStart
			}
			if !a.windowSet || at > a.end {
				a.end = at
			}
			a.windowSet = true
			a.span += at - curStart
			a.entered = true
			a.memSpan += res.PerRank[rank].PeakMemWords * (at - curStart)
		}
		events := col.Rank(rank)
		for _, e := range events {
			switch e.Kind {
			case obs.KindPhase:
				closePhase(e.Start)
				cur, curStart = e.Name, e.Start
			case obs.KindCompute:
				a := get(cur, rank, curStart)
				a.flops += e.Flops
				a.computeT += e.Duration()
				a.entered = true
			case obs.KindSend:
				a := get(cur, rank, curStart)
				a.words += float64(e.Words)
				a.msgs += e.Msgs
				a.sendT += e.Duration()
				a.entered = true
			case obs.KindRecv:
				a := get(cur, rank, curStart)
				a.recvT += e.Duration()
				a.entered = true
			case obs.KindWait:
				a := get(cur, rank, curStart)
				a.waitT += e.Duration()
				a.entered = true
			}
		}
		if len(events) > 0 || res.PerRank[rank].Time > 0 {
			closePhase(res.PerRank[rank].Time)
		}
	}

	// Order phases by first entry time, breaking ties by discovery order
	// (stable: per-rank streams are deterministic).
	sort.SliceStable(order, func(i, j int) bool { return first[order[i]] < first[order[j]] })

	for _, name := range order {
		rs := acc[name]
		var spans, flops, words, msgs, ct, st, rt, wt []float64
		stats := PhaseStats{Name: name}
		windowSet := false
		for _, a := range rs {
			if a == nil || !a.entered {
				continue
			}
			if a.windowSet {
				if !windowSet || a.start < stats.Start {
					stats.Start = a.start
				}
				if !windowSet || a.end > stats.End {
					stats.End = a.end
				}
				windowSet = true
			}
			stats.Ranks++
			spans = append(spans, a.span)
			flops = append(flops, a.flops)
			words = append(words, a.words)
			msgs = append(msgs, a.msgs)
			ct = append(ct, a.computeT)
			st = append(st, a.sendT)
			rt = append(rt, a.recvT)
			wt = append(wt, a.waitT)
			stats.Energy.Compute += m.GammaE * a.flops
			stats.Energy.Bandwidth += m.BetaE * a.words
			stats.Energy.Latency += m.AlphaE * a.msgs
			stats.Energy.Memory += m.DeltaE * a.memSpan
			stats.Energy.Leakage += m.EpsilonE * a.span
		}
		if stats.Ranks == 0 {
			continue
		}
		stats.Span = aggregate(spans)
		stats.Flops = aggregate(flops)
		stats.WordsSent = aggregate(words)
		stats.MsgsSent = aggregate(msgs)
		stats.ComputeTime = aggregate(ct)
		stats.SendTime = aggregate(st)
		stats.RecvTime = aggregate(rt)
		stats.WaitTime = aggregate(wt)
		prof.Phases = append(prof.Phases, stats)
	}
	return prof
}

// WriteText renders the profile as an aligned table, one row per phase.
func (p *PhaseProfile) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s p=%d n=%d runtime=%s machine=%s  T=%.6g s  E=%.6g J\n",
		p.Algorithm, p.P, p.N, p.Runtime, p.Machine, p.T, p.Energy.Total()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %5s %12s %7s %7s %12s %12s %12s %12s\n",
		"phase", "ranks", "span max (s)", "share", "imbal", "flops/rank", "words/rank", "wait max (s)", "energy (J)"); err != nil {
		return err
	}
	for _, ps := range p.Phases {
		if _, err := fmt.Fprintf(w, "%-16s %5d %12.5g %6.1f%% %7.2f %12.5g %12.5g %12.5g %12.5g\n",
			ps.Name, ps.Ranks, ps.Span.Max, 100*ps.TimeShare(p.T), ps.Span.Imbalance(),
			ps.Flops.Mean, ps.WordsSent.Mean, ps.WaitTime.Max, ps.Energy.Total()); err != nil {
			return err
		}
	}
	return nil
}
