package analytics

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/obs"
	"perfscale/internal/sim"
)

func testMachine() machine.Params { return machine.SimDefault() }

// observedMatMul runs 2.5D matmul with a collector attached and returns the
// phase profile.
func observedMatMul(t *testing.T, cost sim.Cost, q, c, n int) (*sim.Result, *PhaseProfile) {
	t.Helper()
	a := matrix.Random(n, n, 31)
	b := matrix.Random(n, n, 32)
	p := q * q * c
	col := obs.NewCollector(p)
	cost.Observers = append(cost.Observers, col)
	res, err := matmul.TwoPointFiveD(cost, q, c, a, b)
	if err != nil {
		t.Fatalf("TwoPointFiveD(q=%d,c=%d,n=%d): %v", q, c, n, err)
	}
	meta := Meta{Algorithm: "matmul-2.5d", Runtime: cost.Runtime.String(), N: n, C: c}
	return res.Sim, BuildProfile(testMachine(), res.Sim, col, meta)
}

func TestBuildProfileMatMul(t *testing.T) {
	m := testMachine()
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	res, prof := observedMatMul(t, cost, 2, 2, 32)

	if prof.P != 8 || prof.N != 32 || prof.C != 2 {
		t.Fatalf("profile meta wrong: %+v", prof)
	}
	if prof.T != res.Time() {
		t.Fatalf("profile T %v != res.Time %v", prof.T, res.Time())
	}
	for _, want := range []string{"replicate", "align", "multiply-shift", "reduce"} {
		ps := prof.Phase(want)
		if ps == nil {
			t.Fatalf("phase %q missing from profile (have %v)", want, phaseNames(prof))
		}
		if ps.Ranks == 0 || ps.Span.Max <= 0 {
			t.Fatalf("phase %q empty: %+v", want, ps)
		}
	}

	// The dynamic energy terms attributed to phases must sum to the
	// whole-run terms: every compute/send event lands in exactly one phase.
	var dynC, dynB, dynL float64
	for _, ps := range prof.Phases {
		dynC += ps.Energy.Compute
		dynB += ps.Energy.Bandwidth
		dynL += ps.Energy.Latency
	}
	checkClose(t, "compute energy", dynC, prof.Energy.Compute, 1e-9)
	checkClose(t, "bandwidth energy", dynB, prof.Energy.Bandwidth, 1e-9)
	checkClose(t, "latency energy", dynL, prof.Energy.Latency, 1e-9)

	// Whole-run energy matches core.PriceSim (same Eq. 2, same T).
	want := core.PriceSim(m, res).Total()
	checkClose(t, "total energy vs PriceSim", prof.Energy.Total(), want, 1e-9)

	// Per-rank spans partition each rank's clock: summed over phases and
	// ranks they equal the sum of rank end times.
	var spanSum, clockSum float64
	for _, ps := range prof.Phases {
		spanSum += ps.Span.Sum
	}
	for _, st := range res.PerRank {
		clockSum += st.Time
	}
	checkClose(t, "span partition", spanSum, clockSum, 1e-9)

	var buf bytes.Buffer
	if err := prof.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "multiply-shift") {
		t.Fatalf("text render misses phases:\n%s", buf.String())
	}
}

func phaseNames(p *PhaseProfile) []string {
	names := make([]string, len(p.Phases))
	for i, ps := range p.Phases {
		names[i] = ps.Name
	}
	return names
}

func checkClose(t *testing.T, what string, got, want, rel float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s: got %v, want 0", what, got)
		}
		return
	}
	if math.Abs(got/want-1) > rel {
		t.Fatalf("%s: got %v, want %v (rel err %v)", what, got, want, math.Abs(got/want-1))
	}
}

// TestDiffNamesDegradedPhase is the acceptance-criterion scenario: a clean
// run divided into a fault-degraded run of the same configuration must name
// the communication-heavy phase the degradation hit as the bottleneck.
func TestDiffNamesDegradedPhase(t *testing.T) {
	m := testMachine()
	clean := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	_, profA := observedMatMul(t, clean, 4, 1, 64)

	// Degrade every link for the whole run: the phase with the most
	// communication — the q−1 shift steps of multiply-shift — accumulates
	// the most excess virtual time and must be singled out.
	degraded := clean
	degraded.Faults = &sim.FaultPlan{
		Seed: 7,
		Degraded: []sim.DegradedLink{
			{Src: -1, Dst: -1, AlphaFactor: 50, BetaFactor: 50},
		},
	}
	_, profB := observedMatMul(t, degraded, 4, 1, 64)

	rep := Diff(profA, profB, DiffOptions{ExpectedRatio: 1})
	if rep.Bottleneck != "multiply-shift" {
		t.Fatalf("bottleneck = %q, want multiply-shift\nphases: %+v", rep.Bottleneck, rep.Phases)
	}
	ms := phaseDiffByName(rep, "multiply-shift")
	if !ms.Flagged || ms.Ratio <= 1 {
		t.Fatalf("multiply-shift row not flagged slow: %+v", ms)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "scaling bottleneck: multiply-shift") {
		t.Fatalf("text report does not name the bottleneck:\n%s", buf.String())
	}
}

func TestDiffCleanRunWithinTolerance(t *testing.T) {
	m := testMachine()
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	_, profA := observedMatMul(t, cost, 2, 1, 32)
	_, profB := observedMatMul(t, cost, 2, 1, 32)
	rep := Diff(profA, profB, DiffOptions{ExpectedRatio: 1})
	if rep.Bottleneck != "" {
		t.Fatalf("identical runs produced a bottleneck %q", rep.Bottleneck)
	}
	for _, d := range rep.Phases {
		if d.Flagged {
			t.Fatalf("identical runs flagged phase %+v", d)
		}
		if math.Abs(d.Ratio-1) > 1e-9 {
			t.Fatalf("identical runs: phase %s ratio %v", d.Name, d.Ratio)
		}
	}
}

func phaseDiffByName(r *DiffReport, name string) PhaseDiff {
	for _, d := range r.Phases {
		if d.Name == name {
			return d
		}
	}
	return PhaseDiff{}
}

func TestStrongMatMulCurve(t *testing.T) {
	sc := SweepConfig{Machine: testMachine(), Runtime: sim.RuntimeGoroutine}
	rows, err := StrongMatMulCurve(sc, 96, 4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	r0, r1 := rows[0], rows[1]
	if r0.Efficiency != 1 || r0.EnergyRatio != 1 {
		t.Fatalf("first point not normalized: %+v", r0)
	}
	if r1.P != 2*r0.P {
		t.Fatalf("p did not double: %+v", r1)
	}
	// Inside the perfect-scaling region: efficiency near 1, energy near
	// constant. These are loose sanity bands — the tight check is the
	// committed-baseline gate.
	if r1.Efficiency < 0.5 || r1.Efficiency > 1.5 {
		t.Fatalf("strong efficiency off the rails: %+v", r1)
	}
	if r1.EnergyRatio < 0.5 || r1.EnergyRatio > 1.5 {
		t.Fatalf("energy ratio off the rails: %+v", r1)
	}
	if r1.Predicted <= 0 || r1.Predicted > 1.01 {
		t.Fatalf("closed-form prediction implausible: %+v", r1)
	}
	if len(r1.PhaseSpans) == 0 || len(r1.PhaseEff) == 0 {
		t.Fatalf("curve row missing phase data: %+v", r1)
	}
	if r1.Key() == r0.Key() {
		t.Fatalf("rows share a key: %s", r0.Key())
	}
	// Plateau annotation: n=96, q=4 fixes M = 576 per rank, so perfect
	// scaling ends exactly at p* = n³/M^(3/2) = 64; both rows sit inside
	// and must be attributed to the memory-dependent bound.
	for _, r := range rows {
		if math.Abs(r.PlateauP/64-1) > 1e-9 {
			t.Fatalf("plateau end = %g, want 64 (%+v)", r.PlateauP, r)
		}
		if r.PlateauBound != bounds.BoundClassicalMemDep {
			t.Fatalf("binding bound inside the plateau = %q, want %q", r.PlateauBound, bounds.BoundClassicalMemDep)
		}
	}
}

func TestRectSUMMACurve(t *testing.T) {
	sc := SweepConfig{Machine: testMachine(), Runtime: sim.RuntimeGoroutine}
	rows, err := RectSUMMACurve(sc, 48, 16, 32, 4, [][2]int{{1, 2}, {2, 2}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].Efficiency != 1 {
		t.Fatalf("first point not normalized: %+v", rows[0])
	}
	for i, r := range rows {
		if r.Algorithm != "matmul-summa-rect" || r.Family != "strong" {
			t.Fatalf("row %d mislabeled: %+v", i, r)
		}
		if !strings.HasPrefix(r.PlateauBound, bounds.BoundRectPrefix) {
			t.Fatalf("row %d bound %q is not a rect regime attribution", i, r.PlateauBound)
		}
		if r.PlateauP <= 0 || r.Predicted <= 0 {
			t.Fatalf("row %d missing plateau/prediction: %+v", i, r)
		}
		if r.Efficiency < 0.1 || r.Efficiency > 1.5 {
			t.Fatalf("row %d efficiency off the rails: %+v", i, r)
		}
	}
	// The grids straddle the two-large→three-large crossover of the 48×16×32
	// shape: the attribution must not be constant across the curve.
	if rows[0].PlateauBound == rows[2].PlateauBound {
		t.Fatalf("regime attribution never changed: %q", rows[0].PlateauBound)
	}
}

// TestDiffWallAnnotation: dividing a p=16 run by a p=64 run of the same
// problem with the plateau options set must annotate the report with the
// memory-independent wall — and leave it off when the options are absent.
func TestDiffWallAnnotation(t *testing.T) {
	m := testMachine()
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	_, profA := observedMatMul(t, cost, 4, 1, 96)
	_, profB := observedMatMul(t, cost, 4, 4, 96)

	pl := bounds.ClassicalPlateau(96, 96*96/16)
	rep := Diff(profA, profB, DiffOptions{
		ExpectedRatio: 0.25,
		PlateauP:      pl.PEnd,
		PlateauBound:  pl.IndependentBound,
	})
	if rep.Wall == "" {
		t.Fatal("p=64 at the plateau end produced no wall annotation")
	}
	if !strings.Contains(rep.Wall, "memory-independent wall") ||
		!strings.Contains(rep.Wall, bounds.BoundClassicalMemIndep) {
		t.Fatalf("wall annotation does not name the binding bound: %q", rep.Wall)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "note: "+rep.Wall) {
		t.Fatalf("text report does not carry the wall note:\n%s", buf.String())
	}

	if rep := Diff(profA, profB, DiffOptions{ExpectedRatio: 0.25}); rep.Wall != "" {
		t.Fatalf("wall annotated without plateau options: %q", rep.Wall)
	}
}

func TestWeakCurves(t *testing.T) {
	sc := SweepConfig{Machine: testMachine(), Runtime: sim.RuntimeGoroutine}
	rows, err := WeakMatMulCurve(sc, 16, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if rows[1].RankFlops <= rows[0].RankFlops {
		t.Fatalf("weak matmul per-rank work did not grow: %+v", rows)
	}
	for _, r := range rows {
		if r.Family != "weak" {
			t.Fatalf("wrong family: %+v", r)
		}
		if r.Efficiency <= 0 || r.Predicted <= 0 {
			t.Fatalf("degenerate weak row: %+v", r)
		}
		// Eq. 10 corollary: energy per flop constant under weak scaling.
		if r.EnergyRatio < 0.5 || r.EnergyRatio > 1.5 {
			t.Fatalf("energy per flop drifted: %+v", r)
		}
	}

	fftRows, err := WeakFFTCurve(sc, 64, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fftRows) != 2 || fftRows[1].N != 2*fftRows[0].N {
		t.Fatalf("weak fft sizing wrong: %+v", fftRows)
	}
	for _, want := range []string{"row-fft", "all-to-all", "col-fft"} {
		if _, ok := fftRows[0].PhaseSpans[want]; !ok {
			t.Fatalf("fft profile misses phase %q: %+v", want, fftRows[0].PhaseSpans)
		}
	}
}

func TestCheckCurvesGate(t *testing.T) {
	base := []CurvePoint{
		{Family: "strong", Algorithm: "matmul-2.5d", Runtime: "goroutine", N: 96, P: 16, C: 1,
			SimT: 1.0, Efficiency: 1.0, PhaseSpans: map[string]float64{"multiply-shift": 0.6, "reduce": 0.1}},
		{Family: "strong", Algorithm: "matmul-2.5d", Runtime: "goroutine", N: 96, P: 32, C: 2,
			SimT: 0.5, Efficiency: 0.98, PhaseSpans: map[string]float64{"multiply-shift": 0.3, "reduce": 0.06}},
	}

	if regs := CheckCurves(base, base, 0.02); len(regs) != 0 {
		t.Fatalf("identical curves regressed: %+v", regs)
	}

	// Degrade efficiency beyond tolerance on the second row.
	cur := cloneCurves(base)
	cur[1].Efficiency = 0.90
	regs := CheckCurves(cur, base, 0.02)
	if !hasRegression(regs, cur[1].Key(), "efficiency") {
		t.Fatalf("efficiency drop not caught: %+v", regs)
	}

	// Slow one phase beyond tolerance.
	cur = cloneCurves(base)
	cur[0].PhaseSpans["multiply-shift"] = 0.7
	regs = CheckCurves(cur, base, 0.02)
	if !hasRegression(regs, cur[0].Key(), "phase:multiply-shift") {
		t.Fatalf("phase span growth not caught: %+v", regs)
	}

	// Drop a whole row.
	regs = CheckCurves(cur[:1], base, 0.02)
	if !hasRegression(regs, base[1].Key(), "missing") {
		t.Fatalf("missing row not caught: %+v", regs)
	}

	// Grow virtual time.
	cur = cloneCurves(base)
	cur[0].SimT = 1.1
	regs = CheckCurves(cur, base, 0.02)
	if !hasRegression(regs, cur[0].Key(), "sim_time_s") {
		t.Fatalf("sim time growth not caught: %+v", regs)
	}

	// Improvements pass.
	cur = cloneCurves(base)
	cur[1].Efficiency = 1.0
	cur[0].SimT = 0.9
	if regs := CheckCurves(cur, base, 0.02); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

func cloneCurves(in []CurvePoint) []CurvePoint {
	out := make([]CurvePoint, len(in))
	for i, r := range in {
		out[i] = r
		out[i].PhaseSpans = map[string]float64{}
		for k, v := range r.PhaseSpans {
			out[i].PhaseSpans[k] = v
		}
	}
	return out
}

func hasRegression(regs []Regression, key, field string) bool {
	for _, r := range regs {
		if r.Key == key && r.Field == field {
			return true
		}
	}
	return false
}

func TestCurveFileRoundTrip(t *testing.T) {
	sc := SweepConfig{Machine: testMachine(), Runtime: sim.RuntimeGoroutine}
	rows, err := StrongMatMulCurve(sc, 48, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "curves.json")
	if err := WriteCurves(path, testMachine().Name, rows); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCurves(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Fatalf("round trip drift:\nwrote %+v\nread  %+v", rows, back)
	}
	if regs := CheckCurves(back, rows, 0.02); len(regs) != 0 {
		t.Fatalf("round-tripped baseline regressed: %+v", regs)
	}
	if _, err := LoadCurves(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestPhaseProfileBackendIdentity pins the satellite requirement: per-phase
// energy attribution for a fault-injected 2.5D run is bit-identical between
// the goroutine and event backends. The fault plan preserves message
// streams (corruption + a degraded-link window, no drops), so the run
// completes on both backends and every virtual-time quantity must agree
// exactly — including each phase's δe·M·span and εe·span slices.
func TestPhaseProfileBackendIdentity(t *testing.T) {
	m := testMachine()
	run := func(rt sim.Runtime) *PhaseProfile {
		cost := sim.Cost{
			GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT,
			Runtime: rt,
			Faults: &sim.FaultPlan{
				Seed: 99,
				Links: []sim.LinkFault{
					{Src: -1, Dst: -1, CorruptProb: 0.25},
				},
				Degraded: []sim.DegradedLink{
					{Src: -1, Dst: -1, From: 0, Until: 1e-4, AlphaFactor: 3, BetaFactor: 2},
				},
			},
		}
		_, prof := observedMatMul(t, cost, 4, 2, 64)
		prof.Runtime = "" // the one legitimately differing field
		return prof
	}
	g := run(sim.RuntimeGoroutine)
	e := run(sim.RuntimeEvent)
	if !reflect.DeepEqual(g, e) {
		t.Fatalf("phase profiles differ across backends:\ngoroutine: %+v\nevent:     %+v", g, e)
	}
	for _, ps := range g.Phases {
		if ps.Energy.Total() < 0 {
			t.Fatalf("negative phase energy: %+v", ps)
		}
	}
}
