package analytics

import (
	"fmt"
	"math/rand"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/fft"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/obs"
	"perfscale/internal/sim"
)

// CurvePoint is one row of an efficiency-vs-p curve: one algorithm at one
// processor count under one scaling family. Every field is a virtual-time
// quantity, so rows are deterministic and committable as a baseline.
type CurvePoint struct {
	Family    string `json:"family"` // "strong" or "weak"
	Algorithm string `json:"algorithm"`
	Runtime   string `json:"runtime"`
	N         int    `json:"n"`
	P         int    `json:"p"`
	C         int    `json:"c,omitempty"`

	SimT    float64 `json:"sim_time_s"`
	EnergyJ float64 `json:"energy_joules"`
	// RankFlops is the max per-rank F — the work normalizer for weak
	// scaling, where the problem grows with p.
	RankFlops float64 `json:"rank_flops"`

	// Efficiency is the measured scaling efficiency against the family's
	// first point: strong = T(p0)·p0/(T(p)·p); weak = the per-rank flop
	// rate ratio (F/T)(p)/(F/T)(p0). 1 is perfect.
	Efficiency float64 `json:"efficiency"`
	// Predicted is the same quantity computed from the closed forms of
	// internal/core at the same coordinates — the model's curve.
	Predicted float64 `json:"predicted"`
	// EnergyRatio is E(p)/E(p0) for strong scaling (the paper predicts 1
	// inside the region) and energy-per-flop ratio for weak scaling (the
	// Eq. 10 corollary predicts 1).
	EnergyRatio float64 `json:"energy_ratio"`

	// PhaseSpans maps phase name to makespan (Span.Max) at this point;
	// PhaseEff to the phase's scaling efficiency vs the first point under
	// the family's expected scale. The regression gate compares both.
	PhaseSpans map[string]float64 `json:"phase_spans,omitempty"`
	PhaseEff   map[string]float64 `json:"phase_eff,omitempty"`

	// PlateauP is the exact predicted endpoint p* of the perfect-scaling
	// plateau for this curve's fixed problem size and per-rank memory
	// (internal/bounds; zero when no closed-form plateau applies), and
	// PlateauBound names the lower bound that binds at this row's p: the
	// memory-dependent bound inside the plateau, the memory-independent
	// wall past it. A sub-1 efficiency at p > PlateauP is the wall, not a
	// regression.
	PlateauP     float64 `json:"plateau_p,omitempty"`
	PlateauBound string  `json:"plateau_bound,omitempty"`
}

// Key identifies the row for baseline matching.
func (c CurvePoint) Key() string {
	return fmt.Sprintf("%s/%s/%s/n%d/p%d/c%d", c.Family, c.Algorithm, c.Runtime, c.N, c.P, c.C)
}

// SweepConfig parameterizes the curve drivers.
type SweepConfig struct {
	Machine machine.Params
	// Runtime selects the simulator backend the curves run on.
	Runtime sim.Runtime
}

func (sc SweepConfig) cost() sim.Cost {
	return sim.Cost{
		GammaT:      sc.Machine.GammaT,
		BetaT:       sc.Machine.BetaT,
		AlphaT:      sc.Machine.AlphaT,
		MaxMsgWords: int(sc.Machine.MaxMsgWords),
		Runtime:     sc.Runtime,
	}
}

// observed runs one simulation with a Collector attached and returns the
// result plus its phase profile.
type observedRun struct {
	res  *sim.Result
	prof *PhaseProfile
}

func runObserved(sc SweepConfig, p int, meta Meta, run func(cost sim.Cost) (*sim.Result, error)) (*observedRun, error) {
	col := obs.NewCollector(p)
	cost := sc.cost()
	cost.Observers = []sim.Observer{col}
	res, err := run(cost)
	if err != nil {
		return nil, err
	}
	meta.Runtime = cost.Runtime.String()
	return &observedRun{res: res, prof: BuildProfile(sc.Machine, res, col, meta)}, nil
}

// finishCurve fills Efficiency, EnergyRatio and PhaseEff for a measured
// curve relative to its first point. kind selects the efficiency
// definition; expectedSpanScale(i) is the model's per-phase time scale for
// point i vs point 0 (1/c for strong scaling; the weak families derive it
// from per-rank work).
func finishCurve(rows []CurvePoint, profs []*PhaseProfile) {
	if len(rows) == 0 {
		return
	}
	r0 := rows[0]
	for i := range rows {
		r := &rows[i]
		switch r.Family {
		case "strong":
			// Fixed total work: efficiency = T0·p0 / (T·p).
			r.Efficiency = r0.SimT * float64(r0.P) / (r.SimT * float64(r.P))
			r.EnergyRatio = r.EnergyJ / r0.EnergyJ
		default: // weak
			// Growing work: per-rank flop-rate ratio.
			rate0 := r0.RankFlops / r0.SimT
			r.Efficiency = (r.RankFlops / r.SimT) / rate0
			// Energy per flop ratio (total flops ≈ p·RankFlops).
			ef0 := r0.EnergyJ / (float64(r0.P) * r0.RankFlops)
			r.EnergyRatio = r.EnergyJ / (float64(r.P) * r.RankFlops) / ef0
		}
		if profs[i] != nil {
			r.PhaseSpans = map[string]float64{}
			r.PhaseEff = map[string]float64{}
			for _, ps := range profs[i].Phases {
				r.PhaseSpans[ps.Name] = ps.Span.Max
			}
			for _, ps0 := range profs[0].Phases {
				span := r.PhaseSpans[ps0.Name]
				if span <= 0 || ps0.Span.Max <= 0 {
					continue
				}
				switch r.Family {
				case "strong":
					// Perfect scaling predicts span ∝ 1/(p/p0).
					scale := float64(r0.P) / float64(r.P)
					r.PhaseEff[ps0.Name] = ps0.Span.Max * scale / span
				default:
					// Weak: phase flop-rate where the phase computes,
					// otherwise span ratio (ideal weak scaling keeps
					// communication spans ~flat).
					r.PhaseEff[ps0.Name] = ps0.Span.Max / span
				}
			}
		}
	}
}

// StrongMatMulCurve measures the paper's perfect-strong-scaling
// construction on the live simulator: 2.5D matmul at fixed n and grid q,
// replication c ∈ cs (p = q²·c, per-rank memory fixed at 3·(n/q)² plus
// replicas). The closed-form prediction evaluates Eqs. 8+1 at matching
// coordinates; inside the region it predicts T÷c at constant E.
func StrongMatMulCurve(sc SweepConfig, n, q int, cs []int) ([]CurvePoint, error) {
	a := matrix.Random(n, n, 31)
	b := matrix.Random(n, n, 32)
	rows := make([]CurvePoint, 0, len(cs))
	profs := make([]*PhaseProfile, 0, len(cs))
	for _, c := range cs {
		p := q * q * c
		or, err := runObserved(sc, p, Meta{Algorithm: "matmul-2.5d", N: n, C: c}, func(cost sim.Cost) (*sim.Result, error) {
			res, err := matmul.TwoPointFiveD(cost, q, c, a, b)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		})
		if err != nil {
			return nil, fmt.Errorf("analytics: strong matmul q=%d c=%d: %w", q, c, err)
		}
		rows = append(rows, CurvePoint{
			Family: "strong", Algorithm: "matmul-2.5d", Runtime: sc.Runtime.String(),
			N: n, P: p, C: c,
			SimT:      or.res.Time(),
			EnergyJ:   core.PriceSim(sc.Machine, or.res).Total(),
			RankFlops: or.res.MaxStats().Flops,
		})
		profs = append(profs, or.prof)
	}
	finishCurve(rows, profs)
	predictStrongMatMul(sc.Machine, rows, q)
	return rows, nil
}

// predictStrongMatMul fills Predicted from the closed forms: the model's
// T(p0)·p0/(T(p)·p) with per-rank memory fixed at the c=1 footprint — the
// paper's construction, so the prediction is ≈1 with a log(c) latency dent.
func predictStrongMatMul(m machine.Params, rows []CurvePoint, q int) {
	if len(rows) == 0 {
		return
	}
	n := float64(rows[0].N)
	pmin := float64(q * q)
	mem := n * n / pmin
	t0 := core.MatMulClassical(m, n, pmin*float64(rows[0].C), mem).TotalTime()
	p0 := float64(rows[0].P)
	pl := bounds.ClassicalPlateau(n, mem)
	for i := range rows {
		p := float64(rows[i].P)
		t := core.MatMulClassical(m, n, p, mem).TotalTime()
		rows[i].Predicted = t0 * p0 / (t * p)
		rows[i].PlateauP = pl.PEnd
		rows[i].PlateauBound = pl.BindingAt(p)
	}
}

// StrongNBodyCurve is the n-body analogue: ring size k fixed, replication
// c ∈ cs (p = k·c, M = c·n/p = n/k fixed).
func StrongNBodyCurve(sc SweepConfig, n, k int, cs []int) ([]CurvePoint, error) {
	bodies := nbody.RandomBodies(n, 33)
	rows := make([]CurvePoint, 0, len(cs))
	profs := make([]*PhaseProfile, 0, len(cs))
	for _, c := range cs {
		p := k * c
		or, err := runObserved(sc, p, Meta{Algorithm: "nbody", N: n, C: c}, func(cost sim.Cost) (*sim.Result, error) {
			res, err := nbody.Replicated(cost, p, c, bodies)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		})
		if err != nil {
			return nil, fmt.Errorf("analytics: strong nbody k=%d c=%d: %w", k, c, err)
		}
		rows = append(rows, CurvePoint{
			Family: "strong", Algorithm: "nbody", Runtime: sc.Runtime.String(),
			N: n, P: p, C: c,
			SimT:      or.res.Time(),
			EnergyJ:   core.PriceSim(sc.Machine, or.res).Total(),
			RankFlops: or.res.MaxStats().Flops,
		})
		profs = append(profs, or.prof)
	}
	finishCurve(rows, profs)
	// Closed-form prediction: NBody costs at fixed M = n/k.
	if len(rows) > 0 {
		mem := float64(n) / float64(k)
		const f = 19 // the paper's flops per interaction; the sim uses its own constant, ratios cancel
		t0 := core.NBody(sc.Machine, float64(n), float64(rows[0].P), mem, f).TotalTime()
		p0 := float64(rows[0].P)
		pl := bounds.NBodyPlateau(float64(n), mem)
		for i := range rows {
			t := core.NBody(sc.Machine, float64(n), float64(rows[i].P), mem, f).TotalTime()
			rows[i].Predicted = t0 * p0 / (t * float64(rows[i].P))
			rows[i].PlateauP = pl.PEnd
			rows[i].PlateauBound = pl.BindingAt(float64(rows[i].P))
		}
	}
	return rows, nil
}

// RectSUMMACurve measures strong scaling of rectangular SUMMA at a fixed
// (m,k,n) shape over a list of pr×pc process grids, annotated with the
// tight rectangular lower bound of Al Daas et al. (arXiv:2205.13407):
// PlateauBound names the aspect-ratio regime that governs each row's p,
// and PlateauP the grid size beyond which all three dimensions are
// "large" and the cube-root law takes over — the rectangular analogue of
// the memory-independent wall. Predicted is the α-β-γ model's
// T(p0)·p0/(T(p)·p) with W = mk/pr + kn/pc and S = 2k/panel.
func RectSUMMACurve(sc SweepConfig, mDim, kDim, n, panel int, grids [][2]int) ([]CurvePoint, error) {
	a := matrix.Random(mDim, kDim, 51)
	b := matrix.Random(kDim, n, 52)
	rows := make([]CurvePoint, 0, len(grids))
	profs := make([]*PhaseProfile, 0, len(grids))
	model := func(pr, pc int) float64 {
		p := float64(pr * pc)
		w := float64(mDim*kDim)/float64(pr) + float64(kDim*n)/float64(pc)
		s := 2 * float64(kDim) / float64(panel)
		return sc.Machine.GammaT*2*float64(mDim)*float64(kDim)*float64(n)/p +
			sc.Machine.BetaT*w + sc.Machine.AlphaT*s
	}
	for _, g := range grids {
		pr, pc := g[0], g[1]
		p := pr * pc
		or, err := runObserved(sc, p, Meta{Algorithm: "matmul-summa-rect", N: n, C: 1}, func(cost sim.Cost) (*sim.Result, error) {
			res, err := matmul.SUMMARect(cost, pr, pc, panel, a, b)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		})
		if err != nil {
			return nil, fmt.Errorf("analytics: rect summa %dx%d: %w", pr, pc, err)
		}
		_, p2 := bounds.RectRegimeBoundaries(float64(mDim), float64(kDim), float64(n))
		_, regime := bounds.RectAccesses(float64(mDim), float64(kDim), float64(n), float64(p))
		rows = append(rows, CurvePoint{
			Family: "strong", Algorithm: "matmul-summa-rect", Runtime: sc.Runtime.String(),
			N: n, P: p, C: 1,
			SimT:         or.res.Time(),
			EnergyJ:      core.PriceSim(sc.Machine, or.res).Total(),
			RankFlops:    or.res.MaxStats().Flops,
			PlateauP:     p2,
			PlateauBound: regime.BoundName(),
		})
		profs = append(profs, or.prof)
	}
	finishCurve(rows, profs)
	if len(rows) > 0 {
		t0 := model(grids[0][0], grids[0][1])
		p0 := float64(rows[0].P)
		for i := range rows {
			rows[i].Predicted = t0 * p0 / (model(grids[i][0], grids[i][1]) * float64(rows[i].P))
		}
	}
	return rows, nil
}

// WeakMatMulCurve measures memory-constrained weak scaling: the per-rank
// block nb is fixed and the grid grows, n = q·nb, p = q² — per-rank memory
// stays 3·nb² while per-rank work n³/p = nb³·q grows with the grid. The
// efficiency is the per-rank flop-rate ratio; the Eq. 10 corollary
// predicts constant energy per flop.
func WeakMatMulCurve(sc SweepConfig, nb int, qs []int) ([]CurvePoint, error) {
	rows := make([]CurvePoint, 0, len(qs))
	profs := make([]*PhaseProfile, 0, len(qs))
	for _, q := range qs {
		n := q * nb
		p := q * q
		a := matrix.Random(n, n, 41)
		b := matrix.Random(n, n, 42)
		or, err := runObserved(sc, p, Meta{Algorithm: "matmul-2.5d", N: n, C: 1}, func(cost sim.Cost) (*sim.Result, error) {
			res, err := matmul.TwoPointFiveD(cost, q, 1, a, b)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		})
		if err != nil {
			return nil, fmt.Errorf("analytics: weak matmul q=%d: %w", q, err)
		}
		rows = append(rows, CurvePoint{
			Family: "weak", Algorithm: "matmul-2.5d", Runtime: sc.Runtime.String(),
			N: n, P: p, C: 1,
			SimT:      or.res.Time(),
			EnergyJ:   core.PriceSim(sc.Machine, or.res).Total(),
			RankFlops: or.res.MaxStats().Flops,
		})
		profs = append(profs, or.prof)
	}
	finishCurve(rows, profs)
	// Prediction: model flop rate ratio at M = nb² per rank.
	if len(rows) > 0 {
		mem := float64(nb * nb)
		rate := func(i int) float64 {
			n, p := float64(rows[i].N), float64(rows[i].P)
			r := core.MatMulClassical(sc.Machine, n, p, mem)
			return r.Costs.Flops / r.TotalTime()
		}
		r0 := rate(0)
		for i := range rows {
			rows[i].Predicted = rate(i) / r0
		}
	}
	return rows, nil
}

// WeakNBodyCurve fixes bodies per rank and grows the ring: n = b·p, c = 1,
// M = n/p = b fixed. Per-rank work f·n²/p grows linearly in p (all pairs
// interact), so the flop-rate efficiency is the meaningful curve.
func WeakNBodyCurve(sc SweepConfig, b int, ps []int) ([]CurvePoint, error) {
	rows := make([]CurvePoint, 0, len(ps))
	profs := make([]*PhaseProfile, 0, len(ps))
	for _, p := range ps {
		n := b * p
		bodies := nbody.RandomBodies(n, 43)
		or, err := runObserved(sc, p, Meta{Algorithm: "nbody", N: n, C: 1}, func(cost sim.Cost) (*sim.Result, error) {
			res, err := nbody.Replicated(cost, p, 1, bodies)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		})
		if err != nil {
			return nil, fmt.Errorf("analytics: weak nbody p=%d: %w", p, err)
		}
		rows = append(rows, CurvePoint{
			Family: "weak", Algorithm: "nbody", Runtime: sc.Runtime.String(),
			N: n, P: p, C: 1,
			SimT:      or.res.Time(),
			EnergyJ:   core.PriceSim(sc.Machine, or.res).Total(),
			RankFlops: or.res.MaxStats().Flops,
		})
		profs = append(profs, or.prof)
	}
	finishCurve(rows, profs)
	if len(rows) > 0 {
		const f = 19
		rate := func(i int) float64 {
			n, p := float64(rows[i].N), float64(rows[i].P)
			r := core.NBody(sc.Machine, n, p, float64(b), f)
			return r.Costs.Flops / r.TotalTime()
		}
		r0 := rate(0)
		for i := range rows {
			rows[i].Predicted = rate(i) / r0
		}
	}
	return rows, nil
}

// WeakFFTCurve fixes elements per rank and grows p: n = e·p (kept a power
// of two by requiring e and every p to be powers of two). Per-rank work
// n·log₂(n)/p = e·log₂(e·p) grows only logarithmically; the tree
// all-to-all's W = n·log₂(p)/p term is what bends this curve.
func WeakFFTCurve(sc SweepConfig, e int, ps []int) ([]CurvePoint, error) {
	rows := make([]CurvePoint, 0, len(ps))
	profs := make([]*PhaseProfile, 0, len(ps))
	for _, p := range ps {
		n := e * p
		rng := rand.New(rand.NewSource(45))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		or, err := runObserved(sc, p, Meta{Algorithm: "fft-tree", N: n, C: 1}, func(cost sim.Cost) (*sim.Result, error) {
			res, err := fft.Distributed(cost, p, x, true)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		})
		if err != nil {
			return nil, fmt.Errorf("analytics: weak fft p=%d: %w", p, err)
		}
		rows = append(rows, CurvePoint{
			Family: "weak", Algorithm: "fft-tree", Runtime: sc.Runtime.String(),
			N: n, P: p, C: 1,
			SimT:      or.res.Time(),
			EnergyJ:   core.PriceSim(sc.Machine, or.res).Total(),
			RankFlops: or.res.MaxStats().Flops,
		})
		profs = append(profs, or.prof)
	}
	finishCurve(rows, profs)
	if len(rows) > 0 {
		rate := func(i int) float64 {
			n, p := float64(rows[i].N), float64(rows[i].P)
			r := core.FFT(sc.Machine, n, p, true)
			return r.Costs.Flops / r.TotalTime()
		}
		r0 := rate(0)
		for i := range rows {
			rows[i].Predicted = rate(i) / r0
		}
	}
	return rows, nil
}

// QuickCurves runs the standard quick sweep — the CI gate's workload:
// strong and weak families for matmul on the given runtime, plus n-body
// and FFT. The sizes amortize communication against compute enough that
// the strong matmul curve sits near 1 while staying inside a CI budget.
func QuickCurves(m machine.Params, rt sim.Runtime) ([]CurvePoint, error) {
	sc := SweepConfig{Machine: m, Runtime: rt}
	var out []CurvePoint
	strong, err := StrongMatMulCurve(sc, 192, 4, []int{1, 2, 4})
	if err != nil {
		return nil, err
	}
	out = append(out, strong...)
	weak, err := WeakMatMulCurve(sc, 24, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	out = append(out, weak...)
	sn, err := StrongNBodyCurve(sc, 256, 8, []int{1, 2, 4})
	if err != nil {
		return nil, err
	}
	out = append(out, sn...)
	wn, err := WeakNBodyCurve(sc, 32, []int{4, 8, 16})
	if err != nil {
		return nil, err
	}
	out = append(out, wn...)
	wf, err := WeakFFTCurve(sc, 256, []int{4, 8, 16})
	if err != nil {
		return nil, err
	}
	out = append(out, wf...)
	return out, nil
}
