package seq

import (
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/matrix"
)

func newMachine(t *testing.T, fast, msg int) *Machine {
	t.Helper()
	mc, err := New(fast, msg)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Error("zero fast memory should be rejected")
	}
	if _, err := New(100, 200); err == nil {
		t.Error("message larger than fast memory should be rejected")
	}
	if _, err := New(100, -1); err == nil {
		t.Error("negative message limit should be rejected")
	}
}

func TestLoadStoreAccounting(t *testing.T) {
	mc := newMachine(t, 100, 10)
	mc.Load(25) // 3 messages of <=10
	if mc.FastUsed() != 25 {
		t.Errorf("used: %d", mc.FastUsed())
	}
	mc.Store(20)
	mc.Discard(5)
	s := mc.Stats()
	if s.Words != 45 { // 25 in + 20 out
		t.Errorf("words: %g", s.Words)
	}
	if s.Msgs != 5 { // 3 + 2
		t.Errorf("messages: %g", s.Msgs)
	}
	if s.PeakFast != 25 {
		t.Errorf("peak: %d", s.PeakFast)
	}
	if mc.FastUsed() != 0 {
		t.Errorf("residual residency: %d", mc.FastUsed())
	}
}

func TestOverflowPanics(t *testing.T) {
	mc := newMachine(t, 10, 0)
	defer func() {
		if recover() == nil {
			t.Error("overflow should panic")
		}
	}()
	mc.Load(11)
}

func TestEvictUnderflowPanics(t *testing.T) {
	mc := newMachine(t, 10, 0)
	defer func() {
		if recover() == nil {
			t.Error("underflow should panic")
		}
	}()
	mc.Discard(1)
}

func TestBlockedMatMulCorrect(t *testing.T) {
	for _, tc := range []struct{ n, bs int }{{8, 2}, {16, 4}, {24, 8}, {12, 12}} {
		mc := newMachine(t, 3*tc.bs*tc.bs, 0)
		a := matrix.Random(tc.n, tc.n, int64(tc.n))
		b := matrix.Random(tc.n, tc.n, int64(tc.n)+1)
		c, err := BlockedMatMul(mc, a, b, tc.bs)
		if err != nil {
			t.Fatalf("n=%d bs=%d: %v", tc.n, tc.bs, err)
		}
		if d := c.MaxAbsDiff(matrix.Mul(a, b)); d > 1e-10*float64(tc.n) {
			t.Errorf("n=%d bs=%d: diff %g", tc.n, tc.bs, d)
		}
	}
}

func TestBlockedMatMulValidation(t *testing.T) {
	mc := newMachine(t, 100, 0)
	a := matrix.Random(8, 8, 1)
	if _, err := BlockedMatMul(mc, a, a, 3); err == nil {
		t.Error("non-dividing block should be rejected")
	}
	if _, err := BlockedMatMul(mc, a, a, 8); err == nil {
		t.Error("blocks exceeding fast memory should be rejected")
	}
	if _, err := BlockedMatMul(mc, matrix.New(4, 6), matrix.New(6, 6), 2); err == nil {
		t.Error("rectangular operands should be rejected")
	}
}

// TestBlockedMatMulAttainsHongKung: W within a small constant of the
// sequential lower bound n³/√M, and shrinking M by 4 doubles W.
func TestBlockedMatMulAttainsHongKung(t *testing.T) {
	const n = 48
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	words := map[int]float64{}
	for _, bs := range []int{4, 8, 16} {
		mc := newMachine(t, 3*bs*bs, 0)
		if _, err := BlockedMatMul(mc, a, b, bs); err != nil {
			t.Fatal(err)
		}
		words[bs] = mc.Stats().Words
		mem := float64(3 * bs * bs)
		bound := bounds.SequentialWords(2*float64(n)*float64(n)*float64(n), mem, 3*float64(n*n))
		ratio := words[bs] / bound
		if ratio < 0.3 || ratio > 4 {
			t.Errorf("bs=%d: W=%g vs bound %g (ratio %g) outside constant band", bs, words[bs], bound, ratio)
		}
	}
	// Quartering the memory (halving bs) doubles the transfer volume.
	r := words[4] / words[8]
	if r < 1.7 || r > 2.3 {
		t.Errorf("W(M/4)/W(M) = %g, want ≈2", r)
	}
}

func TestNaiveMatMulPaysCubicTraffic(t *testing.T) {
	const n = 24
	a := matrix.Random(n, n, 3)
	b := matrix.Random(n, n, 4)
	mc := newMachine(t, 1024, 0)
	c, err := NaiveMatMul(mc, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(matrix.Mul(a, b)); d > 1e-10*n {
		t.Errorf("naive wrong: %g", d)
	}
	// W = 2n³ + 2n² exactly (2 loads per inner step, 1+1 per element).
	want := 2*math.Pow(n, 3) + 2*n*n
	if got := mc.Stats().Words; got != want {
		t.Errorf("naive W = %g, want %g", got, want)
	}
	// And it dwarfs the blocked algorithm's traffic.
	mcB := newMachine(t, 3*8*8, 0)
	if _, err := BlockedMatMul(mcB, a, b, 8); err != nil {
		t.Fatal(err)
	}
	if mc.Stats().Words < 5*mcB.Stats().Words {
		t.Errorf("naive (%g) should dwarf blocked (%g)", mc.Stats().Words, mcB.Stats().Words)
	}
}

func TestBlockedLUCorrect(t *testing.T) {
	for _, tc := range []struct{ n, bs int }{{8, 2}, {16, 4}, {24, 8}} {
		mc := newMachine(t, 3*tc.bs*tc.bs, 0)
		a := matrix.RandomDiagDominant(tc.n, int64(tc.n))
		l, u, err := BlockedLU(mc, a, tc.bs)
		if err != nil {
			t.Fatalf("n=%d bs=%d: %v", tc.n, tc.bs, err)
		}
		if d := matrix.Mul(l, u).MaxAbsDiff(a); d > 1e-9*float64(tc.n) {
			t.Errorf("n=%d bs=%d: residual %g", tc.n, tc.bs, d)
		}
	}
}

func TestBlockedLUTrafficScalesLikeMatMul(t *testing.T) {
	const n = 32
	a := matrix.RandomDiagDominant(n, 5)
	words := map[int]float64{}
	for _, bs := range []int{4, 8} {
		mc := newMachine(t, 3*bs*bs, 0)
		if _, _, err := BlockedLU(mc, a, bs); err != nil {
			t.Fatal(err)
		}
		words[bs] = mc.Stats().Words
	}
	// Halving the block size (quartering M) roughly doubles W.
	r := words[4] / words[8]
	if r < 1.4 || r > 2.6 {
		t.Errorf("LU W(M/4)/W(M) = %g, want ≈2", r)
	}
}

func TestBlockedLUSingular(t *testing.T) {
	mc := newMachine(t, 300, 0)
	if _, _, err := BlockedLU(mc, matrix.New(8, 8), 4); err == nil {
		t.Error("zero matrix should report a pivot failure")
	}
}

func TestFlopCountsMatch(t *testing.T) {
	const n, bs = 16, 4
	mc := newMachine(t, 3*bs*bs, 0)
	a := matrix.Random(n, n, 7)
	b := matrix.Random(n, n, 8)
	if _, err := BlockedMatMul(mc, a, b, bs); err != nil {
		t.Fatal(err)
	}
	if got, want := mc.Stats().Flops, 2*math.Pow(n, 3); got != want {
		t.Errorf("flops %g, want %g", got, want)
	}
}

func TestMessageCountRespectsLimit(t *testing.T) {
	const n, bs = 16, 4
	// m = 8 words: each 16-word block load costs 2 messages.
	mc := newMachine(t, 3*bs*bs, 8)
	a := matrix.Random(n, n, 9)
	b := matrix.Random(n, n, 10)
	if _, err := BlockedMatMul(mc, a, b, bs); err != nil {
		t.Fatal(err)
	}
	s := mc.Stats()
	if s.Msgs != s.Words/8 {
		t.Errorf("messages %g should be words/8 = %g", s.Msgs, s.Words/8)
	}
}
