// Package seq implements the paper's sequential machine model
// (Figure 1(a)): a processor with M words of fast memory in front of an
// unbounded slow memory, moving data in messages of at most m words. It
// counts the words and messages transferred and the flops executed, so the
// sequential communication lower bounds of Eq. 3–4 can be checked against
// real blocked algorithms.
//
// The machine is deliberately explicit: algorithms must Load data into
// fast memory before computing on it and Store results back; exceeding the
// fast-memory capacity is a programming error that panics. This keeps the
// measured W honest — nothing is cached implicitly.
package seq

import (
	"fmt"

	"perfscale/internal/matrix"
)

// Machine is a two-level sequential machine with tracked transfers.
type Machine struct {
	// FastWords is M, the fast-memory capacity in words.
	FastWords int
	// MaxMsgWords is m, the largest message between the levels; zero means
	// unlimited.
	MaxMsgWords int

	used  int
	stats Stats
}

// Stats holds the counted costs of a sequential execution.
type Stats struct {
	// Flops is F.
	Flops float64
	// Words is W: total words moved between slow and fast memory
	// (loads + stores).
	Words float64
	// Msgs is S: transfers, counting ⌈k/m⌉ per k-word operation.
	Msgs float64
	// PeakFast is the high-water mark of fast-memory residency.
	PeakFast int
}

// New returns a machine with M words of fast memory and message limit m.
func New(fastWords, maxMsg int) (*Machine, error) {
	if fastWords <= 0 {
		return nil, fmt.Errorf("seq: fast memory must be positive, got %d", fastWords)
	}
	if maxMsg < 0 || (maxMsg > 0 && maxMsg > fastWords) {
		return nil, fmt.Errorf("seq: message limit %d invalid for fast memory %d", maxMsg, fastWords)
	}
	return &Machine{FastWords: fastWords, MaxMsgWords: maxMsg}, nil
}

// Stats returns the accumulated counters.
func (mc *Machine) Stats() Stats { return mc.stats }

// FastUsed returns the current fast-memory residency in words.
func (mc *Machine) FastUsed() int { return mc.used }

func (mc *Machine) transfers(k int) float64 {
	if k == 0 {
		return 0
	}
	if mc.MaxMsgWords <= 0 {
		return 1
	}
	return float64((k + mc.MaxMsgWords - 1) / mc.MaxMsgWords)
}

// Load brings k words into fast memory, charging W += k and the message
// count; panics if the fast memory would overflow (the algorithm is
// violating its own blocking).
func (mc *Machine) Load(k int) {
	if k < 0 {
		panic("seq: negative load")
	}
	if mc.used+k > mc.FastWords {
		panic(fmt.Sprintf("seq: fast memory overflow: %d + %d > %d", mc.used, k, mc.FastWords))
	}
	mc.used += k
	if mc.used > mc.stats.PeakFast {
		mc.stats.PeakFast = mc.used
	}
	mc.stats.Words += float64(k)
	mc.stats.Msgs += mc.transfers(k)
}

// Store writes k words back to slow memory and releases them from fast
// memory, charging W += k.
func (mc *Machine) Store(k int) {
	mc.evict(k)
	mc.stats.Words += float64(k)
	mc.stats.Msgs += mc.transfers(k)
}

// Discard releases k words of fast memory without writing back (clean
// data), costing nothing.
func (mc *Machine) Discard(k int) { mc.evict(k) }

func (mc *Machine) evict(k int) {
	if k < 0 {
		panic("seq: negative eviction")
	}
	if k > mc.used {
		panic(fmt.Sprintf("seq: evicting %d words with only %d resident", k, mc.used))
	}
	mc.used -= k
}

// Compute charges flops floating-point operations on resident data.
func (mc *Machine) Compute(flops float64) {
	if flops < 0 {
		panic("seq: negative flops")
	}
	mc.stats.Flops += flops
}

// BlockedMatMul computes C = A·B with square blocking of size bs chosen to
// fit three blocks in fast memory, performing the actual arithmetic and
// charging every transfer: the cache-aware algorithm that attains the
// Hong–Kung bound W = Θ(n³/√M).
func BlockedMatMul(mc *Machine, a, b *matrix.Dense, bs int) (*matrix.Dense, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("seq: need equal square operands")
	}
	n := a.Rows
	if bs <= 0 || n%bs != 0 {
		return nil, fmt.Errorf("seq: block size %d must divide n = %d", bs, n)
	}
	if 3*bs*bs > mc.FastWords {
		return nil, fmt.Errorf("seq: three %d² blocks exceed fast memory %d", bs, mc.FastWords)
	}
	c := matrix.New(n, n)
	nb := n / bs
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			mc.Load(bs * bs) // C block accumulator
			cBlk := c.Block(i*bs, j*bs, bs, bs)
			for k := 0; k < nb; k++ {
				mc.Load(bs * bs) // A block
				mc.Load(bs * bs) // B block
				aBlk := a.Block(i*bs, k*bs, bs, bs)
				bBlk := b.Block(k*bs, j*bs, bs, bs)
				matrix.MulAdd(cBlk, aBlk, bBlk)
				mc.Compute(matrix.MulFlops(bs, bs, bs))
				mc.Discard(2 * bs * bs)
			}
			c.SetBlock(i*bs, j*bs, cBlk)
			mc.Store(bs * bs)
		}
	}
	return c, nil
}

// NaiveMatMul computes C = A·B with no blocking: every inner-product step
// reloads its operands, the cache-oblivious worst case W = Θ(n³). It keeps
// only three words resident.
func NaiveMatMul(mc *Machine, a, b *matrix.Dense) (*matrix.Dense, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("seq: need equal square operands")
	}
	n := a.Rows
	if mc.FastWords < 3 {
		return nil, fmt.Errorf("seq: need at least 3 words of fast memory")
	}
	c := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mc.Load(1) // accumulator
			s := 0.0
			for k := 0; k < n; k++ {
				mc.Load(2) // a(i,k), b(k,j)
				s += a.At(i, k) * b.At(k, j)
				mc.Compute(2)
				mc.Discard(2)
			}
			c.Set(i, j, s)
			mc.Store(1)
		}
	}
	return c, nil
}

// BlockedLU factors A (diagonally dominant, no pivoting) out of core with
// panel width bs: the right-looking algorithm whose transfer volume is
// Θ(n³/√M) like matmul's. Returns L and U.
func BlockedLU(mc *Machine, a *matrix.Dense, bs int) (l, u *matrix.Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("seq: non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if bs <= 0 || n%bs != 0 {
		return nil, nil, fmt.Errorf("seq: block size %d must divide n = %d", bs, n)
	}
	if 3*bs*bs > mc.FastWords {
		return nil, nil, fmt.Errorf("seq: three %d² blocks exceed fast memory %d", bs, mc.FastWords)
	}
	w := a.Clone()
	nb := n / bs
	for k := 0; k < nb; k++ {
		// Factor the diagonal block in fast memory.
		mc.Load(bs * bs)
		diag := w.Block(k*bs, k*bs, bs, bs)
		if err := matrix.LUInPlace(diag); err != nil {
			return nil, nil, fmt.Errorf("seq: panel %d: %w", k, err)
		}
		mc.Compute(matrix.LUFlops(bs))
		w.SetBlock(k*bs, k*bs, diag)
		lkk, ukk := matrix.SplitLU(diag)
		// Panel solves: stream the blocks through fast memory.
		for i := k + 1; i < nb; i++ {
			mc.Load(bs * bs)
			blk := w.Block(i*bs, k*bs, bs, bs)
			matrix.TriSolveUpperRight(ukk, blk)
			mc.Compute(matrix.TriSolveFlops(bs, bs))
			w.SetBlock(i*bs, k*bs, blk)
			mc.Store(bs * bs)
		}
		for j := k + 1; j < nb; j++ {
			mc.Load(bs * bs)
			blk := w.Block(k*bs, j*bs, bs, bs)
			matrix.TriSolveLowerUnit(lkk, blk)
			mc.Compute(matrix.TriSolveFlops(bs, bs))
			w.SetBlock(k*bs, j*bs, blk)
			mc.Store(bs * bs)
		}
		mc.Store(bs * bs) // diagonal block back out
		// Trailing update: load L_ik, U_kj, C_ij triples.
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				mc.Load(3 * bs * bs)
				lik := w.Block(i*bs, k*bs, bs, bs)
				ukj := w.Block(k*bs, j*bs, bs, bs)
				trail := w.Block(i*bs, j*bs, bs, bs)
				prod := matrix.Mul(lik, ukj)
				mc.Compute(matrix.MulFlops(bs, bs, bs))
				trail.Sub(prod)
				mc.Compute(float64(bs * bs))
				w.SetBlock(i*bs, j*bs, trail)
				mc.Store(bs * bs)
				mc.Discard(2 * bs * bs)
			}
		}
	}
	l, u = matrix.SplitLU(w)
	return l, u, nil
}
