// Package matmul implements distributed dense matrix multiplication on the
// virtual-time simulator: the classical 2D algorithms (Cannon, SUMMA), the
// 3D algorithm of Agarwal et al., and the 2.5D algorithm of Solomonik and
// Demmel that interpolates between them with a data-replication factor c.
//
// Every algorithm computes C = A·B for square matrices, executes the real
// arithmetic on real data, and is verified against serial multiplication.
// Initial block distribution and final gather are not charged to the
// simulation — the paper's models likewise assume the operands start
// distributed (one copy spread over the machine, Section III).
package matmul

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// RunResult bundles the assembled product and the simulation statistics.
type RunResult struct {
	// C is the assembled global product.
	C *matrix.Dense
	// Sim holds the per-rank counters and virtual clocks.
	Sim *sim.Result
}

// checkSquare validates operand shapes and divisibility by the grid size.
func checkSquare(a, b *matrix.Dense, q int) (int, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return 0, fmt.Errorf("matmul: need equal square operands, got %dx%d and %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if q <= 0 || n%q != 0 {
		return 0, fmt.Errorf("matmul: matrix size %d not divisible by grid size %d", n, q)
	}
	return n, nil
}

// Serial returns A·B computed locally — the verification baseline.
func Serial(a, b *matrix.Dense) *matrix.Dense { return matrix.Mul(a, b) }

// Cannon multiplies on a q×q process grid (p = q²) with Cannon's algorithm:
// an initial alignment permutation, then q multiply-shift steps. The block
// size is n/q, so each rank uses M = 3·(n/q)² words plus one shift buffer,
// and communicates W = Θ(n²/√p) words in S = Θ(√p) messages — the 2D
// baseline of the paper.
func Cannon(cost sim.Cost, q int, a, b *matrix.Dense) (*RunResult, error) {
	n, err := checkSquare(a, b, q)
	if err != nil {
		return nil, err
	}
	nb := n / q
	grid := sim.Grid2D{Rows: q, Cols: q}
	cBlocks := make([]*matrix.Dense, q*q)

	res, err := sim.Run(q*q, cost, func(r *sim.Rank) error {
		row, col := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		// Local blocks; charge 3 resident blocks to the memory tracker.
		r.Alloc(3 * nb * nb)
		aBlk := a.Block(row*nb, col*nb, nb, nb)
		bBlk := b.Block(row*nb, col*nb, nb, nb)
		cBlk := matrix.New(nb, nb)

		// Alignment: row i shifts A left by i, column j shifts B up by j.
		aBlk = matrix.FromData(nb, nb, rowComm.Shift(aBlk.Data, -row))
		bBlk = matrix.FromData(nb, nb, colComm.Shift(bBlk.Data, -col))

		for step := 0; step < q; step++ {
			matrix.MulAdd(cBlk, aBlk, bBlk)
			r.Compute(matrix.MulFlops(nb, nb, nb))
			if step < q-1 {
				aBlk.Data = rowComm.ShiftOwned(aBlk.Data, -1)
				bBlk.Data = colComm.ShiftOwned(bBlk.Data, -1)
			}
		}
		cBlocks[r.ID()] = cBlk
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{C: assemble(cBlocks, grid, nb), Sim: res}, nil
}

// SUMMA multiplies on a q×q grid with the broadcast-based SUMMA algorithm:
// q outer steps, each broadcasting a block column of A along rows and a
// block row of B along columns. Same asymptotic costs as Cannon with
// broadcast trees instead of shifts.
func SUMMA(cost sim.Cost, q int, a, b *matrix.Dense) (*RunResult, error) {
	n, err := checkSquare(a, b, q)
	if err != nil {
		return nil, err
	}
	nb := n / q
	grid := sim.Grid2D{Rows: q, Cols: q}
	cBlocks := make([]*matrix.Dense, q*q)

	res, err := sim.Run(q*q, cost, func(r *sim.Rank) error {
		row, col := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		r.Alloc(3 * nb * nb)
		aBlk := a.Block(row*nb, col*nb, nb, nb)
		bBlk := b.Block(row*nb, col*nb, nb, nb)
		cBlk := matrix.New(nb, nb)

		for t := 0; t < q; t++ {
			// Column t of the grid owns the A panel; row t owns the B panel.
			var aPanel, bPanel []float64
			if col == t {
				aPanel = aBlk.Data
			}
			if row == t {
				bPanel = bBlk.Data
			}
			aPanel = rowComm.Bcast(t, aPanel)
			bPanel = colComm.Bcast(t, bPanel)
			matrix.MulAdd(cBlk, matrix.FromData(nb, nb, aPanel), matrix.FromData(nb, nb, bPanel))
			r.Compute(matrix.MulFlops(nb, nb, nb))
		}
		cBlocks[r.ID()] = cBlk
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{C: assemble(cBlocks, grid, nb), Sim: res}, nil
}

// assemble stitches per-rank C blocks back into a global matrix.
func assemble(blocks []*matrix.Dense, grid sim.Grid2D, nb int) *matrix.Dense {
	c := matrix.New(grid.Rows*nb, grid.Cols*nb)
	for id, blk := range blocks {
		if blk == nil {
			continue
		}
		row, col := grid.Coords(id)
		c.SetBlock(row*nb, col*nb, blk)
	}
	return c
}
