package matmul

import (
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func TestSUMMARectMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ m, k, n, pr, pc, panel int }{
		{8, 8, 8, 2, 2, 4},    // square
		{16, 8, 12, 4, 2, 2},  // rectangular everything
		{6, 12, 10, 2, 2, 3},  // odd-ish panels
		{12, 24, 8, 4, 4, 2},  // wide k
		{20, 4, 20, 2, 2, 1},  // thin k, single-column panels
		{8, 8, 8, 1, 1, 8},    // single rank
		{24, 16, 24, 2, 4, 4}, // non-square grid
	} {
		a := matrix.Random(tc.m, tc.k, int64(tc.m+tc.k))
		b := matrix.Random(tc.k, tc.n, int64(tc.k+tc.n))
		want := matrix.Mul(a, b)
		got, err := SUMMARect(sim.Cost{}, tc.pr, tc.pc, tc.panel, a, b)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := got.C.MaxAbsDiff(want); d > 1e-10*float64(tc.k) {
			t.Errorf("%+v: max diff %g", tc, d)
		}
	}
}

func TestSUMMARectValidation(t *testing.T) {
	a := matrix.Random(8, 8, 1)
	b := matrix.Random(8, 8, 2)
	if _, err := SUMMARect(sim.Cost{}, 2, 2, 3, a, b); err == nil {
		t.Error("panel not dividing k should be rejected")
	}
	if _, err := SUMMARect(sim.Cost{}, 3, 2, 2, a, b); err == nil {
		t.Error("grid not dividing m should be rejected")
	}
	if _, err := SUMMARect(sim.Cost{}, 2, 2, 2, a, matrix.New(6, 8)); err == nil {
		t.Error("inner dimension mismatch should be rejected")
	}
	if _, err := SUMMARect(sim.Cost{}, 0, 2, 2, a, b); err == nil {
		t.Error("zero grid should be rejected")
	}
	// Panel straddling owner blocks: k=8, pc=4 => owner blocks of 2;
	// panel 4 would straddle them only if 2 % 4 != 0.
	if _, err := SUMMARect(sim.Cost{}, 2, 4, 4, matrix.Random(8, 8, 3), matrix.Random(8, 8, 4)); err == nil {
		t.Error("panel straddling owner blocks should be rejected")
	}
}

func TestSUMMARectAgreesWithSquareSUMMA(t *testing.T) {
	const n, q = 16, 4
	a := matrix.Random(n, n, 5)
	b := matrix.Random(n, n, 6)
	sq, err := SUMMA(sim.Cost{}, q, a, b)
	if err != nil {
		t.Fatal(err)
	}
	rect, err := SUMMARect(sim.Cost{}, q, q, n/q, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := sq.C.MaxAbsDiff(rect.C); d > 1e-11*n {
		t.Errorf("square vs rect SUMMA diff %g", d)
	}
}

func TestSUMMARectPanelWidthTradeoff(t *testing.T) {
	// Narrower panels mean more broadcasts (more messages) but the same
	// total words — the classic SUMMA latency/pipeline knob.
	const m, k, n = 16, 16, 16
	a := matrix.Random(m, k, 7)
	b := matrix.Random(k, n, 8)
	narrow, err := SUMMARect(sim.Cost{}, 2, 2, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := SUMMARect(sim.Cost{}, 2, 2, 8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	nm := narrow.Sim.MaxStats().MsgsSent
	wm := wide.Sim.MaxStats().MsgsSent
	if nm <= wm {
		t.Errorf("narrow panels should send more messages: %g vs %g", nm, wm)
	}
	// Flop totals identical.
	if narrow.Sim.TotalStats().Flops != wide.Sim.TotalStats().Flops {
		t.Error("panel width must not change arithmetic")
	}
}

func TestSUMMARectFlopBalance(t *testing.T) {
	const m, k, n = 16, 8, 12
	a := matrix.Random(m, k, 9)
	b := matrix.Random(k, n, 10)
	res, err := SUMMARect(sim.Cost{}, 4, 2, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * m * k * n
	if got := res.Sim.TotalStats().Flops; got != want {
		t.Errorf("total flops %g, want %g", got, want)
	}
	maxF := res.Sim.MaxStats().Flops
	if maxF != want/8 {
		t.Errorf("per-rank flops %g, want %g", maxF, want/8)
	}
}
