package matmul

import (
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func TestSUMMARectMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ m, k, n, pr, pc, panel int }{
		{8, 8, 8, 2, 2, 4},    // square
		{16, 8, 12, 4, 2, 2},  // rectangular everything
		{6, 12, 10, 2, 2, 3},  // odd-ish panels
		{12, 24, 8, 4, 4, 2},  // wide k
		{20, 4, 20, 2, 2, 1},  // thin k, single-column panels
		{8, 8, 8, 1, 1, 8},    // single rank
		{24, 16, 24, 2, 4, 4}, // non-square grid
	} {
		a := matrix.Random(tc.m, tc.k, int64(tc.m+tc.k))
		b := matrix.Random(tc.k, tc.n, int64(tc.k+tc.n))
		want := matrix.Mul(a, b)
		got, err := SUMMARect(sim.Cost{}, tc.pr, tc.pc, tc.panel, a, b)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := got.C.MaxAbsDiff(want); d > 1e-10*float64(tc.k) {
			t.Errorf("%+v: max diff %g", tc, d)
		}
	}
}

func TestSUMMARectValidation(t *testing.T) {
	a := matrix.Random(8, 8, 1)
	b := matrix.Random(8, 8, 2)
	if _, err := SUMMARect(sim.Cost{}, 2, 2, 3, a, b); err == nil {
		t.Error("panel not dividing k should be rejected")
	}
	if _, err := SUMMARect(sim.Cost{}, 3, 2, 2, a, b); err == nil {
		t.Error("grid not dividing m should be rejected")
	}
	if _, err := SUMMARect(sim.Cost{}, 2, 2, 2, a, matrix.New(6, 8)); err == nil {
		t.Error("inner dimension mismatch should be rejected")
	}
	if _, err := SUMMARect(sim.Cost{}, 0, 2, 2, a, b); err == nil {
		t.Error("zero grid should be rejected")
	}
	// Panel straddling owner blocks: k=8, pc=4 => owner blocks of 2;
	// panel 4 would straddle them only if 2 % 4 != 0.
	if _, err := SUMMARect(sim.Cost{}, 2, 4, 4, matrix.Random(8, 8, 3), matrix.Random(8, 8, 4)); err == nil {
		t.Error("panel straddling owner blocks should be rejected")
	}
}

func TestSUMMARectAgreesWithSquareSUMMA(t *testing.T) {
	const n, q = 16, 4
	a := matrix.Random(n, n, 5)
	b := matrix.Random(n, n, 6)
	sq, err := SUMMA(sim.Cost{}, q, a, b)
	if err != nil {
		t.Fatal(err)
	}
	rect, err := SUMMARect(sim.Cost{}, q, q, n/q, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := sq.C.MaxAbsDiff(rect.C); d > 1e-11*n {
		t.Errorf("square vs rect SUMMA diff %g", d)
	}
}

func TestSUMMARectPanelWidthTradeoff(t *testing.T) {
	// Narrower panels mean more broadcasts (more messages) but the same
	// total words — the classic SUMMA latency/pipeline knob.
	const m, k, n = 16, 16, 16
	a := matrix.Random(m, k, 7)
	b := matrix.Random(k, n, 8)
	narrow, err := SUMMARect(sim.Cost{}, 2, 2, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := SUMMARect(sim.Cost{}, 2, 2, 8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	nm := narrow.Sim.MaxStats().MsgsSent
	wm := wide.Sim.MaxStats().MsgsSent
	if nm <= wm {
		t.Errorf("narrow panels should send more messages: %g vs %g", nm, wm)
	}
	// Flop totals identical.
	if narrow.Sim.TotalStats().Flops != wide.Sim.TotalStats().Flops {
		t.Error("panel width must not change arithmetic")
	}
}

func TestSUMMARectBackendIdentity(t *testing.T) {
	// The event engine must be a perfect stand-in for the goroutine
	// runtime on rectangular shapes and non-square grids: every per-rank
	// counter — flops, words, messages, peak memory, and all four clock
	// decompositions — bit-identical, and the product matrix too. Priced
	// with nonzero α/β/γ and fragmented messages so the time counters are
	// exercised, not just the event counts.
	cost := sim.Cost{GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 16}
	for _, tc := range []struct{ m, k, n, pr, pc, panel int }{
		{16, 8, 12, 4, 2, 2},  // tall grid
		{12, 24, 8, 2, 4, 2},  // wide grid, wide k
		{24, 16, 24, 2, 4, 4}, // non-square grid, square-ish operands
		{20, 4, 8, 2, 2, 1},   // thin k
	} {
		a := matrix.Random(tc.m, tc.k, int64(3*tc.m+tc.k))
		b := matrix.Random(tc.k, tc.n, int64(3*tc.k+tc.n))
		gCost, eCost := cost, cost
		gCost.Runtime = sim.RuntimeGoroutine
		eCost.Runtime = sim.RuntimeEvent
		g, err := SUMMARect(gCost, tc.pr, tc.pc, tc.panel, a, b)
		if err != nil {
			t.Fatalf("%+v goroutine: %v", tc, err)
		}
		e, err := SUMMARect(eCost, tc.pr, tc.pc, tc.panel, a, b)
		if err != nil {
			t.Fatalf("%+v event: %v", tc, err)
		}
		if d := g.C.MaxAbsDiff(e.C); d != 0 {
			t.Errorf("%+v: backends disagree on C, max diff %g", tc, d)
		}
		perRankF := 2.0 * float64(tc.m*tc.k*tc.n) / float64(tc.pr*tc.pc)
		for id := range g.Sim.PerRank {
			if g.Sim.PerRank[id] != e.Sim.PerRank[id] {
				t.Errorf("%+v rank %d stats differ:\n  goroutine %+v\n  event     %+v",
					tc, id, g.Sim.PerRank[id], e.Sim.PerRank[id])
			}
			if f := g.Sim.PerRank[id].Flops; f != perRankF {
				t.Errorf("%+v rank %d flops %g, want exactly 2mkn/p = %g", tc, id, f, perRankF)
			}
		}
	}
}

func TestSUMMARectPerRankCounterPins(t *testing.T) {
	// Exact per-rank counter values at a rectangular shape, derived by hand
	// from the collective algorithms, checked on both backends.
	//
	// m=12 k=8 n=16 on a 2×2 grid with panel=2: rowsPer=6, colsPer=8,
	// aColsPer=bRowsPer=4, and k/panel = 4 broadcast steps. Every row and
	// column communicator has two members, so each BcastLarge of an L-word
	// panel (L even, ≥ 2) costs its root 1 (size announcement) + L/2
	// (scatter) + L/2 (ring all-gather) = L+1 words over 3 messages, and
	// the non-root L/2 words over 1 message. Each rank is root for exactly
	// 2 of the 4 A-panels (L_A = rowsPer·panel = 12) and 2 of the 4
	// B-panels (L_B = panel·colsPer = 16):
	//
	//   W_sent = W_recv = 2·13 + 2·6 + 2·17 + 2·8 = 88
	//   S_sent = S_recv = 2·3 + 2·1 + 2·3 + 2·1   = 16
	//   F      = 2·12·8·16/4                       = 768
	//   M      = 6·4 + 4·8 + 6·8                   = 104
	const (
		m, k, n, pr, pc, panel = 12, 8, 16, 2, 2, 2
		wantW                  = 88.0
		wantS                  = 16.0
		wantF                  = 768.0
		wantM                  = 104.0
	)
	a := matrix.Random(m, k, 11)
	b := matrix.Random(k, n, 12)
	for _, rt := range []sim.Runtime{sim.RuntimeGoroutine, sim.RuntimeEvent} {
		res, err := SUMMARect(sim.Cost{Runtime: rt}, pr, pc, panel, a, b)
		if err != nil {
			t.Fatalf("%v: %v", rt, err)
		}
		for id, s := range res.Sim.PerRank {
			if s.Flops != wantF {
				t.Errorf("%v rank %d: flops %g, want %g", rt, id, s.Flops, wantF)
			}
			if s.WordsSent != wantW || s.WordsRecv != wantW {
				t.Errorf("%v rank %d: words sent/recv %g/%g, want %g each", rt, id, s.WordsSent, s.WordsRecv, wantW)
			}
			if s.MsgsSent != wantS || s.MsgsRecv != wantS {
				t.Errorf("%v rank %d: msgs sent/recv %g/%g, want %g each", rt, id, s.MsgsSent, s.MsgsRecv, wantS)
			}
			if s.PeakMemWords != wantM {
				t.Errorf("%v rank %d: peak mem %g, want %g", rt, id, s.PeakMemWords, wantM)
			}
		}
	}
}

func TestSUMMARectFlopBalance(t *testing.T) {
	const m, k, n = 16, 8, 12
	a := matrix.Random(m, k, 9)
	b := matrix.Random(k, n, 10)
	res, err := SUMMARect(sim.Cost{}, 4, 2, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * m * k * n
	if got := res.Sim.TotalStats().Flops; got != want {
		t.Errorf("total flops %g, want %g", got, want)
	}
	maxF := res.Sim.MaxStats().Flops
	if maxF != want/8 {
		t.Errorf("per-rank flops %g, want %g", maxF, want/8)
	}
}
