package matmul

import (
	"testing"

	"perfscale/internal/sim"
)

// TestTwoPointFiveDWiringBitIdentical pins the sparse-wiring acceptance
// criterion on a real algorithm: a p=256 2.5D multiplication produces a
// bit-identical product matrix and bit-identical per-rank counters and
// clocks under dense and sparse wiring.
func TestTwoPointFiveDWiringBitIdentical(t *testing.T) {
	const n, q, c = 32, 8, 4 // p = q²·c = 256
	a, b := randPair(n, 42)
	cost := sim.Cost{GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6, MaxMsgWords: 16, ChargeReceiver: true}

	runWith := func(w sim.Wiring) *RunResult {
		cw := cost
		cw.Wiring = w
		res, err := TwoPointFiveD(cw, q, c, a, b)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		return res
	}
	dense, sparse := runWith(sim.WiringDense), runWith(sim.WiringSparse)

	if d := dense.C.MaxAbsDiff(sparse.C); d != 0 {
		t.Errorf("product matrices differ between wirings: max diff %g", d)
	}
	for id := range dense.Sim.PerRank {
		if dense.Sim.PerRank[id] != sparse.Sim.PerRank[id] {
			t.Errorf("rank %d stats differ:\ndense:  %+v\nsparse: %+v",
				id, dense.Sim.PerRank[id], sparse.Sim.PerRank[id])
		}
	}
	if dense.Sim.Time() != sparse.Sim.Time() {
		t.Errorf("virtual time differs: dense %g sparse %g", dense.Sim.Time(), sparse.Sim.Time())
	}
}
