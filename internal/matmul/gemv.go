package matmul

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// GemvResult bundles the product vector with simulation statistics.
type GemvResult struct {
	Y   []float64
	Sim *sim.Result
}

// Gemv computes y = A·x on a q×q grid: rank (i,j) holds block A_ij and the
// x_j slice (replicated down its column), computes the partial product, and
// the row reduction leaves y_i on column 0. This is the paper's BLAS2
// example: per-rank communication is Θ(n/√p) — the same order as the
// input/output data — so extra memory cannot reduce it and there is no
// perfect-strong-scaling region (Section III's discussion of Eq. 5).
func Gemv(cost sim.Cost, q int, a *matrix.Dense, x []float64) (*GemvResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matmul: gemv needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(x) != n {
		return nil, fmt.Errorf("matmul: vector length %d != %d", len(x), n)
	}
	if q <= 0 || n%q != 0 {
		return nil, fmt.Errorf("matmul: size %d not divisible by grid %d", n, q)
	}
	nb := n / q
	grid := sim.Grid2D{Rows: q, Cols: q}
	slices := make([][]float64, q)

	res, err := sim.Run(q*q, cost, func(r *sim.Rank) error {
		row, col := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		r.Alloc(nb*nb + 2*nb)
		aBlk := a.Block(row*nb, col*nb, nb, nb)
		xSlice := x[col*nb : (col+1)*nb]

		// Local partial y_i += A_ij · x_j.
		partial := make([]float64, nb)
		for i := 0; i < nb; i++ {
			s := 0.0
			for j := 0; j < nb; j++ {
				s += aBlk.At(i, j) * xSlice[j]
			}
			partial[i] = s
		}
		r.Compute(2 * float64(nb) * float64(nb))

		// Row-reduce the partials onto column 0.
		total := rowComm.ReduceLarge(0, partial, sim.OpSum)
		if col == 0 {
			slices[row] = total
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	y := make([]float64, n)
	for i, s := range slices {
		copy(y[i*nb:(i+1)*nb], s)
	}
	return &GemvResult{Y: y, Sim: res}, nil
}

// SerialGemv returns A·x computed locally.
func SerialGemv(a *matrix.Dense, x []float64) []float64 {
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for j := 0; j < a.Cols; j++ {
			s += a.At(i, j) * x[j]
		}
		y[i] = s
	}
	return y
}
