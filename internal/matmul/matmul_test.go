package matmul

import (
	"math"
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

var zeroCost = sim.Cost{}

// tol scales the comparison threshold with problem size.
func tol(n int) float64 { return 1e-10 * float64(n) }

func randPair(n int, seed int64) (*matrix.Dense, *matrix.Dense) {
	return matrix.Random(n, n, seed), matrix.Random(n, n, seed+1000)
}

func TestCannonMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q int }{
		{4, 1}, {8, 2}, {12, 3}, {16, 4}, {24, 4}, {30, 5},
	} {
		a, b := randPair(tc.n, int64(tc.n))
		want := Serial(a, b)
		got, err := Cannon(zeroCost, tc.q, a, b)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", tc.n, tc.q, err)
		}
		if d := got.C.MaxAbsDiff(want); d > tol(tc.n) {
			t.Errorf("n=%d q=%d: max diff %g", tc.n, tc.q, d)
		}
	}
}

func TestSUMMAMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q int }{
		{4, 1}, {8, 2}, {12, 3}, {16, 4}, {30, 5},
	} {
		a, b := randPair(tc.n, int64(tc.n)+7)
		want := Serial(a, b)
		got, err := SUMMA(zeroCost, tc.q, a, b)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", tc.n, tc.q, err)
		}
		if d := got.C.MaxAbsDiff(want); d > tol(tc.n) {
			t.Errorf("n=%d q=%d: max diff %g", tc.n, tc.q, d)
		}
	}
}

func TestTwoPointFiveDMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q, c int }{
		{8, 2, 1},  // Cannon special case
		{8, 2, 2},  // 3D special case (p = 8)
		{16, 4, 2}, // true 2.5D (p = 32)
		{16, 4, 4}, // 3D via 2.5D (p = 64)
		{24, 4, 2},
		{18, 6, 3}, // p = 108
	} {
		a, b := randPair(tc.n, int64(tc.n)+13)
		want := Serial(a, b)
		got, err := TwoPointFiveD(zeroCost, tc.q, tc.c, a, b)
		if err != nil {
			t.Fatalf("n=%d q=%d c=%d: %v", tc.n, tc.q, tc.c, err)
		}
		if d := got.C.MaxAbsDiff(want); d > tol(tc.n) {
			t.Errorf("n=%d q=%d c=%d: max diff %g", tc.n, tc.q, tc.c, d)
		}
	}
}

func TestThreeDMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q int }{
		{4, 1}, {8, 2}, {12, 3}, {16, 4},
	} {
		a, b := randPair(tc.n, int64(tc.n)+29)
		want := Serial(a, b)
		got, err := ThreeD(zeroCost, tc.q, a, b)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", tc.n, tc.q, err)
		}
		if d := got.C.MaxAbsDiff(want); d > tol(tc.n) {
			t.Errorf("n=%d q=%d: max diff %g", tc.n, tc.q, d)
		}
	}
}

func TestInputValidation(t *testing.T) {
	a, b := randPair(8, 1)
	if _, err := Cannon(zeroCost, 3, a, b); err == nil {
		t.Error("8 % 3 != 0 should be rejected")
	}
	if _, err := TwoPointFiveD(zeroCost, 4, 3, a, b); err == nil {
		t.Error("c=3 not dividing q=4 should be rejected")
	}
	if _, err := TwoPointFiveD(zeroCost, 4, 0, a, b); err == nil {
		t.Error("c=0 should be rejected")
	}
	rect := matrix.New(4, 6)
	if _, err := Cannon(zeroCost, 2, rect, rect); err == nil {
		t.Error("rectangular operands should be rejected")
	}
	if _, err := SUMMA(zeroCost, 2, matrix.New(4, 4), matrix.New(6, 6)); err == nil {
		t.Error("mismatched operands should be rejected")
	}
}

func TestFlopCountsBalanced(t *testing.T) {
	// Every algorithm performs exactly 2n³ flops in total, evenly split.
	const n, q = 16, 4
	a, b := randPair(n, 3)
	want := 2.0 * n * n * n

	cannon, err := Cannon(zeroCost, q, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := cannon.Sim.TotalStats().Flops; got != want {
		t.Errorf("Cannon total flops: got %g want %g", got, want)
	}
	perRank := want / (q * q)
	for id, s := range cannon.Sim.PerRank {
		if s.Flops != perRank {
			t.Errorf("Cannon rank %d flops %g, want %g", id, s.Flops, perRank)
		}
	}

	td, err := TwoPointFiveD(zeroCost, 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The fiber reduction's additions are real, counted flops, so the 2.5D
	// total slightly exceeds 2n³ — but by no more than one block sum per
	// rank.
	got := td.Sim.TotalStats().Flops
	nb := n / 4
	if got < want || got > want+float64(32*nb*nb) {
		t.Errorf("2.5D total flops: got %g want within [%g, %g]", got, want, want+float64(32*nb*nb))
	}
}

func TestCannonCommunicationScaling(t *testing.T) {
	// Doubling the grid (4x ranks) should roughly halve per-rank words for
	// fixed n: W = Θ(n²/√p).
	const n = 32
	a, b := randPair(n, 5)
	w := map[int]float64{}
	for _, q := range []int{2, 4} {
		res, err := Cannon(zeroCost, q, a, b)
		if err != nil {
			t.Fatal(err)
		}
		w[q] = res.Sim.MaxStats().WordsSent
	}
	ratio := w[2] / w[4]
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("W(q=2)/W(q=4) = %g, want ≈2", ratio)
	}
}

func TestTwoPointFiveDReplicationReducesWords(t *testing.T) {
	// At fixed p... not possible with our divisibility constraints; instead
	// verify the perfect-strong-scaling claim directly: scale p by c while
	// holding the per-rank block size (memory) fixed, and the per-rank
	// communication volume must not grow — the c layers split the work.
	const n = 24
	a, b := randPair(n, 9)
	// q=4, c=1: p=16, block 6x6.
	r1, err := TwoPointFiveD(zeroCost, 4, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Same block size (memory per rank), 2x and 4x the processors.
	r2, err := TwoPointFiveD(zeroCost, 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := TwoPointFiveD(zeroCost, 4, 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	w1 := r1.Sim.MaxStats().WordsSent
	w2 := r2.Sim.MaxStats().WordsSent
	w4 := r4.Sim.MaxStats().WordsSent
	if w2 >= w1 || w4 >= w1 {
		t.Errorf("per-rank words should shrink with replication: c=1:%g c=2:%g c=4:%g", w1, w2, w4)
	}
	// Memory per rank stays (3 blocks of the same size).
	m1 := r1.Sim.MaxStats().PeakMemWords
	m2 := r2.Sim.MaxStats().PeakMemWords
	if m1 != m2 {
		t.Errorf("per-rank memory should be constant: %g vs %g", m1, m2)
	}
}

func TestTwoPointFiveDPerfectStrongScalingTime(t *testing.T) {
	// Experiment E2 (simulator side): with realistic-ish costs, scaling
	// p -> c·p at fixed per-rank memory should cut simulated time by ≈c.
	cost := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
	const n = 96
	a, b := randPair(n, 11)
	t1, err := TwoPointFiveD(cost, 4, 1, a, b) // p=16
	if err != nil {
		t.Fatal(err)
	}
	t2, err := TwoPointFiveD(cost, 4, 2, a, b) // p=32, same block size
	if err != nil {
		t.Fatal(err)
	}
	t4, err := TwoPointFiveD(cost, 4, 4, a, b) // p=64
	if err != nil {
		t.Fatal(err)
	}
	s2 := t1.Sim.Time() / t2.Sim.Time()
	s4 := t1.Sim.Time() / t4.Sim.Time()
	// The model predicts exactly 2 and 4; the implementation pays the
	// replication and reduction constants the paper's big-O hides, so we
	// accept the shape with generous brackets.
	if s2 < 1.6 || s2 > 2.4 {
		t.Errorf("speedup at c=2: %g, want ≈2", s2)
	}
	if s4 < 2.3 || s4 > 4.6 {
		t.Errorf("speedup at c=4: %g, want ≈4", s4)
	}
}

func TestThreeDLowerCommThanCannon(t *testing.T) {
	// For the same n, 3D on p=q³ ranks moves fewer words per rank than
	// Cannon on p=q² ranks when memory allows — the Section III story.
	const n = 24
	a, b := randPair(n, 21)
	cn, err := Cannon(zeroCost, 4, a, b) // p=16
	if err != nil {
		t.Fatal(err)
	}
	td, err := ThreeD(zeroCost, 4, a, b) // p=64
	if err != nil {
		t.Fatal(err)
	}
	wCannon := cn.Sim.MaxStats().WordsSent
	w3D := td.Sim.MaxStats().WordsSent
	if w3D >= wCannon {
		t.Errorf("3D per-rank words %g should be below Cannon %g", w3D, wCannon)
	}
}

func TestCannonDeterministicTimes(t *testing.T) {
	cost := sim.Cost{GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-5}
	a, b := randPair(16, 2)
	r1, err := Cannon(cost, 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cannon(cost, 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sim.Time() != r2.Sim.Time() {
		t.Error("simulated time must be deterministic")
	}
	if math.Abs(r1.C.MaxAbsDiff(r2.C)) != 0 {
		t.Error("results must be bit-identical")
	}
}

func TestIdentityMultiplication(t *testing.T) {
	const n, q = 12, 3
	a := matrix.Random(n, n, 31)
	id := matrix.Identity(n)
	res, err := Cannon(zeroCost, q, a, id)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.C.MaxAbsDiff(a); d > 1e-12 {
		t.Errorf("A·I: max diff %g", d)
	}
	res, err = TwoPointFiveD(zeroCost, 2, 2, id, a)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.C.MaxAbsDiff(a); d > 1e-12 {
		t.Errorf("I·A: max diff %g", d)
	}
}

func TestSUMMAAndCannonAgree(t *testing.T) {
	const n, q = 20, 4
	a, b := randPair(n, 41)
	c1, err := Cannon(zeroCost, q, a, b)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := SUMMA(zeroCost, q, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := c1.C.MaxAbsDiff(c2.C); d > 1e-11 {
		t.Errorf("Cannon vs SUMMA diff %g", d)
	}
}

func TestTwoPointFiveDSUMMAMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q, c int }{
		{8, 2, 1}, {8, 2, 2}, {16, 4, 2}, {16, 4, 4}, {24, 4, 2},
	} {
		a, b := randPair(tc.n, int64(tc.n)+71)
		want := Serial(a, b)
		got, err := TwoPointFiveDSUMMA(zeroCost, tc.q, tc.c, a, b)
		if err != nil {
			t.Fatalf("n=%d q=%d c=%d: %v", tc.n, tc.q, tc.c, err)
		}
		if d := got.C.MaxAbsDiff(want); d > tol(tc.n) {
			t.Errorf("n=%d q=%d c=%d: max diff %g", tc.n, tc.q, tc.c, d)
		}
	}
}

func TestTwoPointFiveDVariantsAgree(t *testing.T) {
	const n, q, c = 24, 4, 2
	a, b := randPair(n, 73)
	cannon, err := TwoPointFiveD(zeroCost, q, c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	summa, err := TwoPointFiveDSUMMA(zeroCost, q, c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := cannon.C.MaxAbsDiff(summa.C); d > 1e-11*n {
		t.Errorf("Cannon-based and SUMMA-based 2.5D disagree by %g", d)
	}
	// Same flop totals modulo the fiber reduction.
	fc := cannon.Sim.TotalStats().Flops
	fs := summa.Sim.TotalStats().Flops
	if fc != fs {
		t.Errorf("flop totals differ: %g vs %g", fc, fs)
	}
}

func TestTwoPointFiveDSUMMAScaling(t *testing.T) {
	cost := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
	const n = 96
	a, b := randPair(n, 79)
	t1, err := TwoPointFiveDSUMMA(cost, 4, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := TwoPointFiveDSUMMA(cost, 4, 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := t1.Sim.Time() / t4.Sim.Time()
	if s < 2.0 || s > 4.6 {
		t.Errorf("SUMMA-based 2.5D speedup at c=4: %g, want ≈4", s)
	}
}
