package matmul

import (
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func TestGemvMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q int }{
		{4, 1}, {8, 2}, {12, 3}, {16, 4}, {24, 4},
	} {
		a := matrix.Random(tc.n, tc.n, int64(tc.n)+61)
		x := matrix.Random(tc.n, 1, int64(tc.n)+62).Data
		want := SerialGemv(a, x)
		got, err := Gemv(zeroCost, tc.q, a, x)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", tc.n, tc.q, err)
		}
		for i := range want {
			if math.Abs(got.Y[i]-want[i]) > 1e-11*float64(tc.n) {
				t.Errorf("n=%d q=%d: y[%d] = %g want %g", tc.n, tc.q, i, got.Y[i], want[i])
			}
		}
	}
}

func TestGemvValidation(t *testing.T) {
	a := matrix.Random(8, 8, 1)
	if _, err := Gemv(zeroCost, 3, a, make([]float64, 8)); err == nil {
		t.Error("8 % 3 != 0 should be rejected")
	}
	if _, err := Gemv(zeroCost, 2, a, make([]float64, 5)); err == nil {
		t.Error("vector length mismatch should be rejected")
	}
	if _, err := Gemv(zeroCost, 2, matrix.New(4, 6), make([]float64, 6)); err == nil {
		t.Error("non-square matrix should be rejected")
	}
}

func TestGemvCommunicationIsIOSized(t *testing.T) {
	// The BLAS2 story: per-rank words are Θ(n/√p) — the size of the
	// vector slices — and grow with neither M nor n²/p.
	const n = 64
	a := matrix.Random(n, n, 63)
	x := matrix.Random(n, 1, 64).Data
	for _, q := range []int{2, 4} {
		res, err := Gemv(zeroCost, q, a, x)
		if err != nil {
			t.Fatal(err)
		}
		words := res.Sim.MaxStats().WordsSent
		slice := float64(n / q)
		if words > 3*slice {
			t.Errorf("q=%d: per-rank words %g should be O(n/q) = %g", q, words, slice)
		}
	}
}

func TestGemvNoPerfectScalingInEnergy(t *testing.T) {
	// Model check: GEMV bandwidth energy grows as √p at fixed n — adding
	// processors costs energy, unlike the matmul/n-body regions.
	m := machine.SimDefault()
	e1 := core.Eval(m, bounds.GEMV(1<<14, 16, m.MaxMsgWords), 16, 1<<24).Energy.Bandwidth
	e2 := core.Eval(m, bounds.GEMV(1<<14, 64, m.MaxMsgWords), 64, 1<<22).Energy.Bandwidth
	if e2 <= e1 {
		t.Errorf("GEMV bandwidth energy should grow with p: %g -> %g", e1, e2)
	}
	// And the no-scaling ratio is Θ(1) for any n, p.
	for _, n := range []float64{1e3, 1e5, 1e7} {
		for _, p := range []float64{4, 256, 4096} {
			r := bounds.GEMVNoScalingRatio(n, p)
			if r < 0.5 || r > 2 {
				t.Errorf("n=%g p=%g: no-scaling ratio %g should be Θ(1)", n, p, r)
			}
		}
	}
}

func TestGemvFlopBalance(t *testing.T) {
	const n, q = 16, 4
	a := matrix.Random(n, n, 65)
	x := matrix.Random(n, 1, 66).Data
	res, err := Gemv(zeroCost, q, a, x)
	if err != nil {
		t.Fatal(err)
	}
	// 2n² multiply-add flops plus the reduction's additions.
	want := 2.0 * n * n
	got := res.Sim.TotalStats().Flops
	if got < want || got > want+float64(q*q*n) {
		t.Errorf("total flops %g, want about %g", got, want)
	}
	_ = sim.Cost{}
}
