package matmul

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// SUMMARect multiplies a general mA×kA matrix by a kA×nB matrix on a
// pr×pc process grid with the panel-based SUMMA algorithm: the k dimension
// is processed in panels of width panel; each step broadcasts a block
// column of A along rows and a block row of B along columns and
// accumulates a local rank-panel update. This is the general form a
// downstream user wants — the square SUMMA is the special case
// pr = pc, panel = k/pc.
//
// Requirements: pr | mA, pc | nB, panel | kA, and the k panels must be
// addressable by both grid dimensions: pc | kA and pr | kA (each panel is
// owned by the processor column resp. row whose block-cyclic slice of k
// contains it).
func SUMMARect(cost sim.Cost, pr, pc, panel int, a, b *matrix.Dense) (*RunResult, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("matmul: inner dimensions %d vs %d", a.Cols, b.Rows)
	}
	mA, kA, nB := a.Rows, a.Cols, b.Cols
	if pr <= 0 || pc <= 0 {
		return nil, fmt.Errorf("matmul: invalid grid %dx%d", pr, pc)
	}
	if mA%pr != 0 || nB%pc != 0 || kA%pc != 0 || kA%pr != 0 {
		return nil, fmt.Errorf("matmul: shapes (%d,%d,%d) not divisible by grid %dx%d", mA, kA, nB, pr, pc)
	}
	if panel <= 0 || kA%panel != 0 {
		return nil, fmt.Errorf("matmul: panel %d must divide k = %d", panel, kA)
	}
	// Panel ownership: A's k-columns are block-distributed over the pc
	// process columns (kA/pc each); B's k-rows over the pr process rows.
	// Panels must not straddle owners.
	if (kA/pc)%panel != 0 || (kA/pr)%panel != 0 {
		return nil, fmt.Errorf("matmul: panel %d straddles owner blocks (k/pc = %d, k/pr = %d)",
			panel, kA/pc, kA/pr)
	}

	rowsPer := mA / pr
	colsPer := nB / pc
	aColsPer := kA / pc
	bRowsPer := kA / pr
	grid := sim.Grid2D{Rows: pr, Cols: pc}
	cBlocks := make([]*matrix.Dense, pr*pc)

	res, err := sim.Run(pr*pc, cost, func(r *sim.Rank) error {
		row, col := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		r.Alloc(rowsPer*aColsPer + bRowsPer*colsPer + rowsPer*colsPer)
		aLoc := a.Block(row*rowsPer, col*aColsPer, rowsPer, aColsPer)
		bLoc := b.Block(row*bRowsPer, col*colsPer, bRowsPer, colsPer)
		cLoc := matrix.New(rowsPer, colsPer)

		for k0 := 0; k0 < kA; k0 += panel {
			// Broadcast A's panel columns [k0, k0+panel) along the row.
			aOwner := k0 / aColsPer
			var aPanel []float64
			if col == aOwner {
				aPanel = aLoc.Block(0, k0-aOwner*aColsPer, rowsPer, panel).Data
			}
			aPanel = rowComm.BcastLarge(aOwner, aPanel)
			// Broadcast B's panel rows along the column.
			bOwner := k0 / bRowsPer
			var bPanel []float64
			if row == bOwner {
				bPanel = bLoc.Block(k0-bOwner*bRowsPer, 0, panel, colsPer).Data
			}
			bPanel = colComm.BcastLarge(bOwner, bPanel)

			matrix.MulAdd(cLoc,
				matrix.FromData(rowsPer, panel, aPanel),
				matrix.FromData(panel, colsPer, bPanel))
			r.Compute(matrix.MulFlops(rowsPer, panel, colsPer))
		}
		cBlocks[r.ID()] = cLoc
		return nil
	})
	if err != nil {
		return nil, err
	}

	c := matrix.New(mA, nB)
	for id, blk := range cBlocks {
		row, col := grid.Coords(id)
		c.SetBlock(row*rowsPer, col*colsPer, blk)
	}
	return &RunResult{C: c, Sim: res}, nil
}
