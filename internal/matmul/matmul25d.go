package matmul

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// TwoPointFiveD multiplies on a q×q×c cuboid of p = q²·c ranks with the
// 2.5D algorithm of Solomonik and Demmel:
//
//  1. A and B live on layer 0 in q×q blocks; they are replicated to all c
//     layers over binomial trees on the fibers (the "use extra memory"
//     step — each rank now stores M = Θ(c·n²/p) words);
//  2. layer l runs q/c Cannon-style multiply-shift steps starting from an
//     alignment offset by l·q/c, so the c layers jointly cover all q outer
//     products without overlap;
//  3. the partial C blocks are summed across fibers back to layer 0.
//
// c = 1 reduces to Cannon; c = q (p = q³) reduces to the 3D algorithm with
// one multiply per layer. Requires c | q and q | n.
func TwoPointFiveD(cost sim.Cost, q, c int, a, b *matrix.Dense) (*RunResult, error) {
	n, err := checkSquare(a, b, q)
	if err != nil {
		return nil, err
	}
	if c <= 0 || q%c != 0 {
		return nil, fmt.Errorf("matmul: replication factor %d must divide grid size %d", c, q)
	}
	nb := n / q
	grid, err := sim.NewGrid3D(q, c, q*q*c)
	if err != nil {
		return nil, err
	}
	layer0 := grid.LayerGrid()
	cBlocks := make([]*matrix.Dense, q*q)
	stepsPerLayer := q / c

	res, err := sim.Run(q*q*c, cost, func(r *sim.Rank) error {
		row, col, layer := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		fiberComm, err := grid.FiberComm(r)
		if err != nil {
			return err
		}
		// Every rank stores its A, B and C blocks: 3·(n/q)² words, which is
		// the replicated footprint M = 3c·n²/p.
		r.Alloc(3 * nb * nb)

		// Step 1: replicate the layer-0 blocks down the fibers.
		r.Phase("replicate")
		var aData, bData []float64
		if layer == 0 {
			aData = a.Block(row*nb, col*nb, nb, nb).Data
			bData = b.Block(row*nb, col*nb, nb, nb).Data
		}
		aData = fiberComm.BcastLarge(0, aData)
		bData = fiberComm.BcastLarge(0, bData)

		// Step 2: per-layer alignment. Layer l starts at outer-product
		// offset l·(q/c): rank (i,j,l) must hold A(i, (j+i+off) mod q) and
		// B((i+j+off) mod q, j). Each rank forwards its block to the rank
		// that needs it — a permutation within the layer.
		r.Phase("align")
		off := layer * stepsPerLayer
		aDst := grid.RankAt(row, mod(col-row-off, q), layer)
		bDst := grid.RankAt(mod(row-col-off, q), col, layer)
		r.Send(aDst, aData)
		r.Send(bDst, bData)
		aBlk := matrix.FromData(nb, nb, r.Recv(grid.RankAt(row, mod(col+row+off, q), layer)))
		bBlk := matrix.FromData(nb, nb, r.Recv(grid.RankAt(mod(row+col+off, q), col, layer)))

		r.Phase("multiply-shift")
		cBlk := matrix.New(nb, nb)
		for step := 0; step < stepsPerLayer; step++ {
			matrix.MulAdd(cBlk, aBlk, bBlk)
			r.Compute(matrix.MulFlops(nb, nb, nb))
			if step < stepsPerLayer-1 {
				// Swap the backing buffers in place: allocating a fresh
				// wrapper per shift put ~2·p·q header objects per run on
				// the garbage collector for no observable difference.
				aBlk.Data = rowComm.ShiftOwned(aBlk.Data, -1)
				bBlk.Data = colComm.ShiftOwned(bBlk.Data, -1)
			}
		}

		// Step 3: sum partials across the fiber onto layer 0.
		r.Phase("reduce")
		sum := fiberComm.ReduceLarge(0, cBlk.Data, sim.OpSum)
		if layer == 0 {
			cBlocks[layer0.RankAt(row, col)] = matrix.FromData(nb, nb, sum)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{C: assemble(cBlocks, layer0, nb), Sim: res}, nil
}

// ThreeD multiplies on a q×q×q cube of p = q³ ranks with the 3D algorithm
// of Agarwal et al.: A(i,k) is broadcast to all ranks (i,·,k), B(k,j) to
// all ranks (·,j,k); rank (i,j,k) computes the single product
// A(i,k)·B(k,j); C(i,j) is reduced over k. Uses the maximum memory
// M = Θ(n²/p^(2/3)) and attains W = Θ(n²/p^(2/3)).
func ThreeD(cost sim.Cost, q int, a, b *matrix.Dense) (*RunResult, error) {
	n, err := checkSquare(a, b, q)
	if err != nil {
		return nil, err
	}
	nb := n / q
	grid, err := sim.NewGrid3D(q, q, q*q*q)
	if err != nil {
		return nil, err
	}
	layer0 := grid.LayerGrid()
	cBlocks := make([]*matrix.Dense, q*q)

	res, err := sim.Run(q*q*q, cost, func(r *sim.Rank) error {
		row, col, layer := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		fiberComm, err := grid.FiberComm(r)
		if err != nil {
			return err
		}
		r.Alloc(3 * nb * nb)

		// Owners on layer 0 ship A(i,k) to (i,k,k) and B(k,j) to (k,j,k),
		// which then broadcast within layer k.
		r.Phase("distribute")
		if layer == 0 {
			aOwn := a.Block(row*nb, col*nb, nb, nb).Data
			bOwn := b.Block(row*nb, col*nb, nb, nb).Data
			// A(row,col) is needed on layer `col`; B(row,col) on layer `row`.
			r.Send(grid.RankAt(row, col, col), aOwn)
			r.Send(grid.RankAt(row, col, row), bOwn)
		}
		var aSeed, bSeed []float64
		if layer == col {
			aSeed = r.Recv(grid.RankAt(row, col, 0))
		}
		if layer == row {
			bSeed = r.Recv(grid.RankAt(row, col, 0))
		}
		// Rank (i,j,k) needs A(i,k): held by (i,k,k); broadcast along the
		// row (fixed i, fixed k, varying j) from member j = k.
		r.Phase("broadcast")
		aData := rowComm.BcastLarge(layer, aSeed)
		// And B(k,j): held by (k,j,k); broadcast along the column from
		// member i = k.
		bData := colComm.BcastLarge(layer, bSeed)

		r.Phase("multiply")
		cBlk := matrix.New(nb, nb)
		matrix.MulAdd(cBlk, matrix.FromData(nb, nb, aData), matrix.FromData(nb, nb, bData))
		r.Compute(matrix.MulFlops(nb, nb, nb))

		r.Phase("reduce")
		sum := fiberComm.ReduceLarge(0, cBlk.Data, sim.OpSum)
		if layer == 0 {
			cBlocks[layer0.RankAt(row, col)] = matrix.FromData(nb, nb, sum)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{C: assemble(cBlocks, layer0, nb), Sim: res}, nil
}

// mod returns x modulo q in [0, q).
func mod(x, q int) int { return ((x % q) + q) % q }

// TwoPointFiveDSUMMA is the broadcast-based variant of the 2.5D algorithm:
// after the same fiber replication, each layer covers its q/c outer-product
// panels with SUMMA broadcasts instead of Cannon's alignment+shift
// pipeline, and the partial results reduce over fibers as before. Same
// asymptotic costs; the ablation contrasts broadcast trees against
// point-to-point shifts (the log c / log q latency factors the paper's
// footnote 4 mentions).
func TwoPointFiveDSUMMA(cost sim.Cost, q, c int, a, b *matrix.Dense) (*RunResult, error) {
	n, err := checkSquare(a, b, q)
	if err != nil {
		return nil, err
	}
	if c <= 0 || q%c != 0 {
		return nil, fmt.Errorf("matmul: replication factor %d must divide grid size %d", c, q)
	}
	nb := n / q
	grid, err := sim.NewGrid3D(q, c, q*q*c)
	if err != nil {
		return nil, err
	}
	layer0 := grid.LayerGrid()
	cBlocks := make([]*matrix.Dense, q*q)
	panelsPerLayer := q / c

	res, err := sim.Run(q*q*c, cost, func(r *sim.Rank) error {
		row, col, layer := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		fiberComm, err := grid.FiberComm(r)
		if err != nil {
			return err
		}
		r.Alloc(3 * nb * nb)

		r.Phase("replicate")
		var aData, bData []float64
		if layer == 0 {
			aData = a.Block(row*nb, col*nb, nb, nb).Data
			bData = b.Block(row*nb, col*nb, nb, nb).Data
		}
		aData = fiberComm.BcastLarge(0, aData)
		bData = fiberComm.BcastLarge(0, bData)
		aBlk := matrix.FromData(nb, nb, aData)
		bBlk := matrix.FromData(nb, nb, bData)

		r.Phase("summa")
		cBlk := matrix.New(nb, nb)
		aWrap := matrix.FromData(nb, nb, aData)
		bWrap := matrix.FromData(nb, nb, bData)
		for s := 0; s < panelsPerLayer; s++ {
			t := layer*panelsPerLayer + s
			aWrap.Data = rowComm.BcastLarge(t, blockIf(col == t, aBlk))
			bWrap.Data = colComm.BcastLarge(t, blockIf(row == t, bBlk))
			matrix.MulAdd(cBlk, aWrap, bWrap)
			r.Compute(matrix.MulFlops(nb, nb, nb))
		}

		r.Phase("reduce")
		sum := fiberComm.ReduceLarge(0, cBlk.Data, sim.OpSum)
		if layer == 0 {
			cBlocks[layer0.RankAt(row, col)] = matrix.FromData(nb, nb, sum)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{C: assemble(cBlocks, layer0, nb), Sim: res}, nil
}

// blockIf returns the block's data when cond holds, else nil.
func blockIf(cond bool, blk *matrix.Dense) []float64 {
	if cond {
		return blk.Data
	}
	return nil
}
