package lu

import (
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

var zeroCost = sim.Cost{}

// residual returns ||L·U − A||_max.
func residual(l, u, a *matrix.Dense) float64 {
	return matrix.Mul(l, u).MaxAbsDiff(a)
}

func TestSerialBlockedMatchesUnblocked(t *testing.T) {
	for _, tc := range []struct{ n, bs int }{
		{8, 4}, {16, 4}, {20, 8}, {32, 32}, {33, 8}, {7, 3},
	} {
		a := matrix.RandomDiagDominant(tc.n, int64(tc.n))
		l, u, err := SerialBlocked(a, tc.bs)
		if err != nil {
			t.Fatalf("n=%d bs=%d: %v", tc.n, tc.bs, err)
		}
		if d := residual(l, u, a); d > 1e-9*float64(tc.n) {
			t.Errorf("n=%d bs=%d: residual %g", tc.n, tc.bs, d)
		}
		// Cross-check against the unblocked kernel.
		w := a.Clone()
		if err := matrix.LUInPlace(w); err != nil {
			t.Fatal(err)
		}
		l2, u2 := matrix.SplitLU(w)
		if d := l.MaxAbsDiff(l2); d > 1e-9*float64(tc.n) {
			t.Errorf("n=%d: blocked L differs from unblocked by %g", tc.n, d)
		}
		if d := u.MaxAbsDiff(u2); d > 1e-9*float64(tc.n) {
			t.Errorf("n=%d: blocked U differs from unblocked by %g", tc.n, d)
		}
	}
}

func TestSerialBlockedRejectsNonSquare(t *testing.T) {
	if _, _, err := SerialBlocked(matrix.New(3, 4), 2); err == nil {
		t.Error("non-square should be rejected")
	}
}

func TestSerialBlockedSingular(t *testing.T) {
	if _, _, err := SerialBlocked(matrix.New(4, 4), 2); err == nil {
		t.Error("zero matrix should report a zero pivot")
	}
}

func TestTwoDMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q int }{
		{4, 1}, {8, 2}, {12, 3}, {16, 4}, {24, 4},
	} {
		a := matrix.RandomDiagDominant(tc.n, int64(tc.n)+5)
		res, err := TwoD(zeroCost, tc.q, a)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", tc.n, tc.q, err)
		}
		if d := residual(res.L, res.U, a); d > 1e-8*float64(tc.n) {
			t.Errorf("n=%d q=%d: residual %g", tc.n, tc.q, d)
		}
		// L unit-lower, U upper.
		for i := 0; i < tc.n; i++ {
			if res.L.At(i, i) != 1 {
				t.Fatalf("L diagonal not unit at %d", i)
			}
			for j := i + 1; j < tc.n; j++ {
				if res.L.At(i, j) != 0 {
					t.Fatalf("L not lower triangular at (%d,%d)", i, j)
				}
			}
			for j := 0; j < i; j++ {
				if res.U.At(i, j) != 0 {
					t.Fatalf("U not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestStackedMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q, c int }{
		{8, 2, 2},
		{16, 4, 2},
		{16, 4, 4},
		{24, 6, 3},
	} {
		a := matrix.RandomDiagDominant(tc.n, int64(tc.n)+9)
		res, err := Stacked(zeroCost, tc.q, tc.c, a)
		if err != nil {
			t.Fatalf("n=%d q=%d c=%d: %v", tc.n, tc.q, tc.c, err)
		}
		if d := residual(res.L, res.U, a); d > 1e-8*float64(tc.n) {
			t.Errorf("n=%d q=%d c=%d: residual %g", tc.n, tc.q, tc.c, d)
		}
	}
}

func TestStackedValidation(t *testing.T) {
	a := matrix.RandomDiagDominant(8, 1)
	if _, err := Stacked(zeroCost, 3, 1, a); err == nil {
		t.Error("8 % 3 != 0 should be rejected")
	}
	if _, err := Stacked(zeroCost, 2, 3, a); err == nil {
		t.Error("c > q should be rejected")
	}
	if _, err := Stacked(zeroCost, 2, 0, a); err == nil {
		t.Error("c = 0 should be rejected")
	}
	if _, err := TwoD(zeroCost, 2, matrix.New(3, 4)); err == nil {
		t.Error("non-square should be rejected")
	}
}

func TestStackedReducesBandwidth(t *testing.T) {
	// Same q (same block size): the broadcast traffic of each step stays on
	// one layer while the rank count grows by c, so the *average* per-rank
	// word volume falls with c — the W = O(n²/√(cp)) behaviour. (The
	// busiest single rank is a broadcast root whose tree fan-out cost does
	// not shrink, so the max is not the right metric here.)
	const n = 32
	a := matrix.RandomDiagDominant(n, 3)
	words := map[int]float64{}
	for _, c := range []int{1, 2, 4} {
		res, err := Stacked(zeroCost, 4, c, a)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		words[c] = res.Sim.TotalStats().WordsSent / float64(16*c)
	}
	if !(words[2] < words[1]) || !(words[4] < words[2]) {
		t.Errorf("average per-rank words should fall with c: %v", words)
	}
}

func TestLatencyDoesNotScaleWithC(t *testing.T) {
	// Section IV's LU claim: the critical path has q sequential steps of
	// broadcasts no matter how much memory is thrown at the problem. With a
	// latency-only cost model, the simulated time must NOT improve by more
	// than a small constant as c grows.
	const n = 32
	a := matrix.RandomDiagDominant(n, 7)
	cost := sim.Cost{AlphaT: 1} // pure latency
	times := map[int]float64{}
	for _, c := range []int{1, 2, 4} {
		res, err := Stacked(cost, 4, c, a)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		times[c] = res.Sim.Time()
	}
	if times[4] < times[1]/2 {
		t.Errorf("latency-dominated LU should not strong-scale with c: %v", times)
	}
}

func TestLatencyGrowsWithGrid(t *testing.T) {
	// More processors (larger q) lengthen the critical path in messages.
	cost := sim.Cost{AlphaT: 1}
	const n = 24
	a := matrix.RandomDiagDominant(n, 11)
	r2, err := TwoD(cost, 2, a)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := TwoD(cost, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Sim.Time() <= r2.Sim.Time() {
		t.Errorf("latency critical path should grow with q: q=2 %g vs q=4 %g",
			r2.Sim.Time(), r4.Sim.Time())
	}
}

func TestFlopsSplitAcrossLayers(t *testing.T) {
	// The busiest rank's flops should drop as c grows (updates split).
	const n = 48
	a := matrix.RandomDiagDominant(n, 13)
	flops := map[int]float64{}
	for _, c := range []int{1, 2} {
		res, err := Stacked(zeroCost, 4, c, a)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		flops[c] = res.Sim.MaxStats().Flops
	}
	if flops[2] >= flops[1] {
		t.Errorf("per-rank flops should fall with c: %v", flops)
	}
}

func TestTwoDDeterministic(t *testing.T) {
	cost := sim.Cost{GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6}
	a := matrix.RandomDiagDominant(16, 17)
	r1, err := TwoD(cost, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TwoD(cost, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sim.Time() != r2.Sim.Time() {
		t.Error("simulated time must be deterministic")
	}
	if r1.L.MaxAbsDiff(r2.L) != 0 || r1.U.MaxAbsDiff(r2.U) != 0 {
		t.Error("factors must be bit-identical")
	}
}
