package lu

import (
	"testing"

	"perfscale/internal/matrix"
)

func TestSolveRecoversKnownSolution(t *testing.T) {
	for _, n := range []int{1, 4, 16, 33} {
		a := matrix.RandomDiagDominant(n, int64(n)+21)
		xWant := matrix.Random(n, 3, int64(n)+22)
		b := matrix.Mul(a, xWant)
		x, err := SolveFactored(a, b, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := x.MaxAbsDiff(xWant); d > 1e-8*float64(n) {
			t.Errorf("n=%d: solution error %g", n, d)
		}
	}
}

func TestSolveResidual(t *testing.T) {
	n := 24
	a := matrix.RandomDiagDominant(n, 31)
	b := matrix.Random(n, 1, 32)
	x, err := SolveFactored(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := matrix.Mul(a, x)
	r.Sub(b)
	if d := r.MaxAbs(); d > 1e-9*float64(n) {
		t.Errorf("residual %g", d)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	l, u, err := SerialBlocked(matrix.RandomDiagDominant(4, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(l, u, matrix.New(5, 1)); err == nil {
		t.Error("rhs row mismatch should error")
	}
	if _, err := Solve(matrix.New(4, 3), u, matrix.New(4, 1)); err == nil {
		t.Error("non-square L should error")
	}
}

func TestSolveSingularU(t *testing.T) {
	l := matrix.Identity(3)
	u := matrix.New(3, 3) // zero diagonal
	if _, err := Solve(l, u, matrix.New(3, 1)); err == nil {
		t.Error("singular U should error")
	}
}

func TestDistributedResultSolve(t *testing.T) {
	// End to end: distributed factorization, then solve.
	n := 16
	a := matrix.RandomDiagDominant(n, 41)
	res, err := Stacked(zeroCost, 4, 2, a)
	if err != nil {
		t.Fatal(err)
	}
	xWant := matrix.Random(n, 2, 42)
	b := matrix.Mul(a, xWant)
	x, err := res.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := x.MaxAbsDiff(xWant); d > 1e-8*float64(n) {
		t.Errorf("distributed-factor solve error %g", d)
	}
}
