package lu

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// TwoDCyclic factors A on a q×q grid with a block-cyclic layout: the
// matrix is tiled into nb×nb blocks and block (I, J) lives on rank
// (I mod q, J mod q) — the ScaLAPACK distribution. Unlike the plain block
// layout of TwoD, every rank keeps working through the whole elimination,
// so per-rank flops stay balanced to within the tile granularity. The
// communication pattern is the same fan-out per block step; the critical
// path is n/nb sequential steps.
func TwoDCyclic(cost sim.Cost, q, nb int, a *matrix.Dense) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lu: non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if nb <= 0 || n%nb != 0 {
		return nil, fmt.Errorf("lu: block size %d must divide n = %d", nb, n)
	}
	numBlocks := n / nb
	if q <= 0 || numBlocks < q {
		return nil, fmt.Errorf("lu: need at least %d blocks for a %dx%d grid", q, q, q)
	}
	grid := sim.Grid2D{Rows: q, Cols: q}
	finals := make([]map[tileKey]*matrix.Dense, q*q)

	res, err := sim.Run(q*q, cost, func(r *sim.Rank) error {
		row, col := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		// Local tiles.
		local := map[tileKey]*matrix.Dense{}
		owned := 0
		for I := row; I < numBlocks; I += q {
			for J := col; J < numBlocks; J += q {
				local[tileKey{I, J}] = a.Block(I*nb, J*nb, nb, nb)
				owned++
			}
		}
		r.Alloc(owned * nb * nb)

		for k := 0; k < numBlocks; k++ {
			kr, kc := k%q, k%q
			// Factor the diagonal tile on its owner; broadcast it along the
			// owner's grid row and column (the panels need L_kk resp. U_kk).
			if row == kr && col == kc {
				diag := local[tileKey{k, k}]
				if err := matrix.LUInPlace(diag); err != nil {
					return fmt.Errorf("step %d: %w", k, err)
				}
				r.Compute(matrix.LUFlops(nb))
			}
			var diag *matrix.Dense
			if row == kr {
				diag = matrix.FromData(nb, nb, rowComm.Bcast(kc, tileDataIf(row == kr && col == kc, local, tileKey{k, k})))
			}
			if col == kc {
				diag = matrix.FromData(nb, nb, colComm.Bcast(kr, tileDataIf(row == kr && col == kc, local, tileKey{k, k})))
			}
			// Column panel: tiles (I, k) for I > k on grid column kc.
			if col == kc {
				_, ukk := matrix.SplitLU(diag)
				for I := firstOwned(row, k+1, q); I < numBlocks; I += q {
					blk := local[tileKey{I, k}]
					matrix.TriSolveUpperRight(ukk, blk)
					r.Compute(matrix.TriSolveFlops(nb, nb))
				}
			}
			// Row panel: tiles (k, J) for J > k on grid row kr.
			if row == kr {
				lkk, _ := matrix.SplitLU(diag)
				for J := firstOwned(col, k+1, q); J < numBlocks; J += q {
					blk := local[tileKey{k, J}]
					matrix.TriSolveLowerUnit(lkk, blk)
					r.Compute(matrix.TriSolveFlops(nb, nb))
				}
			}
			// Broadcast the panels: L_Ik along grid row I%q (root column kc);
			// U_kJ along grid column J%q (root row kr). Every rank stores
			// the factors relevant to its trailing tiles.
			lPanel := map[int]*matrix.Dense{}
			for I := k + 1; I < numBlocks; I++ {
				if I%q != row {
					continue
				}
				data := rowComm.Bcast(kc, tileDataIf(col == kc, local, tileKey{I, k}))
				lPanel[I] = matrix.FromData(nb, nb, data)
			}
			uPanel := map[int]*matrix.Dense{}
			for J := k + 1; J < numBlocks; J++ {
				if J%q != col {
					continue
				}
				data := colComm.Bcast(kr, tileDataIf(row == kr, local, tileKey{k, J}))
				uPanel[J] = matrix.FromData(nb, nb, data)
			}
			// Trailing update on owned tiles.
			for I := firstOwned(row, k+1, q); I < numBlocks; I += q {
				for J := firstOwned(col, k+1, q); J < numBlocks; J += q {
					blk := local[tileKey{I, J}]
					prod := matrix.Mul(lPanel[I], uPanel[J])
					r.Compute(matrix.MulFlops(nb, nb, nb))
					blk.Sub(prod)
					r.Compute(float64(nb * nb))
				}
			}
		}
		finals[r.ID()] = local
		return nil
	})
	if err != nil {
		return nil, err
	}

	l := matrix.New(n, n)
	u := matrix.New(n, n)
	for _, local := range finals {
		for kk, blk := range local {
			switch {
			case kk.I == kk.J:
				lb, ub := matrix.SplitLU(blk)
				l.SetBlock(kk.I*nb, kk.J*nb, lb)
				u.SetBlock(kk.I*nb, kk.J*nb, ub)
			case kk.I > kk.J:
				l.SetBlock(kk.I*nb, kk.J*nb, blk)
			default:
				u.SetBlock(kk.I*nb, kk.J*nb, blk)
			}
		}
	}
	return &Result{L: l, U: u, Sim: res}, nil
}

// tileKey addresses one nb×nb tile by block coordinates.
type tileKey struct{ I, J int }

// firstOwned returns the smallest index ≥ from congruent to mine mod q.
func firstOwned(mine, from, q int) int {
	i := from
	for i%q != mine {
		i++
	}
	return i
}

// tileDataIf returns the tile's data when the caller is the broadcast root.
func tileDataIf(cond bool, local map[tileKey]*matrix.Dense, k tileKey) []float64 {
	if cond {
		return local[k].Data
	}
	return nil
}
