// Package lu implements the paper's direct factorizations: LU without
// pivoting (stable for the diagonally dominant matrices used throughout) as
// a serial blocked reference, the classical 2D fan-out algorithm on a q×q
// grid, and a stacked-layer 2.5D-style variant that replicates partial sums
// across c layers to cut the bandwidth cost to O(n²/√(cp)) — the Section IV
// LU discussion. Cholesky (serial and distributed 2D) and LDLᵀ, which the
// paper's Section III bounds also cover, live here too, together with the
// triangular solvers that turn any of the factorizations into Ax = b.
//
// The paper's point about LU is that its bandwidth term strong-scales like
// matmul's while the latency term, tied to the length-q critical path of
// panel factorizations, does not. Both implementations expose exactly that:
// simulated message counts grow with √p no matter the replication factor.
package lu

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// Result bundles the factors with the simulation statistics.
type Result struct {
	L, U *matrix.Dense
	Sim  *sim.Result
}

// SerialBlocked factors a copy of A with a right-looking blocked algorithm
// of panel width bs, returning unit-lower L and upper U. It is the
// verification baseline for the distributed algorithms (matrix.LUInPlace is
// its own unblocked baseline).
func SerialBlocked(a *matrix.Dense, bs int) (l, u *matrix.Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("lu: non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if bs < 1 {
		bs = 32
	}
	w := a.Clone()
	for k0 := 0; k0 < n; k0 += bs {
		kb := min(bs, n-k0)
		// Factor the diagonal panel.
		diag := w.Block(k0, k0, kb, kb)
		if err := matrix.LUInPlace(diag); err != nil {
			return nil, nil, fmt.Errorf("lu: panel at %d: %w", k0, err)
		}
		w.SetBlock(k0, k0, diag)
		lkk, ukk := matrix.SplitLU(diag)
		rest := n - k0 - kb
		if rest > 0 {
			// L21 = A21·U11⁻¹ and U12 = L11⁻¹·A12.
			l21 := w.Block(k0+kb, k0, rest, kb)
			matrix.TriSolveUpperRight(ukk, l21)
			w.SetBlock(k0+kb, k0, l21)
			u12 := w.Block(k0, k0+kb, kb, rest)
			matrix.TriSolveLowerUnit(lkk, u12)
			w.SetBlock(k0, k0+kb, u12)
			// Trailing update A22 −= L21·U12.
			a22 := w.Block(k0+kb, k0+kb, rest, rest)
			prod := matrix.Mul(l21, u12)
			a22.Sub(prod)
			w.SetBlock(k0+kb, k0+kb, a22)
		}
	}
	l, u = matrix.SplitLU(w)
	return l, u, nil
}

// TwoD factors A on a q×q grid (p = q²) with the fan-out algorithm:
// at step k the diagonal owner factors its block and broadcasts the
// triangular factors along row and column k; the panel owners solve for
// their L/U blocks and broadcast them along their own rows/columns; the
// trailing ranks apply the rank-nb update. q sequential steps give the
// non-scaling S = Θ(√p·log p) latency term of Section IV.
func TwoD(cost sim.Cost, q int, a *matrix.Dense) (*Result, error) {
	return stacked(cost, q, 1, a)
}

// Stacked factors A on a q×q×c cuboid (p = q²·c): every layer accumulates
// a partial sum of the trailing matrix; step k's panels are summed across
// the fibers onto the active layer k mod c, which performs the 2D step and
// keeps the finished L/U panels. Each layer applies only its ⌈q/c⌉ share of
// the trailing updates, so per-rank flops and bandwidth both drop by c
// while the q-step critical path — the latency term — remains.
func Stacked(cost sim.Cost, q, c int, a *matrix.Dense) (*Result, error) {
	return stacked(cost, q, c, a)
}

func stacked(cost sim.Cost, q, c int, a *matrix.Dense) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lu: non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if q <= 0 || n%q != 0 {
		return nil, fmt.Errorf("lu: size %d not divisible by grid %d", n, q)
	}
	if c < 1 || c > q {
		return nil, fmt.Errorf("lu: replication %d must be in [1, q=%d]", c, q)
	}
	nb := n / q
	grid, err := sim.NewGrid3D(q, c, q*q*c)
	if err != nil {
		return nil, err
	}
	final := make([]*matrix.Dense, q*q) // finished blocks, packed LU on diag

	res, err := sim.Run(q*q*c, cost, func(r *sim.Rank) error {
		row, col, layer := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		fiberComm, err := grid.FiberComm(r)
		if err != nil {
			return err
		}
		r.Alloc(nb * nb)
		// Layer 0 starts with A; other layers with zero partial sums.
		var blk *matrix.Dense
		if layer == 0 {
			blk = a.Block(row*nb, col*nb, nb, nb)
		} else {
			blk = matrix.New(nb, nb)
		}

		done := false // this rank's block has been finalized
		for k := 0; k < q; k++ {
			r.Phase(fmt.Sprintf("step %d", k))
			active := k % c
			// Panel blocks: sum the c partials onto the active layer.
			if !done && (row == k || col == k) {
				total := fiberComm.ReduceLarge(active, blk.Data, sim.OpSum)
				if layer == active {
					blk = matrix.FromData(nb, nb, total)
				} else {
					blk = matrix.New(nb, nb) // contribution consumed
					done = true
				}
			}

			if layer == active {
				// Diagonal factorization and its broadcasts.
				if row == k && col == k {
					if err := matrix.LUInPlace(blk); err != nil {
						return fmt.Errorf("step %d: %w", k, err)
					}
					r.Compute(matrix.LUFlops(nb))
				}
				var diag *matrix.Dense
				if row == k {
					diag = matrix.FromData(nb, nb, rowComm.Bcast(k, blkDataIf(col == k, blk)))
				}
				if col == k {
					diag = matrix.FromData(nb, nb, colComm.Bcast(k, blkDataIf(row == k, blk)))
				}
				// Panel solves.
				if col == k && row > k {
					_, ukk := matrix.SplitLU(diag)
					matrix.TriSolveUpperRight(ukk, blk)
					r.Compute(matrix.TriSolveFlops(nb, nb))
				}
				if row == k && col > k {
					lkk, _ := matrix.SplitLU(diag)
					matrix.TriSolveLowerUnit(lkk, blk)
					r.Compute(matrix.TriSolveFlops(nb, nb))
				}
				// Panel broadcasts and trailing update.
				var lik, ukj *matrix.Dense
				if row > k {
					lik = matrix.FromData(nb, nb, rowComm.Bcast(k, blkDataIf(col == k, blk)))
				}
				if col > k {
					ukj = matrix.FromData(nb, nb, colComm.Bcast(k, blkDataIf(row == k, blk)))
				}
				if row > k && col > k {
					prod := matrix.Mul(lik, ukj)
					r.Compute(matrix.MulFlops(nb, nb, nb))
					blk.Sub(prod)
					r.Compute(float64(nb * nb))
				}
				// Finalize this step's panels.
				if !done && (row == k || col == k) {
					final[row*q+col] = blk
					done = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble L and U from the finalized blocks.
	l := matrix.New(n, n)
	u := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			blk := final[i*q+j]
			if blk == nil {
				return nil, fmt.Errorf("lu: block (%d,%d) never finalized", i, j)
			}
			switch {
			case i == j:
				lb, ub := matrix.SplitLU(blk)
				l.SetBlock(i*nb, j*nb, lb)
				u.SetBlock(i*nb, j*nb, ub)
			case i > j:
				l.SetBlock(i*nb, j*nb, blk)
			default:
				u.SetBlock(i*nb, j*nb, blk)
			}
		}
	}
	return &Result{L: l, U: u, Sim: res}, nil
}

// blkDataIf returns the block's data when cond holds (the caller is the
// broadcast root), else nil.
func blkDataIf(cond bool, blk *matrix.Dense) []float64 {
	if cond {
		return blk.Data
	}
	return nil
}
