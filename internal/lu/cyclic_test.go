package lu

import (
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func TestTwoDCyclicMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q, nb int }{
		{16, 2, 4}, // 4x4 blocks on 2x2
		{24, 2, 4}, // 6x6 blocks
		{32, 4, 4}, // 8x8 blocks on 4x4
		{24, 3, 4}, // 6x6 blocks on 3x3
		{16, 2, 8}, // 2x2 blocks, minimum
		{36, 2, 6},
	} {
		a := matrix.RandomDiagDominant(tc.n, int64(tc.n+tc.q+tc.nb))
		res, err := TwoDCyclic(zeroCost, tc.q, tc.nb, a)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := residual(res.L, res.U, a); d > 1e-8*float64(tc.n) {
			t.Errorf("%+v: residual %g", tc, d)
		}
		// Agrees with the unblocked kernel.
		w := a.Clone()
		if err := matrix.LUInPlace(w); err != nil {
			t.Fatal(err)
		}
		l2, u2 := matrix.SplitLU(w)
		if d := res.L.MaxAbsDiff(l2); d > 1e-8*float64(tc.n) {
			t.Errorf("%+v: L differs from unblocked by %g", tc, d)
		}
		if d := res.U.MaxAbsDiff(u2); d > 1e-8*float64(tc.n) {
			t.Errorf("%+v: U differs from unblocked by %g", tc, d)
		}
	}
}

func TestTwoDCyclicValidation(t *testing.T) {
	a := matrix.RandomDiagDominant(16, 1)
	if _, err := TwoDCyclic(zeroCost, 2, 5, a); err == nil {
		t.Error("non-dividing block size should be rejected")
	}
	if _, err := TwoDCyclic(zeroCost, 4, 8, a); err == nil {
		t.Error("fewer blocks than grid rows should be rejected")
	}
	if _, err := TwoDCyclic(zeroCost, 2, 4, matrix.New(3, 4)); err == nil {
		t.Error("non-square should be rejected")
	}
	if _, err := TwoDCyclic(zeroCost, 2, 8, matrix.New(16, 16)); err == nil {
		t.Error("singular matrix should report a pivot failure")
	}
}

func TestCyclicBalancesFlops(t *testing.T) {
	// The point of the cyclic layout: the busiest rank's flops approach the
	// average, whereas the plain block layout concentrates the late-stage
	// work on the high-index ranks.
	const n, q = 64, 2
	a := matrix.RandomDiagDominant(n, 31)
	cyc, err := TwoDCyclic(zeroCost, q, 8, a)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := TwoD(zeroCost, q, a)
	if err != nil {
		t.Fatal(err)
	}
	imbalance := func(res *Result) float64 {
		return res.Sim.MaxStats().Flops * float64(q*q) / res.Sim.TotalStats().Flops
	}
	ic, ib := imbalance(cyc), imbalance(blk)
	if ic >= ib {
		t.Errorf("cyclic imbalance %.3f should beat block imbalance %.3f", ic, ib)
	}
	if ic > 1.5 {
		t.Errorf("cyclic layout should be near-balanced, got %.3f", ic)
	}
}

func TestCyclicSmallerBlocksBalanceBetter(t *testing.T) {
	const n, q = 64, 2
	a := matrix.RandomDiagDominant(n, 33)
	imb := map[int]float64{}
	for _, nb := range []int{4, 16} {
		res, err := TwoDCyclic(zeroCost, q, nb, a)
		if err != nil {
			t.Fatal(err)
		}
		imb[nb] = res.Sim.MaxStats().Flops * float64(q*q) / res.Sim.TotalStats().Flops
	}
	if imb[4] > imb[16] {
		t.Errorf("finer blocks should balance at least as well: nb=4 %.3f vs nb=16 %.3f", imb[4], imb[16])
	}
}

func TestCyclicLatencyGrowsWithBlockCount(t *testing.T) {
	// Finer blocks lengthen the critical path: the classic granularity
	// tradeoff the 2.5D LU latency bound formalizes.
	const n, q = 32, 2
	a := matrix.RandomDiagDominant(n, 35)
	lat := sim.Cost{AlphaT: 1}
	coarse, err := TwoDCyclic(lat, q, 16, a)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := TwoDCyclic(lat, q, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Sim.Time() <= coarse.Sim.Time() {
		t.Errorf("finer blocks should pay more latency: %g vs %g",
			fine.Sim.Time(), coarse.Sim.Time())
	}
}

func TestCyclicSolveEndToEnd(t *testing.T) {
	const n = 24
	a := matrix.RandomDiagDominant(n, 37)
	res, err := TwoDCyclic(zeroCost, 2, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Random(n, 2, 38)
	b := matrix.Mul(a, want)
	x, err := res.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := x.MaxAbsDiff(want); d > 1e-8*float64(n) {
		t.Errorf("solve error %g", d)
	}
}
