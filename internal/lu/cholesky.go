package lu

import (
	"fmt"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// The paper's Section III notes its communication bounds cover "LU,
// Cholesky, LDLᵀ and QR decompositions"; Cholesky shares LU's cost shape
// (half the flops, same Θ(n³/(p√M)) words, same non-scaling latency
// critical path). This file provides the serial blocked factorization and
// the 2D fan-out distributed version.

// SerialCholesky factors a symmetric positive-definite A into L·Lᵀ with a
// right-looking blocked algorithm of panel width bs.
func SerialCholesky(a *matrix.Dense, bs int) (*matrix.Dense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lu: non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if bs < 1 {
		bs = 32
	}
	w := a.Clone()
	for k0 := 0; k0 < n; k0 += bs {
		kb := min(bs, n-k0)
		diag := w.Block(k0, k0, kb, kb)
		if err := matrix.CholeskyInPlace(diag); err != nil {
			return nil, fmt.Errorf("lu: cholesky panel at %d: %w", k0, err)
		}
		w.SetBlock(k0, k0, diag)
		lkk := diag.LowerTriangle()
		rest := n - k0 - kb
		if rest > 0 {
			// L21 = A21·L11⁻ᵀ: solve X·L11ᵀ = A21 (L11ᵀ is upper).
			l21 := w.Block(k0+kb, k0, rest, kb)
			matrix.TriSolveUpperRight(lkk.Transpose(), l21)
			w.SetBlock(k0+kb, k0, l21)
			// Trailing update A22 −= L21·L21ᵀ (full block for simplicity;
			// only the lower triangle is read afterwards).
			a22 := w.Block(k0+kb, k0+kb, rest, rest)
			a22.Sub(matrix.Mul(l21, l21.Transpose()))
			w.SetBlock(k0+kb, k0+kb, a22)
		}
	}
	return w.LowerTriangle(), nil
}

// Cholesky factors a symmetric positive-definite A on a q×q grid (p = q²)
// with the fan-out algorithm: at step k the diagonal owner factors its
// block and broadcasts L_kk down column k; the panel owners solve
// L_ik = A_ik·L_kk⁻ᵀ and broadcast along their rows; each L_jk also hops to
// the diagonal (j,j) and broadcasts down column j so the symmetric update
// A_ij −= L_ik·L_jkᵀ has both factors everywhere it is needed. The q-step
// critical path gives the same non-scaling latency as LU.
func Cholesky(cost sim.Cost, q int, a *matrix.Dense) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lu: non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if q <= 0 || n%q != 0 {
		return nil, fmt.Errorf("lu: size %d not divisible by grid %d", n, q)
	}
	nb := n / q
	grid := sim.Grid2D{Rows: q, Cols: q}
	final := make([]*matrix.Dense, q*q)

	res, err := sim.Run(q*q, cost, func(r *sim.Rank) error {
		row, col := grid.Coords(r.ID())
		rowComm, err := grid.RowComm(r)
		if err != nil {
			return err
		}
		colComm, err := grid.ColComm(r)
		if err != nil {
			return err
		}
		r.Alloc(nb * nb)
		blk := a.Block(row*nb, col*nb, nb, nb)
		done := false

		for k := 0; k < q; k++ {
			// Diagonal factorization; L_kk broadcast down column k.
			if row == k && col == k {
				if err := matrix.CholeskyInPlace(blk); err != nil {
					return fmt.Errorf("step %d: %w", k, err)
				}
				r.Compute(matrix.CholeskyFlops(nb))
				blk = blk.LowerTriangle()
				final[row*q+col] = blk
				done = true
			}
			var lkk *matrix.Dense
			if col == k {
				lkk = matrix.FromData(nb, nb, colComm.Bcast(k, blkDataIf(row == k, blk)))
			}
			// Panel solves on column k below the diagonal.
			if col == k && row > k {
				matrix.TriSolveUpperRight(lkk.Transpose(), blk)
				r.Compute(matrix.TriSolveFlops(nb, nb))
				final[row*q+col] = blk
				done = true
			}
			// L_ik travels along row i (the "left factor"); every rank in a
			// row i > k participates.
			var lik *matrix.Dense
			if row > k {
				lik = matrix.FromData(nb, nb, rowComm.Bcast(k, blkDataIf(col == k, blk)))
			}
			// L_jk reaches (j,j) and goes down column j (the "right
			// factor"): panel rank (j,k) sends to the diagonal rank, which
			// broadcasts along its column to every (i,j), i > j.
			if col == k && row > k {
				r.Send(grid.RankAt(row, row), blk.Data)
			}
			var ljk *matrix.Dense
			if row == col && row > k {
				ljk = matrix.FromData(nb, nb, r.Recv(grid.RankAt(row, k)))
			}
			if col > k {
				ljk = matrix.FromData(nb, nb, colComm.Bcast(col, blkDataIf(row == col, dataOrNil(ljk))))
			}
			// Symmetric trailing update on the lower triangle.
			if row > k && col > k && row >= col && !done {
				prod := matrix.Mul(lik, ljk.Transpose())
				r.Compute(matrix.MulFlops(nb, nb, nb))
				blk.Sub(prod)
				r.Compute(float64(nb * nb))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	l := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j <= i; j++ {
			blk := final[i*q+j]
			if blk == nil {
				return nil, fmt.Errorf("lu: cholesky block (%d,%d) never finalized", i, j)
			}
			l.SetBlock(i*nb, j*nb, blk)
		}
	}
	return &Result{L: l, U: l.Transpose(), Sim: res}, nil
}

// dataOrNil unwraps a possibly-nil block.
func dataOrNil(m *matrix.Dense) *matrix.Dense {
	if m == nil {
		return matrix.New(0, 0)
	}
	return m
}

// LDLT factors a symmetric matrix (with nonzero leading minors — e.g.
// symmetric diagonally dominant, definite or not) into L·D·Lᵀ with unit-
// lower L and diagonal D, the pivot-free symmetric factorization the
// paper's Section III lists alongside LU and Cholesky. Returns L and the
// diagonal of D.
func LDLT(a *matrix.Dense) (l *matrix.Dense, d []float64, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("lu: non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l = matrix.Identity(n)
	d = make([]float64, n)
	for j := 0; j < n; j++ {
		dj := a.At(j, j)
		for k := 0; k < j; k++ {
			dj -= l.At(j, k) * l.At(j, k) * d[k]
		}
		if dj == 0 {
			return nil, nil, fmt.Errorf("lu: zero pivot in LDLᵀ at %d", j)
		}
		d[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k) * d[k]
			}
			l.Set(i, j, s/dj)
		}
	}
	return l, d, nil
}
