package lu

import (
	"fmt"

	"perfscale/internal/matrix"
)

// Solve returns x with A·x = b, given the unit-lower L and upper U factors
// of A: forward substitution L·y = b, then back substitution U·x = y.
// b may have multiple right-hand-side columns.
func Solve(l, u, b *matrix.Dense) (*matrix.Dense, error) {
	n := l.Rows
	if l.Cols != n || u.Rows != n || u.Cols != n {
		return nil, fmt.Errorf("lu: factor shapes %dx%d / %dx%d", l.Rows, l.Cols, u.Rows, u.Cols)
	}
	if b.Rows != n {
		return nil, fmt.Errorf("lu: rhs has %d rows, want %d", b.Rows, n)
	}
	x := b.Clone()
	// Forward: L·y = b (unit diagonal).
	matrix.TriSolveLowerUnit(l, x)
	// Back: U·x = y.
	for j := 0; j < x.Cols; j++ {
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, j)
			for k := i + 1; k < n; k++ {
				s -= u.At(i, k) * x.At(k, j)
			}
			uii := u.At(i, i)
			if uii == 0 {
				return nil, fmt.Errorf("lu: singular U at %d", i)
			}
			x.Set(i, j, s/uii)
		}
	}
	return x, nil
}

// SolveFactored factors A (without pivoting; caller guarantees stability)
// and solves A·x = b in one call — the end-to-end path a downstream user
// takes.
func SolveFactored(a, b *matrix.Dense, panel int) (*matrix.Dense, error) {
	l, u, err := SerialBlocked(a, panel)
	if err != nil {
		return nil, err
	}
	return Solve(l, u, b)
}

// Solve solves A·x = b using this distributed factorization's assembled
// factors (the solve itself is serial; the paper's LU discussion concerns
// the factorization's communication, which dominates).
func (r *Result) Solve(b *matrix.Dense) (*matrix.Dense, error) {
	return Solve(r.L, r.U, b)
}
