package lu

import (
	"math"
	"testing"

	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func mathSqrt(x float64) float64 { return math.Sqrt(x) }

func TestSerialCholeskyReconstructs(t *testing.T) {
	for _, tc := range []struct{ n, bs int }{
		{4, 2}, {8, 4}, {16, 4}, {20, 8}, {15, 4},
	} {
		a := matrix.RandomSPD(tc.n, int64(tc.n))
		l, err := SerialCholesky(a, tc.bs)
		if err != nil {
			t.Fatalf("n=%d bs=%d: %v", tc.n, tc.bs, err)
		}
		recon := matrix.Mul(l, l.Transpose())
		if d := recon.MaxAbsDiff(a); d > 1e-8*float64(tc.n)*float64(tc.n) {
			t.Errorf("n=%d bs=%d: ||LLᵀ − A|| = %g", tc.n, tc.bs, d)
		}
		// L is lower triangular.
		for i := 0; i < tc.n; i++ {
			for j := i + 1; j < tc.n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L not lower at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestSerialCholeskyMatchesUnblocked(t *testing.T) {
	n := 16
	a := matrix.RandomSPD(n, 7)
	blocked, err := SerialCholesky(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Clone()
	if err := matrix.CholeskyInPlace(w); err != nil {
		t.Fatal(err)
	}
	unblocked := w.LowerTriangle()
	if d := blocked.MaxAbsDiff(unblocked); d > 1e-9*float64(n) {
		t.Errorf("blocked vs unblocked diff %g", d)
	}
}

func TestSerialCholeskyRejectsIndefinite(t *testing.T) {
	a := matrix.Identity(4)
	a.Set(2, 2, -1)
	if _, err := SerialCholesky(a, 2); err == nil {
		t.Error("indefinite matrix should be rejected")
	}
	if _, err := SerialCholesky(matrix.New(3, 4), 2); err == nil {
		t.Error("non-square should be rejected")
	}
}

func TestDistributedCholeskyMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, q int }{
		{4, 1}, {8, 2}, {12, 3}, {16, 4}, {24, 4},
	} {
		a := matrix.RandomSPD(tc.n, int64(tc.n)+3)
		res, err := Cholesky(zeroCost, tc.q, a)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", tc.n, tc.q, err)
		}
		want, err := SerialCholesky(a, 4)
		if err != nil {
			t.Fatal(err)
		}
		if d := res.L.MaxAbsDiff(want); d > 1e-8*float64(tc.n)*float64(tc.n) {
			t.Errorf("n=%d q=%d: L diff %g", tc.n, tc.q, d)
		}
		// U is Lᵀ by construction; the reconstruction closes the loop.
		recon := matrix.Mul(res.L, res.U)
		if d := recon.MaxAbsDiff(a); d > 1e-8*float64(tc.n)*float64(tc.n) {
			t.Errorf("n=%d q=%d: ||LLᵀ − A|| = %g", tc.n, tc.q, d)
		}
	}
}

func TestDistributedCholeskyValidation(t *testing.T) {
	a := matrix.RandomSPD(8, 1)
	if _, err := Cholesky(zeroCost, 3, a); err == nil {
		t.Error("8 % 3 != 0 should be rejected")
	}
	if _, err := Cholesky(zeroCost, 2, matrix.New(3, 4)); err == nil {
		t.Error("non-square should be rejected")
	}
	indef := matrix.Identity(8)
	indef.Set(5, 5, -2)
	if _, err := Cholesky(zeroCost, 2, indef); err == nil {
		t.Error("indefinite matrix should be rejected")
	}
}

func TestCholeskyHalfTheFlopsOfLU(t *testing.T) {
	const n, q = 24, 4
	spd := matrix.RandomSPD(n, 5)
	chol, err := Cholesky(zeroCost, q, spd)
	if err != nil {
		t.Fatal(err)
	}
	dd := matrix.RandomDiagDominant(n, 5)
	lures, err := TwoD(zeroCost, q, dd)
	if err != nil {
		t.Fatal(err)
	}
	cf := chol.Sim.TotalStats().Flops
	lf := lures.Sim.TotalStats().Flops
	ratio := cf / lf
	if ratio < 0.35 || ratio > 0.8 {
		t.Errorf("Cholesky/LU flop ratio %g, want ≈0.5", ratio)
	}
}

func TestCholeskyLatencyCriticalPath(t *testing.T) {
	// Same story as LU: the latency-only critical path grows with q.
	cost := sim.Cost{AlphaT: 1}
	a := matrix.RandomSPD(24, 9)
	r2, err := Cholesky(cost, 2, a)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Cholesky(cost, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Sim.Time() <= r2.Sim.Time() {
		t.Errorf("Cholesky critical path should grow with q: %g -> %g",
			r2.Sim.Time(), r4.Sim.Time())
	}
}

func TestCholeskySolve(t *testing.T) {
	// End to end: factor SPD system distributed, then solve.
	n := 16
	a := matrix.RandomSPD(n, 11)
	res, err := Cholesky(zeroCost, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	xWant := matrix.Random(n, 2, 12)
	b := matrix.Mul(a, xWant)
	// A = L·Lᵀ: solve L·y = b then Lᵀ·x = y. Reuse Solve with L having a
	// non-unit diagonal — scale into unit-lower plus upper forms instead:
	// Solve() expects unit-lower L and upper U, so feed (L·D⁻¹, D·Lᵀ) where
	// D = diag(L).
	lUnit := res.L.Clone()
	u := res.U.Clone()
	for i := 0; i < n; i++ {
		d := res.L.At(i, i)
		for r := 0; r < n; r++ {
			lUnit.Set(r, i, lUnit.At(r, i)/d)
		}
		for c := 0; c < n; c++ {
			u.Set(i, c, u.At(i, c)*d)
		}
	}
	x, err := Solve(lUnit, u, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := x.MaxAbsDiff(xWant); d > 1e-7*float64(n) {
		t.Errorf("SPD solve error %g", d)
	}
}

func TestLDLTReconstructs(t *testing.T) {
	for _, n := range []int{1, 4, 12} {
		a := matrix.RandomSPD(n, int64(n)+70)
		l, d, err := LDLT(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Reconstruct L·D·Lᵀ.
		ld := l.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				ld.Set(i, j, ld.At(i, j)*d[j])
			}
		}
		recon := matrix.Mul(ld, l.Transpose())
		if diff := recon.MaxAbsDiff(a); diff > 1e-8*float64(n)*float64(n) {
			t.Errorf("n=%d: ‖LDLᵀ − A‖ = %g", n, diff)
		}
	}
}

func TestLDLTIndefinite(t *testing.T) {
	// LDLᵀ handles symmetric indefinite matrices Cholesky rejects, as long
	// as the leading minors stay nonzero: diag(1, -1) works.
	a := matrix.Identity(2)
	a.Set(1, 1, -1)
	l, d, err := LDLT(a)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 1 || d[1] != -1 {
		t.Errorf("D = %v, want [1 -1]", d)
	}
	if l.At(1, 0) != 0 {
		t.Error("L should be identity here")
	}
	if _, err := SerialCholesky(a, 2); err == nil {
		t.Error("Cholesky should reject the same matrix")
	}
}

func TestLDLTMatchesCholeskyOnSPD(t *testing.T) {
	// On SPD input: L_chol = L_ldlt · sqrt(D).
	n := 8
	a := matrix.RandomSPD(n, 71)
	lc, err := SerialCholesky(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, d, err := LDLT(a)
	if err != nil {
		t.Fatal(err)
	}
	scaled := l.Clone()
	for j := 0; j < n; j++ {
		s := mathSqrt(d[j])
		for i := 0; i < n; i++ {
			scaled.Set(i, j, scaled.At(i, j)*s)
		}
	}
	if diff := scaled.MaxAbsDiff(lc); diff > 1e-9*float64(n) {
		t.Errorf("L·√D vs Cholesky L: %g", diff)
	}
}

func TestLDLTErrors(t *testing.T) {
	if _, _, err := LDLT(matrix.New(2, 3)); err == nil {
		t.Error("non-square should be rejected")
	}
	if _, _, err := LDLT(matrix.New(3, 3)); err == nil {
		t.Error("zero matrix should report a zero pivot")
	}
}
