package bounds

import (
	"math"
	"testing"
)

// --- exact values ------------------------------------------------------------

func TestClassicalMemIndepWordsValues(t *testing.T) {
	// n=64, p=8: 3·(n³/p)^(2/3) − 3n²/p = 3·(32768)^(2/3) − 1536 = 3072 − 1536.
	if got := ClassicalMemIndepWords(64, 8); !approx(got, 1536, 1e-12) {
		t.Fatalf("ClassicalMemIndepWords(64,8) = %g, want 1536", got)
	}
	// At p=1 a processor owns everything: the bound is exactly zero.
	if got := ClassicalMemIndepWords(64, 1); got != 0 {
		t.Fatalf("ClassicalMemIndepWords(64,1) = %g, want 0", got)
	}
	if got := ClassicalMemIndepWords(64, 0); got != 0 {
		t.Fatalf("p=0 must be vacuous, got %g", got)
	}
}

func TestMemDepWordsValue(t *testing.T) {
	// mults = 2^15, M = 16: 32768/(2√2·4) − 16.
	want := 32768/(2*math.Sqrt2*4) - 16
	if got := MemDepWords(32768, 16); !approx(got, want, 1e-12) {
		t.Fatalf("MemDepWords = %g, want %g", got, want)
	}
	if got := MemDepWords(10, 1e9); got != 0 {
		t.Fatalf("huge memory must floor the bound at 0, got %g", got)
	}
}

func TestFastMemIndepBelowClassical(t *testing.T) {
	// Strassen-like algorithms may communicate less: for large p the fast
	// memory-independent floor must sit below the classical one.
	n, p := 4096.0, 1<<12
	fast := FastMemIndepWords(n, float64(p), OmegaStrassen)
	classical := ClassicalMemIndepWords(n, float64(p))
	if fast <= 0 || classical <= 0 || fast >= classical {
		t.Fatalf("want 0 < fast (%g) < classical (%g) at n=%g p=%d", fast, classical, n, p)
	}
}

// --- rectangular bounds ------------------------------------------------------

func TestRectSquareReducesToClassical(t *testing.T) {
	for _, n := range []float64{32, 64, 1024} {
		for _, p := range []float64{1, 2, 8, 64, 4096} {
			w, regime := RectMemIndepWords(n, n, n, p)
			if regime != ThreeLargeDims {
				t.Fatalf("square n=%g p=%g regime = %v, want three-large", n, p, regime)
			}
			if want := ClassicalMemIndepWords(n, p); !approx(w, want, 1e-12) {
				t.Fatalf("square rect bound %g != classical %g (n=%g p=%g)", w, want, n, p)
			}
		}
	}
}

func TestRectRegimeClassification(t *testing.T) {
	// Tall-skinny C: m=4096, k=64, n=64. Faces: mk=262144, kn=4096, mn=262144;
	// s1=4096. Boundaries: p1 = mkn/(s2·√s1) = 2^24/(2^18·2^6) = 1,
	// p2 = mkn/s1^1.5 = 2^24/2^18 = 64.
	m, k, n := 4096.0, 64.0, 64.0
	p1, p2 := RectRegimeBoundaries(m, k, n)
	if !approx(p1, 1, 1e-12) || !approx(p2, 64, 1e-12) {
		t.Fatalf("boundaries = (%g, %g), want (1, 64)", p1, p2)
	}
	if _, r := RectAccesses(m, k, n, 4); r != TwoLargeDims {
		t.Fatalf("p=4 regime = %v, want two-large", r)
	}
	if _, r := RectAccesses(m, k, n, 256); r != ThreeLargeDims {
		t.Fatalf("p=256 regime = %v, want three-large", r)
	}
	// Outer-product-like shape with a genuine one-large regime: m=n=4096,
	// k=4 → s1 = mk = 16384, s2 = kn = 16384, p1 = mkn/(s2·√s1) = 32.
	m, k, n = 4096, 4, 4096
	p1, _ = RectRegimeBoundaries(m, k, n)
	if !approx(p1, 32, 1e-12) {
		t.Fatalf("one-large boundary = %g, want 32", p1)
	}
	if _, r := RectAccesses(m, k, n, 8); r != OneLargeDim {
		t.Fatalf("p=8 regime = %v, want one-large", r)
	}
}

func TestRectAccessesContinuityAtBoundaries(t *testing.T) {
	shapes := [][3]float64{
		{4096, 64, 64},
		{4096, 4, 4096},
		{1024, 128, 256},
		{65536, 256, 256},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		p1, p2 := RectRegimeBoundaries(m, k, n)
		for _, pb := range []float64{p1, p2} {
			if pb <= 1 {
				continue
			}
			lo, _ := RectAccesses(m, k, n, pb*(1-1e-9))
			hi, _ := RectAccesses(m, k, n, pb*(1+1e-9))
			if !approx(lo, hi, 1e-6) {
				t.Fatalf("shape %v: accesses jump at p=%g: %g vs %g", s, pb, lo, hi)
			}
		}
		// Exact boundary values: s1+2·s2 at p1, 3·s1 at p2.
		s1, s2, _ := sortedFaces(m, k, n)
		if acc, _ := RectAccesses(m, k, n, p1); !approx(acc, s1+2*s2, 1e-9) {
			t.Fatalf("shape %v: accesses(p1) = %g, want s1+2s2 = %g", s, acc, s1+2*s2)
		}
		if acc, _ := RectAccesses(m, k, n, p2); !approx(acc, 3*s1, 1e-9) {
			t.Fatalf("shape %v: accesses(p2) = %g, want 3s1 = %g", s, acc, 3*s1)
		}
	}
}

func TestRectAccessesMonotoneInP(t *testing.T) {
	shapes := [][3]float64{{4096, 64, 64}, {4096, 4, 4096}, {512, 512, 512}, {1000, 3, 7}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		prev := math.Inf(1)
		for p := 1.0; p <= 1<<20; p *= 2 {
			acc, _ := RectAccesses(m, k, n, p)
			if acc > prev*(1+1e-12) {
				t.Fatalf("shape %v: accesses increased at p=%g: %g > %g", s, p, acc, prev)
			}
			prev = acc
		}
	}
}

func TestMemDepMonotoneInPAndM(t *testing.T) {
	// The memory-dependent bound must not increase in p (mults = total/p)
	// or in M.
	total := math.Pow(2, 36)
	prev := math.Inf(1)
	for p := 1.0; p <= 1<<16; p *= 2 {
		w := MemDepWords(total/p, 1<<10)
		if w > prev*(1+1e-12) {
			t.Fatalf("MemDepWords increased in p at p=%g", p)
		}
		prev = w
	}
	prev = math.Inf(1)
	for mem := 4.0; mem <= 1<<24; mem *= 2 {
		w := MemDepWords(total/64, mem)
		if w > prev*(1+1e-12) {
			t.Fatalf("MemDepWords increased in M at M=%g", mem)
		}
		prev = w
	}
}

// --- dependent ↔ independent crossover ---------------------------------------

func TestPlateauCrossover(t *testing.T) {
	// At PEnd the constant-free attainable curve n³/(p√M) meets the
	// memory-independent shape n²/p^(2/3); ClassicalWordsAnyMemory must
	// switch branch exactly there, and Plateau.BindingAt must name the
	// switch.
	n, mem := 65536.0, float64(1<<24)
	pl := ClassicalPlateau(n, mem)
	if want := MatMulPMax(n, mem); pl.PEnd != want {
		t.Fatalf("PEnd = %g, want %g", pl.PEnd, want)
	}
	atEnd := ClassicalWordsAnyMemory(n, pl.PEnd, mem)
	dep := n * n * n / (pl.PEnd * math.Sqrt(mem))
	indep := n * n / math.Pow(pl.PEnd, 2.0/3.0)
	if !approx(dep, indep, 1e-9) || !approx(atEnd, dep, 1e-9) {
		t.Fatalf("curves do not meet at PEnd: dep %g indep %g any %g", dep, indep, atEnd)
	}
	if got := pl.BindingAt(pl.PEnd / 2); got != BoundClassicalMemDep {
		t.Fatalf("inside region binding = %q", got)
	}
	if got := pl.BindingAt(pl.PEnd * 2); got != BoundClassicalMemIndep {
		t.Fatalf("past region binding = %q", got)
	}
	// The endpoint itself is where the memory-independent bound starts to
	// bind: Past includes it, the interior does not.
	if !pl.Past(pl.PEnd) || !pl.Past(pl.PEnd*1.01) || pl.Past(pl.PEnd*0.99) {
		t.Fatal("Past misclassifies the endpoint")
	}
	// Strassen saturates earlier than classical for M < n².
	_, fast := Fig3Plateaus(n, mem)
	if fast.PEnd >= pl.PEnd {
		t.Fatalf("strassen plateau %g should end before classical %g", fast.PEnd, pl.PEnd)
	}
}

func TestNBodyPlateauCrossover(t *testing.T) {
	n, mem := 1e6, 100.0
	pl := NBodyPlateau(n, mem)
	if want := n * n / (mem * mem); pl.PEnd != want {
		t.Fatalf("PEnd = %g, want %g", pl.PEnd, want)
	}
	// n²/(p·M) == n/√p at PEnd.
	dep := n * n / (pl.PEnd * mem)
	indep := n / math.Sqrt(pl.PEnd)
	if !approx(dep, indep, 1e-9) {
		t.Fatalf("n-body curves do not meet at PEnd: %g vs %g", dep, indep)
	}
}

// --- composite ---------------------------------------------------------------

func TestMatMulBoundsAttribution(t *testing.T) {
	// Square classical: the memory-independent member is named classical.
	bs := MatMulBounds(MatMulProblem{M: 64, K: 64, N: 64, P: 8, Mem: 512})
	if len(bs.All) != 2 {
		t.Fatalf("want 2 members, got %d", len(bs.All))
	}
	mi := bs.MaxMemIndependent()
	if mi.Name != BoundClassicalMemIndep || !mi.MemIndependent {
		t.Fatalf("mem-independent member = %+v", mi)
	}
	if max := bs.Max(); max.Words < mi.Words {
		t.Fatalf("Max %g below a member %g", max.Words, mi.Words)
	}
	// Rectangular: named by regime, value matches RectMemIndepWords.
	bs = MatMulBounds(MatMulProblem{M: 4096, K: 64, N: 64, P: 4})
	w, regime := RectMemIndepWords(4096, 64, 64, 4)
	if got := bs.Max(); got.Name != regime.BoundName() || !approx(got.Words, w, 1e-12) {
		t.Fatalf("rect composite = %+v, want %s %g", got, regime.BoundName(), w)
	}
	// Strassen-like: the fast pair.
	bs = MatMulBounds(MatMulProblem{M: 4096, K: 4096, N: 4096, P: 49, Mem: 1 << 16, Omega0: OmegaStrassen})
	names := map[string]bool{}
	for _, b := range bs.All {
		names[b.Name] = true
	}
	if !names[BoundStrassenMemIndep] || !names[BoundStrassenMemDep] {
		t.Fatalf("strassen composite members = %v", names)
	}
	// Every member is the true max of a set built from itself alone.
	for _, b := range bs.All {
		if b.Words < 0 {
			t.Fatalf("negative bound %+v", b)
		}
	}
}

func TestCompositeMaxDominatesMembers(t *testing.T) {
	sets := []BoundSet{
		MatMulBounds(MatMulProblem{M: 48, K: 48, N: 48, P: 16, Mem: 432}),
		LUBounds(64, 32, 192),
		NBodyBounds(128, 16, 16, 7),
		FFTBounds(4096, 16, 512),
	}
	for i, bs := range sets {
		max := bs.Max()
		for _, b := range bs.All {
			if b.Words > max.Words {
				t.Fatalf("set %d: member %s (%g) exceeds Max %s (%g)", i, b.Name, b.Words, max.Name, max.Words)
			}
		}
	}
	var empty BoundSet
	if empty.Max().Words != 0 || empty.Max().Name != "" {
		t.Fatal("empty set Max must be the zero Bound")
	}
}

// --- Fig3Series regression (satellite: points=1 divide-by-zero) --------------

func TestFig3SeriesSinglePoint(t *testing.T) {
	n, mem := 65536.0, float64(1<<24)
	pts := Fig3Series(n, mem, 1)
	if len(pts) != 1 {
		t.Fatalf("points=1 returned %d points", len(pts))
	}
	pt := pts[0]
	if math.IsNaN(pt.P) || math.IsNaN(pt.ClassicalWP) || math.IsNaN(pt.StrassenWP) {
		t.Fatalf("points=1 produced NaN: %+v", pt)
	}
	if want := MatMulPMin(n, mem); !approx(pt.P, want, 1e-12) {
		t.Fatalf("single point P = %g, want pmin = %g", pt.P, want)
	}
	if got := Fig3Series(n, mem, 0); len(got) != 0 {
		t.Fatalf("points=0 returned %d points", len(got))
	}
}

// --- fuzz --------------------------------------------------------------------

// FuzzBounds checks the structural invariants of the rectangular LP closed
// forms and the composite on arbitrary coordinates: finiteness,
// non-negativity, the LP optimum sandwiched between its unconstrained
// relaxation and the trivial feasible point, square consistency, and
// monotonicity in p.
func FuzzBounds(f *testing.F) {
	f.Add(64.0, 64.0, 64.0, 8.0, 512.0)
	f.Add(4096.0, 64.0, 64.0, 4.0, 1024.0)
	f.Add(4096.0, 4.0, 4096.0, 8.0, 64.0)
	f.Add(3.0, 1000.0, 7.0, 13.0, 11.0)
	f.Fuzz(func(t *testing.T, m, k, n, p, mem float64) {
		// Clamp to a sane positive range; the bounds are only defined there.
		clamp := func(x, lo, hi float64) float64 {
			if math.IsNaN(x) || x < lo {
				return lo
			}
			if x > hi {
				return hi
			}
			return x
		}
		m = clamp(m, 1, 1e6)
		k = clamp(k, 1, 1e6)
		n = clamp(n, 1, 1e6)
		p = clamp(p, 1, 1e9)
		mem = clamp(mem, 1, 1e12)

		acc, regime := RectAccesses(m, k, n, p)
		if math.IsNaN(acc) || math.IsInf(acc, 0) || acc < 0 {
			t.Fatalf("RectAccesses(%g,%g,%g,%g) = %g", m, k, n, p, acc)
		}
		// LP optimum ≥ the unconstrained relaxation 3F^(2/3) and ≤ the
		// trivial feasible point (all three caps active).
		fShare := m * k * n / p
		if lo := 3 * math.Pow(fShare, 2.0/3.0); acc < lo*(1-1e-9) {
			t.Fatalf("accesses %g below unconstrained relaxation %g", acc, lo)
		}
		if hi := m*k + k*n + m*n; acc > hi*(1+1e-9) {
			t.Fatalf("accesses %g above trivial feasible %g (regime %v)", acc, hi, regime)
		}
		// Monotone non-increasing in p.
		acc2, _ := RectAccesses(m, k, n, 2*p)
		if acc2 > acc*(1+1e-9) {
			t.Fatalf("accesses not monotone: p=%g %g, 2p %g", p, acc, acc2)
		}
		// Square consistency.
		wSq, r := RectMemIndepWords(n, n, n, p)
		if r != ThreeLargeDims {
			t.Fatalf("square regime %v", r)
		}
		if want := ClassicalMemIndepWords(n, p); !approx(wSq, want, 1e-9) && math.Abs(wSq-want) > 1e-9 {
			t.Fatalf("square rect %g != classical %g", wSq, want)
		}
		// Composite invariants.
		bs := MatMulBounds(MatMulProblem{M: m, K: k, N: n, P: p, Mem: mem})
		max := bs.Max()
		for _, b := range bs.All {
			if b.Words < 0 || math.IsNaN(b.Words) || b.Words > max.Words {
				t.Fatalf("composite member %+v vs max %+v", b, max)
			}
		}
		// Memory-dependent bound monotone in mem.
		if MemDepWords(fShare, 2*mem) > MemDepWords(fShare, mem)+1e-9 {
			t.Fatalf("MemDepWords not monotone in mem at %g", mem)
		}
	})
}
