// Package bounds implements the communication lower bounds and attainable
// per-processor cost expressions of Section III–IV: the word and message
// bounds of Hong–Kung / Irony–Toledo–Tiskin / Ballard et al. (Eqs. 3–5),
// the 2.5D costs (Eq. 7, 8), their Strassen analogues, the n-body and FFT
// costs, the memory-independent strong-scaling limits, and the Figure 3
// series generator.
//
// All expressions follow the paper's convention of dropping constant
// factors; they are exact enough to compare shapes, crossovers and scaling
// regimes, which is all the paper's models consume.
package bounds

import "math"

// OmegaStrassen is log2(7), the exponent of Strassen's algorithm.
var OmegaStrassen = math.Log2(7)

// SequentialWords returns the sequential-model lower bound on words moved
// (Eq. 3): max(I+O, F/√M).
func SequentialWords(flops, mem, inputOutput float64) float64 {
	return math.Max(inputOutput, flops/math.Sqrt(mem))
}

// SequentialMessages returns the sequential message bound (Eq. 4):
// the word bound divided by the maximum message size m.
func SequentialMessages(flops, mem, inputOutput, maxMsg float64) float64 {
	return SequentialWords(flops, mem, inputOutput) / maxMsg
}

// ParallelWords returns the parallel-model per-processor word bound
// (Eq. 5): max(0, F/√M − (I+O)).
func ParallelWords(flops, mem, inputOutput float64) float64 {
	return math.Max(0, flops/math.Sqrt(mem)-inputOutput)
}

// ParallelMessages returns the parallel message bound: ParallelWords/m.
func ParallelMessages(flops, mem, inputOutput, maxMsg float64) float64 {
	return ParallelWords(flops, mem, inputOutput) / maxMsg
}

// Costs holds per-processor algorithm costs: the F, W and S of Eq. 1.
type Costs struct {
	Flops float64 // F
	Words float64 // W
	Msgs  float64 // S
}

// ClassicalMatMul returns the per-processor costs of communication-optimal
// classical (O(n³)) matrix multiplication with memory M per processor
// (Eq. 8): F = n³/p, W = n³/(p·√M), S = W/m. These are attained by the 2.5D
// algorithm for n²/p ≤ M ≤ n²/p^(2/3).
func ClassicalMatMul(n, p, mem, maxMsg float64) Costs {
	f := n * n * n / p
	w := n * n * n / (p * math.Sqrt(mem))
	return Costs{Flops: f, Words: w, Msgs: w / maxMsg}
}

// MatMul25D returns the communication costs of the 2.5D algorithm written
// in terms of the replication factor c (Eq. 7): W = n²/√(cp),
// S = √(p/c³) + log2(c). The flop count is n³/p.
func MatMul25D(n, p, c float64) Costs {
	w := n * n / math.Sqrt(c*p)
	s := math.Sqrt(p/(c*c*c)) + math.Log2(math.Max(c, 1))
	return Costs{Flops: n * n * n / p, Words: w, Msgs: s}
}

// FastMatMul returns the per-processor costs of a fast (Strassen-like)
// matrix multiplication algorithm with exponent omega0 (Section IV):
// F = n^ω0/p, W = n^ω0/(p·M^(ω0/2−1)), S = W/m. These are attained by CAPS
// for n²/p ≤ M ≤ n²/p^(2/ω0).
func FastMatMul(n, p, mem, maxMsg, omega0 float64) Costs {
	f := math.Pow(n, omega0) / p
	w := f / math.Pow(mem, omega0/2-1)
	return Costs{Flops: f, Words: w, Msgs: w / maxMsg}
}

// LU25D returns the per-processor costs of 2.5D LU (Section IV):
// the bandwidth term matches matmul, W = n³/(p·√M), but the latency term is
// S = n²/W = √(c·p) (a different lower bound, caused by the critical path),
// which does *not* strong scale.
func LU25D(n, p, mem float64) Costs {
	f := n * n * n / p
	w := n * n * n / (p * math.Sqrt(mem))
	return Costs{Flops: f, Words: w, Msgs: n * n / w}
}

// NBody returns the per-processor costs of the data-replicating direct
// n-body algorithm (Section IV): F = f·n²/p, W = n²/(p·M), S = W/m, valid
// for n/p ≤ M ≤ n/√p. flopsPerPair is the paper's f.
func NBody(n, p, mem, maxMsg, flopsPerPair float64) Costs {
	f := flopsPerPair * n * n / p
	w := n * n / (p * mem)
	return Costs{Flops: f, Words: w, Msgs: w / maxMsg}
}

// FFTNaive returns the per-processor costs of the cyclic-layout parallel
// FFT with a naive all-to-all: F = n·log2(n)/p, W = n/p, S = p.
func FFTNaive(n, p float64) Costs {
	return Costs{Flops: n * math.Log2(n) / p, Words: n / p, Msgs: p}
}

// FFTTree returns the per-processor costs with the tree (Bruck) all-to-all:
// F = n·log2(n)/p, W = n·log2(p)/p, S = log2(p).
func FFTTree(n, p float64) Costs {
	lg := math.Log2(math.Max(p, 1))
	return Costs{Flops: n * math.Log2(n) / p, Words: n * lg / p, Msgs: lg}
}

// --- Strong-scaling ranges -------------------------------------------------

// MatMulPMin returns the fewest processors that can hold one copy of the
// n×n inputs with M words each: pmin = n²/M.
func MatMulPMin(n, mem float64) float64 { return n * n / mem }

// MatMulPMax returns the end of the classical perfect-strong-scaling range
// (Ballard et al.): p = n³/M^(3/2). Beyond it extra memory cannot reduce
// communication.
func MatMulPMax(n, mem float64) float64 { return n * n * n / math.Pow(mem, 1.5) }

// FastMatMulPMax returns the end of the perfect-scaling range for a fast
// algorithm with exponent omega0: p = n^ω0/M^(ω0/2).
func FastMatMulPMax(n, mem, omega0 float64) float64 {
	return math.Pow(n, omega0) / math.Pow(mem, omega0/2)
}

// NBodyPMin returns n/M, the fewest processors that hold the n bodies.
func NBodyPMin(n, mem float64) float64 { return n / mem }

// NBodyPMax returns n²/M², the end of the n-body perfect-scaling range
// (M = n/√p there).
func NBodyPMax(n, mem float64) float64 { return n * n / (mem * mem) }

// InMatMulScalingRange reports whether (p, M) lies in the classical matmul
// perfect-strong-scaling region n²/p ≤ M ≤ n²/p^(2/3).
func InMatMulScalingRange(n, p, mem float64) bool {
	return mem >= n*n/p && mem <= n*n/math.Pow(p, 2.0/3.0)
}

// InNBodyScalingRange reports whether (p, M) lies in the n-body region
// n/p ≤ M ≤ n/√p.
func InNBodyScalingRange(n, p, mem float64) bool {
	return mem >= n/p && mem <= n/math.Sqrt(p)
}

// --- Memory-independent bounds and Figure 3 --------------------------------

// ClassicalWordsAnyMemory returns the classical per-processor word bound
// with unlimited memory exploitation: max(n³/(p·√M), n²/p^(2/3)). The first
// term governs inside the scaling range, the memory-independent second term
// beyond it; they meet at p = MatMulPMax.
func ClassicalWordsAnyMemory(n, p, mem float64) float64 {
	return math.Max(n*n*n/(p*math.Sqrt(mem)), n*n/math.Pow(p, 2.0/3.0))
}

// FastWordsAnyMemory is the Strassen-like analogue:
// max(n^ω0/(p·M^(ω0/2−1)), n²/p^(2/ω0)).
func FastWordsAnyMemory(n, p, mem, omega0 float64) float64 {
	return math.Max(math.Pow(n, omega0)/(p*math.Pow(mem, omega0/2-1)),
		n*n/math.Pow(p, 2/omega0))
}

// Fig3Point is one x-position of Figure 3: bandwidth cost × p for the
// classical and Strassen-like algorithms at processor count P.
type Fig3Point struct {
	P           float64
	ClassicalWP float64 // W·p, classical
	StrassenWP  float64 // W·p, fast with ω0 = log2 7
}

// Fig3Series reproduces Figure 3: for fixed n and per-processor memory M it
// sweeps p from pmin = n²/M to well past both saturation points and reports
// W·p, which is flat (perfect strong scaling) until p = n³/M^(3/2)
// (classical) resp. p = n^ω0/M^(ω0/2) (Strassen), then grows as p^(1/3)
// resp. p^(1−2/ω0).
func Fig3Series(n, mem float64, points int) []Fig3Point {
	pmin := MatMulPMin(n, mem)
	pmaxClassical := MatMulPMax(n, mem)
	// Sweep to 8x the classical saturation point on a log scale.
	pEnd := 8 * pmaxClassical
	out := make([]Fig3Point, 0, points)
	for i := 0; i < points; i++ {
		// A single-point series is the pmin point (i/(points-1) would be
		// 0/0 there).
		frac := 0.0
		if points > 1 {
			frac = float64(i) / float64(points-1)
		}
		p := pmin * math.Pow(pEnd/pmin, frac)
		out = append(out, Fig3Point{
			P:           p,
			ClassicalWP: ClassicalWordsAnyMemory(n, p, mem) * p,
			StrassenWP:  FastWordsAnyMemory(n, p, mem, OmegaStrassen) * p,
		})
	}
	return out
}

// GEMV returns the per-processor costs of distributed dense matrix-vector
// multiplication on a √p×√p grid: F = 2n²/p and W = Θ(n/√p) for the vector
// reduction/collection. This is the paper's BLAS2 example where the I+O
// term of Eq. 3 dominates: F/√M = (2n²/p)/(n/√p) = 2n/√p is the same order
// as the input/output data itself, so no data replication can reduce
// communication and no perfect-strong-scaling region exists.
func GEMV(n, p, maxMsg float64) Costs {
	w := 2 * n / math.Sqrt(p)
	return Costs{Flops: 2 * n * n / p, Words: w, Msgs: math.Max(1, w/maxMsg)}
}

// GEMVNoScalingRatio quantifies the no-scaling statement: the ratio of the
// flop-derived word bound F/√M to the input/output size at the natural
// memory M = n²/p. It is Θ(1) for every n and p — memory cannot buy
// anything — in contrast to matmul's Θ(n/√M) headroom.
func GEMVNoScalingRatio(n, p float64) float64 {
	f := 2 * n * n / p
	mem := n * n / p
	io := n/math.Sqrt(p) + n/math.Sqrt(p) // x slice in, y slice out
	return f / math.Sqrt(mem) / io
}
