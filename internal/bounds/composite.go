package bounds

import "math"

// Bound is one applicable communication lower bound on the busiest
// processor's words moved (sent + received), with attribution: which
// theorem produced it and whether it survives unlimited memory.
type Bound struct {
	// Name is one of the Bound* constants ("classical/memory-independent",
	// "rect/two-large-dims", ...).
	Name string `json:"name"`
	// Source cites the theorem (the Source* constants).
	Source string `json:"source"`
	// Words is the bound value, in words moved; zero when the bound is
	// vacuous at these coordinates.
	Words float64 `json:"words"`
	// MemIndependent marks bounds that hold for any amount of local
	// memory — the ones that end perfect strong scaling.
	MemIndependent bool `json:"mem_independent"`
}

// BoundSet is the composite of every lower bound applicable to one run.
// A simulated run must satisfy all of them, so the effective floor is the
// maximum; Max reports which member it is, attributing why communication
// cannot shrink further.
type BoundSet struct {
	All []Bound `json:"all"`
}

// add appends a bound, clamping negative values to zero.
func (bs *BoundSet) add(name, source string, words float64, memIndep bool) {
	bs.All = append(bs.All, Bound{
		Name: name, Source: source,
		Words: math.Max(0, words), MemIndependent: memIndep,
	})
}

// Max returns the binding bound — the member with the largest Words. The
// zero Bound (Words 0) is returned for an empty set.
func (bs BoundSet) Max() Bound {
	var best Bound
	for _, b := range bs.All {
		if b.Words > best.Words {
			best = b
		}
	}
	return best
}

// MaxMemIndependent returns the largest memory-independent member — the
// floor that no replication factor can tunnel under.
func (bs BoundSet) MaxMemIndependent() Bound {
	var best Bound
	for _, b := range bs.All {
		if b.MemIndependent && b.Words > best.Words {
			best = b
		}
	}
	return best
}

// MatMulProblem identifies one matmul instance for the composite
// constructors: C = A·B with A M×K and B K×N (all equal for square) on P
// processors with Mem words of local memory each. Mem ≤ 0 skips the
// memory-dependent bounds (they need a memory figure to bite). Omega0 > 0
// selects a Strassen-like algorithm with that exponent — the classical
// distributive-law bounds do not apply to it, so the set switches to the
// fast-matmul pair; Strassen-like bounds are stated for square shapes.
type MatMulProblem struct {
	M, K, N float64
	P       float64
	Mem     float64
	Omega0  float64
}

// Square reports whether the problem is n×n×n.
func (pr MatMulProblem) Square() bool { return pr.M == pr.K && pr.K == pr.N }

// MatMulBounds returns the composite bound set for a matmul run. For
// classical algorithms the memory-independent member is the tight
// rectangular bound (named classical/memory-independent on square shapes,
// rect/<regime> otherwise) plus the ITT memory-dependent bound; for
// Strassen-like algorithms the fast-matmul pair.
func MatMulBounds(pr MatMulProblem) BoundSet {
	var bs BoundSet
	if pr.Omega0 > 0 {
		bs.add(BoundStrassenMemIndep, SourceMemIndep,
			FastMemIndepWords(pr.N, pr.P, pr.Omega0), true)
		if pr.Mem > 0 {
			bs.add(BoundStrassenMemDep, SourceMemIndep,
				FastMemDepWords(pr.N, pr.P, pr.Mem, pr.Omega0), false)
		}
		return bs
	}
	w, regime := RectMemIndepWords(pr.M, pr.K, pr.N, pr.P)
	if pr.Square() {
		bs.add(BoundClassicalMemIndep, SourceMemIndep, w, true)
	} else {
		bs.add(regime.BoundName(), SourceRect, w, true)
	}
	if pr.Mem > 0 {
		bs.add(BoundClassicalMemDep, SourceITT,
			RectMemDepWords(pr.M, pr.K, pr.N, pr.P, pr.Mem), false)
	}
	return bs
}

// LUBounds returns the composite set for dense LU on p processors with M
// words each: LU embeds n³/3 classical multiplies, so the matmul bounds
// apply at that flop count, with the owned share taken over the 2n² words
// of input matrix plus factors.
func LUBounds(n, p, mem float64) BoundSet {
	var bs BoundSet
	if p > 0 {
		acc := 3 * math.Pow(n*n*n/(3*p), 2.0/3.0)
		bs.add(BoundLUMemIndep, SourceMemIndep, acc-2*n*n/p, true)
		if mem > 0 {
			bs.add(BoundLUMemDep, SourceITT, MemDepWords(n*n*n/(3*p), mem), false)
		}
	}
	return bs
}

// NBodyBounds returns the composite set for the direct n-body force
// computation, converted to words via wordsPerBody. memBodies is the
// per-processor capacity in bodies (the replicated algorithm's c·n/p).
func NBodyBounds(n, p, memBodies, wordsPerBody float64) BoundSet {
	var bs BoundSet
	bs.add(BoundNBodyMemIndep, SourceNBodyLW,
		NBodyMemIndepBodies(n, p, memBodies)*wordsPerBody, true)
	if memBodies > 0 {
		bs.add(BoundNBodyMemDep, SourceNBodyLW,
			NBodyMemDepBodies(n, p, memBodies)*wordsPerBody, false)
	}
	return bs
}

// FFTBounds returns the composite set for an n-point parallel FFT with
// per-processor capacity memComplex complex elements, in real words.
func FFTBounds(n, p, memComplex float64) BoundSet {
	var bs BoundSet
	bs.add(BoundFFTHongKung, SourceHongKung, FFTMemDepWords(n, p, memComplex), false)
	return bs
}
