package bounds

import (
	"math"
	"testing"
)

func approx(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < rel
	}
	return math.Abs(got-want)/math.Abs(want) < rel
}

func TestSequentialWords(t *testing.T) {
	// Flop term dominates: F/√M = 1000/10 = 100 > I+O = 50.
	if got := SequentialWords(1000, 100, 50); got != 100 {
		t.Errorf("got %g want 100", got)
	}
	// I/O term dominates.
	if got := SequentialWords(1000, 100, 500); got != 500 {
		t.Errorf("got %g want 500", got)
	}
}

func TestSequentialMessages(t *testing.T) {
	if got := SequentialMessages(1000, 100, 50, 10); got != 10 {
		t.Errorf("got %g want 10", got)
	}
}

func TestParallelWords(t *testing.T) {
	// F/√M − (I+O) = 100 − 30 = 70.
	if got := ParallelWords(1000, 100, 30); got != 70 {
		t.Errorf("got %g want 70", got)
	}
	// Enough I/O data: bound clamps at zero ("conceivably no communication").
	if got := ParallelWords(1000, 100, 500); got != 0 {
		t.Errorf("got %g want 0", got)
	}
}

func TestParallelMessages(t *testing.T) {
	if got := ParallelMessages(1000, 100, 30, 7); !approx(got, 10, 1e-12) {
		t.Errorf("got %g want 10", got)
	}
}

func TestClassicalMatMulCosts(t *testing.T) {
	n, p, mem, m := 1000.0, 8.0, 250000.0, 1000.0
	c := ClassicalMatMul(n, p, mem, m)
	if !approx(c.Flops, 1.25e8, 1e-12) {
		t.Errorf("F: got %g", c.Flops)
	}
	if !approx(c.Words, 1e9/(8*500), 1e-12) {
		t.Errorf("W: got %g", c.Words)
	}
	if !approx(c.Msgs, c.Words/m, 1e-12) {
		t.Errorf("S: got %g", c.Msgs)
	}
}

func TestMatMul25DReducesTo2DAnd3D(t *testing.T) {
	n, p := 1024.0, 64.0
	// c=1: W = n²/√p (2D / Cannon).
	c1 := MatMul25D(n, p, 1)
	if !approx(c1.Words, n*n/math.Sqrt(p), 1e-12) {
		t.Errorf("2D words: got %g", c1.Words)
	}
	if !approx(c1.Msgs, math.Sqrt(p), 1e-12) {
		t.Errorf("2D msgs: got %g", c1.Msgs)
	}
	// c=p^(1/3)=4: W = n²/p^(2/3) (3D).
	c3 := MatMul25D(n, p, 4)
	if !approx(c3.Words, n*n/math.Pow(p, 2.0/3.0), 1e-12) {
		t.Errorf("3D words: got %g", c3.Words)
	}
}

func TestMatMul25DPerfectScaling(t *testing.T) {
	// Scaling p -> c·p with replication c divides W and the √(p/c³) part of
	// S by c (the log c term is the paper's footnote 3 caveat).
	n, pmin := 4096.0, 16.0
	w1 := MatMul25D(n, pmin, 1)
	for _, c := range []float64{2, 4, 8} {
		wc := MatMul25D(n, c*pmin, c)
		if !approx(wc.Words, w1.Words/c, 1e-12) {
			t.Errorf("c=%g: W got %g want %g", c, wc.Words, w1.Words/c)
		}
	}
}

func TestFastMatMulMatchesClassicalAtOmega3(t *testing.T) {
	n, p, mem, m := 512.0, 8.0, 65536.0, 4096.0
	fast := FastMatMul(n, p, mem, m, 3)
	classical := ClassicalMatMul(n, p, mem, m)
	if !approx(fast.Flops, classical.Flops, 1e-12) || !approx(fast.Words, classical.Words, 1e-12) {
		t.Errorf("ω0=3 should equal classical: %+v vs %+v", fast, classical)
	}
}

func TestFastMatMulStrassenBeatsClassicalComm(t *testing.T) {
	// With ω0 < 3, Strassen moves fewer words for the same (n, p, M > 1).
	n, p, mem, m := 4096.0, 64.0, 262144.0, 4096.0
	fast := FastMatMul(n, p, mem, m, OmegaStrassen)
	classical := ClassicalMatMul(n, p, mem, m)
	if fast.Words >= classical.Words {
		t.Errorf("Strassen W %g should beat classical %g", fast.Words, classical.Words)
	}
	if fast.Flops >= classical.Flops {
		t.Errorf("Strassen F %g should beat classical %g", fast.Flops, classical.Flops)
	}
}

func TestLU25DLatencyDoesNotScale(t *testing.T) {
	n, mem := 8192.0, 1<<20
	pmin := MatMulPMin(n, float64(mem))
	base := LU25D(n, pmin, float64(mem))
	quad := LU25D(n, 4*pmin, float64(mem))
	// Bandwidth strong scales...
	if !approx(quad.Words, base.Words/4, 1e-12) {
		t.Errorf("LU bandwidth should scale: %g vs %g/4", quad.Words, base.Words)
	}
	// ...but latency grows: S = n²/W = √(cp)·const.
	if quad.Msgs <= base.Msgs {
		t.Errorf("LU latency should grow with p: %g vs %g", quad.Msgs, base.Msgs)
	}
	if !approx(quad.Msgs, 4*base.Msgs, 1e-12) {
		// S = n²/W and W fell by 4 => S rises by 4.
		t.Errorf("LU msgs: got %g want %g", quad.Msgs, 4*base.Msgs)
	}
}

func TestNBodyCosts(t *testing.T) {
	n, p, mem, m, f := 1e6, 100.0, 1e4, 1e3, 10.0
	c := NBody(n, p, mem, m, f)
	if !approx(c.Flops, f*n*n/p, 1e-12) {
		t.Errorf("F: got %g", c.Flops)
	}
	if !approx(c.Words, n*n/(p*mem), 1e-12) {
		t.Errorf("W: got %g", c.Words)
	}
	if !approx(c.Msgs, c.Words/m, 1e-12) {
		t.Errorf("S: got %g", c.Msgs)
	}
}

func TestNBodyPerfectScalingInW(t *testing.T) {
	// W = n²/(pM): doubling p at fixed M halves W (and F) — both scale.
	n, mem := 1e6, 1e4
	pmin := NBodyPMin(n, mem)
	base := NBody(n, pmin, mem, 1e3, 1)
	dbl := NBody(n, 2*pmin, mem, 1e3, 1)
	if !approx(dbl.Words, base.Words/2, 1e-12) || !approx(dbl.Flops, base.Flops/2, 1e-12) {
		t.Errorf("n-body W/F should halve: %+v vs %+v", dbl, base)
	}
}

func TestFFTCosts(t *testing.T) {
	n, p := 1024.0*1024, 64.0
	naive := FFTNaive(n, p)
	tree := FFTTree(n, p)
	if !approx(naive.Flops, n*20/p, 1e-12) { // log2(2^20)=20
		t.Errorf("FFT flops: got %g", naive.Flops)
	}
	if !approx(naive.Words, n/p, 1e-12) || naive.Msgs != p {
		t.Errorf("naive: %+v", naive)
	}
	if !approx(tree.Words, n*6/p, 1e-12) || !approx(tree.Msgs, 6, 1e-12) {
		t.Errorf("tree: %+v", tree)
	}
	// The tradeoff: tree sends fewer messages, more words.
	if tree.Msgs >= naive.Msgs || tree.Words <= naive.Words {
		t.Error("tree all-to-all should trade words for messages")
	}
}

func TestScalingRangeLimits(t *testing.T) {
	n, mem := 4096.0, 65536.0
	pmin := MatMulPMin(n, mem)
	pmax := MatMulPMax(n, mem)
	if !approx(pmin, 256, 1e-12) {
		t.Errorf("pmin: got %g want 256", pmin)
	}
	if !approx(pmax, 4096, 1e-12) { // n³/M^1.5 = 2^36/2^24
		t.Errorf("pmax: got %g want 4096", pmax)
	}
	// pmax = pmin^(3/2) when M = n²/pmin.
	if !approx(pmax, math.Pow(pmin, 1.5), 1e-12) {
		t.Errorf("pmax should equal pmin^1.5: %g vs %g", pmax, math.Pow(pmin, 1.5))
	}
	// Strassen's range ends earlier.
	fmax := FastMatMulPMax(n, mem, OmegaStrassen)
	if fmax >= pmax {
		t.Errorf("Strassen pmax %g should be below classical %g", fmax, pmax)
	}
	if fmax <= pmin {
		t.Errorf("Strassen pmax %g should exceed pmin %g", fmax, pmin)
	}
}

func TestInMatMulScalingRange(t *testing.T) {
	n := 4096.0
	mem := 65536.0
	pmin := MatMulPMin(n, mem)
	pmax := MatMulPMax(n, mem)
	for _, tc := range []struct {
		p    float64
		want bool
	}{
		{pmin, true},
		{pmin * 2, true},
		{pmax, true},
		{pmax * 1.01, false},
		{pmin * 0.99, false},
	} {
		if got := InMatMulScalingRange(n, tc.p, mem); got != tc.want {
			t.Errorf("p=%g: got %v want %v", tc.p, got, tc.want)
		}
	}
}

func TestInNBodyScalingRange(t *testing.T) {
	n := 1e6
	mem := 1e4
	pmin := NBodyPMin(n, mem) // 100
	pmax := NBodyPMax(n, mem) // 1e4
	if !InNBodyScalingRange(n, pmin, mem) || !InNBodyScalingRange(n, pmax, mem) {
		t.Error("range endpoints should be inside")
	}
	if InNBodyScalingRange(n, pmin/2, mem) || InNBodyScalingRange(n, pmax*2, mem) {
		t.Error("outside points should be excluded")
	}
}

func TestWordsAnyMemoryContinuity(t *testing.T) {
	// The bounded and memory-independent expressions must meet at pmax.
	n, mem := 8192.0, 65536.0
	pmax := MatMulPMax(n, mem)
	inRange := n * n * n / (pmax * math.Sqrt(mem))
	indep := n * n / math.Pow(pmax, 2.0/3.0)
	if !approx(inRange, indep, 1e-9) {
		t.Errorf("classical curves should meet at pmax: %g vs %g", inRange, indep)
	}
	fpmax := FastMatMulPMax(n, mem, OmegaStrassen)
	inRangeF := math.Pow(n, OmegaStrassen) / (fpmax * math.Pow(mem, OmegaStrassen/2-1))
	indepF := n * n / math.Pow(fpmax, 2/OmegaStrassen)
	if !approx(inRangeF, indepF, 1e-9) {
		t.Errorf("Strassen curves should meet at pmax: %g vs %g", inRangeF, indepF)
	}
}

func TestFig3Series(t *testing.T) {
	n, mem := 8192.0, 65536.0
	pts := Fig3Series(n, mem, 200)
	if len(pts) != 200 {
		t.Fatalf("points: %d", len(pts))
	}
	pmin := MatMulPMin(n, mem)
	pmaxC := MatMulPMax(n, mem)
	pmaxS := FastMatMulPMax(n, mem, OmegaStrassen)
	if !approx(pts[0].P, pmin, 1e-9) {
		t.Errorf("series should start at pmin: %g vs %g", pts[0].P, pmin)
	}
	if pts[len(pts)-1].P < pmaxC {
		t.Error("series should extend beyond the classical saturation point")
	}
	flatC := pts[0].ClassicalWP
	flatS := pts[0].StrassenWP
	var prevC, prevS float64
	for i, pt := range pts {
		// Monotone non-decreasing W·p.
		if i > 0 && (pt.ClassicalWP < prevC*(1-1e-12) || pt.StrassenWP < prevS*(1-1e-12)) {
			t.Fatalf("W·p must be non-decreasing at %g", pt.P)
		}
		prevC, prevS = pt.ClassicalWP, pt.StrassenWP
		// Inside each scaling range, W·p stays at its pmin value (flat).
		if pt.P <= pmaxC && !approx(pt.ClassicalWP, flatC, 1e-9) {
			t.Errorf("classical W·p not flat at p=%g: %g vs %g", pt.P, pt.ClassicalWP, flatC)
		}
		if pt.P <= pmaxS && !approx(pt.StrassenWP, flatS, 1e-9) {
			t.Errorf("Strassen W·p not flat at p=%g: %g vs %g", pt.P, pt.StrassenWP, flatS)
		}
	}
	// Past saturation both curves rise.
	last := pts[len(pts)-1]
	if !(last.ClassicalWP > flatC) || !(last.StrassenWP > flatS) {
		t.Error("W·p should rise past the saturation points")
	}
	// Strassen saturates earlier: at the classical saturation point the
	// Strassen curve is already rising.
	for _, pt := range pts {
		if pt.P > pmaxS*1.5 && pt.P < pmaxC*0.9 {
			if approx(pt.StrassenWP, flatS, 1e-6) {
				t.Errorf("Strassen W·p should have left the flat region at p=%g", pt.P)
			}
		}
	}
	// Strassen-like communicates less at pmin (lower flat value) — as drawn
	// in Figure 3, the Strassen line sits below the classical one.
	if flatS >= flatC {
		t.Errorf("Strassen flat W·p %g should sit below classical %g", flatS, flatC)
	}
}

func TestOmegaStrassenValue(t *testing.T) {
	if !approx(OmegaStrassen, 2.807354922, 1e-9) {
		t.Errorf("log2(7): got %.9f", OmegaStrassen)
	}
}
