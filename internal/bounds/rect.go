package bounds

import (
	"math"
	"sort"
)

// Tight rectangular matmul lower bounds (Al Daas, Ballard, Grigori, Kumar
// & Rouse, arXiv:2205.13407). For C = A·B with A m×k and B k×n on p
// processors, some processor performs ≥ mkn/p scalar multiplications; the
// Loomis–Whitney inequality says its accessed operand sets (a words of A,
// b of B, c of C) satisfy a·b·c ≥ (mkn/p)². The tight access bound is the
// exact optimum of
//
//	minimize  a + b + c
//	subject to a·b·c ≥ F²,  a ≤ mk,  b ≤ kn,  c ≤ mn,   F = mkn/p,
//
// whose closed form depends only on the sorted matrix sizes
// s1 ≤ s2 ≤ s3 of {mk, kn, mn}. Three regimes, by how many of the caps
// are inactive (equivalently how many dimensions stay "large" relative to
// the partitioning p):
//
//	three-large (p ≥ mkn/s1^(3/2)):      accesses ≥ 3·F^(2/3)
//	two-large   (p ≥ mkn/(s2·√s1)):      accesses ≥ 2·F/√s1 + s1
//	one-large   (otherwise):             accesses ≥ F²/(s1·s2) + s1 + s2
//
// The square case m = k = n is always three-large and reduces to the
// classical memory-independent bound 3·(n³/p)^(2/3).

// RectRegime identifies which aspect-ratio regime of the rectangular
// bound applies at a given (m, k, n, p).
type RectRegime int

// The three regimes, ordered by increasing p for a fixed shape.
const (
	OneLargeDim RectRegime = iota
	TwoLargeDims
	ThreeLargeDims
)

// String names the regime as used in bound attribution.
func (r RectRegime) String() string {
	switch r {
	case OneLargeDim:
		return "one-large-dim"
	case TwoLargeDims:
		return "two-large-dims"
	default:
		return "three-large-dims"
	}
}

// BoundName returns the composite-attribution name "rect/<regime>".
func (r RectRegime) BoundName() string { return BoundRectPrefix + r.String() }

// sortedFaces returns the three matrix sizes mk, kn, mn in ascending
// order.
func sortedFaces(m, k, n float64) (s1, s2, s3 float64) {
	s := []float64{m * k, k * n, m * n}
	sort.Float64s(s)
	return s[0], s[1], s[2]
}

// RectAccesses returns the optimal value of the LP above — the minimum
// operand accesses of the busiest processor — and the regime that attains
// it.
func RectAccesses(m, k, n, p float64) (float64, RectRegime) {
	if m <= 0 || k <= 0 || n <= 0 || p <= 0 {
		return 0, ThreeLargeDims
	}
	s1, s2, _ := sortedFaces(m, k, n)
	f := m * k * n / p
	// The branch conditions carry a relative epsilon: at an exact boundary
	// (e.g. any square shape at p = 1, where F^(2/3) = s1) Pow rounding
	// can land a few ulps on the wrong side. The values are continuous
	// across the boundary, so the slack only stabilizes the regime label.
	const eps = 1e-12
	if cr := math.Pow(f, 2.0/3.0); cr <= s1*(1+eps) {
		// All caps slack: the symmetric point a = b = c = F^(2/3).
		return 3 * cr, ThreeLargeDims
	}
	if f/math.Sqrt(s1) <= s2*(1+eps) {
		// Smallest matrix pinned at its cap: a = s1, b = c = F/√s1.
		return 2*f/math.Sqrt(s1) + s1, TwoLargeDims
	}
	// Two matrices pinned: a = s1, b = s2, c = F²/(s1·s2).
	return f*f/(s1*s2) + s1 + s2, OneLargeDim
}

// RectRegimeBoundaries returns the two processor counts at which the
// regime changes for a fixed shape: below p1 the one-large-dim form
// applies, between p1 and p2 two-large-dims, at and above p2
// three-large-dims. The access bound is continuous at both (it equals
// s1 + 2·s2 at p1 and 3·s1 at p2). For square shapes both boundaries are
// 1: every p is three-large.
func RectRegimeBoundaries(m, k, n float64) (p1, p2 float64) {
	s1, s2, _ := sortedFaces(m, k, n)
	prod := m * k * n
	return prod / (s2 * math.Sqrt(s1)), prod / math.Pow(s1, 1.5)
}

// RectMemIndepWords returns the memory-independent per-processor word
// bound for rectangular matmul: the optimal accesses minus the
// (mk+kn+mn)/p words an evenly loaded processor can own, floored at zero.
// The regime reports which closed form produced the access bound.
func RectMemIndepWords(m, k, n, p float64) (float64, RectRegime) {
	acc, regime := RectAccesses(m, k, n, p)
	owned := (m*k + k*n + m*n) / p
	return math.Max(0, acc-owned), regime
}

// RectMemDepWords is the memory-dependent rectangular bound: ITT's
// segment argument applied to the mkn/p multiplies of the busiest rank,
// W ≥ mkn/(2√2·p·√M) − M.
func RectMemDepWords(m, k, n, p, mem float64) float64 {
	if p <= 0 {
		return 0
	}
	return MemDepWords(m*k*n/p, mem)
}
