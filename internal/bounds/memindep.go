package bounds

import "math"

// This file holds the *exact-constant* communication lower bounds. Unlike
// the Eq. 3–5 shapes in bounds.go, which follow the paper's convention of
// dropping constant factors, every expression here keeps its leading
// constant so the conformance harness can assert a measured run sits above
// it: a floor with a dropped constant cannot catch an under-counting
// simulator.
//
// Words are counted as the busiest processor's sent + received traffic
// ("words moved"): the bounds below bound the data a processor must access
// beyond what it owns, and a word enters or leaves through the network
// either way.

// Literature sources for the bound catalogue (see docs/BOUNDS.md).
const (
	SourceITT      = "Irony, Toledo & Tiskin (J. Parallel Distrib. Comput. 2004)"
	SourceMemIndep = "Ballard, Demmel, Holtz, Lipshitz & Schwartz (arXiv:1202.3177)"
	SourceRect     = "Al Daas, Ballard, Grigori, Kumar & Rouse (arXiv:2205.13407)"
	SourceHongKung = "Hong & Kung (STOC 1981), parallel corollary"
	SourceNBodyLW  = "Driscoll et al. (IPDPS 2013) / Loomis–Whitney projection"
)

// Canonical bound names used for attribution ("which bound binds"). The
// composite constructors in composite.go and the conformance reports use
// these strings verbatim.
const (
	BoundClassicalMemDep   = "classical/memory-dependent"
	BoundClassicalMemIndep = "classical/memory-independent"
	BoundStrassenMemDep    = "strassen/memory-dependent"
	BoundStrassenMemIndep  = "strassen/memory-independent"
	BoundRectPrefix        = "rect/"
	BoundLUMemDep          = "lu/memory-dependent"
	BoundLUMemIndep        = "lu/memory-independent"
	BoundNBodyMemDep       = "nbody/memory-dependent"
	BoundNBodyMemIndep     = "nbody/memory-independent"
	BoundFFTHongKung       = "fft/hong-kung"
)

// MemDepWords returns the Irony–Toledo–Tiskin memory-dependent word bound
// with its exact constant: a processor that performs mults elementary
// multiplications of a classical (distributive-law) matrix multiplication
// with M words of local memory must move
//
//	W ≥ mults/(2√2·√M) − M
//
// words. The √8 comes from the Loomis–Whitney inequality applied to
// segments of 2M accesses; subtracting M credits the words already
// resident when the processor starts.
func MemDepWords(mults, mem float64) float64 {
	if mem <= 0 {
		return 0
	}
	return math.Max(0, mults/(2*math.Sqrt2*math.Sqrt(mem))-mem)
}

// ClassicalMemIndepWords returns the memory-independent per-processor word
// bound for classical n×n matmul on p processors (Ballard et al.,
// arXiv:1202.3177): some processor performs ≥ n³/p multiplications, so by
// Loomis–Whitney it must access ≥ 3·(n³/p)^(2/3) operands; it can own at
// most a 1/p share of the 3n² words of input+output, leaving
//
//	W ≥ 3·(n³/p)^(2/3) − 3n²/p
//
// words that must cross the network no matter how much memory is
// available. This bound is what ends perfect strong scaling at
// p = n³/M^(3/2).
func ClassicalMemIndepWords(n, p float64) float64 {
	if p <= 0 {
		return 0
	}
	return math.Max(0, 3*math.Pow(n*n*n/p, 2.0/3.0)-3*n*n/p)
}

// FastMemIndepWords is the Strassen-like analogue (same paper): for a fast
// algorithm with exponent omega0,
//
//	W ≥ n²/p^(2/ω₀) − 3n²/p.
//
// The leading constant of the p^(2/ω₀) term is 1 in the statement of the
// theorem (expansion of the CAPS computation graph); the owned-share
// credit 3n²/p makes the bound attainable-safe at p near pmin.
func FastMemIndepWords(n, p, omega0 float64) float64 {
	if p <= 0 || omega0 <= 2 {
		return 0
	}
	return math.Max(0, n*n/math.Pow(p, 2/omega0)-3*n*n/p)
}

// FastMemDepWords is the memory-dependent Strassen-like bound,
//
//	W ≥ n^ω₀/(2√2·p·M^(ω₀/2−1)) − M.
//
// The literature states the leading constant less crisply than ITT's; we
// keep the conservative 1/(2√2) by analogy, which preserves "measured
// traffic must exceed the bound" without risking a false violation.
func FastMemDepWords(n, p, mem, omega0 float64) float64 {
	if p <= 0 || mem <= 0 || omega0 <= 2 {
		return 0
	}
	w := math.Pow(n, omega0) / (2 * math.Sqrt2 * p * math.Pow(mem, omega0/2-1))
	return math.Max(0, w-mem)
}

// NBodyMemDepBodies returns the memory-dependent bound for the direct
// n-body interaction square, in bodies: a processor evaluating n²/p of the
// n² pairwise interactions with room for M bodies must move
//
//	W ≥ n²/(2·p·M) − M
//
// bodies (conservative ½ constant; subtracting M credits the resident
// block).
func NBodyMemDepBodies(n, p, memBodies float64) float64 {
	if p <= 0 || memBodies <= 0 {
		return 0
	}
	return math.Max(0, n*n/(2*p*memBodies)-memBodies)
}

// NBodyMemIndepBodies is the memory-independent n-body bound, in bodies:
// the n²/p interactions computed by some processor project onto at least
// n/√p distinct source bodies (Loomis–Whitney in two dimensions), of which
// it owns memBodies:
//
//	W ≥ n/√p − memBodies.
//
// It meets the memory-dependent curve at p = n²/M², the end of the n-body
// perfect-scaling range.
func NBodyMemIndepBodies(n, p, memBodies float64) float64 {
	if p <= 0 {
		return 0
	}
	return math.Max(0, n/math.Sqrt(p)-memBodies)
}

// FFTMemDepWords returns the Hong–Kung I/O bound for a parallel FFT, in
// real words: some processor performs ≥ n·log₂(n)/p butterfly element
// updates, and with capacity for memComplex complex elements an S-partition
// argument bounds its complex-element traffic by n·log₂n/(2p·log₂M) − M;
// a complex element is two real words. Small sweep sizes hold more memory
// than the bound needs, so this often floors at zero there — it is kept in
// the composite for attribution at scale.
func FFTMemDepWords(n, p, memComplex float64) float64 {
	if p <= 0 || n <= 1 {
		return 0
	}
	mc := math.Max(memComplex, 4) // log₂M degenerates below 4 elements
	q := n * math.Log2(n) / (2 * p * math.Log2(mc))
	return math.Max(0, 2*(q-mc))
}

// --- Plateau attribution -----------------------------------------------------

// Plateau describes where and why one algorithm's perfect-strong-scaling
// range ends for a fixed problem size and per-processor memory: at PEnd the
// attainable memory-dependent communication curve meets the
// memory-independent floor, and past it extra processors (or memory) can no
// longer reduce per-processor traffic proportionally — the
// memory-independent wall.
type Plateau struct {
	// PMin is the fewest processors whose combined memory holds the
	// problem; PEnd the exact endpoint of the perfect-scaling range.
	PMin float64 `json:"p_min"`
	PEnd float64 `json:"p_end"`
	// DependentBound and IndependentBound name the composite bound that
	// binds on each side of PEnd (see the Bound* constants).
	DependentBound   string `json:"dependent_bound"`
	IndependentBound string `json:"independent_bound"`
}

// BindingAt names the bound that governs the communication cost at
// processor count p: the memory-dependent bound inside the scaling range,
// the memory-independent one at and past PEnd. The relative epsilon keeps
// the attribution stable when PEnd lands an ulp off an integer p (the
// curves meet exactly at PEnd, so either label is numerically defensible
// there; "independent" is the informative one).
func (pl Plateau) BindingAt(p float64) string {
	if p >= pl.PEnd*(1-1e-12) {
		return pl.IndependentBound
	}
	return pl.DependentBound
}

// Past reports whether p lies at or beyond the perfect-scaling plateau end
// — the points where the memory-independent bound binds (same epsilon as
// BindingAt).
func (pl Plateau) Past(p float64) bool { return p >= pl.PEnd*(1-1e-12) }

// ClassicalPlateau returns the plateau descriptor for classical matmul at
// fixed n and per-processor memory M: perfect strong scaling from
// pmin = n²/M to PEnd = n³/M^(3/2), where n³/(p√M) meets n²/p^(2/3).
func ClassicalPlateau(n, mem float64) Plateau {
	return Plateau{
		PMin:             MatMulPMin(n, mem),
		PEnd:             MatMulPMax(n, mem),
		DependentBound:   BoundClassicalMemDep,
		IndependentBound: BoundClassicalMemIndep,
	}
}

// FastPlateau is the Strassen-like analogue: PEnd = n^ω₀/M^(ω₀/2), where
// n^ω₀/(p·M^(ω₀/2−1)) meets n²/p^(2/ω₀).
func FastPlateau(n, mem, omega0 float64) Plateau {
	return Plateau{
		PMin:             MatMulPMin(n, mem),
		PEnd:             FastMatMulPMax(n, mem, omega0),
		DependentBound:   BoundStrassenMemDep,
		IndependentBound: BoundStrassenMemIndep,
	}
}

// NBodyPlateau: PEnd = n²/M², where n²/(pM) meets n/√p.
func NBodyPlateau(n, memBodies float64) Plateau {
	return Plateau{
		PMin:             NBodyPMin(n, memBodies),
		PEnd:             NBodyPMax(n, memBodies),
		DependentBound:   BoundNBodyMemDep,
		IndependentBound: BoundNBodyMemIndep,
	}
}

// Fig3Plateaus returns the classical and Strassen-like plateau descriptors
// for a Figure 3 configuration — the exact endpoints of the two flat
// regions the series plots, with the bound names that explain each bend.
func Fig3Plateaus(n, mem float64) (classical, strassen Plateau) {
	return ClassicalPlateau(n, mem), FastPlateau(n, mem, OmegaStrassen)
}
