package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 2e-10)
	out := tb.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the separator width.
	if !strings.Contains(lines[2], "-") {
		t.Error("missing separator")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", 3)
	csv := tb.CSV()
	if !strings.Contains(csv, "\"x,y\"") {
		t.Errorf("comma field must be quoted: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("missing header: %s", csv)
	}
	tb2 := NewTable("", "q")
	tb2.AddRow(`say "hi"`)
	if !strings.Contains(tb2.CSV(), `"say ""hi"""`) {
		t.Errorf("quotes must be escaped: %s", tb2.CSV())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		2:       "2",
		1e-10:   "1e-10",
		123456:  "123456",
		1234567: "1.235e+06",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestChartBasic(t *testing.T) {
	var s Series
	s.Name = "linear"
	for i := 1; i <= 10; i++ {
		s.Add(float64(i), float64(i))
	}
	out := Chart("test chart", 40, 10, false, false, s)
	if !strings.Contains(out, "test chart") || !strings.Contains(out, "linear") {
		t.Errorf("chart missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("chart missing markers:\n%s", out)
	}
	// An increasing series puts a marker in the top-right region and
	// bottom-left region.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "| ") {
			plotLines = append(plotLines, l)
		}
	}
	if len(plotLines) != 10 {
		t.Fatalf("plot rows: %d", len(plotLines))
	}
	top, bottom := plotLines[0], plotLines[len(plotLines)-1]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Error("increasing series should span bottom to top")
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Error("top-row marker should sit right of bottom-row marker")
	}
}

func TestChartLogAxes(t *testing.T) {
	var s Series
	for i := 0; i < 6; i++ {
		s.Add(float64(int(1)<<uint(i)), 1e3*float64(int(1)<<uint(2*i)))
	}
	s.Name = "pow"
	out := Chart("log chart", 30, 8, true, true, s)
	if !strings.Contains(out, "(log scale)") {
		t.Errorf("log axes not annotated:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", 30, 8, false, false, Series{Name: "none"})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart should say so:\n%s", out)
	}
}

func TestChartMultipleSeries(t *testing.T) {
	a := Series{Name: "A"}
	b := Series{Name: "B"}
	for i := 1; i <= 5; i++ {
		a.Add(float64(i), float64(i))
		b.Add(float64(i), float64(6-i))
	}
	out := Chart("two", 30, 8, false, false, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("distinct markers expected:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("legend expected:\n%s", out)
	}
}

func TestChartClampsTinySizes(t *testing.T) {
	var s Series
	s.Add(1, 1)
	s.Add(2, 2)
	out := Chart("tiny", 1, 1, false, false, s)
	if len(strings.Split(out, "\n")) < 8 {
		t.Errorf("minimum dimensions not enforced:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("MD", "a", "b|c")
	tb.AddRow("x", 1.5)
	md := tb.Markdown()
	if !strings.Contains(md, "**MD**") {
		t.Errorf("missing title: %s", md)
	}
	if !strings.Contains(md, "| a | b\\|c |") {
		t.Errorf("pipes must be escaped in headers: %s", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Errorf("missing separator: %s", md)
	}
	if !strings.Contains(md, "| x | 1.5 |") {
		t.Errorf("missing row: %s", md)
	}
}
