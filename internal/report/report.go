// Package report renders experiment results as aligned text tables, CSV,
// and coarse ASCII charts — the output layer of the cmd/ tools and the
// bench harness.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-oriented text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: fixed-point for moderate
// magnitudes, scientific otherwise.
func FormatFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 0.01 && a < 1e6:
		s := fmt.Sprintf("%.4f", v)
		s = strings.TrimRight(s, "0")
		return strings.TrimRight(s, ".")
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV returns the comma-separated form (fields with commas are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named list of (x, y) points for figure data.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Chart renders one or more series as a coarse ASCII scatter plot of the
// given size; logX/logY select logarithmic axes. Each series is drawn with
// its own marker rune.
func Chart(title string, width, height int, logX, logY bool, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	tx := func(v float64) float64 {
		if logX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if logY {
			return math.Log10(v)
		}
		return v
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if xMin > xMax || yMin > yMax {
		return title + "\n(no data)\n"
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	markers := []rune{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			col := int((x - xMin) / (xMax - xMin) * float64(width-1))
			row := height - 1 - int((y-yMin)/(yMax-yMin)*float64(height-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "y: [%s, %s]%s\n", FormatFloat(untx(yMin, logY)), FormatFloat(untx(yMax, logY)), axisNote(logY))
	for _, row := range grid {
		b.WriteString("| ")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("+-")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "x: [%s, %s]%s\n", FormatFloat(untx(xMin, logX)), FormatFloat(untx(xMax, logX)), axisNote(logX))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func axisNote(log bool) string {
	if log {
		return " (log scale)"
	}
	return ""
}

// Markdown returns the GitHub-flavored Markdown form of the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
