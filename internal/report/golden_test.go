package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name> and rewrites it under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got\n%s\n--- want\n%s", path, got, want)
	}
}

// goldenTable is a fixed table exercising every formatting path: strings,
// integers, small/large/negative floats and scientific notation.
func goldenTable() *Table {
	tb := NewTable("Golden: formatting sampler", "name", "count", "value", "tiny")
	tb.AddRow("alpha", 1, 3.14159, 1e-9)
	tb.AddRow("beta", 42, -2.5, 6.02e23)
	tb.AddRow("gamma", 0, 0.0, -0.001)
	tb.AddRow("a much longer row label", 123456, 1048576.0, 0.5)
	return tb
}

// TestGoldenTable pins the three render formats of the reporting layer so a
// formatting change (alignment, float precision, separators) is a reviewed
// diff rather than a silent drift in every artifact built on top.
func TestGoldenTable(t *testing.T) {
	tb := goldenTable()
	var b strings.Builder
	b.WriteString("=== Render ===\n")
	b.WriteString(tb.Render())
	b.WriteString("\n=== CSV ===\n")
	b.WriteString(tb.CSV())
	b.WriteString("=== Markdown ===\n")
	b.WriteString(tb.Markdown())
	golden(t, "table.golden", b.String())
}

// TestGoldenChart pins the ASCII chart renderer, linear and log axes.
func TestGoldenChart(t *testing.T) {
	lin := Series{Name: "linear"}
	quad := Series{Name: "quadratic"}
	for x := 1.0; x <= 8; x++ {
		lin.Add(x, 2*x)
		quad.Add(x, x*x)
	}
	var b strings.Builder
	b.WriteString(Chart("Golden: linear axes", 40, 10, false, false, lin, quad))
	b.WriteString("\n")
	b.WriteString(Chart("Golden: log-log", 40, 10, true, true, lin, quad))
	golden(t, "chart.golden", b.String())
}
