package report

import (
	"fmt"
	"io"
	"os"
)

// ErrWriter wraps an io.Writer and remembers the first write failure, so
// report-emitting commands can print unconditionally and check once at the
// end instead of threading an error through every Fprintf. A full disk or a
// closed pipe must fail the command (exit non-zero), not silently truncate
// an artifact.
type ErrWriter struct {
	w   io.Writer
	err error
}

// NewErrWriter wraps w.
func NewErrWriter(w io.Writer) *ErrWriter { return &ErrWriter{w: w} }

// Write implements io.Writer. After the first failure, writes are dropped.
func (e *ErrWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// Printf formats to the underlying writer, recording the first error.
func (e *ErrWriter) Printf(format string, args ...any) {
	fmt.Fprintf(e, format, args...)
}

// Println prints a line to the underlying writer, recording the first error.
func (e *ErrWriter) Println(args ...any) {
	fmt.Fprintln(e, args...)
}

// Err reports the first write failure, or nil.
func (e *ErrWriter) Err() error { return e.err }

// OpenOutput opens the report destination for a command's -o flag: the
// named file, or stdout when path is empty. The returned close function
// must be called (and its error checked) before exiting — Close is where a
// buffered ENOSPC surfaces; stdout's close is a no-op.
func OpenOutput(path string) (*ErrWriter, func() error, error) {
	if path == "" {
		return NewErrWriter(os.Stdout), func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return NewErrWriter(f), f.Close, nil
}
