package report

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type failAfter struct {
	n int
}

var errSink = errors.New("sink failed")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	f.n--
	return len(p), nil
}

func TestErrWriterRecordsFirstError(t *testing.T) {
	w := NewErrWriter(&failAfter{n: 1})
	w.Printf("first write: %d\n", 1)
	if w.Err() != nil {
		t.Fatalf("first write errored: %v", w.Err())
	}
	w.Println("second write fails")
	if !errors.Is(w.Err(), errSink) {
		t.Fatalf("error not recorded: %v", w.Err())
	}
	w.Printf("third write is dropped")
	if !errors.Is(w.Err(), errSink) {
		t.Fatalf("first error not sticky: %v", w.Err())
	}
}

func TestErrWriterPassthrough(t *testing.T) {
	var buf bytes.Buffer
	w := NewErrWriter(&buf)
	w.Printf("a=%d ", 1)
	w.Println("b")
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if buf.String() != "a=1 b\n" {
		t.Fatalf("wrote %q", buf.String())
	}
}

func TestOpenOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	w, closeFn, err := OpenOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Println("hello")
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\n" {
		t.Fatalf("file holds %q", data)
	}
}

func TestOpenOutputStdout(t *testing.T) {
	w, closeFn, err := OpenOutput("")
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("nil writer for stdout")
	}
	if err := closeFn(); err != nil {
		t.Fatalf("stdout close: %v", err)
	}
}

func TestOpenOutputBadPath(t *testing.T) {
	if _, _, err := OpenOutput(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Fatal("creating a file in a missing directory succeeded")
	}
}
