package core

import (
	"fmt"

	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

// PowerProfile is the machine's power draw over time, reconstructed from a
// traced simulation. The paper bounds *average* power (§V.D–E: P = E/T);
// the profile exposes the peak as well — the quantity a real power cap
// actually clips.
type PowerProfile struct {
	// BucketStart[i] is the left edge of bucket i; buckets are uniform.
	BucketStart []float64
	// Power[i] is the average machine power within bucket i, in watts.
	Power []float64
	// Peak and Avg are the maximum bucket power and the overall E/T.
	Peak, Avg float64
	// StaticPower is the always-on floor: Σ ranks (δe·M + εe).
	StaticPower float64
	// TotalEnergy is the integral of the profile.
	TotalEnergy float64
}

// Profile reconstructs the power timeline of a traced run: every traced
// segment deposits its energy (compute: γe·F; communication: βe·W + αe·S)
// uniformly over its duration, and every rank draws its static memory and
// leakage power for the whole run. The integral of the profile equals
// PriceSim's total by construction — tested, not assumed.
//
// Requires a run executed with Cost.Trace and strictly positive timing
// parameters (zero-duration segments carry energy that cannot be placed on
// a timeline).
func Profile(m machine.Params, res *sim.Result, buckets int) (*PowerProfile, error) {
	if res.Trace == nil {
		return nil, fmt.Errorf("core: run was not traced (set Cost.Trace)")
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("core: need at least one bucket")
	}
	T := res.Time()
	if T <= 0 {
		return nil, fmt.Errorf("core: zero-length run has no profile")
	}
	width := T / float64(buckets)
	energy := make([]float64, buckets)

	deposit := func(start, end, joules float64) {
		if end <= start {
			return
		}
		perTime := joules / (end - start)
		for b := int(start / width); b < buckets; b++ {
			lo := float64(b) * width
			hi := lo + width
			overlap := minF(end, hi) - maxF(start, lo)
			if overlap <= 0 {
				break
			}
			energy[b] += perTime * overlap
		}
	}

	static := 0.0
	for rank, segs := range res.Trace.Segments {
		static += m.DeltaE*res.PerRank[rank].PeakMemWords + m.EpsilonE
		for _, s := range segs {
			var joules float64
			switch s.Kind {
			case sim.SegCompute:
				// Energy = γe · flops; segments record their flop count,
				// with duration/γt as the fallback for hand-built traces.
				if s.Flops > 0 {
					joules = m.GammaE * s.Flops
				} else if m.GammaT > 0 {
					joules = m.GammaE * s.Duration() / m.GammaT
				}
			case sim.SegSend:
				joules = m.BetaE*float64(s.Words) + m.AlphaE*s.Msgs
			case sim.SegRecv, sim.SegWait:
				joules = 0
			}
			deposit(s.Start, s.End, joules)
		}
	}

	prof := &PowerProfile{
		BucketStart: make([]float64, buckets),
		Power:       make([]float64, buckets),
		StaticPower: static,
	}
	total := 0.0
	for b := 0; b < buckets; b++ {
		prof.BucketStart[b] = float64(b) * width
		prof.Power[b] = energy[b]/width + static
		total += energy[b] + static*width
		if prof.Power[b] > prof.Peak {
			prof.Peak = prof.Power[b]
		}
	}
	prof.TotalEnergy = total
	prof.Avg = total / T
	return prof, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
