package core

import (
	"math"
	"testing"

	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func tracedCost(m machine.Params) sim.Cost {
	return sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT,
		MaxMsgWords: int(m.MaxMsgWords), Trace: true}
}

func TestProfileIntegralMatchesPriceSim(t *testing.T) {
	m := testMachine()
	a := matrix.Random(48, 48, 1)
	b := matrix.Random(48, 48, 2)
	res, err := matmul.TwoPointFiveD(tracedCost(m), 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(m, res.Sim, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := PriceSim(m, res.Sim).Total()
	if !approx(prof.TotalEnergy, want, 1e-9) {
		t.Errorf("profile integral %g vs PriceSim %g", prof.TotalEnergy, want)
	}
	if !approx(prof.Avg, want/res.Sim.Time(), 1e-9) {
		t.Errorf("profile average %g vs E/T %g", prof.Avg, want/res.Sim.Time())
	}
}

func TestProfilePeakAtLeastAverage(t *testing.T) {
	m := testMachine()
	a := matrix.Random(32, 32, 3)
	b := matrix.Random(32, 32, 4)
	res, err := matmul.Cannon(tracedCost(m), 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(m, res.Sim, 32)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Peak < prof.Avg {
		t.Errorf("peak %g below average %g", prof.Peak, prof.Avg)
	}
	if prof.Peak < prof.StaticPower {
		t.Errorf("peak %g below the static floor %g", prof.Peak, prof.StaticPower)
	}
	// Every bucket sits at or above the static floor.
	for i, p := range prof.Power {
		if p < prof.StaticPower-1e-12 {
			t.Fatalf("bucket %d below static floor: %g < %g", i, p, prof.StaticPower)
		}
	}
	if len(prof.BucketStart) != 32 || prof.BucketStart[0] != 0 {
		t.Error("bucket grid wrong")
	}
}

func TestProfileHandComputed(t *testing.T) {
	m := machine.Params{
		GammaT: 1, BetaT: 0, AlphaT: 1,
		GammaE: 2, BetaE: 0, AlphaE: 4, DeltaE: 0, EpsilonE: 1,
		MemWords: 1 << 20, MaxMsgWords: 1 << 20,
	}
	// Rank 0: compute 10s (γe·10 = 20 J over [0,10]), send (α=1s, αe·1 = 4 J
	// over [10,11]). Rank 1: waits. T = 11. Static: εe per rank = 2 W.
	res, err := sim.Run(2, sim.Cost{GammaT: 1, AlphaT: 1, Trace: true}, func(r *sim.Rank) error {
		if r.ID() == 0 {
			r.Compute(10)
			r.Send(1, []float64{1})
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(m, res, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets 0..9: compute 2 W + static 2 W = 4. Bucket 10: send 4 W + 2.
	for b := 0; b < 10; b++ {
		if !approx(prof.Power[b], 4, 1e-12) {
			t.Errorf("bucket %d: %g want 4", b, prof.Power[b])
		}
	}
	if !approx(prof.Power[10], 6, 1e-12) {
		t.Errorf("send bucket: %g want 6", prof.Power[10])
	}
	if !approx(prof.Peak, 6, 1e-12) {
		t.Errorf("peak %g want 6", prof.Peak)
	}
	if !approx(prof.TotalEnergy, 20+4+2*11, 1e-12) {
		t.Errorf("total %g want 46", prof.TotalEnergy)
	}
}

func TestProfileErrors(t *testing.T) {
	m := testMachine()
	res, err := sim.Run(1, sim.Cost{GammaT: 1}, func(r *sim.Rank) error {
		r.Compute(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(m, res, 8); err == nil {
		t.Error("untraced run should be rejected")
	}
	traced, err := sim.Run(1, sim.Cost{GammaT: 1, Trace: true}, func(r *sim.Rank) error {
		r.Compute(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(m, traced, 0); err == nil {
		t.Error("zero buckets should be rejected")
	}
	empty, err := sim.Run(1, sim.Cost{Trace: true}, func(r *sim.Rank) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(m, empty, 4); err == nil {
		t.Error("zero-length run should be rejected")
	}
}

// TestPeakExceedsAverageUnderImbalance: the motivation for profiles — a
// bursty program's peak power is far above its average, which the paper's
// P = E/T cannot see.
func TestPeakExceedsAverageUnderImbalance(t *testing.T) {
	m := testMachine()
	// All ranks compute briefly, then idle while one straggler works: the
	// average sinks, the early peak stays.
	res, err := sim.Run(8, sim.Cost{GammaT: m.GammaT, Trace: true}, func(r *sim.Rank) error {
		r.Compute(1e6)
		if r.ID() == 0 {
			r.Compute(9e6)
		}
		r.World().Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(m, res, 50)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Peak < 2*(prof.Avg-prof.StaticPower)+prof.StaticPower {
		t.Errorf("straggler run should be bursty: peak %g avg %g static %g",
			prof.Peak, prof.Avg, prof.StaticPower)
	}
	_ = math.Pi
}
