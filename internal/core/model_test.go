package core

import (
	"math"
	"testing"
	"testing/quick"

	"perfscale/internal/bounds"
	"perfscale/internal/machine"
)

func approx(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < rel
	}
	return math.Abs(got-want)/math.Abs(want) < rel
}

// testMachine has every parameter nonzero so missing terms show up.
func testMachine() machine.Params {
	return machine.Params{
		Name:   "test",
		GammaT: 1e-9, BetaT: 5e-9, AlphaT: 2e-6,
		GammaE: 2e-9, BetaE: 8e-9, AlphaE: 3e-6,
		DeltaE: 4e-10, EpsilonE: 0.05,
		MemWords: 1 << 30, MaxMsgWords: 1 << 16,
	}
}

func TestEvalMatchesHandComputation(t *testing.T) {
	m := testMachine()
	c := bounds.Costs{Flops: 1e9, Words: 1e6, Msgs: 1e3}
	r := Eval(m, c, 4, 1e5)
	wantT := m.GammaT*1e9 + m.BetaT*1e6 + m.AlphaT*1e3
	if !approx(r.TotalTime(), wantT, 1e-12) {
		t.Errorf("T: got %g want %g", r.TotalTime(), wantT)
	}
	wantE := 4 * (m.GammaE*1e9 + m.BetaE*1e6 + m.AlphaE*1e3 + m.DeltaE*1e5*wantT + m.EpsilonE*wantT)
	if !approx(r.TotalEnergy(), wantE, 1e-12) {
		t.Errorf("E: got %g want %g", r.TotalEnergy(), wantE)
	}
}

func TestEvalBreakdownSumsToTotal(t *testing.T) {
	m := testMachine()
	r := MatMulClassical(m, 1024, 16, 1024*1024/8)
	tb := r.Time
	if !approx(tb.Compute+tb.Bandwidth+tb.Latency, r.TotalTime(), 1e-12) {
		t.Error("time breakdown does not sum")
	}
	eb := r.Energy
	sum := eb.Compute + eb.Bandwidth + eb.Latency + eb.Memory + eb.Leakage
	if !approx(sum, r.TotalEnergy(), 1e-12) {
		t.Error("energy breakdown does not sum")
	}
}

func TestMatMulClosedFormsAgreeWithEval(t *testing.T) {
	m := testMachine()
	// Any (n, p, M): the closed forms of Eqs. 9–10 must equal the generic
	// Eval of the Eq. 8 costs.
	cases := []struct{ n, p, mem float64 }{
		{1024, 16, 65536},
		{4096, 64, 1 << 20},
		{300, 4, 30000},
	}
	for _, tc := range cases {
		r := MatMulClassical(m, tc.n, tc.p, tc.mem)
		if want := MatMulTimeClosedForm(m, tc.n, tc.p, tc.mem); !approx(r.TotalTime(), want, 1e-12) {
			t.Errorf("n=%g p=%g: T %g vs closed form %g", tc.n, tc.p, r.TotalTime(), want)
		}
		if want := MatMulEnergyClosedForm(m, tc.n, tc.mem); !approx(r.TotalEnergy(), want, 1e-12) {
			t.Errorf("n=%g p=%g: E %g vs closed form %g", tc.n, tc.p, r.TotalEnergy(), want)
		}
	}
}

func TestMatMulEnergyIndependentOfP(t *testing.T) {
	// The heart of the paper: Eq. 10 has no p anywhere, so scaling p at
	// fixed M leaves energy unchanged while Eval's T falls as 1/p.
	m := testMachine()
	n, mem := 8192.0, 1<<20
	base := MatMulClassical(m, n, 64, float64(mem))
	for _, p := range []float64{128, 256, 512} {
		r := MatMulClassical(m, n, p, float64(mem))
		if !approx(r.TotalEnergy(), base.TotalEnergy(), 1e-12) {
			t.Errorf("p=%g: energy %g differs from %g", p, r.TotalEnergy(), base.TotalEnergy())
		}
		if !approx(r.TotalTime(), base.TotalTime()*64/p, 1e-12) {
			t.Errorf("p=%g: time %g does not scale as 1/p", p, r.TotalTime())
		}
	}
}

func TestMatMul3DClosedForm(t *testing.T) {
	m := testMachine()
	n := 4096.0
	for _, p := range []float64{64, 512, 4096} {
		r := MatMul3DLimit(m, n, p)
		want := MatMul3DEnergyClosedForm(m, n, p)
		if !approx(r.TotalEnergy(), want, 1e-9) {
			t.Errorf("p=%g: E %g vs Eq.11 %g", p, r.TotalEnergy(), want)
		}
	}
}

func TestMatMul3DTradeoff(t *testing.T) {
	// Eq. 11 commentary: increasing p at the 3D limit reduces memory energy
	// but increases communication energy.
	m := testMachine()
	n := 4096.0
	r1 := MatMul3DLimit(m, n, 64)
	r2 := MatMul3DLimit(m, n, 512)
	if r2.Energy.Memory >= r1.Energy.Memory {
		t.Errorf("memory energy should fall with p: %g -> %g", r1.Energy.Memory, r2.Energy.Memory)
	}
	if r2.Energy.Bandwidth <= r1.Energy.Bandwidth {
		t.Errorf("bandwidth energy should rise with p: %g -> %g", r1.Energy.Bandwidth, r2.Energy.Bandwidth)
	}
}

func TestFastMatMulClosedForm(t *testing.T) {
	m := testMachine()
	w := bounds.OmegaStrassen
	for _, tc := range []struct{ n, p, mem float64 }{
		{1024, 8, 1 << 18},
		{4096, 49, 1 << 20},
	} {
		r := FastMatMul(m, tc.n, tc.p, tc.mem, w)
		want := FastMatMulEnergyClosedForm(m, tc.n, tc.mem, w)
		if !approx(r.TotalEnergy(), want, 1e-9) {
			t.Errorf("n=%g: E %g vs Eq.13 %g", tc.n, r.TotalEnergy(), want)
		}
	}
}

func TestFastMatMulUnlimitedClosedForm(t *testing.T) {
	m := testMachine()
	w := bounds.OmegaStrassen
	n := 4096.0
	for _, p := range []float64{49, 343} {
		r := FastMatMulUnlimited(m, n, p, w)
		want := FastMatMulUnlimitedEnergyClosedForm(m, n, p, w)
		if !approx(r.TotalEnergy(), want, 1e-9) {
			t.Errorf("p=%g: E %g vs Eq.14 %g", p, r.TotalEnergy(), want)
		}
	}
}

func TestFastMatMulEnergyIndependentOfP(t *testing.T) {
	m := testMachine()
	n, mem := 8192.0, 1<<20
	w := bounds.OmegaStrassen
	base := FastMatMul(m, n, 49, float64(mem), w)
	r := FastMatMul(m, n, 343, float64(mem), w)
	if !approx(r.TotalEnergy(), base.TotalEnergy(), 1e-12) {
		t.Errorf("Strassen energy should be p-independent: %g vs %g", r.TotalEnergy(), base.TotalEnergy())
	}
}

func TestNBodyClosedForms(t *testing.T) {
	m := testMachine()
	n, p, mem, f := 1e6, 100.0, 5e4, 16.0
	r := NBody(m, n, p, mem, f)
	if want := NBodyTimeClosedForm(m, n, p, mem, f); !approx(r.TotalTime(), want, 1e-12) {
		t.Errorf("T: %g vs Eq.15 %g", r.TotalTime(), want)
	}
	if want := NBodyEnergyClosedForm(m, n, mem, f); !approx(r.TotalEnergy(), want, 1e-12) {
		t.Errorf("E: %g vs Eq.16 %g", r.TotalEnergy(), want)
	}
}

func TestNBodyEnergyIndependentOfP(t *testing.T) {
	m := testMachine()
	n, mem, f := 1e6, 5e4, 16.0
	base := NBody(m, n, 50, mem, f)
	for _, p := range []float64{100, 200, 400} {
		r := NBody(m, n, p, mem, f)
		if !approx(r.TotalEnergy(), base.TotalEnergy(), 1e-12) {
			t.Errorf("p=%g: n-body energy not constant", p)
		}
		if !approx(r.TotalTime(), base.TotalTime()*50/p, 1e-12) {
			t.Errorf("p=%g: n-body time not 1/p", p)
		}
	}
}

func TestFFTClosedForms(t *testing.T) {
	m := testMachine()
	n, p := math.Pow(2, 20), 64.0
	r := FFT(m, n, p, true)
	if want := FFTTimeClosedForm(m, n, p); !approx(r.TotalTime(), want, 1e-12) {
		t.Errorf("T: %g vs closed form %g", r.TotalTime(), want)
	}
	// The closed-form energy prices M = n/p inside the δe terms; Eval uses
	// the same M, so totals must agree.
	if want := FFTEnergyClosedForm(m, n, p); !approx(r.TotalEnergy(), want, 1e-12) {
		t.Errorf("E: %g vs closed form %g", r.TotalEnergy(), want)
	}
}

func TestFFTNoPerfectScaling(t *testing.T) {
	// FFT energy grows with p (log p terms): no perfect-scaling region.
	m := testMachine()
	n := math.Pow(2, 24)
	e1 := FFT(m, n, 64, true).TotalEnergy()
	e2 := FFT(m, n, 4096, true).TotalEnergy()
	if e2 <= e1 {
		t.Errorf("FFT energy should grow with p: %g -> %g", e1, e2)
	}
}

func TestFFTNaiveVsTreeTradeoff(t *testing.T) {
	m := testMachine()
	n, p := math.Pow(2, 20), 256.0
	naive := FFT(m, n, p, false)
	tree := FFT(m, n, p, true)
	if tree.Costs.Msgs >= naive.Costs.Msgs {
		t.Error("tree should send fewer messages")
	}
	if tree.Costs.Words <= naive.Costs.Words {
		t.Error("tree should move more words")
	}
}

func TestLULatencyTermDoesNotScale(t *testing.T) {
	m := testMachine()
	n, mem := 8192.0, 1<<20
	pmin := bounds.MatMulPMin(n, float64(mem))
	r1 := LU(m, n, pmin, float64(mem))
	r4 := LU(m, n, 4*pmin, float64(mem))
	// Bandwidth time scales by 4; latency time grows.
	if !approx(r4.Time.Bandwidth, r1.Time.Bandwidth/4, 1e-12) {
		t.Errorf("LU bandwidth time should scale: %g vs %g", r4.Time.Bandwidth, r1.Time.Bandwidth)
	}
	if r4.Time.Latency <= r1.Time.Latency {
		t.Errorf("LU latency time should grow: %g vs %g", r4.Time.Latency, r1.Time.Latency)
	}
}

func TestPowerAndEfficiencyHelpers(t *testing.T) {
	m := testMachine()
	r := MatMulClassical(m, 2048, 16, 1<<18)
	if !approx(r.AvgPower(), r.TotalEnergy()/r.TotalTime(), 1e-12) {
		t.Error("AvgPower definition")
	}
	if !approx(r.PowerPerProcessor(), r.AvgPower()/16, 1e-12) {
		t.Error("PowerPerProcessor definition")
	}
	wantEff := 16 * r.Costs.Flops / r.TotalEnergy() / 1e9
	if !approx(r.GFLOPSPerWatt(), wantEff, 1e-12) {
		t.Error("GFLOPSPerWatt definition")
	}
}

func TestRangeChecks(t *testing.T) {
	if err := CheckMatMulRange(1024, 16, 1024*1024/16); err != nil {
		t.Errorf("2D point should be in range: %v", err)
	}
	if err := CheckMatMulRange(1024, 64, 1024*1024/16); err != nil {
		t.Errorf("replicated point should be in range: %v", err)
	}
	if err := CheckMatMulRange(1024, 16, 100); err == nil {
		t.Error("too-little-memory point should fail")
	}
	if err := CheckNBodyRange(1e6, 100, 1e4); err != nil {
		t.Errorf("n-body point should be in range: %v", err)
	}
	if err := CheckNBodyRange(1e6, 100, 1e9); err == nil {
		t.Error("too-much-memory n-body point should fail")
	}
}

// Property: for random machines and configurations, Eval's closed-form and
// generic paths agree for matmul and n-body.
func TestClosedFormsAgreeProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		m := machine.Params{
			GammaT: 1e-12 * (1 + float64(a)), BetaT: 1e-11 * (1 + float64(b)),
			AlphaT: 1e-8 * (1 + float64(c)),
			GammaE: 1e-11 * (1 + float64(d)), BetaE: 2e-11 * (1 + float64(a)),
			AlphaE: 1e-8 * (1 + float64(b)), DeltaE: 1e-12 * (1 + float64(c)),
			EpsilonE: 1e-4 * float64(d),
			MemWords: 1 << 30, MaxMsgWords: float64(1+int(a)) * 1024,
		}
		n := 512.0 * (1 + float64(b%4))
		p := 4.0 * (1 + float64(c%8))
		mem := n * n / p * (1 + float64(d%3)) // within replication range
		r := MatMulClassical(m, n, p, mem)
		if !approx(r.TotalEnergy(), MatMulEnergyClosedForm(m, n, mem), 1e-9) {
			return false
		}
		nb := NBody(m, n*n, p, n*n/p, 10)
		return approx(nb.TotalEnergy(), NBodyEnergyClosedForm(m, n*n, n*n/p, 10), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlappedTime(t *testing.T) {
	tb := TimeBreakdown{Compute: 5, Bandwidth: 3, Latency: 2}
	if tb.TotalOverlapped() != 5 {
		t.Errorf("overlapped: got %g want 5", tb.TotalOverlapped())
	}
	if got := tb.AdditiveOverOverlap(); got != 2 {
		t.Errorf("additive/overlap: got %g want 2", got)
	}
	zero := TimeBreakdown{}
	if zero.AdditiveOverOverlap() != 1 {
		t.Error("zero breakdown should report factor 1")
	}
}

// TestOverlapFactorBounded: the paper's footnote — overlap saves at most
// 3x, and perfect scaling shapes are identical under either semantics.
func TestOverlapFactorBounded(t *testing.T) {
	m := testMachine()
	for _, p := range []float64{16, 64, 256} {
		r := MatMulClassical(m, 8192, p, 8192*8192/16)
		f := r.Time.AdditiveOverOverlap()
		if f < 1 || f > 3 {
			t.Errorf("p=%g: overlap factor %g outside [1,3]", p, f)
		}
	}
	// Shape: overlapped time also scales exactly 1/p inside the range.
	r1 := MatMulClassical(m, 8192, 64, 8192*8192/16)
	r2 := MatMulClassical(m, 8192, 128, 8192*8192/16)
	if !approx(r2.Time.TotalOverlapped(), r1.Time.TotalOverlapped()/2, 1e-12) {
		t.Error("overlapped time must scale 1/p inside the range")
	}
}
