package core_test

import (
	"fmt"

	"perfscale/internal/core"
	"perfscale/internal/machine"
)

// Example demonstrates the paper's headline: inside the replication range,
// quadrupling the processors quarters the runtime at identical energy.
func Example() {
	m := machine.Jaketown()
	const n = 16384
	mem := float64(n) * n / 64 // one matrix copy over 64 processors

	base := core.MatMulClassical(m, n, 64, mem)
	quad := core.MatMulClassical(m, n, 256, mem)
	fmt.Printf("time ratio:   %.2f\n", base.TotalTime()/quad.TotalTime())
	fmt.Printf("energy ratio: %.2f\n", quad.TotalEnergy()/base.TotalEnergy())
	// Output:
	// time ratio:   4.00
	// energy ratio: 1.00
}
