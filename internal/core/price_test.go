package core

import (
	"testing"

	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

func TestPriceSimHandComputed(t *testing.T) {
	m := machine.Params{
		GammaT: 1, BetaT: 1, AlphaT: 1,
		GammaE: 2, BetaE: 3, AlphaE: 5, DeltaE: 7, EpsilonE: 11,
		MemWords: 1 << 20, MaxMsgWords: 1 << 20,
	}
	// Two ranks: rank 0 computes 10 flops; rank 1 sends 4 words in 1 message
	// to rank 0 and tracks 6 words of memory.
	res, err := sim.Run(2, sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}, func(r *sim.Rank) error {
		if r.ID() == 0 {
			r.Compute(10)
			r.Recv(1)
		} else {
			r.Alloc(6)
			r.Send(0, make([]float64, 4))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// T = max(rank0: 10 + wait, rank1: 1+4=5) => rank0 clock = max(10, 5)=10.
	T := res.Time()
	if T != 10 {
		t.Fatalf("T = %g, want 10", T)
	}
	e := PriceSim(m, res)
	if e.Compute != 2*10 {
		t.Errorf("compute energy %g", e.Compute)
	}
	if e.Bandwidth != 3*4 {
		t.Errorf("bandwidth energy %g", e.Bandwidth)
	}
	if e.Latency != 5*1 {
		t.Errorf("latency energy %g", e.Latency)
	}
	if e.Memory != 7*6*T {
		t.Errorf("memory energy %g", e.Memory)
	}
	if e.Leakage != 11*T*2 { // both ranks leak for the full runtime
		t.Errorf("leakage energy %g", e.Leakage)
	}
}

func TestPriceSimResultConsistency(t *testing.T) {
	m := testMachine()
	res, err := sim.Run(4, sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}, func(r *sim.Rank) error {
		r.Alloc(100)
		r.Compute(1000)
		r.World().AllReduce([]float64{1}, sim.OpSum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := PriceSimResult(m, res)
	if pr.P != 4 {
		t.Errorf("P = %g", pr.P)
	}
	if pr.Costs.Flops < 1000 {
		t.Errorf("flops %g", pr.Costs.Flops)
	}
	if pr.TotalEnergy() != PriceSim(m, res).Total() {
		t.Error("energy must come from PriceSim")
	}
}

func TestSimEfficiencyPositive(t *testing.T) {
	m := testMachine()
	res, err := sim.Run(2, sim.Cost{GammaT: m.GammaT}, func(r *sim.Rank) error {
		r.Compute(1e6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	eff := SimEfficiency(m, res)
	if eff <= 0 {
		t.Errorf("efficiency %g", eff)
	}
	// Pure compute with εe and δe≈0-memory: efficiency ≈ 1/γe/1e9 within
	// the leakage correction.
	peak := m.PeakEfficiencyGFLOPSPerWatt()
	if eff > peak {
		t.Errorf("measured efficiency %g cannot exceed compute-only peak %g", eff, peak)
	}
}
