package core

import (
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/machine"
)

func TestMatMulStrongScalingSweepIsPerfect(t *testing.T) {
	m := testMachine()
	pts := MatMulStrongScalingSweep(m, 8192, 64, 8)
	if len(pts) != 8 {
		t.Fatalf("points: %d", len(pts))
	}
	eDev, tDev := PerfectScaling(pts)
	if eDev > 1e-12 {
		t.Errorf("model energy deviation %g, want 0 (perfect scaling)", eDev)
	}
	if tDev > 1e-12 {
		t.Errorf("model time deviation %g, want 0", tDev)
	}
	// Memory per processor is held fixed across the sweep.
	for _, pt := range pts {
		if pt.Mem != pts[0].Mem {
			t.Error("memory must be fixed in the sweep")
		}
	}
}

func TestFastMatMulStrongScalingSweepIsPerfect(t *testing.T) {
	m := testMachine()
	pts := FastMatMulStrongScalingSweep(m, 8192, 49, 6, bounds.OmegaStrassen)
	eDev, tDev := PerfectScaling(pts)
	if eDev > 1e-12 || tDev > 1e-12 {
		t.Errorf("Strassen sweep deviations: energy %g time %g", eDev, tDev)
	}
}

func TestNBodyStrongScalingSweepIsPerfect(t *testing.T) {
	m := testMachine()
	pts := NBodyStrongScalingSweep(m, 1e6, 100, 10, 16)
	eDev, tDev := PerfectScaling(pts)
	if eDev > 1e-12 || tDev > 1e-12 {
		t.Errorf("n-body sweep deviations: energy %g time %g", eDev, tDev)
	}
}

func TestPerfectScalingDetectsDeviation(t *testing.T) {
	pts := []ScalingPoint{
		{C: 1, Time: 10, Energy: 100},
		{C: 2, Time: 5, Energy: 110}, // 10% energy growth
	}
	eDev, tDev := PerfectScaling(pts)
	if !approx(eDev, 0.10, 1e-12) {
		t.Errorf("energy deviation: got %g want 0.1", eDev)
	}
	if tDev != 0 {
		t.Errorf("time deviation: got %g want 0", tDev)
	}
	pts[1].Time = 6 // c*T = 12 vs 10: 20% off
	_, tDev = PerfectScaling(pts)
	if !approx(tDev, 0.20, 1e-12) {
		t.Errorf("time deviation: got %g want 0.2", tDev)
	}
}

func TestPerfectScalingEmpty(t *testing.T) {
	e, d := PerfectScaling(nil)
	if e != 0 || d != 0 {
		t.Error("empty sweep should report zero deviations")
	}
}

func TestMatMul3DLimitSweep(t *testing.T) {
	m := testMachine()
	rs := MatMul3DLimitSweep(m, 4096, []float64{64, 512, 4096})
	if len(rs) != 3 {
		t.Fatalf("results: %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Energy.Memory >= rs[i-1].Energy.Memory {
			t.Error("memory energy must fall along the 3D limit")
		}
		if rs[i].Energy.Bandwidth <= rs[i-1].Energy.Bandwidth {
			t.Error("bandwidth energy must rise along the 3D limit")
		}
	}
}

func TestScalingRanges(t *testing.T) {
	r := MatMulScalingRange(4096, 65536)
	if !approx(r.PMin, 256, 1e-12) || !approx(r.PMax, 4096, 1e-12) {
		t.Errorf("matmul range: %+v", r)
	}
	f := FastMatMulScalingRange(4096, 65536, bounds.OmegaStrassen)
	if f.PMin != r.PMin || f.PMax >= r.PMax {
		t.Errorf("fast range: %+v", f)
	}
	nb := NBodyScalingRange(1e6, 1e4)
	if !approx(nb.PMin, 100, 1e-12) || !approx(nb.PMax, 1e4, 1e-12) {
		t.Errorf("n-body range: %+v", nb)
	}
}

func TestTwoLevelMatMulBehaviour(t *testing.T) {
	tl := machine.JaketownTwoLevel()
	n := 8192.0
	r := TwoLevelMatMul(tl, n, 2, 8)
	if r.Time <= 0 || r.Energy <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.P() != 16 {
		t.Errorf("P: got %g", r.P())
	}
	// More nodes with the same cores/node: time falls.
	r2 := TwoLevelMatMul(tl, n, 4, 8)
	if r2.Time >= r.Time {
		t.Errorf("time should fall with more nodes: %g -> %g", r.Time, r2.Time)
	}
}

func TestTwoLevelNBodyMatchesDerivation(t *testing.T) {
	// The printed Eq. 17 and the from-scratch two-level accounting must be
	// the same expression.
	tl := machine.JaketownTwoLevel()
	tl.EpsilonE = 1e-3 // make leakage terms visible
	for _, tc := range []struct{ n, pn, pl, f float64 }{
		{1e5, 2, 8, 16},
		{1e6, 16, 4, 8},
		{5e4, 1, 1, 2},
	} {
		a := TwoLevelNBody(tl, tc.n, tc.pn, tc.pl, tc.f)
		b := TwoLevelNBodyDerived(tl, tc.n, tc.pn, tc.pl, tc.f)
		if !approx(a.Time, b.Time, 1e-12) {
			t.Errorf("n=%g: T printed %g vs derived %g", tc.n, a.Time, b.Time)
		}
		if !approx(a.Energy, b.Energy, 1e-12) {
			t.Errorf("n=%g: E printed %g vs derived %g", tc.n, a.Energy, b.Energy)
		}
	}
}

func TestTwoLevelNBodyScalesWithNodes(t *testing.T) {
	tl := machine.JaketownTwoLevel()
	n, f := 1e6, 16.0
	r1 := TwoLevelNBody(tl, n, 2, 8, f)
	r2 := TwoLevelNBody(tl, n, 8, 8, f)
	if r2.Time >= r1.Time {
		t.Errorf("two-level n-body time should fall with more nodes: %g -> %g", r1.Time, r2.Time)
	}
}

func TestSweepMonotoneTime(t *testing.T) {
	m := testMachine()
	pts := MatMulStrongScalingSweep(m, 8192, 64, 8)
	for i := 1; i < len(pts); i++ {
		if pts[i].Time >= pts[i-1].Time {
			t.Error("time must fall with c")
		}
	}
	// c doubles => time halves exactly.
	if !approx(pts[1].Time, pts[0].Time/2, 1e-12) {
		t.Errorf("c=2 time: got %g want %g", pts[1].Time, pts[0].Time/2)
	}
	_ = math.Pi
}

func TestMatMulWeakScalingConstantEnergyPerFlop(t *testing.T) {
	m := testMachine()
	mem := float64(1 << 20)
	ps := []float64{16, 64, 256, 1024}
	pts := MatMulWeakScalingSweep(m, mem, ps)
	base := pts[0]
	n0 := math.Sqrt(mem * ps[0])
	e0 := base.Energy / (n0 * n0 * n0)
	for i, pt := range pts {
		n := math.Sqrt(mem * pt.P)
		perFlop := pt.Energy / (n * n * n)
		if !approx(perFlop, e0, 1e-12) {
			t.Errorf("point %d: energy per flop %g differs from %g", i, perFlop, e0)
		}
	}
	// Runtime grows as √p: T(64)/T(16) = √4 = 2 exactly in the model? T =
	// γt n³/p + βt' n³/(√M p) with n³ = (Mp)^{3/2}: both terms ∝ √p.
	if !approx(pts[1].Time, pts[0].Time*2, 1e-12) {
		t.Errorf("weak-scaling runtime should grow as √p: %g vs 2·%g", pts[1].Time, pts[0].Time)
	}
}

func TestNBodyWeakScalingConstantEnergyPerInteraction(t *testing.T) {
	m := testMachine()
	mem := 1e4
	ps := []float64{10, 40, 160}
	pts := NBodyWeakScalingSweep(m, mem, ps, 16)
	e0 := pts[0].Energy / (mem * ps[0] * mem * ps[0])
	for i, pt := range pts {
		n := mem * pt.P
		if !approx(pt.Energy/(n*n), e0, 1e-12) {
			t.Errorf("point %d: energy per interaction drifted", i)
		}
	}
	// Runtime grows linearly in p here (n² = M²p²; F/p = f·M²·p).
	if !approx(pts[1].Time, pts[0].Time*4, 1e-12) {
		t.Errorf("n-body weak runtime should grow as p: %g vs 4·%g", pts[1].Time, pts[0].Time)
	}
}
