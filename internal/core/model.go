// Package core implements the paper's central contribution: linear runtime
// and energy models for distributed algorithms (Eqs. 1–2), their closed-form
// instantiations for classical and Strassen matrix multiplication, LU, the
// direct n-body problem and the FFT (Eqs. 9–17), and the perfect-strong-
// scaling analysis built on them.
//
// Two evaluation paths are provided and tested against each other:
//
//   - the generic path prices any per-processor costs (F, W, S) from
//     internal/bounds with Eval, exactly as Eqs. 1–2 prescribe;
//   - the closed-form path implements the paper's expanded expressions
//     (Eqs. 10, 11, 13, 14, 16) term by term.
//
// Agreement between the two is a property test of both.
package core

import (
	"fmt"
	"math"

	"perfscale/internal/bounds"
	"perfscale/internal/machine"
)

// TimeBreakdown is the runtime of Eq. 1 split by source.
type TimeBreakdown struct {
	Compute   float64 // γt·F
	Bandwidth float64 // βt·W
	Latency   float64 // αt·S
}

// Total returns T = γt·F + βt·W + αt·S.
func (t TimeBreakdown) Total() float64 { return t.Compute + t.Bandwidth + t.Latency }

// EnergyBreakdown is the total machine energy of Eq. 2 split by source.
type EnergyBreakdown struct {
	Compute   float64 // p·γe·F
	Bandwidth float64 // p·βe·W
	Latency   float64 // p·αe·S
	Memory    float64 // p·δe·M·T
	Leakage   float64 // p·εe·T
}

// Total returns E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T).
func (e EnergyBreakdown) Total() float64 {
	return e.Compute + e.Bandwidth + e.Latency + e.Memory + e.Leakage
}

// Result bundles the model evaluation of one algorithm configuration.
type Result struct {
	// P and Mem are the processor count and per-processor memory evaluated.
	P, Mem float64
	// Costs are the per-processor F, W, S that were priced.
	Costs bounds.Costs
	// Time is the per-processor runtime breakdown (Eq. 1).
	Time TimeBreakdown
	// Energy is the whole-machine energy breakdown (Eq. 2).
	Energy EnergyBreakdown
}

// TotalTime returns T in seconds.
func (r Result) TotalTime() float64 { return r.Time.Total() }

// TotalEnergy returns E in joules.
func (r Result) TotalEnergy() float64 { return r.Energy.Total() }

// AvgPower returns P = E/T in watts, the quantity bounded in §V.D–E.
func (r Result) AvgPower() float64 { return r.TotalEnergy() / r.TotalTime() }

// PowerPerProcessor returns E/(T·p).
func (r Result) PowerPerProcessor() float64 { return r.AvgPower() / r.P }

// GFLOPSPerWatt returns the achieved efficiency: total useful flops (p·F)
// divided by total energy, in GFLOPS/W — the metric of Figures 6–7.
func (r Result) GFLOPSPerWatt() float64 {
	return r.P * r.Costs.Flops / r.TotalEnergy() / 1e9
}

// Eval prices per-processor costs c on machine m with p processors using
// mem words of memory each. This is the literal application of Eqs. 1–2.
func Eval(m machine.Params, c bounds.Costs, p, mem float64) Result {
	t := TimeBreakdown{
		Compute:   m.GammaT * c.Flops,
		Bandwidth: m.BetaT * c.Words,
		Latency:   m.AlphaT * c.Msgs,
	}
	T := t.Total()
	e := EnergyBreakdown{
		Compute:   p * m.GammaE * c.Flops,
		Bandwidth: p * m.BetaE * c.Words,
		Latency:   p * m.AlphaE * c.Msgs,
		Memory:    p * m.DeltaE * mem * T,
		Leakage:   p * m.EpsilonE * T,
	}
	return Result{P: p, Mem: mem, Costs: c, Time: t, Energy: e}
}

// --- Algorithm evaluators (generic path) -----------------------------------

// MatMulClassical evaluates classical (O(n³)) communication-optimal matrix
// multiplication at (n, p, M): Eqs. 8 + 1 + 2, attained by the 2.5D
// algorithm for n²/p ≤ M ≤ n²/p^(2/3).
func MatMulClassical(m machine.Params, n, p, mem float64) Result {
	return Eval(m, bounds.ClassicalMatMul(n, p, mem, m.MaxMsgWords), p, mem)
}

// MatMul3DLimit evaluates classical matmul at the 3D memory limit
// M = n²/p^(2/3), where Eq. 11 applies.
func MatMul3DLimit(m machine.Params, n, p float64) Result {
	return MatMulClassical(m, n, p, n*n/math.Pow(p, 2.0/3.0))
}

// FastMatMul evaluates a Strassen-like algorithm with exponent omega0 at
// (n, p, M) — the FLM regime (Eq. 13) for n²/p ≤ M ≤ n²/p^(2/ω0).
func FastMatMul(m machine.Params, n, p, mem, omega0 float64) Result {
	return Eval(m, bounds.FastMatMul(n, p, mem, m.MaxMsgWords, omega0), p, mem)
}

// FastMatMulUnlimited evaluates the FUM regime (Eq. 14): the fast algorithm
// at its maximum useful memory M = n²/p^(2/ω0).
func FastMatMulUnlimited(m machine.Params, n, p, omega0 float64) Result {
	return FastMatMul(m, n, p, n*n/math.Pow(p, 2/omega0), omega0)
}

// LU evaluates 2.5D LU factorization at (n, p, M). Its bandwidth term
// matches matmul but its latency term S = √(c·p) does not strong scale.
func LU(m machine.Params, n, p, mem float64) Result {
	return Eval(m, bounds.LU25D(n, p, mem), p, mem)
}

// NBody evaluates the data-replicating direct n-body algorithm at
// (n, p, M) with flopsPerPair interaction cost (Eqs. 15–16), valid for
// n/p ≤ M ≤ n/√p.
func NBody(m machine.Params, n, p, mem, flopsPerPair float64) Result {
	return Eval(m, bounds.NBody(n, p, mem, m.MaxMsgWords, flopsPerPair), p, mem)
}

// FFT evaluates the cyclic-layout parallel FFT with the tree (Bruck)
// all-to-all if tree is true, else the naive one. The FFT has no use for
// extra memory, so M = n/p always.
func FFT(m machine.Params, n, p float64, tree bool) Result {
	var c bounds.Costs
	if tree {
		c = bounds.FFTTree(n, p)
	} else {
		c = bounds.FFTNaive(n, p)
	}
	return Eval(m, c, p, n/p)
}

// --- Closed forms (verification path) ---------------------------------------

// MatMulEnergyClosedForm implements Eq. 10 term by term:
//
//	E = (γe+γt·εe)·n³ + (B)·n³/√M + δe·γt·M·n³ + (δe·βt + δe·αt/m)·√M·n³
//
// with B = (βe+βt·εe) + (αe+αt·εe)/m. It must agree with
// MatMulClassical(...).TotalEnergy() for every input.
func MatMulEnergyClosedForm(m machine.Params, n, mem float64) float64 {
	n3 := n * n * n
	return m.FlopEnergy()*n3 +
		m.CommEnergyPerWord()*n3/math.Sqrt(mem) +
		m.DeltaE*m.GammaT*mem*n3 +
		m.DeltaE*m.CommTimePerWord()*math.Sqrt(mem)*n3
}

// MatMulTimeClosedForm implements Eq. 9:
//
//	T = γt·n³/p + βt·n³/(√M·p) + αt·n³/(m·√M·p)
func MatMulTimeClosedForm(m machine.Params, n, p, mem float64) float64 {
	n3 := n * n * n
	return m.GammaT*n3/p + m.CommTimePerWord()*n3/(math.Sqrt(mem)*p)
}

// MatMul3DEnergyClosedForm implements Eq. 11, the energy at the 3D limit
// p = n³/M^(3/2):
//
//	E = (γe+γt·εe)·n³ + B·n²·p^(1/3) + δe·γt·n⁵/p^(2/3) + δe·(βt+αt/m)·n⁴/p^(1/3)
func MatMul3DEnergyClosedForm(m machine.Params, n, p float64) float64 {
	return m.FlopEnergy()*n*n*n +
		m.CommEnergyPerWord()*n*n*math.Cbrt(p) +
		m.DeltaE*m.GammaT*math.Pow(n, 5)/math.Pow(p, 2.0/3.0) +
		m.DeltaE*m.CommTimePerWord()*math.Pow(n, 4)/math.Cbrt(p)
}

// FastMatMulEnergyClosedForm implements Eq. 13 (FLM):
//
//	E = (γe+γt·εe)·n^ω0 + B·n^ω0/M^(ω0/2−1) + δe·γt·M·n^ω0 + δe·(βt+αt/m)·M^(2−ω0/2)·n^ω0
func FastMatMulEnergyClosedForm(m machine.Params, n, mem, omega0 float64) float64 {
	nw := math.Pow(n, omega0)
	return m.FlopEnergy()*nw +
		m.CommEnergyPerWord()*nw/math.Pow(mem, omega0/2-1) +
		m.DeltaE*m.GammaT*mem*nw +
		m.DeltaE*m.CommTimePerWord()*math.Pow(mem, 2-omega0/2)*nw
}

// FastMatMulUnlimitedEnergyClosedForm implements Eq. 14 (FUM), the energy at
// M = n²/p^(2/ω0), obtained by substituting that M into Eq. 13:
//
//	E = (γe+γt·εe)·n^ω0 + B·n²·p^(1−2/ω0) + δe·γt·n^(ω0+2)·p^(−2/ω0)
//	    + δe·(βt+αt/m)·n⁴·p^(1−4/ω0)
//
// The paper prints the memory term's power of n as n⁵, which is exact only
// at ω0 = 3; the general substitution gives n^(ω0+2), which we use (they
// agree for classical matmul, and the difference for Strassen is the
// paper's own simplification).
func FastMatMulUnlimitedEnergyClosedForm(m machine.Params, n, p, omega0 float64) float64 {
	nw := math.Pow(n, omega0)
	return m.FlopEnergy()*nw +
		m.CommEnergyPerWord()*n*n*math.Pow(p, 1-2/omega0) +
		m.DeltaE*m.GammaT*math.Pow(n, omega0+2)*math.Pow(p, -2/omega0) +
		m.DeltaE*m.CommTimePerWord()*math.Pow(n, 4)*math.Pow(p, 1-4/omega0)
}

// NBodyTimeClosedForm implements Eq. 15:
//
//	T = γt·f·n²/p + βt·n²/(M·p) + αt·n²/(m·M·p)
func NBodyTimeClosedForm(m machine.Params, n, p, mem, f float64) float64 {
	n2 := n * n
	return m.GammaT*f*n2/p + m.CommTimePerWord()*n2/(mem*p)
}

// NBodyEnergyClosedForm implements Eq. 16:
//
//	E = (f·(γe+γt·εe) + δe·(βt+αt/m))·n² + B·n²/M + δe·γt·f·M·n²
func NBodyEnergyClosedForm(m machine.Params, n, mem, f float64) float64 {
	n2 := n * n
	return (f*m.FlopEnergy()+m.DeltaE*m.CommTimePerWord())*n2 +
		m.CommEnergyPerWord()*n2/mem +
		m.DeltaE*m.GammaT*f*mem*n2
}

// FFTTimeClosedForm implements the Section IV FFT runtime with the tree
// all-to-all:
//
//	T = γt·n·log2(n)/p + βt·n·log2(p)/p + αt·log2(p)
func FFTTimeClosedForm(m machine.Params, n, p float64) float64 {
	return m.GammaT*n*math.Log2(n)/p + m.BetaT*n*math.Log2(p)/p + m.AlphaT*math.Log2(p)
}

// FFTEnergyClosedForm implements the Section IV FFT energy with the tree
// all-to-all:
//
//	E = (γe+εe·γt)·n·log n + (αe+εe·αt)·p·log p + (βe+εe·βt+δe·αt)·n·log p
//	    + δe·γt·n²·log(n)/p + δe·βt·n²·log(p)/p
func FFTEnergyClosedForm(m machine.Params, n, p float64) float64 {
	lgN, lgP := math.Log2(n), math.Log2(p)
	return (m.GammaE+m.EpsilonE*m.GammaT)*n*lgN +
		(m.AlphaE+m.EpsilonE*m.AlphaT)*p*lgP +
		(m.BetaE+m.EpsilonE*m.BetaT+m.DeltaE*m.AlphaT)*n*lgP +
		m.DeltaE*m.GammaT*n*n*lgN/p +
		m.DeltaE*m.BetaT*n*n*lgP/p
}

// --- Validation helpers -----------------------------------------------------

// CheckMatMulRange returns an error when (p, M) lies outside the classical
// matmul replication range n²/p ≤ M ≤ n²/p^(2/3) (within slack for rounding).
func CheckMatMulRange(n, p, mem float64) error {
	if !bounds.InMatMulScalingRange(n, p, mem*(1+1e-12)) && !bounds.InMatMulScalingRange(n, p, mem*(1-1e-12)) {
		return fmt.Errorf("core: M=%g outside matmul range [%g, %g] for n=%g p=%g",
			mem, n*n/p, n*n/math.Pow(p, 2.0/3.0), n, p)
	}
	return nil
}

// CheckNBodyRange returns an error when (p, M) lies outside the n-body
// replication range n/p ≤ M ≤ n/√p.
func CheckNBodyRange(n, p, mem float64) error {
	if !bounds.InNBodyScalingRange(n, p, mem*(1+1e-12)) && !bounds.InNBodyScalingRange(n, p, mem*(1-1e-12)) {
		return fmt.Errorf("core: M=%g outside n-body range [%g, %g] for n=%g p=%g",
			mem, n/p, n/math.Sqrt(p), n, p)
	}
	return nil
}

// TotalOverlapped returns the runtime under the paper's footnote-1
// alternative semantics: computation and communication fully overlapped,
// T = max(γt·F, βt·W, αt·S). The paper notes overlap "could reduce the
// time by at most a factor of 2 or 3" — AdditiveOverOverlap quantifies it.
func (t TimeBreakdown) TotalOverlapped() float64 {
	m := t.Compute
	if t.Bandwidth > m {
		m = t.Bandwidth
	}
	if t.Latency > m {
		m = t.Latency
	}
	return m
}

// AdditiveOverOverlap returns Total()/TotalOverlapped(), the constant the
// no-overlap assumption costs: always in [1, 3] since three terms are
// summed versus maxed.
func (t TimeBreakdown) AdditiveOverOverlap() float64 {
	o := t.TotalOverlapped()
	if o == 0 {
		return 1
	}
	return t.Total() / o
}
