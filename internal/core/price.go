package core

import (
	"perfscale/internal/bounds"
	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

// PriceSim applies the paper's energy model (Eq. 2) to a finished
// simulation: each rank's measured flops, words and messages are priced
// individually, every rank is charged δe·M·T + εe·T for the full simulated
// runtime T (memory stays powered and circuits leak until the last rank
// finishes), and the per-rank energies are summed.
//
// This is the "measured" energy of the experiments: the model applied to
// real counters rather than to closed-form cost expressions.
func PriceSim(m machine.Params, res *sim.Result) EnergyBreakdown {
	T := res.Time()
	var e EnergyBreakdown
	for _, s := range res.PerRank {
		e.Compute += m.GammaE * s.Flops
		e.Bandwidth += m.BetaE * s.WordsSent
		e.Latency += m.AlphaE * s.MsgsSent
		e.Memory += m.DeltaE * s.PeakMemWords * T
		e.Leakage += m.EpsilonE * T
	}
	return e
}

// PriceSimResult wraps PriceSim into a full Result using the busiest
// rank's counters as the per-processor F/W/S and the simulated runtime as
// T, so the measured configuration can be compared against model
// evaluations of the same (p, M) point.
func PriceSimResult(m machine.Params, res *sim.Result) Result {
	s := res.MaxStats()
	p := float64(len(res.PerRank))
	r := Result{
		P:   p,
		Mem: s.PeakMemWords,
		Costs: bounds.Costs{
			Flops: s.Flops,
			Words: s.WordsSent,
			Msgs:  s.MsgsSent,
		},
		Time: TimeBreakdown{
			Compute:   m.GammaT * s.Flops,
			Bandwidth: m.BetaT * s.WordsSent,
			Latency:   m.AlphaT * s.MsgsSent,
		},
		Energy: PriceSim(m, res),
	}
	return r
}

// SimEfficiency returns the measured GFLOPS/W of a simulation: total flops
// actually executed divided by the priced energy.
func SimEfficiency(m machine.Params, res *sim.Result) float64 {
	return res.TotalStats().Flops / PriceSim(m, res).Total() / 1e9
}
