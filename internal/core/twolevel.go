package core

import (
	"math"

	"perfscale/internal/machine"
)

// TwoLevelResult holds the runtime and energy of a two-level (Figure 2)
// model evaluation.
type TwoLevelResult struct {
	// PN and PL are the node count and cores per node; P = PN·PL.
	PN, PL float64
	Time   float64
	Energy float64
}

// P returns the total core count.
func (r TwoLevelResult) P() float64 { return r.PN * r.PL }

// TwoLevelMatMul evaluates the paper's Eq. 12: classical matrix
// multiplication on a machine of pn nodes × pl cores, with node memory Mn
// and core-local memory Ml. Latency is folded in via the substitution
// β ← β + α/m the paper prescribes. The compute term of the printed
// equation reads γt·n²/p; dimensional analysis of Eq. 9 (and the energy
// expression's γe·n³ term) shows it must be γt·n³/p, which we use.
func TwoLevelMatMul(t machine.TwoLevel, n, pn, pl float64) TwoLevelResult {
	n3 := n * n * n
	p := pn * pl
	bn := t.EffBetaTN()
	bl := t.EffBetaTL()
	ben := t.EffBetaEN()
	bel := t.EffBetaEL()

	T := t.GammaT*n3/p + bn*n3/(pn*math.Sqrt(t.MemN)) + bl*n3/(p*math.Sqrt(t.MemL))

	memFactor := t.DeltaEN*t.MemN/pl + t.DeltaEL*t.MemL
	E := n3 * (t.GammaE + t.GammaT*t.EpsilonE +
		(ben+bn*t.EpsilonE)/(pl*math.Sqrt(t.MemN)) +
		(bel+bl*t.EpsilonE)/math.Sqrt(t.MemL) +
		t.GammaT*memFactor +
		memFactor*(bn*pl/math.Sqrt(t.MemN)+bl/math.Sqrt(t.MemL)))
	return TwoLevelResult{PN: pn, PL: pl, Time: T, Energy: E}
}

// TwoLevelNBody evaluates the paper's Eq. 17: the data-replicating direct
// n-body algorithm on a two-level machine, with f flops per interaction.
// Latency folds in via β ← β + α/m as in TwoLevelMatMul.
func TwoLevelNBody(t machine.TwoLevel, n, pn, pl, f float64) TwoLevelResult {
	n2 := n * n
	p := pn * pl
	bn := t.EffBetaTN()
	bl := t.EffBetaTL()
	ben := t.EffBetaEN()
	bel := t.EffBetaEL()

	T := f*n2*t.GammaT/p + bn*n2/(t.MemN*pn) + bl*n2/(t.MemL*p)

	E := n2 * ((f*t.GammaE + f*t.GammaT*t.EpsilonE + t.DeltaEN*bn + t.DeltaEL*bl) +
		(pl*ben+t.EpsilonE*pl*bn)/t.MemN +
		(bel+t.EpsilonE*bl)/t.MemL +
		t.DeltaEN*f*t.GammaT*t.MemN/pl +
		t.DeltaEL*f*t.GammaT*t.MemL +
		t.DeltaEN*bl*t.MemN/(pl*t.MemL) +
		t.DeltaEL*pl*bn*t.MemL/t.MemN)
	return TwoLevelResult{PN: pn, PL: pl, Time: T, Energy: E}
}

// TwoLevelNBodyDerived recomputes Eq. 17 from first principles — summing
// per-node and per-core charges of Eq. 2 over the two levels — as a
// verification of the printed expression:
//
//	E = p·(γe+γt·εe)·F + p·ben·Wn + p·bel·Wl + pn·δen·Mn·T + p·δel·Ml·T
//
// with per-core F = f·n²/p, per-core inter-node words Wn = n²/(pn·Mn)
// (the derivation that reproduces the printed equation exactly), and
// per-core intra-node words Wl = n²/(p·Ml).
func TwoLevelNBodyDerived(t machine.TwoLevel, n, pn, pl, f float64) TwoLevelResult {
	n2 := n * n
	p := pn * pl
	bn := t.EffBetaTN()
	bl := t.EffBetaTL()

	F := f * n2 / p
	Wn := n2 / (pn * t.MemN)
	Wl := n2 / (p * t.MemL)
	T := t.GammaT*F + bn*Wn + bl*Wl

	E := p*(t.GammaE+0)*F + p*t.EpsilonE*t.GammaT*F +
		p*t.EffBetaEN()*Wn + p*t.EpsilonE*bn*Wn +
		p*t.EffBetaEL()*Wl + p*t.EpsilonE*bl*Wl +
		pn*t.DeltaEN*t.MemN*T +
		p*t.DeltaEL*t.MemL*T
	return TwoLevelResult{PN: pn, PL: pl, Time: T, Energy: E}
}
