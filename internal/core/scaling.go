package core

import (
	"math"

	"perfscale/internal/bounds"
	"perfscale/internal/machine"
)

// ScalingPoint is one (p, M) configuration in a strong-scaling sweep of a
// fixed problem size: the replication factor c = p/pmin, the model runtime
// and total energy.
type ScalingPoint struct {
	C      float64 // replication factor p/pmin
	P      float64
	Mem    float64
	Time   float64
	Energy float64
}

// MatMulStrongScalingSweep evaluates classical matmul at p = c·pmin for
// each integer c in [1, cMax], holding the per-processor memory fixed at
// M = n²/pmin — the paper's perfect-strong-scaling construction. Inside the
// sweep, Time falls as 1/c while Energy is constant (Section IV).
func MatMulStrongScalingSweep(m machine.Params, n, pmin float64, cMax int) []ScalingPoint {
	mem := n * n / pmin
	out := make([]ScalingPoint, 0, cMax)
	for c := 1; c <= cMax; c++ {
		p := float64(c) * pmin
		r := MatMulClassical(m, n, p, mem)
		out = append(out, ScalingPoint{C: float64(c), P: p, Mem: mem, Time: r.TotalTime(), Energy: r.TotalEnergy()})
	}
	return out
}

// FastMatMulStrongScalingSweep is the Strassen analogue of
// MatMulStrongScalingSweep with exponent omega0.
func FastMatMulStrongScalingSweep(m machine.Params, n, pmin float64, cMax int, omega0 float64) []ScalingPoint {
	mem := n * n / pmin
	out := make([]ScalingPoint, 0, cMax)
	for c := 1; c <= cMax; c++ {
		p := float64(c) * pmin
		r := FastMatMul(m, n, p, mem, omega0)
		out = append(out, ScalingPoint{C: float64(c), P: p, Mem: mem, Time: r.TotalTime(), Energy: r.TotalEnergy()})
	}
	return out
}

// NBodyStrongScalingSweep evaluates the replicating n-body algorithm at
// p = c·pmin with fixed M = n/pmin for c in [1, cMax].
func NBodyStrongScalingSweep(m machine.Params, n, pmin float64, cMax int, f float64) []ScalingPoint {
	mem := n / pmin
	out := make([]ScalingPoint, 0, cMax)
	for c := 1; c <= cMax; c++ {
		p := float64(c) * pmin
		r := NBody(m, n, p, mem, f)
		out = append(out, ScalingPoint{C: float64(c), P: p, Mem: mem, Time: r.TotalTime(), Energy: r.TotalEnergy()})
	}
	return out
}

// PerfectScaling quantifies how closely a sweep realizes perfect strong
// scaling: it returns the maximum relative deviation of Energy from the
// first point, and the maximum relative deviation of Time·c from the first
// point's Time. Both are 0 for exact perfect scaling in the model.
func PerfectScaling(points []ScalingPoint) (energyDev, timeDev float64) {
	if len(points) == 0 {
		return 0, 0
	}
	e0 := points[0].Energy
	t0 := points[0].Time
	for _, pt := range points {
		if d := math.Abs(pt.Energy-e0) / e0; d > energyDev {
			energyDev = d
		}
		scaled := pt.Time * pt.C / points[0].C
		if d := math.Abs(scaled-t0) / t0; d > timeDev {
			timeDev = d
		}
	}
	return energyDev, timeDev
}

// MatMul3DLimitSweep evaluates Eq. 11 along increasing p at the 3D memory
// limit M = n²/p^(2/3): memory energy falls with p while communication
// energy rises — the post-perfect-scaling tradeoff of Section IV.
func MatMul3DLimitSweep(m machine.Params, n float64, ps []float64) []Result {
	out := make([]Result, 0, len(ps))
	for _, p := range ps {
		out = append(out, MatMul3DLimit(m, n, p))
	}
	return out
}

// ScalingRangeFor describes, for a problem size and per-processor memory,
// where an algorithm's perfect-strong-scaling region begins and ends in p.
type ScalingRange struct {
	PMin, PMax float64
}

// MatMulScalingRange returns [n²/M, n³/M^(3/2)].
func MatMulScalingRange(n, mem float64) ScalingRange {
	return ScalingRange{PMin: bounds.MatMulPMin(n, mem), PMax: bounds.MatMulPMax(n, mem)}
}

// FastMatMulScalingRange returns [n²/M, n^ω0/M^(ω0/2)].
func FastMatMulScalingRange(n, mem, omega0 float64) ScalingRange {
	return ScalingRange{PMin: bounds.MatMulPMin(n, mem), PMax: bounds.FastMatMulPMax(n, mem, omega0)}
}

// NBodyScalingRange returns [n/M, n²/M²].
func NBodyScalingRange(n, mem float64) ScalingRange {
	return ScalingRange{PMin: bounds.NBodyPMin(n, mem), PMax: bounds.NBodyPMax(n, mem)}
}

// MatMulWeakScalingSweep evaluates memory-constrained weak scaling: the
// per-processor memory M stays fixed and the problem grows to fill it,
// n = √(M·p). A corollary of Eq. 10 falls out: the energy *per flop*
// E/n³ = (γe+γt·εe) + B/√M + δe·γt·M + δe·βt'·√M is independent of p — weak
// scaling at constant energy efficiency — while the runtime grows as √p
// (the 2D communication term).
func MatMulWeakScalingSweep(m machine.Params, mem float64, ps []float64) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(ps))
	for _, p := range ps {
		n := math.Sqrt(mem * p)
		r := MatMulClassical(m, n, p, mem)
		out = append(out, ScalingPoint{C: p / ps[0], P: p, Mem: mem,
			Time: r.TotalTime(), Energy: r.TotalEnergy()})
	}
	return out
}

// NBodyWeakScalingSweep is the n-body analogue: M fixed, n = M·p (each
// processor holds its own bodies, c = 1). Energy per interaction
// E/n² stays constant; runtime grows linearly in p (T = γt·f·M²·p + ...).
func NBodyWeakScalingSweep(m machine.Params, mem float64, ps []float64, f float64) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(ps))
	for _, p := range ps {
		n := mem * p
		r := NBody(m, n, p, mem, f)
		out = append(out, ScalingPoint{C: p / ps[0], P: p, Mem: mem,
			Time: r.TotalTime(), Energy: r.TotalEnergy()})
	}
	return out
}
