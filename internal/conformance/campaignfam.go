package conformance

import (
	"context"
	"embed"
	"fmt"
	"io/fs"
	"sort"

	"perfscale/internal/campaign"
)

// The campaign family pins chaos-campaign reproducers as regression cases:
// every artifact under testdata/campaign is a minimal reproducer that a
// past campaign discovered, delta-debugged and verified (the canonical one
// is the under-provisioned failure detector: a DetectorInterval of 4 RTOs
// with 2 tolerated misses turns maskable 25% background loss into a
// spurious peer-failure verdict). The sweep re-runs each artifact from its
// JSON alone — both backends, bitwise — so the bug class stays caught even
// if the campaign engine, the enumeration, or the shrinker change.
//
// Artifacts are self-contained by design: they name their own machine
// preset and target, so the family ignores Config.Machine.
//
//go:embed testdata/campaign/*.json
var campaignArtifacts embed.FS

const campaignArtifactDir = "testdata/campaign"

func checkCampaign(ck *checker, cfg Config) error {
	const alg = "summa-arq"
	// Honour the -alg restriction like every other family: the pinned
	// artifacts all exercise the ARQ-backed SUMMA, so an explicit selection
	// that excludes it skips the (two-backend, hence slow) replays.
	if len(cfg.Algorithms) > 0 {
		found := false
		for _, a := range cfg.Algorithms {
			if a == alg {
				found = true
			}
		}
		if !found {
			return nil
		}
	}
	entries, err := campaignArtifacts.ReadDir(campaignArtifactDir)
	if err != nil {
		return fmt.Errorf("conformance: campaign artifacts: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	for _, e := range entries {
		data, err := fs.ReadFile(campaignArtifacts, campaignArtifactDir+"/"+e.Name())
		if err != nil {
			return fmt.Errorf("conformance: campaign artifact %s: %w", e.Name(), err)
		}
		r, err := campaign.Load(data)
		if err != nil {
			return fmt.Errorf("conformance: campaign artifact %s: %w", e.Name(), err)
		}
		pt := Point{N: r.Target.N, P: r.Target.Ranks(), Q: r.Target.Q}
		ck.checkTrue("campaign/minimized-strictly-fewer", alg, pt, "",
			r.MinimizedCoords < r.DiscoveredCoords,
			float64(r.MinimizedCoords), float64(r.DiscoveredCoords),
			fmt.Sprintf("%s: shrinking must strictly reduce fault coordinates", e.Name()))
		verr := r.Verify(ctx)
		if cfg.interrupted() != nil {
			return nil
		}
		ck.checkTrue("campaign/replays-bitwise", alg, pt, "",
			verr == nil, 0, 0,
			fmt.Sprintf("%s: pinned reproducer (%s violates %s) no longer replays: %v",
				e.Name(), r.Kind, r.Invariant, verr))
	}
	return nil
}
