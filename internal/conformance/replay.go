package conformance

import (
	"fmt"
	"time"

	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// checkReplay verifies the determinism everything else stands on: a seeded
// FaultPlan re-run twice must produce identical Results — same per-rank
// counters and clocks bit for bit, same numerical output, same error. Two
// plan shapes run per seed:
//
//   - a stream-preserving chaos plan (corruptions plus a degraded-link
//     window — duplication would shift the message stream under an
//     algorithm that is not dup-tolerant) that completes: per-rank stats
//     and the product matrix must replay bitwise;
//   - a crash plan that kills one rank mid-run: both runs must fail, with
//     identical error strings (the crash, its cascade, and every rank's
//     exit route are all functions of virtual time only).
func checkReplay(ck *checker, cfg Config) error {
	for _, seed := range cfg.Seeds {
		if err := replayChaos(ck, cfg, seed); err != nil {
			return err
		}
		replayCrash(ck, cfg, seed)
	}
	return nil
}

// chaosPlan builds the stream-preserving fault plan for one seed: every
// link corrupts payloads with moderate probability, and one window early
// in the run degrades all links. No drops, duplications or crashes, so
// every rank sees exactly the message stream the algorithm wrote and the
// run completes.
func chaosPlan(seed uint64) *sim.FaultPlan {
	return &sim.FaultPlan{
		Seed: seed,
		Links: []sim.LinkFault{
			{Src: -1, Dst: -1, CorruptProb: 0.25},
		},
		Degraded: []sim.DegradedLink{
			{Src: -1, Dst: -1, From: 0, Until: 1e-4, AlphaFactor: 3, BetaFactor: 2},
		},
	}
}

func replayChaos(ck *checker, cfg Config, seed uint64) error {
	const alg = "matmul-2.5d"
	pt := Point{N: 48, Q: 4, C: 2, P: 32}
	a := matrix.Random(pt.N, pt.N, 31)
	b := matrix.Random(pt.N, pt.N, 32)
	run := func() (*matmul.RunResult, error) {
		cost := cfg.cost()
		cost.Faults = chaosPlan(seed)
		return matmul.TwoPointFiveD(cost, pt.Q, pt.C, a, b)
	}
	first, err := run()
	if err != nil {
		return fmt.Errorf("conformance: replay seed %#x (first run): %w", seed, err)
	}
	second, err := run()
	if err != nil {
		return fmt.Errorf("conformance: replay seed %#x (second run): %w", seed, err)
	}
	rank, same := statsIdentical(first.Sim, second.Sim)
	ck.checkTrue("replay/per-rank-stats", alg, pt, "",
		same, float64(rank), -1,
		fmt.Sprintf("seed %#x: per-rank stats differ between identical runs (first differing rank in Got)", seed))
	ck.checkTrue("replay/numerics", alg, pt, "",
		first.C.MaxAbsDiff(second.C) == 0,
		first.C.MaxAbsDiff(second.C), 0,
		fmt.Sprintf("seed %#x: numerical output differs between identical runs", seed))
	ck.checkTrue("replay/active-pairs", alg, pt, "",
		first.Sim.ActivePairs == second.Sim.ActivePairs,
		float64(first.Sim.ActivePairs), float64(second.Sim.ActivePairs),
		fmt.Sprintf("seed %#x: wired pair count differs between identical runs", seed))
	return nil
}

// replayCrash kills one rank partway through the run and requires both
// replays to fail identically. The crash time is a fraction of the clean
// run's measured virtual makespan so the crash lands mid-run on any
// machine (an absolute time would fire after a fast machine finished).
// The watchdog stays enabled (generously) so a regression that turns the
// crash cascade into a hang still terminates.
func replayCrash(ck *checker, cfg Config, seed uint64) {
	const alg = "matmul-2.5d"
	pt := Point{N: 48, Q: 4, C: 2, P: 32}
	a := matrix.Random(pt.N, pt.N, 33)
	b := matrix.Random(pt.N, pt.N, 34)
	crashRank := int(seed % uint64(pt.P))
	clean, err := matmul.TwoPointFiveD(cfg.cost(), pt.Q, pt.C, a, b)
	if err != nil {
		ck.checkTrue("replay/crash-baseline", alg, pt, "", false, 0, 0,
			fmt.Sprintf("clean baseline for the crash replay failed: %v", err))
		return
	}
	crashTime := clean.Sim.Time() * 0.3
	run := func() string {
		cost := cfg.cost()
		cost.WatchdogTimeout = 30 * time.Second
		cost.Faults = &sim.FaultPlan{
			Seed:    seed,
			Crashes: map[int]float64{crashRank: crashTime},
		}
		_, err := matmul.TwoPointFiveD(cost, pt.Q, pt.C, a, b)
		if err == nil {
			return ""
		}
		return err.Error()
	}
	first := run()
	second := run()
	ck.checkTrue("replay/crash-fails", alg, pt, "",
		first != "", 0, 1,
		fmt.Sprintf("seed %#x: crashing rank %d did not fail the run", seed, crashRank))
	ck.checkTrue("replay/crash-error-identical", alg, pt, "",
		first == second, float64(len(first)), float64(len(second)),
		fmt.Sprintf("seed %#x: crash error differs between identical runs:\n--- first\n%s\n--- second\n%s", seed, first, second))
}
