package conformance

import (
	"fmt"
	"math"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
)

// checkClosedForms verifies the analytic layer against itself: the generic
// Eq. 1–2 pricing of the Section IV cost expressions must agree with the
// paper's expanded closed forms term by term, and the perfect-strong-scaling
// theorems must hold as exact metamorphic transforms of those forms. These
// checks need no simulator and cost microseconds, so both levels run the
// same grid.
func checkClosedForms(ck *checker, cfg Config) {
	m := ck.m
	const alg = "closed-form"
	const tol = 1e-12

	// Classical matmul grid: (n, p) with M placed inside the scaling region
	// n²/p ≤ M ≤ n²/p^(2/3).
	for _, n := range []float64{256, 1024, 4096} {
		for _, p := range []float64{16, 64, 256} {
			mem := 2 * n * n / p // one replica of headroom: inside the region for p ≥ 8
			pt := Point{N: int(n), P: int(p)}
			if err := core.CheckMatMulRange(n, p, mem); err != nil {
				ck.checkTrue("metamorphic/region", alg, pt, "M", false, mem, 0, err.Error())
				continue
			}

			// Differential within the analytic layer: generic pricing of the
			// Eq. 8 costs vs the expanded Eq. 9/10 closed forms.
			gen := core.MatMulClassical(m, n, p, mem)
			ck.checkTrue("closed-form/time-eq9", alg, pt, "T",
				relClose(gen.TotalTime(), core.MatMulTimeClosedForm(m, n, p, mem), tol),
				gen.TotalTime(), core.MatMulTimeClosedForm(m, n, p, mem),
				"generic Eq. 1 pricing disagrees with the Eq. 9 closed form")
			ck.checkTrue("closed-form/energy-eq10", alg, pt, "E",
				relClose(gen.TotalEnergy(), core.MatMulEnergyClosedForm(m, n, mem), tol),
				gen.TotalEnergy(), core.MatMulEnergyClosedForm(m, n, mem),
				"generic Eq. 2 pricing disagrees with the Eq. 10 closed form")

			// The paper's central theorem as a metamorphic transform: inside
			// the region, p → k·p at fixed per-processor M divides T by k
			// exactly and leaves E unchanged (perfect strong scaling using
			// no additional energy).
			for _, k := range []float64{2, 4, 8} {
				if !bounds.InMatMulScalingRange(n, k*p, mem) {
					continue
				}
				scaled := core.MatMulClassical(m, n, k*p, mem)
				ck.checkTrue("metamorphic/strong-scaling-time", alg, pt, "T",
					relClose(scaled.TotalTime()*k, gen.TotalTime(), tol),
					scaled.TotalTime()*k, gen.TotalTime(),
					fmt.Sprintf("T(%g·p)·%g ≠ T(p) at fixed M inside the scaling region", k, k))
				ck.checkTrue("metamorphic/strong-scaling-energy", alg, pt, "E",
					relClose(scaled.TotalEnergy(), gen.TotalEnergy(), tol),
					scaled.TotalEnergy(), gen.TotalEnergy(),
					fmt.Sprintf("E(%g·p) ≠ E(p) at fixed M inside the scaling region", k))
			}

			// Monotonicity: T and E are strictly increasing in n at fixed
			// (p, M) — more work can never cost less time or energy.
			bigger := core.MatMulClassical(m, n*2, p, mem)
			ck.checkTrue("metamorphic/monotone-n-time", alg, pt, "T",
				bigger.TotalTime() > gen.TotalTime(),
				bigger.TotalTime(), gen.TotalTime(),
				"T not monotone in n at fixed (p, M)")
			ck.checkTrue("metamorphic/monotone-n-energy", alg, pt, "E",
				bigger.TotalEnergy() > gen.TotalEnergy(),
				bigger.TotalEnergy(), gen.TotalEnergy(),
				"E not monotone in n at fixed (p, M)")

			// The attained W equals the memory-aware lower bound inside the
			// region (the algorithm is communication-optimal by construction)
			// and never falls below the memory-independent floor n²/p^(2/3).
			w := bounds.ClassicalMatMul(n, p, mem, m.MaxMsgWords).Words
			ck.checkTrue("metamorphic/lower-bound", alg, pt, "W",
				w >= n*n/math.Pow(p, 2.0/3.0)*(1-tol) || p > bounds.MatMulPMax(n, mem),
				w, n*n/math.Pow(p, 2.0/3.0),
				"attained W below the memory-independent bound inside the scaling range")
		}
	}

	// Strassen-like algorithms: the FLM form evaluated at its maximum
	// useful memory must equal the FUM form (Eq. 13 at M = n²/p^(2/ω0) is
	// how Eq. 14 is derived).
	for _, n := range []float64{1024, 4096} {
		for _, p := range []float64{49, 343} {
			pt := Point{N: int(n), P: int(p)}
			omega := bounds.OmegaStrassen
			mem := n * n / math.Pow(p, 2/omega)
			flm := core.FastMatMulEnergyClosedForm(m, n, mem, omega)
			fum := core.FastMatMulUnlimitedEnergyClosedForm(m, n, p, omega)
			ck.checkTrue("closed-form/flm-fum", alg, pt, "E",
				relClose(flm, fum, 1e-9),
				flm, fum,
				"Eq. 13 at M = n²/p^(2/ω0) disagrees with Eq. 14")
			genFlm := core.FastMatMul(m, n, p, mem, omega)
			ck.checkTrue("closed-form/energy-eq13", alg, pt, "E",
				relClose(genFlm.TotalEnergy(), flm, 1e-9),
				genFlm.TotalEnergy(), flm,
				"generic Eq. 2 pricing disagrees with the Eq. 13 closed form")
		}
	}

	// N-body: Eq. 15/16 against the generic path, plus the strong-scaling
	// transform inside n/p ≤ M ≤ n/√p.
	const f = 19 // interaction cost; any positive constant works
	for _, n := range []float64{1e4, 1e6} {
		for _, p := range []float64{100, 400} {
			mem := 2 * n / p
			pt := Point{N: int(n), P: int(p)}
			if !bounds.InNBodyScalingRange(n, p, mem) {
				ck.checkTrue("metamorphic/region", alg, pt, "M", false, mem, 0,
					"n-body sweep point outside its scaling region")
				continue
			}
			gen := core.NBody(m, n, p, mem, f)
			ck.checkTrue("closed-form/time-eq15", alg, pt, "T",
				relClose(gen.TotalTime(), core.NBodyTimeClosedForm(m, n, p, mem, f), tol),
				gen.TotalTime(), core.NBodyTimeClosedForm(m, n, p, mem, f),
				"generic Eq. 1 pricing disagrees with the Eq. 15 closed form")
			ck.checkTrue("closed-form/energy-eq16", alg, pt, "E",
				relClose(gen.TotalEnergy(), core.NBodyEnergyClosedForm(m, n, mem, f), tol),
				gen.TotalEnergy(), core.NBodyEnergyClosedForm(m, n, mem, f),
				"generic Eq. 2 pricing disagrees with the Eq. 16 closed form")
			for _, k := range []float64{2, 4} {
				if !bounds.InNBodyScalingRange(n, k*p, mem) {
					continue
				}
				scaled := core.NBody(m, n, k*p, mem, f)
				ck.checkTrue("metamorphic/strong-scaling-time", alg, pt, "T",
					relClose(scaled.TotalTime()*k, gen.TotalTime(), tol),
					scaled.TotalTime()*k, gen.TotalTime(),
					fmt.Sprintf("n-body T(%g·p)·%g ≠ T(p) at fixed M", k, k))
				ck.checkTrue("metamorphic/strong-scaling-energy", alg, pt, "E",
					relClose(scaled.TotalEnergy(), gen.TotalEnergy(), tol),
					scaled.TotalEnergy(), gen.TotalEnergy(),
					fmt.Sprintf("n-body E(%g·p) ≠ E(p) at fixed M", k))
			}
		}
	}

	// FFT: the Section IV closed forms against the generic path. The FFT
	// has no memory knob, so its metamorphic content is the tree-vs-naive
	// dominance: the Bruck all-to-all never sends more messages.
	for _, n := range []float64{1 << 16, 1 << 20} {
		for _, p := range []float64{64, 1024} {
			pt := Point{N: int(n), P: int(p)}
			gen := core.FFT(m, n, p, true)
			ck.checkTrue("closed-form/fft-time", alg, pt, "T",
				relClose(gen.TotalTime(), core.FFTTimeClosedForm(m, n, p), tol),
				gen.TotalTime(), core.FFTTimeClosedForm(m, n, p),
				"generic FFT pricing disagrees with the Section IV time closed form")
			tree := bounds.FFTTree(n, p)
			naive := bounds.FFTNaive(n, p)
			ck.checkTrue("metamorphic/fft-tree-latency", alg, pt, "S",
				tree.Msgs <= naive.Msgs,
				tree.Msgs, naive.Msgs,
				"tree all-to-all sends more messages than the naive one")
			ck.checkTrue("metamorphic/fft-naive-bandwidth", alg, pt, "W",
				naive.Words <= tree.Words,
				naive.Words, tree.Words,
				"naive all-to-all moves more words than the tree one")
		}
	}

	// Figure 3 consistency: W·p is flat (perfect strong scaling) up to
	// p = n³/M^(3/2) and strictly increasing beyond it.
	{
		n, mem := 4096.0, 2*4096.0*4096.0/64.0
		pt := Point{N: int(n)}
		pmax := bounds.MatMulPMax(n, mem)
		inA := bounds.ClassicalWordsAnyMemory(n, 2*bounds.MatMulPMin(n, mem), mem) * 2 * bounds.MatMulPMin(n, mem)
		inB := bounds.ClassicalWordsAnyMemory(n, pmax/2, mem) * pmax / 2
		ck.checkTrue("metamorphic/fig3-flat", alg, pt, "W",
			relClose(inA, inB, 1e-9),
			inA, inB,
			"W·p not flat inside the perfect-strong-scaling range")
		outA := bounds.ClassicalWordsAnyMemory(n, 2*pmax, mem) * 2 * pmax
		ck.checkTrue("metamorphic/fig3-growth", alg, pt, "W",
			outA > inB*(1+1e-9),
			outA, inB,
			"W·p does not grow beyond the perfect-strong-scaling range")
	}

	_ = cfg
}
