package conformance

import (
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

// FuzzConformance throws fuzzer-chosen sweep coordinates and fault seeds at
// the two cheapest property families:
//
//   - the closed-form layer at an arbitrary (n, p, M) point inside the
//     scaling region: generic Eq. 1/2 pricing must match the Eq. 9/10
//     closed forms, and the strong-scaling transform must hold exactly —
//     the fixed grids in closedform.go become fuzzer-explored;
//   - the replay family at an arbitrary seed: a tiny 2.5D run under a
//     seeded chaos plan re-run twice must be bit-identical.
//
// The sim point is pinned small (n=16, p=8) so each input stays well under
// a millisecond and the 10-second CI smoke explores thousands of seeds.
func FuzzConformance(f *testing.F) {
	f.Add(uint16(256), uint8(4), uint8(2), uint8(0), uint64(1))
	f.Add(uint16(1024), uint8(8), uint8(4), uint8(1), uint64(0xDEADBEEF))
	f.Add(uint16(4096), uint8(16), uint8(1), uint8(2), uint64(0x9E3779B97F4A7C15))
	f.Fuzz(func(t *testing.T, nRaw uint16, pRaw, memRaw, machineRaw uint8, seed uint64) {
		n := float64(64 + int(nRaw)) // 64 ≤ n < 65600
		p := float64(4 + int(pRaw)%1021)
		mem := float64(1+int(memRaw)%8) * n * n / p
		var m machine.Params
		switch machineRaw % 3 {
		case 0:
			m = machine.SimDefault()
		case 1:
			m = machine.Jaketown()
		default:
			m = machine.Illustrative()
		}

		fuzzClosedForm(t, m, n, p, mem)
		fuzzReplay(t, seed)
	})
}

// fuzzClosedForm checks the analytic identities at one fuzzer-chosen point.
func fuzzClosedForm(t *testing.T, m machine.Params, n, p, mem float64) {
	if core.CheckMatMulRange(n, p, mem) != nil {
		return // outside the scaling region: the forms don't apply
	}
	const tol = 1e-12
	gen := core.MatMulClassical(m, n, p, mem)
	if tcf := core.MatMulTimeClosedForm(m, n, p, mem); !relClose(gen.TotalTime(), tcf, tol) {
		t.Errorf("n=%g p=%g M=%g: generic T %g vs Eq. 9 %g", n, p, mem, gen.TotalTime(), tcf)
	}
	if ecf := core.MatMulEnergyClosedForm(m, n, mem); !relClose(gen.TotalEnergy(), ecf, tol) {
		t.Errorf("n=%g p=%g M=%g: generic E %g vs Eq. 10 %g", n, p, mem, gen.TotalEnergy(), ecf)
	}
	if !bounds.InMatMulScalingRange(n, 2*p, mem) {
		return
	}
	scaled := core.MatMulClassical(m, n, 2*p, mem)
	if !relClose(scaled.TotalTime()*2, gen.TotalTime(), tol) {
		t.Errorf("n=%g p=%g M=%g: T(2p)·2 = %g ≠ T(p) = %g", n, p, mem, scaled.TotalTime()*2, gen.TotalTime())
	}
	if !relClose(scaled.TotalEnergy(), gen.TotalEnergy(), tol) {
		t.Errorf("n=%g p=%g M=%g: E(2p) = %g ≠ E(p) = %g", n, p, mem, scaled.TotalEnergy(), gen.TotalEnergy())
	}
	if math.IsNaN(gen.TotalTime()) || math.IsInf(gen.TotalTime(), 0) {
		t.Errorf("n=%g p=%g M=%g: non-finite T", n, p, mem)
	}
}

// fuzzReplay runs a tiny faulted 2.5D multiply twice under one seed and
// requires bitwise agreement — the replay property at fuzzer-chosen seeds.
func fuzzReplay(t *testing.T, seed uint64) {
	const nb = 16
	a := matrix.Random(nb, nb, 41)
	b := matrix.Random(nb, nb, 42)
	run := func() *matmul.RunResult {
		cost := sim.Cost{GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6}
		cost.Faults = chaosPlan(seed)
		res, err := matmul.TwoPointFiveD(cost, 2, 2, a, b)
		if err != nil {
			t.Fatalf("seed %#x: faulted run failed: %v", seed, err)
		}
		return res
	}
	first, second := run(), run()
	if rank, same := statsIdentical(first.Sim, second.Sim); !same {
		t.Errorf("seed %#x: per-rank stats differ at rank %d between identical runs", seed, rank)
	}
	if d := first.C.MaxAbsDiff(second.C); d != 0 {
		t.Errorf("seed %#x: numerics differ by %g between identical runs", seed, d)
	}
}
