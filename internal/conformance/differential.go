package conformance

import (
	"fmt"

	"perfscale/internal/core"
	"perfscale/internal/sim"
)

// checkDifferential verifies one finished run against the analytic models:
// first the exact pricing identities the clock semantics guarantee for
// every algorithm, then the per-algorithm expectation bands.
func checkDifferential(ck *checker, alg string, pt Point, run *algRun) {
	if !run.faulted {
		checkPricingIdentities(ck, alg, pt, run.res)
	}
	checkPriceConsistency(ck, alg, pt, run.res)
	for _, e := range run.expects {
		ck.checkBand("differential/model-band", alg, pt, e.quantity, e.got, e.model, e.band, e.detail)
	}
}

// checkPricingIdentities verifies, per rank, the exact identities between
// the measured counters and the Eq. 1 pricing the simulator applied —
// the differential core: what the runtime *measured* must equal what the
// model *prices*, to floating accuracy, on clean uniform links.
//
//   - ComputeTime = γt·F
//   - SendTime    = αt·S + βt·W   (S counts ⌈k/m⌉ network messages)
//   - RecvTime    = 0             (the default clock semantics: receivers
//     wait, they are not charged — a mispriced Recv lands here)
//   - ComputeTime + SendTime + RecvTime + WaitTime = Time
//
// and, summed over ranks, the conservation laws ΣW_sent = ΣW_recv and
// ΣS_sent = ΣS_recv (every message that leaves arrives: no loss, no
// double-counting).
func checkPricingIdentities(ck *checker, alg string, pt Point, res *sim.Result) {
	m := ck.m
	const tol = 1e-9
	for id, s := range res.PerRank {
		rank := fmt.Sprintf("rank %d", id)
		ck.checkTrue("differential/compute-pricing", alg, pt, "T",
			relClose(s.ComputeTime, m.GammaT*s.Flops, tol),
			s.ComputeTime, m.GammaT*s.Flops,
			rank+": ComputeTime ≠ γt·F")
		wantSend := m.AlphaT*s.MsgsSent + m.BetaT*s.WordsSent
		ck.checkTrue("differential/send-pricing", alg, pt, "T",
			relClose(s.SendTime, wantSend, tol),
			s.SendTime, wantSend,
			rank+": SendTime ≠ αt·S + βt·W")
		ck.checkTrue("differential/recv-pricing", alg, pt, "T",
			s.RecvTime == 0,
			s.RecvTime, 0,
			rank+": RecvTime ≠ 0 under the default (receiver-waits) semantics")
		sum := s.ComputeTime + s.SendTime + s.RecvTime + s.WaitTime
		ck.checkTrue("differential/time-decomposition", alg, pt, "T",
			relClose(sum, s.Time, tol),
			sum, s.Time,
			rank+": ComputeTime+SendTime+RecvTime+WaitTime ≠ Time")
	}
	tot := res.TotalStats()
	ck.checkTrue("differential/word-conservation", alg, pt, "W",
		relClose(tot.WordsSent, tot.WordsRecv, tol),
		tot.WordsSent, tot.WordsRecv,
		"total words sent ≠ total words received")
	ck.checkTrue("differential/message-conservation", alg, pt, "S",
		relClose(tot.MsgsSent, tot.MsgsRecv, tol),
		tot.MsgsSent, tot.MsgsRecv,
		"total messages sent ≠ total messages received")
}

// checkPriceConsistency re-derives the Eq. 2 energy attribution from the raw
// per-rank counters, independently of core.PriceSim, and requires agreement:
// a differential check of the pricing code itself.
func checkPriceConsistency(ck *checker, alg string, pt Point, res *sim.Result) {
	m := ck.m
	T := res.Time()
	var compute, bandwidth, latency, memory, leakage float64
	for _, s := range res.PerRank {
		compute += m.GammaE * s.Flops
		bandwidth += m.BetaE * s.WordsSent
		latency += m.AlphaE * s.MsgsSent
		memory += m.DeltaE * s.PeakMemWords * T
		leakage += m.EpsilonE * T
	}
	want := compute + bandwidth + latency + memory + leakage
	got := core.PriceSim(m, res).Total()
	ck.checkTrue("differential/price-consistency", alg, pt, "E",
		relClose(got, want, 1e-12),
		got, want,
		"core.PriceSim disagrees with an independent Eq. 2 evaluation of the same counters")
}
