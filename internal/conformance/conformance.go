// Package conformance is the machine-checkable contract between the
// goroutine runtime in internal/sim and the paper's closed forms in
// internal/core and internal/bounds. It sweeps every distributed algorithm
// in the repository over a grid of (n, p, c, M) points and verifies three
// property families against the live simulator:
//
//   - differential: the measured per-rank F/W/S/M counters and the priced
//     T/E agree with the analytic expressions to exact or stated tolerance
//     (exact for the pricing identities the clock semantics guarantee,
//     pinned ratio bands for the order-notation cost shapes);
//   - metamorphic: the paper's invariants hold under parameter transforms —
//     inside the strong-scaling region p→k·p at fixed per-processor memory
//     divides T by k and holds total E constant, W never drops below the
//     communication lower bound, T and E are monotone in n, and
//     dense-vs-sparse wiring plus observed-vs-blind runs are bit-identical;
//   - replay: seeded random fault plans re-run twice produce identical
//     results — the determinism every other guarantee stands on;
//   - recovery: the self-healing runtime masks seeded silent drops with a
//     product bit-identical to the fault-free run, T/E overhead inside
//     pinned bands, bitwise-deterministic replays, and an energy-priced
//     recovery controller whose choice is the argmin of its own pricing;
//   - campaign: minimal reproducers discovered by the chaos-campaign
//     engine (internal/campaign) and pinned under testdata/campaign replay
//     their invariant violations bitwise on both backends.
//
// The engine is a property/table-test core usable from go test (see
// conformance_test.go), a fuzz target (FuzzConformance) and a CLI
// (cmd/conformance) that emits a machine-readable violation report.
// docs/CONFORMANCE.md catalogues the properties and explains how to extend
// the sweep when adding an algorithm.
package conformance

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

// Level selects the sweep depth.
type Level int

// Sweep depths.
const (
	// Quick is the CI gate: every algorithm and property family at small
	// points, a few seconds of wall time.
	Quick Level = iota
	// Full widens the grids (larger n, p, more replication factors).
	Full
)

// String returns "quick" or "full".
func (l Level) String() string {
	if l == Full {
		return "full"
	}
	return "quick"
}

// Point is one sweep coordinate. Not every field is meaningful for every
// algorithm: matmul uses (N, Q, C), CAPS uses (N, K), n-body uses (N, P, C),
// FFT uses (N, P, Tree). Rectangular SUMMA points set the full
// (MDim, KDim, N) shape — C = A·B with A MDim×KDim and B KDim×N — on a
// PR×PC process grid with panel width Panel; square algorithms leave those
// fields zero.
type Point struct {
	N    int  `json:"n"`
	P    int  `json:"p"`
	Q    int  `json:"q,omitempty"`
	C    int  `json:"c,omitempty"`
	K    int  `json:"k,omitempty"`
	Tree bool `json:"tree,omitempty"`

	MDim  int `json:"m,omitempty"`
	KDim  int `json:"kdim,omitempty"`
	PR    int `json:"pr,omitempty"`
	PC    int `json:"pc,omitempty"`
	Panel int `json:"panel,omitempty"`
}

// String renders the point compactly for reports.
func (pt Point) String() string {
	s := fmt.Sprintf("n=%d p=%d", pt.N, pt.P)
	if pt.MDim > 0 {
		s = fmt.Sprintf("m=%d k=%d n=%d p=%d", pt.MDim, pt.KDim, pt.N, pt.P)
	}
	if pt.Q > 0 {
		s += fmt.Sprintf(" q=%d", pt.Q)
	}
	if pt.C > 0 {
		s += fmt.Sprintf(" c=%d", pt.C)
	}
	if pt.K > 0 {
		s += fmt.Sprintf(" k=%d", pt.K)
	}
	if pt.PR > 0 {
		s += fmt.Sprintf(" grid=%dx%d panel=%d", pt.PR, pt.PC, pt.Panel)
	}
	if pt.Tree {
		s += " tree"
	}
	return s
}

// Band is a stated tolerance interval on a measured/model ratio. The bands
// in algorithms.go are pinned golden values: the measured constants of the
// implementations, with enough slack for grid effects across the sweep but
// tight enough that a mispriced operation or a lost message moves a ratio
// out of its band.
type Band struct {
	Lo, Hi float64
}

// contains reports whether ratio lies in [Lo, Hi].
func (b Band) contains(ratio float64) bool { return ratio >= b.Lo && ratio <= b.Hi }

// exactBand is the band used for identities that must hold to floating
// accuracy (summation-order drift only).
var exactBand = Band{1 - 1e-9, 1 + 1e-9}

// Violation is one failed property check.
type Violation struct {
	// Property names the check ("differential/send-pricing",
	// "metamorphic/strong-scaling-energy", "replay/per-rank-stats", ...).
	Property string `json:"property"`
	// Algorithm names the algorithm under test; "closed-form" for checks
	// on the analytic expressions alone.
	Algorithm string `json:"algorithm"`
	// Point is the sweep coordinate, rendered by Point.String.
	Point string `json:"point"`
	// Quantity is the model quantity involved (F, W, S, M, T, E) when the
	// check concerns one.
	Quantity string `json:"quantity,omitempty"`
	// Got and Want are the two sides of the failed comparison.
	Got  float64 `json:"got"`
	Want float64 `json:"want"`
	// Detail explains the failure in prose.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s [%s %s]", v.Property, v.Algorithm, v.Point)
	if v.Quantity != "" {
		s += " " + v.Quantity
	}
	return fmt.Sprintf("%s: got %g, want %g — %s", s, v.Got, v.Want, v.Detail)
}

// Report is the machine-readable outcome of a sweep.
type Report struct {
	Machine    string      `json:"machine"`
	Level      string      `json:"level"`
	Points     int         `json:"points"`
	Checks     int         `json:"checks"`
	Violations []Violation `json:"violations"`
	// WallSeconds is filled by callers that time the sweep (cmd/bench
	// records it into BENCH_sim.json so the gate's cost is tracked).
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Interrupted marks a partial report: the sweep's Config.Context was
	// cancelled before every family ran. The counts and violations cover
	// only the points reached; Ok() on an interrupted report means nothing.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Ok reports whether the sweep found no violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Config parameterises a sweep.
type Config struct {
	// Machine prices the runs; zero value means machine.SimDefault().
	Machine machine.Params
	// Level selects the sweep depth.
	Level Level
	// Algorithms restricts the sweep to the named algorithms (see
	// AlgorithmNames); empty means all.
	Algorithms []string
	// Seeds keys the fault-replay plans; empty means DefaultSeeds.
	Seeds []uint64
	// MutateCost, when set, perturbs the sim.Cost derived from Machine
	// before every run. It exists for negative testing: the expectations
	// are still computed from the unmutated Machine, so a mutation that
	// matters (a mispriced Recv, an inflated βt) must surface as
	// violations. Production sweeps leave it nil.
	MutateCost func(*sim.Cost)
	// MutateResult, when set, perturbs every finished run's measured
	// counters before the checks see them. It exists for negative testing
	// of the bounds family: an under-counting simulator (words recorded
	// below what was actually moved) cannot be expressed as a cost
	// mutation, but must still be caught by the lower-bound floor.
	// Production sweeps leave it nil.
	MutateResult func(*sim.Result)
	// SkipSim disables the simulator-backed families (differential,
	// sim-level metamorphic, replay), leaving only the closed-form checks.
	// The fuzz target uses it to keep per-input cost bounded.
	SkipSim bool
	// Verbose, when non-nil, receives one line per band check with the
	// measured ratio — the input to the band-calibration procedure in
	// docs/CONFORMANCE.md (cmd/conformance -v wires it to stderr).
	Verbose io.Writer
	// Context, when non-nil, aborts the sweep when cancelled: it is checked
	// between points and threaded into every simulator run as sim.Cost's
	// Context, so even a rank mid-multiply stops promptly. Sweep then
	// returns the partial report with Interrupted set and an error wrapping
	// the context's cause (cmd/conformance wires SIGINT here).
	Context context.Context
}

// interrupted returns the context's cancellation cause, or nil while the
// sweep may continue.
func (cfg *Config) interrupted() error {
	if cfg.Context == nil {
		return nil
	}
	return context.Cause(cfg.Context)
}

// DefaultSeeds are the fault-plan seeds replayed when Config.Seeds is empty.
var DefaultSeeds = []uint64{1, 0xDEADBEEF, 0x9E3779B97F4A7C15}

// checker accumulates violations and check counts for one sweep.
type checker struct {
	m       machine.Params
	cfg     *Config
	rep     *Report
	verbose io.Writer
}

// violate records a failed check. Failures arriving after the sweep's
// Context was cancelled are dropped: a run aborted mid-flight fails its
// checks for the wrong reason, and a partial report must not present
// cancellation artifacts as model violations.
func (c *checker) violate(v Violation) {
	if c.cfg.interrupted() != nil {
		return
	}
	c.rep.Violations = append(c.rep.Violations, v)
}

// checkBand verifies got/want ∈ band (want > 0) and records a violation
// otherwise. Every call counts as one check.
func (c *checker) checkBand(property, alg string, pt Point, quantity string, got, want float64, band Band, detail string) {
	c.rep.Checks++
	if want == 0 {
		if got == 0 {
			return
		}
		c.violate(Violation{Property: property, Algorithm: alg, Point: pt.String(), Quantity: quantity,
			Got: got, Want: want, Detail: detail + " (model is zero, measurement is not)"})
		return
	}
	ratio := got / want
	if c.verbose != nil {
		fmt.Fprintf(c.verbose, "ratio %-40s %-18s %-28s %-2s %.6g in [%g, %g]\n",
			property, alg, pt, quantity, ratio, band.Lo, band.Hi)
	}
	if !band.contains(ratio) {
		c.violate(Violation{Property: property, Algorithm: alg, Point: pt.String(), Quantity: quantity,
			Got: got, Want: want,
			Detail: fmt.Sprintf("%s: ratio %.6g outside band [%g, %g]", detail, ratio, band.Lo, band.Hi)})
	}
}

// checkTrue verifies a predicate.
func (c *checker) checkTrue(property, alg string, pt Point, quantity string, ok bool, got, want float64, detail string) {
	c.rep.Checks++
	if !ok {
		c.violate(Violation{Property: property, Algorithm: alg, Point: pt.String(), Quantity: quantity,
			Got: got, Want: want, Detail: detail})
	}
}

// cost derives the simulated cost from the machine parameters, applying the
// negative-testing mutation when configured.
func (cfg *Config) cost() sim.Cost {
	c := sim.Cost{
		GammaT:      cfg.Machine.GammaT,
		BetaT:       cfg.Machine.BetaT,
		AlphaT:      cfg.Machine.AlphaT,
		MaxMsgWords: int(cfg.Machine.MaxMsgWords),
		Context:     cfg.Context,
	}
	if cfg.MutateCost != nil {
		cfg.MutateCost(&c)
	}
	return c
}

// Sweep runs every property family at every grid point and returns the
// violation report. An error is returned only for harness failures (an
// algorithm refusing to run); model disagreements are violations, not
// errors.
func Sweep(cfg Config) (*Report, error) {
	if cfg.Machine.Name == "" {
		cfg.Machine = machine.SimDefault()
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = DefaultSeeds
	}
	rep := &Report{Machine: cfg.Machine.Name, Level: cfg.Level.String(), Violations: []Violation{}}
	ck := &checker{m: cfg.Machine, cfg: &cfg, rep: rep, verbose: cfg.Verbose}

	// fail resolves an error return: a cancelled Context takes precedence
	// over whatever error the abort surfaced as, and marks the report
	// partial so callers can still persist the points already checked.
	fail := func(err error) (*Report, error) {
		if cause := cfg.interrupted(); cause != nil {
			rep.Interrupted = true
			return rep, fmt.Errorf("conformance: sweep interrupted: %w", cause)
		}
		return rep, err
	}

	checkClosedForms(ck, cfg)
	checkBoundsClosedForm(ck)
	checkRecoveryController(ck)

	if !cfg.SkipSim {
		for _, alg := range selectAlgorithms(cfg.Algorithms) {
			for _, pt := range alg.points(cfg.Level) {
				if cfg.interrupted() != nil {
					return fail(nil)
				}
				rep.Points++
				run, err := alg.run(cfg.cost(), cfg.Machine, pt)
				if err != nil {
					return fail(fmt.Errorf("conformance: %s %s: %w", alg.name, pt, err))
				}
				if cfg.MutateResult != nil {
					cfg.MutateResult(run.res)
				}
				checkDifferential(ck, alg.name, pt, run)
				checkBoundsFloor(ck, alg.name, pt, run)
			}
		}
		for _, family := range []func(*checker, Config) error{
			checkSimMetamorphic, checkWeakScaling, checkReplay, checkRecovery, checkBackend, checkCampaign,
		} {
			if cfg.interrupted() != nil {
				return fail(nil)
			}
			if err := family(ck, cfg); err != nil {
				return fail(err)
			}
		}
	}
	return rep, nil
}

// AlgorithmNames lists the algorithms the sweep covers, sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithms))
	for _, a := range algorithms {
		names = append(names, a.name)
	}
	sort.Strings(names)
	return names
}

// selectAlgorithms filters the registry by name; empty selects everything.
func selectAlgorithms(names []string) []algorithmDef {
	if len(names) == 0 {
		return algorithms
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []algorithmDef
	for _, a := range algorithms {
		if want[a.name] {
			out = append(out, a)
		}
	}
	return out
}

// relClose reports |got−want| ≤ tol·max(|got|, |want|, floor).
func relClose(got, want, tol float64) bool {
	scale := math.Max(math.Abs(got), math.Abs(want))
	if scale == 0 {
		return true
	}
	return math.Abs(got-want) <= tol*scale
}
