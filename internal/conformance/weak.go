package conformance

import (
	"fmt"
	"math"

	"perfscale/internal/core"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
)

// weakSimBands bound the measured weak-scaling transform on the live
// simulator: with per-rank memory fixed and the problem grown to fill the
// machine, the per-rank flop rate and the energy per flop both stay ≈
// constant (the Eq. 10 corollary). The deviation budget covers the latency
// term, which grows slightly faster than per-rank work at sweepable sizes.
var (
	weakSimRateBand   = Band{0.85, 1.15}
	weakSimEnergyBand = Band{0.85, 1.15}
)

// checkWeakScaling is the weak-scaling metamorphic family:
//
//   - closed forms: MatMulWeakScalingSweep and NBodyWeakScalingSweep must
//     hold energy per flop exactly constant across p (the Eq. 10
//     corollary E/n³ independent of p — an algebraic identity of the
//     model, so the band is exact);
//   - live simulator: 2.5D matmul with the per-rank block fixed (n = q·nb,
//     p = q²) and the ring n-body with bodies per rank fixed (n = b·p)
//     must hold the per-rank flop rate and the priced energy per flop
//     inside snug bands as p grows — weak scaling measured on the runtime
//     rather than evaluated in closed form.
//
// The closed-form legs run on the sweep's machine; the live legs run on
// the sim-default machine (see checkSimMetamorphic for why) while still
// honouring the negative-testing cost mutation.
func checkWeakScaling(ck *checker, cfg Config) error {
	checkWeakClosedForms(ck, cfg)
	if err := checkSimWeakScalingMatMul(ck, cfg); err != nil {
		return err
	}
	return checkSimWeakScalingNBody(ck, cfg)
}

func checkWeakClosedForms(ck *checker, cfg Config) {
	m := cfg.Machine
	ps := []float64{16, 64, 256, 1024}

	const mmMem = 1 << 20
	mm := core.MatMulWeakScalingSweep(m, mmMem, ps)
	n0 := math.Sqrt(mmMem * ps[0])
	epf0 := mm[0].Energy / (2 * n0 * n0 * n0)
	for i, pt := range mm[1:] {
		n := math.Sqrt(mmMem * pt.P)
		epf := pt.Energy / (2 * n * n * n)
		ck.checkBand("weak/closed-energy-per-flop", "matmul-classical",
			Point{N: int(n), P: int(pt.P)}, "E/flop",
			epf, epf0, exactBand,
			fmt.Sprintf("Eq. 10 corollary: matmul energy per flop at p=%v vs p=%v (M fixed)", ps[i+1], ps[0]))
	}

	const nbMem, f = 1 << 10, 19
	nb := core.NBodyWeakScalingSweep(m, nbMem, ps, f)
	nbase := nbMem * ps[0]
	nepf0 := nb[0].Energy / (f * nbase * nbase)
	for i, pt := range nb[1:] {
		n := nbMem * pt.P
		nepf := pt.Energy / (f * n * n)
		ck.checkBand("weak/closed-energy-per-flop", "nbody",
			Point{N: int(n), P: int(pt.P)}, "E/flop",
			nepf, nepf0, exactBand,
			fmt.Sprintf("Eq. 10 corollary: n-body energy per interaction at p=%v vs p=%v (M fixed)", ps[i+1], ps[0]))
	}
}

func checkSimWeakScalingMatMul(ck *checker, cfg Config) error {
	const alg = "matmul-2.5d"
	const nb = 24 // per-rank block edge, fixed: per-rank memory 3·nb²
	m, cost := scalingCost(cfg)
	qs := []int{2, 4}
	if cfg.Level == Full {
		qs = append(qs, 8)
	}
	var rate0, epf0 float64
	for i, q := range qs {
		n := q * nb
		p := q * q
		a := matrix.Random(n, n, 41)
		b := matrix.Random(n, n, 42)
		res, err := matmul.TwoPointFiveD(cost, q, 1, a, b)
		if err != nil {
			return fmt.Errorf("conformance: sim weak scaling matmul q=%d: %w", q, err)
		}
		flops := res.Sim.MaxStats().Flops
		rate := flops / res.Sim.Time()
		epf := core.PriceSim(m, res.Sim).Total() / (float64(p) * flops)
		if i == 0 {
			rate0, epf0 = rate, epf
			continue
		}
		pt := Point{N: n, Q: q, P: p}
		ck.checkBand("weak/sim-flop-rate", alg, pt, "F/T",
			rate, rate0, weakSimRateBand,
			fmt.Sprintf("per-rank flop rate at q=%d vs q=%d (block nb=%d fixed)", q, qs[0], nb))
		ck.checkBand("weak/sim-energy-per-flop", alg, pt, "E/flop",
			epf, epf0, weakSimEnergyBand,
			fmt.Sprintf("measured energy per flop at q=%d vs q=%d (block nb=%d fixed)", q, qs[0], nb))
	}
	return nil
}

func checkSimWeakScalingNBody(ck *checker, cfg Config) error {
	const alg = "nbody"
	const b = 32 // bodies per rank, fixed: M = b
	m, cost := scalingCost(cfg)
	ps := []int{4, 8}
	if cfg.Level == Full {
		ps = append(ps, 16)
	}
	var rate0, epf0 float64
	for i, p := range ps {
		n := b * p
		bodies := nbody.RandomBodies(n, 43)
		res, err := nbody.Replicated(cost, p, 1, bodies)
		if err != nil {
			return fmt.Errorf("conformance: sim weak scaling n-body p=%d: %w", p, err)
		}
		flops := res.Sim.MaxStats().Flops
		rate := flops / res.Sim.Time()
		epf := core.PriceSim(m, res.Sim).Total() / (float64(p) * flops)
		if i == 0 {
			rate0, epf0 = rate, epf
			continue
		}
		pt := Point{N: n, P: p}
		ck.checkBand("weak/sim-flop-rate", alg, pt, "F/T",
			rate, rate0, weakSimRateBand,
			fmt.Sprintf("per-rank flop rate at p=%d vs p=%d (bodies per rank %d fixed)", p, ps[0], b))
		ck.checkBand("weak/sim-energy-per-flop", alg, pt, "E/flop",
			epf, epf0, weakSimEnergyBand,
			fmt.Sprintf("measured energy per flop at p=%d vs p=%d (bodies per rank %d fixed)", p, ps[0], b))
	}
	return nil
}
