package conformance

import (
	"testing"

	"perfscale/internal/machine"
)

// TestCampaignFamilyReplaysPinnedRepros runs the campaign family alone:
// every embedded reproducer must load, be strictly minimized, and replay
// its violation bitwise on both backends.
func TestCampaignFamilyReplaysPinnedRepros(t *testing.T) {
	cfg := Config{Machine: machine.SimDefault()}
	rep := &Report{Machine: cfg.Machine.Name, Level: cfg.Level.String(), Violations: []Violation{}}
	ck := &checker{m: cfg.Machine, cfg: &cfg, rep: rep}
	if err := checkCampaign(ck, cfg); err != nil {
		t.Fatal(err)
	}
	// Two checks per artifact (minimality + bitwise replay), at least one
	// artifact pinned (the under-provisioned detector).
	if rep.Checks < 2 {
		t.Fatalf("campaign family made %d checks; no artifacts embedded?", rep.Checks)
	}
	for _, v := range rep.Violations {
		t.Errorf("pinned reproducer violation: %s", v)
	}
}
