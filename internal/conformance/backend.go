package conformance

import (
	"fmt"
	"sync"
	"time"

	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// The backend family is the contract between the two simulator runtimes:
// the goroutine backend (one live goroutine per rank, the reference
// semantics) and the event backend (cooperative continuations on a
// virtual-time run queue, the million-rank engine). Any valid scheduling of
// the deterministic clock rules must give the same answer, so the family
// demands bitwise equality — per-rank F/W/S/M counters, clocks, ActivePairs,
// and per-rank observer event streams — never tolerance bands:
//
//   - every algorithm in the registry runs once per backend at a quick
//     point and the Results must be identical (this covers the event
//     engine's fast-forward path, which prices whole collectives without
//     scheduling their member ranks);
//   - the same comparison repeats with an observer attached, which
//     disqualifies fast-forward and forces the event-by-event slow path,
//     and the per-rank segment streams must match element for element
//     (cross-rank interleaving is unordered by contract and not compared);
//   - a seeded chaos plan — silent drops, duplications, corruptions — runs
//     through the ARQ endpoints on both backends: recovery is virtual-time
//     state machinery, so stats, the product matrix, the ARQ protocol
//     counters and the per-rank fault/timer streams must all replay
//     bitwise across backends.
func checkBackend(ck *checker, cfg Config) error {
	if err := backendAlgorithmIdentity(ck, cfg); err != nil {
		return err
	}
	if err := backendObserverIdentity(ck, cfg); err != nil {
		return err
	}
	// One seed suffices: this is an identity check between backends, not a
	// fault-coverage sweep (the replay and recovery families cover every
	// seed), and the goroutine leg pays a real-time quiescence window per
	// masked drop.
	return backendChaosIdentity(ck, cfg, cfg.Seeds[0])
}

// eventCost flips a cost to the event backend.
func eventCost(cost sim.Cost) sim.Cost {
	cost.Runtime = sim.RuntimeEvent
	return cost
}

// backendPoint picks the one sweep coordinate per algorithm the identity
// check runs at: the first quick point keeps the family inside the CI
// budget while still touching every collective each algorithm uses.
func backendPoint(alg algorithmDef) Point { return alg.points(Quick)[0] }

// backendAlgorithmIdentity runs every registry algorithm on both backends
// and requires bitwise-identical Results. No observer or fault plan is
// attached, so the event engine takes its fast-forward path for every
// cluster-wide collective — this is the check that pins fast-forward
// pricing to the reference semantics.
func backendAlgorithmIdentity(ck *checker, cfg Config) error {
	for _, alg := range selectAlgorithms(cfg.Algorithms) {
		pt := backendPoint(alg)
		ref, err := alg.run(cfg.cost(), cfg.Machine, pt)
		if err != nil {
			return fmt.Errorf("conformance: backend %s %s (goroutine): %w", alg.name, pt, err)
		}
		ev, err := alg.run(eventCost(cfg.cost()), cfg.Machine, pt)
		if err != nil {
			return fmt.Errorf("conformance: backend %s %s (event): %w", alg.name, pt, err)
		}
		rank, same := statsIdentical(ref.res, ev.res)
		ck.checkTrue("backend/per-rank-stats", alg.name, pt, "",
			same, float64(rank), -1,
			"per-rank stats differ between goroutine and event backends (first differing rank in Got)")
		ck.checkTrue("backend/active-pairs", alg.name, pt, "",
			ref.res.ActivePairs == ev.res.ActivePairs,
			float64(ref.res.ActivePairs), float64(ev.res.ActivePairs),
			"wired pair count differs between goroutine and event backends")
	}
	return nil
}

// streamObs records per-rank observer streams for cross-backend comparison.
// One mutex suffices: the goroutine backend delivers from many rank
// goroutines, the event backend from its worker pool.
type streamObs struct {
	mu     sync.Mutex
	segs   map[int][]sim.Segment
	faults map[int][]sim.FaultEvent
	timers map[int][]sim.TimerEvent
}

func newStreamObs() *streamObs {
	return &streamObs{
		segs:   map[int][]sim.Segment{},
		faults: map[int][]sim.FaultEvent{},
		timers: map[int][]sim.TimerEvent{},
	}
}

func (o *streamObs) add(rank int, seg sim.Segment) {
	o.mu.Lock()
	o.segs[rank] = append(o.segs[rank], seg)
	o.mu.Unlock()
}

func (o *streamObs) OnCompute(rank int, seg sim.Segment) { o.add(rank, seg) }
func (o *streamObs) OnSend(rank int, seg sim.Segment)    { o.add(rank, seg) }
func (o *streamObs) OnRecv(rank int, seg sim.Segment)    { o.add(rank, seg) }
func (o *streamObs) OnPhase(int, string, float64)        {}
func (o *streamObs) OnFault(ev sim.FaultEvent) {
	o.mu.Lock()
	o.faults[ev.Src] = append(o.faults[ev.Src], ev)
	o.mu.Unlock()
}
func (o *streamObs) OnCrash(sim.CrashEvent)       {}
func (o *streamObs) OnDeadlock(sim.DeadlockEvent) {}
func (o *streamObs) OnTimer(ev sim.TimerEvent) {
	o.mu.Lock()
	o.timers[ev.Rank] = append(o.timers[ev.Rank], ev)
	o.mu.Unlock()
}

// diffStreams returns the first rank whose recorded stream differs between
// the two observers, or -1 if all match.
func diffStreams(a, b *streamObs, p int) int {
	for rank := 0; rank < p; rank++ {
		if len(a.segs[rank]) != len(b.segs[rank]) {
			return rank
		}
		for i := range a.segs[rank] {
			if a.segs[rank][i] != b.segs[rank][i] {
				return rank
			}
		}
		if len(a.faults[rank]) != len(b.faults[rank]) {
			return rank
		}
		for i := range a.faults[rank] {
			if a.faults[rank][i] != b.faults[rank][i] {
				return rank
			}
		}
		if len(a.timers[rank]) != len(b.timers[rank]) {
			return rank
		}
		for i := range a.timers[rank] {
			if a.timers[rank][i] != b.timers[rank][i] {
				return rank
			}
		}
	}
	return -1
}

// backendObserverIdentity repeats the identity check for one algorithm with
// an observer subscribed. The observer disqualifies fast-forward, so this
// run exercises the event engine's event-by-event slow path, and the
// per-rank segment streams must match the goroutine backend's element for
// element.
func backendObserverIdentity(ck *checker, cfg Config) error {
	const alg = "matmul-2.5d"
	pt := Point{N: 48, Q: 4, C: 2, P: 32}
	a := matrix.Random(pt.N, pt.N, 51)
	b := matrix.Random(pt.N, pt.N, 52)
	run := func(cost sim.Cost) (*matmul.RunResult, *streamObs, error) {
		obs := newStreamObs()
		cost.Observers = []sim.Observer{obs}
		res, err := matmul.TwoPointFiveD(cost, pt.Q, pt.C, a, b)
		return res, obs, err
	}
	ref, refObs, err := run(cfg.cost())
	if err != nil {
		return fmt.Errorf("conformance: backend observer %s (goroutine): %w", pt, err)
	}
	ev, evObs, err := run(eventCost(cfg.cost()))
	if err != nil {
		return fmt.Errorf("conformance: backend observer %s (event): %w", pt, err)
	}
	rank, same := statsIdentical(ref.Sim, ev.Sim)
	ck.checkTrue("backend/observed-per-rank-stats", alg, pt, "",
		same, float64(rank), -1,
		"observed (slow-path) per-rank stats differ between backends (first differing rank in Got)")
	diff := diffStreams(refObs, evObs, pt.P)
	ck.checkTrue("backend/observer-stream", alg, pt, "",
		diff < 0, float64(diff), -1,
		"per-rank observer event streams differ between backends (first differing rank in Got)")
	return nil
}

// backendChaosIdentity replays one seeded chaos plan — drops, duplications
// and corruptions masked by the ARQ endpoints — on both backends and
// requires the complete outcome to match bitwise: per-rank stats, the
// product matrix, the protocol counters, and the per-rank fault and timer
// streams.
func backendChaosIdentity(ck *checker, cfg Config, seed uint64) error {
	const alg = "summa-arq"
	pt := Point{N: 32, P: 16, Q: 4}
	a := matrix.Random(pt.N, pt.N, 61)
	b := matrix.Random(pt.N, pt.N, 62)
	nb := pt.N / pt.Q
	run := func(cost sim.Cost) (*resilience.SUMMAARQResult, *streamObs, error) {
		arqCfg := resilience.ARQDefaults(cost, nb*nb)
		arqCfg.MaxAttempts = 3
		arqCfg.MaxRTO = 8 * arqCfg.RTO
		obs := newStreamObs()
		cost.Observers = []sim.Observer{obs}
		cost.Faults = recoveryFaults(seed)
		// Timer outcomes are a pure function of virtual deadlines, so a
		// short quiescence window changes nothing but the goroutine leg's
		// wall clock (each masked drop costs one window; the event leg
		// detects quiescence exactly and ignores this).
		cost.WatchdogTimeout = 100 * time.Millisecond
		res, err := resilience.SUMMAARQ(cost, pt.Q, arqCfg, a, b)
		return res, obs, err
	}
	ref, refObs, err := run(cfg.cost())
	if err != nil {
		return fmt.Errorf("conformance: backend chaos seed %#x (goroutine): %w", seed, err)
	}
	ev, evObs, err := run(eventCost(cfg.cost()))
	if err != nil {
		return fmt.Errorf("conformance: backend chaos seed %#x (event): %w", seed, err)
	}
	rank, same := statsIdentical(ref.Sim, ev.Sim)
	ck.checkTrue("backend/chaos-per-rank-stats", alg, pt, "",
		same, float64(rank), -1,
		fmt.Sprintf("seed %#x: chaos per-rank stats differ between backends (first differing rank in Got)", seed))
	ck.checkTrue("backend/chaos-numerics", alg, pt, "",
		ref.C.MaxAbsDiff(ev.C) == 0, ref.C.MaxAbsDiff(ev.C), 0,
		fmt.Sprintf("seed %#x: product differs between backends", seed))
	refRep, evRep := ref.Report(), ev.Report()
	ck.checkTrue("backend/chaos-arq-counters", alg, pt, "",
		refRep == evRep, float64(refRep.Retransmits), float64(evRep.Retransmits),
		fmt.Sprintf("seed %#x: ARQ protocol counters differ between backends (goroutine %+v, event %+v)", seed, refRep, evRep))
	diff := diffStreams(refObs, evObs, pt.P)
	ck.checkTrue("backend/chaos-observer-stream", alg, pt, "",
		diff < 0, float64(diff), -1,
		fmt.Sprintf("seed %#x: per-rank fault/timer/segment streams differ between backends (first differing rank in Got)", seed))
	return nil
}
