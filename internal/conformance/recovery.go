package conformance

import (
	"fmt"
	"time"

	"perfscale/internal/core"
	"perfscale/internal/matrix"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// The recovery family checks the self-healing runtime end to end: a SUMMA
// run over the ARQ endpoints under a seeded plan of silent drops,
// duplications and corruptions must
//
//   - complete (no watchdog abort: every injected loss is recovered by a
//     virtual-time retransmission, not by the deadlock detector);
//   - produce a product bit-identical to the fault-free run — recovery
//     changes when work happens, never what is computed;
//   - pay a bounded, pinned overhead in T and E relative to the clean run
//     (the bands below are golden values, calibrated like the differential
//     bands: run with Verbose and widen only with justification);
//   - replay deterministically: per-rank sim stats and per-rank ARQ
//     counters agree bitwise across two runs of the same plan.
//
// recoveryTimeBand and recoveryEnergyBand bound chaos/clean for T and E.
// The floor is 1 − ε: a masked drop can only add waiting, never remove
// work. The ceilings cover the measured overhead across DefaultSeeds on
// both sweep machines (ratios land at 1.8–3.3 for T and 1.01–1.37 for E;
// E moves less because leakage and memory energy scale with T while the
// dominant compute/bandwidth terms are fault-invariant).
var (
	recoveryTimeBand   = Band{1 - 1e-9, 4.0}
	recoveryEnergyBand = Band{1 - 1e-9, 2.0}
)

// recoveryFaults is the chaos plan for one seed: silent drops (the fault
// class Reliable cannot mask and ARQ exists for) plus duplication and
// corruption on every link at once.
func recoveryFaults(seed uint64) *sim.FaultPlan {
	return &sim.FaultPlan{
		Seed: seed,
		Links: []sim.LinkFault{
			{Src: -1, Dst: -1, DropProb: 0.02, DupProb: 0.02, CorruptProb: 0.02},
		},
	}
}

// recoveryPoints sizes the sweep: quick runs one p=16 grid, full adds a
// p=36 grid. Chaos runs cost real time (each recovered drop burns about
// one watchdog window of wall clock at quiescence), so the grids stay
// small and the drop rate moderate.
func recoveryPoints(level Level) []Point {
	pts := []Point{{N: 32, P: 16, Q: 4}}
	if level == Full {
		pts = append(pts, Point{N: 48, P: 36, Q: 6})
	}
	return pts
}

// recoverySeeds keeps the quick gate to one plan per point; the full sweep
// replays every configured seed.
func recoverySeeds(cfg Config) []uint64 {
	if cfg.Level == Full {
		return cfg.Seeds
	}
	return cfg.Seeds[:1]
}

func checkRecovery(ck *checker, cfg Config) error {
	// Like the metamorphic and replay families, recovery points are not
	// algorithm-registry points and do not count toward Report.Points.
	const alg = "summa-arq"
	for _, pt := range recoveryPoints(cfg.Level) {
		if err := checkRecoveryPoint(ck, cfg, alg, pt); err != nil {
			return err
		}
	}
	return nil
}

func checkRecoveryPoint(ck *checker, cfg Config, alg string, pt Point) error {
	a := matrix.Random(pt.N, pt.N, 41)
	b := matrix.Random(pt.N, pt.N, 42)
	nb := pt.N / pt.Q
	arqCfg := resilience.ARQDefaults(cfg.cost(), nb*nb)
	// A tight retransmission budget keeps the overhead bands meaningful on
	// these toy grids: a dropped ack walks the whole budget before the
	// sender completes optimistically, and at the default 8 attempts that
	// single walk (~191·RTO) dwarfs the clean makespan. Three attempts
	// still exercise backoff, jitter and optimistic completion.
	arqCfg.MaxAttempts = 3
	arqCfg.MaxRTO = 8 * arqCfg.RTO

	clean, err := resilience.SUMMAARQ(cfg.cost(), pt.Q, arqCfg, a, b)
	if err != nil {
		return fmt.Errorf("conformance: recovery clean baseline %s: %w", pt, err)
	}
	cleanRep := clean.Report()
	ck.checkTrue("recovery/clean-overhead-free", alg, pt, "",
		cleanRep.Retransmits == 0 && cleanRep.Timeouts == 0 && cleanRep.OptimisticSends == 0,
		float64(cleanRep.Retransmits), 0,
		"fault-free run paid protocol overhead: the ARQ timers fired without faults")
	cleanT := clean.Sim.Time()
	cleanE := core.PriceSim(ck.m, clean.Sim).Total()

	for _, seed := range recoverySeeds(cfg) {
		run := func() (*resilience.SUMMAARQResult, error) {
			cost := cfg.cost()
			// Timer expiries fire at real-time quiescence; a short window
			// keeps the chaos runs fast without touching virtual results.
			cost.WatchdogTimeout = 15 * time.Millisecond
			cost.Faults = recoveryFaults(seed)
			return resilience.SUMMAARQ(cost, pt.Q, arqCfg, a, b)
		}
		first, err := run()
		ck.checkTrue("recovery/drop-masking-completes", alg, pt, "",
			err == nil, 0, 0,
			fmt.Sprintf("seed %#x: drop-injected run aborted instead of self-healing: %v", seed, err))
		if err != nil {
			continue
		}
		ck.checkTrue("recovery/drop-masking-numerics", alg, pt, "",
			first.C.MaxAbsDiff(clean.C) == 0,
			first.C.MaxAbsDiff(clean.C), 0,
			fmt.Sprintf("seed %#x: recovered product differs from the fault-free product", seed))
		rep := first.Report()
		ck.checkTrue("recovery/faults-exercised", alg, pt, "",
			rep.Retransmits > 0,
			float64(rep.Retransmits), 1,
			fmt.Sprintf("seed %#x: the chaos plan injected nothing this run masks; raise the drop rate", seed))
		ck.checkBand("recovery/time-overhead", alg, pt, "T",
			first.Sim.Time(), cleanT, recoveryTimeBand,
			fmt.Sprintf("seed %#x: recovered makespan outside the pinned overhead band", seed))
		ck.checkBand("recovery/energy-overhead", alg, pt, "E",
			core.PriceSim(ck.m, first.Sim).Total(), cleanE, recoveryEnergyBand,
			fmt.Sprintf("seed %#x: recovered energy outside the pinned overhead band", seed))

		second, err := run()
		if err != nil {
			ck.checkTrue("recovery/drop-masking-completes", alg, pt, "",
				false, 0, 0,
				fmt.Sprintf("seed %#x: replay of a completed plan aborted: %v", seed, err))
			continue
		}
		rank, same := statsIdentical(first.Sim, second.Sim)
		ck.checkTrue("recovery/replay-stats", alg, pt, "",
			same, float64(rank), -1,
			fmt.Sprintf("seed %#x: per-rank stats differ across replays of one plan (first differing rank in Got)", seed))
		arqRank, arqSame := -1, true
		for id := range first.ARQ {
			if first.ARQ[id] != second.ARQ[id] {
				arqRank, arqSame = id, false
				break
			}
		}
		ck.checkTrue("recovery/replay-arq-counters", alg, pt, "",
			arqSame, float64(arqRank), -1,
			fmt.Sprintf("seed %#x: ARQ counters differ across replays of one plan (first differing rank in Got)", seed))
	}
	return nil
}

// checkRecoveryController verifies the energy-priced recovery controller's
// closed-form contract on the sweep machine (no simulator involved): the
// chosen strategy is the energy argmin over the feasible set, feasibility
// verdicts are coherent, and lost progress is monotone — respawning later
// in the run can never get cheaper.
func checkRecoveryController(ck *checker) {
	const alg = "recovery-controller"
	rc := resilience.NewRecoveryController(ck.m)
	contexts := []resilience.FailureContext{
		{N: 256, Q: 4, Replicas: 2, Step: 3, Steps: 4, CheckpointPeriod: 2, HaveBuddy: true, SpareRebootTime: 0.5},
		{N: 512, Q: 8, Replicas: 4, Step: 7, Steps: 8, CheckpointPeriod: 4, HaveBuddy: true, SpareRebootTime: 2},
		{N: 128, Q: 2, Replicas: 1, Step: 1, Steps: 2, CheckpointPeriod: 1, HaveBuddy: true},
		{N: 256, Q: 4, Replicas: 1, Step: 2, Steps: 4, HaveBuddy: false, SpareRebootTime: 1},
	}
	for _, fc := range contexts {
		pt := Point{N: fc.N, P: fc.Q * fc.Q * fc.Replicas, Q: fc.Q, C: fc.Replicas}
		choice := rc.Choose(fc)
		ck.checkTrue("recovery/controller-feasible-choice", alg, pt, "E",
			choice.Feasible, 0, 1,
			"Choose returned an infeasible strategy although respawn is always available")
		for _, sc := range rc.Evaluate(fc) {
			if sc.Feasible {
				ck.checkTrue("recovery/controller-argmin", alg, pt, "E",
					choice.Energy <= sc.Energy,
					choice.Energy, sc.Energy,
					fmt.Sprintf("Choose picked %v but %v is cheaper", choice.Strategy, sc.Strategy))
				ck.checkTrue("recovery/controller-positive-cost", alg, pt, "E",
					sc.Time > 0 && sc.Energy > 0,
					sc.Energy, 0,
					fmt.Sprintf("feasible strategy %v priced at a non-positive cost", sc.Strategy))
			} else {
				ck.checkTrue("recovery/controller-reasoned-verdict", alg, pt, "",
					sc.Reason != "", 0, 0,
					fmt.Sprintf("infeasible strategy %v carries no reason", sc.Strategy))
			}
		}
	}
	// Monotonicity: the respawn bill grows with the progress a failure
	// destroys, on any machine.
	fc := contexts[0]
	prev := -1.0
	for step := 0; step < fc.Steps; step++ {
		fc.Step = step
		resp := rc.Evaluate(fc)[int(resilience.StrategyRespawn)]
		ck.checkTrue("recovery/controller-respawn-monotone", alg,
			Point{N: fc.N, P: fc.Q * fc.Q * fc.Replicas, Q: fc.Q, C: fc.Replicas}, "E",
			resp.Energy > prev,
			resp.Energy, prev,
			fmt.Sprintf("respawn energy did not grow from step %d to %d", step-1, step))
		prev = resp.Energy
	}
}
